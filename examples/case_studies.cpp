// Case-study walkthrough (paper Section 6.4): compare what different cost
// models — the trained Ithemal surrogate, the uiCA-style simulator, the
// MCA-style static model, and the crude analytical model — predict for the
// paper's case-study blocks, and what COMET says each model is looking at.
//
// First run trains the Ithemal surrogate (~1 minute) and caches the weights
// under data/.
//
//   $ ./build/examples/case_studies
#include <cstdio>

#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "core/model_zoo.h"
#include "sim/models.h"
#include "util/table.h"

int main() {
  using namespace comet;
  const auto uarch = cost::MicroArch::Haswell;

  const struct {
    const char* title;
    x86::BasicBlock block;
  } cases[] = {
      {"Case study 1 (Listing 2): store-bound block",
       bhive::listing2_case_study1()},
      {"Case study 2 (Listing 3): div + dependencies",
       bhive::listing3_case_study2()},
  };

  for (const auto& c : cases) {
    std::printf("=== %s ===\n%s", c.title, c.block.to_string().c_str());
    std::printf("hardware-equivalent throughput: %.2f cycles\n\n",
                sim::measured_throughput(c.block, uarch));

    util::Table table({"Model", "Prediction", "COMET explanation", "prec"});
    for (const auto kind :
         {core::ModelKind::Ithemal, core::ModelKind::UiCA,
          core::ModelKind::Mca, core::ModelKind::Crude}) {
      const auto model = core::make_model(kind, uarch);
      core::CometOptions opt;
      opt.epsilon = kind == core::ModelKind::Crude ? 0.25 : 0.5;
      opt.coverage_samples = 500;
      const core::CometExplainer explainer(*model, opt);
      const auto expl = explainer.explain(c.block);
      table.add_row({model->name(),
                     util::Table::fmt(model->predict(c.block)),
                     expl.features.to_string(),
                     util::Table::fmt(expl.precision, 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "Reading the tables: an accurate simulator's explanation names the\n"
      "specific bottleneck (the div instruction / the RAW dependencies that\n"
      "pin it), while coarser models are explained by coarser features.\n");
  return 0;
}
