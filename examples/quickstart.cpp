// Quickstart: explain a cost model's prediction for one basic block.
//
// This walks the whole public API surface in ~40 lines: parse an x86 block,
// build a cost model, run COMET, and inspect the explanation. It uses the
// paper's motivating example (Listing 1a) and the crude interpretable model,
// so the run finishes instantly and the "right answer" is known.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/comet.h"
#include "cost/crude_model.h"
#include "graph/depgraph.h"
#include "x86/parser.h"

int main() {
  using namespace comet;

  // 1. A basic block, in Intel syntax (paper Listing 1a).
  const x86::BasicBlock block = x86::parse_block(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )");
  std::printf("Block:\n%s\n", block.to_string().c_str());

  // 2. Its dependency multigraph (what the features are built from).
  const auto graph = graph::DepGraph::build(block);
  std::printf("Dependency edges:\n%s\n", graph.to_string().c_str());

  // 3. A cost model. Any comet::cost::CostModel works — here the crude
  //    interpretable model C for Haswell (try sim::UiCASimModel, or
  //    cost::IthemalModel via core::make_model, for the real thing).
  const cost::CrudeModel model(cost::MicroArch::Haswell);
  std::printf("%s predicts %.2f cycles/iteration\n\n", model.name().c_str(),
              model.predict(block));

  // 4. Explain the prediction. epsilon is the cost tolerance that defines
  //    "the prediction did not change"; (1 - delta) is the precision
  //    threshold an explanation must clear.
  core::CometOptions options;
  options.epsilon = 0.25;
  options.delta = 0.3;
  const core::CometExplainer explainer(model, options);
  const core::Explanation explanation = explainer.explain(block);

  std::printf("COMET explanation: %s\n", explanation.features.to_string().c_str());
  std::printf("  precision %.2f  coverage %.2f  (threshold met: %s)\n",
              explanation.precision, explanation.coverage,
              explanation.met_threshold ? "yes" : "no");
  std::printf("  model queries used: %zu\n", explanation.model_queries);
  // The engine issues all queries as batches through a memoizing broker;
  // query_stats shows how few predictions actually reached the model.
  std::printf("  broker: %zu requested, %zu evaluated, %zu memo hits, "
              "%zu batches\n",
              explanation.query_stats.requested,
              explanation.query_stats.evaluated,
              explanation.query_stats.cache_hits,
              explanation.query_stats.batch_calls);
  return 0;
}
