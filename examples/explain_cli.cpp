// explain_cli: explain any basic block with any model, from the command
// line — the tool a performance engineer would actually reach for.
//
//   $ ./build/examples/explain_cli [model] [uarch] [file.s]
//
//     model : crude | uica | oracle | mca | ithemal | granite   (default crude)
//     uarch : hsw | skl                                         (default hsw)
//     file.s: Intel-syntax basic block, one instruction per line;
//             read from stdin when omitted or "-".
//
//   $ echo 'add rcx, rax
//           mov rdx, rcx
//           pop rbx' | ./build/examples/explain_cli uica hsw
//
// Neural models train on first use and cache their weights under data/,
// so the first ithemal/granite invocation takes a few minutes.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/comet.h"
#include "core/model_zoo.h"
#include "x86/parser.h"

using namespace comet;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [crude|uica|oracle|mca|ithemal|granite] [hsw|skl] "
               "[block.s|-]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = argc > 1 ? argv[1] : "crude";
  std::string uarch_name = argc > 2 ? argv[2] : "hsw";
  std::string path = argc > 3 ? argv[3] : "-";

  core::ModelKind kind;
  if (model_name == "crude") {
    kind = core::ModelKind::Crude;
  } else if (model_name == "uica") {
    kind = core::ModelKind::UiCA;
  } else if (model_name == "oracle") {
    kind = core::ModelKind::Oracle;
  } else if (model_name == "mca") {
    kind = core::ModelKind::Mca;
  } else if (model_name == "ithemal") {
    kind = core::ModelKind::Ithemal;
  } else if (model_name == "granite") {
    kind = core::ModelKind::Granite;
  } else {
    return usage(argv[0]);
  }
  cost::MicroArch uarch;
  if (uarch_name == "hsw") {
    uarch = cost::MicroArch::Haswell;
  } else if (uarch_name == "skl") {
    uarch = cost::MicroArch::Skylake;
  } else {
    return usage(argv[0]);
  }

  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0) {
      text.append(buf, n);
    }
    std::fclose(fp);
  }

  x86::BasicBlock block;
  try {
    block = x86::parse_block(text);
  } catch (const x86::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  if (block.empty()) {
    std::fprintf(stderr, "empty block\n");
    return 1;
  }

  const auto model = core::make_model(kind, uarch);
  const double prediction = model->predict(block);

  core::CometOptions opts;
  opts.epsilon = kind == core::ModelKind::Crude ? 0.25 : 0.5;
  const core::CometExplainer explainer(*model, opts);
  const auto e = explainer.explain(block);

  std::printf("block (%zu instructions):\n%s\n", block.size(),
              block.to_string().c_str());
  std::printf("%s predicts: %.2f cycles/iteration\n", model->name().c_str(),
              prediction);
  std::printf("explanation:  %s\n", e.features.to_string().c_str());
  std::printf("  precision=%.2f coverage=%.2f threshold %s (%zu queries)\n",
              e.precision, e.coverage, e.met_threshold ? "met" : "NOT met",
              e.model_queries);
  return 0;
}
