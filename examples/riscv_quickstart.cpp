// riscv_quickstart: the Section 7 port in action — explain a RISC-V
// block's cost prediction end to end.
//
//   $ ./build/examples/riscv_quickstart
#include <cstdio>

#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/parser.h"

int main() {
  using namespace comet;

  // A dependency-heavy RV64IM block: a divide fed by an add, feeding an
  // increment — the div chain should dominate the cost.
  const riscv::BasicBlock block = riscv::parse_block(R"(
    add  a0, a1, a2
    div  a3, a0, a4
    addi a5, a3, 1
    sd   a5, 8(sp)
  )");
  std::printf("Block:\n%s\n", block.to_string().c_str());

  const auto graph = riscv::DepGraph::build(block);
  std::printf("Dependency edges:\n%s\n", graph.to_string().c_str());

  const riscv::RvCostModel model;
  std::printf("%s predicts %.2f cycles\n", model.name().c_str(),
              model.predict(block));
  std::printf("analytical ground truth: %s\n\n",
              model.ground_truth(block).to_string().c_str());

  const riscv::RvExplainer explainer(model);
  const auto e = explainer.explain(block);
  std::printf("COMET-RV explanation: %s\n", e.features.to_string().c_str());
  std::printf("  precision=%.2f coverage=%.2f threshold %s (%zu queries)\n",
              e.precision, e.coverage, e.met_threshold ? "met" : "NOT met",
              e.model_queries);
  std::printf("  broker: %zu evaluated of %zu requested (%zu memo hits)\n",
              e.query_stats.evaluated, e.query_stats.requested,
              e.query_stats.cache_hits);
  return 0;
}
