// serve_demo: a concurrent multi-model explanation sweep through the full
// serving stack — scheduler → per-model-kind pools → shards → models.
//
// Registers four x86 cost models (a 2-shard crude pool, the hardware
// oracle, uiCA, and llvm-mca stand-ins), streams one explanation job per
// (paper block, model kind) pair through a 4-worker ExplanationServer,
// prints results as they complete (completion order, not submission
// order), and finishes with the per-model query-traffic drain report.
// A second section serves RISC-V jobs through the same scheduler template
// — the served path is ISA-generic, like the engine underneath it.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bhive/paper_blocks.h"
#include "cost/crude_model.h"
#include "riscv/parser.h"
#include "serve/isa_servers.h"
#include "serve/sharded_cost_model.h"
#include "sim/models.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace ck = comet::cost;
namespace cs = comet::serve;
namespace cx = comet::x86;
namespace rv = comet::riscv;

namespace {

cc::CometOptions demo_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.5;
  opt.coverage_samples = 300;
  opt.batch_size = 8;
  opt.max_pulls_per_level = 48;
  opt.final_precision_samples = 64;
  opt.fuse_arm_pulls = true;  // widened batches: fewer backend round-trips
  opt.seed = seed;
  return opt;
}

}  // namespace

int main() {
  std::printf("== concurrent multi-model explanation sweep (x86) ==\n");

  // One model key per registered backend; the crude model is served from a
  // 2-shard broker pool (per-shard model instance + memo cache).
  auto sharded_crude = std::make_shared<const cs::ShardedCostModel>(
      [](std::size_t) {
        return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
      },
      /*shards=*/2);
  auto oracle =
      std::make_shared<const comet::sim::HardwareOracle>(ck::MicroArch::Haswell);
  auto uica =
      std::make_shared<const comet::sim::UiCASimModel>(ck::MicroArch::Haswell);
  auto mca =
      std::make_shared<const comet::sim::McaLikeModel>(ck::MicroArch::Haswell);

  cs::X86ExplanationServer server({.workers = 4, .queue_capacity = 16});
  server.register_model("crude-hsw[2shards]", sharded_crude);
  server.register_model("oracle-hsw", oracle);
  server.register_model("uica-hsw", uica);
  server.register_model("mca-hsw", mca);

  const std::vector<std::pair<std::string, cx::BasicBlock>> jobs_blocks = {
      {"listing1", cb::listing1_motivating()},
      {"listing2", cb::listing2_case_study1()},
      {"listing3", cb::listing3_case_study2()},
  };
  const std::vector<std::string> keys = {"crude-hsw[2shards]", "oracle-hsw",
                                         "uica-hsw", "mca-hsw"};

  std::vector<std::string> label_of;  // label_of[ticket - 1]
  std::uint64_t seed = 1;
  for (const auto& [block_name, block] : jobs_blocks) {
    for (const auto& key : keys) {
      server.submit(key, block, demo_options(seed++));
      label_of.push_back(block_name);
    }
  }
  std::printf("submitted %zu jobs on 4 workers; streaming completions:\n\n",
              label_of.size());

  while (auto served = server.next()) {
    std::printf("  [done #%llu] %-9s @ %-18s -> %s\n",
                static_cast<unsigned long long>(served->id),
                label_of[served->id - 1].c_str(), served->model_key.c_str(),
                served->explanation.to_string().c_str());
  }

  std::printf("\nper-model drain report (merged QueryStats):\n%s",
              server.report().c_str());

  // The server's whole metrics surface — lifecycle counters, queue gauges,
  // per-model latency histograms — as one JSON snapshot (what a monitoring
  // hook would export; server.metrics_text() is the Prometheus twin).
  std::printf("\nmetrics snapshot (JSON):\n%s\n",
              server.metrics_json().c_str());

  std::printf("\n== the same scheduler, serving RISC-V ==\n");
  auto rv_model = std::make_shared<const rv::RvCostModel>();
  rv::RvExplainOptions rv_options;
  rv_options.coverage_samples = 300;

  cs::RvExplanationServer rv_server({.workers = 2, .queue_capacity = 8});
  rv_server.register_model("crude-rv64", rv_model);
  const std::vector<rv::BasicBlock> rv_blocks = {
      rv::parse_block("add a0, a1, a2\ndiv a3, a0, a4\naddi a5, a3, 1"),
      rv::parse_block("lw a0, 0(a1)\nadd a2, a0, a3\nsw a2, 4(a1)"),
  };
  for (const auto& block : rv_blocks) {
    rv_server.submit("crude-rv64", block, rv_options);
  }
  for (const auto& served : rv_server.drain()) {
    std::printf("  [done #%llu] crude-rv64 -> %s (prec=%.3f, cov=%.3f)\n",
                static_cast<unsigned long long>(served.id),
                served.explanation.features.to_string().c_str(),
                served.explanation.precision, served.explanation.coverage);
  }
  std::printf("\nrv drain report:\n%s", rv_server.report().c_str());
  return 0;
}
