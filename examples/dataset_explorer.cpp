// Explore the synthetic BHive-like dataset: category/source composition,
// throughput distribution per microarchitecture, and a few fully worked
// sample blocks with their dependency graphs and per-model predictions.
//
//   $ ./build/examples/dataset_explorer
#include <cstdio>

#include "core/model_zoo.h"
#include "graph/depgraph.h"
#include "sim/models.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace comet;
  const auto& dataset = core::zoo_dataset();
  std::printf("Dataset: %zu blocks\n\n", dataset.size());

  // Category x source composition.
  util::Table comp({"Category", "Clang", "OpenBLAS", "total"});
  const bhive::BlockCategory cats[] = {
      bhive::BlockCategory::Load,   bhive::BlockCategory::Store,
      bhive::BlockCategory::LoadStore, bhive::BlockCategory::Scalar,
      bhive::BlockCategory::Vector, bhive::BlockCategory::ScalarVector,
  };
  for (const auto cat : cats) {
    const auto all = dataset.by_category(cat);
    const auto clang = all.by_source(bhive::BlockSource::Clang);
    comp.add_row({bhive::category_name(cat), std::to_string(clang.size()),
                  std::to_string(all.size() - clang.size()),
                  std::to_string(all.size())});
  }
  std::printf("%s\n", comp.to_string().c_str());

  // Throughput distribution.
  for (const auto uarch :
       {cost::MicroArch::Haswell, cost::MicroArch::Skylake}) {
    const auto labels = dataset.label_views(uarch);
    std::vector<double> xs(labels.begin(), labels.end());
    std::printf(
        "%s throughput (cycles): mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f\n",
        cost::uarch_name(uarch).c_str(), util::mean(xs),
        util::percentile(xs, 50), util::percentile(xs, 90),
        util::percentile(xs, 99));
  }

  // A few worked samples.
  std::printf("\n--- sample blocks ---\n");
  util::Rng rng(3);
  const auto sample = dataset.sample(3, rng);
  const sim::HardwareOracle oracle(cost::MicroArch::Haswell);
  const sim::UiCASimModel uica(cost::MicroArch::Haswell);
  for (const auto& lb : sample.blocks()) {
    std::printf("\n[%s / %s]\n%s",
                bhive::source_name(lb.source).c_str(),
                bhive::category_name(lb.category).c_str(),
                lb.block.to_string().c_str());
    const auto g = graph::DepGraph::build(lb.block);
    std::printf("deps:\n%s", g.to_string().c_str());
    std::printf("measured %.2f | oracle %.2f | uica %.2f cycles\n",
                lb.measured_hsw, oracle.predict(lb.block),
                uica.predict(lb.block));
  }
  return 0;
}
