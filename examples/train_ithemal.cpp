// Train the Ithemal surrogate from scratch and evaluate it.
//
// Generates the synthetic BHive-like dataset, trains the hierarchical LSTM
// for both microarchitectures (caching weights under data/), and reports
// train/held-out MAPE next to the simulation-based models — reproducing the
// accuracy landscape the paper's analysis starts from.
//
//   $ ./build/examples/train_ithemal            # train or load from cache
//   $ COMET_DATA_DIR=/tmp/fresh ./build/examples/train_ithemal  # retrain
#include <cstdio>

#include "bhive/dataset.h"
#include "core/model_zoo.h"
#include "sim/models.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace comet;

  std::printf("Dataset: %zu blocks (training), generating held-out set...\n",
              core::zoo_dataset().size());
  bhive::DatasetOptions heldout_opt;
  heldout_opt.size = 400;
  heldout_opt.seed = 777;  // disjoint from the training seed
  const auto heldout = bhive::generate_dataset(heldout_opt);

  util::Table table({"Model", "held-out MAPE(%)"});
  for (const auto uarch :
       {cost::MicroArch::Haswell, cost::MicroArch::Skylake}) {
    for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA,
                            core::ModelKind::Mca}) {
      const auto model = core::make_model(kind, uarch);
      std::vector<double> preds, acts;
      for (const auto& lb : heldout.blocks()) {
        preds.push_back(model->predict(lb.block));
        acts.push_back(lb.measured(uarch));
      }
      table.add_row({model->name(),
                     util::Table::fmt(util::mape(preds, acts), 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nExpected landscape: the uiCA-style simulator is within a few percent\n"
      "of the hardware labels; the laptop-scale LSTM is an order of magnitude\n"
      "less accurate (the paper's Ithemal sits at ~9%% with full-scale\n"
      "training); the static MCA-style model underestimates latency-bound\n"
      "blocks.\n");
  return 0;
}
