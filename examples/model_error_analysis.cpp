// Model debugging with COMET (paper Section 6.3): measure each cost model's
// error against the hardware-equivalent labels, explain a sample of blocks,
// and relate error to the granularity of the features the explanations use.
// This is the workflow a performance engineer would run to decide whether a
// neural cost model can be trusted, and on which kinds of blocks.
//
//   $ ./build/examples/model_error_analysis
#include <cstdio>

#include "core/eval.h"
#include "core/model_zoo.h"
#include "util/table.h"

int main() {
  using namespace comet;
  const auto uarch = cost::MicroArch::Haswell;
  const std::size_t n_blocks = 25;

  const auto& dataset = core::zoo_dataset();
  const auto test_set = bhive::explanation_test_set(dataset, n_blocks, 1234);

  std::printf("Analyzing %zu blocks on %s...\n\n", test_set.size(),
              cost::uarch_name(uarch).c_str());

  util::Table table({"Model", "MAPE(%)", "avg prec", "avg cov",
                     "% eta", "% inst", "% dep"});
  for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA,
                          core::ModelKind::Mca, core::ModelKind::Oracle}) {
    const auto model = core::make_model(kind, uarch);
    core::CometOptions opt;
    opt.epsilon = 0.5;
    opt.coverage_samples = 400;
    opt.batch_size = 8;
    opt.max_pulls_per_level = 80;
    const auto stats = core::analyze_model(*model, uarch, test_set, opt,
                                           /*precision_samples=*/100,
                                           /*coverage_samples=*/400,
                                           /*seed=*/7);
    table.add_row({model->name(), util::Table::fmt(stats.mape, 1),
                   util::Table::fmt(stats.avg_precision, 2),
                   util::Table::fmt(stats.avg_coverage, 2),
                   util::Table::fmt(stats.pct_with_num_insts, 0),
                   util::Table::fmt(stats.pct_with_inst, 0),
                   util::Table::fmt(stats.pct_with_dep, 0)});
    std::printf("  analyzed %s\n", model->name().c_str());
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nInterpretation (paper Section 6.3): as a model's error shrinks, its\n"
      "explanations shift from the coarse eta feature toward specific\n"
      "instructions and data dependencies.\n");
  return 0;
}
