// diff_models: find and explain the blocks two cost models disagree on.
//
// An AnICA-style differential sweep (related work of the paper) composed
// with COMET explanations of both sides — the workflow for answering "why
// does my neural model deviate from the simulator, and on which blocks?"
//
//   $ ./build/examples/diff_models            # ithemal vs uica, HSW
//   $ ./build/examples/diff_models mca        # mca vs uica
//
// The first run trains the neural model and caches its weights.
#include <cstdio>
#include <string>

#include "core/model_zoo.h"
#include "diff/diff.h"

using namespace comet;

int main(int argc, char** argv) {
  const std::string left = argc > 1 ? argv[1] : "ithemal";
  core::ModelKind kind = core::ModelKind::Ithemal;
  if (left == "mca") kind = core::ModelKind::Mca;
  if (left == "granite") kind = core::ModelKind::Granite;
  if (left == "crude") kind = core::ModelKind::Crude;

  const auto model_a = core::make_model(kind, cost::MicroArch::Haswell);
  const auto model_b =
      core::make_model(core::ModelKind::UiCA, cost::MicroArch::Haswell);

  const auto corpus = bhive::explanation_test_set(core::zoo_dataset(), 120,
                                                  /*seed=*/7)
                          .block_views();

  diff::DiffOptions opts;
  opts.min_rel_gap = 0.4;
  opts.top_k = 5;
  opts.comet.epsilon = 0.5;
  opts.comet.coverage_samples = 500;
  const auto summary =
      diff::analyze_disagreements(*model_a, *model_b, corpus, opts);

  std::printf("%s", summary.to_string(model_a->name(),
                                      model_b->name()).c_str());

  // Show the single worst block in full.
  if (!summary.top.empty()) {
    const auto& worst = summary.top.front();
    std::printf("\nworst disagreement (gap %.2fx):\n%s", worst.rel_gap,
                worst.block.to_string().c_str());
    std::printf("  %s -> %.2f cycles, explained by %s\n",
                model_a->name().c_str(), worst.pred_a,
                worst.expl_a.features.to_string().c_str());
    std::printf("  %s -> %.2f cycles, explained by %s\n",
                model_b->name().c_str(), worst.pred_b,
                worst.expl_b.features.to_string().c_str());
  }
  return 0;
}
