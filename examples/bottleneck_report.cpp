// bottleneck_report: the simulator's own account of where a block's cycles
// go (paper Appendix H.3 — the kind of insight uiCA offers and neural
// models do not), side by side with COMET's explanation of the simulator.
//
//   $ ./build/examples/bottleneck_report                # built-in demos
//   $ ./build/examples/bottleneck_report my_block.s     # your block
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/comet.h"
#include "core/model_zoo.h"
#include "sim/bottleneck.h"
#include "x86/parser.h"

using namespace comet;

namespace {

void report(const x86::BasicBlock& block, const char* label) {
  std::printf("== %s ==\n%s\n", label, block.to_string().c_str());
  const auto r = sim::analyze_bottleneck(block, cost::MicroArch::Haswell);
  std::printf("%s", r.to_string().c_str());

  const auto uica =
      core::make_model(core::ModelKind::UiCA, cost::MicroArch::Haswell);
  core::CometOptions opts;
  opts.epsilon = 0.5;
  opts.coverage_samples = 500;
  const core::CometExplainer explainer(*uica, opts);
  std::printf("COMET explanation of %s: %s\n\n", uica->name().c_str(),
              explainer.explain(block).features.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    report(x86::parse_block(ss.str()), argv[1]);
    return 0;
  }

  // Three regimes, one block each.
  report(x86::parse_block(R"(
    add rax, 1
    add rbx, 1
    add rcx, 1
    add rdx, 1
    add rsi, 1
    add rdi, 1
    mov r8, qword ptr [rbp]
    mov r9, qword ptr [rsp + 16]
  )"),
         "front-end bound: 10 uops over a 4-wide issue");
  report(x86::parse_block(R"(
    mov qword ptr [rdi], rax
    mov qword ptr [rsi + 8], rbx
    add rcx, 1
  )"),
         "port bound: two stores on one store-data port");
  report(x86::parse_block(R"(
    mov ecx, edx
    xor edx, edx
    lea rax, qword ptr [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
  )"),
         "dependency bound: the paper's case-study-2 div chain");
  return 0;
}
