// Fuzz harness: x86::parse_block over arbitrary bytes.
//
// Contract under test: any byte string either parses into a catalog-valid
// block or throws x86::ParseError / util::ContractViolation. Anything else
// — a crash, a sanitizer finding, an unexpected exception type — is a bug.
// Oracle: a successfully parsed block must re-parse from its own printed
// form with the same instruction count (parser/printer round trip).
#include <cstdint>
#include <string>
#include <string_view>

#include "util/contract.h"
#include "x86/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const comet::x86::BasicBlock block = comet::x86::parse_block(text);
    std::string printed;
    for (const auto& inst : block.instructions) {
      printed += inst.to_string();
      printed += '\n';
    }
    const comet::x86::BasicBlock again = comet::x86::parse_block(printed);
    if (again.size() != block.size()) {
      __builtin_trap();  // printer emitted something the parser rejects
    }
  } catch (const comet::x86::ParseError&) {
    // expected rejection of malformed input
  } catch (const comet::util::ContractViolation&) {
    // expected rejection at a contract boundary
  }
  return 0;
}
