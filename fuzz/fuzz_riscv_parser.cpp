// Fuzz harness: riscv::parse_block over arbitrary bytes.
//
// Contract under test: any byte string either parses into a valid RV64IM
// block or throws riscv::ParseError / util::ContractViolation. Oracle: a
// successfully parsed block must re-parse from its own printed form with
// the same instruction count.
#include <cstdint>
#include <string>
#include <string_view>

#include "riscv/isa.h"
#include "riscv/parser.h"
#include "util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const comet::riscv::BasicBlock block = comet::riscv::parse_block(text);
    std::string printed;
    for (const auto& inst : block.instructions) {
      printed += inst.to_string();
      printed += '\n';
    }
    const comet::riscv::BasicBlock again = comet::riscv::parse_block(printed);
    if (again.size() != block.size()) {
      __builtin_trap();  // printer emitted something the parser rejects
    }
  } catch (const comet::riscv::ParseError&) {
    // expected rejection of malformed input
  } catch (const comet::util::ContractViolation&) {
    // expected rejection at a contract boundary
  }
  return 0;
}
