// Fuzz harness: bhive::parse_dataset_text over arbitrary bytes.
//
// Contract under test: any byte string either parses into a labeled
// dataset or throws util::ContractViolation (structural problems: header,
// labels, field counts) / x86::ParseError (malformed instructions).
// Oracle: a successfully parsed dataset must survive a
// to_text -> parse_dataset_text round trip with the same size and labels.
#include <cstdint>
#include <string>
#include <string_view>

#include "bhive/dataset.h"
#include "util/contract.h"
#include "x86/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const comet::bhive::Dataset ds = comet::bhive::parse_dataset_text(text);
    const comet::bhive::Dataset again =
        comet::bhive::parse_dataset_text(comet::bhive::to_text(ds));
    if (again.size() != ds.size()) __builtin_trap();
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (again[i].measured_hsw != ds[i].measured_hsw ||
          again[i].measured_skl != ds[i].measured_skl ||
          again[i].block.size() != ds[i].block.size()) {
        __builtin_trap();  // round trip lost data
      }
    }
  } catch (const comet::util::ContractViolation&) {
    // expected: structural violation
  } catch (const comet::x86::ParseError&) {
    // expected: malformed instruction text
  }
  return 0;
}
