add a0, a1, a2
addi t0, t1, -4
lui  a0, 4096
ld   a0, 8(sp)
sd   a1, 0(a0)
