mul s0, s1, s2  # comment
divu t3, t4, t5
remw a3, a4, a5 ; other comment
sltiu x5, x6, 2047
srai  x7, x8, 63
