lw x1, (x2)
sb x3, -2048(x31)
lbu t0, 0x10(gp)
