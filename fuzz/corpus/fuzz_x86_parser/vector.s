vmulps ymm1, ymm2, ymm3
vfmadd231ss xmm0, xmm1, xmm2
vmovaps ymmword ptr [rdi], ymm1
ucomisd xmm3, qword ptr [rsi + 8]
