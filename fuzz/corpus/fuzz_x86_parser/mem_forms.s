mov rdx, qword ptr [rdi + 24]
mov qword ptr [rsp - 8], rax
lea rax, [rcx + rax*4 - 1]
movss xmm0, dword ptr [rax + rbx*8 + 16]
add dword ptr [rbp + 0x40], eax
