add rcx, rax
mov rdx, rcx
pop rbx
inc rsi
