1: add rcx, rax  ; comment
2: vdivss xmm0, xmm0, xmm6 # trailing
3: cmp rcx, 0x7f

4: jle -12
