// Fallback fuzzing driver for toolchains without libFuzzer (GCC).
//
// Speaks enough of the libFuzzer CLI that scripts/check.sh can invoke
// every harness the same way under either engine:
//
//   driver [-max_total_time=SECS] [-max_len=N] [-runs=N] [-seed=N]
//          [other -flags ignored] dir-or-file...
//
// Phase 1 replays every corpus input (regression gate). Phase 2 runs a
// deterministic random-mutation loop over the corpus (byte flips, splices,
// truncations, duplications) until the time or run budget expires. The
// input about to execute is persisted to <first-dir>/.cur_input before
// every call, so after a crash the offending bytes are on disk for triage
// and minimization.
//
// This file is compiled into the harness only when the real
// -fsanitize=fuzzer engine is unavailable; it deliberately has no
// dependency on the comet library.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// Self-contained splitmix64: the driver must not depend on the library it
// is fuzzing, and the sequence must be deterministic run to run.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

using Bytes = std::vector<std::uint8_t>;

Bytes read_file(const std::filesystem::path& p) {
  Bytes out;
  std::FILE* fp = std::fopen(p.string().c_str(), "rb");
  if (fp == nullptr) return out;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    out.insert(out.end(), buf, buf + got);
  }
  std::fclose(fp);
  return out;
}

void mutate(Bytes& input, SplitMix64& rng, std::size_t max_len) {
  const std::size_t n_mutations = 1 + rng.below(4);
  for (std::size_t m = 0; m < n_mutations; ++m) {
    switch (rng.below(6)) {
      case 0:  // flip a random bit
        if (!input.empty()) {
          input[rng.below(input.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      case 1:  // overwrite a byte with a random value
        if (!input.empty()) {
          input[rng.below(input.size())] =
              static_cast<std::uint8_t>(rng.next());
        }
        break;
      case 2: {  // insert an interesting byte
        static constexpr std::uint8_t kInteresting[] = {
            0x00, 0xff, 0x7f, 0x80, '\n', '\t', ',', ';', '[', ']',
            '(',  ')',  '*',  '-',  '+',  '0',  'x', ' ', '#', ':'};
        const std::uint8_t b =
            kInteresting[rng.below(sizeof(kInteresting))];
        input.insert(input.begin() + rng.below(input.size() + 1), b);
        break;
      }
      case 3:  // delete a run of bytes
        if (!input.empty()) {
          const std::size_t at = rng.below(input.size());
          const std::size_t len = 1 + rng.below(input.size() - at);
          input.erase(input.begin() + at, input.begin() + at + len);
        }
        break;
      case 4:  // duplicate a slice (size-field confusion, repeated records)
        if (!input.empty()) {
          const std::size_t at = rng.below(input.size());
          const std::size_t len =
              1 + rng.below(std::min<std::size_t>(input.size() - at, 64));
          Bytes slice(input.begin() + at, input.begin() + at + len);
          input.insert(input.begin() + rng.below(input.size() + 1),
                       slice.begin(), slice.end());
        }
        break;
      case 5:  // truncate
        if (!input.empty()) input.resize(rng.below(input.size()));
        break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 30;
  std::size_t max_len = 65536;
  long max_runs = -1;
  std::uint64_t seed = 0xC03E7F00DULL;
  std::vector<std::filesystem::path> inputs;
  std::filesystem::path artifact_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atol(arg.c_str() + 16);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<std::size_t>(std::atol(arg.c_str() + 9));
    } else if (arg.rfind("-runs=", 0) == 0) {
      max_runs = std::atol(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (!arg.empty() && arg.front() == '-') {
      // Unknown libFuzzer flag: accepted and ignored so check.sh can use
      // one command line for both engines.
    } else {
      inputs.emplace_back(arg);
      if (artifact_dir.empty() && std::filesystem::is_directory(arg)) {
        artifact_dir = arg;
      }
    }
  }

  // Gather the corpus.
  std::vector<Bytes> corpus;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(in, ec)) {
        if (entry.is_regular_file() &&
            entry.path().filename().string().front() != '.') {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else if (std::filesystem::is_regular_file(in, ec)) {
      corpus.push_back(read_file(in));
    }
  }

  const std::filesystem::path cur_input =
      (artifact_dir.empty() ? std::filesystem::temp_directory_path()
                            : artifact_dir) /
      ".cur_input";
  const auto run_one = [&](const Bytes& bytes) {
    std::FILE* fp = std::fopen(cur_input.string().c_str(), "wb");
    if (fp != nullptr) {
      if (!bytes.empty() &&
          std::fwrite(bytes.data(), 1, bytes.size(), fp) != bytes.size()) {
        std::fprintf(stderr, "driver: short write to %s\n",
                     cur_input.string().c_str());
      }
      std::fclose(fp);
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  };

  // Phase 1: replay the full corpus (regression gate).
  for (const Bytes& bytes : corpus) run_one(bytes);
  std::fprintf(stderr, "driver: replayed %zu corpus inputs\n", corpus.size());

  // Phase 2: deterministic mutation loop until the budget expires.
  SplitMix64 rng{seed};
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(max_total_time);
  long runs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (max_runs >= 0 && runs >= max_runs) break;
    Bytes input;
    if (!corpus.empty() && rng.below(8) != 0) {
      input = corpus[rng.below(corpus.size())];
      if (rng.below(4) == 0 && corpus.size() > 1) {
        // Splice: prefix of one seed + suffix of another.
        const Bytes& other = corpus[rng.below(corpus.size())];
        if (!input.empty() && !other.empty()) {
          input.resize(rng.below(input.size()) + 1);
          const std::size_t at = rng.below(other.size());
          input.insert(input.end(), other.begin() + at, other.end());
        }
      }
    } else {
      input.resize(rng.below(256));
      for (auto& b : input) b = static_cast<std::uint8_t>(rng.next());
    }
    mutate(input, rng, max_len);
    run_one(input);
    ++runs;
  }
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::fprintf(stderr,
               "driver: done, %ld mutated runs in %llds (no crashes)\n",
               runs, static_cast<long long>(secs));
  std::error_code ec;
  std::filesystem::remove(cur_input, ec);
  return 0;
}
