// Fuzz harness: the net/ wire protocol over arbitrary bytes.
//
// Contract under test: net::decode_frame, net::FrameAssembler, and every
// payload codec either accept the input or throw util::ContractViolation.
// Anything else — a crash, a sanitizer finding, an unexpected exception
// type — is a bug. Oracles:
//   * decode → encode → redecode: a successfully decoded frame must
//     re-encode to the exact input bytes (the encoding is canonical:
//     flags are forced to 0 and the checksum is recomputed) and redecode
//     to an equal frame.
//   * streaming == one-shot: feeding the same bytes to a FrameAssembler
//     byte-at-a-time must yield the same first frame (or the same
//     rejection) as the whole-buffer decode.
//   * payload codecs round-trip: a payload that decodes under its type's
//     codec must re-encode to the identical payload bytes.
#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.h"
#include "util/contract.h"

namespace {

// Re-encoding a decoded payload must reproduce the bytes on the wire;
// comparing bytes (not decoded values) keeps NaN bit patterns honest.
void check_payload_roundtrip(const comet::net::Frame& frame) {
  namespace cn = comet::net;
  const std::span<const std::uint8_t> payload(frame.payload);
  try {
    std::vector<std::uint8_t> again;
    switch (frame.type) {
      case cn::MessageType::kPredictRequest:
        again = cn::encode_predict_request(cn::decode_predict_request(payload));
        break;
      case cn::MessageType::kPredictResponse:
        again =
            cn::encode_predict_response(cn::decode_predict_response(payload));
        break;
      case cn::MessageType::kError:
        again = cn::encode_error(cn::decode_error(payload));
        break;
      case cn::MessageType::kStatsResponse:
        again = cn::encode_stats(cn::decode_stats(payload));
        break;
      case cn::MessageType::kHealthCheck:
        again = cn::encode_health_ping(cn::decode_health_ping(payload));
        break;
      case cn::MessageType::kHealthReply:
        again = cn::encode_health_reply(cn::decode_health_reply(payload));
        break;
      default:
        return;  // kStatsRequest / kShutdown payloads are opaque here
    }
    if (again != frame.payload) {
      __builtin_trap();  // codec round trip changed the bytes
    }
  } catch (const comet::util::ContractViolation&) {
    // expected rejection: framing was fine but the payload is malformed
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace cn = comet::net;
  const std::span<const std::uint8_t> bytes(data, size);

  std::optional<cn::Frame> decoded;
  try {
    decoded = cn::decode_frame(bytes);
  } catch (const comet::util::ContractViolation&) {
    // expected rejection of malformed input
  }

  if (decoded.has_value()) {
    const std::vector<std::uint8_t> encoded = cn::encode_frame(*decoded);
    if (encoded.size() != size ||
        !std::equal(encoded.begin(), encoded.end(), data)) {
      __builtin_trap();  // canonical re-encoding diverged from the input
    }
    if (cn::decode_frame(encoded) != *decoded) {
      __builtin_trap();  // redecode disagreed with the first decode
    }
    check_payload_roundtrip(*decoded);
  }

  // Streaming reassembly must agree with the one-shot decode: same first
  // frame from a byte-at-a-time feed, or a rejection of its own (the
  // assembler fails fast on bad prefixes, so it may reject input the
  // whole-buffer decode would reject too — but it must never accept a
  // frame the one-shot decode rejected).
  cn::FrameAssembler assembler;
  std::optional<cn::Frame> streamed;
  try {
    for (std::size_t i = 0; i < size && !streamed.has_value(); ++i) {
      assembler.feed(bytes.subspan(i, 1));
      streamed = assembler.poll();
    }
  } catch (const comet::util::ContractViolation&) {
    // expected: provably-bad prefix
  }
  if (streamed.has_value()) {
    const std::vector<std::uint8_t> encoded = cn::encode_frame(*streamed);
    if (encoded.size() > size ||
        !std::equal(encoded.begin(), encoded.end(), data)) {
      __builtin_trap();  // assembler yielded a frame the input never held
    }
    if (decoded.has_value() && !(*streamed == *decoded)) {
      __builtin_trap();  // streaming and one-shot decode disagreed
    }
  } else if (decoded.has_value()) {
    __builtin_trap();  // one-shot accepted but the assembler never did
  }
  return 0;
}
