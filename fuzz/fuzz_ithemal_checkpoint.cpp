// Fuzz harness: IthemalModel::load over arbitrary checkpoint bytes.
//
// Contract under test (cost/checkpoint.h threat model): feeding any byte
// string to load() either returns false (missing/foreign magic), throws
// util::ContractViolation (truncated / oversized / dimension-forged /
// non-finite payload), or succeeds — and on success the model must produce
// finite predictions. It must never abort, leak, over-allocate from a
// forged size field, or leave the live weights half-overwritten.
#include <cmath>
#include <cstdint>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "cost/ithemal_model.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace {

comet::cost::IthemalConfig fuzz_config() {
  comet::cost::IthemalConfig cfg;
  cfg.embed_dim = 4;
  cfg.hidden_dim = 6;
  return cfg;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static comet::cost::IthemalModel* model = new comet::cost::IthemalModel(
      comet::cost::MicroArch::Haswell, fuzz_config());
  static const comet::x86::BasicBlock probe =
      comet::x86::parse_block("add rcx, rax\nmov rdx, rcx");
  static const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("comet_fuzz_ithemal_ckpt_" + std::to_string(::getpid()) + ".bin");

  std::FILE* fp = std::fopen(path.string().c_str(), "wb");
  if (fp == nullptr) return 0;
  if (size != 0 && std::fwrite(data, 1, size, fp) != size) {
    std::fclose(fp);
    return 0;
  }
  std::fclose(fp);

  try {
    if (model->load(path)) {
      // The finite-weight gate guarantees loaded weights cannot produce a
      // NaN on this probe block.
      if (!std::isfinite(model->predict(probe))) __builtin_trap();
    }
  } catch (const comet::util::ContractViolation&) {
    // expected: structurally corrupt bytes behind a valid magic
  }
  return 0;
}
