// Fuzz harness: GraniteModel::load over arbitrary checkpoint bytes.
//
// Same contract as fuzz_ithemal_checkpoint (cost/checkpoint.h threat
// model): false on foreign bytes, util::ContractViolation on structural
// corruption, finite predictions on success — never abort/OOM/UB.
#include <cmath>
#include <cstdint>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "cost/granite_model.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace {

comet::cost::GraniteConfig fuzz_config() {
  comet::cost::GraniteConfig cfg;
  cfg.embed_dim = 4;
  cfg.hidden_dim = 4;
  cfg.num_layers = 2;
  return cfg;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static comet::cost::GraniteModel* model = new comet::cost::GraniteModel(
      comet::cost::MicroArch::Haswell, fuzz_config());
  static const comet::x86::BasicBlock probe =
      comet::x86::parse_block("add rcx, rax\nmov rdx, rcx");
  static const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("comet_fuzz_granite_ckpt_" + std::to_string(::getpid()) + ".bin");

  std::FILE* fp = std::fopen(path.string().c_str(), "wb");
  if (fp == nullptr) return 0;
  if (size != 0 && std::fwrite(data, 1, size, fp) != size) {
    std::fclose(fp);
    return 0;
  }
  std::fclose(fp);

  try {
    if (model->load(path)) {
      if (!std::isfinite(model->predict(probe))) __builtin_trap();
    }
  } catch (const comet::util::ContractViolation&) {
    // expected: structurally corrupt bytes behind a valid magic
  }
  return 0;
}
