// Ablation (paper Appendix E, final paragraph): sensitivity to the ε-ball
// radius that defines "the prediction did not change".
//
// The paper sets ε = Δ/4 = 0.25 for the crude model C (its smallest
// prediction step) and 0.5 cycles for real models. Too-small ε rejects
// benign perturbation noise and forces over-large explanations; too-large ε
// accepts everything and produces under-specified ones. The bench sweeps ε
// for C_HSW and reports accuracy plus how often the threshold was met with
// a singleton explanation.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header("Ablation: epsilon-ball radius, C_HSW",
                      "blocks=" + std::to_string(n_blocks) +
                          " (paper uses eps=0.25 for C)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/73);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table({"epsilon", "COMET acc (%)", "avg expl size",
                     "% met threshold"});
  for (const double eps : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::CometOptions opt = bench::crude_options();
    opt.epsilon = eps;
    const auto r =
        core::run_accuracy_experiment(model, test_set, opt, /*seed=*/3);

    const core::CometExplainer explainer(model, opt);
    double sum_size = 0, met = 0;
    for (const auto& lb : test_set.blocks()) {
      const auto e = explainer.explain(lb.block);
      sum_size += double(e.features.size());
      met += e.met_threshold;
    }
    table.add_row({util::Table::fmt(eps), util::Table::fmt(r.comet_pct, 1),
                   util::Table::fmt(sum_size / double(test_set.size()), 2),
                   util::Table::fmt(100.0 * met / double(test_set.size()),
                                    1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: accuracy is flat up to the paper's eps=0.25 (= Delta/4, "
      "the crude\nmodel's smallest prediction step — any smaller radius "
      "distinguishes the same\npredictions) and collapses beyond it, where "
      "genuinely cost-changing\nperturbations are accepted as 'unchanged'.\n");
  return 0;
}
