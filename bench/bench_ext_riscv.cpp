// Extension: the framework ported to RISC-V RV64IM (paper Section 7).
//
// Reruns the Table 2 experiment on the ported stack: explanation accuracy
// of the RV engine against the analytical RV cost model's exact ground
// truth, with random and fixed baselines calibrated the same way as the
// x86 bench. Reported with two criteria — the paper's strict one (nothing
// outside GT) and the loose one (names a GT feature) — because the port
// surfaces an instance-specific challenge the paper predicts: RISC-V's
// format-based opcode replacement lets any R-type ALU op perturb into a
// divide, so coarse anchors lose precision and COMET compensates with
// supersets of GT.
#include <algorithm>

#include "bench/bench_common.h"
#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/generator.h"
#include "util/rng.h"

using namespace comet;
namespace rv = comet::riscv;

namespace {

bool strict_accurate(const rv::RvFeatureSet& expl,
                     const rv::RvFeatureSet& gt) {
  if (expl.empty()) return false;
  return std::all_of(expl.items().begin(), expl.items().end(),
                     [&](const auto& f) { return gt.contains(f); });
}
bool loose_accurate(const rv::RvFeatureSet& expl, const rv::RvFeatureSet& gt) {
  return std::any_of(expl.items().begin(), expl.items().end(),
                     [&](const auto& f) { return gt.contains(f); });
}

/// Random baseline: one uniformly random feature of the block.
rv::RvFeatureSet random_explanation(const rv::BasicBlock& block,
                                    util::Rng& rng) {
  const auto all = rv::extract_features(block);
  rv::RvFeatureSet out;
  out.insert(all.items()[rng.index(all.size())]);
  return out;
}

/// Fixed baseline: always the first instruction (the most frequent GT type
/// in this corpus is an instruction feature).
rv::RvFeatureSet fixed_explanation(const rv::BasicBlock& block) {
  rv::RvFeatureSet out;
  out.insert(rv::RvFeature(
      rv::RvInstFeature{0, block.instructions[0].opcode}));
  return out;
}

}  // namespace

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header(
      "Extension: COMET ported to RISC-V RV64IM (Table 2 analogue)",
      "blocks=" + std::to_string(n_blocks) +
          ", crude RV64 model, (1-delta)=0.7, eps=0.25");

  const rv::RvCostModel model;
  rv::RvExplainOptions opts;
  opts.coverage_samples = bench::scaled(800);
  opts.max_pulls_per_level = 320;
  const rv::RvExplainer explainer(model, opts);

  const auto corpus = rv::generate_corpus(n_blocks, 1234);
  util::Rng rng(7);

  std::size_t rnd_ok = 0, fix_ok = 0, strict_ok = 0, loose_ok = 0;
  for (const auto& block : corpus) {
    const auto gt = model.ground_truth(block);
    rnd_ok += strict_accurate(random_explanation(block, rng), gt);
    fix_ok += strict_accurate(fixed_explanation(block), gt);
    const auto e = explainer.explain(block);
    strict_ok += strict_accurate(e.features, gt);
    loose_ok += loose_accurate(e.features, gt);
  }

  const double n = double(corpus.size());
  util::Table table({"Explanation", "Acc. (%) over C_rv64"});
  table.add_row({"Random", util::Table::fmt(100.0 * rnd_ok / n, 1)});
  table.add_row({"Fixed", util::Table::fmt(100.0 * fix_ok / n, 1)});
  table.add_row({"COMET-RV (strict)", util::Table::fmt(100.0 * strict_ok / n, 1)});
  table.add_row({"COMET-RV (names GT)", util::Table::fmt(100.0 * loose_ok / n, 1)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "x86 reference (Table 2): Random 26.6%%, Fixed 72.3%%, COMET 96.9%%.\n"
      "Expected: COMET-RV beats both baselines decisively; its strict score "
      "trails\nthe x86 engine because RISC-V's format-closed replacement "
      "sets cross cost\nclasses (ALU <-> divide), an instance-specific "
      "challenge Section 7 predicts.\n");
  return 0;
}
