// Figure 6 (Appendix E.2): explanation accuracy over C_HSW as a function of
// the instruction-deletion probability p_del used by the perturbation
// algorithm Γ.
//
// Paper finding: p_del = 0.33 maximizes accuracy (no deletions starve the η
// feature of evidence; all-deletions destroy block structure).
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(50);
  bench::print_header(
      "Figure 6: accuracy vs instruction deletion probability p_del, C_HSW",
      "blocks=" + std::to_string(n_blocks) + " (paper: 100)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/55);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table({"p_del", "COMET accuracy (%)"});
  for (const double pdel : {0.0, 0.17, 0.33, 0.5, 0.75, 1.0}) {
    core::CometOptions opt = bench::crude_options();
    opt.perturb_config.p_delete = pdel;
    const auto r = core::run_accuracy_experiment(model, test_set, opt,
                                                 /*seed=*/1);
    table.add_row({util::Table::fmt(pdel), util::Table::fmt(r.comet_pct, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Paper: p_del = 0.33 gives the maximum accuracy.\n");
  return 0;
}
