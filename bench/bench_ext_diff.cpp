// Extension: AnICA-style differential analysis, explained by COMET.
//
// The paper positions COMET as complementary to AnICA (Ritter & Hack 2022):
// AnICA surfaces blocks where cost models disagree; COMET explains each
// model's prediction. This bench composes the two on the Ithemal-vs-uiCA
// pair the paper studies: scan the test corpus for the largest relative
// prediction gaps, explain both sides, and aggregate the explanation
// feature types per side. If the paper's granularity finding localizes to
// disagreements, the neural model's explanations on exactly these blocks
// should lean on η while the simulator's name instructions and hazards.
#include "bench/bench_common.h"
#include "diff/diff.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(150);
  const std::size_t top_k = bench::scaled(6);
  bench::print_header(
      "Extension: differential analysis Ithemal vs uiCA (HSW)",
      "corpus=" + std::to_string(n_blocks) + " blocks, top_k=" +
          std::to_string(top_k) + ", min relative gap=0.5");

  const auto& dataset = core::zoo_dataset();
  const auto corpus =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/82)
          .block_views();

  const auto ithemal =
      core::make_model(core::ModelKind::Ithemal, cost::MicroArch::Haswell);
  const auto uica =
      core::make_model(core::ModelKind::UiCA, cost::MicroArch::Haswell);

  diff::DiffOptions opts;
  opts.min_rel_gap = 0.5;
  opts.top_k = top_k;
  opts.comet = bench::real_model_options();
  const auto summary =
      diff::analyze_disagreements(*ithemal, *uica, corpus, opts);

  std::printf("%s",
              summary.to_string(ithemal->name(), uica->name()).c_str());
  std::printf(
      "Expected: disagreements cluster on blocks with expensive "
      "instructions or\nlong RAW chains; the neural side's explanations are "
      "more eta-heavy than the\nsimulator's on exactly these blocks.\n");
  return 0;
}
