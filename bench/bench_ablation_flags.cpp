// Ablation (DESIGN.md decision 2): should flag-carried hazards be edges of
// the dependency multigraph COMET extracts features from?
//
// The paper's multigraphs carry register/memory hazards; we exclude flag
// edges by default because nearly every integer ALU instruction writes
// flags, so flag WAW edges between most instruction pairs would flood the
// feature vocabulary with uninformative dependencies. The ablation measures
// (a) the vocabulary size and (b) COMET's accuracy against the crude model
// (built with the *same* graph convention, so the ground truth is
// consistent) with flags included vs excluded.
#include "bench/bench_common.h"
#include "cost/crude_model.h"
#include "graph/features.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header(
      "Ablation: flag-carried hazards in the dependency multigraph, C_HSW",
      "blocks=" + std::to_string(n_blocks));

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/72);

  util::Table table({"flag deps", "avg |P-hat|", "avg dep features",
                     "COMET acc (%)"});
  for (const bool include_flags : {false, true}) {
    graph::DepGraphOptions gopt;
    gopt.include_flag_deps = include_flags;

    double sum_feats = 0, sum_deps = 0;
    for (const auto& lb : test_set.blocks()) {
      const auto fs = graph::extract_features(lb.block, gopt);
      sum_feats += double(fs.size());
      for (const auto& f : fs.items()) sum_deps += f.is_dep();
    }

    const cost::CrudeModel model(cost::MicroArch::Haswell, gopt);
    core::CometOptions opt = bench::crude_options();
    opt.graph_options = gopt;
    const auto r =
        core::run_accuracy_experiment(model, test_set, opt, /*seed=*/3);

    table.add_row({include_flags ? "included" : "excluded (default)",
                   util::Table::fmt(sum_feats / double(test_set.size()), 1),
                   util::Table::fmt(sum_deps / double(test_set.size()), 1),
                   util::Table::fmt(r.comet_pct, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: including flag hazards inflates the dependency-feature "
      "count and\ndrags explanation accuracy down — the search must "
      "distinguish more\nnear-identical candidates on the same budget, and "
      "flag-WAW anchors can\nshadow the register hazards the ground truth "
      "names.\n");
  return 0;
}
