// Table 2: Accuracy of COMET's explanations over the crude interpretable
// cost model C, for Haswell and Skylake, against the random and fixed
// explanation baselines. Paper reference values:
//
//   Random  26.56 +- 20.30 (HSW)   26.60 +- 20.34 (SKL)
//   Fixed   72.33              74.0
//   COMET   96.90 +- 0.92     98.00 +- 0.80
//
// Shape target: Random << Fixed << COMET, with COMET far ahead.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(120);
  const int n_seeds = 3;
  bench::print_header(
      "Table 2: accuracy of COMET's explanations over crude model C",
      "blocks=" + std::to_string(n_blocks) + " seeds(paper:5,blocks:200)=" +
          std::to_string(n_seeds) + " (1-delta)=0.7 eps=0.25");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/99);

  util::Table table({"Explanation", "Acc.(%) over C_HSW", "Acc.(%) over C_SKL"});
  std::vector<double> random_acc[2], fixed_acc[2], comet_acc[2];
  for (int u = 0; u < 2; ++u) {
    const auto uarch =
        u == 0 ? cost::MicroArch::Haswell : cost::MicroArch::Skylake;
    const cost::CrudeModel model(uarch);
    for (int seed = 1; seed <= n_seeds; ++seed) {
      const auto r = core::run_accuracy_experiment(
          model, test_set, bench::crude_options(), seed);
      random_acc[u].push_back(r.random_pct);
      fixed_acc[u].push_back(r.fixed_pct);
      comet_acc[u].push_back(r.comet_pct);
      std::printf("  [seed %d %s] random=%.1f fixed=%.1f comet=%.1f\n", seed,
                  cost::uarch_name(uarch).c_str(), r.random_pct, r.fixed_pct,
                  r.comet_pct);
    }
  }

  const auto row = [&](const char* name, std::vector<double>* acc,
                       bool with_std) {
    const auto h = core::summarize(acc[0]);
    const auto s = core::summarize(acc[1]);
    table.add_row({name,
                   with_std ? util::Table::fmt_pm(h.mean, h.std)
                            : util::Table::fmt(h.mean),
                   with_std ? util::Table::fmt_pm(s.mean, s.std)
                            : util::Table::fmt(s.mean)});
  };
  row("Random", random_acc, true);
  row("Fixed", fixed_acc, false);
  row("COMET", comet_acc, true);
  std::printf("%s", table.to_string().c_str());
  std::printf("Paper: Random 26.6+-20.3 | Fixed 72.3/74.0 | COMET 96.9/98.0\n");
  return 0;
}
