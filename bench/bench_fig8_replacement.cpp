// Figure 8 (Appendix E.4): explanation accuracy over C_HSW for the two
// instruction-replacement schemes of Γ: opcode-only replacement (COMET's
// default) vs whole-instruction replacement (operands re-randomized too).
//
// Paper finding: opcode-only replacement yields higher accuracy, because
// operand re-randomization conflates instruction-feature perturbations with
// dependency-feature perturbations.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(50);
  bench::print_header(
      "Figure 8: accuracy by instruction replacement scheme, C_HSW",
      "blocks=" + std::to_string(n_blocks) + " (paper: 100)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/55);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table({"Replacement scheme", "COMET accuracy (%)"});
  for (const bool whole : {false, true}) {
    core::CometOptions opt = bench::crude_options();
    opt.perturb_config.whole_instruction_replacement = whole;
    const auto r = core::run_accuracy_experiment(model, test_set, opt,
                                                 /*seed=*/1);
    table.add_row({whole ? "whole instruction" : "opcode only",
                   util::Table::fmt(r.comet_pct, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Paper: opcode-only replacement is more accurate.\n");
  return 0;
}
