// Extension: closing the paper's feedback loop (Section 7) — fine-tune the
// neural model on COMET's perturbation distribution and re-measure both the
// error and the explanation granularity.
//
// The paper observes (Figures 2-4) that lower-error models explain with
// finer-grained features, and proposes using COMET's feedback during
// training. Here the loop is closed mechanically: Γ({η})-perturbations of
// training blocks are labeled by the hardware oracle and used to fine-tune
// the warm LSTM. Each augmented pair differs from its original only in
// instructions/dependencies, so the model is explicitly rewarded for
// reading fine-grained features. The bench reports MAPE and the Figure-2
// feature-type composition before and after.
#include "bench/bench_common.h"
#include "cost/finetune.h"
#include "cost/ithemal_model.h"
#include "sim/models.h"

using namespace comet;

namespace {

struct Snapshot {
  double mape = 0.0;
  double pct_eta = 0.0, pct_inst = 0.0, pct_dep = 0.0;
};

/// MAPE over a wide held-out slice (stable), explanation composition over
/// the small explanation test set (expensive).
Snapshot measure(const cost::CostModel& model, const bhive::Dataset& holdout,
                 const bhive::Dataset& expl_set) {
  const auto stats = core::analyze_model(
      model, cost::MicroArch::Haswell, expl_set,
      bench::real_model_options(),
      /*precision_samples=*/0, /*coverage_samples=*/0, /*seed=*/7);
  std::vector<double> preds, acts;
  for (const auto& lb : holdout.blocks()) {
    preds.push_back(model.predict(lb.block));
    acts.push_back(lb.measured(cost::MicroArch::Haswell));
  }
  return {util::mape(preds, acts), stats.pct_with_num_insts,
          stats.pct_with_inst, stats.pct_with_dep};
}

}  // namespace

int main() {
  const std::size_t n_train = bench::scaled(400);
  const std::size_t n_test = bench::scaled(25);
  bench::print_header(
      "Extension: explanation-guided fine-tuning of Ithemal (HSW)",
      "finetune blocks=" + std::to_string(n_train) +
          ", explanation test blocks=" + std::to_string(n_test) +
          ", 2 rounds x 6 perturbations/block");

  const auto& dataset = core::zoo_dataset();
  const auto train = dataset.head(n_train);
  // Held-out MAPE slice: blocks the fine-tuning pass never touches.
  std::vector<bhive::LabeledBlock> holdout_blocks(
      dataset.blocks().begin() + n_train,
      dataset.blocks().begin() + std::min(dataset.size(), n_train + 600));
  const bhive::Dataset holdout(std::move(holdout_blocks));
  const auto test = bhive::explanation_test_set(dataset, n_test, /*seed=*/83);

  // Warm model: the canonical cached Ithemal.
  cost::IthemalModel model(cost::MicroArch::Haswell);
  const auto& ds = core::zoo_dataset();
  model.train_or_load(core::zoo_data_dir() + "/ithemal_hsw.bin",
                      ds.block_views(),
                      ds.label_views(cost::MicroArch::Haswell));

  const Snapshot before = measure(model, holdout, test);

  const sim::HardwareOracle oracle(cost::MicroArch::Haswell);
  cost::FinetuneOptions fopt;
  fopt.rounds = 2;
  fopt.perturbations_per_block = 6;
  fopt.original_replays = 6;
  const auto result = cost::finetune_with_perturbations(
      model, train.block_views(),
      train.label_views(cost::MicroArch::Haswell), oracle, fopt);

  const Snapshot after = measure(model, holdout, test);

  util::Table table({"", "held-out MAPE (%)", "% eta", "% inst", "% dep"});
  table.add_row({"before", util::Table::fmt(before.mape, 1),
                 util::Table::fmt(before.pct_eta, 1),
                 util::Table::fmt(before.pct_inst, 1),
                 util::Table::fmt(before.pct_dep, 1)});
  table.add_row({"after", util::Table::fmt(after.mape, 1),
                 util::Table::fmt(after.pct_eta, 1),
                 util::Table::fmt(after.pct_inst, 1),
                 util::Table::fmt(after.pct_dep, 1)});
  std::printf("%s", table.to_string().c_str());
  std::printf("augmented samples consumed: %zu (train-set MAPE %.1f%% -> "
              "%.1f%%)\n",
              result.augmented_samples, result.mape_before,
              result.mape_after);
  std::printf(
      "Expected: MAPE drops and the explanation mix shifts away from eta "
      "toward\ninst/dep features — the paper's inverse correlation, induced "
      "by training.\n");
  return 0;
}
