// Figure 2: Variation of MAPE of Ithemal and uiCA alongside the percentage
// of COMET explanations containing each feature type (η = number of
// instructions, inst = specific instructions, δ = data dependencies), for
// (a) Haswell and (b) Skylake.
//
// Paper's hypothesis and finding: the lower-error model (uiCA) depends more
// on fine-grained features (inst, δ); the higher-error model (Ithemal)
// depends more on the coarse-grained feature (η). Shape target:
//   MAPE(Ithemal) > MAPE(uiCA),
//   %η(Ithemal)  > %η(uiCA),
//   %inst/δ(Ithemal) < %inst/δ(uiCA).
#include "bench/bench_common.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(50);
  const std::size_t prec_samples = bench::scaled(100);
  const std::size_t cov_samples = bench::scaled(400);
  bench::print_header(
      "Figure 2: model error vs explanation feature granularity",
      "blocks=" + std::to_string(n_blocks) + " (paper: 200)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/99);

  for (const auto uarch :
       {cost::MicroArch::Haswell, cost::MicroArch::Skylake}) {
    std::printf("-- Figure 2(%s): %s --\n",
                uarch == cost::MicroArch::Haswell ? "a" : "b",
                cost::uarch_name(uarch).c_str());
    util::Table table(
        {"Model", "MAPE(%)", "% expl. with eta", "% with inst", "% with dep"});
    for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA}) {
      const auto model = core::make_model(kind, uarch);
      const auto stats =
          core::analyze_model(*model, uarch, test_set,
                              bench::real_model_options(), prec_samples,
                              cov_samples, /*seed=*/1);
      table.add_row({model->name(), util::Table::fmt(stats.mape, 1),
                     util::Table::fmt(stats.pct_with_num_insts, 1),
                     util::Table::fmt(stats.pct_with_inst, 1),
                     util::Table::fmt(stats.pct_with_dep, 1)});
    }
    std::printf("%s", table.to_string().c_str());
  }
  std::printf(
      "Shape target: Ithemal has higher MAPE and more eta-explanations;\n"
      "uiCA has lower MAPE and more inst/dep-explanations.\n");
  return 0;
}
