// Extension: global explanations (paper Section 4's formalization, before
// its block-specific relaxation).
//
// Section 4 introduces explanations of a model's behavior over a prediction
// set T via the hypothetical model M1 (2 cycles iff η = 8). This bench runs
// the GlobalExplainer on (a) that exact construction, which must recover
// "eta = 8" with precision = recall = 1, and (b) real prediction ranges of
// the crude model C and the uiCA-style simulator, where division-dominated
// and dependency-dominated cost regimes should surface as has(div) /
// has-dep(RAW)-style concepts.
#include "bench/bench_common.h"
#include "core/global.h"
#include "cost/crude_model.h"

using namespace comet;

namespace {

class M1 final : public cost::CostModel {
 public:
  double predict(const x86::BasicBlock& block) const override {
    return block.size() == 8 ? 2.0 : 1.0;
  }
  std::string name() const override { return "M1"; }
};

}  // namespace

int main() {
  const std::size_t n_corpus = bench::scaled(400);
  bench::print_header("Extension: global explanations (Section 4)",
                      "corpus=" + std::to_string(n_corpus) + " blocks");

  const auto corpus = core::zoo_dataset().head(n_corpus).block_views();

  util::Table table({"Model", "T (cycles)", "Global explanation"});

  // (a) The paper's M1 construction.
  {
    const M1 m1;
    const core::GlobalExplainer ex(m1, corpus, {});
    table.add_row({"M1 (eta==8 -> 2)", "[1.5, 2.5]",
                   ex.explain_range(1.5, 2.5).to_string()});
  }

  // (b) Crude model: the expensive tail is the divide regime.
  {
    const cost::CrudeModel crude(cost::MicroArch::Haswell);
    const core::GlobalExplainer ex(crude, corpus, {});
    table.add_row({"C (HSW)", "[18, 1e9]",
                   ex.explain_range(18.0, 1e9).to_string()});
    table.add_row({"C (HSW)", "[0, 2.5]",
                   ex.explain_range(0.0, 2.5).to_string()});
  }

  // (c) uiCA-style simulator: same ranges on a non-analytical model.
  {
    const auto uica =
        core::make_model(core::ModelKind::UiCA, cost::MicroArch::Haswell);
    const core::GlobalExplainer ex(*uica, corpus, {});
    table.add_row({"uiCA (HSW)", "[18, 1e9]",
                   ex.explain_range(18.0, 1e9).to_string()});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: M1 recovers eta=8 exactly (prec=recall=1). For C and the\n"
      "simulator, the expensive range is pinned by divide-class features;\n"
      "the cheap range is explained with high precision but lower recall\n"
      "(no single positive feature covers all cheap blocks), illustrating\n"
      "why the paper pivots to block-specific explanations for real "
      "models.\n");
  return 0;
}
