// Shared scaffolding for the experiment benches. Every bench binary
// regenerates one table or figure of the paper and prints the same
// rows/series the paper reports, through util::Table.
//
// Sample budgets are scaled down from the paper's (which used ~1 minute per
// explained block and 10k-sample coverage pools) so the full bench suite
// runs in minutes; set COMET_BENCH_SCALE=<float> to multiply block counts
// and sample budgets (1.0 = defaults, 4.0 ~ paper-sized test sets). Every
// bench prints the parameters it actually used.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/comet.h"
#include "core/eval.h"
#include "core/model_zoo.h"
#include "util/table.h"

namespace comet::bench {

inline double scale() {
  if (const char* s = std::getenv("COMET_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const double v = static_cast<double>(base) * scale();
  return static_cast<std::size_t>(v < 1 ? 1 : v);
}

/// COMET options for explaining the crude analytical model C
/// (ε = 0.25, the least unit of C's prediction; Appendix E).
inline core::CometOptions crude_options() {
  core::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = scaled(800);
  return opt;
}

/// COMET options for real cost models (ε = 0.5 cycles; Appendix E), with a
/// lighter query budget since neural-model queries are the expensive part.
inline core::CometOptions real_model_options() {
  core::CometOptions opt;
  opt.epsilon = 0.5;
  opt.coverage_samples = scaled(600);
  opt.batch_size = 8;
  opt.max_pulls_per_level = 80;
  opt.final_precision_samples = 120;
  return opt;
}

inline void print_header(const std::string& title,
                         const std::string& params) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", params.c_str());
  std::printf("==============================================================\n");
}

}  // namespace comet::bench
