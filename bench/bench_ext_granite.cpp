// Extension: a second neural cost model (Granite-style GNN) behind the same
// query-only interface.
//
// The paper cites Granite (Sykora et al. 2022) as another neural cost-model
// family and stresses that COMET "is applicable to other models as well, as
// it requires just query access". This bench substantiates that claim on
// our substrate: it reruns the Table 3 precision/coverage evaluation and the
// Figure 2 error-vs-granularity analysis with the GNN alongside the LSTM
// and the uiCA-style simulator. The graph model sees dependency structure
// directly, so its explanations should sit between Ithemal's (coarse,
// η-heavy) and uiCA's (fine-grained) on the granularity axis.
#include "bench/bench_common.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(30);
  const std::size_t prec_samples = bench::scaled(120);
  const std::size_t cov_samples = bench::scaled(600);
  bench::print_header(
      "Extension: Granite-style GNN under COMET (Table 3 / Figure 2 lens)",
      "blocks=" + std::to_string(n_blocks) +
          ", precision samples=" + std::to_string(prec_samples) +
          ", coverage samples=" + std::to_string(cov_samples));

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/81);

  util::Table table({"Model", "MAPE (%)", "Av. Precision", "Av. Coverage",
                     "% eta", "% inst", "% dep"});
  for (const auto uarch : {cost::MicroArch::Haswell, cost::MicroArch::Skylake}) {
    for (const auto kind :
         {core::ModelKind::Ithemal, core::ModelKind::Granite,
          core::ModelKind::UiCA}) {
      const auto model = core::make_model(kind, uarch);
      const auto stats = core::analyze_model(
          *model, uarch, test_set, bench::real_model_options(), prec_samples,
          cov_samples, /*seed=*/5);
      table.add_row({model->name(), util::Table::fmt(stats.mape, 1),
                     util::Table::fmt(stats.avg_precision, 2),
                     util::Table::fmt(stats.avg_coverage, 2),
                     util::Table::fmt(stats.pct_with_num_insts, 1),
                     util::Table::fmt(stats.pct_with_inst, 1),
                     util::Table::fmt(stats.pct_with_dep, 1)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: all three models explain with comparable precision/coverage "
      "(the\nframework is model-agnostic); on the granularity axis the GNN "
      "sits between\nthe sequence LSTM (most eta-reliant) and the simulator "
      "(most fine-grained),\nconsistent with the paper's error-vs-granularity "
      "correlation.\n");
  return 0;
}
