// Serving-throughput bench: requests/sec of the concurrent explanation
// server vs. the sequential path, at 1/2/4/8 workers.
//
// The regime that motivates the serve/ subsystem (ROADMAP: async broker,
// sharded serving) is a model backend whose per-query latency is not this
// process's CPU — a remote inference service, a simulator farm, a
// measurement rig. serve::RemoteStandInModel reproduces that regime
// portably (including on single-core CI runners) by charging a fixed
// round-trip per predict_batch call on top of the real crude/oracle
// models; predictions are untouched, so every served explanation is
// verified bit-identical to its sequentially computed twin.
//
// Also measured, same reasoning: the engine's fused-arm-pull mode
// (engine-level batch widening — fewer round-trips per level) and the
// async-pipelined mode (sampling overlaps evaluation) on the sequential
// path.
//
// Acceptance gate printed explicitly: >= 2x throughput at 4 workers vs.
// sequential, with bit-identical results.
//
// Overrides for CI fast smoke (env wins over argv):
//   COMET_SERVE_WORKERS=2,4   (or argv[1])  worker counts to sweep
//   COMET_SERVE_JOBS=4        (or argv[2])  number of requests to submit
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bhive/paper_blocks.h"
#include "cost/crude_model.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/isa_servers.h"
#include "serve/remote_model.h"
#include "serve/shed_policy.h"
#include "sim/models.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace ck = comet::cost;
namespace cs = comet::serve;
namespace cx = comet::x86;
using comet::bench::print_header;
using comet::bench::scaled;
using comet::util::Table;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Request {
  std::string key;
  cx::BasicBlock block;
  cc::CometOptions options;
};

cc::CometOptions serving_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = scaled(200);
  opt.batch_size = 8;
  opt.max_pulls_per_level = 48;
  opt.final_precision_samples = 64;
  opt.seed = seed;
  return opt;
}

bool identical(const cc::Explanation& a, const cc::Explanation& b) {
  return a.features == b.features && a.precision == b.precision &&
         a.coverage == b.coverage && a.met_threshold == b.met_threshold &&
         a.model_queries == b.model_queries;
}

// Parses a csv/whitespace list of unsigned integers ("2,4" -> {2, 4}).
std::vector<std::size_t> parse_counts(const char* s) {
  std::vector<std::size_t> out;
  std::size_t cur = 0;
  bool have = false;
  for (; s != nullptr && *s != '\0'; ++s) {
    if (*s >= '0' && *s <= '9') {
      cur = cur * 10 + static_cast<std::size_t>(*s - '0');
      have = true;
    } else if (have) {
      out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have) out.push_back(cur);
  return out;
}

// Merges every histogram whose name starts with `prefix` (i.e. all
// model_key labels of one base metric) into a single snapshot.
comet::obs::HistogramSnapshot merged_hist(
    const comet::obs::MetricsRegistry::Snapshot& snap,
    const std::string& prefix) {
  comet::obs::HistogramSnapshot out;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind(prefix, 0) == 0) out += h;
  }
  return out;
}

std::string ns_to_ms(double ns) { return Table::fmt(ns / 1e6, 2); }

}  // namespace

int main(int argc, char** argv) {
  constexpr auto kRoundTrip = std::chrono::microseconds(3000);

  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  if (const char* env = std::getenv("COMET_SERVE_WORKERS")) {
    worker_counts = parse_counts(env);
  } else if (argc > 1) {
    worker_counts = parse_counts(argv[1]);
  }
  if (worker_counts.empty()) worker_counts = {1, 2, 4, 8};
  std::size_t jobs_override = 0;  // 0 = default request set
  if (const char* env = std::getenv("COMET_SERVE_JOBS")) {
    const auto parsed = parse_counts(env);
    if (!parsed.empty()) jobs_override = parsed[0];
  } else if (argc > 2) {
    const auto parsed = parse_counts(argv[2]);
    if (!parsed.empty()) jobs_override = parsed[0];
  }

  auto crude =
      std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  auto oracle =
      std::make_shared<const comet::sim::HardwareOracle>(ck::MicroArch::Haswell);
  auto remote_crude =
      std::make_shared<const cs::RemoteStandInModel>(crude, kRoundTrip);
  auto remote_oracle =
      std::make_shared<const cs::RemoteStandInModel>(oracle, kRoundTrip);

  const std::vector<cx::BasicBlock> blocks = {
      cb::listing1_motivating(),    cb::listing2_case_study1(),
      cb::listing3_case_study2(),   cb::listing4_appendixF_beta1(),
      cb::listing5_appendixF_beta2(),
  };
  std::vector<Request> requests;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    requests.push_back({"crude-hsw", blocks[i], serving_options(10 + i)});
    requests.push_back({"oracle-hsw", blocks[i], serving_options(20 + i)});
  }
  if (jobs_override != 0) {
    std::vector<Request> cycled;
    for (std::size_t i = 0; i < jobs_override; ++i) {
      Request r = requests[i % requests.size()];
      r.options.seed = 100 + i;  // distinct seeds: no hidden dedup
      cycled.push_back(std::move(r));
    }
    requests = std::move(cycled);
  }

  print_header(
      "Serving throughput: concurrent explanation server vs. sequential",
      "remote-backend stand-in, round-trip = " +
          std::to_string(kRoundTrip.count()) + " us/batch, " +
          std::to_string(requests.size()) + " requests (crude + oracle, " +
          std::to_string(blocks.size()) + " paper blocks)");

  const auto model_for = [&](const std::string& key) {
    return key == "crude-hsw"
               ? std::static_pointer_cast<const ck::CostModel>(remote_crude)
               : std::static_pointer_cast<const ck::CostModel>(remote_oracle);
  };

  // ---- sequential baseline (and the parity reference) ----
  std::vector<cc::Explanation> reference;
  const auto seq_start = Clock::now();
  for (const auto& r : requests) {
    reference.push_back(
        cc::CometExplainer(*model_for(r.key), r.options).explain(r.block));
  }
  const double seq_ms = ms_since(seq_start);

  // ---- served at 1/2/4/8 workers ----
  Table table({"workers", "wall ms", "req/s", "speedup", "bit-identical"});
  table.add_row({"sequential", Table::fmt(seq_ms, 1),
                 Table::fmt(1000.0 * requests.size() / seq_ms, 2), "1.00x",
                 "-"});
  double speedup_at_4 = 0.0;
  bool swept_4 = false;
  bool all_identical = true;
  Table latency({"workers", "queue p50", "queue p95", "queue p99", "run p50",
                 "run p95", "run p99"});
  std::string last_report;
  for (const std::size_t workers : worker_counts) {
    cs::X86ExplanationServer server(
        {.workers = workers, .queue_capacity = requests.size()});
    server.register_model("crude-hsw", remote_crude);
    server.register_model("oracle-hsw", remote_oracle);
    const auto start = Clock::now();
    std::vector<std::uint64_t> tickets;
    for (const auto& r : requests) {
      tickets.push_back(server.submit(r.key, r.block, r.options));
    }
    const auto results = server.drain();
    const double wall_ms = ms_since(start);

    bool ok = results.size() == requests.size();
    for (const auto& served : results) {
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (tickets[i] == served.id) {
          ok = ok && identical(served.explanation, reference[i]);
        }
      }
    }
    all_identical = all_identical && ok;
    const double speedup = seq_ms / wall_ms;
    if (workers == 4) {
      speedup_at_4 = speedup;
      swept_4 = true;
    }
    table.add_row({std::to_string(workers), Table::fmt(wall_ms, 1),
                   Table::fmt(1000.0 * requests.size() / wall_ms, 2),
                   Table::fmt(speedup, 2) + "x", ok ? "yes" : "NO"});

    // Request-lifecycle latencies, merged across model keys (the server
    // keeps one histogram per model_key label).
    const auto snap = server.metrics().snapshot();
    const auto queue = merged_hist(snap, "serve_queue_wait_ns");
    const auto run = merged_hist(snap, "serve_run_ns");
    latency.add_row({std::to_string(workers), ns_to_ms(queue.p50()),
                     ns_to_ms(queue.p95()), ns_to_ms(queue.p99()),
                     ns_to_ms(run.p50()), ns_to_ms(run.p95()),
                     ns_to_ms(run.p99())});
    last_report = server.report();
  }
  std::printf("%s\n", table.to_string().c_str());
  print_header("Request-lifecycle latency percentiles (ms)",
               "queue-wait = admit -> worker pickup; run = worker service");
  std::printf("%s\n", latency.to_string().c_str());
  std::printf("query traffic at %zu workers:\n%s\n", worker_counts.back(),
              last_report.c_str());
  if (swept_4) {
    std::printf("speedup at 4 workers = %.2fx (target >= 2x): %s\n",
                speedup_at_4,
                speedup_at_4 >= 2.0 && all_identical ? "PASS" : "FAIL");
  } else {
    std::printf("gate skipped (4 workers not swept); bit-identical: %s\n",
                all_identical ? "yes" : "NO");
  }

  // ---- engine-level levers on the sequential path ----
  // Widened batches (fuse_arm_pulls) cut the number of round-trips each
  // level pays; async pipelining (async_inflight) overlaps sampling with
  // the backend round-trip. Both are bit-identical to the plain path.
  print_header("Engine-level levers vs. the same remote backend",
               "sequential path, crude model, same requests");
  std::size_t plain_trips = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].key == "crude-hsw") {
      plain_trips += reference[i].query_stats.batch_calls;
    }
  }
  Table levers({"mode", "wall ms", "round-trips", "identical"});
  const auto run_mode = [&](const std::string& label, bool fuse,
                            std::size_t inflight) {
    std::size_t trips = 0;
    bool ok = true;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].key != "crude-hsw") continue;
      cc::CometOptions opt = requests[i].options;
      opt.fuse_arm_pulls = fuse;
      opt.async_inflight = inflight;
      const auto e =
          cc::CometExplainer(*remote_crude, opt).explain(requests[i].block);
      trips += e.query_stats.batch_calls;
      ok = ok && identical(e, reference[i]);
    }
    levers.add_row({label, Table::fmt(ms_since(start), 1),
                    std::to_string(trips), ok ? "yes" : "NO"});
  };
  {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].key != "crude-hsw") continue;
      cc::CometExplainer(*remote_crude, requests[i].options)
          .explain(requests[i].block);
    }
    levers.add_row({"plain", Table::fmt(ms_since(start), 1),
                    std::to_string(plain_trips), "-"});
  }
  run_mode("fused arm pulls", /*fuse=*/true, /*inflight=*/0);
  run_mode("async inflight=3", /*fuse=*/false, /*inflight=*/3);
  std::printf("%s\n", levers.to_string().c_str());

  // ---- overload: priority lanes and load shedding under 2x load ----
  // Offered load is 2x what the admission queue + workers hold at once,
  // alternating interactive/batch. With shedding off, the whole backlog
  // queues behind the bounded queue (backpressure) and interactive tail
  // latency pays for every batch job ahead of it; with the watermark
  // policy on, batch work is shed early (a typed refusal, never a silent
  // drop — ok + shed always equals offered) and the interactive tail
  // tightens. Goodput counts completed explanations only. Honors the
  // same COMET_SERVE_WORKERS (last entry) / COMET_SERVE_JOBS overrides.
  const std::size_t ov_workers = worker_counts.back();
  const std::size_t ov_capacity = 2 * ov_workers;
  const std::size_t ov_offered =
      jobs_override != 0 ? jobs_override : 2 * (ov_capacity + ov_workers);
  print_header("Overload: 2x offered load, shedding off vs on",
               std::to_string(ov_offered) + " requests at " +
                   std::to_string(ov_workers) + " workers, queue capacity " +
                   std::to_string(ov_capacity) +
                   ", interactive/batch alternating");
  Table overload({"shedding", "wall ms", "ok", "shed", "goodput req/s",
                  "interactive p50 ms", "interactive p99 ms"});
  bool accounted = true;
  for (const bool shed_on : {false, true}) {
    cs::ServeOptions serve_options;
    serve_options.workers = ov_workers;
    serve_options.queue_capacity = ov_capacity;
    if (shed_on) {
      serve_options.shed_policy =
          std::make_shared<const cs::WatermarkShedPolicy>();
    }
    cs::X86ExplanationServer server(serve_options);
    server.register_model("crude-hsw", remote_crude);
    server.register_model("oracle-hsw", remote_oracle);

    const auto start = Clock::now();
    for (std::size_t i = 0; i < ov_offered; ++i) {
      const Request& r = requests[i % requests.size()];
      cs::RequestOptions request;
      request.lane = i % 2 == 0 ? cs::Lane::kInteractive : cs::Lane::kBatch;
      if (request.lane == cs::Lane::kInteractive) {
        // Generous enough that feasible work never expires; the deadline
        // is what lets the saturation watermark judge feasibility.
        request.deadline_ns =
            comet::obs::steady_clock().now_ns() + 60ull * 1'000'000'000;
      }
      cc::CometOptions job = r.options;
      job.seed = 1000 + i;  // distinct seeds: no hidden dedup
      server.submit(r.key, r.block, job, request);
    }
    const auto results = server.drain();
    const double wall_ms = ms_since(start);

    std::size_t ok = 0;
    std::size_t shed = 0;
    std::size_t other = 0;
    std::vector<double> interactive_ms;
    for (const auto& served : results) {
      if (cs::has_explanation(served.status)) {
        ++ok;
        if (served.lane == cs::Lane::kInteractive) {
          interactive_ms.push_back(
              static_cast<double>(served.trace.done_ns -
                                  served.trace.admit_ns) /
              1e6);
        }
      } else if (served.status == cs::ServeStatus::kShed) {
        ++shed;
      } else {
        ++other;
      }
    }
    accounted = accounted && other == 0 && ok + shed == ov_offered;
    std::sort(interactive_ms.begin(), interactive_ms.end());
    const auto pct = [&interactive_ms](double p) {
      if (interactive_ms.empty()) return 0.0;
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(interactive_ms.size() - 1) + 0.5);
      return interactive_ms[std::min(idx, interactive_ms.size() - 1)];
    };
    overload.add_row({shed_on ? "watermark" : "off", Table::fmt(wall_ms, 1),
                      std::to_string(ok), std::to_string(shed),
                      Table::fmt(1000.0 * static_cast<double>(ok) / wall_ms,
                                 2),
                      Table::fmt(pct(0.50), 2), Table::fmt(pct(0.99), 2)});
  }
  std::printf("%s\n", overload.to_string().c_str());
  std::printf("every offered request accounted (ok + shed == offered): %s\n",
              accounted ? "yes" : "NO");

  return 0;
}
