// Appendix F: estimated cardinality of the perturbation space Π̂(F) for the
// paper's two example blocks. Paper reference values:
//
//   β1 (Listing 4):  |Π̂(∅)| ≈ 1.94e38,  |Π̂({inst1})| ≈ 6.58e29
//   β2 (Listing 5):  |Π̂(∅)| ≈ 1.63e32,  |Π̂({inst2})| ≈ 2.77e28
//
// Shape target: astronomical counts that shrink by many orders of magnitude
// when a single instruction feature is preserved — the argument for why
// ideal explanations are intractable and sampling is required.
#include <cmath>

#include "bench/bench_common.h"
#include "bhive/paper_blocks.h"
#include "perturb/perturber.h"

using namespace comet;

namespace {

std::string sci(double log10v) {
  const double frac = log10v - std::floor(log10v);
  return util::Table::fmt(std::pow(10.0, frac), 2) + "e" +
         std::to_string(static_cast<long>(std::floor(log10v)));
}

}  // namespace

int main() {
  bench::print_header("Appendix F: perturbation space size estimates", "");

  util::Table table({"Block", "F", "|Pi_hat(F)| (est.)", "log10"});
  const struct {
    const char* name;
    x86::BasicBlock block;
    std::size_t pinned_inst;  // paper pins inst1 for beta1, inst2 for beta2
  } cases[] = {
      {"beta1 (Listing 4)", bhive::listing4_appendixF_beta1(), 0},
      {"beta2 (Listing 5)", bhive::listing5_appendixF_beta2(), 1},
  };
  for (const auto& c : cases) {
    const perturb::Perturber perturber(c.block);
    const double all = perturber.log10_space_size(graph::FeatureSet{});
    graph::FeatureSet pinned;
    pinned.insert(graph::Feature(graph::InstFeature{
        c.pinned_inst, c.block.instructions[c.pinned_inst].opcode}));
    const double constrained = perturber.log10_space_size(pinned);
    table.add_row({c.name, "{}", sci(all), util::Table::fmt(all, 1)});
    table.add_row({c.name,
                   "{inst" + std::to_string(c.pinned_inst + 1) + "}",
                   sci(constrained), util::Table::fmt(constrained, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Paper: beta1 1.94e38 -> 6.58e29 (pin inst1); beta2 1.63e32 -> "
      "2.77e28 (pin inst2).\n");
  return 0;
}
