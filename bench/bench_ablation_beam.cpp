// Ablation (Anchors hyperparameters): beam width of the iterative
// explanation construction.
//
// Width 1 degenerates to greedy best-first construction; wider beams keep
// more candidate feature sets alive per level at proportionally more model
// queries. The paper uses the Anchors default; this bench shows where the
// accuracy/cost tradeoff flattens.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header("Ablation: beam width, C_HSW",
                      "blocks=" + std::to_string(n_blocks));

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/74);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table({"beam width", "COMET acc (%)", "avg model queries"});
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    core::CometOptions opt = bench::crude_options();
    opt.beam_width = width;
    const auto r =
        core::run_accuracy_experiment(model, test_set, opt, /*seed=*/3);

    const core::CometExplainer explainer(model, opt);
    double queries = 0;
    for (const auto& lb : test_set.blocks()) {
      queries += double(explainer.explain(lb.block).model_queries);
    }
    table.add_row({std::to_string(width), util::Table::fmt(r.comet_pct, 1),
                   util::Table::fmt(queries / double(test_set.size()), 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: for C's single-bottleneck ground truth a narrow beam "
      "already\nfinds the anchor, at a fraction of the queries; wider beams "
      "surface more\nthreshold-clearing candidates whose higher coverage can "
      "pull in features\noutside GT. Real (non-analytical) models are where "
      "the wider default pays.\n");
  return 0;
}
