// Figure 3: the error-vs-granularity analysis of Figure 2 restricted to
// BHive partitions by *source*: (a) Clang, (b) OpenBLAS (paper: 100 unique
// blocks per source; Haswell models).
#include "bench/bench_common.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header(
      "Figure 3: error vs granularity, partitioned by BHive source",
      "blocks_per_source=" + std::to_string(n_blocks) + " (paper: 100), HSW");

  const auto& dataset = core::zoo_dataset();
  const auto uarch = cost::MicroArch::Haswell;

  int panel = 0;
  for (const auto source :
       {bhive::BlockSource::Clang, bhive::BlockSource::OpenBLAS}) {
    util::Rng rng(31 + panel);
    const auto test_set = dataset.by_source(source).sample(n_blocks, rng);
    std::printf("-- Figure 3(%c): %s (%zu blocks) --\n", 'a' + panel,
                bhive::source_name(source).c_str(), test_set.size());
    util::Table table(
        {"Model", "MAPE(%)", "% expl. with eta", "% with inst", "% with dep"});
    for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA}) {
      const auto model = core::make_model(kind, uarch);
      const auto stats = core::analyze_model(
          *model, uarch, test_set, bench::real_model_options(),
          bench::scaled(100), bench::scaled(400), /*seed=*/1);
      table.add_row({model->name(), util::Table::fmt(stats.mape, 1),
                     util::Table::fmt(stats.pct_with_num_insts, 1),
                     util::Table::fmt(stats.pct_with_inst, 1),
                     util::Table::fmt(stats.pct_with_dep, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    ++panel;
  }
  std::printf("Shape target (both sources): same ordering as Figure 2.\n");
  return 0;
}
