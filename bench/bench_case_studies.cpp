// Section 6.4 case studies: COMET's explanations for Ithemal's and uiCA's
// predictions on the paper's Listing 2 (store-bound block) and Listing 3
// (div + dependency-heavy block), Haswell.
//
// Paper findings:
//   Case 1: both models predict ~2 cycles; both explanations pick the two
//           store instructions (inst2, inst3).
//   Case 2: Ithemal's prediction is far more erroneous than uiCA's; its
//           explanation is the coarse η feature, while uiCA's names the div
//           instruction and a data dependency.
#include "bench/bench_common.h"
#include "bhive/paper_blocks.h"
#include "sim/models.h"

using namespace comet;

namespace {

void run_case(const char* title, const x86::BasicBlock& block,
              double actual_throughput) {
  std::printf("-- %s --\n%s", title, block.to_string().c_str());
  std::printf("actual (oracle-measured equivalent): %.2f cycles; paper's "
              "hardware value: %.1f cycles\n",
              sim::measured_throughput(block, cost::MicroArch::Haswell),
              actual_throughput);
  util::Table table({"Model", "Prediction (cyc)", "Explanation", "prec",
                     "cov"});
  for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA}) {
    const auto model = core::make_model(kind, cost::MicroArch::Haswell);
    core::CometOptions opt = bench::real_model_options();
    opt.coverage_samples = bench::scaled(800);
    const core::CometExplainer explainer(*model, opt);
    const auto expl = explainer.explain(block);
    table.add_row({model->name(), util::Table::fmt(model->predict(block)),
                   expl.features.to_string(),
                   util::Table::fmt(expl.precision, 2),
                   util::Table::fmt(expl.coverage, 2)});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main() {
  bench::print_header("Section 6.4 case studies (Listings 2 and 3, HSW)",
                      "eps=0.5 (1-delta)=0.7");
  run_case("Case study 1 (Listing 2)", bhive::listing2_case_study1(),
           /*paper hardware=*/2.0);
  run_case("Case study 2 (Listing 3)", bhive::listing3_case_study2(),
           /*paper hardware=*/39.0);
  std::printf(
      "Shape target: case 1 explanations name the store instructions for\n"
      "both models; case 2 gives eta for Ithemal but div/dependency features\n"
      "for uiCA, whose prediction is also much closer to the actual value.\n");
  return 0;
}
