// Figure 5 (Appendix E.1): explanation accuracy over the crude model C_HSW
// as a function of the precision threshold (1 - delta).
//
// Paper finding: 0.7 is the highest threshold attaining the best accuracy;
// accuracy degrades for very low thresholds (imprecise anchors accepted)
// and very high ones (true anchors rejected, forcing bigger feature sets).
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(50);
  bench::print_header(
      "Figure 5: accuracy vs precision threshold (1-delta), C_HSW",
      "blocks=" + std::to_string(n_blocks) + " (paper: 100)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/55);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table({"(1-delta)", "COMET accuracy (%)"});
  for (const double threshold : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    core::CometOptions opt = bench::crude_options();
    opt.delta = 1.0 - threshold;
    const auto r = core::run_accuracy_experiment(model, test_set, opt,
                                                 /*seed=*/1);
    table.add_row({util::Table::fmt(threshold), util::Table::fmt(r.comet_pct, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Paper: accuracy peaks at threshold 0.7 and falls beyond it.\n");
  return 0;
}
