// Figure 4: the error-vs-granularity analysis partitioned by BHive block
// *category*: Load, Load/Store, Store, Scalar, Vector, Scalar/Vector
// (paper: 50 unique blocks per category; Haswell models).
//
// The paper's additional observation: for categories where the two models'
// errors are close (Store), the feature-type composition of their
// explanations is also similar.
#include "bench/bench_common.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(20);
  bench::print_header(
      "Figure 4: error vs granularity, partitioned by BHive category",
      "blocks_per_category<=" + std::to_string(n_blocks) +
          " (paper: 50), HSW");

  const auto& dataset = core::zoo_dataset();
  const auto uarch = cost::MicroArch::Haswell;

  const bhive::BlockCategory categories[] = {
      bhive::BlockCategory::Load,        bhive::BlockCategory::LoadStore,
      bhive::BlockCategory::Store,       bhive::BlockCategory::Scalar,
      bhive::BlockCategory::Vector,      bhive::BlockCategory::ScalarVector,
  };
  int panel = 0;
  for (const auto category : categories) {
    util::Rng rng(47 + panel);
    const auto pool = dataset.by_category(category);
    const auto test_set = pool.sample(n_blocks, rng);
    std::printf("-- Figure 4(%c): %s (%zu blocks available, %zu used) --\n",
                'a' + panel, bhive::category_name(category).c_str(),
                pool.size(), test_set.size());
    if (test_set.empty()) {
      std::printf("  (no blocks of this category in the dataset sample)\n");
      ++panel;
      continue;
    }
    util::Table table(
        {"Model", "MAPE(%)", "% expl. with eta", "% with inst", "% with dep"});
    for (const auto kind : {core::ModelKind::Ithemal, core::ModelKind::UiCA}) {
      const auto model = core::make_model(kind, uarch);
      const auto stats = core::analyze_model(
          *model, uarch, test_set, bench::real_model_options(),
          bench::scaled(80), bench::scaled(300), /*seed=*/1);
      table.add_row({model->name(), util::Table::fmt(stats.mape, 1),
                     util::Table::fmt(stats.pct_with_num_insts, 1),
                     util::Table::fmt(stats.pct_with_inst, 1),
                     util::Table::fmt(stats.pct_with_dep, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    ++panel;
  }
  return 0;
}
