// Micro-benchmarks (google-benchmark): throughput of the individual
// components that determine COMET's per-explanation wall-clock — parsing,
// dependency-graph construction, the perturbation algorithm Γ, the
// simulators, the crude model, LSTM inference, and an end-to-end explain().
#include <benchmark/benchmark.h>

#include "bhive/generator.h"
#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "cost/granite_model.h"
#include "cost/ithemal_model.h"
#include "cost/query_broker.h"
#include "graph/depgraph.h"
#include "perturb/perturber.h"
#include "riscv/explain.h"
#include "riscv/generator.h"
#include "sim/bottleneck.h"
#include "sim/models.h"
#include "x86/parser.h"

using namespace comet;

namespace {

const char* kBlockText = R"(
  mov ecx, edx
  xor edx, edx
  lea rax, [rcx + rax - 1]
  div rcx
  mov rdx, rcx
  imul rax, rcx
)";

void BM_ParseBlock(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::parse_block(kBlockText));
  }
}
BENCHMARK(BM_ParseBlock);

void BM_DepGraphBuild(benchmark::State& state) {
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::DepGraph::build(block));
  }
}
BENCHMARK(BM_DepGraphBuild);

void BM_ExtractFeatures(benchmark::State& state) {
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::extract_features(block));
  }
}
BENCHMARK(BM_ExtractFeatures);

void BM_PerturberSample(benchmark::State& state) {
  const perturb::Perturber perturber(bhive::listing3_case_study2());
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.sample(graph::FeatureSet{}, rng));
  }
}
BENCHMARK(BM_PerturberSample);

void BM_CrudeModelPredict(benchmark::State& state) {
  const cost::CrudeModel model(cost::MicroArch::Haswell);
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(block));
  }
}
BENCHMARK(BM_CrudeModelPredict);

void BM_OracleSimulate(benchmark::State& state) {
  const sim::HardwareOracle oracle(cost::MicroArch::Haswell);
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.predict(block));
  }
}
BENCHMARK(BM_OracleSimulate);

void BM_UiCASimulate(benchmark::State& state) {
  const sim::UiCASimModel uica(cost::MicroArch::Haswell);
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uica.predict(block));
  }
}
BENCHMARK(BM_UiCASimulate);

void BM_ExplainCrude(benchmark::State& state) {
  const cost::CrudeModel model(cost::MicroArch::Haswell);
  core::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 300;
  const core::CometExplainer explainer(model, opt);
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.explain(block));
  }
}
BENCHMARK(BM_ExplainCrude)->Unit(benchmark::kMillisecond);

void BM_GranitePredict(benchmark::State& state) {
  const cost::GraniteModel model(cost::MicroArch::Haswell);
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(block));
  }
}
BENCHMARK(BM_GranitePredict);

// --- batched query layer -----------------------------------------------

std::vector<x86::BasicBlock> micro_corpus(std::size_t n) {
  const bhive::BlockGenerator generator;
  util::Rng rng(7);
  std::vector<x86::BasicBlock> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) blocks.push_back(generator.generate(rng));
  return blocks;
}

// Per-query LSTM inference through the sequential single-predict loop ...
void BM_IthemalPredictLoop(benchmark::State& state) {
  const cost::IthemalModel model(cost::MicroArch::Haswell);
  const auto blocks = micro_corpus(64);
  for (auto _ : state) {
    for (const auto& b : blocks) benchmark::DoNotOptimize(model.predict(b));
  }
}
BENCHMARK(BM_IthemalPredictLoop)->Unit(benchmark::kMicrosecond);

// ... versus the per-block inference path (predict_batch driven one block
// at a time — the shape of the pre-cross-block batch loop: tokenization
// plus a one-lane LSTM sweep per block, matrix-vector gate products) ...
void BM_IthemalPredictPerBlock(benchmark::State& state) {
  const cost::IthemalModel model(cost::MicroArch::Haswell);
  const auto blocks = micro_corpus(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(blocks.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      model.predict_batch(std::span<const x86::BasicBlock>(&blocks[i], 1),
                          std::span<double>(&out[i], 1));
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IthemalPredictPerBlock)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// ... versus the cross-block batched path: the token LSTM runs over all
// instructions of all blocks in one lane-packed pass (matrix-matrix gate
// products via the blocked GEMM kernel), then the block LSTM over all
// blocks.
void BM_IthemalPredictBatch(benchmark::State& state) {
  const cost::IthemalModel model(cost::MicroArch::Haswell);
  const auto blocks = micro_corpus(static_cast<std::size_t>(state.range(0)));
  std::vector<double> out(blocks.size());
  for (auto _ : state) {
    model.predict_batch(std::span<const x86::BasicBlock>(blocks),
                        std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IthemalPredictBatch)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// The analytical models' batch path chunked over the shared thread pool
// (CostModel::set_batch_threads) — the serving layer's per-shard batches
// get intra-batch parallelism on top of cross-shard concurrency.
void BM_OracleBatchThreaded(benchmark::State& state) {
  sim::HardwareOracle model(cost::MicroArch::Haswell);
  model.set_batch_threads(static_cast<std::size_t>(state.range(0)));
  const auto blocks = micro_corpus(256);
  std::vector<double> out(blocks.size());
  for (auto _ : state) {
    model.predict_batch(std::span<const x86::BasicBlock>(blocks),
                        std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OracleBatchThreaded)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// The broker's memoization on top of batching, on a stream with repeats
// (the shape of anchor-search traffic).
void BM_BrokerMemoizedBatch(benchmark::State& state) {
  const cost::IthemalModel model(cost::MicroArch::Haswell);
  auto blocks = micro_corpus(16);
  blocks.reserve(64);
  for (std::size_t i = 16; i < 64; ++i) blocks.push_back(blocks[i % 16]);
  std::vector<double> out(blocks.size());
  for (auto _ : state) {
    cost::QueryBroker<x86::BasicBlock, cost::CostModel> broker(model);
    broker.predict_batch(std::span<const x86::BasicBlock>(blocks),
                         std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BrokerMemoizedBatch)->Unit(benchmark::kMicrosecond);

void BM_BottleneckAnalysis(benchmark::State& state) {
  const auto block = bhive::listing3_case_study2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::analyze_bottleneck(block, cost::MicroArch::Haswell));
  }
}
BENCHMARK(BM_BottleneckAnalysis);

void BM_RiscvPerturb(benchmark::State& state) {
  util::Rng gen(42);
  const auto block = riscv::generate_block(gen);
  const riscv::RvPerturber perturber(block);
  util::Rng rng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.sample({}, rng));
  }
}
BENCHMARK(BM_RiscvPerturb);

void BM_RiscvExplain(benchmark::State& state) {
  const riscv::RvCostModel model;
  riscv::RvExplainOptions opt;
  opt.coverage_samples = 300;
  const riscv::RvExplainer explainer(model, opt);
  util::Rng gen(44);
  const auto block = riscv::generate_block(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.explain(block));
  }
}
BENCHMARK(BM_RiscvExplain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
