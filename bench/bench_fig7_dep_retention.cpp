// Figure 7 (Appendix E.3): explanation accuracy AND average explanation
// precision over C_HSW as a function of the explicit data-dependency
// retention probability (the probability that Γ pins a dependency outright
// in a given sample, independent of the preserved feature set).
//
// Paper finding: accuracy and precision have different trends; 0.1 is the
// joint sweet spot.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header(
      "Figure 7: accuracy & precision vs explicit dep retention, C_HSW",
      "blocks=" + std::to_string(n_blocks) + " (paper: 100)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/55);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table(
      {"p_explicit_retain", "COMET accuracy (%)", "avg. precision"});
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    core::CometOptions opt = bench::crude_options();
    opt.perturb_config.p_explicit_dep_retain = p;
    const auto r = core::run_accuracy_experiment(model, test_set, opt,
                                                 /*seed=*/1);
    // Average post-hoc precision of COMET's explanations under this config.
    opt.seed = 1;
    const core::CometExplainer explainer(model, opt);
    util::Rng rng(77);
    std::vector<double> precs;
    for (const auto& lb : test_set.blocks()) {
      const auto expl = explainer.explain(lb.block);
      precs.push_back(explainer.estimate_precision(
          lb.block, expl.features, bench::scaled(120), rng));
    }
    table.add_row({util::Table::fmt(p), util::Table::fmt(r.comet_pct, 1),
                   util::Table::fmt(core::summarize(precs).mean, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("Paper: 0.1 jointly optimizes accuracy and precision.\n");
  return 0;
}
