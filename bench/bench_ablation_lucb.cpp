// Ablation (DESIGN.md decision 4): KL-LUCB adaptive arm allocation vs a
// uniform round-robin baseline, at equal per-level pull budgets.
//
// COMET adopts Anchors' KL-LUCB best-arm identification to concentrate
// model queries on the feature sets whose confidence intervals actually
// gate the beam. The ablation holds the budget fixed and toggles only the
// allocation policy; the adaptive policy should dominate at small budgets
// and converge with the baseline as the budget grows.
#include "bench/bench_common.h"
#include "cost/crude_model.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(40);
  bench::print_header(
      "Ablation: KL-LUCB vs uniform arm allocation, C_HSW",
      "blocks=" + std::to_string(n_blocks) +
          ", budgets are per-level pull caps");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/71);
  const cost::CrudeModel model(cost::MicroArch::Haswell);

  util::Table table(
      {"pull budget/level", "KL-LUCB acc (%)", "uniform acc (%)"});
  for (const std::size_t budget : {40u, 80u, 160u}) {
    double acc[2];
    for (const bool lucb : {true, false}) {
      core::CometOptions opt = bench::crude_options();
      opt.max_pulls_per_level = budget;
      opt.use_kl_lucb = lucb;
      const auto r =
          core::run_accuracy_experiment(model, test_set, opt, /*seed=*/3);
      acc[lucb ? 0 : 1] = r.comet_pct;
    }
    table.add_row({std::to_string(budget), util::Table::fmt(acc[0], 1),
                   util::Table::fmt(acc[1], 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: adaptive allocation matches or beats uniform at every "
      "budget,\nwith the gap largest at the smallest budget.\n");
  return 0;
}
