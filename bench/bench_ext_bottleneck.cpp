// Extension: cross-checking COMET's explanations against the simulator's
// own bottleneck account (paper Appendix H.3).
//
// uiCA's selling point over neural models is that it can say *where* the
// bottleneck is. Our simulator substrate exposes the same insight
// (sim::analyze_bottleneck); this bench measures how often COMET's
// explanation of the uiCA-style model's prediction names at least one
// instruction the simulator itself marks critical — an external,
// explanation-free consistency check of the framework, plus the two paper
// case-study blocks in full detail.
#include "bench/bench_common.h"
#include "bhive/paper_blocks.h"
#include <algorithm>

#include "sim/bottleneck.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(25);
  bench::print_header(
      "Extension: COMET explanations vs simulator bottleneck reports (HSW)",
      "blocks=" + std::to_string(n_blocks));

  const auto uica =
      core::make_model(core::ModelKind::UiCA, cost::MicroArch::Haswell);
  const core::CometExplainer explainer(*uica, bench::real_model_options());

  // Case studies first: full reports for the paper's Listings 2-3.
  for (const auto& [label, block] :
       {std::pair{"Case study 1 (Listing 2)", bhive::listing2_case_study1()},
        std::pair{"Case study 2 (Listing 3)", bhive::listing3_case_study2()}}) {
    const auto report =
        sim::analyze_bottleneck(block, cost::MicroArch::Haswell);
    const auto expl = explainer.explain(block);
    std::printf("-- %s --\n%sCOMET explanation of %s: %s\n\n", label,
                report.to_string().c_str(), uica->name().c_str(),
                expl.features.to_string().c_str());
  }

  // Aggregate agreement over the test set.
  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/84);
  std::size_t with_inst_features = 0, agree = 0;
  for (const auto& lb : test_set.blocks()) {
    const auto report =
        sim::analyze_bottleneck(lb.block, cost::MicroArch::Haswell);
    const auto expl = explainer.explain(lb.block);
    bool names_specific = false, names_critical = false;
    const auto is_critical = [&](std::size_t idx) {
      return std::find(report.critical_instructions.begin(),
                       report.critical_instructions.end(),
                       idx) != report.critical_instructions.end();
    };
    for (const auto& f : expl.features.items()) {
      if (f.is_inst()) {
        names_specific = true;
        names_critical |= is_critical(f.as_inst().index);
      } else if (f.is_dep()) {
        // A dependency feature names both endpoints.
        names_specific = true;
        names_critical |=
            is_critical(f.as_dep().from) || is_critical(f.as_dep().to);
      }
    }
    if (names_specific) {
      ++with_inst_features;
      agree += names_critical;
    }
  }

  util::Table table({"explanations naming instructions/deps",
                     "agree with simulator's critical set (%)"});
  table.add_row({std::to_string(with_inst_features),
                 with_inst_features
                     ? util::Table::fmt(100.0 * agree / with_inst_features, 1)
                     : "n/a"});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Expected: when COMET names specific instructions or hazards for the\n"
      "simulator's prediction, they coincide with the simulator's own "
      "critical\nset well above chance. Agreement is partial by design: "
      "COMET explains\nprediction *invariance* under perturbation, the "
      "simulator reports cycle\nattribution — related but not identical "
      "questions.\n");
  return 0;
}
