// Table 3: Average precision and coverage of COMET's explanations for the
// neural model Ithemal (I) and the simulation-based model uiCA (U), on
// Haswell and Skylake. Paper reference values:
//
//   I (HSW)  prec 0.79 +- 0.005   cov 0.19 +- 0.007
//   I (SKL)  prec 0.81 +- 0.004   cov 0.19 +- 0.014
//   U (HSW)  prec 0.78 +- 0.006   cov 0.18 +- 0.012
//   U (SKL)  prec 0.79 +- 0.006   cov 0.18 +- 0.012
//
// Shape target: both models' explanations have precision well above the 0.7
// threshold and coverage in the ~0.2 range.
#include "bench/bench_common.h"

using namespace comet;

int main() {
  const std::size_t n_blocks = bench::scaled(50);
  const int n_seeds = 3;
  const std::size_t prec_samples = bench::scaled(150);
  const std::size_t cov_samples = bench::scaled(800);
  bench::print_header(
      "Table 3: average precision and coverage (Ithemal, uiCA)",
      "blocks=" + std::to_string(n_blocks) + " seeds=" +
          std::to_string(n_seeds) + " prec_samples=" +
          std::to_string(prec_samples) + " cov_samples=" +
          std::to_string(cov_samples) + " (paper: 200 blocks, 10k)");

  const auto& dataset = core::zoo_dataset();
  const auto test_set =
      bhive::explanation_test_set(dataset, n_blocks, /*seed=*/99);

  util::Table table({"Model", "Av. Precision", "Av. Coverage"});
  const struct {
    core::ModelKind kind;
    cost::MicroArch uarch;
    const char* label;
  } configs[] = {
      {core::ModelKind::Ithemal, cost::MicroArch::Haswell, "I (HSW)"},
      {core::ModelKind::Ithemal, cost::MicroArch::Skylake, "I (SKL)"},
      {core::ModelKind::UiCA, cost::MicroArch::Haswell, "U (HSW)"},
      {core::ModelKind::UiCA, cost::MicroArch::Skylake, "U (SKL)"},
  };
  for (const auto& cfg : configs) {
    const auto model = core::make_model(cfg.kind, cfg.uarch);
    std::vector<double> precs, covs;
    for (int seed = 1; seed <= n_seeds; ++seed) {
      const auto stats = core::analyze_model(
          *model, cfg.uarch, test_set, bench::real_model_options(),
          prec_samples, cov_samples, static_cast<std::uint64_t>(seed));
      precs.push_back(stats.avg_precision);
      covs.push_back(stats.avg_coverage);
    }
    const auto p = core::summarize(precs);
    const auto c = core::summarize(covs);
    table.add_row({cfg.label, util::Table::fmt_pm(p.mean, p.std, 3),
                   util::Table::fmt_pm(c.mean, c.std, 3)});
    std::printf("  finished %s\n", cfg.label);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "Paper: precision 0.78-0.81 for all four, coverage 0.18-0.19\n");
  return 0;
}
