#!/usr/bin/env python3
"""Aggregate line coverage over src/ and enforce the ratcheted floor.

Invoked by `scripts/check.sh --coverage` after the instrumented test suite
has run. Two profile backends, picked automatically:

  gcov      (GCC --coverage builds): every .gcda under the build tree is fed
            to `gcov --json-format --stdout`; per-line execution counts are
            merged across translation units with max() so inline header code
            is credited no matter which TU exercised it.
  llvm-cov  (clang -fprofile-instr-generate builds): .profraw files in
            <build>/profraw are merged with llvm-profdata and exported per
            test binary with `llvm-cov export`.

Output: a per-directory table for src/ plus a TOTAL row. The TOTAL line
percentage is compared against scripts/coverage_floor.txt (the committed
ratchet); dropping below any floor entry fails the gate with exit 1. The
floor file may also pin individual directories:

    # scripts/coverage_floor.txt
    total    78.0
    src/x86  85.0
    src/net  90.0   # untrusted-input surfaces carry their own floor

Raise the floor when coverage rises - the gate only ever ratchets up.

Usage:
    scripts/coverage_report.py --build-dir build-cov \\
        --floor-file scripts/coverage_floor.txt
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --------------------------------------------------------------------------
# gcov backend


def find_gcda(build_dir: str) -> list[str]:
    out = []
    for dirpath, _dirnames, filenames in os.walk(os.path.abspath(build_dir)):
        for name in sorted(filenames):
            if name.endswith(".gcda"):
                out.append(os.path.join(dirpath, name))
    return out


def parse_json_stream(text: str) -> list[dict]:
    """gcov --stdout emits one JSON document per input file, concatenated."""
    docs = []
    decoder = json.JSONDecoder()
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        doc, end = decoder.raw_decode(text, pos)
        docs.append(doc)
        pos = end
    return docs


def gcov_line_counts(build_dir: str, gcov_tool: str) -> dict[str, dict[int, int]]:
    """Map src-relative path -> {line_number: max execution count}."""
    root = repo_root()
    counts: dict[str, dict[int, int]] = {}
    gcda = find_gcda(build_dir)
    if not gcda:
        return counts
    batch = 64
    for i in range(0, len(gcda), batch):
        proc = subprocess.run(
            [gcov_tool, "--json-format", "--stdout"] + gcda[i : i + batch],
            capture_output=True,
            text=True,
            cwd=build_dir,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise RuntimeError(f"{gcov_tool} failed (exit {proc.returncode})")
        for doc in parse_json_stream(proc.stdout):
            cwd = doc.get("current_working_directory", build_dir)
            for entry in doc.get("files", []):
                path = entry.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.normpath(os.path.join(cwd, path))
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if not rel.startswith("src/"):
                    continue
                per_file = counts.setdefault(rel, {})
                for line in entry.get("lines", []):
                    num = line.get("line_number", 0)
                    cnt = line.get("count", 0)
                    if cnt > per_file.get(num, -1):
                        per_file[num] = cnt
    return counts


# --------------------------------------------------------------------------
# llvm-cov backend (clang builds)


def find_test_binaries(build_dir: str) -> list[str]:
    out = []
    for name in sorted(os.listdir(build_dir)):
        path = os.path.join(build_dir, name)
        if (
            os.path.isfile(path)
            and os.access(path, os.X_OK)
            and (name.startswith("test_") or name.startswith("fuzz_"))
        ):
            out.append(path)
    return out


def llvm_line_counts(build_dir: str) -> dict[str, dict[int, int]]:
    root = repo_root()
    profraw_dir = os.path.join(build_dir, "profraw")
    profraws = [
        os.path.join(profraw_dir, f)
        for f in sorted(os.listdir(profraw_dir))
        if f.endswith(".profraw")
    ]
    binaries = find_test_binaries(build_dir)
    if not profraws or not binaries:
        return {}
    profdata = os.path.join(build_dir, "coverage.profdata")
    subprocess.run(
        ["llvm-profdata", "merge", "-sparse", "-o", profdata] + profraws,
        check=True,
    )
    cmd = ["llvm-cov", "export", binaries[0]]
    for extra in binaries[1:]:
        cmd += ["-object", extra]
    cmd += ["-instr-profile", profdata]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    counts: dict[str, dict[int, int]] = {}
    export = json.loads(proc.stdout)
    for datum in export.get("data", []):
        for entry in datum.get("files", []):
            rel = os.path.relpath(entry.get("filename", ""), root)
            rel = rel.replace(os.sep, "/")
            if not rel.startswith("src/"):
                continue
            per_file = counts.setdefault(rel, {})
            # segments: [line, col, count, has_count, is_region_entry, ...]
            for seg in entry.get("segments", []):
                line, _col, cnt, has_count = seg[0], seg[1], seg[2], seg[3]
                if not has_count:
                    continue
                if cnt > per_file.get(line, -1):
                    per_file[line] = cnt
    return counts


# --------------------------------------------------------------------------
# reporting + floor


def directory_of(rel: str) -> str:
    parts = rel.split("/")
    return "/".join(parts[:2]) if len(parts) > 2 else "src"


def summarize(counts: dict[str, dict[int, int]]) -> dict[str, tuple[int, int]]:
    """Map directory -> (instrumented lines, covered lines)."""
    summary: dict[str, tuple[int, int]] = {}
    for rel, lines in counts.items():
        total = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        d = directory_of(rel)
        t, c = summary.get(d, (0, 0))
        summary[d] = (t + total, c + covered)
    return summary


def pct(covered: int, total: int) -> float:
    return 100.0 * covered / total if total else 0.0


def read_floor(path: str) -> dict[str, float]:
    floors: dict[str, float] = {}
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            name, value = line.split()
            floors[name] = float(value)
    return floors


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="coverage_report", description="COMET src/ line-coverage gate"
    )
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--floor-file", default=None)
    parser.add_argument(
        "--gcov", default=None, help="gcov tool (default: gcov, or $COMET_GCOV)"
    )
    args = parser.parse_args(argv)

    build_dir = args.build_dir
    if not os.path.isdir(build_dir):
        print(f"coverage_report: build dir '{build_dir}' not found",
              file=sys.stderr)
        return 2

    gcov_tool = args.gcov or os.environ.get("COMET_GCOV", "gcov")
    counts = gcov_line_counts(build_dir, gcov_tool)
    if not counts and shutil.which("llvm-cov"):
        counts = llvm_line_counts(build_dir)
    if not counts:
        print(
            "coverage_report: no profile data found - run the instrumented "
            "suite first (scripts/check.sh --coverage)",
            file=sys.stderr,
        )
        return 2

    summary = summarize(counts)
    grand_total = sum(t for t, _c in summary.values())
    grand_covered = sum(c for _t, c in summary.values())

    width = max(len(d) for d in summary) + 2
    print(f"{'directory':<{width}} {'lines':>7} {'covered':>8} {'pct':>7}")
    for d in sorted(summary):
        t, c = summary[d]
        print(f"{d:<{width}} {t:>7} {c:>8} {pct(c, t):>6.1f}%")
    total_pct = pct(grand_covered, grand_total)
    print(f"{'TOTAL':<{width}} {grand_total:>7} {grand_covered:>8} "
          f"{total_pct:>6.1f}%")

    if not args.floor_file:
        return 0
    floors = read_floor(args.floor_file)
    failures = []
    for name, floor in sorted(floors.items()):
        if name == "total":
            actual = total_pct
        elif name in summary:
            actual = pct(summary[name][1], summary[name][0])
        else:
            failures.append(f"floor entry '{name}' matches no src directory")
            continue
        if actual < floor:
            failures.append(
                f"{name}: {actual:.1f}% < floor {floor:.1f}% "
                f"({args.floor_file})"
            )
    if failures:
        for failure in failures:
            print(f"coverage_report: FAIL {failure}", file=sys.stderr)
        return 1
    headroom = total_pct - floors.get("total", 0.0)
    if headroom > 5.0:
        print(
            f"coverage_report: floor passed with {headroom:.1f} points of "
            f"headroom - consider ratcheting {args.floor_file} up"
        )
    else:
        print("coverage_report: floor passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
