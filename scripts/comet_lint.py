#!/usr/bin/env python3
"""comet-lint: mechanical enforcement of this repo's hard-won invariants.

Every rule below encodes a contract that was paid for with a real bug or a
real design decision in an earlier PR, and that ordinary compilation cannot
check:

  libm-in-nn        src/nn/ hot paths must not call libm transcendentals
                    (std::tanh / std::exp / expf / powf ...). The batched and
                    scalar inference paths are bit-for-bit identical only
                    because both go through the shared rational tanh
                    (PR 3's parity contract, pinned by test_batch_parity).
  raw-sync          No std::mutex / std::condition_variable / std::*_lock
                    outside src/util/sync.h. All synchronization goes
                    through util::Mutex / util::MutexLock / util::CondVar so
                    the Clang thread-safety analysis (COMET_THREAD_SAFETY)
                    sees every lock in the program.
  unchecked-io      No fread/fwrite whose result is discarded (statement
                    position). A full disk must fail a checkpoint save
                    loudly, not truncate it silently (the Ithemal
                    save/load staging bug, PR 3).
  raw-random        No rand()/srand()/std::random_device/std::mt19937
                    outside src/util/rng.*. Every served request owns a
                    deterministically seeded util::Rng — hidden global
                    entropy would break bit-identical serving (PR 2).
  stdout-in-library No std::cout / printf in src/ library code; report
                    formatting returns strings, diagnostics go to stderr.
  include-guard     Every header under src/ opens with #pragma once before
                    any code.
  using-namespace   No `using namespace` at file scope in src/ (headers are
                    included everywhere; the library namespace discipline
                    keeps them composable).
  raw-clock         No std::chrono::system_clock / high_resolution_clock in
                    src/ library code. Timing flows through obs::Clock (or
                    steady_clock directly in the obs seam itself): wall
                    clocks jump with NTP/suspend, and a mockable monotonic
                    seam is what keeps served results bit-identical with
                    metrics on (PR 7 determinism contract).
  raw-assert        No assert()/abort() in src/ library code. Invariants go
                    through COMET_CHECK / COMET_DCHECK (util/contract.h),
                    which throw a typed util::ContractViolation: a malformed
                    request or corrupt cache file must be a catchable,
                    fuzz-observable report, never a process kill
                    (static_assert stays fine - it costs nothing at runtime).
  unbounded-wait    No deadline-free wait()/recv() in src/serve/ + src/net/.
                    Every blocking call in the serving and transport layers
                    either carries a bound on the same statement (timeout_ns,
                    a deadline expression, or a wait_for_ns variant) or is an
                    explicitly annotated drain/backpressure contract. A
                    blocking call nobody can name a wake-up for is how a
                    wedged peer becomes a wedged server (PR 10 traffic
                    controls). Zero-argument wait() calls are helper
                    invocations - their blocking loop is linted where it is
                    defined.

Suppression: a finding is silenced by a comment on the same line or the
line directly above it:

    std::FILE* log = ...;
    std::fwrite(banner, 1, n, log);  // comet-lint: allow(unchecked-io)

    // comet-lint: allow(raw-sync)
    std::mutex legacy_mutex;

Multiple rules: `// comet-lint: allow(rule-a, rule-b)`. Suppressions are
deliberately loud in review diffs — that is the point.

Usage:
    scripts/comet_lint.py                  # lint src/ under the repo root
    scripts/comet_lint.py --root R p1 p2   # explicit root and paths
    scripts/comet_lint.py --list-rules

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".h", ".hpp", ".hh", ".cpp", ".cc", ".cxx")

ALLOW_RE = re.compile(r"//\s*comet-lint:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class Violation:
    path: str  # repo-root-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments_and_strings(text: str) -> list[str]:
    """Scrubbed per-line view: comments, string and char literals blanked.

    Line structure is preserved so scrubbed line numbers match the file.
    A deliberately small state machine — raw strings are treated as plain
    strings (fine for linting; the delimiter only extends the literal).
    """
    out: list[str] = []
    current: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(current))
            current = []
            if state == "line_comment":
                state = "code"
            # An unterminated string/char at EOL is a syntax error anyway;
            # reset so one bad line cannot blank the rest of the file.
            if state in ("string", "char"):
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                current.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                current.append("'")
                i += 1
                continue
            current.append(c)
            i += 1
        elif state == "line_comment":
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        else:  # string or char
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                current.append(c)
                state = "code"
            i += 1
    out.append("".join(current))
    return out


def _suppressed_lines(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map of 0-based line index -> rule names allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        # The comment covers its own line and the line below it (so a
        # suppression can sit above the offending statement).
        allowed.setdefault(idx, set()).update(rules)
        allowed.setdefault(idx + 1, set()).update(rules)
    return allowed


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


# --------------------------------------------------------------------------
# Rules. Each rule has: name, description, applies(relpath) -> bool, and
# check(relpath, raw_lines, scrubbed_lines) -> list[(line_idx, message)].

_LIBM_RE = re.compile(
    r"\b(?:std::)?(tanh|tanhf|exp|expf|exp2|exp2f|expm1|expm1f|pow|powf"
    r"|sinh|sinhf|cosh|coshf)\s*\("
)

_RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex"
    r"|condition_variable|condition_variable_any|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
)

_IO_STMT_RE = re.compile(r"^\s*(?:\(void\)\s*)?(?:std::)?f(?:read|write)\s*\(")

_RAW_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand)\s*\("
    r"|\bstd::(random_device|mt19937(_64)?|minstd_rand0?"
    r"|default_random_engine)\b"
)

_STDOUT_RE = re.compile(r"\bstd::cout\b|\b(?:std::)?printf\s*\(|\bstd::puts\b")

_USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+\w")

_RAW_CLOCK_RE = re.compile(
    r"\b(?:std::chrono::)?(?:system_clock|high_resolution_clock)\b"
)

# Call position only; the negative lookbehind keeps static_assert (and any
# *_assert identifier) out of scope.
_RAW_ASSERT_RE = re.compile(r"(?<![\w:])(?:std::)?(?:assert|abort)\s*\(")

# Scrubbed line endings that mean "the next line continues this statement",
# so a leading fread/fwrite there is not statement position.
_CONTINUATION_END_RE = re.compile(r"[(&|+\-*/=,<>?:!%]\s*$")

_UNBOUNDED_WAIT_RE = re.compile(r"\b(?:wait|recv)\s*\(")

# A bound somewhere on the statement: an explicit timeout parameter, a
# deadline expression, or one of the wait_for_* timed variants.
_UNBOUNDED_WAIT_OK_RE = re.compile(r"\btimeout_ns\b|\bdeadline\w*\b|\bwait_for\w*\b")

_STMT_END_RE = re.compile(r"[;{}]")


def _grep_rule(pattern: re.Pattern, message: str):
    def check(relpath, raw_lines, scrubbed):
        del relpath, raw_lines
        hits = []
        for idx, line in enumerate(scrubbed):
            if pattern.search(line):
                hits.append((idx, message))
        return hits

    return check


def _check_unchecked_io(relpath, raw_lines, scrubbed):
    del relpath, raw_lines
    hits = []
    prev_code = ""
    for idx, line in enumerate(scrubbed):
        if _IO_STMT_RE.search(line) and not _CONTINUATION_END_RE.search(
            prev_code
        ):
            hits.append(
                (
                    idx,
                    "fread/fwrite result discarded - check the element count "
                    "(a full disk must fail a checkpoint loudly)",
                )
            )
        if line.strip():
            prev_code = line
    return hits


def _check_unbounded_wait(relpath, raw_lines, scrubbed):
    del relpath, raw_lines
    hits = []
    reported = set()
    for idx, line in enumerate(scrubbed):
        if not _UNBOUNDED_WAIT_RE.search(line):
            continue
        # Walk back to the first line of the statement (a continuation
        # suffix on the previous non-blank line means it flows into this
        # one) so the finding - and its suppression comment - anchor where
        # the statement starts.
        start = idx
        prev = start - 1
        while prev >= 0 and not scrubbed[prev].strip():
            prev -= 1
        while prev >= 0 and _CONTINUATION_END_RE.search(scrubbed[prev]):
            start = prev
            prev -= 1
            while prev >= 0 and not scrubbed[prev].strip():
                prev -= 1
        # Walk forward to the end of the statement (bounded lookahead).
        end = idx
        limit = min(len(scrubbed) - 1, idx + 8)
        while end < limit and not _STMT_END_RE.search(scrubbed[end]):
            end += 1
        stmt = " ".join(scrubbed[i] for i in range(start, end + 1))
        if _UNBOUNDED_WAIT_OK_RE.search(stmt):
            continue
        # Zero-argument wait()/recv() is a helper call (e.g. a countdown
        # latch); the actual blocking loop is linted at its definition.
        flagged = False
        for match in _UNBOUNDED_WAIT_RE.finditer(stmt):
            if not re.match(r"\s*\)", stmt[match.end():]):
                flagged = True
                break
        if not flagged or start in reported:
            continue
        reported.add(start)
        hits.append(
            (
                start,
                "blocking wait/recv with no bound on the statement - pass a "
                "timeout/deadline (wait_for_ns, timeout_ns) or annotate the "
                "documented drain/backpressure contract",
            )
        )
    return hits


def _check_include_guard(relpath, raw_lines, scrubbed):
    del relpath
    for idx, line in enumerate(scrubbed):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#pragma") and "once" in stripped:
            return []
        # First real code/preprocessor line reached without #pragma once.
        return [
            (
                idx,
                "header must open with '#pragma once' before any code",
            )
        ]
    # Header with no code at all: fine.
    del raw_lines
    return []


@dataclass(frozen=True)
class Rule:
    name: str
    description: str
    applies: object  # Callable[[str], bool]
    check: object  # Callable[[str, list[str], list[str]], list]


def _in_dir(prefix: str):
    return lambda p: p.startswith(prefix)


RULES = [
    Rule(
        "libm-in-nn",
        "no libm transcendentals (tanh/exp/pow...) in src/nn/ - the "
        "batched==scalar bit-parity contract requires the shared rational "
        "tanh",
        _in_dir("src/nn/"),
        _grep_rule(
            _LIBM_RE,
            "libm transcendental in src/nn/ - use the shared rational "
            "tanh/sigmoid helpers (bit-parity rule, see test_batch_parity)",
        ),
    ),
    Rule(
        "raw-sync",
        "no std::mutex/std::condition_variable/std::*_lock outside "
        "src/util/sync.h - use util::Mutex/MutexLock/CondVar so the "
        "thread-safety analysis sees every lock",
        lambda p: p.startswith("src/") and p != "src/util/sync.h",
        _grep_rule(
            _RAW_SYNC_RE,
            "raw std synchronization primitive - use the annotated wrappers "
            "in util/sync.h (COMET_THREAD_SAFETY contract)",
        ),
    ),
    Rule(
        "unchecked-io",
        "no fread/fwrite in statement position (result discarded) in src/",
        _in_dir("src/"),
        _check_unchecked_io,
    ),
    Rule(
        "raw-random",
        "no rand()/srand()/std::random_device/std::mt19937 outside "
        "src/util/rng.* - served determinism requires owned, seeded "
        "util::Rng instances",
        lambda p: p.startswith("src/") and not p.startswith("src/util/rng."),
        _grep_rule(
            _RAW_RANDOM_RE,
            "unowned entropy source - use util::Rng (served results must be "
            "bit-identical and deterministically seeded)",
        ),
    ),
    Rule(
        "stdout-in-library",
        "no std::cout/printf in src/ library code",
        _in_dir("src/"),
        _grep_rule(
            _STDOUT_RE,
            "stdout output from library code - return strings (util/table, "
            "to_string) or write diagnostics to stderr",
        ),
    ),
    Rule(
        "include-guard",
        "every header under src/ opens with #pragma once",
        lambda p: p.startswith("src/") and p.endswith((".h", ".hpp", ".hh")),
        _check_include_guard,
    ),
    Rule(
        "using-namespace",
        "no file-scope `using namespace` in src/",
        _in_dir("src/"),
        _grep_rule(
            _USING_NAMESPACE_RE,
            "`using namespace` at file scope - qualify names instead "
            "(headers are included everywhere)",
        ),
    ),
    Rule(
        "raw-clock",
        "no system_clock/high_resolution_clock in src/ library code - time "
        "flows through the obs::Clock seam (monotonic, mockable; metrics "
        "must not perturb served results)",
        lambda p: p.startswith("src/") and p != "src/obs/clock.h",
        _grep_rule(
            _RAW_CLOCK_RE,
            "non-monotonic/unmockable clock - use obs::Clock (steady, "
            "injectable; see src/obs/clock.h)",
        ),
    ),
    Rule(
        "unbounded-wait",
        "no deadline-free wait()/recv() in src/serve/ + src/net/ - every "
        "blocking call carries a timeout/deadline on its statement or an "
        "annotated drain/backpressure contract",
        lambda p: p.startswith(("src/serve/", "src/net/")),
        _check_unbounded_wait,
    ),
    Rule(
        "raw-assert",
        "no assert()/abort() in src/ library code - invariants throw typed "
        "util::ContractViolation via COMET_CHECK/COMET_DCHECK "
        "(util/contract.h) so bad input is recoverable and fuzz-observable",
        _in_dir("src/"),
        _grep_rule(
            _RAW_ASSERT_RE,
            "raw assert()/abort() - use COMET_CHECK/COMET_DCHECK "
            "(util/contract.h): a broken invariant must throw "
            "ContractViolation, not kill the process",
        ),
    ),
]


def lint_text(relpath: str, text: str) -> list[Violation]:
    """Lint one file's contents; `relpath` is repo-root-relative."""
    relpath = _norm(relpath)
    raw_lines = text.split("\n")
    scrubbed = _strip_comments_and_strings(text)
    allowed = _suppressed_lines(raw_lines)
    out: list[Violation] = []
    for rule in RULES:
        if not rule.applies(relpath):
            continue
        for idx, message in rule.check(relpath, raw_lines, scrubbed):
            if rule.name in allowed.get(idx, ()):
                continue
            out.append(Violation(relpath, idx + 1, rule.name, message))
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out


def lint_paths(root: str, paths: list[str]) -> list[Violation]:
    violations: list[Violation] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            files = [absolute]
        else:
            files = []
            for dirpath, _dirnames, filenames in os.walk(absolute):
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        for file_path in sorted(files):
            relpath = _norm(os.path.relpath(file_path, root))
            with open(file_path, "r", encoding="utf-8", errors="replace") as f:
                violations.extend(lint_text(relpath, f.read()))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="comet-lint", description="COMET repo invariant linter"
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root (rule scopes are evaluated relative to this)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    parser.add_argument(
        "paths", nargs="*", default=None, help="files/dirs to lint (default: src/)"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.description}")
        return 0

    paths = args.paths or ["src"]
    violations = lint_paths(args.root, paths)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"comet-lint: {len(violations)} violation(s). Suppress a "
            "deliberate one with '// comet-lint: allow(<rule>)' on or above "
            "the line.",
            file=sys.stderr,
        )
        return 1
    print(f"comet-lint: clean ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
