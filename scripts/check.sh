#!/usr/bin/env bash
# One-command tier-1 gate: configure, build (-Wall -Wextra are always on in
# CMakeLists.txt), and run the full ctest suite.
#
#   scripts/check.sh            # incremental build into ./build
#   scripts/check.sh --clean    # wipe ./build first
#   COMET_CHECK_WERROR=1 scripts/check.sh   # promote warnings to errors
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${COMET_BUILD_DIR:-build}
if [[ "${1:-}" == "--clean" ]]; then
  rm -rf "$BUILD_DIR"
fi

CMAKE_ARGS=()
if [[ "${COMET_CHECK_WERROR:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DCOMET_WERROR=ON)
fi

JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all green"
