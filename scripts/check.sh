#!/usr/bin/env bash
# One-command tier-1 gate: configure, build (-Wall -Wextra are always on in
# CMakeLists.txt), and run the full ctest suite.
#
#   scripts/check.sh            # incremental build into ./build
#   scripts/check.sh --clean    # wipe ./build first
#   scripts/check.sh --tsan     # ThreadSanitizer pass over the serving
#                               # tests (separate ./build-tsan tree)
#   scripts/check.sh --asan     # AddressSanitizer pass over the full test
#                               # suite (separate ./build-asan tree)
#   COMET_CHECK_WERROR=1 scripts/check.sh   # promote warnings to errors
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${COMET_BUILD_DIR:-build}
TSAN_DIR=${COMET_TSAN_BUILD_DIR:-build-tsan}
ASAN_DIR=${COMET_ASAN_BUILD_DIR:-build-asan}
TSAN=0
ASAN=0
CLEAN=0
for arg in "$@"; do
  case "$arg" in
    --clean) CLEAN=1 ;;
    --tsan)  TSAN=1 ;;
    --asan)  ASAN=1 ;;
    *) echo "check.sh: unknown flag '$arg'" >&2; exit 2 ;;
  esac
done
if [[ "$CLEAN" == "1" ]]; then
  rm -rf "$BUILD_DIR"
  [[ "$TSAN" == "1" ]] && rm -rf "$TSAN_DIR"
  [[ "$ASAN" == "1" ]] && rm -rf "$ASAN_DIR"
fi

CMAKE_ARGS=()
if [[ "${COMET_CHECK_WERROR:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DCOMET_WERROR=ON)
fi

JOBS=$(nproc 2>/dev/null || echo 4)

if [[ "$TSAN" == "1" ]]; then
  # Race-detection pass over the concurrent serving subsystem (and the
  # query broker underneath it). Uses its own build tree so the regular
  # incremental build stays sanitizer-free.
  cmake -B "$TSAN_DIR" -S . -DCOMET_TSAN=ON "${CMAKE_ARGS[@]}"
  TSAN_TARGETS=$(cmake --build "$TSAN_DIR" --target help 2>/dev/null || true)
  if ! grep -qw test_serve <<<"$TSAN_TARGETS"; then
    echo "check.sh: GTest not found - serving test targets unavailable" >&2
    exit 1
  fi
  cmake --build "$TSAN_DIR" -j "$JOBS" --target test_serve test_query_broker \
    test_batch_parity
  ctest --test-dir "$TSAN_DIR" --output-on-failure \
    -R 'test_serve|test_query_broker|test_batch_parity'
  echo "check.sh: tsan serving pass green"
  exit 0
fi

if [[ "$ASAN" == "1" ]]; then
  # Memory-error pass over the whole suite (the lane-packed batch paths do
  # manual panel indexing; ASan keeps them honest). Own build tree, same
  # reasoning as above.
  cmake -B "$ASAN_DIR" -S . -DCOMET_ASAN=ON "${CMAKE_ARGS[@]}"
  ASAN_TARGETS=$(cmake --build "$ASAN_DIR" --target help 2>/dev/null || true)
  if ! grep -qw test_batch_parity <<<"$ASAN_TARGETS"; then
    echo "check.sh: GTest not found - test targets unavailable" >&2
    exit 1
  fi
  cmake --build "$ASAN_DIR" -j "$JOBS"
  ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"
  echo "check.sh: asan pass green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all green"
