#!/usr/bin/env bash
# One-command tier-1 gate: configure, build (-Wall -Wextra are always on in
# CMakeLists.txt), and run the full ctest suite (which includes the
# comet-lint invariant checks).
#
#   scripts/check.sh                  # incremental build into ./build
#   scripts/check.sh --clean          # wipe the mode's build tree first
#   scripts/check.sh --tsan           # ThreadSanitizer pass over the
#                                     # serving tests (./build-tsan)
#   scripts/check.sh --asan           # AddressSanitizer pass over the full
#                                     # test suite (./build-asan)
#   scripts/check.sh --ubsan          # UndefinedBehaviorSanitizer pass over
#                                     # the full test suite (./build-ubsan)
#   scripts/check.sh --thread-safety  # Clang -Wthread-safety compile gate +
#                                     # full suite (./build-ts; needs clang)
#   scripts/check.sh --tidy           # clang-tidy (.clang-tidy config) over
#                                     # src/ (./build-tidy; needs clang-tidy)
#   scripts/check.sh --lint           # just the comet-lint rules (no build)
#   scripts/check.sh --fuzz           # bounded fuzz smoke over every
#                                     # untrusted-input surface (./build-fuzz;
#                                     # COMET_FUZZ_SECS=N per-harness budget)
#   scripts/check.sh --coverage       # line-coverage build + report with a
#                                     # ratcheted floor (./build-cov)
#   scripts/check.sh --chaos          # bounded seeded chaos pass: widened
#                                     # fault/overload sweeps over the
#                                     # serving + transport tests, re-run
#                                     # under several fixed shuffle orders
#                                     # (COMET_CHAOS_SEEDS schedules per
#                                     # storm, COMET_CHAOS_ORDERS orders)
#   COMET_CHECK_WERROR=1 scripts/check.sh   # promote warnings to errors
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${COMET_BUILD_DIR:-build}
TSAN_DIR=${COMET_TSAN_BUILD_DIR:-build-tsan}
ASAN_DIR=${COMET_ASAN_BUILD_DIR:-build-asan}
UBSAN_DIR=${COMET_UBSAN_BUILD_DIR:-build-ubsan}
TS_DIR=${COMET_TS_BUILD_DIR:-build-ts}
TIDY_DIR=${COMET_TIDY_BUILD_DIR:-build-tidy}
FUZZ_DIR=${COMET_FUZZ_BUILD_DIR:-build-fuzz}
COV_DIR=${COMET_COV_BUILD_DIR:-build-cov}
MODE=plain
CLEAN=0
for arg in "$@"; do
  case "$arg" in
    --clean) CLEAN=1 ;;
    --tsan)  MODE=tsan ;;
    --asan)  MODE=asan ;;
    --ubsan) MODE=ubsan ;;
    --thread-safety) MODE=thread-safety ;;
    --tidy)  MODE=tidy ;;
    --lint)  MODE=lint ;;
    --fuzz)  MODE=fuzz ;;
    --coverage) MODE=coverage ;;
    --chaos) MODE=chaos ;;
    *) echo "check.sh: unknown flag '$arg'" >&2; exit 2 ;;
  esac
done

CMAKE_ARGS=()
if [[ "${COMET_CHECK_WERROR:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DCOMET_WERROR=ON)
fi

JOBS=$(nproc 2>/dev/null || echo 4)

# Build + full ctest suite in a dedicated tree with extra cmake args.
run_suite() {
  local dir=$1; shift
  [[ "$CLEAN" == "1" ]] && rm -rf "$dir"
  cmake -B "$dir" -S . "$@" "${CMAKE_ARGS[@]}"
  local targets
  targets=$(cmake --build "$dir" --target help 2>/dev/null || true)
  if ! grep -qw test_batch_parity <<<"$targets"; then
    echo "check.sh: GTest not found - test targets unavailable" >&2
    exit 1
  fi
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  lint)
    # The standalone invariant pass; also runs as ctest targets comet_lint
    # and test_lint inside every suite below.
    python3 scripts/comet_lint.py
    python3 tests/test_lint.py
    echo "check.sh: lint pass green"
    ;;

  tsan)
    # Race-detection pass over the concurrent serving subsystem (the query
    # broker underneath it and the metrics instruments inside it). Uses its
    # own build tree so the regular incremental build stays sanitizer-free.
    [[ "$CLEAN" == "1" ]] && rm -rf "$TSAN_DIR"
    cmake -B "$TSAN_DIR" -S . -DCOMET_TSAN=ON "${CMAKE_ARGS[@]}"
    TSAN_TARGETS=$(cmake --build "$TSAN_DIR" --target help 2>/dev/null || true)
    if ! grep -qw test_serve <<<"$TSAN_TARGETS"; then
      echo "check.sh: GTest not found - serving test targets unavailable" >&2
      exit 1
    fi
    cmake --build "$TSAN_DIR" -j "$JOBS" --target test_serve \
      test_query_broker test_batch_parity test_obs test_net \
      test_remote_shard test_traffic
    ctest --test-dir "$TSAN_DIR" --output-on-failure \
      -R 'test_serve|test_query_broker|test_batch_parity|test_obs|test_net|test_remote_shard|test_traffic'
    echo "check.sh: tsan serving pass green"
    ;;

  asan)
    # Memory-error pass over the whole suite (the lane-packed batch paths
    # do manual panel indexing; ASan keeps them honest).
    run_suite "$ASAN_DIR" -DCOMET_ASAN=ON
    echo "check.sh: asan pass green"
    ;;

  ubsan)
    # Undefined-behaviour pass over the whole suite; -fno-sanitize-recover
    # in CMakeLists.txt means any finding aborts its test.
    run_suite "$UBSAN_DIR" -DCOMET_UBSAN=ON
    echo "check.sh: ubsan pass green"
    ;;

  thread-safety)
    # Compile-time locking-contract gate: the whole library + tests must
    # build warning-clean under Clang's -Wthread-safety (promoted to
    # errors), then the suite runs as usual. Requires clang; the configure
    # step self-tests that the analysis actually rejects a misuse probe.
    CLANG=${COMET_CLANG:-clang++}
    if ! command -v "$CLANG" >/dev/null 2>&1; then
      echo "check.sh: '$CLANG' not found - the thread-safety gate needs" \
           "Clang (set COMET_CLANG to override)" >&2
      exit 1
    fi
    run_suite "$TS_DIR" -DCOMET_THREAD_SAFETY=ON \
      -DCMAKE_CXX_COMPILER="$CLANG"
    echo "check.sh: thread-safety pass green"
    ;;

  tidy)
    # clang-tidy (curated .clang-tidy at the repo root) over all library
    # translation units, using a compile_commands.json from a dedicated
    # configure. COMET_NATIVE_KERNELS=OFF: the tidy tree only needs to
    # parse, and clang chokes on GCC-specific -march report details less.
    TIDY=${COMET_CLANG_TIDY:-clang-tidy}
    if ! command -v "$TIDY" >/dev/null 2>&1; then
      echo "check.sh: '$TIDY' not found - install clang-tidy (set" \
           "COMET_CLANG_TIDY to override)" >&2
      exit 1
    fi
    [[ "$CLEAN" == "1" ]] && rm -rf "$TIDY_DIR"
    cmake -B "$TIDY_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCOMET_NATIVE_KERNELS=OFF "${CMAKE_ARGS[@]}" >/dev/null
    find src -name '*.cpp' -print0 \
      | xargs -0 -P "$JOBS" -n 4 "$TIDY" -p "$TIDY_DIR" --quiet \
        --warnings-as-errors='*'
    echo "check.sh: tidy pass green"
    ;;

  fuzz)
    # Bounded fuzz smoke over every untrusted-input surface: each harness
    # runs its committed corpus plus COMET_FUZZ_SECS (default 30) seconds of
    # mutation under ASan+UBSan with contracts armed. Any crash, leak, OOM,
    # or contract escape fails the gate. Under clang this is real libFuzzer;
    # under GCC the bundled replay+mutation driver speaks the same CLI.
    [[ "$CLEAN" == "1" ]] && rm -rf "$FUZZ_DIR"
    cmake -B "$FUZZ_DIR" -S . -DCOMET_FUZZ=ON "${CMAKE_ARGS[@]}"
    cmake --build "$FUZZ_DIR" -j "$JOBS"
    FUZZ_SECS=${COMET_FUZZ_SECS:-30}
    for target in fuzz_x86_parser fuzz_riscv_parser fuzz_ithemal_checkpoint \
                  fuzz_granite_checkpoint fuzz_bhive_dataset \
                  fuzz_wire_protocol; do
      bin="$FUZZ_DIR/$target"
      corpus="fuzz/corpus/$target"
      if [[ ! -x "$bin" ]]; then
        echo "check.sh: fuzz harness '$target' did not build" >&2
        exit 1
      fi
      if [[ ! -d "$corpus" ]]; then
        echo "check.sh: seed corpus '$corpus' missing" >&2
        exit 1
      fi
      workdir=$(mktemp -d)
      echo "== fuzz: $target (${FUZZ_SECS}s) =="
      "$bin" -max_total_time="$FUZZ_SECS" -max_len=4096 -rss_limit_mb=2048 \
        -timeout=10 "$workdir" "$corpus"
      rm -rf "$workdir"
    done
    echo "check.sh: fuzz smoke green"
    ;;

  coverage)
    # Line-coverage pass: instrumented build, full ctest suite, then a
    # per-directory report over src/ with a ratcheted floor. GCC uses
    # --coverage/gcov; clang uses source-based profiles (merged via
    # llvm-profdata by the report script).
    [[ "$CLEAN" == "1" ]] && rm -rf "$COV_DIR"
    cmake -B "$COV_DIR" -S . -DCOMET_COVERAGE=ON "${CMAKE_ARGS[@]}"
    cmake --build "$COV_DIR" -j "$JOBS"
    mkdir -p "$COV_DIR/profraw"
    LLVM_PROFILE_FILE="$PWD/$COV_DIR/profraw/%p.profraw" \
      ctest --test-dir "$COV_DIR" --output-on-failure -j "$JOBS"
    python3 scripts/coverage_report.py --build-dir "$COV_DIR" \
      --floor-file scripts/coverage_floor.txt
    echo "check.sh: coverage pass green"
    ;;

  chaos)
    # Bounded seeded chaos pass over the fault-tolerant serving stack.
    # COMET_CHAOS_SEEDS widens the seeded storms inside the tests (the
    # remote-shard fault sweep runs that many extra schedules; the
    # traffic-control chaos rounds run that many overload rounds), and
    # each binary is re-run under COMET_CHAOS_ORDERS fixed gtest shuffle
    # orders so test interleaving — not luck — is what varies. Every
    # schedule is seeded, so any failure replays exactly.
    [[ "$CLEAN" == "1" ]] && rm -rf "$BUILD_DIR"
    cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
    CHAOS_TARGETS=$(cmake --build "$BUILD_DIR" --target help 2>/dev/null || true)
    if ! grep -qw test_traffic <<<"$CHAOS_TARGETS"; then
      echo "check.sh: GTest not found - chaos test targets unavailable" >&2
      exit 1
    fi
    cmake --build "$BUILD_DIR" -j "$JOBS" --target \
      test_remote_shard test_traffic test_serve test_net
    CHAOS_SEEDS=${COMET_CHAOS_SEEDS:-12}
    CHAOS_ORDERS=${COMET_CHAOS_ORDERS:-3}
    for binary in test_remote_shard test_traffic test_serve test_net; do
      for ((order = 1; order <= CHAOS_ORDERS; ++order)); do
        echo "== chaos: $binary (seeds=$CHAOS_SEEDS, order=$order) =="
        COMET_CHAOS_SEEDS="$CHAOS_SEEDS" "$BUILD_DIR/$binary" \
          --gtest_shuffle --gtest_random_seed="$order"
      done
    done
    echo "check.sh: chaos pass green"
    ;;

  plain)
    [[ "$CLEAN" == "1" ]] && rm -rf "$BUILD_DIR"
    cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
    cmake --build "$BUILD_DIR" -j "$JOBS"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
    echo "check.sh: all green"
    ;;
esac
