// Tests for the global explanation module (paper Section 4): the M1
// running example, opcode- and dependency-keyed synthetic models, feature
// presence semantics, and search behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "bhive/dataset.h"
#include "core/global.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace cx = comet::x86;
namespace cg = comet::graph;
using comet::cost::CostModel;

namespace {

/// The paper's hypothetical M1: 2 cycles iff the block has `n` instructions.
class CountKeyedModel final : public CostModel {
 public:
  explicit CountKeyedModel(std::size_t n) : n_(n) {}
  double predict(const cx::BasicBlock& block) const override {
    return block.size() == n_ ? 2.0 : 1.0;
  }
  std::string name() const override { return "m1"; }

 private:
  std::size_t n_;
};

/// 10 cycles iff the block contains a div.
class DivKeyedModel final : public CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    for (const auto& i : block.instructions) {
      if (i.opcode == cx::Opcode::DIV || i.opcode == cx::Opcode::IDIV) {
        return 10.0;
      }
    }
    return 1.0;
  }
  std::string name() const override { return "div-keyed"; }
};

/// 5 cycles iff the block has any RAW hazard.
class RawKeyedModel final : public CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    // Bind the graph: iterating edges() of the temporary would dangle.
    const auto graph = cg::DepGraph::build(block);
    for (const auto& e : graph.edges()) {
      if (e.kind == cg::DepKind::RAW) return 5.0;
    }
    return 1.0;
  }
  std::string name() const override { return "raw-keyed"; }
};

std::vector<cx::BasicBlock> corpus_blocks(std::size_t n = 300) {
  comet::bhive::DatasetOptions opts;
  opts.size = n;
  opts.seed = 4242;
  return comet::bhive::generate_dataset(opts).block_views();
}

}  // namespace

// ---------- GlobalFeature semantics ----------

TEST(GlobalFeature, HasOpcodePresence) {
  const auto block = cx::parse_block("add rax, rbx\ndiv rcx");
  const cc::GlobalFeature has_div(
      cc::GlobalFeature::HasOpcode{cx::Opcode::DIV});
  const cc::GlobalFeature has_imul(
      cc::GlobalFeature::HasOpcode{cx::Opcode::IMUL});
  EXPECT_TRUE(has_div.present_in(block));
  EXPECT_FALSE(has_imul.present_in(block));
}

TEST(GlobalFeature, HasOpClassPresence) {
  const auto block = cx::parse_block("divss xmm0, xmm1");
  const cc::GlobalFeature fp_div(
      cc::GlobalFeature::HasOpClass{cx::OpClass::FpDiv});
  const cc::GlobalFeature int_div(
      cc::GlobalFeature::HasOpClass{cx::OpClass::IntDiv});
  EXPECT_TRUE(fp_div.present_in(block));
  EXPECT_FALSE(int_div.present_in(block));
}

TEST(GlobalFeature, HasDepKindPresence) {
  const auto raw = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  const auto none = cx::parse_block("add rcx, rax\nmov rdx, rbx");
  const cc::GlobalFeature f(
      cc::GlobalFeature::HasDepKind{cg::DepKind::RAW});
  EXPECT_TRUE(f.present_in(raw));
  EXPECT_FALSE(f.present_in(none));
}

TEST(GlobalFeature, NumInstsEqualsPresence) {
  const auto block = cx::parse_block("nop\nnop\nnop");
  EXPECT_TRUE(
      cc::GlobalFeature(cc::GlobalFeature::NumInstsEquals{3}).present_in(
          block));
  EXPECT_FALSE(
      cc::GlobalFeature(cc::GlobalFeature::NumInstsEquals{4}).present_in(
          block));
}

TEST(GlobalFeature, ToStringIsDescriptive) {
  EXPECT_EQ(cc::GlobalFeature(cc::GlobalFeature::HasOpcode{cx::Opcode::DIV})
                .to_string(),
            "has(div)");
  EXPECT_EQ(
      cc::GlobalFeature(cc::GlobalFeature::NumInstsEquals{8}).to_string(),
      "eta=8");
  EXPECT_EQ(cc::GlobalFeature(cc::GlobalFeature::HasDepKind{cg::DepKind::WAW})
                .to_string(),
            "has-dep(WAW)");
}

// ---------- GlobalExplainer on keyed models ----------

TEST(GlobalExplainer, RecoversM1InstructionCount) {
  // Paper Section 4: M1 predicts 2 iff eta = 8; the global explanation of
  // T = {2} must be "number of instructions equal to 8".
  const CountKeyedModel m1(8);
  cc::GlobalExplainer ex(m1, corpus_blocks(), {});
  const auto e = ex.explain_range(1.5, 2.5);
  ASSERT_EQ(e.features.size(), 1u);
  EXPECT_EQ(e.features[0],
            cc::GlobalFeature(cc::GlobalFeature::NumInstsEquals{8}));
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  EXPECT_DOUBLE_EQ(e.recall, 1.0);
  EXPECT_TRUE(e.met_threshold);
}

TEST(GlobalExplainer, RecoversDivPresence) {
  const DivKeyedModel model;
  cc::GlobalExplainer ex(model, corpus_blocks(), {});
  const auto e = ex.explain_range(9.0, 11.0);
  EXPECT_TRUE(e.met_threshold);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  // Either the div opcode or the IntDiv class pins the behaviour (the
  // generator only emits `div` from that class, so both are correct).
  ASSERT_EQ(e.features.size(), 1u);
  const bool by_opcode =
      e.features[0] ==
          cc::GlobalFeature(cc::GlobalFeature::HasOpcode{cx::Opcode::DIV}) ||
      e.features[0] ==
          cc::GlobalFeature(cc::GlobalFeature::HasOpcode{cx::Opcode::IDIV});
  const bool by_class =
      e.features[0] ==
      cc::GlobalFeature(cc::GlobalFeature::HasOpClass{cx::OpClass::IntDiv});
  EXPECT_TRUE(by_opcode || by_class) << e.to_string();
}

TEST(GlobalExplainer, RecoversRawDependency) {
  const RawKeyedModel model;
  cc::GlobalExplainer ex(model, corpus_blocks(), {});
  const auto e = ex.explain_range(4.5, 5.5);
  EXPECT_TRUE(e.met_threshold);
  ASSERT_EQ(e.features.size(), 1u);
  EXPECT_EQ(e.features[0],
            cc::GlobalFeature(cc::GlobalFeature::HasDepKind{cg::DepKind::RAW}))
      << e.to_string();
}

TEST(GlobalExplainer, ComplementRangeAlsoExplainable) {
  // T = {1} for M1: blocks NOT having 8 instructions. No positive feature
  // can pin "eta != 8" exactly, but precision should still be high because
  // most eta values other than 8 imply prediction 1.
  const CountKeyedModel m1(8);
  cc::GlobalExplainer ex(m1, corpus_blocks(), {});
  const auto e = ex.explain_range(0.5, 1.5);
  EXPECT_GE(e.precision, 0.7);
}

TEST(GlobalExplainer, EmptyCorpusThrows) {
  const DivKeyedModel model;
  EXPECT_THROW(cc::GlobalExplainer(model, {}, {}), std::invalid_argument);
}

TEST(GlobalExplainer, EmptyRangeThrows) {
  const DivKeyedModel model;
  cc::GlobalExplainer ex(model, corpus_blocks(100), {});
  EXPECT_THROW(ex.explain_range(100.0, 200.0), std::invalid_argument);
}

TEST(GlobalExplainer, PredictionsAlignWithCorpus) {
  const DivKeyedModel model;
  const auto blocks = corpus_blocks(50);
  cc::GlobalExplainer ex(model, blocks, {});
  ASSERT_EQ(ex.predictions().size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(ex.predictions()[i], model.predict(blocks[i]));
  }
}

TEST(GlobalExplainer, ConjunctionSizeRespectsMaxSize) {
  const DivKeyedModel model;
  cc::GlobalExplainerOptions opts;
  opts.max_size = 1;
  cc::GlobalExplainer ex(model, corpus_blocks(200), opts);
  const auto e = ex.explain_range(9.0, 11.0);
  EXPECT_LE(e.features.size(), 1u);
}

TEST(GlobalExplainer, DeterministicAcrossCalls) {
  const RawKeyedModel model;
  cc::GlobalExplainer ex(model, corpus_blocks(150), {});
  const auto a = ex.explain_range(4.5, 5.5);
  const auto b = ex.explain_range(4.5, 5.5);
  EXPECT_EQ(a.features, b.features);
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
}

TEST(GlobalExplainer, ReportsSupport) {
  const CountKeyedModel m1(6);
  const auto blocks = corpus_blocks();
  cc::GlobalExplainer ex(m1, blocks, {});
  const auto e = ex.explain_range(1.5, 2.5);
  const std::size_t n6 = std::count_if(
      blocks.begin(), blocks.end(),
      [](const auto& b) { return b.size() == 6; });
  EXPECT_EQ(e.support, n6);
}
