// Tests for the relational message-passing substrate: shapes, message
// semantics, determinism, full numerical gradient checks, and an
// end-to-end learning sanity check on a graph-structured toy task.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/gnn.h"
#include "nn/mat.h"
#include "util/rng.h"

namespace cn = comet::nn;
using comet::util::Rng;

namespace {

std::vector<std::vector<float>> random_nodes(std::size_t n, std::size_t d,
                                             Rng& rng) {
  std::vector<std::vector<float>> x(n, std::vector<float>(d));
  for (auto& row : x) {
    for (auto& v : row) v = float(rng.uniform(-1, 1));
  }
  return x;
}

}  // namespace

TEST(RelGraphLayer, ForwardShapes) {
  Rng rng(1);
  cn::RelGraphLayer layer(5, 7, 3, rng);
  EXPECT_EQ(layer.in_dim(), 5u);
  EXPECT_EQ(layer.out_dim(), 7u);
  EXPECT_EQ(layer.num_relations(), 3u);

  const auto x = random_nodes(4, 5, rng);
  const std::vector<cn::RelEdge> edges{{0, 1, 0}, {1, 2, 1}, {3, 2, 2}};
  cn::GraphLayerCache cache;
  const auto h = layer.forward(x, edges, cache);
  ASSERT_EQ(h.size(), 4u);
  for (const auto& hv : h) EXPECT_EQ(hv.size(), 7u);
}

TEST(RelGraphLayer, OutputsAreNonNegative) {
  Rng rng(2);
  cn::RelGraphLayer layer(4, 6, 2, rng);
  const auto x = random_nodes(5, 4, rng);
  const std::vector<cn::RelEdge> edges{{0, 1, 0}, {2, 3, 1}, {4, 0, 0}};
  cn::GraphLayerCache cache;
  for (const auto& hv : layer.forward(x, edges, cache)) {
    for (float v : hv) EXPECT_GE(v, 0.f);
  }
}

TEST(RelGraphLayer, NoEdgesMeansSelfTransformOnly) {
  // With no edges, two nodes with identical input get identical output.
  Rng rng(3);
  cn::RelGraphLayer layer(3, 5, 2, rng);
  std::vector<std::vector<float>> x{{0.3f, -0.2f, 0.9f}, {0.3f, -0.2f, 0.9f}};
  cn::GraphLayerCache cache;
  const auto h = layer.forward(x, {}, cache);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(h[0][i], h[1][i]);
  }
}

TEST(RelGraphLayer, IncomingEdgeChangesDestinationOnly) {
  Rng rng(4);
  cn::RelGraphLayer layer(3, 5, 1, rng);
  const auto x = random_nodes(3, 3, rng);
  cn::GraphLayerCache c0, c1;
  const auto h_no = layer.forward(x, {}, c0);
  const auto h_yes = layer.forward(x, {{0, 1, 0}}, c1);
  // Node 1 (destination) changes...
  bool changed = false;
  for (std::size_t i = 0; i < 5; ++i) changed |= h_no[1][i] != h_yes[1][i];
  EXPECT_TRUE(changed);
  // ...source and bystander do not.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(h_no[0][i], h_yes[0][i]);
    EXPECT_FLOAT_EQ(h_no[2][i], h_yes[2][i]);
  }
}

TEST(RelGraphLayer, MeanNormalizationMakesDuplicateEdgesIdempotent) {
  // Two identical edges (same src, dst, rel) must produce the same output
  // as one: messages are averaged per (dst, rel).
  Rng rng(5);
  cn::RelGraphLayer layer(3, 4, 2, rng);
  const auto x = random_nodes(2, 3, rng);
  cn::GraphLayerCache c0, c1;
  const auto h1 = layer.forward(x, {{0, 1, 0}}, c0);
  const auto h2 = layer.forward(x, {{0, 1, 0}, {0, 1, 0}}, c1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(h1[1][i], h2[1][i], 1e-6);
  }
}

TEST(RelGraphLayer, RelationTypesAreDistinct) {
  // The same edge under a different relation uses different weights.
  Rng rng(6);
  cn::RelGraphLayer layer(3, 4, 2, rng);
  const auto x = random_nodes(2, 3, rng);
  cn::GraphLayerCache c0, c1;
  const auto ha = layer.forward(x, {{0, 1, 0}}, c0);
  const auto hb = layer.forward(x, {{0, 1, 1}}, c1);
  bool differs = false;
  for (std::size_t i = 0; i < 4; ++i) differs |= ha[1][i] != hb[1][i];
  EXPECT_TRUE(differs);
}

TEST(RelGraphLayer, RejectsOutOfRangeEdges) {
  Rng rng(7);
  cn::RelGraphLayer layer(3, 4, 2, rng);
  const auto x = random_nodes(2, 3, rng);
  cn::GraphLayerCache cache;
  EXPECT_THROW(layer.forward(x, {{0, 5, 0}}, cache), std::invalid_argument);
  EXPECT_THROW(layer.forward(x, {{0, 1, 9}}, cache), std::invalid_argument);
}

TEST(RelGraphLayer, DeterministicForward) {
  Rng rng(8);
  cn::RelGraphLayer layer(4, 4, 3, rng);
  const auto x = random_nodes(5, 4, rng);
  const std::vector<cn::RelEdge> edges{{0, 1, 0}, {1, 2, 1}, {2, 3, 2},
                                       {3, 4, 0}, {4, 0, 1}};
  cn::GraphLayerCache c0, c1;
  const auto a = layer.forward(x, edges, c0);
  const auto b = layer.forward(x, edges, c1);
  for (std::size_t v = 0; v < a.size(); ++v) {
    for (std::size_t i = 0; i < a[v].size(); ++i) {
      EXPECT_FLOAT_EQ(a[v][i], b[v][i]);
    }
  }
}

TEST(RelGraphLayer, NumericalGradientCheck) {
  // Loss = sum of all output entries; check dL/dparam and dL/dx.
  Rng rng(9);
  cn::RelGraphLayer layer(3, 4, 2, rng);
  auto x = random_nodes(4, 3, rng);
  const std::vector<cn::RelEdge> edges{
      {0, 1, 0}, {2, 1, 0}, {1, 3, 1}, {3, 0, 1}, {0, 3, 0}};

  const auto loss = [&] {
    cn::GraphLayerCache cache;
    const auto h = layer.forward(x, edges, cache);
    float l = 0;
    for (const auto& hv : h) {
      for (float v : hv) l += v;
    }
    return l;
  };

  cn::GraphLayerCache cache;
  const auto h = layer.forward(x, edges, cache);
  std::vector<std::vector<float>> dh(4, std::vector<float>(4, 1.f));
  const auto dx = layer.backward(cache, edges, dh);

  const float eps = 1e-3f;
  for (cn::Mat* p : layer.params()) {
    for (std::size_t i = 0; i < p->size();
         i += std::max<std::size_t>(1, p->size() / 13)) {
      const float analytic = p->grad()[i];
      const float save = p->data()[i];
      p->data()[i] = save + eps;
      const float lp = loss();
      p->data()[i] = save - eps;
      const float lm = loss();
      p->data()[i] = save;
      EXPECT_NEAR((lp - lm) / (2 * eps), analytic, 5e-2) << "param entry " << i;
    }
    p->zero_grad();
  }
  for (std::size_t v = 0; v < x.size(); ++v) {
    for (std::size_t d = 0; d < 3; ++d) {
      const float save = x[v][d];
      x[v][d] = save + eps;
      const float lp = loss();
      x[v][d] = save - eps;
      const float lm = loss();
      x[v][d] = save;
      EXPECT_NEAR((lp - lm) / (2 * eps), dx[v][d], 5e-2)
          << "node " << v << " dim " << d;
    }
  }
}

TEST(RelGraphLayer, CanLearnToCountIncomingEdges) {
  // Toy task: node value = number of relation-0 in-edges. A single layer
  // plus a fixed sum readout over one target node must fit it.
  Rng rng(10);
  cn::RelGraphLayer layer(1, 8, 1, rng);
  cn::Mat w(1, 8), b(1, 1);
  w.init_xavier(rng);
  std::vector<cn::Mat*> params = layer.params();
  params.push_back(&w);
  params.push_back(&b);
  cn::Adam::Config cfg;
  cfg.lr = 5e-3;
  cn::Adam opt(params, cfg);

  double final_err = 0;
  for (int it = 0; it < 3000; ++it) {
    const std::size_t n = 3 + rng.index(3);
    std::vector<std::vector<float>> x(n, std::vector<float>{1.f});
    std::vector<cn::RelEdge> edges;
    // Random sources feed node 0. Mean normalization means the raw message
    // into node 0 saturates, so we give each source a distinct self weight
    // by scaling its input with (1 + #srcs)/4 — the layer must learn to
    // decode the count from message magnitude.
    const std::size_t k = rng.index(n);  // number of in-edges of node 0
    for (std::size_t s = 0; s < k; ++s) {
      edges.push_back({s + 1, 0, 0});
      x[s + 1][0] = float(k) / 4.f;
    }
    const float target = float(k);

    cn::GraphLayerCache cache;
    const auto h = layer.forward(x, edges, cache);
    float y = b.data()[0];
    for (int i = 0; i < 8; ++i) y += w.data()[i] * h[0][i];
    const float err = y - target;
    for (int i = 0; i < 8; ++i) w.grad()[i] += 2 * err * h[0][i];
    b.grad()[0] += 2 * err;
    std::vector<std::vector<float>> dh(n, std::vector<float>(8, 0.f));
    for (int i = 0; i < 8; ++i) dh[0][i] = 2 * err * w.data()[i];
    layer.backward(cache, edges, dh);
    opt.step();
    if (it >= 2900) final_err += std::abs(err);
  }
  EXPECT_LT(final_err / 100.0, 0.25);
}
