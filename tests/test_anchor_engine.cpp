// Tests for the unified, ISA-generic anchor engine: golden-seed parity with
// the pre-refactor x86 engine, and the invariant that every engine-issued
// model query flows through the query broker's batch path.
#include <gtest/gtest.h>

#include <span>

#include "core/comet.h"
#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/parser.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace cg = comet::graph;
namespace ck = comet::cost;
namespace cx = comet::x86;
namespace rv = comet::riscv;

namespace {

// The controlled model of the original engine tests: cost depends on
// exactly one feature, presence of a div.
class DivOnlyModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    for (const auto& inst : block.instructions) {
      if (inst.opcode == cx::Opcode::DIV || inst.opcode == cx::Opcode::IDIV) {
        return 20.0;
      }
    }
    return 1.0;
  }
  std::string name() const override { return "div-only"; }
};

// Flags any single-predict query and counts batch traffic, to verify the
// engine's query discipline end to end.
class BatchAuditModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    ++single_queries;
    return 1.0;
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    ++batch_calls;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      double v = 1.0;
      for (const auto& inst : blocks[i].instructions) {
        if (inst.opcode == cx::Opcode::DIV) v = 20.0;
      }
      out[i] = v;
    }
  }
  std::string name() const override { return "batch-audit"; }

  mutable std::size_t single_queries = 0;
  mutable std::size_t batch_calls = 0;
};

// --- a minimal, fully controllable instantiation of the generic engine ---
// One feature, a text-keyed stub model, and a perturber whose empty-sample
// rate and hit rate are dialed in directly. This is what lets the tests pin
// down the engine's precision accounting and its KL-lower-bound acceptance
// gate without depending on x86 perturbation statistics.

struct StubBlock {
  std::string text;
  bool empty() const { return text.empty(); }
  std::string to_string() const { return text; }
};

struct StubFeature {
  int id = 0;
  bool operator==(const StubFeature&) const = default;
};

struct StubFeatureSet {
  std::vector<StubFeature> feats;
  bool operator==(const StubFeatureSet&) const = default;
  const std::vector<StubFeature>& items() const { return feats; }
  bool contains(const StubFeature& f) const {
    for (const auto& x : feats) {
      if (x == f) return true;
    }
    return false;
  }
  StubFeatureSet with(const StubFeature& f) const {
    StubFeatureSet out = *this;
    if (!contains(f)) out.feats.push_back(f);
    return out;
  }
};

struct StubPerturbed {
  StubBlock block;
};

// Every `empty_stride`-th sample comes back empty (a perturbation with no
// surviving instructions); the rest are unique non-empty blocks.
struct StubPerturber {
  std::size_t empty_stride;
  StubPerturbed sample(const StubFeatureSet&, comet::util::Rng& rng) const {
    const std::uint64_t n = rng.next_u64();
    if (empty_stride != 0 && n % empty_stride == 0) return {StubBlock{}};
    // Two-step append: GCC 12's -Wrestrict false-fires on the temporary
    // from `"p" + std::to_string(n)` (PR105651).
    std::string text = "p";
    text += std::to_string(n);
    return {StubBlock{std::move(text)}};
  }
  bool contains(const StubPerturbed& alpha, const StubFeatureSet&) const {
    return !alpha.block.empty();
  }
};

// Deterministic text-keyed stub: a block is a "hit" (prediction == base)
// when its hash lands under hit_percent; misses land far outside epsilon.
struct StubModel {
  int hit_percent = 100;
  double predict(const StubBlock& block) const {
    if (block.text == "base") return 1.0;
    const std::uint64_t h = comet::util::fnv1a64(block.text.c_str());
    return (h % 100) < static_cast<std::uint64_t>(hit_percent) ? 1.0 : 50.0;
  }
  void predict_batch(std::span<const StubBlock> blocks,
                     std::span<double> out) const {
    for (std::size_t i = 0; i < blocks.size(); ++i) out[i] = predict(blocks[i]);
  }
  std::string name() const { return "stub"; }
};

struct StubOptions : cc::AnchorSearchOptions {
  std::size_t empty_stride = 0;
};

struct StubExplanation {
  StubFeatureSet features;
  double precision = 0.0;
  double coverage = 0.0;
  bool met_threshold = false;
  std::size_t model_queries = 0;
  ck::QueryStats query_stats;
};

struct StubTraits {
  using Block = StubBlock;
  using Feature = StubFeature;
  using FeatureSet = StubFeatureSet;
  using Perturber = StubPerturber;
  using PerturbedBlock = StubPerturbed;
  using Model = StubModel;
  using Options = StubOptions;
  using Explanation = StubExplanation;
  static FeatureSet extract_features(const Block&, const Options&) {
    return FeatureSet{{StubFeature{1}}};
  }
  static Perturber make_perturber(const Block&, const Options& options) {
    return Perturber{options.empty_stride};
  }
};

cx::BasicBlock golden_block() {
  return cx::parse_block(R"(
    mov rax, 5
    div rcx
    add rsi, rdi
    mov r8, r9
    sub r10, r11
  )");
}

cc::CometOptions golden_options() {
  cc::CometOptions opt;
  opt.coverage_samples = 300;
  opt.final_precision_samples = 120;
  opt.seed = 11;
  opt.epsilon = 1.0;
  return opt;
}

}  // namespace

// ---------- golden-seed parity with the pre-refactor engine ----------

// Recorded from the monolithic pre-refactor CometExplainer::explain at this
// exact seed/options/block: the redesigned engine must be a drop-in — same
// anchor, same threshold outcome, same precision/coverage estimates, and
// the same requested-query count (the refactor batches queries, it must not
// add or remove any).
TEST(AnchorEngine, GoldenSeedParityWithPreRefactorEngine) {
  const DivOnlyModel model;
  const cc::CometExplainer explainer(model, golden_options());
  const auto expl = explainer.explain(golden_block());

  cg::FeatureSet expected;
  expected.insert(cg::Feature(cg::InstFeature{1, cx::Opcode::DIV}));
  EXPECT_EQ(expl.features, expected) << expl.features.to_string();
  EXPECT_TRUE(expl.met_threshold);
  EXPECT_DOUBLE_EQ(expl.precision, 1.0);
  EXPECT_NEAR(expl.coverage, 0.6333333333333333, 1e-12);
  EXPECT_EQ(expl.model_queries, 1933u);
}

// ---------- all engine queries are batched through the broker ----------

TEST(AnchorEngine, AllQueriesFlowThroughBatchedBroker) {
  const BatchAuditModel model;
  cc::CometOptions opt = golden_options();
  const cc::CometExplainer explainer(model, opt);
  const auto expl = explainer.explain(golden_block());

  // The model never saw a single-predict call, only batches...
  EXPECT_EQ(model.single_queries, 0u);
  EXPECT_GT(model.batch_calls, 0u);
  // ...and the broker's ledger agrees: batch calls only, with memoization
  // absorbing part of the requested volume.
  EXPECT_EQ(expl.query_stats.single_calls, 0u);
  EXPECT_EQ(expl.query_stats.batch_calls, model.batch_calls);
  EXPECT_GT(expl.query_stats.requested, 0u);
  EXPECT_GT(expl.query_stats.cache_hits, 0u);
  EXPECT_EQ(expl.query_stats.evaluated,
            expl.query_stats.requested - expl.query_stats.cache_hits);
  // Requested broker traffic can never exceed the engine's query count
  // (which also charges for empty perturbations that skip the model).
  EXPECT_LE(expl.query_stats.requested, expl.model_queries);
}

TEST(AnchorEngine, RiscvInstantiationUsesTheSameBrokerDiscipline) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  const auto e = explainer.explain(rv::parse_block(R"(
    add a0, a1, a2
    div a3, a0, a4
    addi a5, a3, 1
  )"));
  EXPECT_EQ(e.query_stats.single_calls, 0u);
  EXPECT_GT(e.query_stats.batch_calls, 0u);
  EXPECT_GT(e.query_stats.cache_hits, 0u);
  EXPECT_LE(e.query_stats.evaluated, e.query_stats.requested);
}

// ---------- precision accounting with empty perturbations ----------

// Regression: estimate_precision used to keep empty perturbations in the
// denominator while skipping them in the batch, biasing Prec(F) down on
// blocks whose perturber emits empties — and disagreeing with the search's
// arm scoring, which only counts evaluated samples. With a model that is
// always within epsilon, precision must be exactly 1.0 no matter how many
// samples came back empty.
TEST(AnchorEngine, EstimatePrecisionIgnoresEmptyPerturbations) {
  const StubModel model;  // hit_percent = 100: every prediction == base
  StubOptions opt;
  opt.empty_stride = 2;  // roughly half of all perturbations are empty
  const cc::AnchorEngine<StubTraits> engine(model, opt);
  const StubBlock block{"base"};
  comet::util::Rng rng(9);
  const double prec =
      engine.estimate_precision(block, StubFeatureSet{}, 400, rng);
  EXPECT_DOUBLE_EQ(prec, 1.0);
}

// ---------- the KL-lower-bound acceptance gate ----------

// With a positive final_precision_samples budget, an anchor whose raw mean
// clears the threshold but whose KL lower bound cannot (true hit rate ~0.70
// == the threshold: at 200 pulls the LB sits well below it) must be
// REJECTED even though its early 12-pull mean spiked to 0.917.
// Before the fix, "lb_ok || mean >= threshold" accepted it — the lower
// bound could never fire because kl_lower_bound(mean, ...) <= mean.
TEST(AnchorEngine, KlLowerBoundGateRejectsUnverifiableAnchors) {
  StubModel model;
  model.hit_percent = 70;
  StubOptions opt;
  opt.delta = 0.3;  // threshold 0.7
  opt.final_precision_samples = 200;
  opt.coverage_samples = 50;
  opt.seed = 8;
  const cc::AnchorEngine<StubTraits> engine(model, opt);
  const auto e = engine.explain(StubBlock{"base"});
  EXPECT_FALSE(e.met_threshold);
  // The best-effort candidate still reports its (unverified) precision.
  EXPECT_GE(e.precision, 0.7);
}

// A zero budget disables verification: the same anchor is accepted on its
// raw mean (the historical rule RvExplainOptions pins).
TEST(AnchorEngine, ZeroFirmUpBudgetFallsBackToMeanOnlyRule) {
  StubModel model;
  model.hit_percent = 70;
  StubOptions opt;
  opt.delta = 0.3;
  opt.final_precision_samples = 0;
  opt.coverage_samples = 50;
  opt.seed = 8;
  const cc::AnchorEngine<StubTraits> engine(model, opt);
  const auto e = engine.explain(StubBlock{"base"});
  EXPECT_TRUE(e.met_threshold);
  EXPECT_GE(e.precision, 0.7);
}

// A clean anchor (hit rate 1.0) must still pass the gate with room to
// spare: the LB of a run of pure hits clears 0.7 after a handful of pulls.
TEST(AnchorEngine, KlLowerBoundGateAcceptsCleanAnchors) {
  const StubModel model;  // 100% hits
  StubOptions opt;
  opt.delta = 0.3;
  opt.final_precision_samples = 200;
  opt.coverage_samples = 50;
  opt.seed = 3;
  const cc::AnchorEngine<StubTraits> engine(model, opt);
  const auto e = engine.explain(StubBlock{"base"});
  EXPECT_TRUE(e.met_threshold);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
}

// ---------- estimator parity across the shared engine ----------

TEST(AnchorEngine, RvEstimatorsAreExposedAndBounded) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  const auto block = rv::parse_block("add a0, a1, a2\nmul a3, a0, a4");
  const auto vocab = rv::extract_features(block);
  ASSERT_FALSE(vocab.empty());
  rv::RvFeatureSet fs;
  fs.insert(vocab.items().front());
  comet::util::Rng rng(3);
  const double prec = explainer.estimate_precision(block, fs, 200, rng);
  const double cov = explainer.estimate_coverage(block, fs, 200, rng);
  EXPECT_GE(prec, 0.0);
  EXPECT_LE(prec, 1.0);
  EXPECT_GE(cov, 0.0);
  EXPECT_LE(cov, 1.0);
}

// ---------- explanation rendering (fixed 3-decimal format) ----------

TEST(Explanation, ToStringUsesFixedThreeDecimalFormat) {
  cc::Explanation e;
  e.features.insert(cg::Feature(cg::NumInstsFeature{4}));
  e.precision = 0.7251;
  e.coverage = 1.0 / 3.0;
  const std::string s = e.to_string();
  EXPECT_NE(s.find("prec=0.725"), std::string::npos) << s;
  EXPECT_NE(s.find("cov=0.333"), std::string::npos) << s;
  EXPECT_EQ(s.find("0.725100"), std::string::npos) << s;
}
