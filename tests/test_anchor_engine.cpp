// Tests for the unified, ISA-generic anchor engine: golden-seed parity with
// the pre-refactor x86 engine, and the invariant that every engine-issued
// model query flows through the query broker's batch path.
#include <gtest/gtest.h>

#include <span>

#include "core/comet.h"
#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/parser.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace cg = comet::graph;
namespace ck = comet::cost;
namespace cx = comet::x86;
namespace rv = comet::riscv;

namespace {

// The controlled model of the original engine tests: cost depends on
// exactly one feature, presence of a div.
class DivOnlyModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    for (const auto& inst : block.instructions) {
      if (inst.opcode == cx::Opcode::DIV || inst.opcode == cx::Opcode::IDIV) {
        return 20.0;
      }
    }
    return 1.0;
  }
  std::string name() const override { return "div-only"; }
};

// Flags any single-predict query and counts batch traffic, to verify the
// engine's query discipline end to end.
class BatchAuditModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    ++single_queries;
    return 1.0;
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    ++batch_calls;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      double v = 1.0;
      for (const auto& inst : blocks[i].instructions) {
        if (inst.opcode == cx::Opcode::DIV) v = 20.0;
      }
      out[i] = v;
    }
  }
  std::string name() const override { return "batch-audit"; }

  mutable std::size_t single_queries = 0;
  mutable std::size_t batch_calls = 0;
};

cx::BasicBlock golden_block() {
  return cx::parse_block(R"(
    mov rax, 5
    div rcx
    add rsi, rdi
    mov r8, r9
    sub r10, r11
  )");
}

cc::CometOptions golden_options() {
  cc::CometOptions opt;
  opt.coverage_samples = 300;
  opt.final_precision_samples = 120;
  opt.seed = 11;
  opt.epsilon = 1.0;
  return opt;
}

}  // namespace

// ---------- golden-seed parity with the pre-refactor engine ----------

// Recorded from the monolithic pre-refactor CometExplainer::explain at this
// exact seed/options/block: the redesigned engine must be a drop-in — same
// anchor, same threshold outcome, same precision/coverage estimates, and
// the same requested-query count (the refactor batches queries, it must not
// add or remove any).
TEST(AnchorEngine, GoldenSeedParityWithPreRefactorEngine) {
  const DivOnlyModel model;
  const cc::CometExplainer explainer(model, golden_options());
  const auto expl = explainer.explain(golden_block());

  cg::FeatureSet expected;
  expected.insert(cg::Feature(cg::InstFeature{1, cx::Opcode::DIV}));
  EXPECT_EQ(expl.features, expected) << expl.features.to_string();
  EXPECT_TRUE(expl.met_threshold);
  EXPECT_DOUBLE_EQ(expl.precision, 1.0);
  EXPECT_NEAR(expl.coverage, 0.6333333333333333, 1e-12);
  EXPECT_EQ(expl.model_queries, 1933u);
}

// ---------- all engine queries are batched through the broker ----------

TEST(AnchorEngine, AllQueriesFlowThroughBatchedBroker) {
  const BatchAuditModel model;
  cc::CometOptions opt = golden_options();
  const cc::CometExplainer explainer(model, opt);
  const auto expl = explainer.explain(golden_block());

  // The model never saw a single-predict call, only batches...
  EXPECT_EQ(model.single_queries, 0u);
  EXPECT_GT(model.batch_calls, 0u);
  // ...and the broker's ledger agrees: batch calls only, with memoization
  // absorbing part of the requested volume.
  EXPECT_EQ(expl.query_stats.single_calls, 0u);
  EXPECT_EQ(expl.query_stats.batch_calls, model.batch_calls);
  EXPECT_GT(expl.query_stats.requested, 0u);
  EXPECT_GT(expl.query_stats.cache_hits, 0u);
  EXPECT_EQ(expl.query_stats.evaluated,
            expl.query_stats.requested - expl.query_stats.cache_hits);
  // Requested broker traffic can never exceed the engine's query count
  // (which also charges for empty perturbations that skip the model).
  EXPECT_LE(expl.query_stats.requested, expl.model_queries);
}

TEST(AnchorEngine, RiscvInstantiationUsesTheSameBrokerDiscipline) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  const auto e = explainer.explain(rv::parse_block(R"(
    add a0, a1, a2
    div a3, a0, a4
    addi a5, a3, 1
  )"));
  EXPECT_EQ(e.query_stats.single_calls, 0u);
  EXPECT_GT(e.query_stats.batch_calls, 0u);
  EXPECT_GT(e.query_stats.cache_hits, 0u);
  EXPECT_LE(e.query_stats.evaluated, e.query_stats.requested);
}

// ---------- estimator parity across the shared engine ----------

TEST(AnchorEngine, RvEstimatorsAreExposedAndBounded) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  const auto block = rv::parse_block("add a0, a1, a2\nmul a3, a0, a4");
  const auto vocab = rv::extract_features(block);
  ASSERT_FALSE(vocab.empty());
  rv::RvFeatureSet fs;
  fs.insert(vocab.items().front());
  comet::util::Rng rng(3);
  const double prec = explainer.estimate_precision(block, fs, 200, rng);
  const double cov = explainer.estimate_coverage(block, fs, 200, rng);
  EXPECT_GE(prec, 0.0);
  EXPECT_LE(prec, 1.0);
  EXPECT_GE(cov, 0.0);
  EXPECT_LE(cov, 1.0);
}

// ---------- explanation rendering (fixed 3-decimal format) ----------

TEST(Explanation, ToStringUsesFixedThreeDecimalFormat) {
  cc::Explanation e;
  e.features.insert(cg::Feature(cg::NumInstsFeature{4}));
  e.precision = 0.7251;
  e.coverage = 1.0 / 3.0;
  const std::string s = e.to_string();
  EXPECT_NE(s.find("prec=0.725"), std::string::npos) << s;
  EXPECT_NE(s.find("cov=0.333"), std::string::npos) << s;
  EXPECT_EQ(s.find("0.725100"), std::string::npos) << s;
}
