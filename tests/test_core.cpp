// Tests for the COMET explanation engine: precision/coverage estimators,
// anchor search behaviour on a model with known ground truth, baselines,
// and the evaluation harness.
#include <gtest/gtest.h>

#include "bhive/paper_blocks.h"
#include "core/baselines.h"
#include "core/comet.h"
#include "core/eval.h"
#include "cost/crude_model.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace cg = comet::graph;
namespace ck = comet::cost;
namespace cx = comet::x86;
using comet::util::Rng;

namespace {

// A synthetic cost model whose behaviour depends on exactly one feature:
// the presence of a div instruction. Gives fully controlled ground truth
// for the explanation engine.
class DivOnlyModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    for (const auto& inst : block.instructions) {
      if (inst.opcode == cx::Opcode::DIV || inst.opcode == cx::Opcode::IDIV) {
        return 20.0;
      }
    }
    return 1.0;
  }
  std::string name() const override { return "div-only"; }
};

// A cost model that only counts instructions.
class CountOnlyModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    return static_cast<double>(block.size());
  }
  std::string name() const override { return "count-only"; }
};

cc::CometOptions fast_options() {
  cc::CometOptions opt;
  opt.coverage_samples = 300;
  opt.final_precision_samples = 120;
  opt.seed = 11;
  return opt;
}

}  // namespace

// ---------- explanation engine on controlled models ----------

TEST(Comet, ExplainsDivOnlyModelWithDivInstruction) {
  const DivOnlyModel model;
  cc::CometOptions opt = fast_options();
  opt.epsilon = 1.0;
  const cc::CometExplainer explainer(model, opt);
  const auto block = cx::parse_block(R"(
    mov rax, 5
    div rcx
    add rsi, rdi
    mov r8, r9
    sub r10, r11
  )");
  const auto expl = explainer.explain(block);
  EXPECT_TRUE(expl.met_threshold);
  // The explanation must involve the div instruction (directly or through a
  // dependency pinning it); a div-free feature set cannot be this precise.
  bool mentions_div = false;
  for (const auto& f : expl.features.items()) {
    if (f.is_inst() && f.as_inst().opcode == cx::Opcode::DIV) {
      mentions_div = true;
    }
    if (f.is_dep() && (f.as_dep().from == 1 || f.as_dep().to == 1)) {
      mentions_div = true;
    }
  }
  EXPECT_TRUE(mentions_div) << expl.features.to_string();
}

TEST(Comet, ExplainsCountOnlyModelWithEta) {
  const CountOnlyModel model;
  cc::CometOptions opt = fast_options();
  opt.epsilon = 0.5;  // any deletion changes the prediction by 1
  const cc::CometExplainer explainer(model, opt);
  const auto block = cx::parse_block(R"(
    mov rax, 5
    add rsi, rdi
    mov r8, r9
    sub r10, r11
    inc rbx
  )");
  const auto expl = explainer.explain(block);
  EXPECT_TRUE(expl.met_threshold);
  bool has_eta = false;
  for (const auto& f : expl.features.items()) has_eta |= f.is_num_insts();
  EXPECT_TRUE(has_eta) << expl.features.to_string();
}

TEST(Comet, PrecisionOfEtaIsPerfectForCountModel) {
  const CountOnlyModel model;
  cc::CometOptions opt = fast_options();
  opt.epsilon = 0.5;
  const cc::CometExplainer explainer(model, opt);
  const auto block = cx::parse_block("mov rax, 5\nadd rsi, rdi\nmov r8, r9");
  cg::FeatureSet eta;
  eta.insert(cg::Feature(cg::NumInstsFeature{3}));
  Rng rng(3);
  EXPECT_DOUBLE_EQ(explainer.estimate_precision(block, eta, 200, rng), 1.0);
}

TEST(Comet, EmptyFeatureSetHasFullCoverage) {
  const CountOnlyModel model;
  const cc::CometExplainer explainer(model, fast_options());
  const auto block = cx::parse_block("mov rax, 5\nadd rsi, rdi");
  Rng rng(4);
  EXPECT_DOUBLE_EQ(
      explainer.estimate_coverage(block, cg::FeatureSet{}, 200, rng), 1.0);
}

TEST(Comet, CoverageDecreasesWithMoreFeatures) {
  const CountOnlyModel model;
  const cc::CometExplainer explainer(model, fast_options());
  const auto block = comet::bhive::listing3_case_study2();
  const auto all = cg::extract_features(block);
  Rng rng(5);
  cg::FeatureSet acc;
  double prev = 1.0;
  for (const auto& f : all.items()) {
    acc.insert(f);
    Rng local(7);
    const double cov = explainer.estimate_coverage(block, acc, 400, local);
    EXPECT_LE(cov, prev + 0.05);  // small slack for Monte-Carlo noise
    prev = cov;
  }
}

TEST(Comet, ReportsModelQueries) {
  const CountOnlyModel model;
  const cc::CometExplainer explainer(model, fast_options());
  const auto expl =
      explainer.explain(cx::parse_block("mov rax, 5\nadd rsi, rdi"));
  EXPECT_GT(expl.model_queries, 10u);
}

TEST(Comet, DeterministicForSameSeed) {
  const DivOnlyModel model;
  cc::CometOptions opt = fast_options();
  opt.epsilon = 1.0;
  const cc::CometExplainer e1(model, opt), e2(model, opt);
  const auto block = cx::parse_block("mov rax, 5\ndiv rcx\nadd rsi, rdi");
  EXPECT_EQ(e1.explain(block).features, e2.explain(block).features);
}

TEST(Comet, ExplainsCrudeModelDivBlock) {
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  cc::CometOptions opt = fast_options();
  opt.epsilon = 0.25;
  const cc::CometExplainer explainer(model, opt);
  const auto block = cx::parse_block(R"(
    mov rbx, 5
    add rsi, rdi
    div rcx
    mov r8, r9
    sub r10, r11
  )");
  const auto gt = model.ground_truth(block);
  const auto expl = explainer.explain(block);
  EXPECT_TRUE(cc::explanation_accurate(expl.features, gt))
      << "GT=" << gt.to_string() << " expl=" << expl.features.to_string();
}

// ---------- accuracy criterion ----------

TEST(Eval, AccuracyCriterion) {
  cg::FeatureSet gt;
  gt.insert(cg::Feature(cg::NumInstsFeature{5}));
  gt.insert(cg::Feature(cg::InstFeature{1, cx::Opcode::DIV}));

  cg::FeatureSet exact_subset;
  exact_subset.insert(cg::Feature(cg::NumInstsFeature{5}));
  EXPECT_TRUE(cc::explanation_accurate(exact_subset, gt));

  cg::FeatureSet with_extra = exact_subset;
  with_extra.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::MOV}));
  EXPECT_FALSE(cc::explanation_accurate(with_extra, gt));

  EXPECT_FALSE(cc::explanation_accurate(cg::FeatureSet{}, gt));
}

// ---------- baselines ----------

TEST(Baselines, FrequenciesTrackTypes) {
  cc::FeatureTypeFrequencies freqs;
  cg::FeatureSet gt1;
  gt1.insert(cg::Feature(cg::NumInstsFeature{4}));
  gt1.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::DIV}));
  freqs.add(gt1);
  cg::FeatureSet gt2;
  gt2.insert(cg::Feature(cg::NumInstsFeature{6}));
  freqs.add(gt2);
  EXPECT_DOUBLE_EQ(freqs.total(), 3.0);
  EXPECT_EQ(freqs.most_frequent(), cg::FeatureType::NumInsts);
}

TEST(Baselines, FixedEmitsFirstFeatureOfDominantType) {
  cc::FeatureTypeFrequencies freqs;
  freqs.counts[static_cast<std::size_t>(cg::FeatureType::NumInsts)] = 10;
  const cc::FixedBaseline fixed(freqs);
  const auto block = cx::parse_block("mov rax, 5\nadd rsi, rdi");
  const auto expl = fixed.explain(block);
  ASSERT_EQ(expl.size(), 1u);
  EXPECT_TRUE(expl.items()[0].is_num_insts());
}

TEST(Baselines, FixedInstTypePicksFirstInstruction) {
  cc::FeatureTypeFrequencies freqs;
  freqs.counts[static_cast<std::size_t>(cg::FeatureType::Inst)] = 10;
  const cc::FixedBaseline fixed(freqs);
  const auto block = cx::parse_block("mov rax, 5\nadd rsi, rdi");
  const auto expl = fixed.explain(block);
  ASSERT_EQ(expl.size(), 1u);
  ASSERT_TRUE(expl.items()[0].is_inst());
  EXPECT_EQ(expl.items()[0].as_inst().index, 0u);
}

TEST(Baselines, RandomEmitsOneBlockFeature) {
  cc::FeatureTypeFrequencies freqs;
  freqs.counts[0] = freqs.counts[1] = freqs.counts[2] = 5;
  cc::RandomBaseline random(freqs, 17);
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx\npop rbx");
  const auto vocabulary = cg::extract_features(block);
  for (int i = 0; i < 50; ++i) {
    const auto expl = random.explain(block);
    ASSERT_EQ(expl.size(), 1u);
    EXPECT_TRUE(vocabulary.contains(expl.items()[0]));
  }
}

TEST(Baselines, RandomFollowsTypeDistribution) {
  cc::FeatureTypeFrequencies freqs;
  freqs.counts[static_cast<std::size_t>(cg::FeatureType::NumInsts)] = 100;
  cc::RandomBaseline random(freqs, 23);
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx\npop rbx");
  int eta_count = 0;
  for (int i = 0; i < 50; ++i) {
    eta_count += random.explain(block).items()[0].is_num_insts();
  }
  EXPECT_EQ(eta_count, 50);
}

// ---------- summarize ----------

TEST(Eval, SummarizeMeanStd) {
  const auto ms = cc::summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_NEAR(ms.std, 1.0, 1e-12);
}
