// Tests for the observability layer (src/obs/) and its serve-layer wiring:
// histogram bucket/percentile/merge math, registry handle stability and
// exporters, the clock seam, counter/histogram thread-safety (meaningful
// under TSan — scripts/check.sh --tsan builds this file), engine phase
// timers, per-shard pool instrumentation, and the non-negotiable contract
// of the whole layer: explanations served with metrics on (real or mocked
// clock) are bit-identical to metrics-off and to the sequential path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/phase_timers.h"
#include "serve/isa_servers.h"
#include "serve/sharded_cost_model.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace ck = comet::cost;
namespace co = comet::obs;
namespace cs = comet::serve;
namespace cx = comet::x86;

namespace {

cc::CometOptions light_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 150;
  opt.max_pulls_per_level = 40;
  opt.batch_size = 8;
  opt.final_precision_samples = 60;
  opt.seed = seed;
  return opt;
}

void expect_identical(const cc::Explanation& a, const cc::Explanation& b) {
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.met_threshold, b.met_threshold);
  EXPECT_EQ(a.model_queries, b.model_queries);
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramSnapshot: bucket math

TEST(HistogramBuckets, Log2BucketBoundaries) {
  using H = co::HistogramSnapshot;
  EXPECT_EQ(0u, H::bucket_of(0));  // bucket 0 holds exact zeros
  EXPECT_EQ(1u, H::bucket_of(1));  // bucket i holds [2^(i-1), 2^i)
  EXPECT_EQ(2u, H::bucket_of(2));
  EXPECT_EQ(2u, H::bucket_of(3));
  EXPECT_EQ(3u, H::bucket_of(4));
  EXPECT_EQ(3u, H::bucket_of(7));
  EXPECT_EQ(4u, H::bucket_of(8));
  EXPECT_EQ(11u, H::bucket_of(1024));
  // The overflow bucket absorbs everything >= 2^62.
  EXPECT_EQ(63u, H::bucket_of(std::uint64_t{1} << 62));
  EXPECT_EQ(63u, H::bucket_of(~std::uint64_t{0}));
}

TEST(HistogramBuckets, BoundsBracketEveryValue) {
  using H = co::HistogramSnapshot;
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 4095ull, 4096ull}) {
    const std::size_t i = H::bucket_of(v);
    EXPECT_LE(H::bucket_lower(i), static_cast<double>(v)) << v;
    EXPECT_LT(static_cast<double>(v), H::bucket_upper(i)) << v;
  }
}

// ---------------------------------------------------------------------------
// HistogramSnapshot: percentiles

TEST(HistogramPercentiles, EmptyIsZero) {
  co::HistogramSnapshot h;
  EXPECT_EQ(0.0, h.p50());
  EXPECT_EQ(0.0, h.p99());
  EXPECT_EQ(0.0, h.mean());
}

TEST(HistogramPercentiles, ConstantSeriesIsExactEverywhere) {
  // The [min, max] clamp makes a constant series report its exact value at
  // every percentile, regardless of the bucket's nominal width.
  co::HistogramSnapshot h;
  for (int i = 0; i < 10; ++i) h.record(5000);
  EXPECT_EQ(5000.0, h.p50());
  EXPECT_EQ(5000.0, h.p95());
  EXPECT_EQ(5000.0, h.p99());
  EXPECT_EQ(5000.0, h.mean());
  EXPECT_EQ(5000u, h.min);
  EXPECT_EQ(5000u, h.max);
}

TEST(HistogramPercentiles, OrderedAndBracketedByMinMax) {
  co::HistogramSnapshot h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(1000u, h.count);
  EXPECT_EQ(1000u * 1001u / 2u, h.sum);
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log2 buckets bound the relative error by a factor of two.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);
}

TEST(HistogramPercentiles, MergeEqualsRecordingIntoOne) {
  co::HistogramSnapshot all, left, right;
  for (std::uint64_t v = 0; v < 500; ++v) {
    all.record(v * 7);
    (v % 2 == 0 ? left : right).record(v * 7);
  }
  left += right;
  EXPECT_EQ(all, left);  // buckets, count, sum, min, max — all of it
  co::HistogramSnapshot empty;
  left += empty;
  EXPECT_EQ(all, left);  // merging empty changes nothing (incl. min/max)
  empty += all;
  EXPECT_EQ(all, empty);  // merging into empty adopts min/max
}

// ---------------------------------------------------------------------------
// Instruments under concurrency (run under TSan via check.sh --tsan)

TEST(InstrumentConcurrency, CountersGaugesHistogramsAreThreadSafe) {
  co::MetricsRegistry registry;
  co::Counter& counter = registry.counter("events");
  co::Gauge& gauge = registry.gauge("level");
  co::Histogram& hist = registry.histogram("lat_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        gauge.set(static_cast<double>(t));
        hist.record(static_cast<std::uint64_t>(i));
        // Concurrent find-or-create against the same names must also be
        // safe (workers resolve labeled histograms on the fly).
        registry.counter("events").increment(0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(kThreads * kPerThread, counter.value());
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads) * kPerThread,
            hist.snapshot().count);
  const double g = gauge.value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
}

// ---------------------------------------------------------------------------
// Registry: handles, labels, exporters

TEST(MetricsRegistry, HandlesAreStableAndFindOrCreate) {
  co::MetricsRegistry registry;
  co::Counter& a = registry.counter("reqs");
  a.increment(3);
  // Same name — same instrument, even after other instruments are created.
  for (int i = 0; i < 100; ++i) {
    registry.histogram("h" + std::to_string(i));
  }
  EXPECT_EQ(&a, &registry.counter("reqs"));
  EXPECT_EQ(3u, registry.counter("reqs").value());
}

TEST(MetricsRegistry, LabeledNameConvention) {
  EXPECT_EQ("serve_run_ns{model_key=\"crude-hsw\"}",
            co::MetricsRegistry::labeled("serve_run_ns", "model_key",
                                         "crude-hsw"));
}

TEST(MetricsRegistry, PrometheusExposition) {
  co::MetricsRegistry registry;
  registry.counter("reqs").increment(3);
  registry.gauge("depth").set(2.5);
  registry.histogram("lat_ns").record(5);   // bucket (4, 8]
  registry.histogram("lat_ns").record(5);
  registry
      .histogram(co::MetricsRegistry::labeled("lat_ns", "key", "a"))
      .record(1);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(std::string::npos, text.find("# TYPE reqs counter"));
  EXPECT_NE(std::string::npos, text.find("reqs 3\n"));
  EXPECT_NE(std::string::npos, text.find("# TYPE depth gauge"));
  EXPECT_NE(std::string::npos, text.find("depth 2.5\n"));
  EXPECT_NE(std::string::npos, text.find("# TYPE lat_ns histogram"));
  // Cumulative buckets: both 5s land in le="8"; +Inf carries the total.
  EXPECT_NE(std::string::npos, text.find("lat_ns_bucket{le=\"8.0\"} 2"));
  EXPECT_NE(std::string::npos, text.find("lat_ns_bucket{le=\"+Inf\"} 2"));
  EXPECT_NE(std::string::npos, text.find("lat_ns_sum 10"));
  EXPECT_NE(std::string::npos, text.find("lat_ns_count 2"));
  // The labeled sibling keeps its label on every series.
  EXPECT_NE(std::string::npos,
            text.find("lat_ns_bucket{key=\"a\",le=\"+Inf\"} 1"));
  EXPECT_NE(std::string::npos, text.find("lat_ns_sum{key=\"a\"} 1"));
  // Exactly one # TYPE line for the shared base name.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE lat_ns ", pos)) != std::string::npos) {
    ++type_lines;
    ++pos;
  }
  EXPECT_EQ(1u, type_lines);
}

TEST(MetricsRegistry, JsonSnapshot) {
  co::MetricsRegistry registry;
  registry.counter("reqs").increment(7);
  registry.gauge("depth").set(1.0);
  for (int i = 0; i < 4; ++i) registry.histogram("lat_ns").record(1000);
  const std::string json = registry.to_json();
  EXPECT_NE(std::string::npos, json.find("\"counters\""));
  EXPECT_NE(std::string::npos, json.find("\"reqs\": 7"));
  EXPECT_NE(std::string::npos, json.find("\"gauges\""));
  EXPECT_NE(std::string::npos, json.find("\"histograms\""));
  EXPECT_NE(std::string::npos, json.find("\"count\": 4"));
  EXPECT_NE(std::string::npos, json.find("\"p99\": 1000.0"));
  // Empty registry still renders a complete object.
  co::MetricsRegistry empty;
  const std::string none = empty.to_json();
  EXPECT_NE(std::string::npos, none.find("\"counters\": {}"));
  EXPECT_NE(std::string::npos, none.find("\"histograms\": {}"));
}

// ---------------------------------------------------------------------------
// Clock seam

TEST(ClockSeam, ManualClockAdvancesOnlyByHand) {
  co::ManualClock clock(100);
  EXPECT_EQ(100u, clock.now_ns());
  EXPECT_EQ(100u, clock.now_ns());  // reading does not advance
  clock.advance_ns(50);
  EXPECT_EQ(150u, clock.now_ns());
  clock.set_ns(7);
  EXPECT_EQ(7u, clock.now_ns());
  const co::Clock& as_base = clock;
  EXPECT_EQ(7u, as_base.now_ns());
}

TEST(ClockSeam, SteadyClockIsMonotonic) {
  const co::Clock& clock = co::steady_clock();
  const std::uint64_t a = clock.now_ns();
  const std::uint64_t b = clock.now_ns();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------------
// Engine phase timers

TEST(PhaseTimers, OptInTimingIsBitIdenticalToUntimed) {
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  const cx::BasicBlock block = cb::listing1_motivating();

  const cc::Explanation untimed =
      cc::CometExplainer(model, light_options(11)).explain(block);
  EXPECT_FALSE(untimed.timings.enabled);  // default: zero clock reads
  EXPECT_TRUE(untimed.timings.levels.empty());

  cc::CometOptions timed_options = light_options(11);
  timed_options.phase_clock = &co::steady_clock();
  const cc::Explanation timed =
      cc::CometExplainer(model, timed_options).explain(block);
  expect_identical(untimed, timed);  // observation never perturbs results

  EXPECT_TRUE(timed.timings.enabled);
  ASSERT_GE(timed.timings.levels.size(), 1u);
  EXPECT_EQ(timed.timings.total_ns(),
            timed.timings.coverage_ns + timed.timings.beam_ns() +
                timed.timings.pulls_ns() + timed.timings.precision_ns());
  EXPECT_GT(timed.timings.total_ns(), 0u);
  EXPECT_NE(std::string::npos, timed.timings.to_string().find("levels="));
}

TEST(PhaseTimers, ManualClockYieldsDeterministicSplit) {
  // A frozen clock: every phase measures exactly zero — the timer plumbing
  // itself is deterministic, not just "small".
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  co::ManualClock clock(42);
  cc::CometOptions options = light_options(3);
  options.phase_clock = &clock;
  const cc::Explanation e =
      cc::CometExplainer(model, options).explain(cb::listing2_case_study1());
  EXPECT_TRUE(e.timings.enabled);
  EXPECT_EQ(0u, e.timings.total_ns());
}

// ---------------------------------------------------------------------------
// Serving-layer metrics + the parity contract

TEST(ServeMetrics, MetricsOnOffAndSequentialAreBitIdentical) {
  auto model =
      std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  const std::vector<cx::BasicBlock> blocks = {
      cb::listing1_motivating(), cb::listing2_case_study1(),
      cb::listing3_case_study2()};

  std::vector<cc::Explanation> reference;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    reference.push_back(
        cc::CometExplainer(*model, light_options(30 + i)).explain(blocks[i]));
  }

  co::ManualClock clock(1000);
  const auto run_server = [&](bool metrics, const co::Clock* clk) {
    cs::X86ExplanationServer server({.workers = 3,
                                     .queue_capacity = 8,
                                     .metrics = metrics,
                                     .clock = clk});
    server.register_model("crude", model);
    std::vector<std::uint64_t> tickets;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      tickets.push_back(server.submit("crude", blocks[i], light_options(30 + i)));
    }
    std::vector<cs::X86ExplanationServer::Served> by_ticket(blocks.size());
    for (const auto& served : server.drain()) {
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (tickets[i] == served.id) by_ticket[i] = served;
      }
    }
    return by_ticket;
  };

  const auto with_metrics = run_server(true, &clock);
  const auto without_metrics = run_server(false, nullptr);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    expect_identical(reference[i], with_metrics[i].explanation);
    expect_identical(reference[i], without_metrics[i].explanation);
    // Metrics off: not a single clock read; the trace stays all-zero.
    EXPECT_EQ(0u, without_metrics[i].trace.admit_ns);
    EXPECT_EQ(0u, without_metrics[i].trace.deliver_ns);
    // Metrics on with a frozen manual clock: every lifecycle stamp is the
    // clock's exact value — deterministic, not merely plausible.
    EXPECT_EQ(1000u, with_metrics[i].trace.admit_ns);
    EXPECT_EQ(1000u, with_metrics[i].trace.deliver_ns);
    EXPECT_EQ(0u, with_metrics[i].trace.queue_wait_ns());
    EXPECT_EQ(0u, with_metrics[i].trace.run_ns());
  }
}

TEST(ServeMetrics, LifecycleCountersAndHistogramsFill) {
  auto model =
      std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  co::ManualClock clock(5);
  cs::X86ExplanationServer server(
      {.workers = 2, .queue_capacity = 8, .clock = &clock});
  server.register_model("crude", model);
  const std::vector<cx::BasicBlock> blocks = {cb::listing1_motivating(),
                                              cb::listing2_case_study1()};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    server.submit("crude", blocks[i], light_options(50 + i));
  }
  const auto results = server.drain();
  ASSERT_EQ(blocks.size(), results.size());

  const auto snap = server.metrics().snapshot();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(blocks.size(), counter("serve_submitted"));
  EXPECT_EQ(blocks.size(), counter("serve_completed"));
  EXPECT_EQ(0u, counter("serve_submit_blocked"));
  EXPECT_EQ(0u, counter("serve_try_submit_rejected"));

  std::uint64_t run_count = 0, queue_count = 0, deliver_count = 0;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("serve_run_ns", 0) == 0) run_count += h.count;
    if (name.rfind("serve_queue_wait_ns", 0) == 0) queue_count += h.count;
    if (name == "serve_deliver_wait_ns") deliver_count = h.count;
  }
  EXPECT_EQ(blocks.size(), run_count);
  EXPECT_EQ(blocks.size(), queue_count);
  EXPECT_EQ(blocks.size(), deliver_count);

  // After the drain nothing is queued or outstanding.
  for (const auto& [name, v] : snap.gauges) {
    if (name == "serve_queue_depth" || name == "serve_outstanding") {
      EXPECT_EQ(0.0, v) << name;
    }
  }

  // Both exporters include the per-model-key histograms.
  EXPECT_NE(std::string::npos, server.metrics_text().find(
                                   "serve_run_ns_count{model_key=\"crude\"}"));
  EXPECT_NE(std::string::npos,
            server.metrics_json().find("serve_run_ns{model_key=\\\"crude\\\"}"));
}

// ---------------------------------------------------------------------------
// Sharded pool instrumentation

TEST(ShardedPoolMetrics, BatchSizeHistogramsAndHitRateGauges) {
  const cs::ShardedCostModel sharded(
      [](std::size_t) {
        return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
      },
      /*shards=*/2);
  std::vector<cx::BasicBlock> blocks;
  for (const auto& block :
       {cb::listing1_motivating(), cb::listing2_case_study1(),
        cb::listing3_case_study2(), cb::listing4_appendixF_beta1()}) {
    blocks.push_back(block);
  }
  std::vector<double> out(blocks.size());
  sharded.predict_batch(blocks, out);

  const auto snap = sharded.metrics().snapshot();
  std::uint64_t recorded = 0, sub_batches = 0;
  for (const auto& [name, h] : snap.histograms) {
    ASSERT_EQ(0u, name.rfind("shard_batch_size{shard=\"", 0)) << name;
    recorded += h.sum;        // total blocks routed through this shard
    sub_batches += h.count;   // dispatches it received
  }
  EXPECT_EQ(blocks.size(), recorded);  // every block routed exactly once
  EXPECT_GE(sub_batches, 1u);
  EXPECT_LE(sub_batches, 2u);  // at most one sub-batch per shard per call

  // First pass: cold caches. Repeat the identical batch: every query memo-
  // hits, and the per-shard hit-rate gauges say so.
  sharded.predict_batch(blocks, out);
  bool any_hits = false;
  for (const auto& [name, v] : sharded.metrics().snapshot().gauges) {
    ASSERT_EQ(0u, name.rfind("shard_hit_rate{shard=\"", 0)) << name;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    any_hits = any_hits || v > 0.0;
  }
  EXPECT_TRUE(any_hits);
  EXPECT_EQ(0.5, sharded.stats().hit_rate());  // 2nd pass fully memoized
}
