// Unit tests for the x86 substrate: register model, operands, ISA catalog,
// semantics, parser, and printer round-trips.
#include <gtest/gtest.h>

#include "x86/instruction.h"
#include "x86/isa.h"
#include "x86/operand.h"
#include "x86/parser.h"
#include "x86/registers.h"

namespace cx = comet::x86;

// ---------- registers ----------

TEST(Registers, NamesRoundTrip) {
  for (const char* name :
       {"rax", "eax", "ax", "al", "ah", "r8", "r8d", "r8w", "r8b", "rsp",
        "xmm0", "xmm15", "ymm3", "sil", "dil"}) {
    const auto reg = cx::parse_reg(name);
    ASSERT_TRUE(reg.has_value()) << name;
    EXPECT_EQ(cx::reg_name(*reg), name);
  }
}

TEST(Registers, ParseRejectsGarbage) {
  EXPECT_FALSE(cx::parse_reg("foo").has_value());
  EXPECT_FALSE(cx::parse_reg("xmm16").has_value());
  EXPECT_FALSE(cx::parse_reg("").has_value());
}

TEST(Registers, ParseIsCaseInsensitive) {
  const auto reg = cx::parse_reg("RAX");
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->family, cx::RegFamily::RAX);
  EXPECT_EQ(reg->width_bits, 64);
}

TEST(Registers, SubRegisterAliasing) {
  const auto rax = *cx::parse_reg("rax");
  const auto eax = *cx::parse_reg("eax");
  const auto al = *cx::parse_reg("al");
  const auto ah = *cx::parse_reg("ah");
  EXPECT_TRUE(cx::read_range(rax).overlaps(cx::read_range(eax)));
  EXPECT_TRUE(cx::read_range(rax).overlaps(cx::read_range(al)));
  EXPECT_TRUE(cx::read_range(rax).overlaps(cx::read_range(ah)));
  // al (byte 0) and ah (byte 1) do not overlap.
  EXPECT_FALSE(cx::read_range(al).overlaps(cx::read_range(ah)));
}

TEST(Registers, ThirtyTwoBitWriteZeroExtends) {
  const auto eax = *cx::parse_reg("eax");
  // A 32-bit write covers all 8 bytes (zero-extension) ...
  EXPECT_EQ(cx::write_range(eax).end, 8);
  // ... but a 32-bit read covers only 4.
  EXPECT_EQ(cx::read_range(eax).end, 4);
  // 16-bit writes stay partial.
  const auto ax = *cx::parse_reg("ax");
  EXPECT_EQ(cx::write_range(ax).end, 2);
}

TEST(Registers, Classes) {
  EXPECT_EQ(cx::reg_class(cx::RegFamily::RAX), cx::RegClass::Gpr);
  EXPECT_EQ(cx::reg_class(cx::RegFamily::XMM5), cx::RegClass::Vec);
  EXPECT_EQ(cx::reg_class(cx::RegFamily::FLAGS), cx::RegClass::Flags);
}

TEST(Registers, SubstitutablePoolsExcludeStackRegs) {
  for (const auto fam : cx::substitutable_gpr_families()) {
    EXPECT_FALSE(cx::is_stack_family(fam));
  }
  EXPECT_EQ(cx::vec_families().size(), 16u);
}

// ---------- operands ----------

TEST(Operand, SizeAndKind) {
  const auto r = cx::Operand::reg(*cx::parse_reg("ecx"));
  EXPECT_TRUE(r.is_reg());
  EXPECT_EQ(r.size_bits(), 32);

  const auto imm = cx::Operand::imm(42);
  EXPECT_TRUE(imm.is_imm());

  cx::MemOperand m;
  m.base = *cx::parse_reg("rdi");
  m.disp = 24;
  m.size_bits = 64;
  const auto mem = cx::Operand::mem(m);
  EXPECT_TRUE(mem.is_mem());
  EXPECT_EQ(mem.size_bits(), 64);
}

TEST(Operand, AddressRegs) {
  cx::MemOperand m;
  m.base = *cx::parse_reg("rbp");
  m.index = *cx::parse_reg("rax");
  m.scale = 4;
  const auto regs = cx::Operand::mem(m).address_regs();
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].family, cx::RegFamily::RBP);
  EXPECT_EQ(regs[1].family, cx::RegFamily::RAX);
}

TEST(Operand, MemToString) {
  cx::MemOperand m;
  m.base = *cx::parse_reg("rdi");
  m.disp = 24;
  m.size_bits = 64;
  EXPECT_EQ(cx::Operand::mem(m).to_string(), "qword ptr [rdi + 24]");
  m.disp = -8;
  EXPECT_EQ(cx::Operand::mem(m).to_string(), "qword ptr [rdi - 8]");
}

// ---------- catalog ----------

TEST(Catalog, EveryOpcodeHasMnemonicAndSignatures) {
  for (const auto op : cx::all_opcodes()) {
    const auto& inf = cx::info(op);
    EXPECT_FALSE(inf.mnemonic.empty());
    EXPECT_FALSE(inf.signatures.empty())
        << "opcode without signatures: " << inf.mnemonic;
    EXPECT_EQ(inf.op, op);
  }
}

TEST(Catalog, MnemonicRoundTrip) {
  for (const auto op : cx::all_opcodes()) {
    const auto parsed = cx::parse_opcode(cx::mnemonic(op));
    ASSERT_TRUE(parsed.has_value()) << cx::mnemonic(op);
    EXPECT_EQ(*parsed, op);
  }
}

TEST(Catalog, AddAcceptsRegRegSameWidth) {
  const auto rax = cx::Operand::reg(*cx::parse_reg("rax"));
  const auto rcx = cx::Operand::reg(*cx::parse_reg("rcx"));
  const auto ecx = cx::Operand::reg(*cx::parse_reg("ecx"));
  const std::vector<cx::Operand> ok{rcx, rax};
  const std::vector<cx::Operand> bad{rcx, ecx};  // width mismatch
  EXPECT_NE(cx::find_signature(cx::Opcode::ADD, ok), nullptr);
  const std::vector<cx::Operand> bad2{bad[0], ecx};
  EXPECT_EQ(cx::find_signature(cx::Opcode::ADD, bad2), nullptr);
}

TEST(Catalog, MovRejectsMemMem) {
  cx::MemOperand m;
  m.base = *cx::parse_reg("rax");
  m.size_bits = 64;
  const std::vector<cx::Operand> ops{cx::Operand::mem(m), cx::Operand::mem(m)};
  EXPECT_EQ(cx::find_signature(cx::Opcode::MOV, ops), nullptr);
}

TEST(Catalog, ShiftCountMustBeClOrImm) {
  const auto rax = cx::Operand::reg(*cx::parse_reg("rax"));
  const auto cl = cx::Operand::reg(*cx::parse_reg("cl"));
  const auto dl = cx::Operand::reg(*cx::parse_reg("dl"));
  const std::vector<cx::Operand> v1{rax, cl};
  EXPECT_NE(cx::find_signature(cx::Opcode::SHL, v1), nullptr);
  const std::vector<cx::Operand> v2{rax, dl};
  EXPECT_EQ(cx::find_signature(cx::Opcode::SHL, v2), nullptr);
  const std::vector<cx::Operand> v3{rax, cx::Operand::imm(3)};
  EXPECT_NE(cx::find_signature(cx::Opcode::SHL, v3), nullptr);
}

TEST(Catalog, MovzxRequiresNarrowerSource) {
  const auto eax = cx::Operand::reg(*cx::parse_reg("eax"));
  const auto cl = cx::Operand::reg(*cx::parse_reg("cl"));
  const auto ecx = cx::Operand::reg(*cx::parse_reg("ecx"));
  const std::vector<cx::Operand> v1{eax, cl};
  EXPECT_NE(cx::find_signature(cx::Opcode::MOVZX, v1), nullptr);
  const std::vector<cx::Operand> v2{eax, ecx};
  EXPECT_EQ(cx::find_signature(cx::Opcode::MOVZX, v2), nullptr);
}

TEST(Catalog, VectorOpsRejectGprOperands) {
  const auto rax = cx::Operand::reg(*cx::parse_reg("rax"));
  const auto xmm0 = cx::Operand::reg(*cx::parse_reg("xmm0"));
  const std::vector<cx::Operand> v1{xmm0, rax};
  EXPECT_EQ(cx::find_signature(cx::Opcode::ADDPS, v1), nullptr);
  const std::vector<cx::Operand> v2{xmm0, xmm0};
  EXPECT_NE(cx::find_signature(cx::Opcode::ADDPS, v2), nullptr);
}

TEST(Catalog, ReplacementCandidatesShareSignature) {
  const auto rcx = cx::Operand::reg(*cx::parse_reg("rcx"));
  const auto rax = cx::Operand::reg(*cx::parse_reg("rax"));
  const std::vector<cx::Operand> ops{rcx, rax};
  const auto cands = cx::replacement_opcodes(cx::Opcode::ADD, ops);
  EXPECT_FALSE(cands.empty());
  for (const auto c : cands) {
    EXPECT_NE(c, cx::Opcode::ADD);
    EXPECT_NE(cx::find_signature(c, ops), nullptr)
        << "candidate does not accept operands: " << cx::mnemonic(c);
  }
  // sub should certainly be a candidate for add r64, r64.
  EXPECT_NE(std::find(cands.begin(), cands.end(), cx::Opcode::SUB),
            cands.end());
}

TEST(Catalog, LeaHasNoReplacements) {
  // Paper Appendix D: lea has no behavioral peer; replacement must fail.
  const auto inst = cx::parse_instruction("lea rdx, [rax + 1]");
  const auto cands = cx::replacement_opcodes(inst.opcode, inst.operands);
  EXPECT_TRUE(cands.empty());
}

TEST(Catalog, MemoryInstructionNeverReplacedByLea) {
  const auto inst = cx::parse_instruction("add rdx, qword ptr [rax + 1]");
  const auto cands = cx::replacement_opcodes(inst.opcode, inst.operands);
  EXPECT_EQ(std::find(cands.begin(), cands.end(), cx::Opcode::LEA),
            cands.end());
}

// ---------- semantics ----------

TEST(Semantics, MovWritesDstReadsSrc) {
  const auto inst = cx::parse_instruction("mov rdx, rcx");
  const auto sem = cx::semantics(inst);
  ASSERT_EQ(sem.regs.size(), 2u);
  bool wrote_rdx = false, read_rcx = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RDX) {
      wrote_rdx = a.write && !a.read;
    }
    if (a.reg.family == cx::RegFamily::RCX) {
      read_rcx = a.read && !a.write;
    }
  }
  EXPECT_TRUE(wrote_rdx);
  EXPECT_TRUE(read_rcx);
  EXPECT_FALSE(sem.mem.has_value());
  EXPECT_FALSE(sem.writes_flags);
}

TEST(Semantics, AddReadsAndWritesDst) {
  const auto sem = cx::semantics(cx::parse_instruction("add rcx, rax"));
  bool ok = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RCX) ok = a.read && a.write;
  }
  EXPECT_TRUE(ok);
  EXPECT_TRUE(sem.writes_flags);
}

TEST(Semantics, StoreWritesMemoryAndReadsAddressRegs) {
  const auto sem = cx::semantics(
      cx::parse_instruction("mov qword ptr [rdi + 24], rdx"));
  ASSERT_TRUE(sem.mem.has_value());
  EXPECT_TRUE(sem.mem->write);
  EXPECT_FALSE(sem.mem->read);
  bool read_rdi = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RDI) read_rdi = a.read;
  }
  EXPECT_TRUE(read_rdi);
}

TEST(Semantics, LoadReadsMemory) {
  const auto sem =
      cx::semantics(cx::parse_instruction("mov rsi, qword ptr [r14 + 32]"));
  ASSERT_TRUE(sem.mem.has_value());
  EXPECT_TRUE(sem.mem->read);
  EXPECT_FALSE(sem.mem->write);
}

TEST(Semantics, LeaDoesNotAccessMemory) {
  const auto sem = cx::semantics(cx::parse_instruction("lea rdx, [rax + 1]"));
  EXPECT_FALSE(sem.mem.has_value());
  bool read_rax = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RAX) read_rax = a.read;
  }
  EXPECT_TRUE(read_rax);
}

TEST(Semantics, DivImplicitRaxRdx) {
  const auto sem = cx::semantics(cx::parse_instruction("div rcx"));
  bool rax_rw = false, rdx_rw = false, rcx_r = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RAX) rax_rw = a.read && a.write;
    if (a.reg.family == cx::RegFamily::RDX) rdx_rw = a.read && a.write;
    if (a.reg.family == cx::RegFamily::RCX) rcx_r = a.read && !a.write;
  }
  EXPECT_TRUE(rax_rw);
  EXPECT_TRUE(rdx_rw);
  EXPECT_TRUE(rcx_r);
}

TEST(Semantics, MulImplicitWritesRdxButDoesNotReadIt) {
  const auto sem = cx::semantics(cx::parse_instruction("mul rcx"));
  bool rdx_ok = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RDX) rdx_ok = a.write && !a.read;
  }
  EXPECT_TRUE(rdx_ok);
}

TEST(Semantics, TwoOperandImulHasNoImplicitRegs) {
  const auto sem = cx::semantics(cx::parse_instruction("imul rax, rcx"));
  for (const auto& a : sem.regs) {
    EXPECT_NE(a.reg.family, cx::RegFamily::RDX);
  }
}

TEST(Semantics, PushReadsOperandAndUpdatesRsp) {
  const auto sem = cx::semantics(cx::parse_instruction("push rbx"));
  bool rsp_rw = false, rbx_r = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RSP) rsp_rw = a.read && a.write;
    if (a.reg.family == cx::RegFamily::RBX) rbx_r = a.read;
  }
  EXPECT_TRUE(rsp_rw);
  EXPECT_TRUE(rbx_r);
  EXPECT_TRUE(sem.stack_mem_write);
}

TEST(Semantics, PopWritesOperand) {
  const auto sem = cx::semantics(cx::parse_instruction("pop rbx"));
  bool rbx_w = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::RBX) rbx_w = a.write && !a.read;
  }
  EXPECT_TRUE(rbx_w);
  EXPECT_TRUE(sem.stack_mem_read);
}

TEST(Semantics, CmovReadsFlags) {
  const auto sem = cx::semantics(cx::parse_instruction("cmove rax, rcx"));
  EXPECT_TRUE(sem.reads_flags);
}

TEST(Semantics, XorWritesFlagsNotDoesNot) {
  EXPECT_TRUE(cx::semantics(cx::parse_instruction("xor edx, edx")).writes_flags);
  EXPECT_FALSE(cx::semantics(cx::parse_instruction("not rdx")).writes_flags);
}

TEST(Semantics, Avx3OperandAccess) {
  const auto sem =
      cx::semantics(cx::parse_instruction("vdivss xmm0, xmm0, xmm6"));
  // xmm0 appears as both dst (write) and src1 (read) -> merged RW.
  bool xmm0_rw = false, xmm6_r = false;
  for (const auto& a : sem.regs) {
    if (a.reg.family == cx::RegFamily::XMM0) xmm0_rw = a.read && a.write;
    if (a.reg.family == cx::RegFamily::XMM6) xmm6_r = a.read && !a.write;
  }
  EXPECT_TRUE(xmm0_rw);
  EXPECT_TRUE(xmm6_r);
}

TEST(Semantics, InvalidInstructionThrows) {
  cx::Instruction bad;
  bad.opcode = cx::Opcode::ADD;
  bad.operands = {cx::Operand::imm(1), cx::Operand::imm(2)};
  EXPECT_THROW(cx::semantics(bad), std::invalid_argument);
  EXPECT_FALSE(cx::is_valid(bad));
}

// ---------- parser ----------

TEST(Parser, SimpleInstructions) {
  EXPECT_EQ(cx::parse_instruction("add rcx, rax").to_string(), "add rcx, rax");
  EXPECT_EQ(cx::parse_instruction("pop rbx").to_string(), "pop rbx");
  EXPECT_EQ(cx::parse_instruction("nop").to_string(), "nop");
}

TEST(Parser, MemoryOperands) {
  const auto i1 = cx::parse_instruction("mov qword ptr [rdi + 24], rdx");
  ASSERT_TRUE(i1.operands[0].is_mem());
  EXPECT_EQ(i1.operands[0].as_mem().disp, 24);
  EXPECT_EQ(i1.operands[0].as_mem().size_bits, 64);

  const auto i2 = cx::parse_instruction("mov byte ptr [rax], 80");
  EXPECT_EQ(i2.operands[0].as_mem().size_bits, 8);
  EXPECT_EQ(i2.operands[1].as_imm().value, 80);

  const auto i3 = cx::parse_instruction("lea rax, [rbp + rax - 1]");
  const auto& m = i3.operands[1].as_mem();
  EXPECT_EQ(m.base->family, cx::RegFamily::RBP);
  EXPECT_EQ(m.index->family, cx::RegFamily::RAX);
  EXPECT_EQ(m.disp, -1);
}

TEST(Parser, ScaledIndex) {
  const auto inst = cx::parse_instruction("mov rax, qword ptr [rsi + rcx*8 + 16]");
  const auto& m = inst.operands[1].as_mem();
  EXPECT_EQ(m.scale, 8);
  EXPECT_EQ(m.disp, 16);
}

TEST(Parser, InfersMemSizeFromRegister) {
  const auto inst = cx::parse_instruction("mov rsi, [r14 + 32]");
  EXPECT_EQ(inst.operands[1].as_mem().size_bits, 64);
  const auto inst32 = cx::parse_instruction("add ecx, [r14]");
  EXPECT_EQ(inst32.operands[1].as_mem().size_bits, 32);
}

TEST(Parser, ScalarFpMemWidthInferred) {
  const auto inst = cx::parse_instruction("addss xmm1, [rax]");
  EXPECT_EQ(inst.operands[1].as_mem().size_bits, 32);
  const auto instsd = cx::parse_instruction("addsd xmm1, [rax]");
  EXPECT_EQ(instsd.operands[1].as_mem().size_bits, 64);
}

TEST(Parser, HexImmediates) {
  const auto inst = cx::parse_instruction("mov rax, 0x10");
  EXPECT_EQ(inst.operands[1].as_imm().value, 16);
  const auto neg = cx::parse_instruction("add rax, -5");
  EXPECT_EQ(neg.operands[1].as_imm().value, -5);
}

TEST(Parser, RejectsBadInput) {
  EXPECT_THROW(cx::parse_instruction("bogus rax"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("add rax"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("mov [rax, rbx"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("jmp rax"), cx::ParseError);  // no CF ops
  EXPECT_THROW(cx::parse_instruction(""), cx::ParseError);
}

// Parse-boundary hardening (fuzz_x86_parser corpus): every adversarial
// input must raise ParseError — never overflow, index out of range, or
// abort. The displacement cases are a fixed bug: `[rax + MAX + MAX]` used
// to accumulate with a signed add, which is undefined behaviour.
TEST(Parser, AdversarialInputsRaiseParseError) {
  // Signed-overflow in displacement accumulation.
  EXPECT_THROW(
      cx::parse_instruction("add rcx, qword ptr [rax + 9223372036854775807 + "
                            "9223372036854775807]"),
      cx::ParseError);
  EXPECT_THROW(
      cx::parse_instruction("add rcx, qword ptr [rax - 9223372036854775807 - "
                            "9223372036854775807]"),
      cx::ParseError);
  // Empty operands around dangling separators.
  EXPECT_THROW(cx::parse_instruction("add ,"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("add rax,"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("add , rax"), cx::ParseError);
  // Unterminated memory brackets.
  EXPECT_THROW(cx::parse_instruction("mov rax, ["), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("mov rax, [rbx"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("mov rax, qword ptr [rbx + "),
               cx::ParseError);
  // Immediates beyond int64 range must not silently wrap.
  EXPECT_THROW(cx::parse_instruction("mov rax, 99999999999999999999999"),
               cx::ParseError);
  // Non-ASCII bytes (raw high bytes, UTF-8 BOM glued to the mnemonic).
  EXPECT_THROW(cx::parse_instruction("mov rax, \xff\xfe\xc0"), cx::ParseError);
  EXPECT_THROW(cx::parse_instruction("\xef\xbb\xbf"
                                     "add rcx, rax"),
               cx::ParseError);
}

TEST(Parser, BlockWithCommentsAndListingNumbers) {
  const auto block = cx::parse_block(R"(
    1: add rcx, rax   ; RAW with next
    2: mov rdx, rcx
    # a comment line
    3: pop rbx
  )");
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block.instructions[0].to_string(), "add rcx, rax");
  EXPECT_EQ(block.instructions[2].to_string(), "pop rbx");
  EXPECT_TRUE(cx::is_valid(block));
}

TEST(Parser, PaperCaseStudyBlocks) {
  // Listing 2.
  const auto cs1 = cx::parse_block(R"(
    lea rdx, [rax + 1]
    mov qword ptr [rdi + 24], rdx
    mov byte ptr [rax], 80
    mov rsi, qword ptr [r14 + 32]
    mov rdi, rbp
  )");
  EXPECT_EQ(cs1.size(), 5u);
  // Listing 3.
  const auto cs2 = cx::parse_block(R"(
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
  )");
  EXPECT_EQ(cs2.size(), 6u);
  // Listing 4 (AVX).
  const auto l4 = cx::parse_block(R"(
    vdivss xmm0, xmm0, xmm6
    vmulss xmm7, xmm0, xmm0
    vxorps xmm0, xmm0, xmm5
    vaddss xmm7, xmm7, xmm3
    vmulss xmm6, xmm6, xmm7
    vdivss xmm6, xmm3, xmm6
    vmulss xmm0, xmm6, xmm0
  )");
  EXPECT_EQ(l4.size(), 7u);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char* lines[] = {
      "add rcx, rax",
      "mov qword ptr [rdi + 24], rdx",
      "vdivss xmm0, xmm0, xmm6",
      "shl eax, 3",
      "imul rax, r15",
      "mov rbp, qword ptr [rsp + 8]",
      "cmove rax, rcx",
      "movzx eax, cl",
  };
  for (const char* line : lines) {
    const auto inst = cx::parse_instruction(line);
    const auto printed = inst.to_string();
    const auto reparsed = cx::parse_instruction(printed);
    EXPECT_EQ(inst, reparsed) << line << " vs " << printed;
  }
}

// Property test: every opcode's printed form for some valid operand choice
// parses back. Uses reg-reg forms where available.
class CatalogRoundTrip : public ::testing::TestWithParam<int> {};

TEST(CatalogProperty, AllSignaturesHaveSaneSlotCounts) {
  for (const auto op : cx::all_opcodes()) {
    for (const auto& s : cx::info(op).signatures) {
      EXPECT_LE(s.slots.size(), 4u);
    }
  }
}
