// Tests for perturbation-consistency fine-tuning: error improvement,
// sample accounting, determinism, and model-genericity (works for both
// neural surrogates through the same template).
#include <gtest/gtest.h>

#include "bhive/dataset.h"
#include "cost/finetune.h"
#include "cost/granite_model.h"
#include "cost/ithemal_model.h"
#include "sim/models.h"

namespace cc = comet::cost;
namespace cb = comet::bhive;

namespace {

cb::Dataset data() {
  cb::DatasetOptions opts;
  opts.size = 150;
  opts.seed = 31;
  return cb::generate_dataset(opts);
}

cc::IthemalConfig warm_config() {
  cc::IthemalConfig cfg;
  cfg.epochs = 1;  // warm start only: leave room for fine-tuning gains
  return cfg;
}

}  // namespace

TEST(Finetune, ImprovesWarmStartedIthemal) {
  const auto ds = data();
  const auto blocks = ds.block_views();
  const auto targets = ds.label_views(cc::MicroArch::Haswell);
  cc::IthemalModel model(cc::MicroArch::Haswell, warm_config());
  model.train(blocks, targets);

  const comet::sim::HardwareOracle oracle(cc::MicroArch::Haswell);
  cc::FinetuneOptions opts;
  opts.rounds = 2;
  opts.perturbations_per_block = 4;
  const auto r =
      cc::finetune_with_perturbations(model, blocks, targets, oracle, opts);
  EXPECT_GT(r.mape_before, 0.0);
  EXPECT_LT(r.mape_after, r.mape_before);
}

TEST(Finetune, AugmentedSampleAccounting) {
  const auto ds = data();
  const auto blocks = ds.block_views();
  const auto targets = ds.label_views(cc::MicroArch::Haswell);
  cc::IthemalModel model(cc::MicroArch::Haswell, warm_config());

  const comet::sim::HardwareOracle oracle(cc::MicroArch::Haswell);
  cc::FinetuneOptions opts;
  opts.rounds = 1;
  opts.perturbations_per_block = 3;
  const auto r =
      cc::finetune_with_perturbations(model, blocks, targets, oracle, opts);
  // Every perturbation of a non-empty block with a positive oracle label
  // counts; deletions can empty a block, so <= is the invariant.
  EXPECT_LE(r.augmented_samples, blocks.size() * 3);
  EXPECT_GT(r.augmented_samples, blocks.size());  // most samples survive
}

TEST(Finetune, DeterministicForFixedSeed) {
  const auto ds = data();
  const auto blocks = ds.block_views();
  const auto targets = ds.label_views(cc::MicroArch::Haswell);
  const comet::sim::HardwareOracle oracle(cc::MicroArch::Haswell);

  cc::FinetuneOptions opts;
  opts.rounds = 1;
  opts.perturbations_per_block = 2;

  cc::IthemalModel a(cc::MicroArch::Haswell, warm_config());
  cc::IthemalModel b(cc::MicroArch::Haswell, warm_config());
  const auto ra =
      cc::finetune_with_perturbations(a, blocks, targets, oracle, opts);
  const auto rb =
      cc::finetune_with_perturbations(b, blocks, targets, oracle, opts);
  EXPECT_DOUBLE_EQ(ra.mape_after, rb.mape_after);
  EXPECT_EQ(ra.augmented_samples, rb.augmented_samples);
  EXPECT_DOUBLE_EQ(a.predict(blocks[0]), b.predict(blocks[0]));
}

TEST(Finetune, WorksWithGraniteModel) {
  const auto ds = data();
  const auto blocks = ds.block_views();
  const auto targets = ds.label_views(cc::MicroArch::Skylake);
  cc::GraniteConfig cfg;
  cfg.epochs = 1;
  cc::GraniteModel model(cc::MicroArch::Skylake, cfg);
  model.train(blocks, targets);

  const comet::sim::HardwareOracle oracle(cc::MicroArch::Skylake);
  cc::FinetuneOptions opts;
  opts.rounds = 1;
  opts.perturbations_per_block = 3;
  const auto r =
      cc::finetune_with_perturbations(model, blocks, targets, oracle, opts);
  EXPECT_GT(r.augmented_samples, 0u);
  EXPECT_LT(r.mape_after, r.mape_before * 1.2);  // no catastrophic drift
}

TEST(Finetune, NoRoundsIsIdentity) {
  const auto ds = data();
  const auto blocks = ds.block_views();
  const auto targets = ds.label_views(cc::MicroArch::Haswell);
  cc::IthemalModel model(cc::MicroArch::Haswell, warm_config());
  const double before = model.predict(blocks[0]);

  const comet::sim::HardwareOracle oracle(cc::MicroArch::Haswell);
  cc::FinetuneOptions opts;
  opts.rounds = 0;
  const auto r =
      cc::finetune_with_perturbations(model, blocks, targets, oracle, opts);
  EXPECT_EQ(r.augmented_samples, 0u);
  EXPECT_DOUBLE_EQ(r.mape_before, r.mape_after);
  EXPECT_DOUBLE_EQ(model.predict(blocks[0]), before);
}
