// Tests for the uiCA-style bottleneck analysis: bound computation, binding
// classification on blocks engineered to stress each resource, stall
// attribution sanity, and report rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/bottleneck.h"
#include "x86/parser.h"

namespace cs = comet::sim;
namespace cx = comet::x86;
using comet::cost::MicroArch;

namespace {

// Eight independent uops spread across ALU (6/4 ports = 1.5 cyc) and load
// (2/2 ports = 1.0 cyc) pipes: no port reaches the 8/4 = 2.0-cycle
// front-end bound, so issue width binds.
cx::BasicBlock frontend_block() {
  return cx::parse_block(R"(
    add rax, 1
    add rbx, 1
    add rcx, 1
    add rdx, 1
    add rsi, 1
    add rdi, 1
    mov r8, qword ptr [rbp]
    mov r9, qword ptr [rsp + 16]
  )");
}

// Two stores: the store-data port (p4) takes 2 cycles per iteration while
// only 7 uops hit the 4-wide front-end.
cx::BasicBlock store_block() {
  return cx::parse_block(R"(
    mov qword ptr [rdi], rax
    mov qword ptr [rsi + 8], rbx
    add rcx, 1
  )");
}

// A loop-carried divide chain: rax feeds div which writes rax.
cx::BasicBlock div_chain_block() {
  return cx::parse_block(R"(
    add rax, rbx
    div rcx
  )");
}

}  // namespace

TEST(Bottleneck, EmptyBlockYieldsEmptyReport) {
  const auto r = cs::analyze_bottleneck({}, MicroArch::Haswell);
  EXPECT_EQ(r.throughput, 0.0);
  EXPECT_TRUE(r.stalls.empty());
}

TEST(Bottleneck, FrontEndBoundBlock) {
  const auto r = cs::analyze_bottleneck(frontend_block(), MicroArch::Haswell);
  // 6 ALU + 2 load-movs = 10 fused-domain uops over a 4-wide front-end.
  EXPECT_EQ(r.kind, cs::BottleneckKind::FrontEnd);
  EXPECT_NEAR(r.frontend_bound, 2.5, 1e-9);
  EXPECT_NEAR(r.throughput, 2.5, 0.3);
}

TEST(Bottleneck, StoreBlockBindsOnStoreDataPort) {
  const auto r = cs::analyze_bottleneck(store_block(), MicroArch::Haswell);
  EXPECT_EQ(r.kind, cs::BottleneckKind::Ports);
  EXPECT_EQ(r.busiest_port, 4);  // store-data port
  EXPECT_NEAR(r.port_bound, 2.0, 0.2);
}

TEST(Bottleneck, DivChainBindsOnDependency) {
  const auto r = cs::analyze_bottleneck(div_chain_block(), MicroArch::Haswell);
  EXPECT_EQ(r.kind, cs::BottleneckKind::Dependency);
  EXPECT_GT(r.dependency_bound, 10.0);  // div latency dominates
  // The div (index 1) must be flagged critical.
  EXPECT_NE(std::find(r.critical_instructions.begin(),
                      r.critical_instructions.end(), 1u),
            r.critical_instructions.end());
}

TEST(Bottleneck, ThroughputRespectsFrontEndBound) {
  for (const auto& block :
       {frontend_block(), store_block(), div_chain_block()}) {
    const auto r = cs::analyze_bottleneck(block, MicroArch::Skylake);
    EXPECT_GE(r.throughput + 0.15, r.frontend_bound) << block.to_string();
  }
}

TEST(Bottleneck, DependencyBoundNeverExceedsThroughputMuch) {
  // Removing port contention can only speed the block up.
  for (const auto& block :
       {frontend_block(), store_block(), div_chain_block()}) {
    const auto r = cs::analyze_bottleneck(block, MicroArch::Haswell);
    EXPECT_LE(r.dependency_bound, r.throughput + 0.15) << block.to_string();
  }
}

TEST(Bottleneck, StallFractionsSumToOne) {
  const auto r = cs::analyze_bottleneck(store_block(), MicroArch::Haswell);
  for (const auto& s : r.stalls) {
    EXPECT_NEAR(s.frontend_frac + s.dependency_frac + s.port_frac, 1.0, 1e-9)
        << s.text;
  }
}

TEST(Bottleneck, PortPressureIsNonNegativeAndPeaksAtBusiest) {
  const auto r = cs::analyze_bottleneck(store_block(), MicroArch::Haswell);
  double max_seen = 0;
  for (double p : r.port_pressure) {
    EXPECT_GE(p, 0.0);
    max_seen = std::max(max_seen, p);
  }
  EXPECT_DOUBLE_EQ(max_seen, r.port_bound);
}

TEST(Bottleneck, DeterministicAcrossCalls) {
  const auto a = cs::analyze_bottleneck(div_chain_block(), MicroArch::Haswell);
  const auto b = cs::analyze_bottleneck(div_chain_block(), MicroArch::Haswell);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.critical_instructions, b.critical_instructions);
}

TEST(Bottleneck, ReportRendersAllSections) {
  const auto r = cs::analyze_bottleneck(store_block(), MicroArch::Haswell);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("throughput:"), std::string::npos);
  EXPECT_NE(s.find("bottleneck:"), std::string::npos);
  EXPECT_NE(s.find("port pressure"), std::string::npos);
  EXPECT_NE(s.find("mov"), std::string::npos);
}

TEST(Bottleneck, KindNamesAreStable) {
  EXPECT_EQ(cs::bottleneck_kind_name(cs::BottleneckKind::FrontEnd),
            "front-end");
  EXPECT_EQ(cs::bottleneck_kind_name(cs::BottleneckKind::Ports), "ports");
  EXPECT_EQ(cs::bottleneck_kind_name(cs::BottleneckKind::Dependency),
            "dependency");
}

TEST(Bottleneck, SimTraceUopAccounting) {
  cs::SimTrace trace;
  cs::SimOptions opt;
  cs::simulate_throughput(store_block(), MicroArch::Haswell, opt, &trace);
  // mov [mem], reg = 3 uops each (compute + store-addr + store-data);
  // add = 1 uop.
  EXPECT_EQ(trace.uops_per_iteration, 3 + 3 + 1);
  EXPECT_GT(trace.window_iterations, 0);
}
