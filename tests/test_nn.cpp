// Tests for the neural-network substrate: matrix ops, Adam, LSTM forward
// shapes, and — critically — numerical gradient checks of the full BPTT.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/lstm.h"
#include "nn/mat.h"
#include "util/rng.h"

namespace cn = comet::nn;
using comet::util::Rng;

// ---------- Mat / affine ----------

TEST(Mat, ShapeAndAccess) {
  cn::Mat m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.at(1, 2) = 5.f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.f);
}

TEST(Mat, XavierInitBounded) {
  Rng rng(1);
  cn::Mat m(64, 64);
  m.init_xavier(rng);
  const double bound = std::sqrt(6.0 / 128.0);
  bool nonzero = false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound + 1e-6);
    nonzero |= m.data()[i] != 0.f;
  }
  EXPECT_TRUE(nonzero);
}

TEST(Affine, ForwardMatchesManual) {
  cn::Mat W(2, 3), b(2, 1);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -1]
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) W.at(r, c) = float(r * 3 + c + 1);
  b.data()[0] = 0.5f;
  b.data()[1] = -1.f;
  const float x[3] = {1.f, 0.f, -1.f};
  float y[2] = {0.f, 0.f};
  cn::affine(W, b, x, y);
  EXPECT_FLOAT_EQ(y[0], 1 - 3 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 4 - 6 - 1.f);
}

TEST(Affine, BackwardNumericalCheck) {
  Rng rng(2);
  cn::Mat W(3, 4), b(3, 1);
  W.init_xavier(rng);
  b.init_xavier(rng);
  std::vector<float> x(4);
  for (auto& v : x) v = float(rng.uniform(-1, 1));
  std::vector<float> dy(3);
  for (auto& v : dy) v = float(rng.uniform(-1, 1));

  std::vector<float> dx(4, 0.f);
  cn::affine_backward(W, b, x.data(), dy.data(), dx.data());

  // Loss L = dy . (Wx + b). Check dL/dW numerically.
  const auto loss = [&] {
    std::vector<float> y(3, 0.f);
    cn::affine(W, b, x.data(), y.data());
    float l = 0;
    for (int i = 0; i < 3; ++i) l += dy[i] * y[i];
    return l;
  };
  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const float save = W.at(r, c);
      W.at(r, c) = save + eps;
      const float lp = loss();
      W.at(r, c) = save - eps;
      const float lm = loss();
      W.at(r, c) = save;
      EXPECT_NEAR((lp - lm) / (2 * eps), W.grad_at(r, c), 2e-2);
    }
  }
  // dL/dx.
  for (std::size_t c = 0; c < 4; ++c) {
    const float save = x[c];
    x[c] = save + eps;
    const float lp = loss();
    x[c] = save - eps;
    const float lm = loss();
    x[c] = save;
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[c], 2e-2);
  }
}

// ---------- Adam ----------

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  cn::Mat w(4, 1);
  w.fill(0.f);
  cn::Adam::Config cfg;
  cfg.lr = 0.1;
  cn::Adam opt({&w}, cfg);
  for (int it = 0; it < 500; ++it) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.grad()[i] = 2.f * (w.data()[i] - 3.f);
    }
    opt.step();
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w.data()[i], 3.f, 0.05);
  }
}

TEST(Adam, StepZerosGradients) {
  cn::Mat w(2, 2);
  cn::Adam opt({&w});
  w.grad()[0] = 1.f;
  opt.step();
  EXPECT_FLOAT_EQ(w.grad()[0], 0.f);
}

TEST(Adam, GradientClippingBoundsUpdate) {
  cn::Mat w(1, 1);
  cn::Adam::Config cfg;
  cfg.lr = 1.0;
  cfg.clip = 0.001;
  cn::Adam opt({&w}, cfg);
  w.grad()[0] = 1e6f;
  const float before = w.data()[0];
  opt.step();
  // Clipped gradient keeps the Adam moment small; update stays ~lr-bounded.
  EXPECT_LT(std::abs(w.data()[0] - before), 1.5f);
}

// ---------- LSTM ----------

TEST(Lstm, ForwardShapes) {
  Rng rng(3);
  cn::LstmCell cell(5, 7, rng);
  EXPECT_EQ(cell.input_dim(), 5u);
  EXPECT_EQ(cell.hidden_dim(), 7u);
  std::vector<std::vector<float>> xs(4, std::vector<float>(5, 0.1f));
  const auto caches = cell.run(xs);
  ASSERT_EQ(caches.size(), 4u);
  EXPECT_EQ(caches.back().h.size(), 7u);
  EXPECT_EQ(caches.back().c.size(), 7u);
}

TEST(Lstm, EmptySequenceYieldsNoCaches) {
  Rng rng(4);
  cn::LstmCell cell(3, 4, rng);
  EXPECT_TRUE(cell.run({}).empty());
}

TEST(Lstm, HiddenStateIsBounded) {
  // |h| <= 1 elementwise (tanh * sigmoid).
  Rng rng(5);
  cn::LstmCell cell(4, 6, rng);
  std::vector<std::vector<float>> xs(20, std::vector<float>(4, 3.f));
  const auto caches = cell.run(xs);
  for (float v : caches.back().h) {
    EXPECT_LE(std::abs(v), 1.0f);
  }
}

TEST(Lstm, DeterministicForward) {
  Rng rng(6);
  cn::LstmCell cell(3, 5, rng);
  std::vector<std::vector<float>> xs(3, std::vector<float>(3, 0.5f));
  const auto a = cell.run(xs);
  const auto b = cell.run(xs);
  for (std::size_t i = 0; i < a.back().h.size(); ++i) {
    EXPECT_FLOAT_EQ(a.back().h[i], b.back().h[i]);
  }
}

TEST(Lstm, BpttNumericalGradientCheck) {
  // Full BPTT gradient check on a tiny LSTM: loss = sum(h_final).
  Rng rng(7);
  cn::LstmCell cell(3, 4, rng);
  std::vector<std::vector<float>> xs;
  for (int t = 0; t < 3; ++t) {
    std::vector<float> x(3);
    for (auto& v : x) v = float(rng.uniform(-1, 1));
    xs.push_back(x);
  }
  const auto loss = [&] {
    const auto caches = cell.run(xs);
    float l = 0;
    for (float v : caches.back().h) l += v;
    return l;
  };

  const auto caches = cell.run(xs);
  const std::vector<float> dh(4, 1.f);
  const auto dxs = cell.backward_sequence(caches, dh);

  // Check parameter gradients numerically (sampled entries).
  const float eps = 1e-3f;
  for (cn::Mat* p : cell.params()) {
    for (std::size_t i = 0; i < p->size(); i += std::max<std::size_t>(1, p->size() / 17)) {
      const float analytic = p->grad()[i];
      const float save = p->data()[i];
      p->data()[i] = save + eps;
      const float lp = loss();
      p->data()[i] = save - eps;
      const float lm = loss();
      p->data()[i] = save;
      EXPECT_NEAR((lp - lm) / (2 * eps), analytic, 5e-2)
          << "param entry " << i;
    }
    p->zero_grad();
  }

  // Check input gradients numerically.
  for (std::size_t t = 0; t < xs.size(); ++t) {
    for (std::size_t d = 0; d < 3; ++d) {
      const float save = xs[t][d];
      xs[t][d] = save + eps;
      const float lp = loss();
      xs[t][d] = save - eps;
      const float lm = loss();
      xs[t][d] = save;
      EXPECT_NEAR((lp - lm) / (2 * eps), dxs[t][d], 5e-2);
    }
  }
}

TEST(Lstm, CanLearnToSumInputs) {
  // Train a small LSTM + fixed readout to approximate the sum of a short
  // sequence of scalars — end-to-end learning sanity check.
  Rng rng(8);
  cn::LstmCell cell(1, 8, rng);
  cn::Mat w(1, 8), b(1, 1);
  w.init_xavier(rng);
  std::vector<cn::Mat*> params = cell.params();
  params.push_back(&w);
  params.push_back(&b);
  cn::Adam::Config cfg;
  cfg.lr = 1e-2;
  cn::Adam opt(params, cfg);

  double final_err = 0;
  for (int it = 0; it < 1500; ++it) {
    std::vector<std::vector<float>> xs;
    float target = 0;
    const int len = 2 + int(rng.index(3));
    for (int t = 0; t < len; ++t) {
      const float v = float(rng.uniform(0, 0.5));
      xs.push_back({v});
      target += v;
    }
    const auto caches = cell.run(xs);
    float y = b.data()[0];
    for (int i = 0; i < 8; ++i) y += w.data()[i] * caches.back().h[i];
    const float err = y - target;
    // Head gradients.
    for (int i = 0; i < 8; ++i) w.grad()[i] += 2 * err * caches.back().h[i];
    b.grad()[0] += 2 * err;
    std::vector<float> dh(8);
    for (int i = 0; i < 8; ++i) dh[i] = 2 * err * w.data()[i];
    cell.backward_sequence(caches, dh);
    opt.step();
    if (it >= 1400) final_err += std::abs(err);
  }
  EXPECT_LT(final_err / 100.0, 0.12);
}
