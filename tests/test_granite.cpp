// Tests for the Granite-style GNN cost model: prediction sanity, relation
// construction, training behaviour, serialization, and its fit behind the
// model-agnostic CostModel interface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "bhive/dataset.h"
#include "cost/granite_model.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace cc = comet::cost;
namespace cb = comet::bhive;
namespace cx = comet::x86;

namespace {

cx::BasicBlock paper_block() {
  return cx::parse_block(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )");
}

cb::Dataset small_dataset() {
  cb::DatasetOptions opts;
  opts.size = 250;
  opts.seed = 77;
  return cb::generate_dataset(opts);
}

}  // namespace

TEST(Granite, PredictsPositiveThroughput) {
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_GT(model.predict(paper_block()), 0.0);
}

TEST(Granite, EmptyBlockPredictsZero) {
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_EQ(model.predict(cx::BasicBlock{}), 0.0);
}

TEST(Granite, DeterministicPrediction) {
  cc::GraniteModel model(cc::MicroArch::Haswell);
  const auto block = paper_block();
  EXPECT_DOUBLE_EQ(model.predict(block), model.predict(block));
}

TEST(Granite, UarchInstancesDiffer) {
  // Per-microarchitecture instances start from different seeds, as in the
  // paper (one Ithemal/Granite per microarchitecture).
  cc::GraniteModel hsw(cc::MicroArch::Haswell);
  cc::GraniteModel skl(cc::MicroArch::Skylake);
  EXPECT_NE(hsw.predict(paper_block()), skl.predict(paper_block()));
  EXPECT_EQ(hsw.name(), "granite-HSW");
  EXPECT_EQ(skl.name(), "granite-SKL");
}

TEST(Granite, PredictionDependsOnDependencyStructure) {
  // Same multiset of instructions, different dependency graph. A graph
  // model (even untrained) must read the edge structure: the two blocks
  // produce different node messages.
  const auto chained = cx::parse_block("add rax, rbx\nadd rcx, rax");
  const auto parallel = cx::parse_block("add rax, rbx\nadd rcx, rdx");
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_NE(model.predict(chained), model.predict(parallel));
}

TEST(Granite, TrainingReducesError) {
  const auto data = small_dataset();
  cc::GraniteConfig cfg;
  cfg.epochs = 3;
  cc::GraniteModel model(cc::MicroArch::Haswell, cfg);

  const auto blocks = data.block_views();
  const auto targets = data.label_views(cc::MicroArch::Haswell);

  // MAPE before training (random weights).
  double before = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    before += std::abs(model.predict(blocks[i]) - targets[i]) / targets[i];
  }
  before /= double(blocks.size());

  const double after = model.train(blocks, targets) / 100.0;
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.35);  // fits the small training set reasonably
}

TEST(Granite, SaveLoadRoundTrip) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   "comet_granite_roundtrip.bin";
  cc::GraniteModel a(cc::MicroArch::Haswell);
  const auto data = small_dataset();
  const auto blocks = data.block_views();
  const auto targets = data.label_views(cc::MicroArch::Haswell);
  // A few steps so weights differ from initialization.
  for (std::size_t i = 0; i < 10; ++i) a.train_step(blocks[i], targets[i]);
  a.save(tmp);

  cc::GraniteModel b(cc::MicroArch::Haswell);
  ASSERT_TRUE(b.load(tmp));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(blocks[i]), b.predict(blocks[i]));
  }
  std::filesystem::remove(tmp);
}

TEST(Granite, LoadRejectsWrongMagic) {
  const auto tmp =
      std::filesystem::temp_directory_path() / "comet_granite_bad.bin";
  std::FILE* fp = std::fopen(tmp.string().c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  const std::uint32_t bogus = 0xDEADBEEF;
  std::fwrite(&bogus, sizeof(bogus), 1, fp);
  std::fclose(fp);
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_FALSE(model.load(tmp));
  std::filesystem::remove(tmp);
}

TEST(Granite, LoadMissingFileReturnsFalse) {
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_FALSE(model.load("/nonexistent/path/weights.bin"));
}

// Regression: granite's old load() streamed weights straight into the live
// matrices, so a truncated cache file left the model half-overwritten and
// returned false as if nothing happened. Under the checkpoint contract a
// truncated file behind a valid magic throws, and the staged commit keeps
// the live weights bit-identical.
TEST(Granite, TruncatedCheckpointThrowsAndPreservesWeights) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   "comet_granite_truncated.bin";
  cc::GraniteModel trained(cc::MicroArch::Haswell);
  const auto block = paper_block();
  trained.train_step(block, 2.0);
  trained.save(tmp);
  const auto full_size = std::filesystem::file_size(tmp);
  std::filesystem::resize_file(tmp, full_size / 2);

  cc::GraniteModel victim(cc::MicroArch::Haswell);
  victim.train_step(block, 5.0);
  const double before = victim.predict(block);
  EXPECT_THROW(victim.load(tmp), comet::util::ContractViolation);
  EXPECT_DOUBLE_EQ(victim.predict(block), before);
  std::filesystem::remove(tmp);
}

// Appending bytes to a valid granite checkpoint trips the total-size gate.
TEST(Granite, OversizedCheckpointThrows) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   "comet_granite_oversized.bin";
  cc::GraniteModel model(cc::MicroArch::Haswell);
  model.save(tmp);
  std::FILE* fp = std::fopen(tmp.string().c_str(), "ab");
  ASSERT_NE(fp, nullptr);
  const std::uint64_t extra = 0;
  ASSERT_EQ(std::fwrite(&extra, 1, sizeof(extra), fp), sizeof(extra));
  std::fclose(fp);
  EXPECT_THROW(model.load(tmp), comet::util::ContractViolation);
  std::filesystem::remove(tmp);
}

TEST(Granite, TrainOrLoadUsesCache) {
  const auto tmp =
      std::filesystem::temp_directory_path() / "comet_granite_cache.bin";
  std::filesystem::remove(tmp);
  const auto data = small_dataset();
  const auto blocks = data.block_views();
  const auto targets = data.label_views(cc::MicroArch::Haswell);

  cc::GraniteConfig cfg;
  cfg.epochs = 1;
  cc::GraniteModel a(cc::MicroArch::Haswell, cfg);
  const double mape = a.train_or_load(tmp, blocks, targets);
  EXPECT_GT(mape, 0.0);  // actually trained

  cc::GraniteModel b(cc::MicroArch::Haswell, cfg);
  EXPECT_EQ(b.train_or_load(tmp, blocks, targets), 0.0);  // loaded
  EXPECT_DOUBLE_EQ(a.predict(blocks[0]), b.predict(blocks[0]));
  std::filesystem::remove(tmp);
}

TEST(Granite, TrainSizeMismatchThrows) {
  cc::GraniteModel model(cc::MicroArch::Haswell);
  EXPECT_THROW(model.train({paper_block()}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Granite, BehindCostModelInterface) {
  // COMET consumes models through the CostModel base only.
  cc::GraniteModel model(cc::MicroArch::Skylake);
  const cc::CostModel& m = model;
  EXPECT_GT(m.predict(paper_block()), 0.0);
  EXPECT_FALSE(m.name().empty());
}
