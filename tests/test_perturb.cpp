// Tests for the perturbation algorithm Γ: validity of outputs, feature
// preservation guarantees, diversity, deletion semantics, ablation modes,
// and perturbation-space size estimation.
#include <gtest/gtest.h>

#include <set>

#include "graph/features.h"
#include "perturb/perturber.h"
#include "x86/parser.h"

namespace cg = comet::graph;
namespace cp = comet::perturb;
namespace cx = comet::x86;
using comet::util::Rng;

namespace {

cx::BasicBlock bb(const char* text) { return cx::parse_block(text); }

const char* kMotivating = R"(
  add rcx, rax
  mov rdx, rcx
  pop rbx
)";

cg::Feature raw01() {
  return cg::Feature(cg::DepFeature{0, 1, cg::DepKind::RAW});
}

}  // namespace

TEST(Perturber, SamplesAreValidBlocks) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    EXPECT_TRUE(cx::is_valid(s.block)) << s.block.to_string();
    EXPECT_EQ(s.block.size(), s.orig_index.size());
  }
}

TEST(Perturber, OrigIndexIsStrictlyIncreasing) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    for (std::size_t k = 1; k < s.orig_index.size(); ++k) {
      EXPECT_LT(s.orig_index[k - 1], s.orig_index[k]);
    }
  }
}

TEST(Perturber, ProducesDiversePerturbations) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(p.sample(cg::FeatureSet{}, rng).block.to_string());
  }
  // The space is huge; 300 draws should hit many distinct blocks.
  EXPECT_GT(seen.size(), 50u);
}

TEST(Perturber, PreservesInstructionFeature) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(4);
  cg::FeatureSet fs;
  fs.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::ADD}));
  for (int i = 0; i < 300; ++i) {
    const auto s = p.sample(fs, rng);
    const auto pos = s.position_of(0);
    ASSERT_NE(pos, cp::PerturbedBlock::npos);
    EXPECT_EQ(s.block.instructions[pos].opcode, cx::Opcode::ADD);
    EXPECT_TRUE(p.contains(s, fs));
  }
}

TEST(Perturber, PreservesNumInstructions) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(5);
  cg::FeatureSet fs;
  fs.insert(cg::Feature(cg::NumInstsFeature{3}));
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(p.sample(fs, rng).block.size(), 3u);
  }
}

TEST(Perturber, PreservesRawDependency) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(6);
  cg::FeatureSet fs;
  fs.insert(raw01());
  for (int i = 0; i < 300; ++i) {
    const auto s = p.sample(fs, rng);
    EXPECT_TRUE(p.contains(s, fs)) << s.block.to_string();
  }
}

TEST(Perturber, PreservedDepPinsEndpointOpcodes) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(7);
  cg::FeatureSet fs;
  fs.insert(raw01());
  for (int i = 0; i < 200; ++i) {
    const auto s = p.sample(fs, rng);
    const auto p0 = s.position_of(0);
    const auto p1 = s.position_of(1);
    ASSERT_NE(p0, cp::PerturbedBlock::npos);
    ASSERT_NE(p1, cp::PerturbedBlock::npos);
    EXPECT_EQ(s.block.instructions[p0].opcode, cx::Opcode::ADD);
    EXPECT_EQ(s.block.instructions[p1].opcode, cx::Opcode::MOV);
  }
}

TEST(Perturber, UnpreservedDependencyIsSometimesBroken) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(8);
  int broken = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    cg::FeatureSet fs;
    fs.insert(raw01());
    broken += !p.contains(s, fs);
  }
  EXPECT_GT(broken, n / 10);  // dependency must break regularly
  EXPECT_LT(broken, n);       // but not always (retention happens)
}

TEST(Perturber, DeletionOccursWithoutEtaPreservation) {
  cp::Perturber p(bb(kMotivating));
  Rng rng(9);
  int deletions = 0;
  for (int i = 0; i < 500; ++i) {
    deletions += p.sample(cg::FeatureSet{}, rng).block.size() < 3;
  }
  EXPECT_GT(deletions, 50);
}

TEST(Perturber, LeaIsNeverReplaced) {
  // lea has no valid replacement opcode (Appendix D): its vertex perturbation
  // always falls back to retention (though it may still be deleted).
  cp::Perturber p(bb(R"(
    lea rdx, [rax + 1]
    mov rcx, rdx
  )"));
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    const auto pos = s.position_of(0);
    if (pos == cp::PerturbedBlock::npos) continue;  // deleted: allowed
    EXPECT_EQ(s.block.instructions[pos].opcode, cx::Opcode::LEA);
  }
}

TEST(Perturber, ImplicitDivDependencyCannotBeBrokenOnConsumerSide) {
  // div reads rax implicitly; the producer (mov rax, ...) write occurrence
  // is renameable though, so the dep can still break via the producer.
  cp::Perturber p(bb(R"(
    mov rax, 5
    div rcx
  )"));
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    EXPECT_TRUE(cx::is_valid(s.block));
    // div must never acquire explicit rax operands out of nowhere.
    for (const auto& inst : s.block.instructions) {
      EXPECT_LE(inst.operands.size(), 2u);
    }
  }
}

TEST(Perturber, ShiftCountRenamingRevertsToValid) {
  // The cl count of a shift cannot be renamed (fixed family); breaking the
  // rcx dependency must not produce an invalid instruction.
  cp::Perturber p(bb(R"(
    mov rcx, rax
    shl rdx, cl
  )"));
  Rng rng(12);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(cx::is_valid(p.sample(cg::FeatureSet{}, rng).block));
  }
}

TEST(Perturber, MemoryDependencyBreaksViaDisplacement) {
  cp::Perturber p(bb(R"(
    mov qword ptr [rdi + 8], rax
    mov rcx, qword ptr [rdi + 8]
  )"));
  Rng rng(13);
  int mem_dep_broken = 0;
  for (int i = 0; i < 300; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    if (s.block.size() < 2) continue;
    const auto g = cg::DepGraph::build(s.block);
    bool has_mem_raw = false;
    for (const auto& e : g.edges()) {
      has_mem_raw |= e.resource == cg::DepResource::Memory &&
                     e.kind == cg::DepKind::RAW;
    }
    mem_dep_broken += !has_mem_raw;
  }
  EXPECT_GT(mem_dep_broken, 30);
}

TEST(Perturber, ContainsChecksAllFeatureTypes) {
  cp::Perturber p(bb(kMotivating));
  cp::PerturbedBlock identity{p.block(), {0, 1, 2}};
  cg::FeatureSet fs;
  fs.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::ADD}));
  fs.insert(raw01());
  fs.insert(cg::Feature(cg::NumInstsFeature{3}));
  EXPECT_TRUE(p.contains(identity, fs));

  cg::FeatureSet wrong;
  wrong.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::SUB}));
  EXPECT_FALSE(p.contains(identity, wrong));

  cg::FeatureSet wrong_eta;
  wrong_eta.insert(cg::Feature(cg::NumInstsFeature{4}));
  EXPECT_FALSE(p.contains(identity, wrong_eta));
}

TEST(Perturber, WholeInstructionReplacementStaysValid) {
  cp::PerturbConfig cfg;
  cfg.whole_instruction_replacement = true;
  cp::Perturber p(bb(kMotivating), {}, cfg);
  Rng rng(14);
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    EXPECT_TRUE(cx::is_valid(s.block)) << s.block.to_string();
    seen.insert(s.block.to_string());
  }
  EXPECT_GT(seen.size(), 50u);
}

TEST(Perturber, ExplicitRetentionProbabilityOneFreezesDeps) {
  cp::PerturbConfig cfg;
  cfg.p_explicit_dep_retain = 1.0;
  cp::Perturber p(bb(kMotivating), {}, cfg);
  Rng rng(15);
  cg::FeatureSet fs;
  fs.insert(raw01());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(p.contains(p.sample(cg::FeatureSet{}, rng), fs));
  }
}

TEST(Perturber, RetentionProbabilityOneIsIdentityForOpcodes) {
  cp::PerturbConfig cfg;
  cfg.p_inst_retain = 1.0;
  cfg.p_dep_retain = 1.0;
  cfg.p_explicit_dep_retain = 0.0;
  cp::Perturber p(bb(kMotivating), {}, cfg);
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    const auto s = p.sample(cg::FeatureSet{}, rng);
    EXPECT_EQ(s.block, p.block());
  }
}

// ---------- perturbation space size (Appendix F) ----------

TEST(SpaceSize, Listing4MagnitudeIsAstronomical) {
  // Paper: |Π̂(∅)| ~ 1.94e38 for the 7-instruction AVX block. Our estimate
  // should land within a few orders of magnitude, and definitely >> 1e20.
  cp::Perturber p(bb(R"(
    vdivss xmm0, xmm0, xmm6
    vmulss xmm7, xmm0, xmm0
    vxorps xmm0, xmm0, xmm5
    vaddss xmm7, xmm7, xmm3
    vmulss xmm6, xmm6, xmm7
    vdivss xmm6, xmm3, xmm6
    vmulss xmm0, xmm6, xmm0
  )"));
  const double lg = p.log10_space_size(cg::FeatureSet{});
  EXPECT_GT(lg, 25.0);
  EXPECT_LT(lg, 55.0);
}

TEST(SpaceSize, ShrinksWhenFeaturesPreserved) {
  cp::Perturber p(bb(kMotivating));
  const double all = p.log10_space_size(cg::FeatureSet{});
  cg::FeatureSet fs;
  fs.insert(cg::Feature(cg::InstFeature{0, cx::Opcode::ADD}));
  const double constrained = p.log10_space_size(fs);
  EXPECT_LT(constrained, all);

  cg::FeatureSet fs2 = fs;
  fs2.insert(raw01());
  EXPECT_LE(p.log10_space_size(fs2), constrained);
}

TEST(SpaceSize, MonotonicityProperty) {
  // Π is monotonically decreasing in F (paper Theorem 1): adding features
  // never enlarges the space.
  cp::Perturber p(bb(R"(
    shl eax, 3
    imul rax, r15
    xor edx, edx
    add rax, 7
  )"));
  const auto all_feats = cg::extract_features(p.block());
  cg::FeatureSet acc;
  double prev = p.log10_space_size(acc);
  for (const auto& f : all_feats.items()) {
    acc.insert(f);
    const double cur = p.log10_space_size(acc);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}
