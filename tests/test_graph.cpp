// Unit tests for the dependency multigraph and block feature extraction.
#include <gtest/gtest.h>

#include "graph/depgraph.h"
#include "graph/features.h"
#include "x86/parser.h"

namespace cg = comet::graph;
namespace cx = comet::x86;

namespace {
cx::BasicBlock bb(const char* text) { return cx::parse_block(text); }
}  // namespace

// ---------- dependency detection ----------

TEST(DepGraph, MotivatingExampleRaw) {
  // Paper Listing 1(a): RAW between instructions 1 and 2 via rcx.
  const auto g = cg::DepGraph::build(bb(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )"));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::RAW));
  EXPECT_FALSE(g.has_edge(0, 2, cg::DepKind::RAW));
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST(DepGraph, WarDependency) {
  // Paper case study 2: WAR between (1) mov ecx, edx and (2) xor edx, edx.
  const auto g = cg::DepGraph::build(bb(R"(
    mov ecx, edx
    xor edx, edx
  )"));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::WAR));
}

TEST(DepGraph, WawDependency) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov rax, 1
    mov rax, 2
  )"));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::WAW));
}

TEST(DepGraph, CaseStudy2RawViaRax) {
  // RAW between instructions 3 (lea writes rax) and 6 (imul reads rax).
  const auto g = cg::DepGraph::build(bb(R"(
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
  )"));
  // div (index 3) reads rax implicitly -> RAW from lea (index 2).
  EXPECT_TRUE(g.has_edge(2, 3, cg::DepKind::RAW));
  // imul (index 5) reads rax written by div (index 3) under nearest-writer
  // chaining.
  EXPECT_TRUE(g.has_edge(3, 5, cg::DepKind::RAW));
}

TEST(DepGraph, CaseStudy2FullChainWithoutNearestOnly) {
  cg::DepGraphOptions opt;
  opt.nearest_only = false;
  const auto g = cg::DepGraph::build(bb(R"(
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
  )"), opt);
  // With all conflicting pairs linked, lea -> imul RAW (paper's 3 -> 6)
  // appears directly.
  EXPECT_TRUE(g.has_edge(2, 5, cg::DepKind::RAW));
}

TEST(DepGraph, SubRegisterAliasingDetected) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov eax, 5
    mov rcx, rax
  )"));
  // 32-bit write zero-extends; reading rax depends on writing eax.
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::RAW));
}

TEST(DepGraph, AlAhDoNotConflict) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov al, 1
    mov ah, 2
  )"));
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.kind, cg::DepKind::WAW) << g.to_string();
  }
}

TEST(DepGraph, IndependentInstructionsNoEdges) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov rax, 1
    mov rcx, 2
    mov rsi, 3
  )"));
  EXPECT_TRUE(g.edges().empty());
}

TEST(DepGraph, MemoryRawSameAddress) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov qword ptr [rdi + 8], rax
    mov rcx, qword ptr [rdi + 8]
  )"));
  bool found = false;
  for (const auto& e : g.edges()) {
    if (e.resource == cg::DepResource::Memory && e.kind == cg::DepKind::RAW) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DepGraph, MemoryDifferentAddressesNoDep) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov qword ptr [rdi + 8], rax
    mov rcx, qword ptr [rdi + 16]
  )"));
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.resource, cg::DepResource::Memory);
  }
}

TEST(DepGraph, ConservativeMemoryAliasesEverything) {
  cg::DepGraphOptions opt;
  opt.conservative_memory = true;
  const auto g = cg::DepGraph::build(bb(R"(
    mov qword ptr [rdi + 8], rax
    mov rcx, qword ptr [rsi + 16]
  )"), opt);
  bool found = false;
  for (const auto& e : g.edges()) {
    found |= e.resource == cg::DepResource::Memory;
  }
  EXPECT_TRUE(found);
}

TEST(DepGraph, FlagDepsExcludedByDefault) {
  const auto g = cg::DepGraph::build(bb(R"(
    add rax, rcx
    cmove rdx, rsi
  )"));
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.resource, cg::DepResource::Flags);
  }
}

TEST(DepGraph, FlagDepsIncludedWhenRequested) {
  cg::DepGraphOptions opt;
  opt.include_flag_deps = true;
  const auto g = cg::DepGraph::build(bb(R"(
    add rax, rcx
    cmove rdx, rsi
  )"), opt);
  bool found = false;
  for (const auto& e : g.edges()) {
    found |= e.resource == cg::DepResource::Flags &&
             e.kind == cg::DepKind::RAW;
  }
  EXPECT_TRUE(found);
}

TEST(DepGraph, PushPopChainViaRsp) {
  const auto g = cg::DepGraph::build(bb(R"(
    push rax
    pop rbx
  )"));
  // Both touch rsp (read+write) -> RAW (and WAR/WAW) on rsp.
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::RAW));
}

TEST(DepGraph, LeaAddressRegsAreReads) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov rcx, 1
    lea rdx, [rcx + 8]
  )"));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::RAW));
}

TEST(DepGraph, MultipleKindsBetweenSamePair) {
  // add rax, rcx ; add rax, rcx : RAW (rax), WAR (rax? no...), WAW (rax).
  const auto g = cg::DepGraph::build(bb(R"(
    add rax, rcx
    add rax, rcx
  )"));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::RAW));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::WAW));
  EXPECT_TRUE(g.has_edge(0, 1, cg::DepKind::WAR));
}

TEST(DepGraph, NearestOnlyLinksClosestWriter) {
  const auto g = cg::DepGraph::build(bb(R"(
    mov rax, 1
    mov rax, 2
    mov rcx, rax
  )"));
  EXPECT_TRUE(g.has_edge(1, 2, cg::DepKind::RAW));
  EXPECT_FALSE(g.has_edge(0, 2, cg::DepKind::RAW));
}

TEST(DepGraph, EdgesOfVertex) {
  const auto g = cg::DepGraph::build(bb(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )"));
  EXPECT_FALSE(g.edges_of(0).empty());
  EXPECT_TRUE(g.edges_of(2).empty());
}

TEST(DepGraph, EmptyBlock) {
  const auto g = cg::DepGraph::build(cx::BasicBlock{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_TRUE(g.edges().empty());
}

// ---------- features ----------

TEST(Features, ExtractMotivatingExample) {
  const auto block = bb(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )");
  const auto feats = cg::extract_features(block);
  // 3 instruction features + >=1 dep feature + eta.
  EXPECT_GE(feats.size(), 5u);
  EXPECT_TRUE(feats.contains(
      cg::Feature(cg::InstFeature{0, cx::Opcode::ADD})));
  EXPECT_TRUE(feats.contains(
      cg::Feature(cg::DepFeature{0, 1, cg::DepKind::RAW})));
  EXPECT_TRUE(feats.contains(cg::Feature(cg::NumInstsFeature{3})));
}

TEST(Features, SetOperations) {
  cg::FeatureSet s;
  const cg::Feature f1(cg::InstFeature{0, cx::Opcode::ADD});
  const cg::Feature f2(cg::NumInstsFeature{3});
  s.insert(f1);
  s.insert(f1);  // duplicate
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(f1));
  EXPECT_FALSE(s.contains(f2));

  const auto s2 = s.with(f2);
  EXPECT_EQ(s2.size(), 2u);
  EXPECT_TRUE(s.is_subset_of(s2));
  EXPECT_FALSE(s2.is_subset_of(s));
  EXPECT_TRUE(cg::FeatureSet{}.is_subset_of(s));
}

TEST(Features, ToStringStable) {
  const cg::Feature fi(cg::InstFeature{1, cx::Opcode::MOV});
  EXPECT_EQ(fi.to_string(), "inst2(mov)");
  const cg::Feature fd(cg::DepFeature{0, 1, cg::DepKind::RAW});
  EXPECT_EQ(fd.to_string(), "RAW(1->2)");
  const cg::Feature fn(cg::NumInstsFeature{5});
  EXPECT_EQ(fn.to_string(), "eta(5)");
}

TEST(Features, TypesClassified) {
  EXPECT_EQ(cg::Feature(cg::InstFeature{}).type(), cg::FeatureType::Inst);
  EXPECT_EQ(cg::Feature(cg::DepFeature{}).type(), cg::FeatureType::Dep);
  EXPECT_EQ(cg::Feature(cg::NumInstsFeature{}).type(),
            cg::FeatureType::NumInsts);
}

TEST(Features, DedupesParallelEdgesOfSameKind) {
  // Two RAW register hazards between the same pair collapse to one feature.
  const auto block = bb(R"(
    add rcx, rax
    add rax, rcx
  )");
  const auto feats = cg::extract_features(block);
  std::size_t raw01 = 0;
  for (const auto& f : feats.items()) {
    if (f.is_dep() && f.as_dep().from == 0 && f.as_dep().to == 1 &&
        f.as_dep().kind == cg::DepKind::RAW) {
      ++raw01;
    }
  }
  EXPECT_EQ(raw01, 1u);
}
