// Tests for networked explanation serving (serve::RemoteShardClient /
// RemoteShardServer over src/net/):
//
//   * bit-parity — predictions and whole explanations served over a clean
//     SimTransport are bit-identical to in-process serving, including the
//     merged QueryStats ledger and the serve_* metrics counters;
//   * the deterministic fault matrix — request/response drop, truncation,
//     and delay each resolve to their documented typed outcome (timeout
//     without a fallback, failover with one), with the failure-mode
//     counters to match;
//   * reconnect — a dead or garbage-spewing connection is re-dialed and
//     the request resent; duplicated responses are discarded as stale;
//   * cancellation — cancel() fails an in-flight request with
//     CancelledError and never falls over to the local fallback;
//   * fault recovery — RemoteShardClient::ping() round-trips the
//     kHealthCheck frame and fails closed when the server dies; a seeded
//     ShardHealthMonitor sweep takes a shard host through permanent death
//     (circuit opens after `failure_threshold` failed wire pings, the
//     pool re-shards the hash space over the survivors and sweeps their
//     memos), recovery, and half-open re-admission — with every
//     prediction and whole explanation served before, during, and after
//     the outage bit-identical to in-process serving;
//   * protocol errors — a bad block text fails the request (kError /
//     kParseError) but not the session; garbage bytes end the session
//     after a best-effort error report; and every scenario above ends in
//     a clean server drain (stop() returns, counters balance).
//
// Everything here runs over net::SimTransport, so each scenario is exactly
// reproducible: the fault schedule, not thread timing, decides what fails.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bhive/dataset.h"
#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "net/sim_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/clock.h"
#include "serve/fallback_chain.h"
#include "serve/health.h"
#include "serve/isa_servers.h"
#include "serve/remote_shard.h"
#include "serve/sharded_cost_model.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace ck = comet::cost;
namespace cn = comet::net;
namespace co = comet::obs;
namespace cs = comet::serve;
namespace cx = comet::x86;

namespace {

constexpr std::uint64_t kMustSucceedNs = 20'000'000'000;  // 20 s
// Deadline for requests whose response was injected away. The awaited
// bytes can never arrive, so expiry is deterministic; the duration only
// bounds how long the test waits for it.
constexpr std::uint64_t kFaultTimeoutNs = 400'000'000;  // 400 ms

std::vector<cx::BasicBlock> test_blocks(std::size_t n) {
  cb::DatasetOptions opt;
  opt.size = n;
  opt.seed = 77;
  const cb::Dataset dataset = cb::generate_dataset(opt);
  std::vector<cx::BasicBlock> blocks;
  for (const auto& labeled : dataset.blocks()) blocks.push_back(labeled.block);
  return blocks;
}

cc::CometOptions light_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 150;
  opt.max_pulls_per_level = 40;
  opt.batch_size = 8;
  opt.final_precision_samples = 60;
  opt.seed = seed;
  return opt;
}

void expect_identical(const cc::Explanation& a, const cc::Explanation& b) {
  EXPECT_EQ(a.features, b.features)
      << a.features.to_string() << " vs " << b.features.to_string();
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.met_threshold, b.met_threshold);
  EXPECT_EQ(a.model_queries, b.model_queries);
}

std::shared_ptr<const ck::CrudeModel> crude() {
  return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
}

// A test harness owning one RemoteShardServer; its connector() dials a
// fresh sim pair per call (each with the next entry of `plans`, reused
// past the end as clean) and starts a server session on the far end —
// which is exactly what reconnecting needs.
struct ServerRig {
  explicit ServerRig(std::shared_ptr<const ck::CostModel> model,
                     std::vector<std::pair<cn::FaultSchedule,
                                           cn::FaultSchedule>> plans = {})
      : server(std::make_shared<cs::RemoteShardServer>(std::move(model))),
        plans_(std::move(plans)),
        dials_(std::make_shared<std::size_t>(0)) {}

  cs::RemoteShardClient::Connector connector() {
    // Captures keep the server (and dial counter) alive as long as the
    // client holds the connector.
    return [server = server, plans = plans_, dials = dials_] {
      const std::size_t dial = (*dials)++;
      auto [request_dir, response_dir] =
          dial < plans.size() ? plans[dial]
                              : std::pair<cn::FaultSchedule,
                                          cn::FaultSchedule>{};
      auto [client_end, server_end] = cn::make_sim_pair(
          std::move(request_dir), std::move(response_dir));
      server->start(std::move(server_end));
      return std::move(client_end);
    };
  }

  std::size_t dials() const { return *dials_; }

  std::shared_ptr<cs::RemoteShardServer> server;

 private:
  std::vector<std::pair<cn::FaultSchedule, cn::FaultSchedule>> plans_;
  std::shared_ptr<std::size_t> dials_;
};

// A model whose queries block until the test opens the gate (to pin a
// server session mid-request for the cancellation test).
class GateModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    wait_open();
    return 1.0;
  }
  std::string name() const override { return "gate"; }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void await_entered() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

 private:
  void wait_open() const {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool open_ = false;
};

}  // namespace

// ---------------- bit-parity over a clean transport ----------------

TEST(RemoteShard, PredictionsBitIdenticalToLocalModelAndLedgersMatch) {
  const auto model = crude();
  ServerRig rig(model);
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(40);
  std::vector<double> expected(blocks.size());
  model->predict_batch(std::span<const cx::BasicBlock>(blocks),
                       std::span<double>(expected));

  std::vector<double> out(blocks.size());
  client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                       std::span<double>(out));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(expected[i]))
        << "block " << i;
  }
  EXPECT_DOUBLE_EQ(client.predict(blocks[0]), expected[0]);
  EXPECT_EQ(client.name(), "remote-shard");

  // One connection, two round-trips, no failures of any kind.
  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 2u);
  EXPECT_EQ(counters.timeouts, 0u);
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(counters.failovers, 0u);
  EXPECT_EQ(counters.wire_errors, 0u);
  EXPECT_EQ(counters.stale_frames, 0u);
  EXPECT_EQ(rig.dials(), 1u);

  // The server ledger round-trips over kStatsRequest and shows the memo-
  // free contract: everything requested was evaluated, one batch call per
  // round-trip.
  const ck::QueryStats stats = client.server_stats();
  EXPECT_EQ(stats.requested, blocks.size() + 1);
  EXPECT_EQ(stats.evaluated, blocks.size() + 1);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.batch_calls, 2u);
  EXPECT_EQ(stats, rig.server->stats());

  const auto server_counters = rig.server->counters();
  EXPECT_EQ(server_counters.sessions, 1u);
  EXPECT_EQ(server_counters.requests, 2u);
  EXPECT_EQ(server_counters.responses, 2u);
  EXPECT_EQ(server_counters.errors, 0u);
}

TEST(RemoteShard, ServedExplanationsBitIdenticalIncludingStatsAndMetrics) {
  // The in-process golden: the scheduler over a locally sharded crude
  // model (the tests/test_serve.cpp topology).
  const auto block = cb::listing2_case_study1();
  const auto options = light_options(5);
  const cs::ShardedCostModel local_sharded(
      [](std::size_t) -> std::shared_ptr<const ck::CostModel> {
        return crude();
      },
      /*shards=*/2);
  const auto expected =
      cc::CometExplainer(local_sharded, options).explain(block);
  // Same bits as a plain un-sharded model, so the remote comparison below
  // is anchored to the sequential golden, not merely to another pool.
  expect_identical(cc::CometExplainer(*crude(), options).explain(block),
                   expected);

  // The remote topology: scheduler → pool → shards → wire → servers. Each
  // shard's model is a RemoteShardClient dialing its own server.
  cs::RemoteShardOptions remote_options;
  remote_options.request_timeout_ns = kMustSucceedNs;
  auto remote_sharded = std::make_shared<const cs::ShardedCostModel>(
      [&remote_options](std::size_t) -> std::shared_ptr<const ck::CostModel> {
        ServerRig rig(crude());
        return std::make_shared<const cs::RemoteShardClient>(rig.connector(),
                                                             remote_options);
      },
      /*shards=*/2);

  cs::X86ExplanationServer server({.workers = 2, .queue_capacity = 4});
  server.register_model("remote-sharded", remote_sharded);
  server.submit("remote-sharded", block, options);
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 1u);

  // Bit-identical explanation AND bit-identical merged ledger: the wire
  // moved doubles as raw bit patterns, so the broker above it cannot tell
  // remote shards from local ones.
  expect_identical(results[0].explanation, expected);
  EXPECT_EQ(results[0].explanation.query_stats, expected.query_stats);
  EXPECT_EQ(remote_sharded->stats(), local_sharded.stats());

  // The serve_* metrics surface agrees a request went through cleanly.
  const auto snap = server.metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve_submitted") {
      EXPECT_EQ(value, 1u);
    }
    if (name == "serve_completed") {
      EXPECT_EQ(value, 1u);
    }
    if (name == "serve_try_submit_rejected") {
      EXPECT_EQ(value, 0u);
    }
  }
}

// ---------------- the deterministic fault matrix ----------------

struct FaultCase {
  const char* name;
  cn::Fault request_fault;   // applied to the first client → server send
  cn::Fault response_fault;  // applied to the first server → client send
  bool with_fallback;
};

class RemoteShardFaultMatrix : public testing::TestWithParam<FaultCase> {};

TEST_P(RemoteShardFaultMatrix, FaultResolvesToTimeoutOrFailover) {
  const FaultCase& fault_case = GetParam();
  ServerRig rig(crude(),
                {{cn::FaultSchedule({fault_case.request_fault}),
                  cn::FaultSchedule({fault_case.response_fault})}});

  cs::RemoteShardOptions options;
  options.request_timeout_ns = kFaultTimeoutNs;
  if (fault_case.with_fallback) options.fallback = crude();
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(3);
  std::vector<double> expected(blocks.size());
  crude()->predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(expected));
  std::vector<double> out(blocks.size());

  if (fault_case.with_fallback) {
    // The request is served anyway — by the local fallback — and the
    // values are the same bits the remote side would have produced.
    client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(out));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(expected[i]))
          << "block " << i;
    }
  } else {
    EXPECT_THROW(client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                                      std::span<double>(out)),
                 cn::TimeoutError);
  }

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.responses, 0u);
  EXPECT_EQ(counters.timeouts, 1u);
  EXPECT_EQ(counters.failovers, fault_case.with_fallback ? 1u : 0u);
  // Deadlines never trigger a retry, so the faulted dial stays the only
  // one.
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(rig.dials(), 1u);

  // Clean drain regardless of the injected fault.
  rig.server->stop();
  EXPECT_EQ(rig.server->counters().sessions, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, RemoteShardFaultMatrix,
    testing::Values(
        FaultCase{"RequestDropped", cn::Fault::drop(), cn::Fault::none(),
                  false},
        FaultCase{"RequestDroppedFailover", cn::Fault::drop(),
                  cn::Fault::none(), true},
        FaultCase{"RequestTruncated", cn::Fault::truncate(9),
                  cn::Fault::none(), false},
        FaultCase{"RequestTruncatedFailover", cn::Fault::truncate(9),
                  cn::Fault::none(), true},
        FaultCase{"ResponseDropped", cn::Fault::none(), cn::Fault::drop(),
                  false},
        FaultCase{"ResponseDroppedFailover", cn::Fault::none(),
                  cn::Fault::drop(), true},
        FaultCase{"ResponseTruncated", cn::Fault::none(),
                  cn::Fault::truncate(10), false},
        FaultCase{"ResponseTruncatedFailover", cn::Fault::none(),
                  cn::Fault::truncate(10), true},
        FaultCase{"ResponseDelayed", cn::Fault::none(), cn::Fault::delay(1),
                  false},
        FaultCase{"ResponseDelayedFailover", cn::Fault::none(),
                  cn::Fault::delay(1), true}),
    [](const testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name);
    });

// ---------------- reconnect, stale frames, garbage bytes ----------------

TEST(RemoteShard, DeadConnectionIsRedialedAndTheRequestResent) {
  // Dial 1's response direction dies before delivering a byte; dial 2 is
  // clean. The client must notice the disconnect, reconnect, resend, and
  // serve the request remotely — no fallback involved.
  ServerRig rig(crude(),
                {{cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.fallback = crude();  // must NOT be used: reconnect wins first
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  EXPECT_DOUBLE_EQ(client.predict(block), crude()->predict(block));

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(counters.wire_errors, 1u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(counters.failovers, 0u);
  EXPECT_EQ(counters.timeouts, 0u);
  EXPECT_EQ(rig.dials(), 2u);
  // Both sessions processed the (re)sent request; both drained.
  rig.server->stop();
  const auto server_counters = rig.server->counters();
  EXPECT_EQ(server_counters.sessions, 2u);
  EXPECT_EQ(server_counters.requests, 2u);
}

TEST(RemoteShard, GarbageBytesFromThePeerTriggerReconnectNotCrash) {
  // Dial 1 hands the client a peer that speaks garbage; dial 2 reaches a
  // real server. The malformed stream must surface as a typed wire error
  // internally and be healed by the retry.
  ServerRig rig(crude());
  auto real_connector = rig.connector();
  auto dials = std::make_shared<std::size_t>(0);
  cs::RemoteShardClient::Connector connector =
      [real_connector, dials]() -> std::unique_ptr<cn::Transport> {
    if ((*dials)++ == 0) {
      auto [client_end, garbage_end] = cn::make_sim_pair();
      const std::vector<std::uint8_t> garbage = {10, 0, 0, 0, 99, 1, 2, 3,
                                                 4,  5, 6, 7, 8,  9};
      garbage_end->send(garbage);  // bad version byte: provably malformed
      return std::move(client_end);
    }
    return real_connector();
  };

  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(connector, options);
  const auto block = test_blocks(1)[0];
  EXPECT_DOUBLE_EQ(client.predict(block), crude()->predict(block));

  const auto counters = client.counters();
  EXPECT_EQ(counters.wire_errors, 1u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(*dials, 2u);
}

TEST(RemoteShard, ExhaustedAttemptsWithoutFallbackAreATypedError) {
  // Every dial dies instantly and there is no fallback: after
  // max_attempts tries the typed disconnect surfaces to the caller.
  ServerRig rig(crude(),
                {{cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})},
                 {cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.max_attempts = 2;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  EXPECT_THROW(client.predict(block), cn::DisconnectedError);
  const auto counters = client.counters();
  EXPECT_EQ(counters.wire_errors, 2u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(rig.dials(), 2u);
}

TEST(RemoteShard, DuplicatedResponseIsDiscardedAsStaleOnTheNextRequest) {
  // The first response is delivered twice; the copy must be discarded
  // (counted stale) when the second request polls the stream, and both
  // requests must still return correct bits.
  ServerRig rig(crude(), {{cn::FaultSchedule{},
                           cn::FaultSchedule({cn::Fault::duplicate()})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(2);
  EXPECT_DOUBLE_EQ(client.predict(blocks[0]), crude()->predict(blocks[0]));
  EXPECT_DOUBLE_EQ(client.predict(blocks[1]), crude()->predict(blocks[1]));

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 2u);
  EXPECT_EQ(counters.stale_frames, 1u);
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(rig.dials(), 1u);
}

TEST(RemoteShard, SeededFaultSweepIsDeterministicAndAlwaysCorrect) {
  // A randomized-but-seeded storm of response faults, run twice: the
  // failure-mode counters must be identical run-to-run (the schedule, not
  // thread timing, decides every outcome), and with remote == fallback
  // model every prediction is bit-correct no matter what the network did.
  const auto blocks = test_blocks(10);
  std::vector<double> expected(blocks.size());
  crude()->predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(expected));

  const auto run = [&blocks, &expected](std::uint64_t seed) {
    std::vector<std::pair<cn::FaultSchedule, cn::FaultSchedule>> plans;
    for (std::size_t dial = 0; dial < 8; ++dial) {
      plans.emplace_back(
          cn::FaultSchedule{},
          cn::FaultSchedule::seeded(seed + dial, 4, /*fault_rate=*/0.4));
    }
    ServerRig rig(crude(), std::move(plans));
    cs::RemoteShardOptions options;
    options.request_timeout_ns = kFaultTimeoutNs;
    options.fallback = crude();
    const cs::RemoteShardClient client(rig.connector(), options);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(client.predict(blocks[i])),
                std::bit_cast<std::uint64_t>(expected[i]))
          << "block " << i;
    }
    rig.server->stop();  // must drain cleanly whatever the storm did
    return client.counters();
  };

  const auto first = run(2024);
  const auto second = run(2024);
  EXPECT_EQ(first.requests, second.requests);
  EXPECT_EQ(first.responses, second.responses);
  EXPECT_EQ(first.timeouts, second.timeouts);
  EXPECT_EQ(first.reconnects, second.reconnects);
  EXPECT_EQ(first.failovers, second.failovers);
  EXPECT_EQ(first.stale_frames, second.stale_frames);
  EXPECT_EQ(first.wire_errors, second.wire_errors);
  EXPECT_EQ(first.requests, 10u);
  EXPECT_EQ(first.responses + first.failovers, 10u);

  // Chaos mode (scripts/check.sh --chaos) widens the storm via
  // COMET_CHAOS_SEEDS: every schedule must preserve bit-parity and drain
  // cleanly, whatever it drops, truncates, or delays.
  if (const char* env = std::getenv("COMET_CHAOS_SEEDS")) {
    const std::size_t extra =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    for (std::size_t i = 0; i < extra; ++i) run(3000 + 17 * i);
  }
}

// ---------------- cancellation ----------------

TEST(RemoteShard, CancelFailsInFlightRequestWithoutFailover) {
  auto gate = std::make_shared<GateModel>();
  ServerRig rig(gate);
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.fallback = crude();  // must NOT be consulted on cancel
  cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  auto in_flight = std::async(std::launch::async, [&client, &block] {
    client.predict(block);
  });
  // The server session is pinned inside the model: the request is in
  // flight on the wire. Cancel from this thread.
  gate->await_entered();
  client.cancel();
  EXPECT_THROW(in_flight.get(), cn::CancelledError);
  EXPECT_EQ(client.counters().failovers, 0u);

  // Every later request fails the same way, before touching the network.
  EXPECT_THROW(client.predict(block), cn::CancelledError);

  // Release the server; its reply hits a dead transport and the session
  // drains cleanly.
  gate->open();
  rig.server->stop();
  EXPECT_EQ(rig.server->counters().sessions, 1u);
}

// ---------------- protocol-level server behavior ----------------

TEST(RemoteShardServer, BadBlockTextFailsTheRequestNotTheSession) {
  cs::RemoteShardServer server(crude());
  auto [client_end, server_end] = cn::make_sim_pair();
  server.start(std::move(server_end));

  cn::FrameAssembler rx;
  std::uint8_t buf[512];
  const auto exchange = [&](const cn::Frame& frame) {
    client_end->send(cn::encode_frame(frame));
    for (;;) {
      if (auto reply = rx.poll()) return *std::move(reply);
      const std::size_t n = client_end->recv(std::span<std::uint8_t>(buf),
                                             kMustSucceedNs);
      COMET_CHECK(n > 0);
      rx.feed(std::span<const std::uint8_t>(buf, n));
    }
  };

  // An unparseable block: the request fails typed, the session survives.
  cn::Frame bad;
  bad.type = cn::MessageType::kPredictRequest;
  bad.request_id = 7;
  cn::PredictRequest bad_request;
  bad_request.block_texts = {"frobnicate zzz, qqq"};
  bad.payload = cn::encode_predict_request(bad_request);
  const auto error_reply = exchange(bad);
  EXPECT_EQ(error_reply.type, cn::MessageType::kError);
  EXPECT_EQ(error_reply.request_id, 7u);
  EXPECT_EQ(cn::decode_error(error_reply.payload).code,
            cn::ErrorBody::kParseError);

  // A response type flowing client → server is off-protocol.
  cn::Frame off_protocol;
  off_protocol.type = cn::MessageType::kPredictResponse;
  off_protocol.request_id = 8;
  off_protocol.payload = cn::encode_predict_response({{1.0}});
  const auto off_reply = exchange(off_protocol);
  EXPECT_EQ(off_reply.type, cn::MessageType::kError);
  EXPECT_EQ(cn::decode_error(off_reply.payload).code,
            cn::ErrorBody::kBadRequest);

  // The same session still serves a good request afterwards.
  cn::Frame good;
  good.type = cn::MessageType::kPredictRequest;
  good.request_id = 9;
  cn::PredictRequest good_request;
  good_request.block_texts = {test_blocks(1)[0].to_string()};
  good.payload = cn::encode_predict_request(good_request);
  const auto good_reply = exchange(good);
  EXPECT_EQ(good_reply.type, cn::MessageType::kPredictResponse);
  EXPECT_EQ(good_reply.request_id, 9u);
  EXPECT_EQ(cn::decode_predict_response(good_reply.payload).values.size(),
            1u);

  // kShutdown ends the session gracefully: the client sees end of stream.
  cn::Frame shutdown;
  shutdown.type = cn::MessageType::kShutdown;
  client_end->send(cn::encode_frame(shutdown));
  EXPECT_EQ(client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs),
            0u);

  server.stop();
  const auto counters = server.counters();
  EXPECT_EQ(counters.sessions, 1u);
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(counters.errors, 2u);
  // Only the good request reached the model: the ledger holds one block.
  EXPECT_EQ(server.stats().requested, 1u);
  EXPECT_EQ(server.stats().evaluated, 1u);
}

TEST(RemoteShardServer, GarbageBytesEndTheSessionWithABestEffortError) {
  cs::RemoteShardServer server(crude());
  auto [client_end, server_end] = cn::make_sim_pair();
  server.start(std::move(server_end));

  // Not a frame at all (bad version byte at offset 4).
  client_end->send(std::vector<std::uint8_t>{1, 0, 0, 0, 77, 1, 0, 0});

  // The server reports kBadRequest, then closes the session.
  cn::FrameAssembler rx;
  std::uint8_t buf[512];
  std::optional<cn::Frame> reply;
  for (;;) {
    if ((reply = rx.poll())) break;
    const std::size_t n =
        client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs);
    ASSERT_GT(n, 0u);
    rx.feed(std::span<const std::uint8_t>(buf, n));
  }
  EXPECT_EQ(reply->type, cn::MessageType::kError);
  EXPECT_EQ(cn::decode_error(reply->payload).code,
            cn::ErrorBody::kBadRequest);
  EXPECT_EQ(client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs),
            0u);

  server.stop();
  EXPECT_EQ(server.counters().errors, 1u);
  EXPECT_EQ(server.counters().responses, 0u);
}

namespace {

// A shard host that can die and come back. kill() stops the current
// server — closing every live session, so connected clients see EOF —
// and makes further dials fail with DisconnectedError; revive() installs
// a fresh server for new dials. (RemoteShardServer is one-shot by
// contract: start() after stop() is a ContractViolation, so revival
// swaps in a new instance rather than restarting the old one.)
class RevivableRig {
 public:
  explicit RevivableRig(std::shared_ptr<const ck::CostModel> model)
      : model_(std::move(model)), slot_(std::make_shared<Slot>()) {
    slot_->server = std::make_shared<cs::RemoteShardServer>(model_);
  }

  ~RevivableRig() { kill(); }

  void kill() {
    std::shared_ptr<cs::RemoteShardServer> doomed;
    {
      std::lock_guard<std::mutex> lock(slot_->mutex);
      doomed = std::move(slot_->server);
      slot_->server = nullptr;
    }
    if (doomed != nullptr) doomed->stop();
  }

  void revive() {
    std::lock_guard<std::mutex> lock(slot_->mutex);
    slot_->server = std::make_shared<cs::RemoteShardServer>(model_);
  }

  cs::RemoteShardClient::Connector connector() const {
    return [slot = slot_]() -> std::unique_ptr<cn::Transport> {
      std::shared_ptr<cs::RemoteShardServer> server;
      {
        std::lock_guard<std::mutex> lock(slot->mutex);
        server = slot->server;
      }
      if (server == nullptr) {
        throw cn::DisconnectedError("RevivableRig: shard host is down");
      }
      auto [client_end, server_end] = cn::make_sim_pair();
      server->start(std::move(server_end));
      return std::move(client_end);
    };
  }

 private:
  struct Slot {
    std::mutex mutex;
    std::shared_ptr<cs::RemoteShardServer> server;
  };
  std::shared_ptr<const ck::CostModel> model_;
  std::shared_ptr<Slot> slot_;
};

}  // namespace

TEST(RemoteShardHealth, PingRoundTripsAndFailsClosedOnceTheServerDies) {
  ServerRig rig(crude());
  cs::RemoteShardOptions copt;
  copt.request_timeout_ns = kMustSucceedNs;
  cs::RemoteShardClient client(rig.connector(), copt);

  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(client.counters().health_pings, 2u);
  EXPECT_EQ(client.counters().health_failures, 0u);
  EXPECT_EQ(rig.server->counters().health_checks, 2u);
  // Health checks never touch the model or the request ledger.
  EXPECT_EQ(rig.server->counters().requests, 0u);
  EXPECT_EQ(rig.server->stats().requested, 0u);

  // A dead server fails the probe closed: false, never a throw, and the
  // failure is accounted.
  rig.server->stop();
  EXPECT_FALSE(client.ping());
  EXPECT_EQ(client.counters().health_pings, 3u);
  EXPECT_EQ(client.counters().health_failures, 1u);
}

TEST(ShardFaultRecovery, DeathReShardsRecoveryReadmitsDeterministically) {
  const auto plain = crude();
  constexpr std::size_t kShards = 3;

  std::vector<std::unique_ptr<RevivableRig>> rigs;
  for (std::size_t s = 0; s < kShards; ++s) {
    rigs.push_back(std::make_unique<RevivableRig>(plain));
  }

  // The pool's shards are remote clients; the test keeps its own handles
  // for the health prober.
  std::vector<std::shared_ptr<const cs::RemoteShardClient>> clients(kShards);
  cs::ShardedCostModel sharded(
      [&](std::size_t s) {
        cs::RemoteShardOptions copt;
        copt.request_timeout_ns = kMustSucceedNs;
        auto client = std::make_shared<const cs::RemoteShardClient>(
            rigs[s]->connector(), copt);
        clients[s] = client;
        return client;
      },
      kShards);

  co::ManualClock clock;  // t = 0; the monitor never reads wall time
  cs::HealthOptions hopt;
  hopt.failure_threshold = 2;
  hopt.readmit_probes = 2;
  hopt.probe_interval_ns = 0;    // live shards probe on every tick
  hopt.backoff_base_ns = 1'000;  // dead-shard re-probe backoff (manual ns)
  hopt.backoff_factor = 2.0;
  hopt.backoff_max_ns = 8'000;
  hopt.jitter_frac = 0.25;
  hopt.seed = 0xc0ffee;
  hopt.clock = &clock;
  cs::ShardHealthMonitor monitor(
      kShards, [&](std::size_t s) { return clients[s]->ping(); }, hopt);
  std::vector<std::size_t> died;
  std::vector<std::size_t> readmitted;
  monitor.set_on_dead([&](std::size_t s) {
    died.push_back(s);
    sharded.set_shard_live(s, false);
  });
  monitor.set_on_readmitted([&](std::size_t s) {
    readmitted.push_back(s);
    sharded.set_shard_live(s, true);
  });

  // Prime the fleet: predictions over the pool are bit-identical to the
  // in-process model, and the memo holds each distinct block exactly
  // once, pool-wide.
  const std::vector<cx::BasicBlock> blocks = test_blocks(12);
  std::set<std::string> texts;
  for (const auto& block : blocks) texts.insert(block.to_string());
  const std::size_t distinct = texts.size();

  std::vector<double> expected(blocks.size());
  plain->predict_batch(blocks, expected);
  std::vector<double> got(blocks.size());
  sharded.predict_batch(blocks, got);
  EXPECT_EQ(got, expected);

  const std::vector<std::size_t> sizes_primed = sharded.memo_sizes();
  std::size_t total_primed = 0;
  for (const std::size_t n : sizes_primed) total_primed += n;
  EXPECT_EQ(total_primed, distinct);

  // Healthy fleet: one tick wire-pings every shard.
  monitor.tick();
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(monitor.health(s), cs::ShardHealth::kHealthy);
    EXPECT_EQ(clients[s]->counters().health_pings, 1u);
  }

  // Shard 1's host dies. failure_threshold = 2 consecutive failed pings
  // open the circuit: on_dead fires exactly once and the pool re-shards
  // the hash space over the survivors.
  rigs[1]->kill();
  monitor.tick();
  EXPECT_EQ(monitor.health(1), cs::ShardHealth::kSuspect);
  EXPECT_TRUE(died.empty());
  monitor.tick();
  EXPECT_EQ(monitor.health(1), cs::ShardHealth::kDead);
  EXPECT_EQ(died, (std::vector<std::size_t>{1}));
  EXPECT_EQ(sharded.live_shards(), (std::vector<std::size_t>{0, 2}));

  // The re-shard swept the survivors' memos down to what they now own;
  // the dead shard's memo is untouched (nobody talks to it).
  const std::vector<std::size_t> sizes_dead = sharded.memo_sizes();
  EXPECT_EQ(sizes_dead[1], sizes_primed[1]);
  EXPECT_LE(sizes_dead[0], sizes_primed[0]);
  EXPECT_LE(sizes_dead[2], sizes_primed[2]);

  // Degraded serving: the same batch re-routes to the survivors and is
  // still bit-identical; the survivors re-memoize the moved keys.
  std::fill(got.begin(), got.end(), 0.0);
  sharded.predict_batch(blocks, got);
  EXPECT_EQ(got, expected);
  const std::vector<std::size_t> sizes_degraded = sharded.memo_sizes();
  EXPECT_EQ(sizes_degraded[0] + sizes_degraded[2], distinct);
  EXPECT_EQ(sizes_degraded[1], sizes_primed[1]);

  // A whole explanation served mid-outage is bit-identical to the
  // sequential in-process run.
  const cc::CometOptions opt = light_options(404);
  const cx::BasicBlock block = blocks.front();
  const cc::Explanation sequential =
      cc::CometExplainer(*plain, opt).explain(block);
  const cc::Explanation degraded =
      cc::CometExplainer(sharded, opt).explain(block);
  expect_identical(degraded, sequential);

  // Dead shards re-probe on a jittered exponential backoff, not every
  // tick: at the same manual time the next probe is not yet due.
  const std::uint64_t failures_at_death = monitor.counters().failures;
  monitor.tick();
  EXPECT_EQ(monitor.counters().failures, failures_at_death);
  EXPECT_EQ(monitor.health(1), cs::ShardHealth::kDead);

  clock.advance_ns(2'000);  // past the first jittered backoff
  monitor.tick();           // still down: one more failure, no new death
  EXPECT_EQ(monitor.counters().failures, failures_at_death + 1);
  EXPECT_EQ(monitor.counters().deaths, 1u);
  EXPECT_EQ(died.size(), 1u);

  // The host comes back. The first successful probe enters half-open
  // probation — the shard is NOT yet re-admitted to routing.
  rigs[1]->revive();
  clock.advance_ns(20'000);  // past the capped backoff, whatever the jitter
  monitor.tick();
  EXPECT_EQ(monitor.health(1), cs::ShardHealth::kProbation);
  EXPECT_TRUE(readmitted.empty());
  EXPECT_EQ(sharded.live_shards(), (std::vector<std::size_t>{0, 2}));

  // readmit_probes = 2 consecutive successes re-admit it.
  monitor.tick();
  EXPECT_EQ(monitor.health(1), cs::ShardHealth::kHealthy);
  EXPECT_EQ(readmitted, (std::vector<std::size_t>{1}));
  EXPECT_EQ(sharded.live_shards(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(monitor.counters().deaths, 1u);
  EXPECT_EQ(monitor.counters().readmissions, 1u);

  // Re-admission restores the original hash assignment, so shard 1's
  // memo (which only ever held keys it owns under the full routing)
  // survives the readmit sweep intact.
  const std::vector<std::size_t> sizes_readmitted = sharded.memo_sizes();
  EXPECT_EQ(sizes_readmitted[1], sizes_primed[1]);

  // Full-fleet serving after recovery: the old batch is bit-identical,
  // and fresh traffic routes to the re-admitted shard again (its memo
  // grows past what it held before the outage).
  std::fill(got.begin(), got.end(), 0.0);
  sharded.predict_batch(blocks, got);
  EXPECT_EQ(got, expected);

  cb::DatasetOptions fresh_opt;
  fresh_opt.size = 12;
  fresh_opt.seed = 1234;
  const cb::Dataset fresh_dataset = cb::generate_dataset(fresh_opt);
  std::vector<cx::BasicBlock> fresh;
  for (const auto& labeled : fresh_dataset.blocks()) {
    fresh.push_back(labeled.block);
  }
  std::vector<double> fresh_expected(fresh.size());
  std::vector<double> fresh_got(fresh.size());
  plain->predict_batch(fresh, fresh_expected);
  sharded.predict_batch(fresh, fresh_got);
  EXPECT_EQ(fresh_got, fresh_expected);
  EXPECT_GT(sharded.memo_sizes()[1], sizes_readmitted[1]);

  const cc::Explanation recovered =
      cc::CometExplainer(sharded, opt).explain(block);
  expect_identical(recovered, sequential);

  // The outage left its trace in the probe accounting.
  EXPECT_GE(clients[1]->counters().health_failures, 3u);
}

// ---------------- graceful degradation: the fallback chain ----------------

TEST(FallbackChain, DegradesThroughTiersWithPerTierAccounting) {
  const auto model = crude();
  const auto blocks = test_blocks(6);
  std::vector<double> expected(blocks.size());
  model->predict_batch(std::span<const cx::BasicBlock>(blocks),
                       std::span<double>(expected));

  // Tier 0 is a remote shard whose host is permanently down; tier 1 is a
  // "replica" built from the same model, so the degraded answer is
  // bit-identical to the primary's by construction.
  RevivableRig dead_rig(model);
  dead_rig.kill();
  cs::RemoteShardOptions copt;
  copt.request_timeout_ns = kMustSucceedNs;
  auto dead_remote = std::make_shared<const cs::RemoteShardClient>(
      dead_rig.connector(), copt);
  const cs::FallbackChain chain(
      {{"remote", dead_remote}, {"replica", model}});
  EXPECT_EQ(chain.name(), "fallback(remote->replica)");

  std::vector<double> out(blocks.size());
  chain.predict_batch(std::span<const cx::BasicBlock>(blocks),
                      std::span<double>(out));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(expected[i]))
        << "block " << i;
  }
  auto tiers = chain.tier_counters();
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_EQ(tiers[0].label, "remote");
  EXPECT_EQ(tiers[0].attempts, 1u);
  EXPECT_EQ(tiers[0].successes, 0u);
  EXPECT_EQ(tiers[0].errors, 1u);
  EXPECT_EQ(tiers[1].label, "replica");
  EXPECT_EQ(tiers[1].attempts, 1u);
  EXPECT_EQ(tiers[1].successes, 1u);
  EXPECT_EQ(tiers[1].errors, 0u);

  // A healthy preferred tier answers and lower tiers are never touched.
  ServerRig live_rig(model);
  auto live_remote = std::make_shared<const cs::RemoteShardClient>(
      live_rig.connector(), copt);
  const cs::FallbackChain healthy(
      {{"remote", live_remote}, {"replica", model}});
  EXPECT_DOUBLE_EQ(healthy.predict(blocks[0]), expected[0]);
  tiers = healthy.tier_counters();
  EXPECT_EQ(tiers[0].successes, 1u);
  EXPECT_EQ(tiers[1].attempts, 0u);

  // If the LAST tier fails there is nothing left to degrade to: the
  // error propagates.
  const cs::FallbackChain exhausted({{"remote", dead_remote}});
  EXPECT_THROW(exhausted.predict(blocks[0]), cn::TransportError);
}

TEST(FallbackChain, CancellationIsObeyedNeverFailedOver) {
  const auto model = crude();
  ServerRig rig(model);
  cs::RemoteShardOptions copt;
  copt.request_timeout_ns = kMustSucceedNs;
  auto remote = std::make_shared<cs::RemoteShardClient>(rig.connector(),
                                                        copt);
  const cs::FallbackChain chain({{"remote", remote}, {"replica", model}});

  // A cancelled client throws CancelledError; the chain rethrows instead
  // of consulting the replica (the caller asked to stop — obeying is not
  // a failure).
  remote->cancel();
  EXPECT_THROW(chain.predict(test_blocks(1)[0]), cn::CancelledError);
  const auto tiers = chain.tier_counters();
  EXPECT_EQ(tiers[0].successes, 0u);
  EXPECT_EQ(tiers[1].attempts, 0u);
}
