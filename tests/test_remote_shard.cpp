// Tests for networked explanation serving (serve::RemoteShardClient /
// RemoteShardServer over src/net/):
//
//   * bit-parity — predictions and whole explanations served over a clean
//     SimTransport are bit-identical to in-process serving, including the
//     merged QueryStats ledger and the serve_* metrics counters;
//   * the deterministic fault matrix — request/response drop, truncation,
//     and delay each resolve to their documented typed outcome (timeout
//     without a fallback, failover with one), with the failure-mode
//     counters to match;
//   * reconnect — a dead or garbage-spewing connection is re-dialed and
//     the request resent; duplicated responses are discarded as stale;
//   * cancellation — cancel() fails an in-flight request with
//     CancelledError and never falls over to the local fallback;
//   * protocol errors — a bad block text fails the request (kError /
//     kParseError) but not the session; garbage bytes end the session
//     after a best-effort error report; and every scenario above ends in
//     a clean server drain (stop() returns, counters balance).
//
// Everything here runs over net::SimTransport, so each scenario is exactly
// reproducible: the fault schedule, not thread timing, decides what fails.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bhive/dataset.h"
#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "net/sim_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "serve/isa_servers.h"
#include "serve/remote_shard.h"
#include "serve/sharded_cost_model.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace ck = comet::cost;
namespace cn = comet::net;
namespace cs = comet::serve;
namespace cx = comet::x86;

namespace {

constexpr std::uint64_t kMustSucceedNs = 20'000'000'000;  // 20 s
// Deadline for requests whose response was injected away. The awaited
// bytes can never arrive, so expiry is deterministic; the duration only
// bounds how long the test waits for it.
constexpr std::uint64_t kFaultTimeoutNs = 400'000'000;  // 400 ms

std::vector<cx::BasicBlock> test_blocks(std::size_t n) {
  cb::DatasetOptions opt;
  opt.size = n;
  opt.seed = 77;
  const cb::Dataset dataset = cb::generate_dataset(opt);
  std::vector<cx::BasicBlock> blocks;
  for (const auto& labeled : dataset.blocks()) blocks.push_back(labeled.block);
  return blocks;
}

cc::CometOptions light_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 150;
  opt.max_pulls_per_level = 40;
  opt.batch_size = 8;
  opt.final_precision_samples = 60;
  opt.seed = seed;
  return opt;
}

void expect_identical(const cc::Explanation& a, const cc::Explanation& b) {
  EXPECT_EQ(a.features, b.features)
      << a.features.to_string() << " vs " << b.features.to_string();
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.met_threshold, b.met_threshold);
  EXPECT_EQ(a.model_queries, b.model_queries);
}

std::shared_ptr<const ck::CrudeModel> crude() {
  return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
}

// A test harness owning one RemoteShardServer; its connector() dials a
// fresh sim pair per call (each with the next entry of `plans`, reused
// past the end as clean) and starts a server session on the far end —
// which is exactly what reconnecting needs.
struct ServerRig {
  explicit ServerRig(std::shared_ptr<const ck::CostModel> model,
                     std::vector<std::pair<cn::FaultSchedule,
                                           cn::FaultSchedule>> plans = {})
      : server(std::make_shared<cs::RemoteShardServer>(std::move(model))),
        plans_(std::move(plans)),
        dials_(std::make_shared<std::size_t>(0)) {}

  cs::RemoteShardClient::Connector connector() {
    // Captures keep the server (and dial counter) alive as long as the
    // client holds the connector.
    return [server = server, plans = plans_, dials = dials_] {
      const std::size_t dial = (*dials)++;
      auto [request_dir, response_dir] =
          dial < plans.size() ? plans[dial]
                              : std::pair<cn::FaultSchedule,
                                          cn::FaultSchedule>{};
      auto [client_end, server_end] = cn::make_sim_pair(
          std::move(request_dir), std::move(response_dir));
      server->start(std::move(server_end));
      return std::move(client_end);
    };
  }

  std::size_t dials() const { return *dials_; }

  std::shared_ptr<cs::RemoteShardServer> server;

 private:
  std::vector<std::pair<cn::FaultSchedule, cn::FaultSchedule>> plans_;
  std::shared_ptr<std::size_t> dials_;
};

// A model whose queries block until the test opens the gate (to pin a
// server session mid-request for the cancellation test).
class GateModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    wait_open();
    return 1.0;
  }
  std::string name() const override { return "gate"; }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void await_entered() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

 private:
  void wait_open() const {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool open_ = false;
};

}  // namespace

// ---------------- bit-parity over a clean transport ----------------

TEST(RemoteShard, PredictionsBitIdenticalToLocalModelAndLedgersMatch) {
  const auto model = crude();
  ServerRig rig(model);
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(40);
  std::vector<double> expected(blocks.size());
  model->predict_batch(std::span<const cx::BasicBlock>(blocks),
                       std::span<double>(expected));

  std::vector<double> out(blocks.size());
  client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                       std::span<double>(out));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(expected[i]))
        << "block " << i;
  }
  EXPECT_DOUBLE_EQ(client.predict(blocks[0]), expected[0]);
  EXPECT_EQ(client.name(), "remote-shard");

  // One connection, two round-trips, no failures of any kind.
  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 2u);
  EXPECT_EQ(counters.timeouts, 0u);
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(counters.failovers, 0u);
  EXPECT_EQ(counters.wire_errors, 0u);
  EXPECT_EQ(counters.stale_frames, 0u);
  EXPECT_EQ(rig.dials(), 1u);

  // The server ledger round-trips over kStatsRequest and shows the memo-
  // free contract: everything requested was evaluated, one batch call per
  // round-trip.
  const ck::QueryStats stats = client.server_stats();
  EXPECT_EQ(stats.requested, blocks.size() + 1);
  EXPECT_EQ(stats.evaluated, blocks.size() + 1);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.batch_calls, 2u);
  EXPECT_EQ(stats, rig.server->stats());

  const auto server_counters = rig.server->counters();
  EXPECT_EQ(server_counters.sessions, 1u);
  EXPECT_EQ(server_counters.requests, 2u);
  EXPECT_EQ(server_counters.responses, 2u);
  EXPECT_EQ(server_counters.errors, 0u);
}

TEST(RemoteShard, ServedExplanationsBitIdenticalIncludingStatsAndMetrics) {
  // The in-process golden: the scheduler over a locally sharded crude
  // model (the tests/test_serve.cpp topology).
  const auto block = cb::listing2_case_study1();
  const auto options = light_options(5);
  const cs::ShardedCostModel local_sharded(
      [](std::size_t) -> std::shared_ptr<const ck::CostModel> {
        return crude();
      },
      /*shards=*/2);
  const auto expected =
      cc::CometExplainer(local_sharded, options).explain(block);
  // Same bits as a plain un-sharded model, so the remote comparison below
  // is anchored to the sequential golden, not merely to another pool.
  expect_identical(cc::CometExplainer(*crude(), options).explain(block),
                   expected);

  // The remote topology: scheduler → pool → shards → wire → servers. Each
  // shard's model is a RemoteShardClient dialing its own server.
  cs::RemoteShardOptions remote_options;
  remote_options.request_timeout_ns = kMustSucceedNs;
  auto remote_sharded = std::make_shared<const cs::ShardedCostModel>(
      [&remote_options](std::size_t) -> std::shared_ptr<const ck::CostModel> {
        ServerRig rig(crude());
        return std::make_shared<const cs::RemoteShardClient>(rig.connector(),
                                                             remote_options);
      },
      /*shards=*/2);

  cs::X86ExplanationServer server({.workers = 2, .queue_capacity = 4});
  server.register_model("remote-sharded", remote_sharded);
  server.submit("remote-sharded", block, options);
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 1u);

  // Bit-identical explanation AND bit-identical merged ledger: the wire
  // moved doubles as raw bit patterns, so the broker above it cannot tell
  // remote shards from local ones.
  expect_identical(results[0].explanation, expected);
  EXPECT_EQ(results[0].explanation.query_stats, expected.query_stats);
  EXPECT_EQ(remote_sharded->stats(), local_sharded.stats());

  // The serve_* metrics surface agrees a request went through cleanly.
  const auto snap = server.metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve_submitted") {
      EXPECT_EQ(value, 1u);
    }
    if (name == "serve_completed") {
      EXPECT_EQ(value, 1u);
    }
    if (name == "serve_try_submit_rejected") {
      EXPECT_EQ(value, 0u);
    }
  }
}

// ---------------- the deterministic fault matrix ----------------

struct FaultCase {
  const char* name;
  cn::Fault request_fault;   // applied to the first client → server send
  cn::Fault response_fault;  // applied to the first server → client send
  bool with_fallback;
};

class RemoteShardFaultMatrix : public testing::TestWithParam<FaultCase> {};

TEST_P(RemoteShardFaultMatrix, FaultResolvesToTimeoutOrFailover) {
  const FaultCase& fault_case = GetParam();
  ServerRig rig(crude(),
                {{cn::FaultSchedule({fault_case.request_fault}),
                  cn::FaultSchedule({fault_case.response_fault})}});

  cs::RemoteShardOptions options;
  options.request_timeout_ns = kFaultTimeoutNs;
  if (fault_case.with_fallback) options.fallback = crude();
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(3);
  std::vector<double> expected(blocks.size());
  crude()->predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(expected));
  std::vector<double> out(blocks.size());

  if (fault_case.with_fallback) {
    // The request is served anyway — by the local fallback — and the
    // values are the same bits the remote side would have produced.
    client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(out));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(expected[i]))
          << "block " << i;
    }
  } else {
    EXPECT_THROW(client.predict_batch(std::span<const cx::BasicBlock>(blocks),
                                      std::span<double>(out)),
                 cn::TimeoutError);
  }

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.responses, 0u);
  EXPECT_EQ(counters.timeouts, 1u);
  EXPECT_EQ(counters.failovers, fault_case.with_fallback ? 1u : 0u);
  // Deadlines never trigger a retry, so the faulted dial stays the only
  // one.
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(rig.dials(), 1u);

  // Clean drain regardless of the injected fault.
  rig.server->stop();
  EXPECT_EQ(rig.server->counters().sessions, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, RemoteShardFaultMatrix,
    testing::Values(
        FaultCase{"RequestDropped", cn::Fault::drop(), cn::Fault::none(),
                  false},
        FaultCase{"RequestDroppedFailover", cn::Fault::drop(),
                  cn::Fault::none(), true},
        FaultCase{"RequestTruncated", cn::Fault::truncate(9),
                  cn::Fault::none(), false},
        FaultCase{"RequestTruncatedFailover", cn::Fault::truncate(9),
                  cn::Fault::none(), true},
        FaultCase{"ResponseDropped", cn::Fault::none(), cn::Fault::drop(),
                  false},
        FaultCase{"ResponseDroppedFailover", cn::Fault::none(),
                  cn::Fault::drop(), true},
        FaultCase{"ResponseTruncated", cn::Fault::none(),
                  cn::Fault::truncate(10), false},
        FaultCase{"ResponseTruncatedFailover", cn::Fault::none(),
                  cn::Fault::truncate(10), true},
        FaultCase{"ResponseDelayed", cn::Fault::none(), cn::Fault::delay(1),
                  false},
        FaultCase{"ResponseDelayedFailover", cn::Fault::none(),
                  cn::Fault::delay(1), true}),
    [](const testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name);
    });

// ---------------- reconnect, stale frames, garbage bytes ----------------

TEST(RemoteShard, DeadConnectionIsRedialedAndTheRequestResent) {
  // Dial 1's response direction dies before delivering a byte; dial 2 is
  // clean. The client must notice the disconnect, reconnect, resend, and
  // serve the request remotely — no fallback involved.
  ServerRig rig(crude(),
                {{cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.fallback = crude();  // must NOT be used: reconnect wins first
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  EXPECT_DOUBLE_EQ(client.predict(block), crude()->predict(block));

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(counters.wire_errors, 1u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(counters.failovers, 0u);
  EXPECT_EQ(counters.timeouts, 0u);
  EXPECT_EQ(rig.dials(), 2u);
  // Both sessions processed the (re)sent request; both drained.
  rig.server->stop();
  const auto server_counters = rig.server->counters();
  EXPECT_EQ(server_counters.sessions, 2u);
  EXPECT_EQ(server_counters.requests, 2u);
}

TEST(RemoteShard, GarbageBytesFromThePeerTriggerReconnectNotCrash) {
  // Dial 1 hands the client a peer that speaks garbage; dial 2 reaches a
  // real server. The malformed stream must surface as a typed wire error
  // internally and be healed by the retry.
  ServerRig rig(crude());
  auto real_connector = rig.connector();
  auto dials = std::make_shared<std::size_t>(0);
  cs::RemoteShardClient::Connector connector =
      [real_connector, dials]() -> std::unique_ptr<cn::Transport> {
    if ((*dials)++ == 0) {
      auto [client_end, garbage_end] = cn::make_sim_pair();
      const std::vector<std::uint8_t> garbage = {10, 0, 0, 0, 99, 1, 2, 3,
                                                 4,  5, 6, 7, 8,  9};
      garbage_end->send(garbage);  // bad version byte: provably malformed
      return std::move(client_end);
    }
    return real_connector();
  };

  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(connector, options);
  const auto block = test_blocks(1)[0];
  EXPECT_DOUBLE_EQ(client.predict(block), crude()->predict(block));

  const auto counters = client.counters();
  EXPECT_EQ(counters.wire_errors, 1u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(*dials, 2u);
}

TEST(RemoteShard, ExhaustedAttemptsWithoutFallbackAreATypedError) {
  // Every dial dies instantly and there is no fallback: after
  // max_attempts tries the typed disconnect surfaces to the caller.
  ServerRig rig(crude(),
                {{cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})},
                 {cn::FaultSchedule{},
                  cn::FaultSchedule({cn::Fault::disconnect_after(0)})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.max_attempts = 2;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  EXPECT_THROW(client.predict(block), cn::DisconnectedError);
  const auto counters = client.counters();
  EXPECT_EQ(counters.wire_errors, 2u);
  EXPECT_EQ(counters.reconnects, 1u);
  EXPECT_EQ(rig.dials(), 2u);
}

TEST(RemoteShard, DuplicatedResponseIsDiscardedAsStaleOnTheNextRequest) {
  // The first response is delivered twice; the copy must be discarded
  // (counted stale) when the second request polls the stream, and both
  // requests must still return correct bits.
  ServerRig rig(crude(), {{cn::FaultSchedule{},
                           cn::FaultSchedule({cn::Fault::duplicate()})}});
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  const cs::RemoteShardClient client(rig.connector(), options);

  const auto blocks = test_blocks(2);
  EXPECT_DOUBLE_EQ(client.predict(blocks[0]), crude()->predict(blocks[0]));
  EXPECT_DOUBLE_EQ(client.predict(blocks[1]), crude()->predict(blocks[1]));

  const auto counters = client.counters();
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 2u);
  EXPECT_EQ(counters.stale_frames, 1u);
  EXPECT_EQ(counters.reconnects, 0u);
  EXPECT_EQ(rig.dials(), 1u);
}

TEST(RemoteShard, SeededFaultSweepIsDeterministicAndAlwaysCorrect) {
  // A randomized-but-seeded storm of response faults, run twice: the
  // failure-mode counters must be identical run-to-run (the schedule, not
  // thread timing, decides every outcome), and with remote == fallback
  // model every prediction is bit-correct no matter what the network did.
  const auto blocks = test_blocks(10);
  std::vector<double> expected(blocks.size());
  crude()->predict_batch(std::span<const cx::BasicBlock>(blocks),
                         std::span<double>(expected));

  const auto run = [&blocks, &expected](std::uint64_t seed) {
    std::vector<std::pair<cn::FaultSchedule, cn::FaultSchedule>> plans;
    for (std::size_t dial = 0; dial < 8; ++dial) {
      plans.emplace_back(
          cn::FaultSchedule{},
          cn::FaultSchedule::seeded(seed + dial, 4, /*fault_rate=*/0.4));
    }
    ServerRig rig(crude(), std::move(plans));
    cs::RemoteShardOptions options;
    options.request_timeout_ns = kFaultTimeoutNs;
    options.fallback = crude();
    const cs::RemoteShardClient client(rig.connector(), options);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(client.predict(blocks[i])),
                std::bit_cast<std::uint64_t>(expected[i]))
          << "block " << i;
    }
    rig.server->stop();  // must drain cleanly whatever the storm did
    return client.counters();
  };

  const auto first = run(2024);
  const auto second = run(2024);
  EXPECT_EQ(first.requests, second.requests);
  EXPECT_EQ(first.responses, second.responses);
  EXPECT_EQ(first.timeouts, second.timeouts);
  EXPECT_EQ(first.reconnects, second.reconnects);
  EXPECT_EQ(first.failovers, second.failovers);
  EXPECT_EQ(first.stale_frames, second.stale_frames);
  EXPECT_EQ(first.wire_errors, second.wire_errors);
  EXPECT_EQ(first.requests, 10u);
  EXPECT_EQ(first.responses + first.failovers, 10u);
}

// ---------------- cancellation ----------------

TEST(RemoteShard, CancelFailsInFlightRequestWithoutFailover) {
  auto gate = std::make_shared<GateModel>();
  ServerRig rig(gate);
  cs::RemoteShardOptions options;
  options.request_timeout_ns = kMustSucceedNs;
  options.fallback = crude();  // must NOT be consulted on cancel
  cs::RemoteShardClient client(rig.connector(), options);

  const auto block = test_blocks(1)[0];
  auto in_flight = std::async(std::launch::async, [&client, &block] {
    client.predict(block);
  });
  // The server session is pinned inside the model: the request is in
  // flight on the wire. Cancel from this thread.
  gate->await_entered();
  client.cancel();
  EXPECT_THROW(in_flight.get(), cn::CancelledError);
  EXPECT_EQ(client.counters().failovers, 0u);

  // Every later request fails the same way, before touching the network.
  EXPECT_THROW(client.predict(block), cn::CancelledError);

  // Release the server; its reply hits a dead transport and the session
  // drains cleanly.
  gate->open();
  rig.server->stop();
  EXPECT_EQ(rig.server->counters().sessions, 1u);
}

// ---------------- protocol-level server behavior ----------------

TEST(RemoteShardServer, BadBlockTextFailsTheRequestNotTheSession) {
  cs::RemoteShardServer server(crude());
  auto [client_end, server_end] = cn::make_sim_pair();
  server.start(std::move(server_end));

  cn::FrameAssembler rx;
  std::uint8_t buf[512];
  const auto exchange = [&](const cn::Frame& frame) {
    client_end->send(cn::encode_frame(frame));
    for (;;) {
      if (auto reply = rx.poll()) return *std::move(reply);
      const std::size_t n = client_end->recv(std::span<std::uint8_t>(buf),
                                             kMustSucceedNs);
      COMET_CHECK(n > 0);
      rx.feed(std::span<const std::uint8_t>(buf, n));
    }
  };

  // An unparseable block: the request fails typed, the session survives.
  cn::Frame bad;
  bad.type = cn::MessageType::kPredictRequest;
  bad.request_id = 7;
  bad.payload = cn::encode_predict_request({{"frobnicate zzz, qqq"}});
  const auto error_reply = exchange(bad);
  EXPECT_EQ(error_reply.type, cn::MessageType::kError);
  EXPECT_EQ(error_reply.request_id, 7u);
  EXPECT_EQ(cn::decode_error(error_reply.payload).code,
            cn::ErrorBody::kParseError);

  // A response type flowing client → server is off-protocol.
  cn::Frame off_protocol;
  off_protocol.type = cn::MessageType::kPredictResponse;
  off_protocol.request_id = 8;
  off_protocol.payload = cn::encode_predict_response({{1.0}});
  const auto off_reply = exchange(off_protocol);
  EXPECT_EQ(off_reply.type, cn::MessageType::kError);
  EXPECT_EQ(cn::decode_error(off_reply.payload).code,
            cn::ErrorBody::kBadRequest);

  // The same session still serves a good request afterwards.
  cn::Frame good;
  good.type = cn::MessageType::kPredictRequest;
  good.request_id = 9;
  good.payload =
      cn::encode_predict_request({{test_blocks(1)[0].to_string()}});
  const auto good_reply = exchange(good);
  EXPECT_EQ(good_reply.type, cn::MessageType::kPredictResponse);
  EXPECT_EQ(good_reply.request_id, 9u);
  EXPECT_EQ(cn::decode_predict_response(good_reply.payload).values.size(),
            1u);

  // kShutdown ends the session gracefully: the client sees end of stream.
  cn::Frame shutdown;
  shutdown.type = cn::MessageType::kShutdown;
  client_end->send(cn::encode_frame(shutdown));
  EXPECT_EQ(client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs),
            0u);

  server.stop();
  const auto counters = server.counters();
  EXPECT_EQ(counters.sessions, 1u);
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.responses, 1u);
  EXPECT_EQ(counters.errors, 2u);
  // Only the good request reached the model: the ledger holds one block.
  EXPECT_EQ(server.stats().requested, 1u);
  EXPECT_EQ(server.stats().evaluated, 1u);
}

TEST(RemoteShardServer, GarbageBytesEndTheSessionWithABestEffortError) {
  cs::RemoteShardServer server(crude());
  auto [client_end, server_end] = cn::make_sim_pair();
  server.start(std::move(server_end));

  // Not a frame at all (bad version byte at offset 4).
  client_end->send(std::vector<std::uint8_t>{1, 0, 0, 0, 77, 1, 0, 0});

  // The server reports kBadRequest, then closes the session.
  cn::FrameAssembler rx;
  std::uint8_t buf[512];
  std::optional<cn::Frame> reply;
  for (;;) {
    if ((reply = rx.poll())) break;
    const std::size_t n =
        client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs);
    ASSERT_GT(n, 0u);
    rx.feed(std::span<const std::uint8_t>(buf, n));
  }
  EXPECT_EQ(reply->type, cn::MessageType::kError);
  EXPECT_EQ(cn::decode_error(reply->payload).code,
            cn::ErrorBody::kBadRequest);
  EXPECT_EQ(client_end->recv(std::span<std::uint8_t>(buf), kMustSucceedNs),
            0u);

  server.stop();
  EXPECT_EQ(server.counters().errors, 1u);
  EXPECT_EQ(server.counters().responses, 0u);
}
