#!/usr/bin/env python3
"""Fixture tests for scripts/comet_lint.py (run via ctest target `test_lint`).

Every rule is proven in both directions: a known-bad snippet must be
flagged at the right line, and the documented suppression comment
(`// comet-lint: allow(<rule>)`, same line or the line above) must silence
exactly that finding. The scrubber (comments / string literals) and the
statement-position logic of unchecked-io get their own negative fixtures —
these are the cases a naive grep gets wrong.
"""

import os
import subprocess
import sys
import tempfile
import unittest

SCRIPTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                           "scripts")
sys.path.insert(0, SCRIPTS_DIR)

import comet_lint  # noqa: E402


def rules_hit(relpath, text):
    return [(v.rule, v.line) for v in comet_lint.lint_text(relpath, text)]


class RuleFiresAndSuppresses(unittest.TestCase):
    """Each rule: the bad snippet fires; the suppressed variant is clean."""

    def check(self, relpath, bad, rule, line=1):
        self.assertIn((rule, line), rules_hit(relpath, bad),
                      f"{rule} must fire on known-bad fixture")
        lines = bad.split("\n")
        idx = line - 1
        same_line = list(lines)
        same_line[idx] += f"  // comet-lint: allow({rule})"
        self.assertNotIn(
            (rule, line), rules_hit(relpath, "\n".join(same_line)),
            f"{rule} must honour a same-line suppression")
        above = list(lines)
        above.insert(idx, f"// comet-lint: allow({rule})")
        self.assertNotIn(
            (rule, line + 1), rules_hit(relpath, "\n".join(above)),
            f"{rule} must honour a previous-line suppression")

    def test_libm_in_nn(self):
        self.check("src/nn/kernel.cpp", "float y = std::tanh(x);",
                   "libm-in-nn")
        self.check("src/nn/kernel.cpp", "float y = expf(x);", "libm-in-nn")

    def test_raw_sync(self):
        self.check("src/serve/foo.h", "std::mutex mu;", "raw-sync")
        self.check("src/serve/foo.h", "std::condition_variable cv;",
                   "raw-sync")
        self.check("src/serve/foo.cpp",
                   "std::lock_guard<std::mutex> lock(mu);", "raw-sync")

    def test_unchecked_io(self):
        self.check("src/cost/model.cpp",
                   "std::fwrite(buf, 1, n, fp);", "unchecked-io")
        self.check("src/cost/model.cpp",
                   "fread(buf, 1, n, fp);", "unchecked-io")
        self.check("src/cost/model.cpp",
                   "(void)fwrite(buf, 1, n, fp);", "unchecked-io")

    def test_raw_random(self):
        self.check("src/perturb/p.cpp", "int r = rand();", "raw-random")
        self.check("src/perturb/p.cpp", "std::random_device rd;",
                   "raw-random")
        self.check("src/perturb/p.cpp", "std::mt19937 gen(42);", "raw-random")

    def test_stdout_in_library(self):
        self.check("src/core/report.cpp", 'std::cout << "x";',
                   "stdout-in-library")
        self.check("src/core/report.cpp", 'printf("%d", x);',
                   "stdout-in-library")

    def test_include_guard(self):
        self.check("src/core/new_header.h",
                   "namespace comet {}", "include-guard")

    def test_using_namespace(self):
        self.check("src/util/helpers.cpp", "using namespace std;",
                   "using-namespace")

    def test_raw_assert(self):
        self.check("src/x86/parser.cpp", "assert(idx < ops.size());",
                   "raw-assert")
        self.check("src/cost/model.cpp", "if (bad) std::abort();",
                   "raw-assert")
        self.check("src/cost/model.cpp", "if (bad) abort();", "raw-assert")

    def test_unbounded_wait(self):
        self.check("src/serve/pool.cpp",
                   "while (pending != 0) cv_.wait(lock);", "unbounded-wait")
        self.check("src/net/chan.cpp",
                   "const size_t n = transport.recv(buf, kNoTimeout);",
                   "unbounded-wait")

    def test_raw_clock(self):
        self.check("src/serve/foo.cpp",
                   "auto t = std::chrono::system_clock::now();", "raw-clock")
        self.check("src/serve/foo.cpp",
                   "using C = std::chrono::high_resolution_clock;",
                   "raw-clock")
        self.check("src/serve/foo.h",
                   "#pragma once\nauto t = system_clock::now();",
                   "raw-clock", line=2)


class RuleScoping(unittest.TestCase):
    """Rules only apply where the invariant lives."""

    def test_libm_fine_outside_nn(self):
        self.assertEqual(
            [], rules_hit("src/cost/model.cpp", "double y = std::exp(x);"))

    def test_sync_h_itself_may_hold_std_mutex(self):
        self.assertEqual(
            [], rules_hit("src/util/sync.h",
                          "#pragma once\nstd::mutex mu_;"))

    def test_rng_impl_may_use_std_random(self):
        self.assertEqual(
            [], rules_hit("src/util/rng.cpp", "std::mt19937 gen_;"))
        self.assertEqual(
            [], rules_hit("src/util/rng.h",
                          "#pragma once\nstd::mt19937 gen_;"))

    def test_tests_and_benches_out_of_scope(self):
        self.assertEqual(
            [], rules_hit("tests/test_foo.cpp",
                          'std::mutex mu; std::cout << "ok";'))
        self.assertEqual(
            [], rules_hit("bench/bench_foo.cpp",
                          "auto t = std::chrono::system_clock::now();"))

    def test_unbounded_wait_only_in_serve_and_net(self):
        # Blocking helpers elsewhere (cost-layer joins, util internals) are
        # out of this rule's scope.
        self.assertEqual(
            [], rules_hit("src/cost/model.cpp",
                          "while (done != posted) join.cv.wait(lock);"))
        self.assertEqual(
            [], rules_hit("src/util/sync.h",
                          "#pragma once\n"
                          "void wait(MutexLock& lock) { cv_.wait(lock.lock_); }"))

    def test_obs_clock_seam_is_exempt_from_raw_clock(self):
        # The seam itself wraps the real clock; steady_clock is fine
        # anywhere, and clock.h may name the others in its implementation.
        self.assertEqual(
            [], rules_hit("src/obs/clock.h",
                          "#pragma once\nauto t = "
                          "std::chrono::high_resolution_clock::now();"))
        self.assertEqual(
            [], rules_hit("src/serve/foo.h",
                          "#pragma once\nauto t = "
                          "std::chrono::steady_clock::now();"))


class ScrubberNegatives(unittest.TestCase):
    """Mentions in comments and strings must not fire."""

    def test_comment_mention(self):
        self.assertEqual(
            [], rules_hit("src/nn/lstm.h",
                          "#pragma once\nfloat tanh_c;  // tanh(c)"))
        self.assertEqual(
            [], rules_hit("src/serve/pool.h",
                          "#pragma once\n// replaces std::mutex here"))
        self.assertEqual(
            [], rules_hit("src/serve/pool.h",
                          "#pragma once\n/* std::mutex in a\n"
                          "   block comment */"))

    def test_string_mention(self):
        self.assertEqual(
            [], rules_hit("src/core/doc.cpp",
                          'const char* kDoc = "call std::exp or rand()";'))

    def test_identifier_substrings(self):
        # fast_exp / snprintf / fprintf must not match exp( / printf(.
        self.assertEqual(
            [], rules_hit("src/nn/act.cpp", "float y = fast_exp(x);"))
        self.assertEqual(
            [], rules_hit("src/util/fmt.cpp",
                          'std::snprintf(buf, n, "%d", v);\n'
                          "std::fprintf(stderr, \"x\");"))

    def test_raw_assert_spares_static_assert_and_contract_macros(self):
        ok = ("static_assert(sizeof(x) == 8, \"layout\");\n"
              "COMET_CHECK(idx < ops.size());\n"
              "COMET_DCHECK(t >= 0);\n"
              "void my_assert_helper(int);")
        self.assertEqual([], rules_hit("src/x86/parser.cpp", ok))


class UncheckedIoPositioning(unittest.TestCase):
    """Only result-discarding statement-position calls are violations."""

    def test_checked_forms_pass(self):
        ok = (
            "bool ok = std::fwrite(d, s, 1, fp) == 1;\n"
            "ok = ok && std::fwrite(m.data(), 4, n, fp) == n;\n"
            "if (std::fread(&magic, 4, 1, fp) != 1) return false;\n"
            "const size_t got = fread(buf, 1, n, fp);"
        )
        self.assertEqual([], rules_hit("src/cost/ckpt.cpp", ok))

    def test_continuation_line_not_statement_position(self):
        ok = ("ok = ok &&\n"
              "     std::fwrite(d, s, 1, fp) == 1;")
        self.assertEqual([], rules_hit("src/cost/ckpt.cpp", ok))

    def test_multiline_condition_not_flagged(self):
        ok = ("if (a != b ||\n"
              "    std::fread(d, s, 1, fp) != 1) {\n"
              "  return false;\n"
              "}")
        self.assertEqual([], rules_hit("src/cost/ckpt.cpp", ok))


class UnboundedWaitBounds(unittest.TestCase):
    """A bound anywhere on the statement exempts it; helpers don't fire."""

    def test_timed_variants_pass(self):
        ok = (
            "cv_.wait_for_ns(lock, deadline - now);\n"
            "const size_t n = transport.recv(buf, timeout_ns);\n"
            "const size_t m = transport.recv(buf, deadline - now);"
        )
        self.assertEqual([], rules_hit("src/serve/pool.cpp", ok))

    def test_bound_on_continuation_line_counts(self):
        ok = ("const std::size_t n =\n"
              "    transport->recv(std::span<std::uint8_t>(buf),\n"
              "                    deadline - now);")
        self.assertEqual([], rules_hit("src/serve/pool.cpp", ok))

    def test_declaration_with_timeout_parameter_passes(self):
        ok = ("#pragma once\n"
              "virtual std::size_t recv(std::span<std::uint8_t> buf,\n"
              "                         std::uint64_t timeout_ns) = 0;")
        self.assertEqual([], rules_hit("src/net/transport2.h", ok))

    def test_zero_arg_wait_is_a_helper_call(self):
        # join.wait() is a named latch; its blocking loop is linted where
        # it is defined.
        self.assertEqual([], rules_hit("src/serve/pool.cpp", "join.wait();"))

    def test_finding_anchors_at_statement_start(self):
        bad = ("const std::size_t n =\n"
               "    transport.recv(buf, kNoTimeout);")
        self.assertEqual([("unbounded-wait", 1)],
                         rules_hit("src/serve/pool.cpp", bad))
        # ... so the documented previous-line suppression works on
        # multi-line statements too.
        suppressed = "// comet-lint: allow(unbounded-wait)\n" + bad
        self.assertEqual([], rules_hit("src/serve/pool.cpp", suppressed))


class SuppressionSyntax(unittest.TestCase):
    def test_multi_rule_suppression(self):
        text = ("std::mutex mu;  "
                "// comet-lint: allow(raw-sync, stdout-in-library)")
        self.assertEqual([], rules_hit("src/serve/x.cpp", text))

    def test_wrong_rule_does_not_suppress(self):
        text = "std::mutex mu;  // comet-lint: allow(unchecked-io)"
        self.assertEqual([("raw-sync", 1)], rules_hit("src/serve/x.cpp", text))

    def test_suppression_does_not_leak_two_lines_down(self):
        text = ("// comet-lint: allow(raw-sync)\n"
                "std::mutex a;\n"
                "std::mutex b;")
        self.assertEqual([("raw-sync", 3)], rules_hit("src/serve/x.cpp", text))


class CommandLine(unittest.TestCase):
    """The CLI (what ctest and CI invoke) reports and exits correctly."""

    def run_lint(self, root, paths):
        return subprocess.run(
            [sys.executable,
             os.path.join(SCRIPTS_DIR, "comet_lint.py"), "--root", root]
            + paths,
            capture_output=True, text=True)

    def test_bad_tree_fails_with_findings(self):
        with tempfile.TemporaryDirectory() as root:
            bad_dir = os.path.join(root, "src", "serve")
            os.makedirs(bad_dir)
            with open(os.path.join(bad_dir, "bad.h"), "w") as f:
                f.write("#pragma once\nstd::mutex mu_;\n")
            result = self.run_lint(root, ["src"])
            self.assertEqual(1, result.returncode)
            self.assertIn("src/serve/bad.h:2: [raw-sync]", result.stdout)

    def test_clean_tree_passes(self):
        with tempfile.TemporaryDirectory() as root:
            clean_dir = os.path.join(root, "src", "core")
            os.makedirs(clean_dir)
            with open(os.path.join(clean_dir, "ok.h"), "w") as f:
                f.write("#pragma once\nnamespace comet {}\n")
            result = self.run_lint(root, ["src"])
            self.assertEqual(0, result.returncode, result.stdout)
            self.assertIn("clean", result.stdout)

    def test_list_rules_names_every_rule(self):
        result = subprocess.run(
            [sys.executable, os.path.join(SCRIPTS_DIR, "comet_lint.py"),
             "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(0, result.returncode)
        for rule in ("libm-in-nn", "raw-sync", "unchecked-io", "raw-random",
                     "stdout-in-library", "include-guard", "using-namespace",
                     "raw-clock", "raw-assert", "unbounded-wait"):
            self.assertIn(rule, result.stdout)


if __name__ == "__main__":
    unittest.main()
