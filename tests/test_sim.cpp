// Tests for the pipeline simulator and the simulation-based cost models
// (hardware oracle, uiCA stand-in, MCA-like static model).
#include <gtest/gtest.h>

#include "sim/models.h"
#include "sim/pipeline.h"
#include "x86/parser.h"

namespace cs = comet::sim;
namespace cc = comet::cost;
namespace cx = comet::x86;

namespace {
cx::BasicBlock bb(const char* text) { return cx::parse_block(text); }
const cc::MicroArch HSW = cc::MicroArch::Haswell;
const cc::MicroArch SKL = cc::MicroArch::Skylake;
}  // namespace

TEST(Pipeline, EmptyBlockIsZero) {
  EXPECT_DOUBLE_EQ(cs::simulate_throughput(cx::BasicBlock{}, HSW), 0.0);
}

TEST(Pipeline, Deterministic) {
  const auto block = bb("add rcx, rax\nmov rdx, rcx\npop rbx");
  EXPECT_DOUBLE_EQ(cs::simulate_throughput(block, HSW),
                   cs::simulate_throughput(block, HSW));
}

TEST(Pipeline, IndependentMovsAreIssueBound) {
  // 4 independent moves on a 4-wide machine: ~1 cycle/iteration.
  const auto block = bb(R"(
    mov rax, 1
    mov rcx, 2
    mov rsi, 3
    mov rdi, 4
  )");
  const double tp = cs::simulate_throughput(block, HSW);
  EXPECT_NEAR(tp, 1.0, 0.35);
}

TEST(Pipeline, LoopCarriedChainIsLatencyBound) {
  // add rax, rax feeds itself across iterations: >= 1 cycle each, and a
  // dependent 3-instruction chain runs ~3 cycles/iter.
  const auto chain = bb(R"(
    add rax, rcx
    add rax, rsi
    add rax, rdi
  )");
  const double tp = cs::simulate_throughput(chain, HSW);
  // rax chain is loop-carried: 3 dependent adds ~ 3 cycles.
  EXPECT_GT(tp, 2.0);
  EXPECT_LT(tp, 4.5);
}

TEST(Pipeline, DivDominatesThroughput) {
  const auto block = bb("div rcx\nmov rsi, 3");
  const double tp = cs::simulate_throughput(block, HSW);
  EXPECT_GT(tp, 15.0);
}

TEST(Pipeline, ZeroIdiomBreaksDependency) {
  // Without idiom recognition the xor extends the rax chain; with it the
  // chain is cut every iteration.
  const auto block = bb(R"(
    xor eax, eax
    add rax, rcx
    add rax, rsi
  )");
  cs::SimOptions with;
  cs::SimOptions without;
  without.zero_idiom = false;
  EXPECT_LE(cs::simulate_throughput(block, HSW, with),
            cs::simulate_throughput(block, HSW, without));
}

TEST(Pipeline, IsZeroIdiomDetection) {
  EXPECT_TRUE(cs::is_zero_idiom(cx::parse_instruction("xor eax, eax")));
  EXPECT_TRUE(cs::is_zero_idiom(cx::parse_instruction("pxor xmm1, xmm1")));
  EXPECT_TRUE(
      cs::is_zero_idiom(cx::parse_instruction("vxorps xmm0, xmm5, xmm5")));
  EXPECT_FALSE(cs::is_zero_idiom(cx::parse_instruction("xor eax, ecx")));
  EXPECT_FALSE(
      cs::is_zero_idiom(cx::parse_instruction("vxorps xmm0, xmm5, xmm6")));
  EXPECT_FALSE(cs::is_zero_idiom(cx::parse_instruction("add rax, rax")));
}

TEST(Pipeline, UopCounts) {
  EXPECT_EQ(cs::uop_count(cx::parse_instruction("add rax, rcx")), 1);
  EXPECT_EQ(cs::uop_count(cx::parse_instruction("add rax, qword ptr [rdi]")),
            2);
  EXPECT_EQ(
      cs::uop_count(cx::parse_instruction("mov qword ptr [rdi], rax")), 3);
  EXPECT_EQ(cs::uop_count(cx::parse_instruction("push rbx")), 3);
}

TEST(Pipeline, StoreHeavyBlockBoundByStorePort) {
  // Two stores per iteration, one store-data port: >= 2 cycles.
  const auto block = bb(R"(
    mov qword ptr [rdi + 8], rax
    mov qword ptr [rdi + 16], rcx
  )");
  EXPECT_GE(cs::simulate_throughput(block, HSW), 1.8);
}

TEST(Pipeline, MoreIterationsConvergeToSameSlope) {
  const auto block = bb("add rcx, rax\nmov rdx, rcx\npop rbx");
  cs::SimOptions a, b;
  a.iterations = 32;
  b.iterations = 128;
  EXPECT_NEAR(cs::simulate_throughput(block, HSW, a),
              cs::simulate_throughput(block, HSW, b), 0.2);
}

// ---------- models ----------

TEST(Models, MotivatingBlockThroughputIsPlausible) {
  // Paper: Ithemal predicts 1.3 cycles for Listing 1(a) on Haswell.
  const auto block = bb("add rcx, rax\nmov rdx, rcx\npop rbx");
  const cs::HardwareOracle oracle(HSW);
  const double tp = oracle.predict(block);
  EXPECT_GT(tp, 0.5);
  EXPECT_LT(tp, 3.5);
}

TEST(Models, UiCATracksOracleClosely) {
  const cs::HardwareOracle oracle(HSW);
  const cs::UiCASimModel uica(HSW);
  for (const char* text : {
           "add rcx, rax\nmov rdx, rcx\npop rbx",
           "mov rax, 1\nmov rcx, 2\nmov rsi, 3\nmov rdi, 4",
           "imul rax, r15\nadd rax, 7\nshr rax, 3",
           "addss xmm0, xmm1\nmulss xmm2, xmm0\nmovss xmm3, xmm2",
       }) {
    const auto block = bb(text);
    const double o = oracle.predict(block);
    const double u = uica.predict(block);
    EXPECT_LT(std::abs(o - u) / o, 0.35) << text << " oracle=" << o
                                         << " uica=" << u;
  }
}

TEST(Models, McaIgnoresLoopCarriedDeps) {
  // Latency-bound chain: MCA-like static model underestimates.
  const auto chain = bb(R"(
    imul rax, rcx
    imul rax, rsi
  )");
  const cs::HardwareOracle oracle(HSW);
  const cs::McaLikeModel mca(HSW);
  EXPECT_LT(mca.predict(chain), oracle.predict(chain));
}

TEST(Models, MeasuredThroughputIsDeterministicAndNearOracle) {
  const auto block = bb("add rcx, rax\nmov rdx, rcx\npop rbx");
  const double m1 = cs::measured_throughput(block, HSW);
  const double m2 = cs::measured_throughput(block, HSW);
  EXPECT_DOUBLE_EQ(m1, m2);
  const cs::HardwareOracle oracle(HSW);
  EXPECT_NEAR(m1, oracle.predict(block), oracle.predict(block) * 0.025);
}

TEST(Models, MeasurementNoiseDiffersAcrossBlocks) {
  const auto b1 = bb("add rcx, rax\nmov rdx, rcx");
  const auto b2 = bb("add rcx, rax\nmov rsi, rcx");
  const cs::HardwareOracle oracle(HSW);
  const double r1 = cs::measured_throughput(b1, HSW) / oracle.predict(b1);
  const double r2 = cs::measured_throughput(b2, HSW) / oracle.predict(b2);
  EXPECT_NE(r1, r2);
}

TEST(Models, SkylakeFasterOnFpHeavyBlocks) {
  const auto block = bb(R"(
    divss xmm0, xmm1
    addss xmm2, xmm0
    mulss xmm3, xmm2
  )");
  const cs::HardwareOracle hsw(HSW);
  const cs::HardwareOracle skl(SKL);
  EXPECT_LT(skl.predict(block), hsw.predict(block));
}

TEST(Models, Names) {
  EXPECT_EQ(cs::HardwareOracle(HSW).name(), "oracle-HSW");
  EXPECT_EQ(cs::UiCASimModel(SKL).name(), "uica-SKL");
  EXPECT_EQ(cs::McaLikeModel(HSW).name(), "mca-HSW");
}

// Parameterized property: for a corpus of blocks, throughput is bounded
// below by the issue-width bound (n_uops / 4, slackened) and is finite.
class SimBounds : public ::testing::TestWithParam<const char*> {};

TEST_P(SimBounds, ThroughputRespectsIssueBound) {
  const auto block = bb(GetParam());
  int uops = 0;
  for (const auto& inst : block.instructions) uops += cs::uop_count(inst);
  const double tp = cs::simulate_throughput(block, HSW);
  EXPECT_GE(tp, uops / 4.0 * 0.7);
  EXPECT_LT(tp, 1000.0);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SimBounds,
    ::testing::Values("add rcx, rax\nmov rdx, rcx\npop rbx",
                      "mov rax, 1\nmov rcx, 2\nmov rsi, 3\nmov rdi, 4",
                      "div rcx\nmov rsi, 3",
                      "mov qword ptr [rdi + 8], rax\nmov rcx, qword ptr [rdi + 8]",
                      "vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
                      "push rbx\npop rcx\npush rdx\npop rsi"));
