// Tests for the concurrent explanation-serving subsystem (src/serve/):
// sharded-pool result parity with a single model, AsyncBroker FIFO parity,
// completion-order scheduler correctness under 8 worker threads,
// bounded-queue backpressure, golden parity of the widened-batch
// (fuse_arm_pulls) and async-pipelined engine modes, and the concurrency
// determinism rule: served explanations are bit-identical to sequentially
// computed ones because every request owns its RNG and broker.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "bhive/dataset.h"
#include "bhive/paper_blocks.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/parser.h"
#include "serve/async_broker.h"
#include "serve/isa_servers.h"
#include "serve/sharded_cost_model.h"
#include "serve/sharded_pool.h"
#include "sim/models.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace cg = comet::graph;
namespace ck = comet::cost;
namespace cs = comet::serve;
namespace cx = comet::x86;
namespace rv = comet::riscv;

namespace {

// Light search budget so the concurrent tests stay fast.
cc::CometOptions light_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 150;
  opt.max_pulls_per_level = 40;
  opt.batch_size = 8;
  opt.final_precision_samples = 60;
  opt.seed = seed;
  return opt;
}

// The golden block/options of test_anchor_engine.cpp, reused so the
// widened-batch mode is checked against the same recorded values.
cx::BasicBlock golden_block() {
  return cx::parse_block(R"(
    mov rax, 5
    div rcx
    add rsi, rdi
    mov r8, r9
    sub r10, r11
  )");
}

cc::CometOptions golden_options() {
  cc::CometOptions opt;
  opt.coverage_samples = 300;
  opt.final_precision_samples = 120;
  opt.seed = 11;
  opt.epsilon = 1.0;
  return opt;
}

class DivOnlyModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    for (const auto& inst : block.instructions) {
      if (inst.opcode == cx::Opcode::DIV || inst.opcode == cx::Opcode::IDIV) {
        return 20.0;
      }
    }
    return 1.0;
  }
  std::string name() const override { return "div-only"; }
};

// A model whose queries block until the test opens the gate; used to pin
// the server's single worker so backpressure on the admission queue can be
// observed deterministically.
class GateModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    wait_open();
    return 1.0;
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    wait_open();
    for (std::size_t i = 0; i < blocks.size(); ++i) out[i] = 1.0;
  }
  std::string name() const override { return "gate"; }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until some worker has entered a query (i.e. is pinned).
  void await_entered() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

 private:
  void wait_open() const {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  bool open_ = false;
};

void expect_identical(const cc::Explanation& a, const cc::Explanation& b) {
  EXPECT_EQ(a.features, b.features)
      << a.features.to_string() << " vs " << b.features.to_string();
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.met_threshold, b.met_threshold);
  EXPECT_EQ(a.model_queries, b.model_queries);
}

std::vector<cx::BasicBlock> test_blocks(std::size_t n) {
  cb::DatasetOptions opt;
  opt.size = n;
  opt.seed = 77;
  const cb::Dataset dataset = cb::generate_dataset(opt);
  std::vector<cx::BasicBlock> blocks;
  for (const auto& labeled : dataset.blocks()) {
    blocks.push_back(labeled.block);
  }
  return blocks;
}

}  // namespace

// ---------------- QueryStats: merge and formatting ----------------

TEST(QueryStats, MergeAndFormat) {
  ck::QueryStats a;
  a.requested = 10;
  a.evaluated = 6;
  a.cache_hits = 4;
  a.batch_calls = 2;
  a.single_calls = 1;
  ck::QueryStats b;
  b.requested = 5;
  b.evaluated = 5;
  b.batch_calls = 1;

  ck::QueryStats merged = a + b;
  merged += b;
  EXPECT_EQ(merged.requested, 20u);
  EXPECT_EQ(merged.evaluated, 16u);
  EXPECT_EQ(merged.cache_hits, 4u);
  EXPECT_EQ(merged.batch_calls, 4u);
  EXPECT_EQ(merged.single_calls, 1u);
  EXPECT_EQ(a + b, b + a);
  EXPECT_NE(a, b);

  const std::string s = merged.to_string();
  EXPECT_NE(s.find("requested=20"), std::string::npos) << s;
  EXPECT_NE(s.find("evaluated=16"), std::string::npos) << s;
  EXPECT_NE(s.find("cache_hits=4"), std::string::npos) << s;
  EXPECT_NE(s.find("batch_calls=4"), std::string::npos) << s;
}

// ---------------- QueryBroker: pool-friendliness ----------------

TEST(QueryBrokerPool, PointerConstructionAndMoveKeepCacheAndStats) {
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  ck::QueryBroker<cx::BasicBlock, ck::CostModel> broker(&model);
  const auto block = golden_block();
  const double direct = model.predict(block);
  EXPECT_DOUBLE_EQ(broker.predict_one(block), direct);

  // Move into a container slot (the pool pattern); cache and ledger ride
  // along.
  std::vector<ck::QueryBroker<cx::BasicBlock, ck::CostModel>> pool;
  pool.push_back(std::move(broker));
  EXPECT_DOUBLE_EQ(pool[0].predict_one(block), direct);
  EXPECT_EQ(pool[0].stats().requested, 2u);
  EXPECT_EQ(pool[0].stats().evaluated, 1u);
  EXPECT_EQ(pool[0].stats().cache_hits, 1u);
  EXPECT_EQ(&pool[0].model(), static_cast<const ck::CostModel*>(&model));
}

// ---------------- ShardedBrokerPool ----------------

TEST(ShardedBrokerPool, MatchesSingleModelAndMergesStats) {
  const auto blocks = test_blocks(80);
  const ck::CrudeModel reference(ck::MicroArch::Haswell);
  std::vector<double> expected(blocks.size());
  reference.predict_batch(std::span<const cx::BasicBlock>(blocks),
                          std::span<double>(expected));

  cs::ShardedBrokerPool<cx::BasicBlock, ck::CostModel> pool(
      [](std::size_t) {
        return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
      },
      /*shards=*/4);
  EXPECT_EQ(pool.shard_count(), 4u);

  std::vector<double> out(blocks.size());
  pool.predict_batch(std::span<const cx::BasicBlock>(blocks),
                     std::span<double>(out));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], expected[i]) << "block " << i;
  }

  // Merged ledger equals the sum of per-shard ledgers, and the whole batch
  // was requested exactly once.
  const auto per_shard = pool.shard_stats();
  ck::QueryStats sum;
  for (const auto& s : per_shard) sum += s;
  EXPECT_EQ(sum, pool.stats());
  EXPECT_EQ(sum.requested, blocks.size());
  EXPECT_EQ(sum.single_calls, 0u);

  // Every block lands on its hash-owned shard, so a repeat batch is served
  // entirely from the shard memo caches.
  const std::size_t evaluated_before = sum.evaluated;
  pool.predict_batch(std::span<const cx::BasicBlock>(blocks),
                     std::span<double>(out));
  const auto after = pool.stats();
  EXPECT_EQ(after.evaluated, evaluated_before);
  EXPECT_EQ(after.requested, 2 * blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], expected[i]);
  }

  // Single-block routing agrees too.
  EXPECT_DOUBLE_EQ(pool.predict(blocks[0]), expected[0]);
}

TEST(ShardedCostModel, IsADropInCostModel) {
  cs::ShardedCostModel sharded(
      [](std::size_t) {
        return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Skylake);
      },
      /*shards=*/3);
  const ck::CrudeModel reference(ck::MicroArch::Skylake);
  const ck::CostModel& as_base = sharded;
  const auto block = golden_block();
  EXPECT_DOUBLE_EQ(as_base.predict(block), reference.predict(block));
  EXPECT_EQ(as_base.name(), "sharded-3(" + reference.name() + ")");
}

// ---------------- AsyncBroker ----------------

TEST(AsyncBroker, SubmitCollectMatchesSyncBrokerIncludingLedger) {
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  const auto blocks = test_blocks(30);

  // Three batches with overlap (batch 2 repeats batch 0) to exercise the
  // cross-batch memo path.
  std::vector<std::vector<cx::BasicBlock>> batches;
  batches.emplace_back(blocks.begin(), blocks.begin() + 10);
  batches.emplace_back(blocks.begin() + 10, blocks.end());
  batches.emplace_back(blocks.begin(), blocks.begin() + 10);

  ck::QueryBroker<cx::BasicBlock, ck::CostModel> sync_broker(model);
  std::vector<std::vector<double>> expected;
  for (const auto& b : batches) {
    std::vector<double> out(b.size());
    sync_broker.predict_batch(std::span<const cx::BasicBlock>(b),
                              std::span<double>(out));
    expected.push_back(std::move(out));
  }

  cs::AsyncBroker<cx::BasicBlock, ck::CostModel> async(model,
                                                       /*memoize=*/true);
  // Submit everything up front (the overlap pattern), then collect.
  std::vector<std::future<std::vector<double>>> futures;
  for (const auto& b : batches) futures.push_back(async.submit(b));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), expected[i]) << "batch " << i;
  }
  // Single FIFO worker: the async ledger is bit-identical to the sync one.
  EXPECT_EQ(async.stats(), sync_broker.stats());
}

// ---------------- engine modes: widened and pipelined pulls ----------------

TEST(EngineWidening, FusedArmPullsAreGoldenParityWithFewerRoundTrips) {
  const DivOnlyModel model;

  const cc::CometExplainer plain(model, golden_options());
  const auto sequential = plain.explain(golden_block());

  cc::CometOptions fused_opt = golden_options();
  fused_opt.fuse_arm_pulls = true;
  const cc::CometExplainer fused(model, fused_opt);
  const auto widened = fused.explain(golden_block());

  // Same recorded golden values as the pre-refactor engine...
  cg::FeatureSet expected;
  expected.insert(cg::Feature(cg::InstFeature{1, cx::Opcode::DIV}));
  EXPECT_EQ(widened.features, expected) << widened.features.to_string();
  EXPECT_TRUE(widened.met_threshold);
  EXPECT_DOUBLE_EQ(widened.precision, 1.0);
  EXPECT_NEAR(widened.coverage, 0.6333333333333333, 1e-12);
  EXPECT_EQ(widened.model_queries, 1933u);

  // ...and bit-identical to the unfused run, including the sample-level
  // ledger; only the number of round-trips (batch calls) shrinks.
  expect_identical(widened, sequential);
  EXPECT_EQ(widened.query_stats.requested, sequential.query_stats.requested);
  EXPECT_EQ(widened.query_stats.evaluated, sequential.query_stats.evaluated);
  EXPECT_EQ(widened.query_stats.cache_hits,
            sequential.query_stats.cache_hits);
  EXPECT_LT(widened.query_stats.batch_calls,
            sequential.query_stats.batch_calls);
}

TEST(EngineAsync, PipelinedArmPullsAreBitIdenticalToSync) {
  const DivOnlyModel model;

  const cc::CometExplainer plain(model, golden_options());
  const auto sequential = plain.explain(golden_block());

  cc::CometOptions async_opt = golden_options();
  async_opt.async_inflight = 3;
  const cc::CometExplainer pipelined(model, async_opt);
  const auto async = pipelined.explain(golden_block());

  expect_identical(async, sequential);
  // One FIFO evaluation worker → even the broker ledger is identical.
  EXPECT_EQ(async.query_stats, sequential.query_stats);
}

// ---------------- ExplanationServer: scheduling ----------------

TEST(ExplanationServer, CompletionOrderCorrectUnderEightWorkers) {
  auto crude =
      std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  auto oracle =
      std::make_shared<const comet::sim::HardwareOracle>(ck::MicroArch::Haswell);

  // Sequential ground truth, one engine run per request.
  struct Case {
    std::string key;
    cx::BasicBlock block;
    cc::CometOptions options;
  };
  std::vector<Case> cases;
  const auto blocks = test_blocks(6);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    cases.push_back({"crude-hsw", blocks[i], light_options(100 + i)});
  }
  cases.push_back({"oracle-hsw", cb::listing2_case_study1(), light_options(7)});
  cases.push_back({"oracle-hsw", cb::listing3_case_study2(), light_options(8)});

  std::vector<cc::Explanation> expected;
  for (const auto& c : cases) {
    const ck::CostModel& model =
        c.key == "crude-hsw" ? static_cast<const ck::CostModel&>(*crude)
                             : static_cast<const ck::CostModel&>(*oracle);
    expected.push_back(cc::CometExplainer(model, c.options).explain(c.block));
  }

  cs::X86ExplanationServer server({.workers = 8, .queue_capacity = 16});
  server.register_model("crude-hsw", crude);
  server.register_model("oracle-hsw", oracle);
  std::vector<std::uint64_t> tickets;
  for (const auto& c : cases) {
    tickets.push_back(server.submit(c.key, c.block, c.options));
  }

  // Collect in completion order; every ticket shows up exactly once with a
  // bit-identical explanation (each request owns its RNG and broker).
  std::vector<bool> seen(cases.size(), false);
  std::size_t delivered = 0;
  while (auto served = server.next()) {
    std::size_t idx = cases.size();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (tickets[i] == served->id) idx = i;
    }
    ASSERT_LT(idx, cases.size()) << "unknown ticket " << served->id;
    EXPECT_FALSE(seen[idx]) << "ticket delivered twice";
    seen[idx] = true;
    ++delivered;
    EXPECT_EQ(served->model_key, cases[idx].key);
    expect_identical(served->explanation, expected[idx]);
    EXPECT_EQ(served->explanation.query_stats, expected[idx].query_stats);
  }
  EXPECT_EQ(delivered, cases.size());
  EXPECT_EQ(server.outstanding(), 0u);

  // The drain report aggregates per-key ledgers of everything served.
  ck::QueryStats crude_sum;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].key == "crude-hsw") crude_sum += expected[i].query_stats;
  }
  const auto by_model = server.stats_by_model();
  ASSERT_TRUE(by_model.contains("crude-hsw"));
  EXPECT_EQ(by_model.at("crude-hsw"), crude_sum);
  EXPECT_NE(server.report().find("crude-hsw"), std::string::npos);
}

TEST(ExplanationServer, ConcurrentRequestsBitIdenticalToSequential) {
  // The satellite's two-concurrent-requests determinism check, stated
  // directly: one worker per request, both in flight at once, same bits as
  // back-to-back sequential runs.
  auto model = std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  const auto block_a = cb::listing1_motivating();
  const auto block_b = golden_block();
  const auto opt_a = light_options(41);
  const auto opt_b = light_options(42);

  const auto seq_a = cc::CometExplainer(*model, opt_a).explain(block_a);
  const auto seq_b = cc::CometExplainer(*model, opt_b).explain(block_b);

  cs::X86ExplanationServer server({.workers = 2, .queue_capacity = 4});
  server.register_model("crude", model);
  const auto ta = server.submit("crude", block_a, opt_a);
  const auto tb = server.submit("crude", block_b, opt_b);
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& served : results) {
    const auto& expected = served.id == ta ? seq_a : seq_b;
    ASSERT_TRUE(served.id == ta || served.id == tb);
    expect_identical(served.explanation, expected);
    EXPECT_EQ(served.explanation.query_stats, expected.query_stats);
  }
}

TEST(ExplanationServer, ServedOverShardedPoolMatchesPlainModel) {
  // Full-stack parity: scheduler → pool → shards → models produces the
  // same bits as one explainer over one model instance.
  auto sharded = std::make_shared<const cs::ShardedCostModel>(
      [](std::size_t) {
        return std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
      },
      /*shards=*/4);
  const ck::CrudeModel plain(ck::MicroArch::Haswell);

  const auto block = cb::listing2_case_study1();
  const auto options = light_options(5);
  const auto expected = cc::CometExplainer(plain, options).explain(block);

  cs::X86ExplanationServer server({.workers = 2, .queue_capacity = 4});
  server.register_model("sharded-crude", sharded);
  server.submit("sharded-crude", block, options);
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 1u);
  expect_identical(results[0].explanation, expected);
}

TEST(ExplanationServer, BoundedQueueExertsBackpressure) {
  auto gate = std::make_shared<GateModel>();
  const auto block = golden_block();
  const auto options = light_options(1);

  cs::X86ExplanationServer server({.workers = 1, .queue_capacity = 2});
  server.register_model("gate", gate);

  // Pin the single worker inside the gate, then fill the admission queue.
  server.submit("gate", block, options);
  gate->await_entered();
  server.submit("gate", block, options);
  server.submit("gate", block, options);

  // Queue full: non-blocking admission is refused...
  std::uint64_t ticket = 0;
  EXPECT_FALSE(server.try_submit("gate", block, options, &ticket));
  EXPECT_EQ(ticket, 0u);
  // ...and unknown keys are rejected at admission, not at execution.
  EXPECT_THROW(server.try_submit("nope", block, options),
               std::out_of_range);

  gate->open();
  const auto results = server.drain();
  EXPECT_EQ(results.size(), 3u);

  // Space freed: admission works again and the job completes.
  EXPECT_TRUE(server.try_submit("gate", block, options, &ticket));
  EXPECT_GT(ticket, 0u);
  EXPECT_EQ(server.drain().size(), 1u);

  // The flow-control events above are on the metrics surface: exactly one
  // try_submit refusal (the unknown-key throw is not a queue rejection),
  // no blocking submit ever waited, and the lifecycle counters balance.
  const auto snap = server.metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve_try_submit_rejected") EXPECT_EQ(1u, value);
    if (name == "serve_submit_blocked") EXPECT_EQ(0u, value);
    if (name == "serve_submitted") EXPECT_EQ(4u, value);
    if (name == "serve_completed") EXPECT_EQ(4u, value);
  }
}

// ---------------- the shared RISC-V served path ----------------

TEST(ExplanationServer, ServesRiscvThroughTheSameScheduler) {
  auto model = std::make_shared<const rv::RvCostModel>();
  const std::vector<rv::BasicBlock> blocks = {
      rv::parse_block("add a0, a1, a2\ndiv a3, a0, a4\naddi a5, a3, 1"),
      rv::parse_block("mul t0, t1, t2\nadd t3, t0, t4"),
      rv::parse_block("lw a0, 0(a1)\nadd a2, a0, a3\nsw a2, 4(a1)"),
  };
  rv::RvExplainOptions options;
  options.coverage_samples = 200;
  options.max_pulls_per_level = 40;

  std::vector<rv::RvExplanation> expected;
  for (const auto& b : blocks) {
    expected.push_back(rv::RvExplainer(*model, options).explain(b));
  }

  cs::RvExplanationServer server({.workers = 3, .queue_capacity = 8});
  server.register_model("crude-rv64", model);
  std::vector<std::uint64_t> tickets;
  for (const auto& b : blocks) {
    tickets.push_back(server.submit("crude-rv64", b, options));
  }
  const auto results = server.drain();
  ASSERT_EQ(results.size(), blocks.size());
  for (const auto& served : results) {
    std::size_t idx = blocks.size();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (tickets[i] == served.id) idx = i;
    }
    ASSERT_LT(idx, blocks.size());
    EXPECT_EQ(served.explanation.features, expected[idx].features);
    EXPECT_DOUBLE_EQ(served.explanation.precision, expected[idx].precision);
    EXPECT_DOUBLE_EQ(served.explanation.coverage, expected[idx].coverage);
    EXPECT_EQ(served.explanation.model_queries, expected[idx].model_queries);
    EXPECT_EQ(served.explanation.query_stats, expected[idx].query_stats);
  }
}
