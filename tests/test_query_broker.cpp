// Tests for the batched query layer: predict_batch element-wise parity for
// every model in the zoo, QueryBroker memoization/dedup/accounting, and the
// invariance of explanation output under broker memoization.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bhive/generator.h"
#include "core/comet.h"
#include "core/model_zoo.h"
#include "cost/crude_model.h"
#include "cost/granite_model.h"
#include "cost/ithemal_model.h"
#include "cost/query_broker.h"
#include "riscv/cost.h"
#include "riscv/generator.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace ck = comet::cost;
namespace cx = comet::x86;
namespace rv = comet::riscv;
using comet::util::Rng;

namespace {

std::vector<cx::BasicBlock> sample_blocks(std::size_t n) {
  const comet::bhive::BlockGenerator generator;
  std::vector<cx::BasicBlock> blocks;
  Rng rng(321);
  for (std::size_t i = 0; i < n; ++i) {
    blocks.push_back(generator.generate(rng));
  }
  // An empty block exercises the models' empty-input convention.
  blocks.push_back(cx::BasicBlock{});
  return blocks;
}

void expect_batch_matches_elementwise(const ck::CostModel& model,
                                      const std::vector<cx::BasicBlock>& bs) {
  std::vector<double> batch(bs.size());
  model.predict_batch(std::span<const cx::BasicBlock>(bs),
                      std::span<double>(batch));
  for (std::size_t i = 0; i < bs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(bs[i]))
        << model.name() << " block " << i;
  }
}

/// Counts how queries reach the model: through the batch entry point or
/// through single predict() calls.
class CountingModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    ++single_queries;
    return 1.0 + static_cast<double>(block.size());
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    ++batch_calls;
    batch_queries += blocks.size();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      out[i] = 1.0 + static_cast<double>(blocks[i].size());
    }
  }
  std::string name() const override { return "counting"; }

  mutable std::size_t single_queries = 0;
  mutable std::size_t batch_calls = 0;
  mutable std::size_t batch_queries = 0;
};

}  // namespace

// ---------- predict_batch == element-wise predict, whole model zoo ----------

TEST(PredictBatch, MatchesElementwiseForCheapZooModels) {
  const auto blocks = sample_blocks(30);
  for (const auto kind : {cc::ModelKind::UiCA, cc::ModelKind::Oracle,
                          cc::ModelKind::Mca, cc::ModelKind::Crude}) {
    for (const auto uarch :
         {ck::MicroArch::Haswell, ck::MicroArch::Skylake}) {
      const auto model = cc::make_model(kind, uarch);
      ASSERT_NE(model, nullptr);
      expect_batch_matches_elementwise(*model, blocks);
    }
  }
}

TEST(PredictBatch, MatchesElementwiseForIthemal) {
  // Untrained weights are deterministic per seed; inference parity between
  // the cached training forward and the allocation-free batch path is what
  // is under test, and it must be exact.
  const ck::IthemalModel model(ck::MicroArch::Haswell);
  expect_batch_matches_elementwise(model, sample_blocks(20));
}

TEST(PredictBatch, MatchesElementwiseForGranite) {
  const ck::GraniteModel model(ck::MicroArch::Haswell);
  expect_batch_matches_elementwise(model, sample_blocks(20));
}

TEST(PredictBatch, MatchesElementwiseForRiscv) {
  const rv::RvCostModel model;
  const auto corpus = rv::generate_corpus(25, 5);
  std::vector<double> batch(corpus.size());
  model.predict_batch(std::span<const rv::BasicBlock>(corpus),
                      std::span<double>(batch));
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.predict(corpus[i]));
  }
}

// ---------- QueryBroker ----------

TEST(QueryBroker, MemoizesRepeatQueries) {
  const CountingModel model;
  ck::QueryBroker<cx::BasicBlock, ck::CostModel> broker(model);
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  const std::vector<cx::BasicBlock> batch{block, block, block};
  std::vector<double> out(batch.size());
  broker.predict_batch(std::span<const cx::BasicBlock>(batch),
                       std::span<double>(out));
  broker.predict_batch(std::span<const cx::BasicBlock>(batch),
                       std::span<double>(out));
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  // Six requested, one evaluated: two in-batch duplicates + three repeats.
  EXPECT_EQ(broker.stats().requested, 6u);
  EXPECT_EQ(broker.stats().evaluated, 1u);
  EXPECT_EQ(broker.stats().cache_hits, 5u);
  EXPECT_EQ(model.batch_queries, 1u);
  EXPECT_EQ(model.single_queries, 0u);
}

TEST(QueryBroker, NoMemoizationStillBatches) {
  const CountingModel model;
  ck::QueryBroker<cx::BasicBlock, ck::CostModel> broker(model,
                                                        /*memoize=*/false);
  const auto block = cx::parse_block("add rcx, rax");
  const std::vector<cx::BasicBlock> batch{block, block};
  std::vector<double> out(batch.size());
  broker.predict_batch(std::span<const cx::BasicBlock>(batch),
                       std::span<double>(out));
  EXPECT_EQ(broker.stats().evaluated, 2u);
  EXPECT_EQ(broker.stats().cache_hits, 0u);
  EXPECT_EQ(broker.stats().batch_calls, 1u);
  EXPECT_EQ(model.batch_calls, 1u);
}

TEST(QueryBroker, SinglePathCountsSeparately) {
  const CountingModel model;
  ck::QueryBroker<cx::BasicBlock, ck::CostModel> broker(model);
  const auto block = cx::parse_block("add rcx, rax");
  EXPECT_DOUBLE_EQ(broker.predict_one(block), 2.0);
  EXPECT_DOUBLE_EQ(broker.predict_one(block), 2.0);  // memo hit
  EXPECT_EQ(broker.stats().single_calls, 1u);
  EXPECT_EQ(broker.stats().cache_hits, 1u);
  EXPECT_EQ(model.single_queries, 1u);
}

// ---------- memoization does not change explanation output ----------

TEST(QueryBroker, MemoizationInvariantExplanation) {
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 300;
  opt.final_precision_samples = 120;
  opt.seed = 17;
  cc::CometOptions no_memo = opt;
  no_memo.memoize_queries = false;

  const auto block = cx::parse_block(R"(
    mov rbx, 5
    add rsi, rdi
    div rcx
    mov r8, r9
  )");
  const auto with = cc::CometExplainer(model, opt).explain(block);
  const auto without = cc::CometExplainer(model, no_memo).explain(block);
  EXPECT_EQ(with.features, without.features);
  EXPECT_DOUBLE_EQ(with.precision, without.precision);
  EXPECT_DOUBLE_EQ(with.coverage, without.coverage);
  EXPECT_EQ(with.met_threshold, without.met_threshold);
  EXPECT_EQ(with.model_queries, without.model_queries);
  // Memoization strictly reduces evaluated queries on a search that
  // revisits perturbations; the requested volume is identical.
  EXPECT_EQ(with.query_stats.requested, without.query_stats.requested);
  EXPECT_LT(with.query_stats.evaluated, without.query_stats.evaluated);
  EXPECT_GT(with.query_stats.cache_hits, 0u);
}
