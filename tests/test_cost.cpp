// Tests for the cost layer: throughput tables, the crude interpretable
// model C, and its ground-truth explanations.
#include <gtest/gtest.h>

#include "cost/crude_model.h"
#include "cost/throughput_table.h"
#include "x86/parser.h"

namespace cc = comet::cost;
namespace cg = comet::graph;
namespace cx = comet::x86;

namespace {
cx::Instruction inst(const char* text) { return cx::parse_instruction(text); }
cx::BasicBlock bb(const char* text) { return cx::parse_block(text); }
const cc::MicroArch HSW = cc::MicroArch::Haswell;
const cc::MicroArch SKL = cc::MicroArch::Skylake;
}  // namespace

// ---------- throughput tables ----------

TEST(ThroughputTable, DivIsExpensive) {
  EXPECT_GT(cc::inst_throughput(inst("div rcx"), HSW), 10.0);
  EXPECT_GT(cc::inst_throughput(inst("div rcx"), HSW),
            cc::inst_throughput(inst("add rax, rcx"), HSW) * 10);
}

TEST(ThroughputTable, NarrowDivIsCheaperThanWide) {
  EXPECT_LT(cc::inst_throughput(inst("div ecx"), HSW),
            cc::inst_throughput(inst("div rcx"), HSW));
}

TEST(ThroughputTable, StoreCostsMoreThanRegMove) {
  EXPECT_GT(cc::inst_throughput(inst("mov qword ptr [rdi + 8], rax"), HSW),
            cc::inst_throughput(inst("mov rdi, rbp"), HSW));
}

TEST(ThroughputTable, SkylakeImprovesFpDivide) {
  EXPECT_LT(cc::inst_throughput(inst("divss xmm0, xmm1"), SKL),
            cc::inst_throughput(inst("divss xmm0, xmm1"), HSW));
}

TEST(ThroughputTable, SkylakeImprovesFpAdd) {
  EXPECT_LT(cc::inst_throughput(inst("addss xmm0, xmm1"), SKL),
            cc::inst_throughput(inst("addss xmm0, xmm1"), HSW));
}

TEST(ThroughputTable, LoadAddsLatencyToChain) {
  EXPECT_GT(cc::inst_latency(inst("mov rax, qword ptr [rdi]"), HSW),
            cc::inst_latency(inst("mov rax, rdi"), HSW));
}

TEST(ThroughputTable, AllOpcodesHavePositiveTimings) {
  // Smoke: timings must be positive for every parseable reg-form opcode.
  for (const char* text :
       {"imul rax, rcx", "shl rax, 3", "lea rdx, [rax + 8]", "popcnt rax, rcx",
        "vfmadd231ss xmm1, xmm2, xmm3", "pshufd xmm0, xmm1, 2",
        "cvtsi2ss xmm0, eax", "xchg rax, rcx", "push rbx", "nop"}) {
    EXPECT_GT(cc::inst_throughput(inst(text), HSW), 0.0) << text;
    EXPECT_GE(cc::inst_latency(inst(text), HSW), 0.0) << text;
  }
}

// ---------- crude model C ----------

TEST(CrudeModel, NumInstsTermIsNOver4) {
  const cc::CrudeModel model(HSW);
  EXPECT_DOUBLE_EQ(model.cost_num_insts(8), 2.0);
  EXPECT_DOUBLE_EQ(model.cost_num_insts(5), 1.25);
}

TEST(CrudeModel, PredictionIsMaxOfFeatureCosts) {
  const cc::CrudeModel model(HSW);
  // 4 cheap independent instructions: eta term (4/4 = 1.0) dominates.
  const auto cheap = bb(R"(
    mov rax, 1
    mov rcx, 2
    mov rsi, 3
    mov rdi, 4
  )");
  EXPECT_DOUBLE_EQ(model.predict(cheap), 1.0);

  // A div dominates everything.
  const auto divblock = bb(R"(
    mov rax, 1
    div rcx
    mov rsi, 3
    mov rdi, 4
  )");
  EXPECT_GT(model.predict(divblock), 10.0);
}

TEST(CrudeModel, RawDependencyCostIsSumOfEndpoints) {
  const cc::CrudeModel model(HSW);
  const auto block = bb(R"(
    add rcx, rax
    mov rdx, rcx
  )");
  const auto g = cg::DepGraph::build(block);
  bool checked = false;
  for (const auto& e : g.edges()) {
    if (e.kind == cg::DepKind::RAW) {
      EXPECT_DOUBLE_EQ(model.cost_dep(block, e),
                       model.cost_inst(block.instructions[0]) +
                           model.cost_inst(block.instructions[1]));
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(CrudeModel, WarWawDependenciesAreFree) {
  const cc::CrudeModel model(HSW);
  const auto block = bb(R"(
    mov ecx, edx
    xor edx, edx
  )");
  const auto g = cg::DepGraph::build(block);
  for (const auto& e : g.edges()) {
    if (e.kind != cg::DepKind::RAW) {
      EXPECT_DOUBLE_EQ(model.cost_dep(block, e), 0.0);
    }
  }
}

TEST(CrudeModel, GroundTruthContainsArgmaxFeature) {
  const cc::CrudeModel model(HSW);
  const auto divblock = bb(R"(
    mov rax, 1
    div rcx
    mov rsi, 3
    mov rdi, 4
  )");
  const auto gt = model.ground_truth(divblock);
  EXPECT_FALSE(gt.empty());
  // div's own cost and the RAW dep (mov rax -> div) both hit the max only
  // if dep cost >= div cost; at minimum the div instruction cost features
  // must be related to div. Check that some feature refers to index 1 or a
  // dep ending there.
  bool mentions_div = false;
  for (const auto& f : gt.items()) {
    if (f.is_inst() && f.as_inst().index == 1) mentions_div = true;
    if (f.is_dep() && (f.as_dep().to == 1 || f.as_dep().from == 1)) {
      mentions_div = true;
    }
  }
  EXPECT_TRUE(mentions_div);
}

TEST(CrudeModel, GroundTruthEtaWhenCheapUniform) {
  const cc::CrudeModel model(HSW);
  const auto cheap = bb(R"(
    mov rax, 1
    mov rcx, 2
    mov rsi, 3
    mov rdi, 4
    mov r8, 5
  )");
  const auto gt = model.ground_truth(cheap);
  bool has_eta = false;
  for (const auto& f : gt.items()) has_eta |= f.is_num_insts();
  EXPECT_TRUE(has_eta);
}

TEST(CrudeModel, GroundTruthFeaturesAllAttainPrediction) {
  const cc::CrudeModel model(HSW);
  const auto block = bb(R"(
    lea rdx, [rax + 1]
    mov qword ptr [rdi + 24], rdx
    mov byte ptr [rax], 80
    mov rsi, qword ptr [r14 + 32]
    mov rdi, rbp
  )");
  const double c = model.predict(block);
  const auto gt = model.ground_truth(block);
  const auto g = cg::DepGraph::build(block);
  for (const auto& f : gt.items()) {
    switch (f.type()) {
      case cg::FeatureType::NumInsts:
        EXPECT_DOUBLE_EQ(model.cost_num_insts(block.size()), c);
        break;
      case cg::FeatureType::Inst:
        EXPECT_DOUBLE_EQ(
            model.cost_inst(block.instructions[f.as_inst().index]), c);
        break;
      case cg::FeatureType::Dep: {
        bool any = false;
        for (const auto& e : g.edges()) {
          if (e.from == f.as_dep().from && e.to == f.as_dep().to &&
              e.kind == f.as_dep().kind &&
              std::abs(model.cost_dep(block, e) - c) < 1e-9) {
            any = true;
          }
        }
        EXPECT_TRUE(any);
        break;
      }
    }
  }
}

TEST(CrudeModel, NameIncludesUarch) {
  EXPECT_EQ(cc::CrudeModel(HSW).name(), "crude-HSW");
  EXPECT_EQ(cc::CrudeModel(SKL).name(), "crude-SKL");
}

TEST(CrudeModel, HaswellAndSkylakeDiffer) {
  const auto block = bb("divss xmm0, xmm1\nmov rax, 1\nmov rcx, 2\nmov rsi, 3");
  EXPECT_NE(cc::CrudeModel(HSW).predict(block),
            cc::CrudeModel(SKL).predict(block));
}
