// Property-based suites over generated corpora: Theorem 1 (monotonicity of
// the perturbation function), validity and feature preservation of every Γ
// sample, parser/printer round-trips, simulator invariants, and estimator
// range properties. Parameterized over seeds so each property is exercised
// on many distinct blocks.
#include <gtest/gtest.h>

#include <cmath>

#include "bhive/dataset.h"
#include "core/comet.h"
#include "cost/crude_model.h"
#include "perturb/perturber.h"
#include "sim/pipeline.h"
#include "util/rng.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cg = comet::graph;
namespace cp = comet::perturb;
namespace cs = comet::sim;
namespace cx = comet::x86;
using comet::cost::MicroArch;
using comet::util::Rng;

namespace {

/// One deterministic block per seed, drawn from the generator corpus.
cx::BasicBlock block_for_seed(std::uint64_t seed) {
  cb::DatasetOptions opts;
  opts.size = 1;
  opts.seed = 0xB10C0000 + seed;
  return cb::generate_dataset(opts)[0].block;
}

/// A random subset of a block's features.
cg::FeatureSet random_subset(const cg::FeatureSet& all, Rng& rng,
                             double keep_prob) {
  cg::FeatureSet out;
  for (const auto& f : all.items()) {
    if (rng.uniform() < keep_prob) out.insert(f);
  }
  return out;
}

class BlockProperty : public ::testing::TestWithParam<int> {};

}  // namespace

// ---------- Theorem 1: Π is monotonically decreasing ----------

TEST_P(BlockProperty, Theorem1SamplesFromLargerSetContainSmaller) {
  // F1 ⊆ F2 ⇒ Π(F2) ⊆ Π(F1): every perturbation retaining F2 must also
  // retain F1. Verified on live samples from Γ(F2).
  const auto block = block_for_seed(GetParam());
  const cp::Perturber perturber(block);
  Rng rng(GetParam() * 31 + 1);

  const auto all = cg::extract_features(block);
  const auto f2 = random_subset(all, rng, 0.5);
  const auto f1 = random_subset(f2, rng, 0.5);
  ASSERT_TRUE(f1.is_subset_of(f2));

  for (int k = 0; k < 40; ++k) {
    const auto pb = perturber.sample(f2, rng);
    EXPECT_TRUE(perturber.contains(pb, f2)) << block.to_string();
    EXPECT_TRUE(perturber.contains(pb, f1)) << block.to_string();
  }
}

TEST_P(BlockProperty, Theorem1SpaceSizeShrinksWithMoreConstraints) {
  // log10 |Π̂(F1)| ≥ log10 |Π̂(F2)| whenever F1 ⊆ F2.
  const auto block = block_for_seed(GetParam());
  const cp::Perturber perturber(block);
  Rng rng(GetParam() * 37 + 2);

  const auto all = cg::extract_features(block);
  const auto f2 = random_subset(all, rng, 0.6);
  const auto f1 = random_subset(f2, rng, 0.5);
  EXPECT_GE(perturber.log10_space_size(f1) + 1e-9,
            perturber.log10_space_size(f2));
  EXPECT_GE(perturber.log10_space_size({}) + 1e-9,
            perturber.log10_space_size(f1));
}

// ---------- Γ output validity ----------

TEST_P(BlockProperty, EveryPerturbationIsValidIsa) {
  const auto block = block_for_seed(GetParam());
  const cp::Perturber perturber(block);
  Rng rng(GetParam() * 41 + 3);
  const auto all = cg::extract_features(block);

  for (int k = 0; k < 60; ++k) {
    const auto preserve = random_subset(all, rng, rng.uniform());
    const auto pb = perturber.sample(preserve, rng);
    EXPECT_TRUE(cx::is_valid(pb.block))
        << "invalid perturbation of:\n"
        << block.to_string() << "\n->\n"
        << pb.block.to_string();
    EXPECT_TRUE(perturber.contains(pb, preserve));
    // The index mapping must be strictly increasing and in range.
    std::size_t prev = cp::PerturbedBlock::npos;
    for (std::size_t i = 0; i < pb.orig_index.size(); ++i) {
      EXPECT_LT(pb.orig_index[i], block.size());
      if (i > 0) {
        EXPECT_GT(pb.orig_index[i], prev);
      }
      prev = pb.orig_index[i];
    }
  }
}

TEST_P(BlockProperty, PreservingEverythingReproducesTheBlock) {
  // Γ(P̂) can only return β itself: all opcodes pinned, all deps pinned,
  // η pinned. (Operands of dependency-free instructions may still rename,
  // so compare opcode sequences and dependency feature sets, which is what
  // feature identity is defined over.)
  const auto block = block_for_seed(GetParam());
  const cp::Perturber perturber(block);
  Rng rng(GetParam() * 43 + 4);
  const auto all = cg::extract_features(block);

  for (int k = 0; k < 20; ++k) {
    const auto pb = perturber.sample(all, rng);
    ASSERT_EQ(pb.block.size(), block.size());
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(pb.block.instructions[i].opcode,
                block.instructions[i].opcode);
    }
    EXPECT_TRUE(perturber.contains(pb, all));
  }
}

// ---------- parser/printer round-trip ----------

TEST_P(BlockProperty, ParsePrintRoundTrip) {
  const auto block = block_for_seed(GetParam());
  const auto reparsed = cx::parse_block(block.to_string());
  EXPECT_EQ(reparsed, block) << block.to_string();
}

TEST_P(BlockProperty, PerturbationsAlsoRoundTrip) {
  const auto block = block_for_seed(GetParam());
  const cp::Perturber perturber(block);
  Rng rng(GetParam() * 47 + 5);
  for (int k = 0; k < 10; ++k) {
    const auto pb = perturber.sample({}, rng);
    if (pb.block.empty()) continue;
    EXPECT_EQ(cx::parse_block(pb.block.to_string()), pb.block);
  }
}

// ---------- simulator invariants ----------

TEST_P(BlockProperty, ThroughputRespectsFrontEndLowerBound) {
  const auto block = block_for_seed(GetParam());
  cs::SimOptions opt;
  cs::SimTrace trace;
  const double tp =
      cs::simulate_throughput(block, MicroArch::Haswell, opt, &trace);
  const double fe_bound =
      double(trace.uops_per_iteration) / opt.issue_width;
  EXPECT_GE(tp + 0.15, fe_bound) << block.to_string();
}

TEST_P(BlockProperty, RemovingPortContentionNeverSlowsDown) {
  const auto block = block_for_seed(GetParam());
  cs::SimOptions full;
  cs::SimOptions no_ports = full;
  no_ports.ignore_ports = true;
  EXPECT_LE(cs::simulate_throughput(block, MicroArch::Haswell, no_ports),
            cs::simulate_throughput(block, MicroArch::Haswell, full) + 0.15)
      << block.to_string();
}

TEST_P(BlockProperty, ScalingLatenciesUpNeverSpeedsUp) {
  const auto block = block_for_seed(GetParam());
  cs::SimOptions base;
  cs::SimOptions slow = base;
  slow.latency_scale = 2.0;
  EXPECT_GE(cs::simulate_throughput(block, MicroArch::Haswell, slow) + 1e-9,
            cs::simulate_throughput(block, MicroArch::Haswell, base))
      << block.to_string();
}

TEST_P(BlockProperty, SimulatorIsDeterministic) {
  const auto block = block_for_seed(GetParam());
  const double a = cs::simulate_throughput(block, MicroArch::Skylake);
  const double b = cs::simulate_throughput(block, MicroArch::Skylake);
  EXPECT_DOUBLE_EQ(a, b);
}

// ---------- estimator ranges ----------

TEST_P(BlockProperty, PrecisionAndCoverageAreProbabilities) {
  const auto block = block_for_seed(GetParam());
  const comet::cost::CrudeModel crude(MicroArch::Haswell);
  comet::core::CometOptions opts;
  opts.epsilon = 0.25;
  const comet::core::CometExplainer explainer(crude, opts);
  Rng rng(GetParam() * 53 + 6);

  const auto all = cg::extract_features(block);
  const auto fs = random_subset(all, rng, 0.4);
  const double prec = explainer.estimate_precision(block, fs, 80, rng);
  const double cov = explainer.estimate_coverage(block, fs, 80, rng);
  EXPECT_GE(prec, 0.0);
  EXPECT_LE(prec, 1.0);
  EXPECT_GE(cov, 0.0);
  EXPECT_LE(cov, 1.0);
}

TEST_P(BlockProperty, FullFeatureSetIsPerfectlyPrecise) {
  // Preserving all of P̂ pins the prediction-relevant structure; the crude
  // model C reads only P̂ features, so precision must be 1.
  const auto block = block_for_seed(GetParam());
  const comet::cost::CrudeModel crude(MicroArch::Haswell);
  comet::core::CometOptions opts;
  opts.epsilon = 0.25;
  const comet::core::CometExplainer explainer(crude, opts);
  Rng rng(GetParam() * 59 + 7);

  const auto all = cg::extract_features(block);
  EXPECT_DOUBLE_EQ(explainer.estimate_precision(block, all, 40, rng), 1.0)
      << block.to_string();
}

INSTANTIATE_TEST_SUITE_P(Corpus, BlockProperty, ::testing::Range(0, 24));
