// Tests for the synthetic BHive-like dataset substrate: generator validity,
// category classification, dataset determinism, partitions, paper blocks.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bhive/dataset.h"
#include "bhive/generator.h"
#include "bhive/paper_blocks.h"
#include "graph/depgraph.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace cb = comet::bhive;
namespace cx = comet::x86;
using comet::util::Rng;

// ---------- generator ----------

TEST(Generator, ProducesValidBlocks) {
  cb::BlockGenerator gen;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto block = gen.generate(rng);
    EXPECT_TRUE(cx::is_valid(block)) << block.to_string();
    EXPECT_GE(block.size(), 4u);
    EXPECT_LE(block.size(), 10u);
  }
}

TEST(Generator, RespectsSizeBounds) {
  cb::GeneratorOptions opt;
  opt.min_insts = 6;
  opt.max_insts = 6;
  cb::BlockGenerator gen(opt);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.generate(rng).size(), 6u);
  }
}

TEST(Generator, OpenBlasProfileIsVectorHeavy) {
  cb::GeneratorOptions clang_opt, blas_opt;
  blas_opt.source = cb::BlockSource::OpenBLAS;
  cb::BlockGenerator clang_gen(clang_opt), blas_gen(blas_opt);
  Rng rng(3);
  int clang_vec = 0, blas_vec = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& inst : clang_gen.generate(rng).instructions) {
      for (const auto& op : inst.operands) {
        clang_vec += op.is_reg() &&
                     cx::reg_class(op.as_reg()) == cx::RegClass::Vec;
      }
    }
    for (const auto& inst : blas_gen.generate(rng).instructions) {
      for (const auto& op : inst.operands) {
        blas_vec += op.is_reg() &&
                    cx::reg_class(op.as_reg()) == cx::RegClass::Vec;
      }
    }
  }
  EXPECT_GT(blas_vec, clang_vec * 3);
}

TEST(Generator, CreatesDependencyChains) {
  cb::BlockGenerator gen;
  Rng rng(4);
  int blocks_with_deps = 0;
  for (int i = 0; i < 100; ++i) {
    const auto block = gen.generate(rng);
    const auto g = comet::graph::DepGraph::build(block);
    blocks_with_deps += !g.edges().empty();
  }
  EXPECT_GT(blocks_with_deps, 60);
}

TEST(Generator, DeterministicGivenSeed) {
  cb::BlockGenerator gen;
  Rng r1(42), r2(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(gen.generate(r1).to_string(), gen.generate(r2).to_string());
  }
}

// ---------- classification ----------

TEST(Classify, AllSixCategories) {
  using C = cb::BlockCategory;
  EXPECT_EQ(cb::classify(cx::parse_block("mov rax, qword ptr [rdi]\nadd rax, 1")),
            C::Load);
  EXPECT_EQ(cb::classify(cx::parse_block("mov qword ptr [rdi], rax\nadd rax, 1")),
            C::Store);
  EXPECT_EQ(cb::classify(cx::parse_block(
                "mov rax, qword ptr [rdi]\nmov qword ptr [rsi], rax")),
            C::LoadStore);
  EXPECT_EQ(cb::classify(cx::parse_block("add rax, rcx\nsub rdx, rsi")),
            C::Scalar);
  EXPECT_EQ(cb::classify(cx::parse_block("addss xmm0, xmm1\nmulss xmm2, xmm0")),
            C::Vector);
  EXPECT_EQ(cb::classify(cx::parse_block("addss xmm0, xmm1\nadd rax, rcx")),
            C::ScalarVector);
}

TEST(Classify, PushCountsAsStore) {
  EXPECT_EQ(cb::classify(cx::parse_block("push rbx\nadd rax, rcx")),
            cb::BlockCategory::Store);
}

TEST(Classify, CategoryNamesMatchPaper) {
  EXPECT_EQ(cb::category_name(cb::BlockCategory::LoadStore), "Load/Store");
  EXPECT_EQ(cb::category_name(cb::BlockCategory::ScalarVector),
            "Scalar/Vector");
  EXPECT_EQ(cb::source_name(cb::BlockSource::OpenBLAS), "OpenBLAS");
}

// ---------- dataset ----------

TEST(Dataset, GenerateIsDeterministic) {
  cb::DatasetOptions opt;
  opt.size = 50;
  const auto d1 = cb::generate_dataset(opt);
  const auto d2 = cb::generate_dataset(opt);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].block.to_string(), d2[i].block.to_string());
    EXPECT_DOUBLE_EQ(d1[i].measured_hsw, d2[i].measured_hsw);
  }
}

TEST(Dataset, LabelsArePositiveAndUarchSpecific) {
  cb::DatasetOptions opt;
  opt.size = 100;
  const auto d = cb::generate_dataset(opt);
  int differ = 0;
  for (const auto& b : d.blocks()) {
    EXPECT_GT(b.measured_hsw, 0.0);
    EXPECT_GT(b.measured_skl, 0.0);
    differ += std::abs(b.measured_hsw - b.measured_skl) > 1e-9;
  }
  EXPECT_GT(differ, 30);
}

TEST(Dataset, SourcePartitionsBothPresent) {
  cb::DatasetOptions opt;
  opt.size = 100;
  const auto d = cb::generate_dataset(opt);
  EXPECT_GT(d.by_source(cb::BlockSource::Clang).size(), 30u);
  EXPECT_GT(d.by_source(cb::BlockSource::OpenBLAS).size(), 30u);
}

TEST(Dataset, MostCategoriesAppear) {
  cb::DatasetOptions opt;
  opt.size = 400;
  const auto d = cb::generate_dataset(opt);
  std::set<cb::BlockCategory> seen;
  for (const auto& b : d.blocks()) seen.insert(b.category);
  EXPECT_GE(seen.size(), 5u);
}

TEST(Dataset, SampleWithoutReplacement) {
  cb::DatasetOptions opt;
  opt.size = 60;
  const auto d = cb::generate_dataset(opt);
  Rng rng(5);
  const auto s = d.sample(30, rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::string> texts;
  for (const auto& b : s.blocks()) texts.insert(b.block.to_string());
  // Duplicates in text are possible only if the generator emitted identical
  // blocks; sampling itself must not duplicate indices.
  EXPECT_GE(texts.size(), 25u);
}

TEST(Dataset, ViewsAlign) {
  cb::DatasetOptions opt;
  opt.size = 20;
  const auto d = cb::generate_dataset(opt);
  const auto blocks = d.block_views();
  const auto labels = d.label_views(comet::cost::MicroArch::Haswell);
  ASSERT_EQ(blocks.size(), labels.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].to_string(), d[i].block.to_string());
    EXPECT_DOUBLE_EQ(labels[i], d[i].measured_hsw);
  }
}

// ---------- paper blocks ----------

TEST(PaperBlocks, AllParseToExpectedSizes) {
  EXPECT_EQ(cb::listing1_motivating().size(), 3u);
  EXPECT_EQ(cb::listing2_case_study1().size(), 5u);
  EXPECT_EQ(cb::listing3_case_study2().size(), 6u);
  EXPECT_EQ(cb::listing4_appendixF_beta1().size(), 7u);
  EXPECT_EQ(cb::listing5_appendixF_beta2().size(), 10u);
}

TEST(PaperBlocks, CaseStudy2HasDivAndDeps) {
  const auto block = cb::listing3_case_study2();
  bool has_div = false;
  for (const auto& inst : block.instructions) {
    has_div |= inst.opcode == cx::Opcode::DIV;
  }
  EXPECT_TRUE(has_div);
  const auto g = comet::graph::DepGraph::build(block);
  EXPECT_FALSE(g.edges().empty());
}

// ---------- text interchange format ----------

TEST(DatasetText, RoundTripPreservesEverything) {
  cb::DatasetOptions opts;
  opts.size = 40;
  opts.seed = 11;
  const auto ds = cb::generate_dataset(opts);
  const auto again = cb::parse_dataset_text(cb::to_text(ds));
  ASSERT_EQ(again.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].measured_hsw, ds[i].measured_hsw);
    EXPECT_DOUBLE_EQ(again[i].measured_skl, ds[i].measured_skl);
    EXPECT_EQ(again[i].source, ds[i].source);
    EXPECT_EQ(again[i].category, ds[i].category);
    ASSERT_EQ(again[i].block.size(), ds[i].block.size());
    for (std::size_t j = 0; j < ds[i].block.size(); ++j) {
      EXPECT_EQ(again[i].block.instructions[j].to_string(),
                ds[i].block.instructions[j].to_string());
    }
  }
}

TEST(DatasetText, ParserSkipsCommentsAndBlankLines) {
  const auto ds = cb::parse_dataset_text(
      "# leading comment\n"
      "\n"
      "comet-bhive v1\n"
      "# interior comment\n"
      "1.5\t2.5\tClang\tScalar\tadd rcx, rax; mov rdx, rcx\n");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds[0].measured_hsw, 1.5);
  EXPECT_DOUBLE_EQ(ds[0].measured_skl, 2.5);
  EXPECT_EQ(ds[0].block.size(), 2u);
}

// Every structural defect in untrusted dataset text must surface as a
// typed exception (ContractViolation for structure, ParseError for
// instruction text) — the contract fuzz_bhive_dataset enforces.
TEST(DatasetText, RejectsStructuralCorruption) {
  namespace cu = comet::util;
  // Missing or wrong header.
  EXPECT_THROW(cb::parse_dataset_text("1\t2\tClang\tScalar\tadd rcx, rax\n"),
               cu::ContractViolation);
  EXPECT_THROW(cb::parse_dataset_text("comet-bhive v99\n"),
               cu::ContractViolation);
  // Wrong field count.
  EXPECT_THROW(
      cb::parse_dataset_text("comet-bhive v1\n1\t2\tClang\tadd rcx, rax\n"),
      cu::ContractViolation);
  // Labels: non-numeric, non-finite, negative, absurd.
  const char* bad_labels[] = {"nan", "inf", "-1", "1e300", "1.5x"};
  for (const char* label : bad_labels) {
    const std::string text = std::string("comet-bhive v1\n") + label +
                             "\t2\tClang\tScalar\tadd rcx, rax\n";
    EXPECT_THROW(cb::parse_dataset_text(text), cu::ContractViolation) << label;
  }
  // Unknown source / category enums.
  EXPECT_THROW(cb::parse_dataset_text(
                   "comet-bhive v1\n1\t2\tgcc\tScalar\tadd rcx, rax\n"),
               cu::ContractViolation);
  EXPECT_THROW(cb::parse_dataset_text(
                   "comet-bhive v1\n1\t2\tClang\tSpooky\tadd rcx, rax\n"),
               cu::ContractViolation);
  // Empty block and malformed instruction text.
  EXPECT_THROW(
      cb::parse_dataset_text("comet-bhive v1\n1\t2\tClang\tScalar\t; ;\n"),
      cu::ContractViolation);
  EXPECT_THROW(cb::parse_dataset_text(
                   "comet-bhive v1\n1\t2\tClang\tScalar\tbogus rax\n"),
               cx::ParseError);
}
