// Tests for the contract macros (src/util/contract.h): COMET_CHECK and
// COMET_CHECK_MSG throw typed ContractViolation (never abort), messages
// carry the condition, location, and streamed context, and COMET_DCHECK
// compiles out only when COMET_DCHECK_ENABLED is 0.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/contract.h"

namespace cu = comet::util;

TEST(Contract, CheckPassesSilently) {
  EXPECT_NO_THROW(COMET_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(COMET_CHECK_MSG(true, "never evaluated " << 42));
}

TEST(Contract, CheckThrowsTypedException) {
  EXPECT_THROW(COMET_CHECK(false), cu::ContractViolation);
  // ContractViolation is a logic_error: callers can catch it generically
  // without suppressing unrelated exception types.
  EXPECT_THROW(COMET_CHECK(false), std::logic_error);
}

TEST(Contract, MessageCarriesConditionAndLocation) {
  try {
    COMET_CHECK(2 + 2 == 5);
    FAIL() << "COMET_CHECK(false) did not throw";
  } catch (const cu::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos) << what;
  }
}

TEST(Contract, CheckMsgStreamsContext) {
  const int got = 3, want = 7;
  try {
    COMET_CHECK_MSG(got == want, "got " << got << ", want " << want);
    FAIL() << "COMET_CHECK_MSG(false, ...) did not throw";
  } catch (const cu::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got 3, want 7"), std::string::npos) << what;
  }
}

TEST(Contract, CheckEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  COMET_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(Contract, DcheckMatchesCompileTimeSetting) {
  int evaluations = 0;
#if COMET_DCHECK_ENABLED
  EXPECT_THROW(COMET_DCHECK(false), cu::ContractViolation);
  COMET_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_NO_THROW(COMET_DCHECK(false));
  COMET_DCHECK(++evaluations > 0);  // must not evaluate when disabled
  EXPECT_EQ(evaluations, 0);
#endif
}
