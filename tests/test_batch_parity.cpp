// Batched-vs-scalar parity suite: for every cost model, predict_batch over
// a mixed batch (empty blocks, duplicates, varied sizes) must match
// per-block predict() bit-for-bit — sequentially AND with the batch chunked
// across the shared thread pool (set_batch_threads). This is the contract
// the query broker, the sharded serving layer, and the engine's golden
// parity all stand on.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "bhive/generator.h"
#include "cost/crude_model.h"
#include "cost/granite_model.h"
#include "cost/ithemal_model.h"
#include "sim/models.h"
#include "util/rng.h"

namespace cc = comet::cost;
namespace cb = comet::bhive;
namespace cs = comet::sim;
namespace cx = comet::x86;

namespace {

// Mixed batch: varied generated blocks, interleaved empty blocks, and exact
// duplicates (the shape broker traffic takes after memoization misses).
std::vector<cx::BasicBlock> mixed_batch(std::size_t n, std::uint64_t seed) {
  const cb::BlockGenerator generator;
  comet::util::Rng rng(seed);
  std::vector<cx::BasicBlock> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 9 == 4) {
      blocks.emplace_back();  // empty block
    } else if (i > 6 && i % 5 == 0) {
      blocks.push_back(blocks[i / 2]);  // duplicate
    } else {
      blocks.push_back(generator.generate(rng));
    }
  }
  return blocks;
}

// Bit-for-bit check of predict_batch against element-wise predict(), first
// sequentially, then with the batch chunked over 4 pool threads.
void expect_batch_parity(cc::CostModel& model, std::size_t batch_size) {
  const auto blocks = mixed_batch(batch_size, /*seed=*/17);
  std::vector<double> scalar(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    scalar[i] = model.predict(blocks[i]);
  }

  std::vector<double> batched(blocks.size(), -1.0);
  model.predict_batch(std::span<const cx::BasicBlock>(blocks),
                      std::span<double>(batched));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(batched[i], scalar[i])
        << model.name() << " sequential batch diverges at " << i;
  }

  model.set_batch_threads(4);
  std::vector<double> threaded(blocks.size(), -1.0);
  model.predict_batch(std::span<const cx::BasicBlock>(blocks),
                      std::span<double>(threaded));
  model.set_batch_threads(1);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(threaded[i], scalar[i])
        << model.name() << " threaded batch diverges at " << i;
  }
}

cc::IthemalConfig tiny_ithemal() {
  cc::IthemalConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 12;
  cfg.epochs = 2;
  return cfg;
}

cc::GraniteConfig tiny_granite() {
  cc::GraniteConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 12;
  cfg.epochs = 2;
  return cfg;
}

const cc::MicroArch HSW = cc::MicroArch::Haswell;

}  // namespace

TEST(BatchParity, Crude) {
  cc::CrudeModel model(HSW);
  expect_batch_parity(model, 64);
}

TEST(BatchParity, Oracle) {
  cs::HardwareOracle model(HSW);
  expect_batch_parity(model, 64);
}

TEST(BatchParity, UiCA) {
  cs::UiCASimModel model(HSW);
  expect_batch_parity(model, 64);
}

TEST(BatchParity, Mca) {
  cs::McaLikeModel model(HSW);
  expect_batch_parity(model, 64);
}

TEST(BatchParity, Granite) {
  cc::GraniteModel model(HSW, tiny_granite());
  expect_batch_parity(model, 64);
}

// The cross-block lane-packed LSTM path: exercised at several batch sizes
// (single lane, lanes that retire at different timesteps, chunk-boundary
// cases for the threaded run) and with weights moved off the deterministic
// init by a few training steps.
TEST(BatchParity, IthemalUntrained) {
  cc::IthemalModel model(HSW, tiny_ithemal());
  expect_batch_parity(model, 1);
  expect_batch_parity(model, 2);
  expect_batch_parity(model, 7);
  expect_batch_parity(model, 64);
  expect_batch_parity(model, 130);
}

TEST(BatchParity, IthemalTrained) {
  cc::IthemalModel model(HSW, tiny_ithemal());
  const cb::BlockGenerator generator;
  comet::util::Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const auto block = generator.generate(rng);
    model.train_step(block, 1.0 + static_cast<double>(block.size()) / 4.0);
  }
  expect_batch_parity(model, 64);
}

TEST(BatchParity, SkylakeModelsToo) {
  cc::CrudeModel crude(cc::MicroArch::Skylake);
  expect_batch_parity(crude, 48);
  cc::IthemalModel ithemal(cc::MicroArch::Skylake, tiny_ithemal());
  expect_batch_parity(ithemal, 48);
}

// An all-empty batch must not touch the model core at all.
TEST(BatchParity, AllEmptyBatch) {
  cc::IthemalModel model(HSW, tiny_ithemal());
  std::vector<cx::BasicBlock> blocks(5);
  std::vector<double> out(blocks.size(), -1.0);
  model.predict_batch(std::span<const cx::BasicBlock>(blocks),
                      std::span<double>(out));
  for (const double v : out) EXPECT_EQ(v, 0.0);
}

// The default base-class fallback also honors the knob (a model without a
// vectorized override still chunks across the pool).
TEST(BatchParity, BaseClassFallbackHonorsBatchThreads) {
  class PlainModel final : public cc::CostModel {
   public:
    double predict(const cx::BasicBlock& block) const override {
      return 1.0 + static_cast<double>(block.size());
    }
    std::string name() const override { return "plain"; }
  };
  PlainModel model;
  expect_batch_parity(model, 64);
}
