// Tests for the RISC-V port (paper Section 7): catalog and format-based
// replacement sets, ABI/architectural register parsing, the x0 hardwired
// zero (the port's instance-specific challenge), dependency extraction,
// the mapped perturbation algorithm Γ, the analytical cost model's exact
// ground truth, and end-to-end explanation accuracy of the ported engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "riscv/cost.h"
#include "riscv/explain.h"
#include "riscv/generator.h"
#include "riscv/parser.h"
#include "riscv/perturb.h"
#include "util/rng.h"

namespace rv = comet::riscv;
using comet::util::Rng;

// ---------- catalog / registers ----------

TEST(Riscv, MnemonicRoundTrip) {
  for (const rv::Opcode op : rv::all_opcodes()) {
    const auto parsed = rv::parse_opcode(rv::mnemonic(op));
    ASSERT_TRUE(parsed.has_value()) << rv::mnemonic(op);
    EXPECT_EQ(*parsed, op);
  }
}

TEST(Riscv, ReplacementSetsAreFormatClosed) {
  for (const rv::Opcode op : rv::all_opcodes()) {
    for (const rv::Opcode r : rv::replacement_opcodes(op)) {
      EXPECT_NE(r, op);
      EXPECT_EQ(rv::info(r).format, rv::info(op).format)
          << rv::mnemonic(op) << " -> " << rv::mnemonic(r);
    }
  }
}

TEST(Riscv, DivReplaceableByMulButNotByLoad) {
  const auto repl = rv::replacement_opcodes(rv::Opcode::DIV);
  EXPECT_NE(std::find(repl.begin(), repl.end(), rv::Opcode::MUL), repl.end());
  EXPECT_NE(std::find(repl.begin(), repl.end(), rv::Opcode::ADD), repl.end());
  EXPECT_EQ(std::find(repl.begin(), repl.end(), rv::Opcode::LD), repl.end());
}

TEST(Riscv, RegisterNamesAbiAndArchitectural) {
  EXPECT_EQ(rv::parse_reg("a0")->index, 10);
  EXPECT_EQ(rv::parse_reg("sp")->index, 2);
  EXPECT_EQ(rv::parse_reg("fp")->index, 8);  // alias of s0
  EXPECT_EQ(rv::parse_reg("s0")->index, 8);
  EXPECT_EQ(rv::parse_reg("x17")->index, 17);
  EXPECT_EQ(rv::parse_reg("zero")->index, 0);
  EXPECT_FALSE(rv::parse_reg("x32").has_value());
  EXPECT_FALSE(rv::parse_reg("q7").has_value());
}

// ---------- parser ----------

TEST(Riscv, ParseAllFormats) {
  const auto r = rv::parse_instruction("add a0, a1, a2");
  EXPECT_EQ(r.opcode, rv::Opcode::ADD);
  EXPECT_EQ(r.rd.index, 10);
  EXPECT_EQ(r.rs2.index, 12);

  const auto i = rv::parse_instruction("addi t0, t1, -4");
  EXPECT_EQ(i.imm, -4);

  const auto u = rv::parse_instruction("lui a0, 4096");
  EXPECT_EQ(u.imm, 4096);

  const auto ld = rv::parse_instruction("ld a0, 8(sp)");
  EXPECT_EQ(ld.rs1.index, 2);
  EXPECT_EQ(ld.imm, 8);

  const auto sd = rv::parse_instruction("sd a1, 0(a0)");
  EXPECT_EQ(sd.rs2.index, 11);
  EXPECT_EQ(sd.rs1.index, 10);
}

TEST(Riscv, ParseRejectsMalformed) {
  EXPECT_THROW(rv::parse_instruction("add a0, a1"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("bogus a0, a1, a2"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("addi a0, a1, 99999"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("slli a0, a1, 64"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("ld a0, 8[sp]"), rv::ParseError);
}

TEST(Riscv, ParseBlockSkipsCommentsAndBlanks) {
  const auto block = rv::parse_block(R"(
    # prologue
    add a0, a1, a2
    ld a3, 16(sp)   ; load
  )");
  ASSERT_EQ(block.size(), 2u);
}

TEST(Riscv, PrintParseRoundTripOverCorpus) {
  for (const auto& block : rv::generate_corpus(40, 11)) {
    EXPECT_EQ(rv::parse_block(block.to_string()), block) << block.to_string();
  }
}

// ---------- x0 semantics (the instance-specific challenge) ----------

// Parse-boundary hardening (fuzz_riscv_parser corpus). The overflow cases
// are a fixed bug: immediates used to go through strtoll, which silently
// clamps out-of-range values to LLONG_MAX instead of rejecting them.
TEST(Riscv, ParserRejectsAdversarialImmediates) {
  EXPECT_THROW(rv::parse_instruction("addi t0, t1, 99999999999999999999999"),
               rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("lw x1, 99999999999999999999999(x2)"),
               rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("addi t0, t1, 0x"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("addi t0, t1, 12junk"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("addi t0, t1,"), rv::ParseError);
  EXPECT_THROW(rv::parse_instruction("lw x1, 8(x2"), rv::ParseError);
}

TEST(Riscv, ParserAcceptsHexAndNegativeImmediates) {
  EXPECT_EQ(rv::parse_instruction("addi t0, t1, 0x10").imm, 16);
  EXPECT_EQ(rv::parse_instruction("addi t0, t1, -8").imm, -8);
}

TEST(Riscv, ZeroRegisterCarriesNoDependency) {
  // add zero, a0, a1 writes x0 => architecturally discarded.
  const auto s = rv::semantics(rv::parse_instruction("add zero, a0, a1"));
  EXPECT_FALSE(s.write.has_value());
  // addi a0, zero, 1 reads x0 => no dependency-carrying read.
  const auto s2 = rv::semantics(rv::parse_instruction("addi a0, zero, 1"));
  EXPECT_TRUE(s2.reads.empty());
  EXPECT_TRUE(s2.write.has_value());
}

TEST(Riscv, NoEdgesThroughZeroRegister) {
  const auto block = rv::parse_block(R"(
    add zero, a0, a1
    addi a2, zero, 5
  )");
  EXPECT_TRUE(rv::DepGraph::build(block).edges().empty());
}

// ---------- dependency graph ----------

TEST(Riscv, RawWarWawDetection) {
  const auto block = rv::parse_block(R"(
    add a0, a1, a2
    sub a3, a0, a1
    add a1, a4, a5
    add a0, a4, a5
  )");
  const auto g = rv::DepGraph::build(block);
  EXPECT_TRUE(g.has_edge(0, 1, rv::DepKind::RAW));  // a0 produced by 0
  // nearest_only links the write of a1 (inst 2) to the *nearest* earlier
  // reader, which is inst 1.
  EXPECT_TRUE(g.has_edge(1, 2, rv::DepKind::WAR));
  EXPECT_FALSE(g.has_edge(0, 2, rv::DepKind::WAR));
  EXPECT_TRUE(g.has_edge(0, 3, rv::DepKind::WAW));  // a0 rewritten by 3
}

TEST(Riscv, MemoryHazardSameLocationOnly) {
  const auto block = rv::parse_block(R"(
    sd a0, 8(sp)
    ld a1, 8(sp)
    ld a2, 16(sp)
  )");
  const auto g = rv::DepGraph::build(block);
  EXPECT_TRUE(g.has_edge(0, 1, rv::DepKind::RAW));
  EXPECT_FALSE(g.has_edge(0, 2, rv::DepKind::RAW));
}

TEST(Riscv, StoreAfterLoadIsWar) {
  const auto block = rv::parse_block(R"(
    ld a1, 8(sp)
    sd a0, 8(sp)
  )");
  EXPECT_TRUE(rv::DepGraph::build(block).has_edge(0, 1, rv::DepKind::WAR));
}

TEST(Riscv, FeatureExtractionCountsAllTypes) {
  const auto block = rv::parse_block(R"(
    add a0, a1, a2
    sub a3, a0, a1
  )");
  const auto fs = rv::extract_features(block);
  // 2 inst features + 1 RAW + 1 eta.
  EXPECT_EQ(fs.size(), 4u);
}

// ---------- perturbation algorithm Γ ----------

class RvPerturbProperty : public ::testing::TestWithParam<int> {};

TEST_P(RvPerturbProperty, SamplesAreValidAndPreserveFeatures) {
  Rng gen_rng(1000 + GetParam());
  const auto block = rv::generate_block(gen_rng);
  const rv::RvPerturber perturber(block);
  Rng rng(GetParam());
  const auto all = rv::extract_features(block);

  for (int k = 0; k < 40; ++k) {
    // Random preserve subset.
    rv::RvFeatureSet preserve;
    for (const auto& f : all.items()) {
      if (rng.uniform() < 0.4) preserve.insert(f);
    }
    const auto pb = perturber.sample(preserve, rng);
    EXPECT_TRUE(rv::is_valid(pb.block))
        << block.to_string() << "->\n" << pb.block.to_string();
    EXPECT_TRUE(perturber.contains(pb, preserve))
        << block.to_string() << "->\n" << pb.block.to_string() << "preserve "
        << preserve.to_string();
  }
}

TEST_P(RvPerturbProperty, MonotonicSpaceSize) {
  Rng gen_rng(2000 + GetParam());
  const auto block = rv::generate_block(gen_rng);
  const rv::RvPerturber perturber(block);
  Rng rng(GetParam() * 7 + 1);
  const auto all = rv::extract_features(block);
  rv::RvFeatureSet f2;
  for (const auto& f : all.items()) {
    if (rng.uniform() < 0.5) f2.insert(f);
  }
  rv::RvFeatureSet f1;
  for (const auto& f : f2.items()) {
    if (rng.uniform() < 0.5) f1.insert(f);
  }
  EXPECT_GE(perturber.log10_space_size(f1) + 1e-9,
            perturber.log10_space_size(f2));
}

INSTANTIATE_TEST_SUITE_P(Corpus, RvPerturbProperty, ::testing::Range(0, 12));

TEST(RiscvPerturb, EtaPreservationForbidsDeletion) {
  Rng gen_rng(3);
  const auto block = rv::generate_block(gen_rng);
  const rv::RvPerturber perturber(block);
  Rng rng(4);
  rv::RvFeatureSet preserve;
  preserve.insert(rv::RvFeature(rv::RvNumInstsFeature{block.size()}));
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(perturber.sample(preserve, rng).block.size(), block.size());
  }
}

TEST(RiscvPerturb, UnconstrainedSamplingActuallyPerturbs) {
  Rng gen_rng(5);
  const auto block = rv::generate_block(gen_rng);
  const rv::RvPerturber perturber(block);
  Rng rng(6);
  std::size_t changed = 0;
  for (int k = 0; k < 50; ++k) {
    changed += perturber.sample({}, rng).block != block;
  }
  EXPECT_GT(changed, 30u);
}

// ---------- analytical cost model ----------

TEST(RiscvCost, DivDominates) {
  const rv::RvCostModel model;
  const auto block = rv::parse_block("div a0, a1, a2\nadd a3, a4, a5");
  EXPECT_DOUBLE_EQ(model.predict(block), 20.0);
  const auto gt = model.ground_truth(block);
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_TRUE(gt.items()[0].is_inst());
  EXPECT_EQ(gt.items()[0].as_inst().opcode, rv::Opcode::DIV);
}

TEST(RiscvCost, RawChainBeatsSingleCosts) {
  const rv::RvCostModel model;
  // mul (3) feeding mul (3): RAW cost 6 > any single cost and > eta/2.
  const auto block = rv::parse_block("mul a0, a1, a2\nmul a3, a0, a4");
  EXPECT_DOUBLE_EQ(model.predict(block), 6.0);
  const auto gt = model.ground_truth(block);
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_TRUE(gt.items()[0].is_dep());
}

TEST(RiscvCost, IssueBoundForWideCheapBlocks) {
  const rv::RvCostModel model;
  // 8 independent ALU ops: eta/2 = 4 > alu cost 0.5.
  rv::BasicBlock block;
  for (int i = 0; i < 8; ++i) {
    block.instructions.push_back(
        rv::parse_instruction("addi a" + std::to_string(i % 6) + ", zero, 1"));
  }
  EXPECT_DOUBLE_EQ(model.predict(block), 4.0);
  const auto gt = model.ground_truth(block);
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_TRUE(gt.items()[0].is_num_insts());
}

TEST(RiscvCost, WarWawAreFree) {
  const rv::RvCostModel model;
  const auto block = rv::parse_block("add a0, a1, a2\nadd a0, a3, a4");
  // WAW between them contributes 0; block cost = eta/2 = 1.
  EXPECT_DOUBLE_EQ(model.predict(block), 1.0);
}

// ---------- end-to-end explanation accuracy ----------

namespace {

bool rv_accurate(const rv::RvFeatureSet& expl, const rv::RvFeatureSet& gt) {
  if (expl.empty()) return false;
  for (const auto& f : expl.items()) {
    if (!gt.contains(f)) return false;
  }
  return true;
}

}  // namespace

TEST(RiscvExplain, AccuracyAgainstAnalyticalGroundTruth) {
  // The Table 2 criterion, ported. Two metrics:
  //  * strict (the paper's): name at least one GT feature and nothing
  //    outside GT;
  //  * loose: name at least one GT feature.
  // Strict accuracy on RISC-V sits well below the x86 version's ~97%: the
  // paper's replacement rule ("opcodes that can accept the original
  // operands") maps to format equality here, so any R-type ALU op can
  // perturb into a 20-cycle divide — coarse anchors lose precision under
  // that wild cost distribution and the search compensates with extra
  // instruction features (supersets of GT count as strict misses). This is
  // one of the "instance-specific challenges" Section 7 predicts; see
  // bench_ext_riscv for the measured comparison.
  const rv::RvCostModel model;
  rv::RvExplainOptions opts;
  opts.coverage_samples = 800;
  opts.max_pulls_per_level = 320;
  const rv::RvExplainer explainer(model, opts);

  const auto corpus = rv::generate_corpus(40, 77);
  std::size_t strict = 0, loose = 0;
  for (const auto& block : corpus) {
    const auto e = explainer.explain(block);
    const auto gt = model.ground_truth(block);
    strict += rv_accurate(e.features, gt);
    loose += std::any_of(e.features.items().begin(), e.features.items().end(),
                         [&](const auto& f) { return gt.contains(f); });
  }
  EXPECT_GE(double(strict) / double(corpus.size()), 0.6)
      << strict << "/" << corpus.size();
  EXPECT_GE(double(loose) / double(corpus.size()), 0.85)
      << loose << "/" << corpus.size();
}

TEST(RiscvExplain, ExplainsDivChain) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  const auto block = rv::parse_block(R"(
    add a0, a1, a2
    div a3, a0, a4
    addi a5, a3, 1
  )");
  const auto e = explainer.explain(block);
  // GT is the div->addi RAW chain? cost: div 20, RAW(div,addi)=20.5 — the
  // chain wins. COMET must name only GT features.
  const auto gt = model.ground_truth(block);
  EXPECT_TRUE(rv_accurate(e.features, gt))
      << e.features.to_string() << " vs GT " << gt.to_string();
}

TEST(RiscvExplain, ReportsQueriesAndProbabilities) {
  const rv::RvCostModel model;
  const rv::RvExplainer explainer(model, {});
  Rng gen_rng(9);
  const auto block = rv::generate_block(gen_rng);
  const auto e = explainer.explain(block);
  EXPECT_GT(e.model_queries, 0u);
  EXPECT_GE(e.precision, 0.0);
  EXPECT_LE(e.precision, 1.0);
  EXPECT_GE(e.coverage, 0.0);
  EXPECT_LE(e.coverage, 1.0);
}
