// Tests for the networking layer (src/net/): frame layout and codec
// round-trips, malformed-input rejection (every bound a typed
// util::ContractViolation), streaming reassembly over fragmented chunks,
// the deterministic SimTransport fault fabric (each Fault kind's observable
// behavior, schedule seeding reproducibility), and the real AF_UNIX
// SocketTransport (pair + listener/connect, deadlines, cross-thread close).
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <future>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/sim_transport.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/contract.h"

namespace cn = comet::net;
namespace ck = comet::cost;
namespace cu = comet::util;

namespace {

// Generous deadline for operations that must succeed (sanitizer builds are
// slow); short deadline for operations that must time out (the awaited
// bytes were dropped and can never arrive, so a short wait is exact, not
// racy).
constexpr std::uint64_t kMustSucceedNs = 20'000'000'000;  // 20 s
constexpr std::uint64_t kMustTimeoutNs = 50'000'000;      // 50 ms

cn::Frame sample_frame() {
  cn::Frame frame;
  frame.type = cn::MessageType::kPredictRequest;
  frame.request_id = 0x1122334455667788ULL;
  cn::PredictRequest req;
  req.block_texts = {"add rax, rbx", "div rcx"};
  frame.payload = cn::encode_predict_request(req);
  return frame;
}

// Pump `bytes` through a transport and reassemble one frame, with a
// per-recv deadline.
std::optional<cn::Frame> recv_frame(cn::Transport& transport,
                                    cn::FrameAssembler& assembler,
                                    std::uint64_t timeout_ns) {
  std::uint8_t buf[512];
  for (;;) {
    if (auto frame = assembler.poll()) return frame;
    const std::size_t n = transport.recv(std::span<std::uint8_t>(buf),
                                         timeout_ns);
    if (n == 0) return std::nullopt;  // end of stream
    assembler.feed(std::span<const std::uint8_t>(buf, n));
  }
}

}  // namespace

// ---------------- frame layout ----------------

TEST(Wire, FrameHeaderLayoutIsExactlyAsDocumented) {
  cn::Frame frame;
  frame.type = cn::MessageType::kError;
  frame.request_id = 0x0102030405060708ULL;
  frame.payload = {0xAA, 0xBB, 0xCC};
  const auto bytes = cn::encode_frame(frame);

  ASSERT_EQ(bytes.size(), cn::kHeaderSize + 3);
  // u32 payload length, little-endian.
  EXPECT_EQ(bytes[0], 3u);
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[2], 0u);
  EXPECT_EQ(bytes[3], 0u);
  // version, type.
  EXPECT_EQ(bytes[4], cn::kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(cn::MessageType::kError));
  // reserved flags.
  EXPECT_EQ(bytes[6], 0u);
  EXPECT_EQ(bytes[7], 0u);
  // u64 request id, little-endian.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[8 + i], 8 - i) << "request id byte " << i;
  }
  // payload follows the checksum.
  EXPECT_EQ(bytes[20], 0xAA);
  EXPECT_EQ(bytes[21], 0xBB);
  EXPECT_EQ(bytes[22], 0xCC);

  EXPECT_EQ(cn::decode_frame(bytes), frame);
}

TEST(Wire, EncodeDecodeRoundTripsEveryMessageType) {
  for (const auto type :
       {cn::MessageType::kPredictRequest, cn::MessageType::kPredictResponse,
        cn::MessageType::kStatsRequest, cn::MessageType::kStatsResponse,
        cn::MessageType::kError, cn::MessageType::kShutdown,
        cn::MessageType::kHealthCheck, cn::MessageType::kHealthReply}) {
    cn::Frame frame;
    frame.type = type;
    frame.request_id = 42 + static_cast<std::uint64_t>(type);
    frame.payload = {1, 2, 3, 4, 5};
    EXPECT_EQ(cn::decode_frame(cn::encode_frame(frame)), frame)
        << "type " << static_cast<int>(type);
  }
  // Empty payloads are legal (kStatsRequest, kShutdown ship none).
  cn::Frame empty;
  empty.type = cn::MessageType::kShutdown;
  EXPECT_EQ(cn::decode_frame(cn::encode_frame(empty)), empty);
}

TEST(Wire, DecodeRejectsEveryMalformedHeader) {
  const auto good = cn::encode_frame(sample_frame());

  // Shorter than a header.
  EXPECT_THROW(cn::decode_frame(std::span<const std::uint8_t>(
                   good.data(), cn::kHeaderSize - 1)),
               cu::ContractViolation);

  // Forged length field promising more than kMaxPayload.
  auto forged = good;
  forged[0] = 0xFF;
  forged[1] = 0xFF;
  forged[2] = 0xFF;
  forged[3] = 0xFF;
  EXPECT_THROW(cn::decode_frame(forged), cu::ContractViolation);

  // Length field inconsistent with the buffer.
  auto short_len = good;
  short_len[0] = static_cast<std::uint8_t>(short_len[0] + 1);
  EXPECT_THROW(cn::decode_frame(short_len), cu::ContractViolation);

  // Unsupported version.
  auto bad_version = good;
  bad_version[4] = cn::kWireVersion + 1;
  EXPECT_THROW(cn::decode_frame(bad_version), cu::ContractViolation);

  // Unknown message type (0 and one past the last).
  auto bad_type = good;
  bad_type[5] = 0;
  EXPECT_THROW(cn::decode_frame(bad_type), cu::ContractViolation);
  bad_type[5] = static_cast<std::uint8_t>(cn::MessageType::kHealthReply) + 1;
  EXPECT_THROW(cn::decode_frame(bad_type), cu::ContractViolation);

  // Reserved flags set.
  auto bad_flags = good;
  bad_flags[6] = 1;
  EXPECT_THROW(cn::decode_frame(bad_flags), cu::ContractViolation);

  // Corrupted payload byte → checksum mismatch.
  auto corrupted = good;
  corrupted[cn::kHeaderSize] ^= 0x01;
  EXPECT_THROW(cn::decode_frame(corrupted), cu::ContractViolation);

  // Corrupted checksum itself.
  auto bad_sum = good;
  bad_sum[16] ^= 0x01;
  EXPECT_THROW(cn::decode_frame(bad_sum), cu::ContractViolation);

  // The original still decodes (the mutations above copied).
  EXPECT_EQ(cn::decode_frame(good), sample_frame());
}

TEST(Wire, DecodeRejectsPreviousWireVersionFrames) {
  // A well-formed v1 frame (the previous release's predict-request layout:
  // block count + strings, no priority/deadline prefix) must be rejected
  // on the version byte — v2 peers never guess at old payload layouts.
  auto v1 = cn::encode_frame(sample_frame());
  ASSERT_EQ(v1[4], cn::kWireVersion);
  v1[4] = 1;
  EXPECT_THROW(cn::decode_frame(v1), cu::ContractViolation);

  cn::FrameAssembler assembler;
  assembler.feed(v1);
  EXPECT_THROW(assembler.poll(), cu::ContractViolation);
}

TEST(Wire, EncodeRejectsOversizedPayload) {
  cn::Frame frame;
  frame.type = cn::MessageType::kPredictResponse;
  frame.payload.resize(cn::kMaxPayload + 1);
  EXPECT_THROW(cn::encode_frame(frame), cu::ContractViolation);
}

// ---------------- payload codecs ----------------

TEST(Wire, PredictRequestRoundTripIncludingEmptyAndOddStrings) {
  cn::PredictRequest req;
  req.block_texts = {"mov rax, 5\ndiv rcx", "", std::string("\x00\xFF tab\t", 6)};
  EXPECT_EQ(cn::decode_predict_request(cn::encode_predict_request(req)), req);
  const cn::PredictRequest empty{};
  EXPECT_EQ(cn::decode_predict_request(cn::encode_predict_request(empty)),
            empty);
}

TEST(Wire, PredictRequestCarriesPriorityAndDeadline) {
  cn::PredictRequest req;
  req.priority = 1;
  req.deadline_ns = 250'000'000;
  req.block_texts = {"add rax, rbx"};
  const auto decoded =
      cn::decode_predict_request(cn::encode_predict_request(req));
  EXPECT_EQ(decoded, req);
  EXPECT_EQ(decoded.priority, 1);
  EXPECT_EQ(decoded.deadline_ns, 250'000'000u);

  // Priority outside the lane range is rejected in both directions.
  cn::PredictRequest bad = req;
  bad.priority = cn::PredictRequest::kMaxPriority + 1;
  EXPECT_THROW(cn::encode_predict_request(bad), cu::ContractViolation);
  auto bytes = cn::encode_predict_request(req);
  bytes[0] = cn::PredictRequest::kMaxPriority + 1;
  EXPECT_THROW(cn::decode_predict_request(bytes), cu::ContractViolation);
}

TEST(Wire, HealthPingAndReplyRoundTripAndRejectMalformedPayloads) {
  const cn::HealthPing ping{0xdeadbeefcafef00dULL};
  EXPECT_EQ(cn::decode_health_ping(cn::encode_health_ping(ping)), ping);

  const cn::HealthReply reply{0xdeadbeefcafef00dULL, 12345};
  EXPECT_EQ(cn::decode_health_reply(cn::encode_health_reply(reply)), reply);

  // Truncated and padded payloads are typed rejections.
  auto short_ping = cn::encode_health_ping(ping);
  short_ping.pop_back();
  EXPECT_THROW(cn::decode_health_ping(short_ping), cu::ContractViolation);
  auto padded = cn::encode_health_reply(reply);
  padded.push_back(0);
  EXPECT_THROW(cn::decode_health_reply(padded), cu::ContractViolation);
  // A ping payload is too short to be a reply.
  EXPECT_THROW(cn::decode_health_reply(cn::encode_health_ping(ping)),
               cu::ContractViolation);
}

TEST(Wire, PredictResponseRoundTripsDoublesBitExactly) {
  const cn::PredictResponse res{{1.0, -0.0, 1e-308, 3.141592653589793,
                                 std::numeric_limits<double>::infinity(),
                                 std::numeric_limits<double>::denorm_min()}};
  const auto decoded =
      cn::decode_predict_response(cn::encode_predict_response(res));
  ASSERT_EQ(decoded.values.size(), res.values.size());
  for (std::size_t i = 0; i < res.values.size(); ++i) {
    // Bit-pattern comparison: -0.0 == 0.0 under operator==, but the wire
    // must preserve the exact bits.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.values[i]),
              std::bit_cast<std::uint64_t>(res.values[i]))
        << "value " << i;
  }
}

TEST(Wire, ErrorAndStatsRoundTrip) {
  const cn::ErrorBody error{cn::ErrorBody::kParseError, "bad opcode 'frob'"};
  EXPECT_EQ(cn::decode_error(cn::encode_error(error)), error);

  ck::QueryStats stats;
  stats.requested = 101;
  stats.evaluated = 55;
  stats.cache_hits = 46;
  stats.batch_calls = 7;
  stats.single_calls = 3;
  EXPECT_EQ(cn::decode_stats(cn::encode_stats(stats)), stats);
}

TEST(Wire, CodecsRejectForgedCountsTruncationAndTrailingGarbage) {
  // Forged element count (huge count, tiny payload) is rejected before any
  // allocation is sized from it.
  std::vector<std::uint8_t> forged = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(cn::decode_predict_request(forged), cu::ContractViolation);
  EXPECT_THROW(cn::decode_predict_response(forged), cu::ContractViolation);

  // Truncation mid-element.
  cn::PredictRequest truncated;
  truncated.block_texts = {"add rax, rbx"};
  auto request = cn::encode_predict_request(truncated);
  request.pop_back();
  EXPECT_THROW(cn::decode_predict_request(request), cu::ContractViolation);

  // Trailing garbage after a well-formed body.
  auto response = cn::encode_predict_response({{2.5}});
  response.push_back(0);
  EXPECT_THROW(cn::decode_predict_response(response), cu::ContractViolation);

  auto stats = cn::encode_stats({});
  stats.pop_back();
  EXPECT_THROW(cn::decode_stats(stats), cu::ContractViolation);

  // Empty error body.
  EXPECT_THROW(cn::decode_error(std::span<const std::uint8_t>()),
               cu::ContractViolation);
}

// ---------------- FrameAssembler ----------------

TEST(FrameAssembler, ReassemblesByteAtATimeAndBackToBackFrames) {
  const auto first = sample_frame();
  cn::Frame second;
  second.type = cn::MessageType::kStatsResponse;
  second.request_id = 9;
  second.payload = cn::encode_stats({});

  std::vector<std::uint8_t> stream = cn::encode_frame(first);
  const auto tail = cn::encode_frame(second);
  stream.insert(stream.end(), tail.begin(), tail.end());

  // One byte at a time: exactly two frames come out, in order.
  cn::FrameAssembler assembler;
  std::vector<cn::Frame> frames;
  for (const std::uint8_t byte : stream) {
    assembler.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto frame = assembler.poll()) frames.push_back(*std::move(frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], first);
  EXPECT_EQ(frames[1], second);
  EXPECT_EQ(assembler.buffered(), 0u);

  // Whole stream in one feed: same result.
  cn::FrameAssembler bulk;
  bulk.feed(stream);
  EXPECT_EQ(bulk.poll(), std::optional<cn::Frame>(first));
  EXPECT_EQ(bulk.poll(), std::optional<cn::Frame>(second));
  EXPECT_EQ(bulk.poll(), std::nullopt);
}

TEST(FrameAssembler, FailsFastOnProvablyBadPrefix) {
  // A forged length field is rejected from the first four bytes — the
  // assembler never waits for the 4 GiB the attacker promised.
  cn::FrameAssembler assembler;
  const std::uint8_t forged_len[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  assembler.feed(forged_len);
  EXPECT_THROW(assembler.poll(), cu::ContractViolation);

  // Bad version is rejected as soon as its byte is buffered, well before
  // the full frame arrives.
  cn::FrameAssembler versioned;
  const std::uint8_t bad_version[6] = {10, 0, 0, 0, 99, 1};
  versioned.feed(bad_version);
  EXPECT_THROW(versioned.poll(), cu::ContractViolation);

  // reset() discards the poisoned prefix; a fresh stream then parses.
  versioned.reset();
  EXPECT_EQ(versioned.buffered(), 0u);
  versioned.feed(cn::encode_frame(sample_frame()));
  EXPECT_EQ(versioned.poll(), std::optional<cn::Frame>(sample_frame()));
}

// ---------------- SimTransport ----------------

TEST(SimTransport, CleanPairDeliversFramesBothWaysThenEof) {
  auto [client, server] = cn::make_sim_pair();
  const auto frame = sample_frame();
  client->send(cn::encode_frame(frame));

  cn::FrameAssembler server_rx;
  const auto got = recv_frame(*server, server_rx, kMustSucceedNs);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);

  cn::Frame reply;
  reply.type = cn::MessageType::kPredictResponse;
  reply.request_id = frame.request_id;
  reply.payload = cn::encode_predict_response({{10.0, 20.0}});
  server->send(cn::encode_frame(reply));

  cn::FrameAssembler client_rx;
  const auto got_reply = recv_frame(*client, client_rx, kMustSucceedNs);
  ASSERT_TRUE(got_reply.has_value());
  EXPECT_EQ(*got_reply, reply);

  // Close → the peer reads end of stream, and sends on the closed
  // endpoint throw.
  client->close();
  std::uint8_t buf[16];
  EXPECT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 0u);
  EXPECT_THROW(client->send(cn::encode_frame(frame)),
               cn::DisconnectedError);
}

TEST(SimTransport, RecvDeadlineThrowsTimeoutWhenNoBytesArrive) {
  auto [client, server] = cn::make_sim_pair();
  std::uint8_t buf[16];
  EXPECT_THROW(server->recv(std::span<std::uint8_t>(buf), kMustTimeoutNs),
               cn::TimeoutError);
  // The connection is still alive afterwards.
  client->send(std::vector<std::uint8_t>{7});
  EXPECT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 1u);
  EXPECT_EQ(buf[0], 7u);
}

TEST(SimTransport, DropFaultVanishesExactlyTheScheduledSend) {
  // Send 0 dropped, send 1 clean.
  auto [client, server] = cn::make_sim_pair(
      cn::FaultSchedule({cn::Fault::drop(), cn::Fault::none()}));
  client->send(std::vector<std::uint8_t>{1, 2, 3});
  std::uint8_t buf[16];
  EXPECT_THROW(server->recv(std::span<std::uint8_t>(buf), kMustTimeoutNs),
               cn::TimeoutError);
  client->send(std::vector<std::uint8_t>{9});
  ASSERT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 1u);
  EXPECT_EQ(buf[0], 9u);
}

TEST(SimTransport, TruncateFaultDeliversOnlyAPrefix) {
  auto [client, server] =
      cn::make_sim_pair(cn::FaultSchedule({cn::Fault::truncate(2)}));
  client->send(std::vector<std::uint8_t>{5, 6, 7, 8});
  std::uint8_t buf[16];
  ASSERT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 2u);
  EXPECT_EQ(buf[0], 5u);
  EXPECT_EQ(buf[1], 6u);
  // The rest never arrives: a partial frame stalls until a deadline fires.
  EXPECT_THROW(server->recv(std::span<std::uint8_t>(buf), kMustTimeoutNs),
               cn::TimeoutError);
}

TEST(SimTransport, DuplicateFaultDeliversTheChunkTwice) {
  auto [client, server] =
      cn::make_sim_pair(cn::FaultSchedule({cn::Fault::duplicate()}));
  const auto frame = sample_frame();
  client->send(cn::encode_frame(frame));
  cn::FrameAssembler rx;
  const auto first = recv_frame(*server, rx, kMustSucceedNs);
  const auto second = recv_frame(*server, rx, kMustSucceedNs);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, frame);
  EXPECT_EQ(*second, frame);
}

TEST(SimTransport, DelayFaultHoldsTheChunkUntilALaterSend) {
  auto [client, server] =
      cn::make_sim_pair(cn::FaultSchedule({cn::Fault::delay(1)}));
  client->send(std::vector<std::uint8_t>{1});
  std::uint8_t buf[16];
  // Held: nothing arrives yet.
  EXPECT_THROW(server->recv(std::span<std::uint8_t>(buf), kMustTimeoutNs),
               cn::TimeoutError);
  // The next send releases it; delivery order is send 1, then send 0.
  client->send(std::vector<std::uint8_t>{2});
  std::size_t got = 0;
  while (got < 2) {
    got += server->recv(
        std::span<std::uint8_t>(buf + got, sizeof(buf) - got),
        kMustSucceedNs);
  }
  EXPECT_EQ(buf[0], 2u);
  EXPECT_EQ(buf[1], 1u);
}

TEST(SimTransport, ReorderFaultSwapsAdjacentSends) {
  auto [client, server] =
      cn::make_sim_pair(cn::FaultSchedule({cn::Fault::reorder()}));
  client->send(std::vector<std::uint8_t>{1});
  client->send(std::vector<std::uint8_t>{2});
  std::uint8_t buf[16];
  std::size_t got = 0;
  while (got < 2) {
    got += server->recv(
        std::span<std::uint8_t>(buf + got, sizeof(buf) - got),
        kMustSucceedNs);
  }
  EXPECT_EQ(buf[0], 2u);
  EXPECT_EQ(buf[1], 1u);
}

TEST(SimTransport, DisconnectAfterFaultDeliversPrefixThenKillsDirection) {
  auto [client, server] =
      cn::make_sim_pair(cn::FaultSchedule({cn::Fault::disconnect_after(3)}));
  client->send(std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  std::uint8_t buf[16];
  ASSERT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 3u);
  // Then a clean end of stream, and the sender's endpoint is dead.
  EXPECT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 0u);
  EXPECT_THROW(client->send(std::vector<std::uint8_t>{6}),
               cn::DisconnectedError);
}

TEST(SimTransport, SeededSchedulesAreDeterministicAndRateControlled) {
  const auto a = cn::FaultSchedule::seeded(1234, 64, 0.5);
  const auto b = cn::FaultSchedule::seeded(1234, 64, 0.5);
  ASSERT_EQ(a.planned_sends(), 64u);
  std::size_t faults = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.at(i), b.at(i)) << "send " << i;
    if (a.at(i).kind != cn::Fault::Kind::kNone) ++faults;
    // kDisconnectAfter is never drawn by seeded sweeps.
    EXPECT_NE(a.at(i).kind, cn::Fault::Kind::kDisconnectAfter);
  }
  EXPECT_GT(faults, 0u);
  EXPECT_LT(faults, 64u);

  // A different seed produces a different plan.
  const auto c = cn::FaultSchedule::seeded(1235, 64, 0.5);
  bool any_diff = false;
  for (std::size_t i = 0; i < 64; ++i) any_diff |= !(a.at(i) == c.at(i));
  EXPECT_TRUE(any_diff);

  // Rate 0 → clean; sends past the plan are clean.
  const auto clean = cn::FaultSchedule::seeded(1, 8, 0.0);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(clean.at(i).kind, cn::Fault::Kind::kNone);
  }
}

// ---------------- SocketTransport ----------------

TEST(SocketTransport, SocketpairRoundTripsFramesAndEof) {
  auto [client, server] = cn::SocketTransport::make_pair();
  const auto frame = sample_frame();
  client->send(cn::encode_frame(frame));

  cn::FrameAssembler rx;
  const auto got = recv_frame(*server, rx, kMustSucceedNs);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);

  std::uint8_t buf[16];
  EXPECT_THROW(server->recv(std::span<std::uint8_t>(buf), kMustTimeoutNs),
               cn::TimeoutError);

  client->close();
  EXPECT_EQ(server->recv(std::span<std::uint8_t>(buf), kMustSucceedNs), 0u);
}

TEST(SocketTransport, CloseFromAnotherThreadUnblocksARecv) {
  auto [client, server] = cn::SocketTransport::make_pair();
  // The cancellation hook: a recv parked with no deadline is released by a
  // concurrent close() on the same endpoint.
  auto parked = std::async(std::launch::async, [&server = server] {
    std::uint8_t buf[16];
    return server->recv(std::span<std::uint8_t>(buf), cn::kNoTimeout);
  });
  server->close();
  EXPECT_EQ(parked.get(), 0u);
}

TEST(SocketTransport, UnixListenerAcceptConnectRoundTrip) {
  const std::string path =
      testing::TempDir() + "comet_test_net_" +
      std::to_string(::getpid()) + ".sock";
  cn::UnixListener listener(path);
  EXPECT_EQ(listener.path(), path);

  auto dialing = std::async(std::launch::async,
                            [&path] { return cn::connect_unix(path); });
  auto accepted = listener.accept(kMustSucceedNs);
  auto dialed = dialing.get();
  ASSERT_NE(accepted, nullptr);
  ASSERT_NE(dialed, nullptr);

  const auto frame = sample_frame();
  dialed->send(cn::encode_frame(frame));
  cn::FrameAssembler rx;
  const auto got = recv_frame(*accepted, rx, kMustSucceedNs);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
}

TEST(SocketTransport, AcceptDeadlineAndDeadPathAreTypedErrors) {
  const std::string path =
      testing::TempDir() + "comet_test_net_idle_" +
      std::to_string(::getpid()) + ".sock";
  cn::UnixListener listener(path);
  EXPECT_THROW(listener.accept(kMustTimeoutNs), cn::TimeoutError);
  EXPECT_THROW(cn::connect_unix(path + ".nonexistent"), cn::TransportError);
}
