// Unit tests for comet::util — RNG determinism and distributional sanity,
// statistics, KL confidence bounds, table rendering, string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/kl_bounds.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/str.h"
#include "util/table.h"

namespace cu = comet::util;

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  cu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  cu::Rng rng(11);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversRangeUniformly) {
  cu::Rng rng(3);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.index(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, n / 7.0 * 0.1);
}

TEST(Rng, IndexThrowsOnZero) {
  cu::Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, RangeInclusiveBounds) {
  cu::Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliFrequency) {
  cu::Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  cu::Rng rng(13);
  cu::RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.05);
  EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  cu::Rng parent(21);
  cu::Rng c1 = parent.fork();
  cu::Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next_u64() == c2.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePreservesElements) {
  cu::Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, Fnv1aStableAndDistinct) {
  EXPECT_EQ(cu::fnv1a64("abc"), cu::fnv1a64("abc"));
  EXPECT_NE(cu::fnv1a64("abc"), cu::fnv1a64("abd"));
  EXPECT_NE(cu::fnv1a64(""), cu::fnv1a64("a"));
}

// ---------- stats ----------

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(cu::mean(xs), 5.0);
  EXPECT_NEAR(cu::stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(cu::mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MapeBasic) {
  const std::vector<double> pred{110, 90};
  const std::vector<double> act{100, 100};
  EXPECT_NEAR(cu::mape(pred, act), 10.0, 1e-9);
}

TEST(Stats, MapeSkipsZeroActuals) {
  const std::vector<double> pred{110, 123};
  const std::vector<double> act{100, 0};
  EXPECT_NEAR(cu::mape(pred, act), 10.0, 1e-9);
}

TEST(Stats, MapeSizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cu::mape(a, b), std::invalid_argument);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 25), 2.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(cu::pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(cu::pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotone) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(cu::spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  cu::Rng rng(31);
  std::vector<double> xs;
  cu::RunningStats st;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    st.add(x);
  }
  EXPECT_NEAR(st.mean(), cu::mean(xs), 1e-9);
  EXPECT_NEAR(st.stddev(), cu::stddev(xs), 1e-9);
  EXPECT_EQ(st.count(), xs.size());
}

// ---------- KL bounds ----------

TEST(KlBounds, KlZeroWhenEqual) {
  EXPECT_NEAR(cu::bernoulli_kl(0.3, 0.3), 0.0, 1e-12);
}

TEST(KlBounds, KlPositiveAndAsymmetric) {
  EXPECT_GT(cu::bernoulli_kl(0.2, 0.8), 0.0);
  EXPECT_GT(cu::bernoulli_kl(0.8, 0.2), 0.0);
}

TEST(KlBounds, KlBoundaryCases) {
  EXPECT_GE(cu::bernoulli_kl(0.0, 0.5), 0.0);
  EXPECT_GE(cu::bernoulli_kl(1.0, 0.5), 0.0);
  EXPECT_TRUE(std::isfinite(cu::bernoulli_kl(0.0, 0.999)));
  EXPECT_TRUE(std::isfinite(cu::bernoulli_kl(1.0, 0.001)));
}

TEST(KlBounds, UpperBoundBracketsMean) {
  const double ub = cu::kl_upper_bound(0.5, 100, 1.0);
  EXPECT_GE(ub, 0.5);
  EXPECT_LE(ub, 1.0);
}

TEST(KlBounds, LowerBoundBracketsMean) {
  const double lb = cu::kl_lower_bound(0.5, 100, 1.0);
  EXPECT_LE(lb, 0.5);
  EXPECT_GE(lb, 0.0);
}

TEST(KlBounds, BoundsTightenWithSamples) {
  const double ub_small = cu::kl_upper_bound(0.7, 10, 1.0);
  const double ub_large = cu::kl_upper_bound(0.7, 1000, 1.0);
  EXPECT_LT(ub_large, ub_small);
  const double lb_small = cu::kl_lower_bound(0.7, 10, 1.0);
  const double lb_large = cu::kl_lower_bound(0.7, 1000, 1.0);
  EXPECT_GT(lb_large, lb_small);
}

TEST(KlBounds, BoundsWidenWithLevel) {
  EXPECT_LE(cu::kl_upper_bound(0.5, 50, 0.5), cu::kl_upper_bound(0.5, 50, 2.0));
  EXPECT_GE(cu::kl_lower_bound(0.5, 50, 0.5), cu::kl_lower_bound(0.5, 50, 2.0));
}

TEST(KlBounds, ZeroSamplesGiveVacuousBounds) {
  EXPECT_DOUBLE_EQ(cu::kl_upper_bound(0.5, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(cu::kl_lower_bound(0.5, 0, 1.0), 0.0);
}

TEST(KlBounds, BoundInversionProperty) {
  // n * kl(p_hat, bound) ~= level at the returned bound (when interior).
  const double p = 0.6;
  const std::size_t n = 200;
  const double level = 2.0;
  const double ub = cu::kl_upper_bound(p, n, level);
  EXPECT_NEAR(n * cu::bernoulli_kl(p, ub), level, 1e-6);
  const double lb = cu::kl_lower_bound(p, n, level);
  EXPECT_NEAR(n * cu::bernoulli_kl(p, lb), level, 1e-6);
}

TEST(KlBounds, LucbLevelIncreasesWithT) {
  EXPECT_LT(cu::kl_lucb_level(1, 10, 0.1), cu::kl_lucb_level(100, 10, 0.1));
}

// Parameterized coverage property: the KL interval covers the true mean with
// frequency at least ~(1 - 2*exp(-level)) in a Bernoulli simulation.
class KlCoverage : public ::testing::TestWithParam<double> {};

TEST_P(KlCoverage, IntervalCoversTrueMean) {
  const double p_true = GetParam();
  cu::Rng rng(1234 + static_cast<std::uint64_t>(p_true * 1000));
  const std::size_t n = 200;
  const double level = 3.0;  // exp(-3) ~ 0.05 per side
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) hits += rng.bernoulli(p_true);
    const double p_hat = static_cast<double>(hits) / n;
    const double lb = cu::kl_lower_bound(p_hat, n, level);
    const double ub = cu::kl_upper_bound(p_hat, n, level);
    covered += (lb <= p_true && p_true <= ub);
  }
  EXPECT_GE(covered / double(trials), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KlCoverage,
                         ::testing::Values(0.05, 0.3, 0.5, 0.7, 0.95));

// ---------- Table ----------

TEST(Table, RendersHeaderAndRows) {
  cu::Table t({"model", "value"});
  t.add_row({"ithemal", "1.30"});
  t.add_row({"uica", "2.00"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("ithemal"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  cu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"x"}), std::invalid_argument);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(cu::Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(cu::Table::fmt_pm(1.0, 0.5, 1), "1.0 +- 0.5");
}

// ---------- str ----------

TEST(Str, Trim) {
  EXPECT_EQ(cu::trim("  ab \t"), "ab");
  EXPECT_EQ(cu::trim(""), "");
  EXPECT_EQ(cu::trim("   "), "");
}

TEST(Str, Split) {
  const auto parts = cu::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(Str, SplitWs) {
  const auto parts = cu::split_ws("  mov   rax, rbx ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "mov");
  EXPECT_EQ(parts[1], "rax,");
}

TEST(Str, ToLowerAndStartsWith) {
  EXPECT_EQ(cu::to_lower("MoV"), "mov");
  EXPECT_TRUE(cu::starts_with("0x123", "0x"));
  EXPECT_FALSE(cu::starts_with("1", "0x"));
}

TEST(Str, Join) {
  EXPECT_EQ(cu::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(cu::join({}, ","), "");
}

TEST(Str, FormatFixed) {
  EXPECT_EQ(cu::format_fixed(0.6333333333, 3), "0.633");
  EXPECT_EQ(cu::format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(cu::format_fixed(0.0, 2), "0.00");
  EXPECT_EQ(cu::format_fixed(-2.5, 1), "-2.5");
  EXPECT_EQ(cu::format_fixed(12.3456, 0), "12");
}
