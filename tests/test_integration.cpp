// Integration tests across modules: dataset -> perturbation -> explanation
// -> evaluation, plus cross-module invariants checked over a generated
// corpus (parameterized property suites).
#include <gtest/gtest.h>

#include "bhive/dataset.h"
#include "bhive/paper_blocks.h"
#include "core/eval.h"
#include "core/model_zoo.h"
#include "cost/crude_model.h"
#include "perturb/perturber.h"
#include "sim/models.h"
#include "util/stats.h"

namespace cb = comet::bhive;
namespace cc = comet::core;
namespace cg = comet::graph;
namespace ck = comet::cost;
namespace cp = comet::perturb;
namespace cs = comet::sim;
namespace cx = comet::x86;
using comet::util::Rng;

namespace {

cb::Dataset small_dataset() {
  cb::DatasetOptions opt;
  opt.size = 120;
  opt.seed = 4242;
  return cb::generate_dataset(opt);
}

}  // namespace

// ---------- end-to-end accuracy on the crude model ----------

TEST(Integration, CometBeatsBaselinesOnCrudeModel) {
  const auto dataset = small_dataset();
  const auto test_set = cb::explanation_test_set(dataset, 30, 99);
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 400;
  const auto r = cc::run_accuracy_experiment(model, test_set, opt, 1);
  // Shape of paper Table 2: COMET far ahead of both baselines.
  EXPECT_GT(r.comet_pct, r.fixed_pct);
  EXPECT_GT(r.comet_pct, r.random_pct);
  EXPECT_GE(r.comet_pct, 70.0);
}

TEST(Integration, AnalyzeModelProducesSaneRanges) {
  const auto dataset = small_dataset();
  const auto test_set = cb::explanation_test_set(dataset, 10, 7);
  const cs::UiCASimModel model(ck::MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.5;
  opt.coverage_samples = 300;
  const auto stats = cc::analyze_model(model, ck::MicroArch::Haswell,
                                       test_set, opt, 80, 300, 1);
  EXPECT_EQ(stats.blocks, 10u);
  EXPECT_GE(stats.avg_precision, 0.0);
  EXPECT_LE(stats.avg_precision, 1.0);
  EXPECT_GE(stats.avg_coverage, 0.0);
  EXPECT_LE(stats.avg_coverage, 1.0);
  EXPECT_GE(stats.mape, 0.0);
  EXPECT_LE(stats.pct_with_num_insts, 100.0);
  EXPECT_LE(stats.pct_with_inst, 100.0);
  EXPECT_LE(stats.pct_with_dep, 100.0);
}

TEST(Integration, UicaMoreAccurateThanMcaOnDataset) {
  const auto dataset = small_dataset();
  const cs::UiCASimModel uica(ck::MicroArch::Haswell);
  const cs::McaLikeModel mca(ck::MicroArch::Haswell);
  std::vector<double> up, mp, act;
  for (const auto& lb : dataset.blocks()) {
    up.push_back(uica.predict(lb.block));
    mp.push_back(mca.predict(lb.block));
    act.push_back(lb.measured_hsw);
  }
  EXPECT_LT(comet::util::mape(up, act), comet::util::mape(mp, act));
}

TEST(Integration, ExplanationFeaturesComeFromVocabulary) {
  const auto dataset = small_dataset();
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 200;
  const cc::CometExplainer explainer(model, opt);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& block = dataset[i].block;
    const auto vocabulary = cg::extract_features(block);
    const auto expl = explainer.explain(block);
    EXPECT_FALSE(expl.features.empty());
    EXPECT_TRUE(expl.features.is_subset_of(vocabulary))
        << expl.features.to_string();
  }
}

TEST(Integration, ModelZooConstructsAllCheapModels) {
  for (const auto kind : {cc::ModelKind::UiCA, cc::ModelKind::Oracle,
                          cc::ModelKind::Mca, cc::ModelKind::Crude}) {
    for (const auto uarch :
         {ck::MicroArch::Haswell, ck::MicroArch::Skylake}) {
      const auto model = cc::make_model(kind, uarch);
      ASSERT_NE(model, nullptr);
      EXPECT_GT(model->predict(cb::listing1_motivating()), 0.0);
    }
  }
}

// ---------- property suites over a generated corpus ----------

class CorpusProperty : public ::testing::TestWithParam<int> {
 protected:
  cx::BasicBlock block() const {
    cb::BlockGenerator gen;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    return gen.generate(rng);
  }
};

TEST_P(CorpusProperty, PerturbationsAreAlwaysValid) {
  const auto b = block();
  const cp::Perturber perturber(b);
  Rng rng(GetParam() * 31 + 7);
  const auto vocabulary = cg::extract_features(b);
  for (int i = 0; i < 40; ++i) {
    // Unconstrained samples.
    EXPECT_TRUE(cx::is_valid(perturber.sample(cg::FeatureSet{}, rng).block));
    // Single-feature-preserving samples.
    const auto& f = vocabulary.items()[rng.index(vocabulary.size())];
    cg::FeatureSet fs;
    fs.insert(f);
    const auto s = perturber.sample(fs, rng);
    EXPECT_TRUE(cx::is_valid(s.block));
    EXPECT_TRUE(perturber.contains(s, fs))
        << "feature " << f.to_string() << " lost in\n"
        << s.block.to_string();
  }
}

TEST_P(CorpusProperty, IdentityContainsAllItsFeatures) {
  const auto b = block();
  const cp::Perturber perturber(b);
  cp::PerturbedBlock identity{b, {}};
  for (std::size_t i = 0; i < b.size(); ++i) identity.orig_index.push_back(i);
  const auto vocabulary = cg::extract_features(b);
  EXPECT_TRUE(perturber.contains(identity, vocabulary));
}

TEST_P(CorpusProperty, SpaceSizeMonotoneUnderPreservation) {
  const auto b = block();
  const cp::Perturber perturber(b);
  const auto vocabulary = cg::extract_features(b);
  cg::FeatureSet acc;
  double prev = perturber.log10_space_size(acc);
  for (const auto& f : vocabulary.items()) {
    acc.insert(f);
    const double cur = perturber.log10_space_size(acc);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST_P(CorpusProperty, SimulatorsAgreeOnOrderOfMagnitude) {
  const auto b = block();
  const cs::HardwareOracle oracle(ck::MicroArch::Haswell);
  const cs::UiCASimModel uica(ck::MicroArch::Haswell);
  const double o = oracle.predict(b);
  const double u = uica.predict(b);
  ASSERT_GT(o, 0.0);
  EXPECT_LT(std::abs(o - u) / o, 0.6) << b.to_string();
}

TEST_P(CorpusProperty, CrudeModelGroundTruthNonEmptyAndAttained) {
  const auto b = block();
  const ck::CrudeModel model(ck::MicroArch::Haswell);
  const auto gt = model.ground_truth(b);
  EXPECT_FALSE(gt.empty());
  // Every GT feature is in the block's vocabulary.
  const auto vocabulary = cg::extract_features(b);
  for (const auto& f : gt.items()) {
    if (f.is_dep()) {
      // Dep GT features may be collapsed representatives; check pair match.
      bool found = false;
      for (const auto& v : vocabulary.items()) {
        found |= v.is_dep() && v.as_dep().from == f.as_dep().from &&
                 v.as_dep().to == f.as_dep().to;
      }
      EXPECT_TRUE(found) << f.to_string();
    } else {
      EXPECT_TRUE(vocabulary.contains(f)) << f.to_string();
    }
  }
}

TEST_P(CorpusProperty, MeasurementNoiseWithinTwoPercent) {
  const auto b = block();
  const cs::HardwareOracle oracle(ck::MicroArch::Haswell);
  const double o = oracle.predict(b);
  const double m = cs::measured_throughput(b, ck::MicroArch::Haswell);
  EXPECT_LE(std::abs(m - o) / o, 0.0201);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusProperty, ::testing::Range(1, 21));
