// Tests for the differential cost-model analysis: disagreement detection,
// ranking, explanation pass, feature-type aggregation, and rendering.
#include <gtest/gtest.h>

#include "bhive/dataset.h"
#include "cost/crude_model.h"
#include "diff/diff.h"
#include "x86/parser.h"

namespace cd = comet::diff;
namespace cc = comet::cost;
namespace cx = comet::x86;

namespace {

/// Coarse model: only looks at the instruction count. One cycle per
/// instruction, so ±1 instruction moves the prediction by a full cycle —
/// beyond COMET's default ε = 0.5 — and η is strongly identified.
class EtaOnlyModel final : public cc::CostModel {
 public:
  double predict(const cx::BasicBlock& block) const override {
    return double(block.size());
  }
  std::string name() const override { return "eta-only"; }
};

std::vector<cx::BasicBlock> corpus(std::size_t n = 120) {
  comet::bhive::DatasetOptions opts;
  opts.size = n;
  opts.seed = 99;
  return comet::bhive::generate_dataset(opts).block_views();
}

cd::DiffOptions fast_options(bool explain = true) {
  cd::DiffOptions o;
  o.top_k = 4;
  o.explain = explain;
  // Slim COMET budgets: the test asserts structure, not tight estimates.
  o.comet.coverage_samples = 200;
  o.comet.final_precision_samples = 50;
  o.comet.max_pulls_per_level = 40;
  o.comet.epsilon = 0.5;
  return o;
}

}  // namespace

TEST(Diff, IdenticalModelsProduceNoDisagreements) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const auto s =
      cd::analyze_disagreements(crude, crude, corpus(60), fast_options(false));
  EXPECT_EQ(s.disagreements, 0u);
  EXPECT_TRUE(s.top.empty());
  EXPECT_EQ(s.blocks_scanned, 60u);
}

TEST(Diff, CrudeVsEtaOnlyDisagreesOnExpensiveBlocks) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  const auto s =
      cd::analyze_disagreements(crude, eta, corpus(), fast_options(false));
  EXPECT_GT(s.disagreements, 0u);
  // The largest gap separates the two models' views of some block: either
  // a crude-model bottleneck (div / RAW chain) far above the count, or a
  // cheap wide block the per-instruction model overprices.
  ASSERT_FALSE(s.top.empty());
  EXPECT_GE(s.top.front().rel_gap, 0.25);
  EXPECT_GT(s.top.front().pred_a, 0.0);
  EXPECT_GT(s.top.front().pred_b, 0.0);
}

TEST(Diff, RankingIsDescendingByGap) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto opts = fast_options(false);
  opts.top_k = 20;
  const auto s = cd::analyze_disagreements(crude, eta, corpus(), opts);
  for (std::size_t i = 1; i < s.top.size(); ++i) {
    EXPECT_GE(s.top[i - 1].rel_gap, s.top[i].rel_gap);
  }
}

TEST(Diff, MinRelGapFiltersSmallDisagreements) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto strict = fast_options(false);
  strict.min_rel_gap = 5.0;
  auto loose = fast_options(false);
  loose.min_rel_gap = 0.05;
  const auto blocks = corpus();
  const auto s_strict = cd::analyze_disagreements(crude, eta, blocks, strict);
  const auto s_loose = cd::analyze_disagreements(crude, eta, blocks, loose);
  EXPECT_LE(s_strict.disagreements, s_loose.disagreements);
  for (const auto& d : s_strict.top) EXPECT_GE(d.rel_gap, 5.0);
}

TEST(Diff, TopKCapsExplainedSet) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto opts = fast_options(false);
  opts.top_k = 3;
  const auto s = cd::analyze_disagreements(crude, eta, corpus(), opts);
  EXPECT_LE(s.top.size(), 3u);
}

TEST(Diff, ExplainPassFillsBothSides) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto opts = fast_options(true);
  opts.top_k = 2;
  const auto s = cd::analyze_disagreements(crude, eta, corpus(80), opts);
  ASSERT_FALSE(s.top.empty());
  for (const auto& d : s.top) {
    EXPECT_FALSE(d.expl_a.features.empty());
    EXPECT_FALSE(d.expl_b.features.empty());
  }
}

TEST(Diff, EtaOnlyModelExplanationsAreEtaDominated) {
  // The coarse model's explanations on disagreement blocks should name η
  // (its only input); the crude model's should skew to inst/dep features.
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto opts = fast_options(true);
  opts.top_k = 5;
  const auto s = cd::analyze_disagreements(crude, eta, corpus(80), opts);
  ASSERT_FALSE(s.top.empty());
  EXPECT_GE(s.profile_b.pct_num_insts, 50.0);
  EXPECT_GE(s.profile_a.pct_inst + s.profile_a.pct_dep,
            s.profile_a.pct_num_insts);
}

TEST(Diff, SkippedExplainLeavesProfilesZero) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  const auto s =
      cd::analyze_disagreements(crude, eta, corpus(60), fast_options(false));
  EXPECT_EQ(s.profile_a.pct_num_insts, 0.0);
  EXPECT_EQ(s.profile_b.pct_inst, 0.0);
}

TEST(Diff, EmptyCorpusIsHarmless) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  const auto s = cd::analyze_disagreements(crude, eta, {}, fast_options());
  EXPECT_EQ(s.blocks_scanned, 0u);
  EXPECT_TRUE(s.top.empty());
}

TEST(Diff, RenderContainsRankedRowsAndProfiles) {
  const cc::CrudeModel crude(cc::MicroArch::Haswell);
  const EtaOnlyModel eta;
  auto opts = fast_options(true);
  opts.top_k = 2;
  const auto s = cd::analyze_disagreements(crude, eta, corpus(60), opts);
  const std::string out = s.to_string("crude", "eta-only");
  EXPECT_NE(out.find("disagreements"), std::string::npos);
  EXPECT_NE(out.find("crude"), std::string::npos);
  EXPECT_NE(out.find("eta-only"), std::string::npos);
  EXPECT_NE(out.find("% eta"), std::string::npos);
}
