// Tests for the serving-layer traffic controls (PR 10): per-request
// deadlines with typed expiry at admission, in queue, and after a late
// run; the two-lane admission queue (interactive-first dequeue with the
// batch anti-starvation credit); watermark load shedding with per-lane
// accounting; and the determinism contract — none of the scheduling
// machinery changes the bits of an explanation that completes.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/comet.h"
#include "cost/crude_model.h"
#include "obs/clock.h"
#include "serve/isa_servers.h"
#include "serve/shed_policy.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace ck = comet::cost;
namespace co = comet::obs;
namespace cs = comet::serve;
namespace cx = comet::x86;

namespace {

cc::CometOptions light_options(std::uint64_t seed) {
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 150;
  opt.max_pulls_per_level = 40;
  opt.batch_size = 8;
  opt.final_precision_samples = 60;
  opt.seed = seed;
  return opt;
}

cx::BasicBlock small_block() {
  return cx::parse_block(R"(
    mov rax, 5
    div rcx
    add rsi, rdi
  )");
}

// Blocks every query until the test opens the gate; pins the server's
// single worker so queue contents are under test control.
class GateModel final : public ck::CostModel {
 public:
  double predict(const cx::BasicBlock&) const override {
    wait_open();
    return 1.0;
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    wait_open();
    for (std::size_t i = 0; i < blocks.size(); ++i) out[i] = 1.0;
  }
  std::string name() const override { return "gate"; }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void await_entered() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return entered_; });
  }

 private:
  void wait_open() const {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  bool open_ = false;
};

// Moves the manual clock forward on every query, so a run provably takes
// (virtual) time and a run-stage deadline can expire mid-explanation.
// Predictions delegate to a real model: advancing a clock must never
// change the bits.
class ClockAdvancingModel final : public ck::CostModel {
 public:
  ClockAdvancingModel(std::shared_ptr<const ck::CostModel> inner,
                      co::ManualClock& clock, std::uint64_t step_ns)
      : inner_(std::move(inner)), clock_(clock), step_ns_(step_ns) {}

  double predict(const cx::BasicBlock& block) const override {
    clock_.advance_ns(step_ns_);
    return inner_->predict(block);
  }
  void predict_batch(std::span<const cx::BasicBlock> blocks,
                     std::span<double> out) const override {
    clock_.advance_ns(step_ns_);
    inner_->predict_batch(blocks, out);
  }
  std::string name() const override { return "clock-advancing"; }

 private:
  std::shared_ptr<const ck::CostModel> inner_;
  co::ManualClock& clock_;
  std::uint64_t step_ns_;
};

void expect_identical(const cc::Explanation& a, const cc::Explanation& b) {
  EXPECT_EQ(a.features, b.features)
      << a.features.to_string() << " vs " << b.features.to_string();
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.met_threshold, b.met_threshold);
  EXPECT_EQ(a.model_queries, b.model_queries);
}

std::uint64_t counter_value(const cs::X86ExplanationServer& server,
                            const std::string& name) {
  for (const auto& [key, value] : server.metrics().snapshot().counters) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

// ---------------- the watermark policy in isolation ----------------

TEST(WatermarkShedPolicy, TwoWatermarksAndInfeasibilityShedding) {
  cs::WatermarkShedPolicy policy(
      {.batch_watermark = 0.5, .saturation_watermark = 0.875,
       .min_slack_ns = 1000});
  cs::ShedContext context;
  context.queue_capacity = 8;

  // Below every watermark: nobody is shed.
  context.queue_depth = 3;
  context.lane = cs::Lane::kBatch;
  EXPECT_FALSE(policy.should_shed(context));

  // Above the batch watermark: batch is shed, interactive is not.
  context.queue_depth = 4;
  EXPECT_TRUE(policy.should_shed(context));
  context.lane = cs::Lane::kInteractive;
  EXPECT_FALSE(policy.should_shed(context));

  // At saturation: deadline-infeasible work is shed from either lane;
  // feasible (or deadline-free) interactive work never is.
  context.queue_depth = 7;
  context.has_deadline = true;
  context.deadline_slack_ns = 500;  // < min_slack_ns
  EXPECT_TRUE(policy.should_shed(context));
  context.deadline_slack_ns = 5000;
  EXPECT_FALSE(policy.should_shed(context));
  context.has_deadline = false;
  EXPECT_FALSE(policy.should_shed(context));

  // min_slack_ns = 0 disables infeasibility shedding entirely.
  cs::WatermarkShedPolicy no_slack(
      {.batch_watermark = 0.5, .saturation_watermark = 0.875,
       .min_slack_ns = 0});
  context.has_deadline = true;
  context.deadline_slack_ns = 1;
  EXPECT_FALSE(no_slack.should_shed(context));
}

// ---------------- deadline expiry at every stage ----------------

TEST(Deadlines, ExpiredAtAdmitIsATypedRefusalNotASilentDrop) {
  co::ManualClock clock(100);
  cs::X86ExplanationServer server(
      {.workers = 1, .queue_capacity = 4, .clock = &clock});
  server.register_model(
      "crude", std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell));

  // Already past its deadline: a ticket is still issued and the refusal
  // arrives through the ordinary completion stream.
  const auto ticket =
      server.submit("crude", small_block(), light_options(1),
                    {.lane = cs::Lane::kInteractive, .deadline_ns = 50});
  EXPECT_GT(ticket, 0u);

  // try_submit agrees: an expired request is "accepted" (true, ticket)
  // because its typed result is already on the stream.
  std::uint64_t try_ticket = 0;
  EXPECT_TRUE(server.try_submit("crude", small_block(), light_options(2),
                                &try_ticket,
                                {.lane = cs::Lane::kBatch, .deadline_ns = 99}));
  EXPECT_GT(try_ticket, 0u);

  const auto results = server.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& served : results) {
    EXPECT_EQ(served.status, cs::ServeStatus::kDeadlineExceededAtAdmit);
    EXPECT_FALSE(cs::has_explanation(served.status));
    EXPECT_EQ(served.lane, served.id == ticket ? cs::Lane::kInteractive
                                               : cs::Lane::kBatch);
  }
  EXPECT_EQ(counter_value(server, "serve_deadline_expired{stage=\"admit\"}"),
            2u);
  EXPECT_EQ(server.outstanding(), 0u);
}

TEST(Deadlines, ExpiryInQueueNeverRunsTheEngine) {
  co::ManualClock clock;
  auto gate = std::make_shared<GateModel>();
  cs::X86ExplanationServer server(
      {.workers = 1, .queue_capacity = 8, .clock = &clock});
  server.register_model("gate", gate);

  // Pin the single worker, then queue a job whose deadline passes while
  // it waits.
  const auto pin = server.submit("gate", small_block(), light_options(1));
  gate->await_entered();
  const auto doomed =
      server.submit("gate", small_block(), light_options(2),
                    {.lane = cs::Lane::kInteractive, .deadline_ns = 1000});
  clock.advance_ns(2000);
  gate->open();

  const auto results = server.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& served : results) {
    if (served.id == pin) {
      EXPECT_EQ(served.status, cs::ServeStatus::kOk);
      EXPECT_GT(served.explanation.model_queries, 0u);
    } else {
      EXPECT_EQ(served.id, doomed);
      EXPECT_EQ(served.status, cs::ServeStatus::kDeadlineExceededInQueue);
      EXPECT_FALSE(cs::has_explanation(served.status));
      // The engine never ran: no model queries, no ledger contribution.
      EXPECT_EQ(served.explanation.model_queries, 0u);
    }
  }
  EXPECT_EQ(counter_value(server, "serve_deadline_expired{stage=\"queue\"}"),
            1u);
}

TEST(Deadlines, LateRunIsDeliveredBitIdenticalAndLabelled) {
  co::ManualClock clock;
  auto crude = std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  auto slow = std::make_shared<const ClockAdvancingModel>(crude, clock,
                                                          /*step_ns=*/500);
  const auto options = light_options(9);
  const auto block = small_block();
  // Sequential ground truth over the same underlying predictions.
  const auto expected = cc::CometExplainer(*crude, options).explain(block);

  cs::X86ExplanationServer server(
      {.workers = 1, .queue_capacity = 4, .clock = &clock});
  server.register_model("slow", slow);
  server.submit("slow", block, options,
                {.lane = cs::Lane::kInteractive, .deadline_ns = 1});

  const auto results = server.drain();
  ASSERT_EQ(results.size(), 1u);
  // The run outlived its deadline, so it is labelled late — but the
  // explanation completed and its bits match the sequential path exactly.
  EXPECT_EQ(results[0].status, cs::ServeStatus::kLate);
  EXPECT_TRUE(cs::has_explanation(results[0].status));
  expect_identical(results[0].explanation, expected);
  EXPECT_EQ(counter_value(server, "serve_deadline_late"), 1u);
}

// ---------------- lanes: ordering and anti-starvation ----------------

TEST(Lanes, InteractiveFirstWithBatchAntiStarvationCredit) {
  auto gate = std::make_shared<GateModel>();
  cs::X86ExplanationServer server({.workers = 1, .queue_capacity = 16,
                                   .batch_credit_every = 3});
  server.register_model("gate", gate);

  // Pin the worker, then fill both lanes while nothing can be dequeued.
  const auto pin = server.submit("gate", small_block(), light_options(1));
  gate->await_entered();
  std::vector<std::uint64_t> interactive;
  std::vector<std::uint64_t> batch;
  for (int i = 0; i < 4; ++i) {
    interactive.push_back(server.submit("gate", small_block(),
                                        light_options(10 + i),
                                        {.lane = cs::Lane::kInteractive}));
    batch.push_back(server.submit("gate", small_block(),
                                  light_options(20 + i),
                                  {.lane = cs::Lane::kBatch}));
  }
  gate->open();

  // Single worker => completion order == dequeue order. With
  // batch_credit_every = 3 and both lanes waiting, every third dequeue is
  // batch; once the interactive lane empties, batch drains in order.
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 9u);
  EXPECT_EQ(results[0].id, pin);
  const std::vector<std::uint64_t> expected_order = {
      interactive[0], interactive[1], batch[0],
      interactive[2], interactive[3], batch[1], batch[2], batch[3]};
  for (std::size_t i = 0; i < expected_order.size(); ++i) {
    EXPECT_EQ(results[i + 1].id, expected_order[i]) << "position " << i;
  }
  for (const auto& served : results) {
    EXPECT_EQ(served.status, cs::ServeStatus::kOk);
  }
}

// ---------------- load shedding with per-lane accounting ----------------

TEST(Shedding, WatermarkPolicyShedsBatchFirstAndCountsPerLane) {
  co::ManualClock clock;
  auto gate = std::make_shared<GateModel>();
  cs::ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.clock = &clock;
  options.shed_policy = std::make_shared<const cs::WatermarkShedPolicy>(
      cs::WatermarkShedPolicy::Options{.batch_watermark = 0.5,
                                       .saturation_watermark = 0.875,
                                       .min_slack_ns = 1000});
  cs::X86ExplanationServer server(options);
  server.register_model("gate", gate);

  server.submit("gate", small_block(), light_options(1));
  gate->await_entered();

  // Four interactive jobs fill half the queue (shedding never fires below
  // the batch watermark)...
  for (int i = 0; i < 4; ++i) {
    server.submit("gate", small_block(), light_options(10 + i),
                  {.lane = cs::Lane::kInteractive});
  }
  // ...so the next batch job is shed, with a ticket and a typed result.
  std::uint64_t shed_ticket = 0;
  ASSERT_TRUE(server.try_submit("gate", small_block(), light_options(30),
                                &shed_ticket, {.lane = cs::Lane::kBatch}));
  EXPECT_GT(shed_ticket, 0u);
  EXPECT_EQ(counter_value(server, "serve_shed{lane=\"batch\"}"), 1u);

  // Interactive traffic is untouched until saturation...
  for (int i = 0; i < 3; ++i) {
    server.submit("gate", small_block(), light_options(40 + i),
                  {.lane = cs::Lane::kInteractive});
  }
  // ...where deadline-infeasible interactive work (500ns slack < 1000ns
  // minimum) is shed too: it would only expire in the queue.
  ASSERT_TRUE(server.try_submit(
      "gate", small_block(), light_options(50), nullptr,
      {.lane = cs::Lane::kInteractive, .deadline_ns = clock.now_ns() + 500}));
  EXPECT_EQ(counter_value(server, "serve_shed{lane=\"interactive\"}"), 1u);

  // Deadline-free interactive work still falls through to ordinary
  // bounded-queue backpressure: admitted while a slot remains...
  EXPECT_TRUE(server.try_submit("gate", small_block(), light_options(60),
                                nullptr, {.lane = cs::Lane::kInteractive}));
  // ...then refused (false, no typed result) when the queue is full.
  EXPECT_FALSE(server.try_submit("gate", small_block(), light_options(61),
                                 nullptr, {.lane = cs::Lane::kInteractive}));

  gate->open();
  const auto results = server.drain();
  // 1 pin + 4 + 3 + 1 ran; 2 shed refusals rode the same stream.
  ASSERT_EQ(results.size(), 11u);
  std::size_t ok = 0;
  std::size_t shed = 0;
  for (const auto& served : results) {
    if (served.status == cs::ServeStatus::kOk) ++ok;
    if (served.status == cs::ServeStatus::kShed) {
      ++shed;
      EXPECT_FALSE(cs::has_explanation(served.status));
    }
  }
  EXPECT_EQ(ok, 9u);
  EXPECT_EQ(shed, 2u);
  EXPECT_EQ(counter_value(server, "serve_try_submit_rejected"), 1u);
}

// ---------------- determinism under full traffic controls ----------------

TEST(TrafficControls, CompletedExplanationsBitIdenticalToSequential) {
  auto crude = std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  const auto block = small_block();

  std::vector<cc::CometOptions> job_options;
  std::vector<cc::Explanation> expected;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    job_options.push_back(light_options(100 + seed));
    expected.push_back(
        cc::CometExplainer(*crude, job_options.back()).explain(block));
  }

  // Deadlines, lanes, and a live shed policy all engaged — but generous
  // enough that every job runs. The scheduling machinery must not perturb
  // a single bit.
  cs::ServeOptions options;
  options.workers = 4;
  options.queue_capacity = 16;
  options.shed_policy = std::make_shared<const cs::WatermarkShedPolicy>();
  cs::X86ExplanationServer server(options);
  server.register_model("crude", crude);

  std::vector<std::uint64_t> tickets;
  for (std::size_t i = 0; i < job_options.size(); ++i) {
    cs::RequestOptions request;
    request.lane = i % 2 == 0 ? cs::Lane::kInteractive : cs::Lane::kBatch;
    request.deadline_ns =
        co::steady_clock().now_ns() + 60ull * 1'000'000'000;  // one minute
    tickets.push_back(
        server.submit("crude", block, job_options[i], request));
  }
  const auto results = server.drain();
  ASSERT_EQ(results.size(), job_options.size());
  for (const auto& served : results) {
    std::size_t idx = tickets.size();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (tickets[i] == served.id) idx = i;
    }
    ASSERT_LT(idx, tickets.size());
    EXPECT_TRUE(cs::has_explanation(served.status));
    expect_identical(served.explanation, expected[idx]);
  }
}

// Chaos mode (scripts/check.sh --chaos) only: re-run the full-stack
// scenario COMET_CHAOS_SEEDS times with a tight queue and fewer workers
// than jobs, so admission backpressure and dequeue interleaving — not
// the inputs — vary between rounds. Parity must hold in every round.
TEST(TrafficControls, ChaosRoundsKeepBitParityUnderTightQueues) {
  const char* env = std::getenv("COMET_CHAOS_SEEDS");
  if (env == nullptr) {
    GTEST_SKIP() << "set COMET_CHAOS_SEEDS to run the chaos rounds";
  }
  const std::size_t rounds =
      static_cast<std::size_t>(std::strtoull(env, nullptr, 10));

  auto crude = std::make_shared<const ck::CrudeModel>(ck::MicroArch::Haswell);
  const auto block = small_block();
  constexpr std::size_t kJobs = 8;
  std::vector<cc::CometOptions> job_options;
  std::vector<cc::Explanation> expected;
  for (std::uint64_t seed = 0; seed < kJobs; ++seed) {
    job_options.push_back(light_options(500 + seed));
    expected.push_back(
        cc::CometExplainer(*crude, job_options.back()).explain(block));
  }

  for (std::size_t round = 0; round < rounds; ++round) {
    cs::ServeOptions options;
    options.workers = 3;
    options.queue_capacity = 4;  // blocking submits exercise backpressure
    options.batch_credit_every = 2 + round % 3;
    options.shed_policy = std::make_shared<const cs::WatermarkShedPolicy>();
    cs::X86ExplanationServer server(options);
    server.register_model("crude", crude);

    std::vector<std::uint64_t> tickets;
    for (std::size_t i = 0; i < kJobs; ++i) {
      cs::RequestOptions request;
      request.lane = i % 2 == 0 ? cs::Lane::kInteractive : cs::Lane::kBatch;
      request.deadline_ns =
          co::steady_clock().now_ns() + 60ull * 1'000'000'000;
      tickets.push_back(
          server.submit("crude", block, job_options[i], request));
    }
    const auto results = server.drain();
    ASSERT_EQ(results.size(), kJobs);
    std::size_t completed = 0;
    for (const auto& served : results) {
      std::size_t idx = tickets.size();
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (tickets[i] == served.id) idx = i;
      }
      ASSERT_LT(idx, tickets.size());
      // The tight queue may shed batch work — a typed refusal, never a
      // silent drop — but whatever completes must be bit-identical.
      if (cs::has_explanation(served.status)) {
        ++completed;
        expect_identical(served.explanation, expected[idx]);
      } else {
        EXPECT_EQ(served.status, cs::ServeStatus::kShed)
            << "round " << round;
        EXPECT_EQ(served.lane, cs::Lane::kBatch) << "round " << round;
      }
    }
    // Interactive work is never shed by the watermark policy, so at
    // least half of every round completes.
    EXPECT_GE(completed, kJobs / 2) << "round " << round;
  }
}
