// Tests for the evaluation harness and baselines (paper Section 6): the
// accuracy criterion's exact semantics, baseline calibration, the
// end-to-end accuracy experiment's ordering (COMET > fixed > random), the
// analyze_model statistics, and the cheap model-zoo constructions.
#include <gtest/gtest.h>

#include "bhive/dataset.h"
#include "core/baselines.h"
#include "core/eval.h"
#include "core/model_zoo.h"
#include "x86/parser.h"

namespace cc = comet::core;
namespace cg = comet::graph;
namespace cx = comet::x86;
using comet::cost::MicroArch;

namespace {

cg::Feature inst_f(std::size_t i, cx::Opcode op) {
  return cg::Feature(cg::InstFeature{i, op});
}
cg::Feature eta_f(std::size_t n) {
  return cg::Feature(cg::NumInstsFeature{n});
}

cg::FeatureSet set_of(std::initializer_list<cg::Feature> fs) {
  cg::FeatureSet s;
  for (const auto& f : fs) s.insert(f);
  return s;
}

}  // namespace

// ---------- accuracy criterion (eq. 9 + Section 6 definition) ----------

TEST(EvalCriterion, SubsetOfGroundTruthIsAccurate) {
  const auto gt = set_of({inst_f(0, cx::Opcode::DIV), eta_f(5)});
  EXPECT_TRUE(cc::explanation_accurate(set_of({inst_f(0, cx::Opcode::DIV)}),
                                       gt));
  EXPECT_TRUE(cc::explanation_accurate(gt, gt));
}

TEST(EvalCriterion, EmptyExplanationIsInaccurate) {
  const auto gt = set_of({eta_f(4)});
  EXPECT_FALSE(cc::explanation_accurate({}, gt));
}

TEST(EvalCriterion, AnyFeatureOutsideGtIsInaccurate) {
  const auto gt = set_of({inst_f(0, cx::Opcode::DIV)});
  const auto expl = set_of({inst_f(0, cx::Opcode::DIV), eta_f(3)});
  EXPECT_FALSE(cc::explanation_accurate(expl, gt));
}

// ---------- summarize ----------

TEST(EvalSummarize, MeanAndStd) {
  const auto ms = cc::summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ms.mean, 4.0);
  EXPECT_NEAR(ms.std, 2.0, 1e-12);
}

// ---------- baselines ----------

TEST(EvalBaselines, FrequenciesTrackGroundTruthTypes) {
  cc::FeatureTypeFrequencies freqs;
  freqs.add(set_of({inst_f(0, cx::Opcode::DIV)}));
  freqs.add(set_of({inst_f(1, cx::Opcode::MUL), eta_f(4)}));
  freqs.add(set_of({inst_f(2, cx::Opcode::ADD)}));
  EXPECT_DOUBLE_EQ(freqs.total(), 4.0);
  EXPECT_EQ(freqs.most_frequent(), cg::FeatureType::Inst);
}

TEST(EvalBaselines, FixedBaselineEmitsFirstFeatureOfDominantType) {
  cc::FeatureTypeFrequencies freqs;
  freqs.add(set_of({inst_f(0, cx::Opcode::DIV)}));
  const cc::FixedBaseline fixed(freqs);
  const auto block = cx::parse_block("add rax, rbx\ndiv rcx");
  const auto e = fixed.explain(block);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_TRUE(e.items()[0].is_inst());
  EXPECT_EQ(e.items()[0].as_inst().index, 0u);
}

TEST(EvalBaselines, RandomBaselineEmitsOneFeatureOfTheBlock) {
  cc::FeatureTypeFrequencies freqs;
  freqs.add(set_of({inst_f(0, cx::Opcode::DIV), eta_f(2)}));
  cc::RandomBaseline random(freqs, 7);
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  const auto all = cg::extract_features(block);
  for (int k = 0; k < 20; ++k) {
    const auto e = random.explain(block);
    ASSERT_EQ(e.size(), 1u);
    EXPECT_TRUE(all.contains(e.items()[0])) << e.to_string();
  }
}

// ---------- end-to-end accuracy experiment ----------

TEST(EvalExperiment, CometBeatsBaselinesOnCrudeModel) {
  comet::bhive::DatasetOptions dopt;
  dopt.size = 60;
  dopt.seed = 501;
  const auto ds = comet::bhive::generate_dataset(dopt);
  const auto test = comet::bhive::explanation_test_set(ds, 20, 5);

  const comet::cost::CrudeModel model(MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.25;
  opt.coverage_samples = 300;
  const auto r = cc::run_accuracy_experiment(model, test, opt, 1);
  EXPECT_GT(r.comet_pct, r.fixed_pct);
  EXPECT_GT(r.comet_pct, r.random_pct);
  EXPECT_GE(r.comet_pct, 80.0);
}

TEST(EvalExperiment, AnalyzeModelStatsAreWellFormed) {
  comet::bhive::DatasetOptions dopt;
  dopt.size = 40;
  dopt.seed = 502;
  const auto ds = comet::bhive::generate_dataset(dopt);
  const auto test = comet::bhive::explanation_test_set(ds, 8, 3);

  const auto uica =
      cc::make_model(cc::ModelKind::UiCA, MicroArch::Haswell);
  cc::CometOptions opt;
  opt.epsilon = 0.5;
  opt.coverage_samples = 200;
  const auto stats =
      cc::analyze_model(*uica, MicroArch::Haswell, test, opt, 40, 200, 9);
  EXPECT_EQ(stats.blocks, 8u);
  EXPECT_GE(stats.avg_precision, 0.0);
  EXPECT_LE(stats.avg_precision, 1.0);
  EXPECT_GE(stats.avg_coverage, 0.0);
  EXPECT_LE(stats.avg_coverage, 1.0);
  EXPECT_GE(stats.mape, 0.0);
  EXPECT_LE(stats.pct_with_num_insts, 100.0);
  EXPECT_LE(stats.pct_with_inst, 100.0);
  EXPECT_LE(stats.pct_with_dep, 100.0);
}

// ---------- model zoo (cheap kinds only; neural kinds train) ----------

TEST(EvalZoo, CheapModelsConstructAndPredict) {
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  for (const auto kind : {cc::ModelKind::UiCA, cc::ModelKind::Oracle,
                          cc::ModelKind::Mca, cc::ModelKind::Crude}) {
    for (const auto uarch : {MicroArch::Haswell, MicroArch::Skylake}) {
      const auto model = cc::make_model(kind, uarch);
      ASSERT_NE(model, nullptr);
      EXPECT_GT(model->predict(block), 0.0) << model->name();
      EXPECT_FALSE(model->name().empty());
    }
  }
}

TEST(EvalZoo, ZooDatasetIsCanonicalAndStable) {
  const auto& a = cc::zoo_dataset();
  const auto& b = cc::zoo_dataset();
  EXPECT_EQ(&a, &b);  // one instance per process
  EXPECT_EQ(a.size(), 3000u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GE(a[i].block.size(), 4u);
    EXPECT_LE(a[i].block.size(), 10u);
    EXPECT_GT(a[i].measured_hsw, 0.0);
    EXPECT_GT(a[i].measured_skl, 0.0);
  }
}
