// Tests for the extended opcode catalog: setcc, BMI, movbe/xadd/cdq/cqo,
// GPR<->XMM moves, packed shifts, AVX2 integer / broadcast / lane ops, and
// the additional FMA forms. Each case checks parsing, signature matching,
// and the access semantics the dependency graph is built from.
#include <gtest/gtest.h>

#include <algorithm>

#include "x86/isa.h"
#include "graph/depgraph.h"
#include "x86/parser.h"

namespace cx = comet::x86;

namespace {

cx::InstSemantics sem_of(std::string_view line) {
  return cx::semantics(cx::parse_instruction(line));
}

bool reads_family(const cx::InstSemantics& s, cx::RegFamily f) {
  return std::any_of(s.regs.begin(), s.regs.end(), [&](const auto& a) {
    return a.reg.family == f && a.read;
  });
}
bool writes_family(const cx::InstSemantics& s, cx::RegFamily f) {
  return std::any_of(s.regs.begin(), s.regs.end(), [&](const auto& a) {
    return a.reg.family == f && a.write;
  });
}

}  // namespace

// ---------- setcc ----------

TEST(X86Ext, SetccParsesAndReadsFlags) {
  const auto inst = cx::parse_instruction("sete al");
  EXPECT_EQ(inst.opcode, cx::Opcode::SETE);
  const auto s = cx::semantics(inst);
  EXPECT_TRUE(s.reads_flags);
  EXPECT_FALSE(s.writes_flags);
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RAX));
}

TEST(X86Ext, SetccRejectsWideRegisters) {
  EXPECT_FALSE(cx::is_valid(cx::Instruction{
      cx::Opcode::SETNE,
      {cx::Operand(cx::Reg{cx::RegFamily::RAX, 64})}}));
}

TEST(X86Ext, SetccMemoryForm) {
  const auto s = sem_of("setb byte ptr [rdi]");
  ASSERT_TRUE(s.mem.has_value());
  EXPECT_TRUE(s.mem->write);
  EXPECT_FALSE(s.mem->read);
}

// ---------- cmovcc extensions ----------

TEST(X86Ext, NewCmovFormsParse) {
  for (const char* line : {"cmovbe rax, rbx", "cmovae ecx, edx",
                           "cmovo rsi, rdi", "cmovnp r8, r9"}) {
    const auto inst = cx::parse_instruction(line);
    const auto s = cx::semantics(inst);
    EXPECT_TRUE(s.reads_flags) << line;
  }
}

// ---------- movbe / xadd / cdq / cqo ----------

TEST(X86Ext, MovbeHasNoRegRegForm) {
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("movbe rax, qword ptr [rdi]")));
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("movbe dword ptr [rdi], eax")));
  EXPECT_FALSE(cx::is_valid(cx::Instruction{
      cx::Opcode::MOVBE,
      {cx::Operand(cx::Reg{cx::RegFamily::RAX, 64}),
       cx::Operand(cx::Reg{cx::RegFamily::RBX, 64})}}));
}

TEST(X86Ext, XaddReadsAndWritesBothOperands) {
  const auto s = sem_of("xadd rax, rbx");
  EXPECT_TRUE(reads_family(s, cx::RegFamily::RAX));
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RAX));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::RBX));
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RBX));
  EXPECT_TRUE(s.writes_flags);
}

TEST(X86Ext, CdqCqoImplicitRegisters) {
  const auto cdq = sem_of("cdq");
  EXPECT_TRUE(reads_family(cdq, cx::RegFamily::RAX));
  EXPECT_TRUE(writes_family(cdq, cx::RegFamily::RDX));
  EXPECT_FALSE(writes_family(cdq, cx::RegFamily::RAX));

  const auto cqo = sem_of("cqo");
  EXPECT_TRUE(reads_family(cqo, cx::RegFamily::RAX));
  EXPECT_TRUE(writes_family(cqo, cx::RegFamily::RDX));
}

TEST(X86Ext, CdqCreatesRawDependencyOnRax) {
  // add rax, rbx ; cdq — cdq reads rax, so a RAW edge must exist.
  const auto block = cx::parse_block("add rax, rbx\ncdq");
  const auto g = comet::graph::DepGraph::build(block);
  EXPECT_TRUE(g.has_edge(0, 1, comet::graph::DepKind::RAW));
}

// ---------- BMI ----------

TEST(X86Ext, AndnThreeOperandForm) {
  const auto s = sem_of("andn rax, rbx, rcx");
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RAX));
  EXPECT_FALSE(reads_family(s, cx::RegFamily::RAX));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::RBX));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::RCX));
  EXPECT_TRUE(s.writes_flags);
}

TEST(X86Ext, AndnRequiresUniformWidth) {
  EXPECT_FALSE(cx::is_valid(cx::Instruction{
      cx::Opcode::ANDN,
      {cx::Operand(cx::Reg{cx::RegFamily::RAX, 64}),
       cx::Operand(cx::Reg{cx::RegFamily::RBX, 32}),
       cx::Operand(cx::Reg{cx::RegFamily::RCX, 64})}}));
}

TEST(X86Ext, BlsiFamilyWritesFreshDestination) {
  for (const char* line : {"blsi rax, rbx", "blsr ecx, edx",
                           "blsmsk r10, r11"}) {
    const auto s = sem_of(line);
    ASSERT_FALSE(s.regs.empty()) << line;
    EXPECT_TRUE(s.regs[0].write) << line;
    EXPECT_FALSE(s.regs[0].read) << line;
    EXPECT_TRUE(s.writes_flags) << line;
  }
}

TEST(X86Ext, ShlxTakesCountInThirdRegister) {
  const auto s = sem_of("shlx rax, rbx, rcx");
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RAX));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::RCX));
  EXPECT_FALSE(s.writes_flags);  // the point of the BMI2 shifts
}

TEST(X86Ext, RorxTakesImmediateCount) {
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("rorx rax, rbx, 13")));
  EXPECT_FALSE(cx::is_valid(cx::Instruction{
      cx::Opcode::RORX,
      {cx::Operand(cx::Reg{cx::RegFamily::RAX, 64}),
       cx::Operand(cx::Reg{cx::RegFamily::RBX, 64}),
       cx::Operand(cx::Reg{cx::RegFamily::RCX, 64})}}));
}

// ---------- GPR <-> XMM ----------

TEST(X86Ext, MovdCrossesRegisterFiles) {
  const auto to_vec = sem_of("movd xmm0, eax");
  EXPECT_TRUE(reads_family(to_vec, cx::RegFamily::RAX));
  EXPECT_TRUE(writes_family(to_vec, cx::RegFamily::XMM0));
  const auto to_gpr = sem_of("movd eax, xmm0");
  EXPECT_TRUE(reads_family(to_gpr, cx::RegFamily::XMM0));
  EXPECT_TRUE(writes_family(to_gpr, cx::RegFamily::RAX));
}

TEST(X86Ext, MovqAcceptsVecToVec) {
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("movq xmm1, xmm2")));
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("movq rax, xmm0")));
  // movd rejects 64-bit GPRs (movq covers them).
  EXPECT_FALSE(cx::is_valid(cx::Instruction{
      cx::Opcode::MOVD,
      {cx::Operand(cx::Reg{cx::RegFamily::XMM0, 128}),
       cx::Operand(cx::Reg{cx::RegFamily::RAX, 64})}}));
}

// ---------- packed shifts, predicates, horizontals ----------

TEST(X86Ext, PackedShiftForms) {
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("pslld xmm0, 4")));
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("psrlq xmm1, xmm2")));
  const auto s = sem_of("pslld xmm0, 4");
  EXPECT_TRUE(reads_family(s, cx::RegFamily::XMM0));
  EXPECT_TRUE(writes_family(s, cx::RegFamily::XMM0));
}

TEST(X86Ext, PtestWritesFlagsOnly) {
  const auto s = sem_of("ptest xmm0, xmm1");
  EXPECT_TRUE(s.writes_flags);
  for (const auto& a : s.regs) EXPECT_FALSE(a.write);
}

TEST(X86Ext, PmovmskbExtractsMask) {
  const auto s = sem_of("pmovmskb eax, xmm3");
  EXPECT_TRUE(writes_family(s, cx::RegFamily::RAX));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::XMM3));
}

TEST(X86Ext, HorizontalAddsAreReadModifyWrite) {
  const auto s = sem_of("haddps xmm0, xmm1");
  EXPECT_TRUE(reads_family(s, cx::RegFamily::XMM0));
  EXPECT_TRUE(writes_family(s, cx::RegFamily::XMM0));
}

// ---------- AVX2 / lane operations ----------

TEST(X86Ext, Avx2IntegerYmmForms) {
  for (const char* line : {"vpaddq ymm0, ymm1, ymm2",
                           "vpmulld ymm3, ymm4, ymm5",
                           "vpminub xmm0, xmm1, xmm2"}) {
    EXPECT_TRUE(cx::is_valid(cx::parse_instruction(line))) << line;
  }
}

TEST(X86Ext, BroadcastWidens) {
  EXPECT_TRUE(cx::is_valid(cx::parse_instruction("vbroadcastss ymm0, xmm1")));
  EXPECT_TRUE(cx::is_valid(
      cx::parse_instruction("vbroadcastss xmm0, dword ptr [rdi]")));
  const auto s = sem_of("vpbroadcastd ymm2, xmm0");
  EXPECT_TRUE(writes_family(s, cx::RegFamily::XMM2));
}

TEST(X86Ext, LaneInsertExtract) {
  EXPECT_TRUE(
      cx::is_valid(cx::parse_instruction("vinsertf128 ymm0, ymm1, xmm2, 1")));
  EXPECT_TRUE(
      cx::is_valid(cx::parse_instruction("vextractf128 xmm0, ymm1, 0")));
  const auto s = sem_of("vextractf128 xmmword ptr [rdi], ymm1, 1");
  ASSERT_TRUE(s.mem.has_value());
  EXPECT_TRUE(s.mem->write);
}

TEST(X86Ext, Vperm2f128TakesTwoSourcesAndImm) {
  const auto s = sem_of("vperm2f128 ymm0, ymm1, ymm2, 32");
  EXPECT_TRUE(writes_family(s, cx::RegFamily::XMM0));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::XMM1));
  EXPECT_TRUE(reads_family(s, cx::RegFamily::XMM2));
}

TEST(X86Ext, FmaOrderingVariantsAllAccumulate) {
  for (const char* line :
       {"vfmadd132ss xmm0, xmm1, xmm2", "vfmadd213sd xmm3, xmm4, xmm5",
        "vfnmadd231ss xmm6, xmm7, xmm8", "vfmsub231ss xmm0, xmm1, xmm2",
        "vfmadd132ps ymm0, ymm1, ymm2"}) {
    const auto s = sem_of(line);
    // FMA destination is an accumulator: read and written.
    EXPECT_TRUE(s.regs[0].read) << line;
    EXPECT_TRUE(s.regs[0].write) << line;
  }
}

// ---------- replacement candidates over the extended catalog ----------

TEST(X86Ext, SetccFamilyMembersReplaceEachOther) {
  const auto inst = cx::parse_instruction("sete al");
  const auto repl = cx::replacement_opcodes(inst.opcode, inst.operands);
  EXPECT_NE(std::find(repl.begin(), repl.end(), cx::Opcode::SETNE),
            repl.end());
  EXPECT_NE(std::find(repl.begin(), repl.end(), cx::Opcode::SETA), repl.end());
}

TEST(X86Ext, RorxNotReplaceableByFlagShifts) {
  // rorx takes (r, r, imm8); legacy shifts take (r/m, imm8) — arity differs,
  // so they must not appear as candidates.
  const auto inst = cx::parse_instruction("rorx rax, rbx, 7");
  const auto repl = cx::replacement_opcodes(inst.opcode, inst.operands);
  EXPECT_EQ(std::find(repl.begin(), repl.end(), cx::Opcode::ROR), repl.end());
  EXPECT_EQ(std::find(repl.begin(), repl.end(), cx::Opcode::SHL), repl.end());
}

TEST(X86Ext, XaddIsCandidateForAdd) {
  const auto inst = cx::parse_instruction("add rax, rbx");
  const auto repl = cx::replacement_opcodes(inst.opcode, inst.operands);
  EXPECT_NE(std::find(repl.begin(), repl.end(), cx::Opcode::XADD), repl.end());
}

TEST(X86Ext, EveryNewOpcodeHasAtLeastOneSignature) {
  for (const cx::Opcode op : cx::all_opcodes()) {
    EXPECT_FALSE(cx::info(op).signatures.empty())
        << cx::mnemonic(op) << " has no signatures";
  }
}

TEST(X86Ext, MnemonicRoundTripOverFullCatalog) {
  for (const cx::Opcode op : cx::all_opcodes()) {
    const auto parsed = cx::parse_opcode(cx::mnemonic(op));
    ASSERT_TRUE(parsed.has_value()) << cx::mnemonic(op);
    EXPECT_EQ(*parsed, op);
  }
}
