// Tests for the Ithemal surrogate: tokenizer, learning behaviour on small
// synthetic datasets, serialization round-trip, and train_or_load caching.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "bhive/dataset.h"
#include "cost/ithemal_model.h"
#include "util/contract.h"
#include "util/stats.h"
#include "x86/parser.h"

namespace cc = comet::cost;
namespace cb = comet::bhive;
namespace cx = comet::x86;

namespace {

cc::IthemalConfig tiny_config() {
  cc::IthemalConfig cfg;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 12;
  cfg.epochs = 3;
  cfg.lr = 5e-3;
  return cfg;
}

const cc::MicroArch HSW = cc::MicroArch::Haswell;

// Overwrite `n` bytes at `offset` in the file at `p` (adversarial
// checkpoint-corruption helper for the load() hardening tests).
void patch_file(const std::filesystem::path& p, long offset, const void* bytes,
                std::size_t n) {
  std::FILE* fp = std::fopen(p.string().c_str(), "r+b");
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(std::fseek(fp, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(bytes, 1, n, fp), n);
  std::fclose(fp);
}

}  // namespace

// ---------- tokenizer ----------

TEST(Tokenizer, VocabularyCoversAllOpcodesAndRegisters) {
  const cc::BlockTokenizer tok;
  EXPECT_GT(tok.vocab_size(), cx::kNumOpcodes);
}

TEST(Tokenizer, OneSequencePerInstruction) {
  const cc::BlockTokenizer tok;
  const auto block = cx::parse_block(R"(
    add rcx, rax
    mov rdx, qword ptr [rdi + 24]
    pop rbx
  )");
  const auto seqs = tok.tokenize(block);
  ASSERT_EQ(seqs.size(), 3u);
  // "add rcx, rax": opcode + 2 registers.
  EXPECT_EQ(seqs[0].size(), 3u);
  // Memory operand adds open/close markers and the base register.
  EXPECT_GE(seqs[1].size(), 4u);
  for (const auto& seq : seqs) {
    for (int t : seq) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<int>(tok.vocab_size()));
    }
  }
}

TEST(Tokenizer, DistinguishesRegistersAndWidths) {
  const cc::BlockTokenizer tok;
  const auto a = tok.tokenize(cx::parse_block("mov rax, rcx"));
  const auto b = tok.tokenize(cx::parse_block("mov rax, rdx"));
  const auto c = tok.tokenize(cx::parse_block("mov eax, ecx"));
  EXPECT_NE(a[0], b[0]);  // different source register
  EXPECT_NE(a[0], c[0]);  // different width
}

// ---------- model learning ----------

TEST(Ithemal, PredictsPositiveThroughput) {
  cc::IthemalModel model(HSW, tiny_config());
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  EXPECT_GT(model.predict(block), 0.0);
  EXPECT_DOUBLE_EQ(model.predict(cx::BasicBlock{}), 0.0);
}

TEST(Ithemal, TrainingReducesError) {
  // Train on a trivially learnable function of block length.
  cc::IthemalModel model(HSW, tiny_config());
  std::vector<cx::BasicBlock> blocks;
  std::vector<double> targets;
  comet::util::Rng rng(5);
  cb::BlockGenerator gen;
  for (int i = 0; i < 150; ++i) {
    blocks.push_back(gen.generate(rng));
    targets.push_back(static_cast<double>(blocks.back().size()) / 4.0);
  }
  // Error before training.
  std::vector<double> before;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    before.push_back(model.predict(blocks[i]));
  }
  const double mape_before = comet::util::mape(before, targets);
  const double mape_after = model.train(blocks, targets);
  EXPECT_LT(mape_after, mape_before);
  EXPECT_LT(mape_after, 25.0);
}

TEST(Ithemal, LearnedModelIsSensitiveToLength) {
  cc::IthemalModel model(HSW, tiny_config());
  std::vector<cx::BasicBlock> blocks;
  std::vector<double> targets;
  comet::util::Rng rng(6);
  cb::BlockGenerator gen;
  for (int i = 0; i < 200; ++i) {
    blocks.push_back(gen.generate(rng));
    targets.push_back(static_cast<double>(blocks.back().size()));
  }
  model.train(blocks, targets);
  const auto small = cx::parse_block("add rcx, rax\nmov rdx, rcx\npop rbx\ninc rsi");
  auto big = small;
  for (int i = 0; i < 6; ++i) {
    big.instructions.push_back(cx::parse_instruction("add r8, r9"));
  }
  EXPECT_GT(model.predict(big), model.predict(small));
}

TEST(Ithemal, DeterministicInitialization) {
  cc::IthemalModel a(HSW, tiny_config()), b(HSW, tiny_config());
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  EXPECT_DOUBLE_EQ(a.predict(block), b.predict(block));
}

TEST(Ithemal, UarchsInitializeDifferently) {
  cc::IthemalModel hsw(HSW, tiny_config());
  cc::IthemalModel skl(cc::MicroArch::Skylake, tiny_config());
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  EXPECT_NE(hsw.predict(block), skl.predict(block));
}

// ---------- serialization ----------

TEST(Ithemal, SaveLoadRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_ithemal.bin";
  cc::IthemalModel a(HSW, tiny_config());
  // Perturb weights away from init so the round-trip is meaningful.
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  a.train_step(block, 2.0);
  a.save(path);

  cc::IthemalModel b(HSW, tiny_config());
  ASSERT_TRUE(b.load(path));
  EXPECT_DOUBLE_EQ(a.predict(block), b.predict(block));
  std::filesystem::remove(path);
}

TEST(Ithemal, LoadRejectsMissingOrCorruptFiles) {
  cc::IthemalModel model(HSW, tiny_config());
  EXPECT_FALSE(model.load("/nonexistent/path/weights.bin"));

  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_garbage.bin";
  std::FILE* fp = std::fopen(path.string().c_str(), "wb");
  const char garbage[] = "not a weight file";
  std::fwrite(garbage, 1, sizeof(garbage), fp);
  std::fclose(fp);
  EXPECT_FALSE(model.load(path));
  std::filesystem::remove(path);
}

// Regression: a truncated checkpoint behind a valid magic is structural
// corruption, not a cache miss — load() must throw ContractViolation
// (total-size gate, before any payload read) and must not leave the model
// half-overwritten. Historically load() streamed weights straight into the
// live matrices and only then noticed the file was truncated.
TEST(Ithemal, TruncatedCheckpointThrowsAndPreservesWeights) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_truncated.bin";
  cc::IthemalModel trained(HSW, tiny_config());
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  trained.train_step(block, 2.0);
  trained.save(path);

  // Truncate the checkpoint mid-weights: keep the magic and the first
  // matrix header so a naive reader would fail deep inside the read, after
  // having already clobbered part of the model.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);

  cc::IthemalModel victim(HSW, tiny_config());
  victim.train_step(block, 5.0);  // distinct live weights worth preserving
  const double before = victim.predict(block);
  EXPECT_THROW(victim.load(path), comet::util::ContractViolation);
  EXPECT_DOUBLE_EQ(victim.predict(block), before);
  std::filesystem::remove(path);
}

// An adversary who appends bytes to a valid checkpoint (or splices two
// checkpoints together) must hit the same total-size gate as truncation.
TEST(Ithemal, OversizedCheckpointThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_oversized.bin";
  cc::IthemalModel model(HSW, tiny_config());
  model.save(path);
  std::FILE* fp = std::fopen(path.string().c_str(), "ab");
  ASSERT_NE(fp, nullptr);
  const char trailer[] = "trailing garbage";
  ASSERT_EQ(std::fwrite(trailer, 1, sizeof(trailer), fp), sizeof(trailer));
  std::fclose(fp);
  EXPECT_THROW(model.load(path), comet::util::ContractViolation);
  std::filesystem::remove(path);
}

TEST(Ithemal, LoadRejectsDimensionMismatch) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_dims.bin";
  cc::IthemalModel small(HSW, tiny_config());
  small.save(path);
  cc::IthemalConfig bigger = tiny_config();
  bigger.hidden_dim = 20;
  cc::IthemalModel big(HSW, bigger);
  // Different architecture => different expected byte count: the total-size
  // gate treats the file as structurally corrupt for this model.
  EXPECT_THROW(big.load(path), comet::util::ContractViolation);
  std::filesystem::remove(path);
}

// A bit flip inside a dimension header forges the matrix shape without
// changing the file size. The per-matrix dims gate must reject it before
// any buffer is sized from the forged value.
TEST(Ithemal, BitFlippedDimensionHeaderThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_bitflip.bin";
  cc::IthemalModel model(HSW, tiny_config());
  model.save(path);
  // Offset 4: low byte of the first matrix's uint64 row count (the uint32
  // magic occupies bytes 0-3).
  std::uint8_t byte = 0;
  {
    std::FILE* fp = std::fopen(path.string().c_str(), "rb");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fseek(fp, 4, SEEK_SET), 0);
    ASSERT_EQ(std::fread(&byte, 1, 1, fp), 1u);
    std::fclose(fp);
  }
  byte ^= 0x01;
  patch_file(path, 4, &byte, 1);
  EXPECT_THROW(model.load(path), comet::util::ContractViolation);
  std::filesystem::remove(path);
}

// A NaN smuggled into the weight payload (cosmic-ray bit flip, foreign
// blob with a colliding magic) must be rejected by the finite-weight gate
// and must not touch the live weights.
TEST(Ithemal, NonFiniteWeightThrowsAndPreservesWeights) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_nan.bin";
  cc::IthemalModel model(HSW, tiny_config());
  const auto block = cx::parse_block("add rcx, rax\nmov rdx, rcx");
  model.save(path);
  // Offset 20: first float of the first matrix payload (magic 4 + dims 16).
  const std::uint32_t quiet_nan = 0x7fc00000u;
  patch_file(path, 20, &quiet_nan, sizeof(quiet_nan));
  const double before = model.predict(block);
  EXPECT_THROW(model.load(path), comet::util::ContractViolation);
  EXPECT_DOUBLE_EQ(model.predict(block), before);
  std::filesystem::remove(path);
}

TEST(Ithemal, TrainOrLoadCaches) {
  const auto path =
      std::filesystem::temp_directory_path() / "comet_test_cache.bin";
  std::filesystem::remove(path);

  std::vector<cx::BasicBlock> blocks;
  std::vector<double> targets;
  comet::util::Rng rng(7);
  cb::BlockGenerator gen;
  for (int i = 0; i < 40; ++i) {
    blocks.push_back(gen.generate(rng));
    targets.push_back(1.0 + static_cast<double>(i % 5));
  }

  cc::IthemalModel a(HSW, tiny_config());
  const double first = a.train_or_load(path, blocks, targets);
  EXPECT_GT(first, 0.0);  // trained
  ASSERT_TRUE(std::filesystem::exists(path));

  cc::IthemalModel b(HSW, tiny_config());
  const double second = b.train_or_load(path, blocks, targets);
  EXPECT_DOUBLE_EQ(second, 0.0);  // loaded from cache
  const auto block = blocks.front();
  EXPECT_DOUBLE_EQ(a.predict(block), b.predict(block));
  std::filesystem::remove(path);
}
