#include "nn/mat.h"

#include <cmath>

namespace comet::nn {

Mat::Mat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), w_(rows * cols, 0.f), g_(rows * cols, 0.f) {}

void Mat::zero_grad() { std::fill(g_.begin(), g_.end(), 0.f); }

void Mat::fill(float v) { std::fill(w_.begin(), w_.end(), v); }

void Mat::init_xavier(util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& x : w_) x = static_cast<float>(rng.uniform(-bound, bound));
}

void affine(const Mat& W, const Mat& b, const float* x, float* y) {
  const std::size_t out = W.rows();
  const std::size_t in = W.cols();
  const float* w = W.data();
  for (std::size_t r = 0; r < out; ++r) {
    float acc = b.data()[r];
    const float* row = w + r * in;
    for (std::size_t c = 0; c < in; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

void gemm_accum(const float* A, std::size_t m, std::size_t k, const float* B,
                std::size_t ldb, std::size_t n, float* C, std::size_t ldc) {
  // Blocked over k so the active B panel stays cache-resident while every
  // row of A sweeps it, and unrolled 4x over k so each C element is loaded
  // and stored once per four updates instead of once per update. The
  // per-element additions still form one strictly k-ascending chain
  // (((c + a0*b0) + a1*b1) + ...), so results are bit-identical to the
  // straight triple loop — and to the per-column matrix-vector path. The
  // j-inner loops are contiguous over B and C and carry no reduction, so
  // the vectorizer can go wide without reassociating anything.
  constexpr std::size_t kKB = 128;
  for (std::size_t k0 = 0; k0 < k; k0 += kKB) {
    const std::size_t k1 = std::min(k, k0 + kKB);
    for (std::size_t r = 0; r < m; ++r) {
      const float* __restrict__ arow = A + r * k;
      float* __restrict__ crow = C + r * ldc;
      std::size_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const float a0 = arow[kk], a1 = arow[kk + 1];
        const float a2 = arow[kk + 2], a3 = arow[kk + 3];
        const float* __restrict__ b0 = B + kk * ldb;
        const float* __restrict__ b1 = b0 + ldb;
        const float* __restrict__ b2 = b1 + ldb;
        const float* __restrict__ b3 = b2 + ldb;
        for (std::size_t j = 0; j < n; ++j) {
          float c = crow[j];
          c += a0 * b0[j];
          c += a1 * b1[j];
          c += a2 * b2[j];
          c += a3 * b3[j];
          crow[j] = c;
        }
      }
      for (; kk < k1; ++kk) {
        const float a = arow[kk];
        const float* __restrict__ brow = B + kk * ldb;
        for (std::size_t j = 0; j < n; ++j) crow[j] += a * brow[j];
      }
    }
  }
}

void gemm_accum(const Mat& W, const float* B, std::size_t ldb, std::size_t n,
                float* C, std::size_t ldc) {
  gemm_accum(W.data(), W.rows(), W.cols(), B, ldb, n, C, ldc);
}

void affine_backward(Mat& W, Mat& b, const float* x, const float* dy,
                     float* dx) {
  const std::size_t out = W.rows();
  const std::size_t in = W.cols();
  float* gw = W.grad();
  float* gb = b.grad();
  const float* w = W.data();
  for (std::size_t r = 0; r < out; ++r) {
    const float d = dy[r];
    gb[r] += d;
    float* grow = gw + r * in;
    const float* row = w + r * in;
    for (std::size_t c = 0; c < in; ++c) {
      grow[c] += d * x[c];
      if (dx != nullptr) dx[c] += d * row[c];
    }
  }
}

Adam::Adam(std::vector<Mat*> params) : Adam(std::move(params), Config()) {}

Adam::Adam(std::vector<Mat*> params, Config config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Mat* p : params_) {
    m_.emplace_back(p->size(), 0.f);
    v_.emplace_back(p->size(), 0.f);
  }
}

void Adam::step() {
  ++t_;
  // Global gradient-norm clipping.
  if (config_.clip > 0) {
    double norm2 = 0.0;
    for (const Mat* p : params_) {
      for (std::size_t i = 0; i < p->size(); ++i) {
        norm2 += double(p->grad()[i]) * p->grad()[i];
      }
    }
    const double norm = std::sqrt(norm2);
    if (norm > config_.clip) {
      const float scale = static_cast<float>(config_.clip / norm);
      for (Mat* p : params_) {
        for (std::size_t i = 0; i < p->size(); ++i) p->grad()[i] *= scale;
      }
    }
  }

  // Training-only path: Adam's bias correction is not part of the
  // batched==scalar inference parity contract, so libm is fine here.
  const double bc1 = 1.0 - std::pow(config_.beta1, t_);  // comet-lint: allow(libm-in-nn)
  const double bc2 = 1.0 - std::pow(config_.beta2, t_);  // comet-lint: allow(libm-in-nn)
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Mat* p = params_[k];
    auto& m = m_[k];
    auto& v = v_[k];
    float* w = p->data();
    float* g = p->grad();
    for (std::size_t i = 0; i < p->size(); ++i) {
      m[i] = static_cast<float>(config_.beta1 * m[i] +
                                (1.0 - config_.beta1) * g[i]);
      v[i] = static_cast<float>(config_.beta2 * v[i] +
                                (1.0 - config_.beta2) * double(g[i]) * g[i]);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= static_cast<float>(config_.lr * mhat /
                                 (std::sqrt(vhat) + config_.eps));
    }
    p->zero_grad();
  }
}

}  // namespace comet::nn
