// LSTM cell and sequence runner with full backpropagation through time.
//
// Gate layout in the stacked 4H dimension: [input | forget | cell | output].
// Forward caches all per-step activations so backward() can run BPTT without
// recomputation. This is the recurrent building block of the hierarchical
// Ithemal surrogate (token LSTM feeding a block LSTM).
#pragma once

#include <vector>

#include "nn/mat.h"

namespace comet::nn {

/// Cached activations of one LSTM step (needed for BPTT).
struct LstmStepCache {
  std::vector<float> x;       // input
  std::vector<float> h_prev;  // previous hidden
  std::vector<float> c_prev;  // previous cell
  std::vector<float> gates;   // post-nonlinearity [i f g o]
  std::vector<float> c;       // new cell
  std::vector<float> tanh_c;  // tanh(c)
  std::vector<float> h;       // new hidden
};

class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(std::size_t input_dim, std::size_t hidden_dim, util::Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// One forward step; returns the cache required for backward.
  LstmStepCache forward(const std::vector<float>& x,
                        const std::vector<float>& h_prev,
                        const std::vector<float>& c_prev) const;

  /// One BPTT step: given dL/dh and dL/dc at this step, accumulate parameter
  /// gradients and produce dL/dx, dL/dh_prev, dL/dc_prev.
  void backward(const LstmStepCache& cache, const std::vector<float>& dh,
                const std::vector<float>& dc, std::vector<float>& dx,
                std::vector<float>& dh_prev, std::vector<float>& dc_prev);

  /// Run a whole sequence from zero state; returns all step caches.
  /// The final hidden state is caches.back().h (or zeros for empty input).
  std::vector<LstmStepCache> run(
      const std::vector<std::vector<float>>& xs) const;

  /// Inference-only sequence run from zero state: leaves the final hidden
  /// state in `h` (zeros for empty input) without materializing the BPTT
  /// step caches. `h`, `c`, and `pre` are caller-owned scratch buffers
  /// reused across calls, so a batched prediction loop allocates nothing
  /// per sequence. Numerically identical to run(xs).back().h.
  void run_final(const std::vector<std::vector<float>>& xs,
                 std::vector<float>& h, std::vector<float>& c,
                 std::vector<float>& pre) const;

  /// BPTT over a full sequence given the gradient of the final hidden state.
  /// Returns dL/dx for every step.
  std::vector<std::vector<float>> backward_sequence(
      const std::vector<LstmStepCache>& caches,
      const std::vector<float>& dh_final);

  std::vector<Mat*> params();

 private:
  std::size_t input_dim_ = 0;
  std::size_t hidden_dim_ = 0;
  Mat wx_;  // 4H x D
  Mat wh_;  // 4H x H
  Mat b_;   // 4H x 1
};

}  // namespace comet::nn
