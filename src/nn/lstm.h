// LSTM cell and sequence runner with full backpropagation through time.
//
// Gate layout in the stacked 4H dimension: [input | forget | cell | output].
// Forward caches all per-step activations so backward() can run BPTT without
// recomputation. This is the recurrent building block of the hierarchical
// Ithemal surrogate (token LSTM feeding a block LSTM).
#pragma once

#include <vector>

#include "nn/mat.h"

namespace comet::nn {

/// Reusable scratch buffers of LstmCell::run_final_batch. One instance per
/// calling thread; buffers grow to the largest (batch x dim) seen and are
/// then reused allocation-free across batches.
struct LstmBatchScratch {
  std::vector<float> x;     // D x B input panel for the current timestep
  std::vector<float> h;     // H x B hidden-state panel (one column per lane)
  std::vector<float> c;     // H x B cell-state panel
  std::vector<float> pre;   // 4H x B gate pre-activations
  std::vector<float> rec;   // 4H x B recurrent contribution (wh_ * h)
  std::vector<std::size_t> order;  // lanes sorted by descending length
};

/// Cached activations of one LSTM step (needed for BPTT).
struct LstmStepCache {
  std::vector<float> x;       // input
  std::vector<float> h_prev;  // previous hidden
  std::vector<float> c_prev;  // previous cell
  std::vector<float> gates;   // post-nonlinearity [i f g o]
  std::vector<float> c;       // new cell
  std::vector<float> tanh_c;  // tanh(c)
  std::vector<float> h;       // new hidden
};

class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(std::size_t input_dim, std::size_t hidden_dim, util::Rng& rng);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// One forward step; returns the cache required for backward.
  LstmStepCache forward(const std::vector<float>& x,
                        const std::vector<float>& h_prev,
                        const std::vector<float>& c_prev) const;

  /// One BPTT step: given dL/dh and dL/dc at this step, accumulate parameter
  /// gradients and produce dL/dx, dL/dh_prev, dL/dc_prev.
  void backward(const LstmStepCache& cache, const std::vector<float>& dh,
                const std::vector<float>& dc, std::vector<float>& dx,
                std::vector<float>& dh_prev, std::vector<float>& dc_prev);

  /// Run a whole sequence from zero state; returns all step caches.
  /// The final hidden state is caches.back().h (or zeros for empty input).
  std::vector<LstmStepCache> run(
      const std::vector<std::vector<float>>& xs) const;

  /// Inference-only sequence run from zero state: leaves the final hidden
  /// state in `h` (zeros for empty input) without materializing the BPTT
  /// step caches. `h`, `c`, and `pre` are caller-owned scratch buffers
  /// reused across calls, so a batched prediction loop allocates nothing
  /// per sequence. Numerically identical to run(xs).back().h.
  void run_final(const std::vector<std::vector<float>>& xs,
                 std::vector<float>& h, std::vector<float>& c,
                 std::vector<float>& pre) const;

  /// Cross-lane batched inference: run B independent sequences from zero
  /// state in one lane-packed pass. `seqs[b]` is lane b's input sequence as
  /// pointers to `input_dim()`-sized vectors (rows of an embedding table, or
  /// rows of a previous layer's output — no per-step copies of the inputs
  /// are taken beyond the gather into the timestep panel). On return,
  /// `h_out` is a B x hidden_dim() row-major matrix whose row b holds lane
  /// b's final hidden state (zeros for an empty lane).
  ///
  /// The batch is padded to the longest sequence: lanes are sorted by
  /// descending length so the live lanes of every timestep form a panel
  /// prefix, and each timestep computes all lanes' gate pre-activations as
  /// two matrix-matrix products (wx_ * X and wh_ * H over the live columns,
  /// via nn::gemm_accum) instead of per-lane matrix-vector products. The
  /// per-lane accumulation order matches run_final exactly, so results are
  /// bit-identical to running each sequence through run_final / run.
  void run_final_batch(const std::vector<std::vector<const float*>>& seqs,
                       std::vector<float>& h_out,
                       LstmBatchScratch& scratch) const;

  /// BPTT over a full sequence given the gradient of the final hidden state.
  /// Returns dL/dx for every step.
  std::vector<std::vector<float>> backward_sequence(
      const std::vector<LstmStepCache>& caches,
      const std::vector<float>& dh_final);

  std::vector<Mat*> params();
  std::vector<const Mat*> params() const;

 private:
  std::size_t input_dim_ = 0;
  std::size_t hidden_dim_ = 0;
  Mat wx_;  // 4H x D
  Mat wh_;  // 4H x H
  Mat b_;   // 4H x 1
};

}  // namespace comet::nn
