// Minimal dense linear-algebra + parameter containers for the from-scratch
// neural-network stack (the Ithemal-surrogate substrate).
//
// Design: float32, row-major, no allocation inside hot loops. Every learnable
// parameter is a Mat carrying its own gradient buffer, so optimizers operate
// on a flat list of Mat*.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace comet::nn {

/// Dense row-major matrix with a paired gradient buffer.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return w_.size(); }

  float& at(std::size_t r, std::size_t c) { return w_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return w_[r * cols_ + c]; }
  float& grad_at(std::size_t r, std::size_t c) { return g_[r * cols_ + c]; }

  float* data() { return w_.data(); }
  const float* data() const { return w_.data(); }
  float* grad() { return g_.data(); }
  const float* grad() const { return g_.data(); }

  void zero_grad();
  void fill(float v);

  /// Xavier/Glorot uniform initialization.
  void init_xavier(util::Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> w_;
  std::vector<float> g_;
};

/// y = W x + b  (W: out x in, x: in, y: out). Accumulates into y.
void affine(const Mat& W, const Mat& b, const float* x, float* y);

/// C += A * B  for row-major panels: A is m x k (packed, lda = k), B is
/// k x n with leading dimension ldb, C is m x n with leading dimension ldc.
/// Blocked over k so the B panel stays cache-resident across the m rows.
///
/// Accumulation order per output element is strictly k-ascending — the same
/// chain a matrix-vector loop produces — so a batched forward pass built on
/// this kernel is bit-identical to its per-column scalar counterpart.
void gemm_accum(const float* A, std::size_t m, std::size_t k, const float* B,
                std::size_t ldb, std::size_t n, float* C, std::size_t ldc);

/// Mat-level convenience: C += W * B (W packed row-major, B/C panels with
/// leading dimensions ldb/ldc and n live columns).
void gemm_accum(const Mat& W, const float* B, std::size_t ldb, std::size_t n,
                float* C, std::size_t ldc);

/// Backward of affine: given dy, accumulate dW, db, and dx.
/// dx may be nullptr to skip input-gradient computation.
void affine_backward(Mat& W, Mat& b, const float* x, const float* dy,
                     float* dx);

/// Adam optimizer over a set of parameter matrices.
class Adam {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double clip = 5.0;  ///< global gradient-norm clip; <=0 disables
  };

  explicit Adam(std::vector<Mat*> params);  ///< default Config
  Adam(std::vector<Mat*> params, Config config);

  /// Apply one update using the gradients currently stored in the params,
  /// then zero the gradients.
  void step();

  const Config& config() const { return config_; }
  void set_lr(double lr) { config_.lr = lr; }

 private:
  std::vector<Mat*> params_;
  Config config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  long t_ = 0;
};

}  // namespace comet::nn
