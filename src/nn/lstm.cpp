#include "nn/lstm.h"

#include <algorithm>
#include <cmath>

namespace comet::nn {

namespace {

// Gate nonlinearities. Every LSTM path — the training-time forward(), the
// scalar run_final(), and the lane-packed run_final_batch() — must go
// through these exact functions: libm's scalar expf/tanhf calls were ~70%
// of inference wall-clock and cannot vectorize, so the gates use a
// branch-free odd rational approximation of tanh (the classic 13/6-degree
// pair used by Eigen/XLA, ~1 ulp over the clamped range) that the
// vectorizer handles 4-8 lanes wide. Using one implementation everywhere
// keeps batched inference bit-identical to scalar inference and to the
// activations the model was trained with.
inline float tanh_approx(float x) {
  constexpr float kSat = 7.90531110763549805f;  // |tanh| == 1 in float beyond
  x = std::min(kSat, std::max(-kSat, x));
  const float x2 = x * x;
  float p = -2.76076847742355e-16f;
  p = p * x2 + 2.00018790482477e-13f;
  p = p * x2 + -8.60467152213735e-11f;
  p = p * x2 + 5.12229709037114e-08f;
  p = p * x2 + 1.48572235717979e-05f;
  p = p * x2 + 6.37261928875436e-04f;
  p = p * x2 + 4.89352455891786e-03f;
  p = p * x;
  float q = 1.19825839466702e-06f;
  q = q * x2 + 1.18534705686654e-04f;
  q = q * x2 + 2.26843463243900e-03f;
  q = q * x2 + 4.89352518554385e-03f;
  return p / q;
}

inline float sigmoidf(float x) {
  return 0.5f * tanh_approx(0.5f * x) + 0.5f;
}

}  // namespace

LstmCell::LstmCell(std::size_t input_dim, std::size_t hidden_dim,
                   util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(4 * hidden_dim, input_dim),
      wh_(4 * hidden_dim, hidden_dim),
      b_(4 * hidden_dim, 1) {
  wx_.init_xavier(rng);
  wh_.init_xavier(rng);
  // Forget-gate bias init to 1: standard trick for stable early training.
  for (std::size_t i = hidden_dim_; i < 2 * hidden_dim_; ++i) {
    b_.data()[i] = 1.f;
  }
}

LstmStepCache LstmCell::forward(const std::vector<float>& x,
                                const std::vector<float>& h_prev,
                                const std::vector<float>& c_prev) const {
  const std::size_t H = hidden_dim_;
  LstmStepCache cache;
  cache.x = x;
  cache.h_prev = h_prev;
  cache.c_prev = c_prev;

  std::vector<float> pre(4 * H, 0.f);
  affine(wx_, b_, x.data(), pre.data());
  // wh * h_prev (bias already added once).
  for (std::size_t r = 0; r < 4 * H; ++r) {
    float acc = 0.f;
    const float* row = wh_.data() + r * H;
    for (std::size_t c = 0; c < H; ++c) acc += row[c] * h_prev[c];
    pre[r] += acc;
  }

  cache.gates.resize(4 * H);
  for (std::size_t i = 0; i < H; ++i) {
    cache.gates[i] = sigmoidf(pre[i]);                    // input gate
    cache.gates[H + i] = sigmoidf(pre[H + i]);            // forget gate
    cache.gates[2 * H + i] = tanh_approx(pre[2 * H + i]);  // candidate
    cache.gates[3 * H + i] = sigmoidf(pre[3 * H + i]);    // output gate
  }
  cache.c.resize(H);
  cache.tanh_c.resize(H);
  cache.h.resize(H);
  for (std::size_t i = 0; i < H; ++i) {
    cache.c[i] = cache.gates[H + i] * c_prev[i] +
                 cache.gates[i] * cache.gates[2 * H + i];
    cache.tanh_c[i] = tanh_approx(cache.c[i]);
    cache.h[i] = cache.gates[3 * H + i] * cache.tanh_c[i];
  }
  return cache;
}

void LstmCell::backward(const LstmStepCache& cache,
                        const std::vector<float>& dh,
                        const std::vector<float>& dc_in,
                        std::vector<float>& dx, std::vector<float>& dh_prev,
                        std::vector<float>& dc_prev) {
  const std::size_t H = hidden_dim_;
  dx.assign(input_dim_, 0.f);
  dh_prev.assign(H, 0.f);
  dc_prev.assign(H, 0.f);

  std::vector<float> dpre(4 * H, 0.f);
  for (std::size_t i = 0; i < H; ++i) {
    const float ig = cache.gates[i];
    const float fg = cache.gates[H + i];
    const float gg = cache.gates[2 * H + i];
    const float og = cache.gates[3 * H + i];
    const float dtanh = 1.f - cache.tanh_c[i] * cache.tanh_c[i];
    const float dc = dc_in[i] + dh[i] * og * dtanh;

    dpre[i] = dc * gg * ig * (1.f - ig);                   // d input gate
    dpre[H + i] = dc * cache.c_prev[i] * fg * (1.f - fg);  // d forget gate
    dpre[2 * H + i] = dc * ig * (1.f - gg * gg);           // d candidate
    dpre[3 * H + i] =
        dh[i] * cache.tanh_c[i] * og * (1.f - og);         // d output gate
    dc_prev[i] = dc * fg;
  }

  affine_backward(wx_, b_, cache.x.data(), dpre.data(), dx.data());
  // wh backward (no second bias accumulation: subtract what affine_backward
  // just double-counted would be wrong — instead do it manually).
  for (std::size_t r = 0; r < 4 * H; ++r) {
    const float d = dpre[r];
    float* grow = wh_.grad() + r * H;
    const float* row = wh_.data() + r * H;
    for (std::size_t c = 0; c < H; ++c) {
      grow[c] += d * cache.h_prev[c];
      dh_prev[c] += d * row[c];
    }
  }
  // Note: b_ gradient was accumulated once in affine_backward; correct.
}

std::vector<LstmStepCache> LstmCell::run(
    const std::vector<std::vector<float>>& xs) const {
  std::vector<LstmStepCache> caches;
  caches.reserve(xs.size());
  std::vector<float> h(hidden_dim_, 0.f), c(hidden_dim_, 0.f);
  for (const auto& x : xs) {
    caches.push_back(forward(x, h, c));
    h = caches.back().h;
    c = caches.back().c;
  }
  return caches;
}

void LstmCell::run_final(const std::vector<std::vector<float>>& xs,
                         std::vector<float>& h, std::vector<float>& c,
                         std::vector<float>& pre) const {
  const std::size_t H = hidden_dim_;
  h.assign(H, 0.f);
  c.assign(H, 0.f);
  pre.resize(4 * H);
  for (const auto& x : xs) {
    std::fill(pre.begin(), pre.end(), 0.f);
    affine(wx_, b_, x.data(), pre.data());
    for (std::size_t r = 0; r < 4 * H; ++r) {
      float acc = 0.f;
      const float* row = wh_.data() + r * H;
      for (std::size_t col = 0; col < H; ++col) acc += row[col] * h[col];
      pre[r] += acc;
    }
    // Gate activations and state update in place; same operation order as
    // forward(), so results match the training path bit-for-bit.
    for (std::size_t i = 0; i < H; ++i) {
      const float ig = sigmoidf(pre[i]);
      const float fg = sigmoidf(pre[H + i]);
      const float gg = tanh_approx(pre[2 * H + i]);
      const float og = sigmoidf(pre[3 * H + i]);
      c[i] = fg * c[i] + ig * gg;
      h[i] = og * tanh_approx(c[i]);
    }
  }
}

void LstmCell::run_final_batch(
    const std::vector<std::vector<const float*>>& seqs,
    std::vector<float>& h_out, LstmBatchScratch& s) const {
  const std::size_t H = hidden_dim_;
  const std::size_t D = input_dim_;
  const std::size_t B = seqs.size();
  h_out.assign(B * H, 0.f);
  if (B == 0) return;

  // Sort lanes by descending length: as t grows, lanes retire from the back
  // of the packed panels, so the live lanes are always columns [0, live).
  s.order.resize(B);
  for (std::size_t b = 0; b < B; ++b) s.order[b] = b;
  std::sort(s.order.begin(), s.order.end(), [&](std::size_t a, std::size_t b) {
    return seqs[a].size() > seqs[b].size();
  });
  const std::size_t T = seqs[s.order[0]].size();
  if (T == 0) return;

  s.x.resize(D * B);
  s.h.assign(H * B, 0.f);
  s.c.assign(H * B, 0.f);
  s.pre.resize(4 * H * B);
  s.rec.resize(4 * H * B);

  std::size_t live = B;
  for (std::size_t t = 0; t < T; ++t) {
    while (live > 0 && seqs[s.order[live - 1]].size() <= t) --live;
    // Gather this timestep's inputs into the D x live panel (column per
    // lane) — the only per-element copy the batched path performs.
    for (std::size_t pos = 0; pos < live; ++pos) {
      const float* xv = seqs[s.order[pos]][t];
      for (std::size_t d = 0; d < D; ++d) s.x[d * B + pos] = xv[d];
    }
    // pre = b (broadcast) + wx_ * X; rec = wh_ * H; pre += rec. The split
    // mirrors run_final (affine chain seeded with the bias, recurrent sum
    // accumulated separately, then one add), keeping results bit-identical.
    for (std::size_t r = 0; r < 4 * H; ++r) {
      std::fill(s.pre.begin() + r * B, s.pre.begin() + r * B + live,
                b_.data()[r]);
      std::fill(s.rec.begin() + r * B, s.rec.begin() + r * B + live, 0.f);
    }
    gemm_accum(wx_, s.x.data(), B, live, s.pre.data(), B);
    gemm_accum(wh_, s.h.data(), B, live, s.rec.data(), B);
    for (std::size_t r = 0; r < 4 * H; ++r) {
      float* prow = s.pre.data() + r * B;
      const float* rrow = s.rec.data() + r * B;
      for (std::size_t pos = 0; pos < live; ++pos) prow[pos] += rrow[pos];
    }
    for (std::size_t i = 0; i < H; ++i) {
      const float* p_i = s.pre.data() + i * B;
      const float* p_f = s.pre.data() + (H + i) * B;
      const float* p_g = s.pre.data() + (2 * H + i) * B;
      const float* p_o = s.pre.data() + (3 * H + i) * B;
      float* crow = s.c.data() + i * B;
      float* hrow = s.h.data() + i * B;
      for (std::size_t pos = 0; pos < live; ++pos) {
        const float ig = sigmoidf(p_i[pos]);
        const float fg = sigmoidf(p_f[pos]);
        const float gg = tanh_approx(p_g[pos]);
        const float og = sigmoidf(p_o[pos]);
        crow[pos] = fg * crow[pos] + ig * gg;
        hrow[pos] = og * tanh_approx(crow[pos]);
      }
    }
  }
  // A retired lane's column stopped updating at its last step, so every
  // column now holds its lane's final hidden state; scatter back to rows.
  for (std::size_t pos = 0; pos < B; ++pos) {
    const std::size_t lane = s.order[pos];
    if (seqs[lane].empty()) continue;  // stays zeros
    float* row = h_out.data() + lane * H;
    for (std::size_t i = 0; i < H; ++i) row[i] = s.h[i * B + pos];
  }
}

std::vector<std::vector<float>> LstmCell::backward_sequence(
    const std::vector<LstmStepCache>& caches,
    const std::vector<float>& dh_final) {
  std::vector<std::vector<float>> dxs(caches.size());
  std::vector<float> dh = dh_final;
  std::vector<float> dc(hidden_dim_, 0.f);
  for (std::size_t t = caches.size(); t-- > 0;) {
    std::vector<float> dh_prev, dc_prev;
    backward(caches[t], dh, dc, dxs[t], dh_prev, dc_prev);
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
  return dxs;
}

std::vector<Mat*> LstmCell::params() { return {&wx_, &wh_, &b_}; }

std::vector<const Mat*> LstmCell::params() const {
  return {&wx_, &wh_, &b_};
}

}  // namespace comet::nn
