#include "nn/lstm.h"

#include <algorithm>
#include <cmath>

namespace comet::nn {

namespace {
inline float sigmoidf(float x) { return 1.f / (1.f + std::exp(-x)); }
}  // namespace

LstmCell::LstmCell(std::size_t input_dim, std::size_t hidden_dim,
                   util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(4 * hidden_dim, input_dim),
      wh_(4 * hidden_dim, hidden_dim),
      b_(4 * hidden_dim, 1) {
  wx_.init_xavier(rng);
  wh_.init_xavier(rng);
  // Forget-gate bias init to 1: standard trick for stable early training.
  for (std::size_t i = hidden_dim_; i < 2 * hidden_dim_; ++i) {
    b_.data()[i] = 1.f;
  }
}

LstmStepCache LstmCell::forward(const std::vector<float>& x,
                                const std::vector<float>& h_prev,
                                const std::vector<float>& c_prev) const {
  const std::size_t H = hidden_dim_;
  LstmStepCache cache;
  cache.x = x;
  cache.h_prev = h_prev;
  cache.c_prev = c_prev;

  std::vector<float> pre(4 * H, 0.f);
  affine(wx_, b_, x.data(), pre.data());
  // wh * h_prev (bias already added once).
  for (std::size_t r = 0; r < 4 * H; ++r) {
    float acc = 0.f;
    const float* row = wh_.data() + r * H;
    for (std::size_t c = 0; c < H; ++c) acc += row[c] * h_prev[c];
    pre[r] += acc;
  }

  cache.gates.resize(4 * H);
  for (std::size_t i = 0; i < H; ++i) {
    cache.gates[i] = sigmoidf(pre[i]);                    // input gate
    cache.gates[H + i] = sigmoidf(pre[H + i]);            // forget gate
    cache.gates[2 * H + i] = std::tanh(pre[2 * H + i]);   // candidate
    cache.gates[3 * H + i] = sigmoidf(pre[3 * H + i]);    // output gate
  }
  cache.c.resize(H);
  cache.tanh_c.resize(H);
  cache.h.resize(H);
  for (std::size_t i = 0; i < H; ++i) {
    cache.c[i] = cache.gates[H + i] * c_prev[i] +
                 cache.gates[i] * cache.gates[2 * H + i];
    cache.tanh_c[i] = std::tanh(cache.c[i]);
    cache.h[i] = cache.gates[3 * H + i] * cache.tanh_c[i];
  }
  return cache;
}

void LstmCell::backward(const LstmStepCache& cache,
                        const std::vector<float>& dh,
                        const std::vector<float>& dc_in,
                        std::vector<float>& dx, std::vector<float>& dh_prev,
                        std::vector<float>& dc_prev) {
  const std::size_t H = hidden_dim_;
  dx.assign(input_dim_, 0.f);
  dh_prev.assign(H, 0.f);
  dc_prev.assign(H, 0.f);

  std::vector<float> dpre(4 * H, 0.f);
  for (std::size_t i = 0; i < H; ++i) {
    const float ig = cache.gates[i];
    const float fg = cache.gates[H + i];
    const float gg = cache.gates[2 * H + i];
    const float og = cache.gates[3 * H + i];
    const float dtanh = 1.f - cache.tanh_c[i] * cache.tanh_c[i];
    const float dc = dc_in[i] + dh[i] * og * dtanh;

    dpre[i] = dc * gg * ig * (1.f - ig);                   // d input gate
    dpre[H + i] = dc * cache.c_prev[i] * fg * (1.f - fg);  // d forget gate
    dpre[2 * H + i] = dc * ig * (1.f - gg * gg);           // d candidate
    dpre[3 * H + i] =
        dh[i] * cache.tanh_c[i] * og * (1.f - og);         // d output gate
    dc_prev[i] = dc * fg;
  }

  affine_backward(wx_, b_, cache.x.data(), dpre.data(), dx.data());
  // wh backward (no second bias accumulation: subtract what affine_backward
  // just double-counted would be wrong — instead do it manually).
  for (std::size_t r = 0; r < 4 * H; ++r) {
    const float d = dpre[r];
    float* grow = wh_.grad() + r * H;
    const float* row = wh_.data() + r * H;
    for (std::size_t c = 0; c < H; ++c) {
      grow[c] += d * cache.h_prev[c];
      dh_prev[c] += d * row[c];
    }
  }
  // Note: b_ gradient was accumulated once in affine_backward; correct.
}

std::vector<LstmStepCache> LstmCell::run(
    const std::vector<std::vector<float>>& xs) const {
  std::vector<LstmStepCache> caches;
  caches.reserve(xs.size());
  std::vector<float> h(hidden_dim_, 0.f), c(hidden_dim_, 0.f);
  for (const auto& x : xs) {
    caches.push_back(forward(x, h, c));
    h = caches.back().h;
    c = caches.back().c;
  }
  return caches;
}

void LstmCell::run_final(const std::vector<std::vector<float>>& xs,
                         std::vector<float>& h, std::vector<float>& c,
                         std::vector<float>& pre) const {
  const std::size_t H = hidden_dim_;
  h.assign(H, 0.f);
  c.assign(H, 0.f);
  pre.resize(4 * H);
  for (const auto& x : xs) {
    std::fill(pre.begin(), pre.end(), 0.f);
    affine(wx_, b_, x.data(), pre.data());
    for (std::size_t r = 0; r < 4 * H; ++r) {
      float acc = 0.f;
      const float* row = wh_.data() + r * H;
      for (std::size_t col = 0; col < H; ++col) acc += row[col] * h[col];
      pre[r] += acc;
    }
    // Gate activations and state update in place; same operation order as
    // forward(), so results match the training path bit-for-bit.
    for (std::size_t i = 0; i < H; ++i) {
      const float ig = sigmoidf(pre[i]);
      const float fg = sigmoidf(pre[H + i]);
      const float gg = std::tanh(pre[2 * H + i]);
      const float og = sigmoidf(pre[3 * H + i]);
      c[i] = fg * c[i] + ig * gg;
      h[i] = og * std::tanh(c[i]);
    }
  }
}

std::vector<std::vector<float>> LstmCell::backward_sequence(
    const std::vector<LstmStepCache>& caches,
    const std::vector<float>& dh_final) {
  std::vector<std::vector<float>> dxs(caches.size());
  std::vector<float> dh = dh_final;
  std::vector<float> dc(hidden_dim_, 0.f);
  for (std::size_t t = caches.size(); t-- > 0;) {
    std::vector<float> dh_prev, dc_prev;
    backward(caches[t], dh, dc, dxs[t], dh_prev, dc_prev);
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
  return dxs;
}

std::vector<Mat*> LstmCell::params() { return {&wx_, &wh_, &b_}; }

}  // namespace comet::nn
