#include "nn/gnn.h"

#include <stdexcept>

namespace comet::nn {

RelGraphLayer::RelGraphLayer(std::size_t in_dim, std::size_t out_dim,
                             std::size_t num_relations, util::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim), num_relations_(num_relations) {
  w_self_ = Mat(out_dim, in_dim);
  w_self_.init_xavier(rng);
  b_ = Mat(out_dim, 1);
  w_rel_.reserve(num_relations);
  for (std::size_t r = 0; r < num_relations; ++r) {
    w_rel_.emplace_back(out_dim, in_dim);
    w_rel_.back().init_xavier(rng);
  }
}

std::vector<std::vector<float>> RelGraphLayer::forward(
    const std::vector<std::vector<float>>& x, const std::vector<RelEdge>& edges,
    GraphLayerCache& cache) const {
  const std::size_t n = x.size();
  cache.x = x;
  cache.pre.assign(n, std::vector<float>(out_dim_, 0.f));
  cache.in_degree.assign(n, std::vector<std::size_t>(num_relations_, 0));

  for (const RelEdge& e : edges) {
    if (e.src >= n || e.dst >= n || e.rel >= num_relations_) {
      throw std::invalid_argument("RelGraphLayer: edge out of range");
    }
    ++cache.in_degree[e.dst][e.rel];
  }

  // Self transform + bias.
  for (std::size_t v = 0; v < n; ++v) {
    affine(w_self_, b_, x[v].data(), cache.pre[v].data());
  }
  // Relation messages, normalized per (dst, rel) by in-degree.
  std::vector<float> msg(out_dim_);
  for (const RelEdge& e : edges) {
    const float inv =
        1.0f / static_cast<float>(cache.in_degree[e.dst][e.rel]);
    msg.assign(out_dim_, 0.f);
    const Mat& w = w_rel_[e.rel];
    for (std::size_t i = 0; i < out_dim_; ++i) {
      float acc = 0.f;
      const float* row = w.data() + i * in_dim_;
      for (std::size_t j = 0; j < in_dim_; ++j) acc += row[j] * x[e.src][j];
      cache.pre[e.dst][i] += inv * acc;
    }
  }

  std::vector<std::vector<float>> h(n, std::vector<float>(out_dim_));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < out_dim_; ++i) {
      h[v][i] = cache.pre[v][i] > 0.f ? cache.pre[v][i] : 0.f;
    }
  }
  return h;
}

std::vector<std::vector<float>> RelGraphLayer::backward(
    const GraphLayerCache& cache, const std::vector<RelEdge>& edges,
    std::vector<std::vector<float>> dh) {
  const std::size_t n = cache.x.size();
  // ReLU backward in place: dpre = dh ⊙ [pre > 0].
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < out_dim_; ++i) {
      if (cache.pre[v][i] <= 0.f) dh[v][i] = 0.f;
    }
  }

  std::vector<std::vector<float>> dx(n, std::vector<float>(in_dim_, 0.f));
  // Self transform backward.
  for (std::size_t v = 0; v < n; ++v) {
    affine_backward(w_self_, b_, cache.x[v].data(), dh[v].data(),
                    dx[v].data());
  }
  // Message backward: dL/dW_r += inv * dpre_dst ⊗ x_src;
  //                   dL/dx_src += inv * W_rᵀ dpre_dst.
  for (const RelEdge& e : edges) {
    const float inv =
        1.0f / static_cast<float>(cache.in_degree[e.dst][e.rel]);
    Mat& w = w_rel_[e.rel];
    for (std::size_t i = 0; i < out_dim_; ++i) {
      const float d = inv * dh[e.dst][i];
      if (d == 0.f) continue;
      float* grow = w.grad() + i * in_dim_;
      const float* wrow = w.data() + i * in_dim_;
      for (std::size_t j = 0; j < in_dim_; ++j) {
        grow[j] += d * cache.x[e.src][j];
        dx[e.src][j] += d * wrow[j];
      }
    }
  }
  return dx;
}

std::vector<Mat*> RelGraphLayer::params() {
  std::vector<Mat*> out{&w_self_, &b_};
  for (Mat& m : w_rel_) out.push_back(&m);
  return out;
}

std::vector<const Mat*> RelGraphLayer::params() const {
  std::vector<const Mat*> out{&w_self_, &b_};
  for (const Mat& m : w_rel_) out.push_back(&m);
  return out;
}

}  // namespace comet::nn
