// Relational message-passing layers with full manual backpropagation.
//
// This is the graph-neural-network substrate behind the Granite-style cost
// model (Sykora et al. 2022, cited by the paper as a second neural cost
// model family). A RelGraphLayer updates every node state from its own
// state plus relation-typed messages from its neighbors:
//
//   h'_v = ReLU( W_self h_v + b + Σ_r W_r · mean_{(u,v) ∈ E_r} h_u )
//
// where E_r is the edge set of relation r (dependency kind × direction,
// plus sequence edges — see cost/granite_model.h for the relation
// vocabulary). The per-relation mean keeps the message scale independent
// of degree, which matters on dependency multigraphs whose in-degree varies
// from 0 to η−1.
//
// Forward caches node inputs and ReLU masks so backward() can accumulate
// exact gradients for all parameter matrices and the input node states.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/mat.h"

namespace comet::nn {

/// One directed, relation-typed edge of the graph a layer runs over.
struct RelEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t rel = 0;  ///< relation index in [0, num_relations)
};

/// Cached activations of one layer application (needed for backward).
struct GraphLayerCache {
  std::vector<std::vector<float>> x;    ///< node inputs
  std::vector<std::vector<float>> pre;  ///< pre-ReLU activations
  /// Per (node, relation): number of incoming edges, for mean backward.
  std::vector<std::vector<std::size_t>> in_degree;
};

class RelGraphLayer {
 public:
  RelGraphLayer() = default;
  RelGraphLayer(std::size_t in_dim, std::size_t out_dim,
                std::size_t num_relations, util::Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  std::size_t num_relations() const { return num_relations_; }

  /// Forward over all nodes; `x[v]` is node v's input state. Returns the
  /// new node states; fills `cache` for backward.
  std::vector<std::vector<float>> forward(
      const std::vector<std::vector<float>>& x,
      const std::vector<RelEdge>& edges, GraphLayerCache& cache) const;

  /// Backward: given dL/dh' for every node, accumulate parameter gradients
  /// and return dL/dx for every node.
  std::vector<std::vector<float>> backward(const GraphLayerCache& cache,
                                           const std::vector<RelEdge>& edges,
                                           std::vector<std::vector<float>> dh);

  std::vector<Mat*> params();
  std::vector<const Mat*> params() const;  ///< read-only view (save paths)

 private:
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::size_t num_relations_ = 0;
  Mat w_self_;              // out x in
  Mat b_;                   // out x 1
  std::vector<Mat> w_rel_;  // num_relations of out x in
};

}  // namespace comet::nn
