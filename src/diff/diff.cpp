#include "diff/diff.h"

#include <algorithm>
#include <cmath>

#include "util/table.h"

namespace comet::diff {

namespace {

FeatureTypeProfile profile_of(const std::vector<Disagreement>& top,
                              bool side_a) {
  FeatureTypeProfile p;
  std::size_t n = 0;
  for (const auto& d : top) {
    const auto& expl = side_a ? d.expl_a : d.expl_b;
    if (expl.features.empty()) continue;
    ++n;
    bool has_eta = false, has_inst = false, has_dep = false;
    for (const auto& f : expl.features.items()) {
      has_eta |= f.is_num_insts();
      has_inst |= f.is_inst();
      has_dep |= f.is_dep();
    }
    p.pct_num_insts += has_eta;
    p.pct_inst += has_inst;
    p.pct_dep += has_dep;
  }
  if (n > 0) {
    p.pct_num_insts *= 100.0 / n;
    p.pct_inst *= 100.0 / n;
    p.pct_dep *= 100.0 / n;
  }
  return p;
}

}  // namespace

DiffSummary analyze_disagreements(const cost::CostModel& model_a,
                                  const cost::CostModel& model_b,
                                  const std::vector<x86::BasicBlock>& corpus,
                                  const DiffOptions& options) {
  DiffSummary s;
  s.blocks_scanned = corpus.size();

  // Scan predictions for the whole corpus in two batched sweeps (one per
  // model) instead of two virtual calls per block.
  std::vector<double> preds_a(corpus.size()), preds_b(corpus.size());
  model_a.predict_batch(std::span<const x86::BasicBlock>(corpus),
                        std::span<double>(preds_a));
  model_b.predict_batch(std::span<const x86::BasicBlock>(corpus),
                        std::span<double>(preds_b));

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& block = corpus[i];
    if (block.empty()) continue;
    Disagreement d;
    d.block = block;
    d.pred_a = preds_a[i];
    d.pred_b = preds_b[i];
    const double lo = std::min(d.pred_a, d.pred_b);
    if (lo <= 0.0) continue;
    d.rel_gap = std::abs(d.pred_a - d.pred_b) / lo;
    if (d.rel_gap < options.min_rel_gap) continue;
    ++s.disagreements;
    s.top.push_back(std::move(d));
  }

  std::stable_sort(s.top.begin(), s.top.end(),
                   [](const Disagreement& x, const Disagreement& y) {
                     return x.rel_gap > y.rel_gap;
                   });
  if (s.top.size() > options.top_k) s.top.resize(options.top_k);

  if (options.explain) {
    const core::CometExplainer ex_a(model_a, options.comet);
    const core::CometExplainer ex_b(model_b, options.comet);
    for (auto& d : s.top) {
      d.expl_a = ex_a.explain(d.block);
      d.expl_b = ex_b.explain(d.block);
    }
    s.profile_a = profile_of(s.top, /*side_a=*/true);
    s.profile_b = profile_of(s.top, /*side_a=*/false);
  }

  return s;
}

std::string DiffSummary::to_string(const std::string& name_a,
                                   const std::string& name_b) const {
  std::string out;
  out += "scanned " + std::to_string(blocks_scanned) + " blocks, " +
         std::to_string(disagreements) + " disagreements, top " +
         std::to_string(top.size()) + " explained\n";

  util::Table table({"#", "gap", name_a, name_b, "expl(" + name_a + ")",
                     "expl(" + name_b + ")"});
  for (std::size_t i = 0; i < top.size(); ++i) {
    const auto& d = top[i];
    table.add_row({std::to_string(i + 1), util::Table::fmt(d.rel_gap, 2),
                   util::Table::fmt(d.pred_a, 2),
                   util::Table::fmt(d.pred_b, 2),
                   d.expl_a.features.to_string(),
                   d.expl_b.features.to_string()});
  }
  out += table.to_string();

  util::Table prof({"Model", "% eta", "% inst", "% dep"});
  prof.add_row({name_a, util::Table::fmt(profile_a.pct_num_insts, 1),
                util::Table::fmt(profile_a.pct_inst, 1),
                util::Table::fmt(profile_a.pct_dep, 1)});
  prof.add_row({name_b, util::Table::fmt(profile_b.pct_num_insts, 1),
                util::Table::fmt(profile_b.pct_inst, 1),
                util::Table::fmt(profile_b.pct_dep, 1)});
  out += "explanation feature-type profile over disagreements:\n";
  out += prof.to_string();
  return out;
}

}  // namespace comet::diff
