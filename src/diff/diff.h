// Differential cost-model analysis: find where two models disagree and
// explain both sides.
//
// The paper's related work cites AnICA (Ritter & Hack 2022), a differential
// tester that surfaces inconsistencies between microarchitectural code
// analyzers, and positions COMET as complementary: AnICA finds *where*
// models disagree, COMET explains *why a given prediction was made*. This
// module composes the two ideas on our substrate. Given two cost models and
// a block corpus, it
//
//   1. scans the corpus for blocks with a large relative prediction gap,
//   2. ranks the disagreements,
//   3. runs COMET on both models for the top blocks, and
//   4. aggregates the explanation feature-type composition per side —
//      the same granularity lens as the paper's Figures 2-4, applied to
//      the disagreement set instead of the whole test set.
//
// The per-side aggregate is the actionable output: if model A's
// explanations on disagreement blocks are dominated by the coarse η
// feature while model B's name specific instructions and hazards, the
// disagreements are most likely A's coarseness (the paper's central
// empirical finding, localized to the blocks that matter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/comet.h"
#include "cost/cost_model.h"
#include "x86/instruction.h"

namespace comet::diff {

/// One block the two models disagree on.
struct Disagreement {
  x86::BasicBlock block;
  double pred_a = 0.0;
  double pred_b = 0.0;
  /// |pred_a − pred_b| / min(pred_a, pred_b).
  double rel_gap = 0.0;
  /// COMET explanations for each side (empty features when the explain
  /// pass is disabled).
  core::Explanation expl_a;
  core::Explanation expl_b;
};

/// Fraction of explanations on one side containing each feature type.
struct FeatureTypeProfile {
  double pct_num_insts = 0.0;
  double pct_inst = 0.0;
  double pct_dep = 0.0;
};

struct DiffSummary {
  std::vector<Disagreement> top;  ///< ranked by rel_gap, descending
  std::size_t blocks_scanned = 0;
  std::size_t disagreements = 0;  ///< blocks with rel_gap ≥ min_rel_gap
  FeatureTypeProfile profile_a;
  FeatureTypeProfile profile_b;

  /// Rendered report: ranked table plus the per-side profiles.
  std::string to_string(const std::string& name_a,
                        const std::string& name_b) const;
};

struct DiffOptions {
  /// Disagreements below this relative gap are ignored.
  double min_rel_gap = 0.25;
  /// Explain at most this many top disagreements with COMET.
  std::size_t top_k = 10;
  /// Skip the (expensive) COMET pass; only scan and rank.
  bool explain = true;
  core::CometOptions comet;
};

/// Scan `corpus`, rank disagreements between `model_a` and `model_b`, and
/// explain the top ones. Deterministic for fixed options.
DiffSummary analyze_disagreements(const cost::CostModel& model_a,
                                  const cost::CostModel& model_b,
                                  const std::vector<x86::BasicBlock>& corpus,
                                  const DiffOptions& options = {});

}  // namespace comet::diff
