#include "cost/ithemal_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cost/checkpoint.h"
#include "util/contract.h"
#include "util/stats.h"

namespace comet::cost {

namespace {
// Checkpoint magic doubles as a format version. v1 (0xC03E7001) folded
// unknown register widths onto the 64-bit token, silently aliasing distinct
// operands; v2 gives unknown widths their own code, which grows the
// vocabulary (and so the embedding), so v1 checkpoints are rejected on load
// and the model retrains instead of mapping tokens onto the wrong rows.
constexpr std::uint32_t kMagic = 0xC03E7102;

int width_code(std::uint16_t bits) {
  switch (bits) {
    case 8: return 0;
    case 16: return 1;
    case 32: return 2;
    case 64: return 3;
    case 128: return 4;
    case 256: return 5;
    default: return 6;  // unknown widths get their own token
  }
}
constexpr int kWidthCodes = 7;
}  // namespace

BlockTokenizer::BlockTokenizer() {
  const std::size_t n_ops = x86::kNumOpcodes;
  const std::size_t n_regs =
      static_cast<std::size_t>(x86::RegFamily::kCount) * kWidthCodes;
  imm_token_ = static_cast<int>(n_ops + n_regs);
  mem_open_token_ = imm_token_ + 1;
  mem_close_token_ = imm_token_ + 2;
  vocab_size_ = n_ops + n_regs + 3;
}

std::vector<std::vector<int>> BlockTokenizer::tokenize(
    const x86::BasicBlock& block) const {
  const auto reg_token = [&](const x86::Reg& r) {
    return static_cast<int>(x86::kNumOpcodes) +
           static_cast<int>(r.family) * kWidthCodes + width_code(r.width_bits);
  };
  std::vector<std::vector<int>> out;
  out.reserve(block.size());
  for (const auto& inst : block.instructions) {
    std::vector<int> toks;
    toks.push_back(static_cast<int>(inst.opcode));
    for (const auto& op : inst.operands) {
      switch (op.kind()) {
        case x86::OperandKind::Reg:
          toks.push_back(reg_token(op.as_reg()));
          break;
        case x86::OperandKind::Imm:
          toks.push_back(imm_token_);
          break;
        case x86::OperandKind::Mem: {
          toks.push_back(mem_open_token_);
          const auto& m = op.as_mem();
          if (m.base) toks.push_back(reg_token(*m.base));
          if (m.index) toks.push_back(reg_token(*m.index));
          toks.push_back(mem_close_token_);
          break;
        }
      }
    }
    // Every token id must index a real embedding row: a token outside the
    // vocabulary would read (and, in training, write) out of bounds. The
    // tokenizer owns the vocabulary, so this is an internal contract — a
    // debug check, forced on in the fuzz/coverage builds.
    for (const int t : toks) {
      COMET_DCHECK(t >= 0 && static_cast<std::size_t>(t) < vocab_size_);
    }
    out.push_back(std::move(toks));
  }
  return out;
}

IthemalModel::IthemalModel(MicroArch uarch, IthemalConfig config)
    : uarch_(uarch), config_(config) {
  util::Rng rng(config_.seed + (uarch == MicroArch::Skylake ? 1 : 0));
  embedding_ = nn::Mat(tokenizer_.vocab_size(), config_.embed_dim);
  embedding_.init_xavier(rng);
  token_lstm_ = nn::LstmCell(config_.embed_dim, config_.hidden_dim, rng);
  block_lstm_ = nn::LstmCell(config_.hidden_dim, config_.hidden_dim, rng);
  head_w_ = nn::Mat(1, config_.hidden_dim);
  head_w_.init_xavier(rng);
  head_b_ = nn::Mat(1, 1);
  head_b_.data()[0] = 0.0f;  // log-space head: exp(0) = 1 cycle

  std::vector<nn::Mat*> params{&embedding_, &head_w_, &head_b_};
  for (auto* p : token_lstm_.params()) params.push_back(p);
  for (auto* p : block_lstm_.params()) params.push_back(p);
  nn::Adam::Config ac;
  ac.lr = config_.lr;
  adam_ = std::make_unique<nn::Adam>(std::move(params), ac);
}

struct IthemalModel::Forward {
  std::vector<std::vector<int>> tokens;
  std::vector<std::vector<nn::LstmStepCache>> token_caches;
  std::vector<nn::LstmStepCache> block_caches;
  double raw = 0.0;         // pre-exponential regressor output
  double prediction = 0.0;  // exp(raw), cycles
};

IthemalModel::Forward IthemalModel::forward(
    const x86::BasicBlock& block) const {
  Forward f;
  f.tokens = tokenizer_.tokenize(block);
  std::vector<std::vector<float>> inst_embeds;
  inst_embeds.reserve(f.tokens.size());
  for (const auto& toks : f.tokens) {
    std::vector<std::vector<float>> xs;
    xs.reserve(toks.size());
    for (int t : toks) {
      const float* row = embedding_.data() + t * config_.embed_dim;
      xs.emplace_back(row, row + config_.embed_dim);
    }
    f.token_caches.push_back(token_lstm_.run(xs));
    inst_embeds.push_back(f.token_caches.back().empty()
                              ? std::vector<float>(config_.hidden_dim, 0.f)
                              : f.token_caches.back().back().h);
  }
  f.block_caches = block_lstm_.run(inst_embeds);
  const std::vector<float> h_final =
      f.block_caches.empty() ? std::vector<float>(config_.hidden_dim, 0.f)
                             : f.block_caches.back().h;
  double y = head_b_.data()[0];
  for (std::size_t i = 0; i < config_.hidden_dim; ++i) {
    y += head_w_.data()[i] * h_final[i];
  }
  // The regressor works in log-space: throughputs span two orders of
  // magnitude (0.25 .. ~25 cycles), and a log-linear head keeps the
  // relative-error loss well conditioned across that range.
  f.raw = y;
  f.prediction = std::exp(std::clamp(y, -3.0, 5.0));
  return f;
}

double IthemalModel::predict(const x86::BasicBlock& block) const {
  if (block.empty()) return 0.0;
  return forward(block).prediction;
}

void IthemalModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                 std::span<double> out) const {
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    predict_range(blocks, out, begin, end);
  });
}

void IthemalModel::predict_range(std::span<const x86::BasicBlock> blocks,
                                 std::span<double> out, std::size_t begin,
                                 std::size_t end) const {
  const std::size_t D = config_.embed_dim;
  const std::size_t H = config_.hidden_dim;

  // Stage 1 — tokenize/embed the whole range: one token-LSTM lane per
  // instruction of every non-empty block. Lane inputs are pointers straight
  // into the embedding table, so "embedding lookup" costs no copies.
  struct BlockLanes {
    std::size_t out_index;   // where the prediction goes
    std::size_t first_lane;  // first token lane of this block
    std::size_t num_insts;
  };
  std::vector<BlockLanes> live;
  std::vector<std::vector<const float*>> token_lanes;
  for (std::size_t b = begin; b < end; ++b) {
    const x86::BasicBlock& block = blocks[b];
    if (block.empty()) {
      out[b] = 0.0;
      continue;
    }
    const auto tokens = tokenizer_.tokenize(block);
    live.push_back({b, token_lanes.size(), tokens.size()});
    for (const auto& seq : tokens) {
      std::vector<const float*> lane;
      lane.reserve(seq.size());
      for (const int t : seq) lane.push_back(embedding_.data() + t * D);
      token_lanes.push_back(std::move(lane));
    }
  }
  if (live.empty()) return;

  // Stage 2 — token LSTM over all instructions of all blocks in one
  // lane-packed pass; row l of inst_h is instruction-lane l's embedding.
  nn::LstmBatchScratch scratch;
  std::vector<float> inst_h;
  token_lstm_.run_final_batch(token_lanes, inst_h, scratch);

  // Stage 3 — block LSTM over all blocks: each block's lane walks its own
  // instruction-embedding rows.
  std::vector<std::vector<const float*>> block_lanes(live.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    block_lanes[k].reserve(live[k].num_insts);
    for (std::size_t j = 0; j < live[k].num_insts; ++j) {
      block_lanes[k].push_back(inst_h.data() + (live[k].first_lane + j) * H);
    }
  }
  std::vector<float> blk_h;
  block_lstm_.run_final_batch(block_lanes, blk_h, scratch);

  // Stage 4 — regression head (same double-precision chain as forward()).
  for (std::size_t k = 0; k < live.size(); ++k) {
    const float* h = blk_h.data() + k * H;
    double y = head_b_.data()[0];
    for (std::size_t i = 0; i < H; ++i) {
      y += head_w_.data()[i] * h[i];
    }
    out[live[k].out_index] = std::exp(std::clamp(y, -3.0, 5.0));
  }
}

std::string IthemalModel::name() const {
  return "ithemal-" + uarch_name(uarch_);
}

void IthemalModel::set_learning_rate(double lr) { adam_->set_lr(lr); }

double IthemalModel::train_step(const x86::BasicBlock& block, double target) {
  if (block.empty() || target <= 0.0) return 0.0;
  Forward f = forward(block);
  // Relative-error loss: L = ((y - t) / t)^2 — matches the MAPE evaluation
  // metric and normalizes the wide dynamic range of throughputs.
  const double rel = (f.prediction - target) / target;
  // d/draw of ((exp(raw) - t)/t)^2 = 2*rel/t * exp(raw).
  const double dy = 2.0 * rel / target * f.prediction;

  // Head backward.
  const std::vector<float>& h_final = f.block_caches.back().h;
  std::vector<float> dh_final(config_.hidden_dim, 0.f);
  for (std::size_t i = 0; i < config_.hidden_dim; ++i) {
    head_w_.grad()[i] += static_cast<float>(dy) * h_final[i];
    dh_final[i] = static_cast<float>(dy) * head_w_.data()[i];
  }
  head_b_.grad()[0] += static_cast<float>(dy);

  // Block LSTM backward -> gradients of instruction embeddings.
  const auto dinst = block_lstm_.backward_sequence(f.block_caches, dh_final);

  // Token LSTMs backward -> embedding-row gradients.
  for (std::size_t i = 0; i < f.token_caches.size(); ++i) {
    if (f.token_caches[i].empty()) continue;
    const auto dxs =
        token_lstm_.backward_sequence(f.token_caches[i], dinst[i]);
    for (std::size_t t = 0; t < dxs.size(); ++t) {
      float* gro = embedding_.grad() + f.tokens[i][t] * config_.embed_dim;
      for (std::size_t d = 0; d < config_.embed_dim; ++d) {
        gro[d] += dxs[t][d];
      }
    }
  }
  adam_->step();
  return rel * rel;
}

double IthemalModel::train(const std::vector<x86::BasicBlock>& blocks,
                           const std::vector<double>& targets) {
  if (blocks.size() != targets.size()) {
    throw std::invalid_argument("IthemalModel::train: size mismatch");
  }
  util::Rng rng(config_.seed ^ 0x5eedULL);
  std::vector<std::size_t> order(blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    // Simple linear learning-rate decay over epochs.
    adam_->set_lr(config_.lr *
                  (1.0 - 0.6 * static_cast<double>(epoch) /
                             std::max<std::size_t>(1, config_.epochs)));
    for (const std::size_t i : order) train_step(blocks[i], targets[i]);
  }

  std::vector<double> preds, acts;
  preds.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    preds.push_back(predict(blocks[i]));
    acts.push_back(targets[i]);
  }
  return util::mape(preds, acts);
}

std::vector<nn::Mat*> IthemalModel::checkpoint_mats() {
  std::vector<nn::Mat*> mats{&embedding_};
  for (auto* p : token_lstm_.params()) mats.push_back(p);
  for (auto* p : block_lstm_.params()) mats.push_back(p);
  mats.push_back(&head_w_);
  mats.push_back(&head_b_);
  return mats;
}

std::vector<const nn::Mat*> IthemalModel::checkpoint_mats() const {
  std::vector<const nn::Mat*> mats{&embedding_};
  for (const auto* p : token_lstm_.params()) mats.push_back(p);
  for (const auto* p : block_lstm_.params()) mats.push_back(p);
  mats.push_back(&head_w_);
  mats.push_back(&head_b_);
  return mats;
}

void IthemalModel::save(const std::filesystem::path& path) const {
  save_checkpoint(path, kMagic, "IthemalModel::save", checkpoint_mats());
}

bool IthemalModel::load(const std::filesystem::path& path) {
  // Size/shape gating, payload validation, and staged commit all live in
  // load_checkpoint (cost/checkpoint.h): a missing file or stale magic is
  // a cache miss (false), while a truncated, oversized, or bit-flipped
  // checkpoint throws util::ContractViolation before the live weights are
  // touched.
  return load_checkpoint(path, kMagic, "IthemalModel::load",
                         checkpoint_mats());
}

double IthemalModel::train_or_load(
    const std::filesystem::path& path,
    const std::vector<x86::BasicBlock>& blocks,
    const std::vector<double>& targets) {
  if (load(path)) return 0.0;
  const double final_mape = train(blocks, targets);
  std::filesystem::create_directories(path.parent_path());
  save(path);
  return final_mape;
}

}  // namespace comet::cost
