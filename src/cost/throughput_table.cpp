#include "cost/throughput_table.h"

#include <algorithm>

namespace comet::cost {

namespace {

using x86::OpClass;
using x86::Opcode;

struct ClassTiming {
  double rthroughput;
  double latency;
};

// Per-class baseline timings. {HSW, SKL}.
ClassTiming class_timing(OpClass cls, MicroArch u) {
  const bool skl = u == MicroArch::Skylake;
  switch (cls) {
    case OpClass::Mov: return {0.25, 1.0};
    case OpClass::IntAlu: return {0.25, 1.0};
    case OpClass::Lea: return {0.5, 1.0};
    case OpClass::Shift: return {0.5, 1.0};
    case OpClass::IntMul: return {1.0, 3.0};
    case OpClass::IntDiv: return skl ? ClassTiming{18.0, 24.0}
                                     : ClassTiming{22.0, 29.0};
    case OpClass::Stack: return {1.0, 2.0};
    case OpClass::Nop: return {0.25, 0.0};
    case OpClass::FpMov: return {0.25, 1.0};
    case OpClass::FpAdd: return skl ? ClassTiming{0.5, 4.0}
                                    : ClassTiming{1.0, 3.0};
    case OpClass::FpMul: return {0.5, skl ? 4.0 : 5.0};
    case OpClass::FpDiv: return skl ? ClassTiming{3.0, 11.0}
                                    : ClassTiming{7.0, 13.0};
    case OpClass::FpFma: return {0.5, skl ? 4.0 : 5.0};
    case OpClass::VecInt: return {0.5, 1.0};
    case OpClass::VecIntMul: return skl ? ClassTiming{1.0, 8.0}
                                        : ClassTiming{2.0, 10.0};
    case OpClass::Shuffle: return {1.0, 1.0};
    case OpClass::Convert: return {1.0, 5.0};
  }
  return {1.0, 1.0};
}

// Opcode-level refinements on top of the class baselines.
void apply_overrides(const x86::Instruction& inst, MicroArch u,
                     ClassTiming& t) {
  const bool skl = u == MicroArch::Skylake;
  const std::uint16_t w =
      inst.operands.empty() ? 64 : inst.operands[0].size_bits();
  switch (inst.opcode) {
    // Narrow divides are much cheaper than 64-bit ones.
    case Opcode::DIV:
    case Opcode::IDIV:
      if (w <= 8) {
        t = {skl ? 6.0 : 8.0, skl ? 12.0 : 15.0};
      } else if (w <= 16) {
        t = {skl ? 7.0 : 9.0, skl ? 14.0 : 17.0};
      } else if (w <= 32) {
        t = {skl ? 9.0 : 10.0, skl ? 18.0 : 22.0};
      }
      break;
    // Double-precision divide/sqrt are slower than single.
    case Opcode::DIVSD:
    case Opcode::VDIVSD:
    case Opcode::SQRTSD:
    case Opcode::VSQRTSD:
      t = skl ? ClassTiming{4.0, 14.0} : ClassTiming{14.0, 20.0};
      break;
    case Opcode::DIVPD:
    case Opcode::VDIVPD:
    case Opcode::SQRTPD:
      t = skl ? ClassTiming{8.0, 14.0} : ClassTiming{16.0, 20.0};
      break;
    case Opcode::DIVPS:
    case Opcode::VDIVPS:
    case Opcode::SQRTPS:
      t = skl ? ClassTiming{5.0, 11.0} : ClassTiming{7.0, 13.0};
      break;
    // 1-operand full-width multiply is slower than imul r,r.
    case Opcode::MUL:
    case Opcode::IMUL:
      if (inst.operands.size() == 1) t = {2.0, w >= 64 ? 4.0 : 3.0};
      break;
    // xchg r,r is a 3-uop operation.
    case Opcode::XCHG:
      t = {1.0, 2.0};
      break;
    // Bit scans are single-port.
    case Opcode::BSF:
    case Opcode::BSR:
      t = {1.0, 3.0};
      break;
    default:
      break;
  }
}

bool has_load(const x86::Instruction& inst) {
  const auto sem = x86::semantics(inst);
  return (sem.mem && sem.mem->read) || sem.stack_mem_read;
}

bool has_store(const x86::Instruction& inst) {
  const auto sem = x86::semantics(inst);
  return (sem.mem && sem.mem->write) || sem.stack_mem_write;
}

}  // namespace

double inst_throughput(const x86::Instruction& inst, MicroArch uarch) {
  ClassTiming t = class_timing(x86::info(inst.opcode).cls, uarch);
  apply_overrides(inst, uarch, t);
  double rt = t.rthroughput;
  // Memory port limits: two load ports (0.5 cyc/load), one store-data port.
  if (has_load(inst)) rt = std::max(rt, 0.5);
  if (has_store(inst)) rt = std::max(rt, 1.0);
  return rt;
}

double inst_latency(const x86::Instruction& inst, MicroArch uarch) {
  ClassTiming t = class_timing(x86::info(inst.opcode).cls, uarch);
  apply_overrides(inst, uarch, t);
  double lat = t.latency;
  // A load adds the L1 access latency to the dependency chain.
  if (has_load(inst)) lat += 4.0;
  return lat;
}

}  // namespace comet::cost
