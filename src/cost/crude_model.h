// The paper's crude, interpretable, analytical cost model C (Section 6,
// eq. 8; Appendix G) and its exact ground-truth explanations GT(β) (eq. 9).
//
//   C(β) = max{ cost_η(n),  max_i cost_inst(inst_i),  max_{δij} cost_dep(δij) }
//
// with
//   cost_inst(inst) = reciprocal throughput of inst (uops.info-style table),
//   cost_dep(δ)     = 0 for WAR/WAW (false dependencies, removable by
//                     register renaming), and
//                     cost_inst(inst_i) + cost_inst(inst_j) for RAW
//                     (true dependency: the two instructions serialize),
//   cost_η(n)       = n / 4 (issue-width bound, after Abel & Reineke 2022).
//
// Because C is analytical, GT(β) — the set of features attaining the max —
// is computable exactly, which is what makes the Table 2 accuracy
// evaluation of COMET possible.
#pragma once

#include <memory>

#include "cost/cost_model.h"
#include "graph/features.h"

namespace comet::cost {

class CrudeModel final : public CostModel {
 public:
  explicit CrudeModel(MicroArch uarch,
                      graph::DepGraphOptions graph_options = {});

  double predict(const x86::BasicBlock& block) const override;
  // predict_batch: inherits the base element-wise sweep, which already
  // chunks across the shared pool under set_batch_threads() — the
  // analytical pass is pure per block (table lookups + a local dep graph).
  std::string name() const override;

  MicroArch uarch() const { return uarch_; }

  /// cost_η(n) = n / 4.
  double cost_num_insts(std::size_t n) const;
  /// cost_inst of one instruction (table lookup).
  double cost_inst(const x86::Instruction& inst) const;
  /// cost_dep of one dependency edge within `block`.
  double cost_dep(const x86::BasicBlock& block,
                  const graph::DepEdge& edge) const;

  /// Exact ground-truth explanation GT(β): all features whose cost equals
  /// C(β), up to a small tie tolerance.
  graph::FeatureSet ground_truth(const x86::BasicBlock& block) const;

 private:
  MicroArch uarch_;
  graph::DepGraphOptions graph_options_;
};

}  // namespace comet::cost
