// The cost-model abstraction COMET explains.
//
// A cost model M maps valid basic blocks of an ISA to real-valued costs
// (here: steady-state loop throughput in cycles per iteration, the quantity
// Ithemal and uiCA predict). COMET assumes nothing beyond query access to
// predict(): every model in this repository — the crude analytical model C,
// the pipeline simulators, and the trained LSTM — sits behind this one
// interface, mirroring the paper's model-agnostic design.
//
// The interface is batch-first: the explanation engine issues whole sample
// batches through predict_batch(), and models override it to amortize
// per-query setup (the neural models run an allocation-free inference path,
// the analytical models skip per-element virtual dispatch). predict() stays
// the single-query entry point and the semantic ground truth: predict_batch
// must agree with element-wise predict() exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "x86/instruction.h"

namespace comet::cost {

/// Target microarchitectures studied in the paper.
enum class MicroArch : std::uint8_t { Haswell, Skylake };

std::string uarch_name(MicroArch uarch);

/// Query-access cost model interface.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Predicted cost (throughput, cycles per steady-state loop iteration)
  /// of executing `block` on this model's microarchitecture.
  virtual double predict(const x86::BasicBlock& block) const = 0;

  /// Predict every block of `blocks` into the parallel `out` span
  /// (out.size() must equal blocks.size()). The default is a sequential
  /// element-wise fallback; models override it with a vectorized path.
  virtual void predict_batch(std::span<const x86::BasicBlock> blocks,
                             std::span<double> out) const;

  /// Human-readable model name ("ithemal", "uica", "crude", ...).
  virtual std::string name() const = 0;

  /// Intra-batch parallelism knob: when n >= 2, predict_batch
  /// implementations split each batch into up to n contiguous chunks and
  /// evaluate them concurrently on the process-wide shared
  /// serve::ThreadPool. The default (1) keeps every batch fully sequential
  /// on the calling thread — no pool is created, and results, goldens, and
  /// query accounting are untouched. Per-block predictions are independent
  /// and deterministic, so a threaded batch is element-wise identical to a
  /// sequential one; only wall-clock changes.
  ///
  /// Not thread-safe against concurrent predict_batch calls on the same
  /// instance: set it during setup, before the model starts serving.
  void set_batch_threads(std::size_t n) { batch_threads_ = n == 0 ? 1 : n; }
  std::size_t batch_threads() const { return batch_threads_; }

 protected:
  /// Helper for predict_batch implementations: invoke fn(begin, end) over
  /// contiguous chunks covering [0, total). With batch_threads() <= 1 (or a
  /// batch too small to split) this is one inline fn(0, total) call;
  /// otherwise the chunks run on the shared serve::ThreadPool and the call
  /// blocks until all of them finish. fn must write only its own out-span
  /// range and touch the model through const methods only.
  void for_batch_chunks(
      std::size_t total,
      const std::function<void(std::size_t, std::size_t)>& fn) const;

 private:
  std::size_t batch_threads_ = 1;
};

}  // namespace comet::cost
