// The cost-model abstraction COMET explains.
//
// A cost model M maps valid basic blocks of an ISA to real-valued costs
// (here: steady-state loop throughput in cycles per iteration, the quantity
// Ithemal and uiCA predict). COMET assumes nothing beyond query access to
// predict(): every model in this repository — the crude analytical model C,
// the pipeline simulators, and the trained LSTM — sits behind this one
// interface, mirroring the paper's model-agnostic design.
#pragma once

#include <cstdint>
#include <string>

#include "x86/instruction.h"

namespace comet::cost {

/// Target microarchitectures studied in the paper.
enum class MicroArch : std::uint8_t { Haswell, Skylake };

std::string uarch_name(MicroArch uarch);

/// Query-access cost model interface.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Predicted cost (throughput, cycles per steady-state loop iteration)
  /// of executing `block` on this model's microarchitecture.
  virtual double predict(const x86::BasicBlock& block) const = 0;

  /// Human-readable model name ("ithemal", "uica", "crude", ...).
  virtual std::string name() const = 0;
};

}  // namespace comet::cost
