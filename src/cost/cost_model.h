// The cost-model abstraction COMET explains.
//
// A cost model M maps valid basic blocks of an ISA to real-valued costs
// (here: steady-state loop throughput in cycles per iteration, the quantity
// Ithemal and uiCA predict). COMET assumes nothing beyond query access to
// predict(): every model in this repository — the crude analytical model C,
// the pipeline simulators, and the trained LSTM — sits behind this one
// interface, mirroring the paper's model-agnostic design.
//
// The interface is batch-first: the explanation engine issues whole sample
// batches through predict_batch(), and models override it to amortize
// per-query setup (the neural models run an allocation-free inference path,
// the analytical models skip per-element virtual dispatch). predict() stays
// the single-query entry point and the semantic ground truth: predict_batch
// must agree with element-wise predict() exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "x86/instruction.h"

namespace comet::cost {

/// Target microarchitectures studied in the paper.
enum class MicroArch : std::uint8_t { Haswell, Skylake };

std::string uarch_name(MicroArch uarch);

/// Query-access cost model interface.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Predicted cost (throughput, cycles per steady-state loop iteration)
  /// of executing `block` on this model's microarchitecture.
  virtual double predict(const x86::BasicBlock& block) const = 0;

  /// Predict every block of `blocks` into the parallel `out` span
  /// (out.size() must equal blocks.size()). The default is a sequential
  /// element-wise fallback; models override it with a vectorized path.
  virtual void predict_batch(std::span<const x86::BasicBlock> blocks,
                             std::span<double> out) const;

  /// Human-readable model name ("ithemal", "uica", "crude", ...).
  virtual std::string name() const = 0;
};

}  // namespace comet::cost
