// Perturbation-consistency fine-tuning: COMET's feedback loop into model
// training (paper Section 7, future work).
//
// The paper proposes that "COMET's feedback can be leveraged to update the
// model parameters during training to have the predictions rely on
// finer-grained features". This module implements that loop on our
// substrate. The lever is COMET's own perturbation distribution D = Γ(∅):
// sampling it yields blocks that differ from a training block in exactly
// the fine-grained dimensions COMET's explanations are built from (opcode
// identity, dependency structure) while staying close in the coarse one
// (instruction count changes slowly under Γ). Labeling those perturbations
// with the ground-truth oracle and fine-tuning on them penalizes a model
// that predicts from η alone — two perturbations with equal length but a
// broken RAW chain now carry different targets.
//
// The extension bench (bench_ext_finetune) closes the paper's loop: it
// measures MAPE *and* the explanation feature-type composition before and
// after fine-tuning, checking that error drops as explanations shift
// toward fine-grained features — the inverse correlation of Figures 2-4,
// induced rather than observed.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "graph/depgraph.h"
#include "perturb/perturber.h"
#include "util/rng.h"
#include "util/stats.h"

namespace comet::cost {

struct FinetuneOptions {
  /// Fine-tuning passes over the block set.
  std::size_t rounds = 1;
  /// Γ(∅) samples drawn (and oracle-labeled) per block per round.
  std::size_t perturbations_per_block = 6;
  /// Replay each original (block, target) pair this many times per round,
  /// so fine-tuning does not drift off the measured distribution. Matching
  /// perturbations_per_block keeps the two sources balanced.
  std::size_t original_replays = 6;
  /// Sample Γ({η}) instead of Γ(∅): perturbations keep the instruction
  /// count, so every augmented pair differs from the original *only* in
  /// fine-grained features — exactly the signal the paper's feedback loop
  /// wants the model to pick up — and the length distribution of the
  /// training stream is unchanged.
  bool preserve_num_insts = true;
  /// Optimizer learning rate during fine-tuning. Gentler than from-scratch
  /// training: the model is warm and the perturbation distribution is
  /// intentionally off the measured one.
  double learning_rate = 5e-4;
  std::uint64_t seed = 0xF17E;
  graph::DepGraphOptions graph_options;
  perturb::PerturbConfig perturb_config;
};

struct FinetuneResult {
  /// Training-set MAPE (%) against `targets` before / after fine-tuning.
  double mape_before = 0.0;
  double mape_after = 0.0;
  /// Oracle-labeled perturbation pairs consumed.
  std::size_t augmented_samples = 0;
};

/// Fine-tune `model` (anything exposing predict / train_step, i.e. the
/// Ithemal and Granite surrogates) on Γ-perturbations of `blocks` labeled
/// by `oracle`. `targets` are the measured costs of the originals.
template <typename TrainableModel>
FinetuneResult finetune_with_perturbations(
    TrainableModel& model, const std::vector<x86::BasicBlock>& blocks,
    const std::vector<double>& targets, const CostModel& oracle,
    const FinetuneOptions& options = {}) {
  FinetuneResult result;

  const auto mape_now = [&] {
    std::vector<double> preds(blocks.size());
    model.predict_batch(std::span<const x86::BasicBlock>(blocks),
                        std::span<double>(preds));
    return util::mape(preds, targets);
  };
  result.mape_before = mape_now();

  model.set_learning_rate(options.learning_rate);
  util::Rng rng(options.seed);
  std::vector<std::size_t> order(blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      const perturb::Perturber perturber(blocks[i], options.graph_options,
                                         options.perturb_config);
      graph::FeatureSet preserve;
      if (options.preserve_num_insts) {
        preserve.insert(
            graph::Feature(graph::NumInstsFeature{blocks[i].size()}));
      }
      for (std::size_t k = 0; k < options.perturbations_per_block; ++k) {
        const auto pb = perturber.sample(preserve, rng);
        if (pb.block.empty()) continue;
        const double label = oracle.predict(pb.block);
        if (label <= 0.0) continue;
        model.train_step(pb.block, label);
        ++result.augmented_samples;
      }
      for (std::size_t k = 0; k < options.original_replays; ++k) {
        model.train_step(blocks[i], targets[i]);
      }
    }
  }

  result.mape_after = mape_now();
  return result;
}

}  // namespace comet::cost
