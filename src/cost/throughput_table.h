// Embedded per-instruction reciprocal-throughput tables for Haswell and
// Skylake — the stand-in for the uops.info measurements the paper's crude
// interpretable cost model C draws its cost_inst values from (Appendix G).
//
// Values are approximate published reciprocal throughputs (cycles per
// instruction when run back-to-back), keyed by opcode class with
// opcode-specific overrides, and adjusted for memory operands: a load
// bounds the throughput below by the load-port limit, a store by the
// store-port limit. Exact agreement with real hardware is not the goal;
// what matters for the evaluation is a realistic *ordering* (divides are
// expensive, stores cost more than reg-reg moves, Skylake improves FP
// add/div over Haswell).
#pragma once

#include "cost/cost_model.h"
#include "x86/instruction.h"

namespace comet::cost {

/// Reciprocal throughput (cycles) of one instruction on `uarch`.
/// Accounts for the opcode, operand width, and memory operands.
double inst_throughput(const x86::Instruction& inst, MicroArch uarch);

/// Instruction latency (cycles, result-ready time) on `uarch`; used by the
/// crude model's RAW dependency cost and exposed for the simulators' tables
/// to stay consistent with C.
double inst_latency(const x86::Instruction& inst, MicroArch uarch);

}  // namespace comet::cost
