// Query-traffic counters maintained by the QueryBroker and carried on every
// explanation. Split from query_broker.h so widely-included result types
// (core::Explanation, riscv::RvExplanation) don't pull in the broker
// template machinery.
//
// The counters are plain sums, so stats from independent brokers (one per
// shard of a serve::ShardedBrokerPool, one per served request) merge with
// operator+= into a single load-accounting ledger.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "util/str.h"

namespace comet::cost {

/// Query-traffic counters, all maintained by QueryBroker.
struct QueryStats {
  std::size_t requested = 0;    ///< predictions asked of the broker
  std::size_t evaluated = 0;    ///< predictions actually run by the model
  std::size_t cache_hits = 0;   ///< predictions served from the memo table
  std::size_t batch_calls = 0;  ///< predict_batch() calls issued downstream
  std::size_t single_calls = 0; ///< single predict() calls issued downstream

  /// Merge another broker's ledger into this one (per-shard / per-request
  /// aggregation for the sharded pool and the explanation server).
  QueryStats& operator+=(const QueryStats& other) {
    requested += other.requested;
    evaluated += other.evaluated;
    cache_hits += other.cache_hits;
    batch_calls += other.batch_calls;
    single_calls += other.single_calls;
    return *this;
  }

  friend QueryStats operator+(QueryStats lhs, const QueryStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  friend bool operator==(const QueryStats&, const QueryStats&) = default;

  /// Fraction of requested predictions served from the memo table
  /// (cache_hits / requested); 0 when nothing was requested.
  double hit_rate() const {
    return requested ? static_cast<double>(cache_hits) /
                           static_cast<double>(requested)
                     : 0.0;
  }

  /// Mean predictions evaluated per predict_batch round-trip — the batch
  /// width a remote or sharded backend actually sees. Single-call
  /// evaluations are excluded from the numerator; 0 when no batch call was
  /// issued.
  double batch_fill() const {
    return batch_calls ? static_cast<double>(evaluated - single_calls) /
                             static_cast<double>(batch_calls)
                       : 0.0;
  }

  /// One-line human-readable form for bench output and server drain
  /// reports.
  std::string to_string() const {
    return "requested=" + std::to_string(requested) +
           " evaluated=" + std::to_string(evaluated) +
           " cache_hits=" + std::to_string(cache_hits) +
           " batch_calls=" + std::to_string(batch_calls) +
           " single_calls=" + std::to_string(single_calls) +
           " hit_rate=" + util::format_fixed(hit_rate(), 3) +
           " batch_fill=" + util::format_fixed(batch_fill(), 1);
  }
};

/// The drain-report body: one "  key: <ledger>" line per model key. The
/// single formatting point shared by serve::ExplanationServer::report()
/// and the bench/demo drain output (they used to duplicate this loop).
inline std::string format_stats_report(
    const std::map<std::string, QueryStats>& by_key) {
  std::string out;
  for (const auto& [key, stats] : by_key) {
    out += "  " + key + ": " + stats.to_string() + "\n";
  }
  return out;
}

}  // namespace comet::cost
