// Query-traffic counters maintained by the QueryBroker and carried on every
// explanation. Split from query_broker.h so widely-included result types
// (core::Explanation, riscv::RvExplanation) don't pull in the broker
// template machinery.
//
// The counters are plain sums, so stats from independent brokers (one per
// shard of a serve::ShardedBrokerPool, one per served request) merge with
// operator+= into a single load-accounting ledger.
#pragma once

#include <cstddef>
#include <string>

namespace comet::cost {

/// Query-traffic counters, all maintained by QueryBroker.
struct QueryStats {
  std::size_t requested = 0;    ///< predictions asked of the broker
  std::size_t evaluated = 0;    ///< predictions actually run by the model
  std::size_t cache_hits = 0;   ///< predictions served from the memo table
  std::size_t batch_calls = 0;  ///< predict_batch() calls issued downstream
  std::size_t single_calls = 0; ///< single predict() calls issued downstream

  /// Merge another broker's ledger into this one (per-shard / per-request
  /// aggregation for the sharded pool and the explanation server).
  QueryStats& operator+=(const QueryStats& other) {
    requested += other.requested;
    evaluated += other.evaluated;
    cache_hits += other.cache_hits;
    batch_calls += other.batch_calls;
    single_calls += other.single_calls;
    return *this;
  }

  friend QueryStats operator+(QueryStats lhs, const QueryStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  friend bool operator==(const QueryStats&, const QueryStats&) = default;

  /// One-line human-readable form for bench output and server drain
  /// reports.
  std::string to_string() const {
    return "requested=" + std::to_string(requested) +
           " evaluated=" + std::to_string(evaluated) +
           " cache_hits=" + std::to_string(cache_hits) +
           " batch_calls=" + std::to_string(batch_calls) +
           " single_calls=" + std::to_string(single_calls);
  }
};

}  // namespace comet::cost
