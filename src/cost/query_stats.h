// Query-traffic counters maintained by the QueryBroker and carried on every
// explanation. Split from query_broker.h so widely-included result types
// (core::Explanation, riscv::RvExplanation) don't pull in the broker
// template machinery.
#pragma once

#include <cstddef>

namespace comet::cost {

/// Query-traffic counters, all maintained by QueryBroker.
struct QueryStats {
  std::size_t requested = 0;    ///< predictions asked of the broker
  std::size_t evaluated = 0;    ///< predictions actually run by the model
  std::size_t cache_hits = 0;   ///< predictions served from the memo table
  std::size_t batch_calls = 0;  ///< predict_batch() calls issued downstream
  std::size_t single_calls = 0; ///< single predict() calls issued downstream
};

}  // namespace comet::cost
