#include "cost/crude_model.h"

#include <algorithm>
#include <cmath>

#include "cost/throughput_table.h"

namespace comet::cost {

namespace {
constexpr double kTieTolerance = 1e-9;
}

std::string uarch_name(MicroArch uarch) {
  switch (uarch) {
    case MicroArch::Haswell: return "HSW";
    case MicroArch::Skylake: return "SKL";
  }
  return "?";
}

CrudeModel::CrudeModel(MicroArch uarch, graph::DepGraphOptions graph_options)
    : uarch_(uarch), graph_options_(graph_options) {}

std::string CrudeModel::name() const {
  return "crude-" + uarch_name(uarch_);
}

double CrudeModel::cost_num_insts(std::size_t n) const {
  return static_cast<double>(n) / 4.0;
}

double CrudeModel::cost_inst(const x86::Instruction& inst) const {
  return inst_throughput(inst, uarch_);
}

double CrudeModel::cost_dep(const x86::BasicBlock& block,
                            const graph::DepEdge& edge) const {
  // WAR/WAW are false dependencies removable by register renaming; only the
  // true (RAW) dependency serializes the pair (Appendix G, eq. 10).
  if (edge.kind != graph::DepKind::RAW) return 0.0;
  return cost_inst(block.instructions[edge.from]) +
         cost_inst(block.instructions[edge.to]);
}

double CrudeModel::predict(const x86::BasicBlock& block) const {
  double best = cost_num_insts(block.size());
  for (const auto& inst : block.instructions) {
    best = std::max(best, cost_inst(inst));
  }
  const auto g = graph::DepGraph::build(block, graph_options_);
  for (const auto& e : g.edges()) {
    best = std::max(best, cost_dep(block, e));
  }
  return best;
}

graph::FeatureSet CrudeModel::ground_truth(
    const x86::BasicBlock& block) const {
  const double c = predict(block);
  graph::FeatureSet gt;
  if (std::abs(cost_num_insts(block.size()) - c) < kTieTolerance) {
    gt.insert(graph::Feature(graph::NumInstsFeature{block.size()}));
  }
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (std::abs(cost_inst(block.instructions[i]) - c) < kTieTolerance) {
      gt.insert(graph::Feature(
          graph::InstFeature{i, block.instructions[i].opcode}));
    }
  }
  const auto g = graph::DepGraph::build(block, graph_options_);
  for (const auto& e : g.edges()) {
    if (std::abs(cost_dep(block, e) - c) < kTieTolerance) {
      gt.insert(graph::Feature(graph::DepFeature{e.from, e.to, e.kind}));
    }
  }
  return gt;
}

}  // namespace comet::cost
