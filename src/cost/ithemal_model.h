// The Ithemal stand-in: a hierarchical LSTM throughput predictor, trained
// from scratch in this repository (paper Appendix H.2).
//
// Architecture mirrors Ithemal (Mendis et al. 2019): the basic block is
// tokenized (opcode and operand tokens per instruction); a token-level LSTM
// folds each instruction's token embeddings into an instruction embedding;
// a block-level LSTM folds instruction embeddings into a block embedding;
// a linear regressor maps that to a scalar throughput.
//
// The model is genuinely trained (Adam, relative-error loss) on the
// synthetic BHive-like dataset labeled with hardware-oracle measurements —
// one instance per microarchitecture, as in the paper. Capacity and data are
// deliberately laptop-scale; the resulting model is accurate but coarser
// than the simulation-based comparator, which is precisely the regime the
// paper's analysis (Figures 2-4, case studies) examines.
//
// Trained weights are cached on disk (train_or_load) so the expensive step
// runs once per microarchitecture across all benches and examples.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "cost/cost_model.h"
#include "nn/lstm.h"
#include "nn/mat.h"

namespace comet::cost {

/// Tokenization of basic blocks into per-instruction token-id sequences.
/// Vocabulary: one token per opcode, one per (register family, width),
/// plus IMM / MEM_OPEN / MEM_CLOSE markers.
class BlockTokenizer {
 public:
  BlockTokenizer();
  std::size_t vocab_size() const { return vocab_size_; }
  std::vector<std::vector<int>> tokenize(const x86::BasicBlock& block) const;

 private:
  std::size_t vocab_size_ = 0;
  int imm_token_ = 0;
  int mem_open_token_ = 0;
  int mem_close_token_ = 0;
};

struct IthemalConfig {
  std::size_t embed_dim = 12;
  std::size_t hidden_dim = 24;
  std::size_t epochs = 5;
  double lr = 2e-3;
  std::uint64_t seed = 0xC0;
};

class IthemalModel final : public CostModel {
 public:
  explicit IthemalModel(MicroArch uarch, IthemalConfig config = {});

  double predict(const x86::BasicBlock& block) const override;
  /// Cross-block batched inference: tokenizes and embeds the whole batch,
  /// runs the token LSTM over all instructions of all blocks in one
  /// lane-packed pass and the block LSTM over all blocks in a second
  /// (nn::LstmCell::run_final_batch — each timestep's gate pre-activations
  /// are matrix-matrix products over every live lane instead of per-block
  /// matrix-vector products). Bit-for-bit equal to element-wise predict();
  /// honors set_batch_threads() by evaluating contiguous sub-batches
  /// concurrently, each through its own lane-packed pass.
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  std::string name() const override;
  MicroArch uarch() const { return uarch_; }

  /// One Adam step on a single (block, target) pair; returns squared
  /// relative error before the step.
  double train_step(const x86::BasicBlock& block, double target);

  /// Override the optimizer learning rate (fine-tuning runs gentler than
  /// from-scratch training).
  void set_learning_rate(double lr);

  /// Full training run over (blocks, targets); returns final-epoch MAPE on
  /// the training data.
  double train(const std::vector<x86::BasicBlock>& blocks,
               const std::vector<double>& targets);

  /// Binary weight (de)serialization.
  void save(const std::filesystem::path& path) const;
  bool load(const std::filesystem::path& path);

  /// Load cached weights if present; otherwise train and save.
  /// Returns training MAPE (0 when loaded from cache).
  double train_or_load(const std::filesystem::path& path,
                       const std::vector<x86::BasicBlock>& blocks,
                       const std::vector<double>& targets);

 private:
  struct Forward;
  Forward forward(const x86::BasicBlock& block) const;

  /// The matrices of the checkpoint format, in serialization order.
  std::vector<nn::Mat*> checkpoint_mats();
  std::vector<const nn::Mat*> checkpoint_mats() const;

  /// One lane-packed batched forward over blocks[begin, end) — the unit of
  /// work predict_batch hands to each batch-threads chunk.
  void predict_range(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out, std::size_t begin,
                     std::size_t end) const;

  MicroArch uarch_;
  IthemalConfig config_;
  BlockTokenizer tokenizer_;
  nn::Mat embedding_;       // vocab x D
  nn::LstmCell token_lstm_;  // D -> H
  nn::LstmCell block_lstm_;  // H -> H
  nn::Mat head_w_;          // 1 x H
  nn::Mat head_b_;          // 1 x 1
  std::unique_ptr<nn::Adam> adam_;
};

}  // namespace comet::cost
