#include "cost/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/contract.h"

namespace comet::cost {

namespace {

struct FileCloser {
  void operator()(std::FILE* fp) const {
    if (fp != nullptr) std::fclose(fp);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void save_checkpoint(const std::filesystem::path& path, std::uint32_t magic,
                     const char* what,
                     const std::vector<const nn::Mat*>& mats) {
  std::FILE* fp = std::fopen(path.string().c_str(), "wb");
  if (fp == nullptr) {
    throw std::runtime_error(std::string(what) + ": cannot open " +
                             path.string());
  }
  bool ok = std::fwrite(&magic, sizeof(magic), 1, fp) == 1;
  for (const nn::Mat* m : mats) {
    const std::uint64_t dims[2] = {m->rows(), m->cols()};
    ok = ok && std::fwrite(dims, sizeof(dims), 1, fp) == 1;
    ok = ok &&
         std::fwrite(m->data(), sizeof(float), m->size(), fp) == m->size();
  }
  ok = std::fclose(fp) == 0 && ok;
  if (!ok) {
    // A short write would masquerade as a valid cache until the next load;
    // remove the partial file and fail loudly instead.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw std::runtime_error(std::string(what) + ": short write to " +
                             path.string());
  }
}

bool load_checkpoint(const std::filesystem::path& path, std::uint32_t magic,
                     const char* what, const std::vector<nn::Mat*>& mats) {
  FilePtr fp(std::fopen(path.string().c_str(), "rb"));
  if (fp == nullptr) return false;
  std::uint32_t got = 0;
  if (std::fread(&got, sizeof(got), 1, fp.get()) != 1 || got != magic) {
    return false;  // not ours / stale format: cache miss, caller retrains
  }

  // Size gate: the whole layout is known up front, so a truncated or
  // oversized file is rejected before a single payload byte is read.
  std::uint64_t expected = sizeof(magic);
  for (const nn::Mat* m : mats) expected += mat_record_bytes(*m);
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  COMET_CHECK_MSG(!ec && actual == expected,
                  what << ": checkpoint " << path.string() << " is " << actual
                       << " bytes, expected " << expected
                       << " (truncated, oversized, or foreign layout)");

  std::vector<nn::Mat> staged;
  staged.reserve(mats.size());
  for (const nn::Mat* m : mats) {
    std::uint64_t dims[2] = {0, 0};
    COMET_CHECK_MSG(std::fread(dims, sizeof(dims), 1, fp.get()) == 1,
                    what << ": checkpoint " << path.string()
                         << " ended inside a matrix header");
    // Bounds-validate the *claimed* dimensions before anything is sized;
    // the staging buffer below is sized from the trusted live shape only.
    COMET_CHECK_MSG(dims[0] <= kMaxCheckpointDim &&
                        dims[1] <= kMaxCheckpointDim,
                    what << ": checkpoint " << path.string()
                         << " claims an absurd matrix shape " << dims[0]
                         << "x" << dims[1]);
    COMET_CHECK_MSG(dims[0] == m->rows() && dims[1] == m->cols(),
                    what << ": checkpoint " << path.string() << " has a "
                         << dims[0] << "x" << dims[1]
                         << " matrix where the model expects " << m->rows()
                         << "x" << m->cols());
    nn::Mat tmp(m->rows(), m->cols());
    COMET_CHECK_MSG(
        std::fread(tmp.data(), sizeof(float), tmp.size(), fp.get()) ==
            tmp.size(),
        what << ": checkpoint " << path.string()
             << " ended inside a matrix payload");
    for (std::size_t i = 0; i < tmp.size(); ++i) {
      COMET_CHECK_MSG(std::isfinite(tmp.data()[i]),
                      what << ": checkpoint " << path.string()
                           << " carries a non-finite weight at offset " << i
                           << " (bit flip or foreign payload)");
    }
    staged.push_back(std::move(tmp));
  }

  // Commit only after the whole file validated.
  for (std::size_t i = 0; i < mats.size(); ++i) {
    std::copy(staged[i].data(), staged[i].data() + staged[i].size(),
              mats[i]->data());
  }
  return true;
}

}  // namespace comet::cost
