// The query broker: the single funnel through which an explanation engine
// reaches a cost model.
//
// Every Anchors-style explanation consumes thousands of model queries
// (KL-LUCB arm pulls, coverage pools, final verification), and the
// perturbation space of a block is small enough that the same perturbed
// block recurs many times within one search. The broker exploits both
// facts in one place:
//
//   * batching   — callers hand over whole sample batches; the model sees
//                  one predict_batch() call per batch instead of a virtual
//                  predict() per sample,
//   * memoization — results are cached by block text, so a recurring
//                  perturbation costs a hash lookup instead of a forward
//                  pass (duplicates inside a single batch are folded too),
//   * accounting — all query traffic is counted here, giving benches and
//                  tests one authoritative place to audit the query budget.
//
// The broker is templated over (Block, Model) so the same code serves the
// x86 CostModel hierarchy and the RISC-V analytical model: any pair where
// Block has to_string() and Model has predict()/predict_batch() works.
//
// Thread-safety contract:
//   * A QueryBroker instance is NOT thread-safe: the memo table, the stats
//     ledger, and the scratch buffers are unsynchronized. Confine each
//     broker to one thread at a time (serve::AsyncBroker serializes access
//     through its worker; serve::ShardedBrokerPool gives every shard its
//     own broker touched only by that shard's thread).
//   * The broker only ever calls const methods on the model, so a single
//     model instance may back many brokers on many threads provided its
//     predict()/predict_batch() are const-thread-safe (true for every
//     model in this repository: they use only locals and const members).
//   * The broker does not own the model; whoever builds a broker pool owns
//     the per-shard model instances and keeps them alive (see
//     serve::ShardedBrokerPool's factory).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/query_stats.h"

namespace comet::cost {

template <typename Block, typename Model>
class QueryBroker {
 public:
  /// `model` must outlive the broker. `memoize` disables the cache (the
  /// batching and accounting remain); results are identical either way for
  /// deterministic models.
  explicit QueryBroker(const Model& model, bool memoize = true)
      : model_(&model), memoize_(memoize) {}

  /// Pointer variant for pool construction (per-shard ownership lives in
  /// the pool; the broker stays non-owning). `model` must be non-null and
  /// outlive the broker.
  explicit QueryBroker(const Model* model, bool memoize = true)
      : model_(model), memoize_(memoize) {}

  // Movable (so brokers can live in pool containers), not copyable (a
  // copied memo table would double-count traffic in merged stats).
  QueryBroker(QueryBroker&&) noexcept = default;
  QueryBroker& operator=(QueryBroker&&) noexcept = default;

  /// Predict every block of `blocks` into the parallel `out` span.
  /// Cache misses are deduplicated and evaluated in one predict_batch()
  /// call; hits never reach the model.
  void predict_batch(std::span<const Block> blocks, std::span<double> out) {
    stats_.requested += blocks.size();
    if (blocks.empty()) return;
    if (!memoize_) {
      stats_.evaluated += blocks.size();
      ++stats_.batch_calls;
      model_->predict_batch(blocks, out);
      return;
    }
    miss_blocks_.clear();
    miss_keys_.clear();
    pending_.clear();
    // miss_of_[i] is the index into the miss batch, or npos for a hit.
    miss_of_.assign(blocks.size(), npos);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      std::string key = blocks[i].to_string();
      if (const auto it = cache_.find(key); it != cache_.end()) {
        out[i] = it->second;
        ++stats_.cache_hits;
        continue;
      }
      if (const auto it = pending_.find(key); it != pending_.end()) {
        miss_of_[i] = it->second;  // duplicate within this batch
        ++stats_.cache_hits;
        continue;
      }
      const std::size_t slot = miss_blocks_.size();
      pending_.emplace(key, slot);
      miss_of_[i] = slot;
      miss_blocks_.push_back(blocks[i]);
      miss_keys_.push_back(std::move(key));
    }
    if (!miss_blocks_.empty()) {
      miss_out_.resize(miss_blocks_.size());
      stats_.evaluated += miss_blocks_.size();
      ++stats_.batch_calls;
      model_->predict_batch(std::span<const Block>(miss_blocks_),
                            std::span<double>(miss_out_));
      for (std::size_t s = 0; s < miss_keys_.size(); ++s) {
        cache_.emplace(std::move(miss_keys_[s]), miss_out_[s]);
      }
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (miss_of_[i] != npos) out[i] = miss_out_[miss_of_[i]];
    }
  }

  /// Single-query convenience path (counts as a single predict() call);
  /// engine traffic should use predict_batch instead.
  double predict_one(const Block& block) {
    ++stats_.requested;
    std::string key;
    if (memoize_) {
      key = block.to_string();
      if (const auto it = cache_.find(key); it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
      }
    }
    ++stats_.evaluated;
    ++stats_.single_calls;
    const double v = model_->predict(block);
    if (memoize_) cache_.emplace(std::move(key), v);
    return v;
  }

  const QueryStats& stats() const { return stats_; }
  void reset_stats() { stats_ = QueryStats{}; }
  const Model& model() const { return *model_; }

  /// Drop every memo entry whose key fails `pred` (signature:
  /// bool(const std::string&)). Used when a sharded pool re-shards the
  /// hash space: entries that now route to a different shard are evicted
  /// so a stale local copy can never shadow the owning shard's. Like
  /// every other method, must run on the thread that owns this broker.
  template <typename Pred>
  void retain_memo_if(Pred pred) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (pred(it->first)) {
        ++it;
      } else {
        it = cache_.erase(it);
      }
    }
  }

  /// Live memo-entry count (observability for re-shard tests).
  std::size_t memo_size() const { return cache_.size(); }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const Model* model_;
  bool memoize_;
  QueryStats stats_;
  std::unordered_map<std::string, double> cache_;
  // Reused per-call scratch (miss gathering); no allocations on the hot
  // path once the buffers have grown to batch size.
  std::vector<Block> miss_blocks_;
  std::vector<std::string> miss_keys_;
  std::vector<double> miss_out_;
  std::vector<std::size_t> miss_of_;
  std::unordered_map<std::string, std::size_t> pending_;
};

}  // namespace comet::cost
