#include "cost/cost_model.h"

#include <cassert>

namespace comet::cost {

void CostModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                              std::span<double> out) const {
  assert(blocks.size() == out.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    out[i] = predict(blocks[i]);
  }
}

}  // namespace comet::cost
