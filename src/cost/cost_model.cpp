#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

// Deliberate upward dependency (mirrors core/anchor_engine.h's use of
// serve/async_broker.h): the batch-parallel path reuses the serving layer's
// ThreadPool instead of duplicating a second pool implementation here.
// serve/thread_pool.h includes nothing from cost/, so the include graph
// stays acyclic.
#include "serve/thread_pool.h"

namespace comet::cost {

namespace {

// One process-wide pool shared by every model with batch_threads >= 2.
// Lazily constructed on first parallel batch (sequential users never spawn
// a thread); sized to the hardware so several models can interleave chunks
// without oversubscribing. Function-local static => thread-safe init and
// graceful drain at exit.
serve::ThreadPool& shared_batch_pool() {
  static serve::ThreadPool pool(
      std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace

void CostModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                              std::span<double> out) const {
  assert(blocks.size() == out.size());
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = predict(blocks[i]);
    }
  });
}

void CostModel::for_batch_chunks(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  const std::size_t tasks = std::min(batch_threads_, total);
  if (tasks <= 1) {
    fn(0, total);
    return;
  }
  serve::ThreadPool& pool = shared_batch_pool();
  const std::size_t chunk = (total + tasks - 1) / tasks;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  std::size_t posted = 0;
  std::exception_ptr error;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t end = std::min(total, begin + chunk);
    ++posted;
    pool.post([&, begin, end] {
      // A throwing chunk must not change the error contract vs the
      // sequential path (where the exception reaches the caller) — an
      // escape into the pool's worker loop would std::terminate. Capture
      // the first exception and rethrow it on the calling thread.
      std::exception_ptr chunk_error;
      try {
        fn(begin, end);
      } catch (...) {
        chunk_error = std::current_exception();
      }
      // Notify while holding the lock: cv and mutex are stack locals of the
      // caller, and the waiter may destroy them the moment it observes
      // done == posted — an unlocked notify could touch a dead cv.
      std::lock_guard<std::mutex> lock(mutex);
      if (chunk_error != nullptr && error == nullptr) error = chunk_error;
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done == posted; });
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace comet::cost
