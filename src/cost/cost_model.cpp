#include "cost/cost_model.h"

#include <algorithm>
#include <thread>

// Deliberate upward dependency (mirrors core/anchor_engine.h's use of
// serve/async_broker.h): the batch-parallel path reuses the serving layer's
// ThreadPool instead of duplicating a second pool implementation here.
// serve/thread_pool.h includes nothing from cost/, so the include graph
// stays acyclic.
#include "serve/thread_pool.h"
#include "util/contract.h"
#include "util/sync.h"

namespace comet::cost {

namespace {

// One process-wide pool shared by every model with batch_threads >= 2.
// Lazily constructed on first parallel batch (sequential users never spawn
// a thread); sized to the hardware so several models can interleave chunks
// without oversubscribing. Function-local static => thread-safe init and
// graceful drain at exit.
serve::ThreadPool& shared_batch_pool() {
  static serve::ThreadPool pool(
      std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

// Join state shared between the calling thread and the posted chunks.
// Annotated so the chunk-completion protocol — including the
// notify-while-locked rule that keeps the cv alive (see post lambda) — is
// checked under COMET_THREAD_SAFETY rather than trusted.
struct ChunkJoin {
  util::Mutex mutex;
  util::CondVar cv;
  std::size_t done COMET_GUARDED_BY(mutex) = 0;
  std::exception_ptr error COMET_GUARDED_BY(mutex);
};

}  // namespace

void CostModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                              std::span<double> out) const {
  COMET_CHECK_MSG(blocks.size() == out.size(),
                  "predict_batch: " << blocks.size() << " blocks but "
                                    << out.size() << " output slots");
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = predict(blocks[i]);
    }
  });
}

void CostModel::for_batch_chunks(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  const std::size_t tasks = std::min(batch_threads_, total);
  if (tasks <= 1) {
    fn(0, total);
    return;
  }
  serve::ThreadPool& pool = shared_batch_pool();
  const std::size_t chunk = (total + tasks - 1) / tasks;
  ChunkJoin join;
  std::size_t posted = 0;  // touched by the calling thread only
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t end = std::min(total, begin + chunk);
    ++posted;
    pool.post([&join, &fn, begin, end] {
      // A throwing chunk must not change the error contract vs the
      // sequential path (where the exception reaches the caller) — an
      // escape into the pool's worker loop would std::terminate. Capture
      // the first exception and rethrow it on the calling thread.
      std::exception_ptr chunk_error;
      try {
        fn(begin, end);
      } catch (...) {
        chunk_error = std::current_exception();
      }
      // Notify while holding the lock: the join is a stack local of the
      // caller, and the waiter may destroy it the moment it observes
      // done == posted — an unlocked notify could touch a dead cv.
      util::MutexLock lock(join.mutex);
      if (chunk_error != nullptr && join.error == nullptr) {
        join.error = chunk_error;
      }
      ++join.done;
      join.cv.notify_one();
    });
  }
  std::exception_ptr error;
  {
    util::MutexLock lock(join.mutex);
    while (join.done != posted) join.cv.wait(lock);
    error = join.error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace comet::cost
