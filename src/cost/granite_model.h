// A Granite-style graph-neural-network throughput predictor, trained from
// scratch in this repository.
//
// Granite (Sykora et al. 2022) is the second neural cost-model family the
// paper cites: instead of Ithemal's sequence view, it predicts throughput
// from a graph of the basic block. This stand-in mirrors that design on our
// substrate: nodes are instructions, edges are the dependency-multigraph
// hazards (RAW/WAR/WAW, each in both directions) plus program-order
// sequence edges; node states are seeded from an opcode embedding and a
// small vector of semantic features, refined by relational message-passing
// layers, and sum-pooled into a block state read out by a softplus head.
//
// COMET never looks inside this model — it only calls predict(). Having a
// second, architecturally different neural model exercises the framework's
// model-agnostic claim and powers the extension benches that compare the
// explanation granularity of sequence- vs graph-structured predictors.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "cost/cost_model.h"
#include "graph/depgraph.h"
#include "nn/gnn.h"
#include "nn/mat.h"

namespace comet::cost {

struct GraniteConfig {
  std::size_t embed_dim = 12;
  std::size_t hidden_dim = 24;
  std::size_t num_layers = 2;
  std::size_t epochs = 5;
  double lr = 2e-3;
  std::uint64_t seed = 0x6A17E;
};

class GraniteModel final : public CostModel {
 public:
  explicit GraniteModel(MicroArch uarch, GraniteConfig config = {});

  double predict(const x86::BasicBlock& block) const override;
  /// Batched inference. Each block carries its own dependency graph, so
  /// the win here is amortizing the virtual-dispatch and setup per batch;
  /// cross-query reuse comes from the query broker's memoization.
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  std::string name() const override;
  MicroArch uarch() const { return uarch_; }

  /// One Adam step on a (block, target) pair; returns squared relative
  /// error before the step.
  double train_step(const x86::BasicBlock& block, double target);

  /// Override the optimizer learning rate (fine-tuning runs gentler than
  /// from-scratch training).
  void set_learning_rate(double lr);

  /// Full training run; returns final-epoch MAPE on the training data.
  double train(const std::vector<x86::BasicBlock>& blocks,
               const std::vector<double>& targets);

  void save(const std::filesystem::path& path) const;
  bool load(const std::filesystem::path& path);

  /// Load cached weights if present; otherwise train and save.
  double train_or_load(const std::filesystem::path& path,
                       const std::vector<x86::BasicBlock>& blocks,
                       const std::vector<double>& targets);

  /// Relation vocabulary: RAW/WAR/WAW × {forward, backward} + sequence
  /// edges × {forward, backward}.
  static constexpr std::size_t kNumRelations = 8;

 private:
  struct Forward;
  Forward forward(const x86::BasicBlock& block) const;

  /// The matrices of the checkpoint format, in serialization order.
  std::vector<nn::Mat*> checkpoint_mats();
  std::vector<const nn::Mat*> checkpoint_mats() const;

  /// Per-instruction numeric semantic features (operand counts, memory
  /// access bits, flag effects, widths).
  static constexpr std::size_t kNumNodeFeats = 8;
  static std::vector<float> node_features(const x86::Instruction& inst);

  /// Dependency + sequence edges of `block` in the relation vocabulary.
  static std::vector<nn::RelEdge> build_edges(const x86::BasicBlock& block);

  MicroArch uarch_;
  GraniteConfig config_;
  nn::Mat embedding_;  // kNumOpcodes x embed_dim
  nn::Mat feat_w_;     // embed_dim x kNumNodeFeats (numeric feats -> embed)
  std::vector<nn::RelGraphLayer> layers_;
  nn::Mat head_w_;  // 1 x hidden_dim
  nn::Mat head_b_;  // 1 x 1
  std::unique_ptr<nn::Adam> adam_;
};

}  // namespace comet::cost
