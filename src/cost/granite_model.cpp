#include "cost/granite_model.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "cost/checkpoint.h"
#include "util/stats.h"

namespace comet::cost {

namespace {
constexpr std::uint32_t kMagic = 0xC03E7002;

std::size_t relation_of(graph::DepKind kind, bool forward) {
  const std::size_t base = static_cast<std::size_t>(kind) * 2;
  return forward ? base : base + 1;
}
constexpr std::size_t kSeqFwd = 6;
constexpr std::size_t kSeqBwd = 7;

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}
double sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}
}  // namespace

GraniteModel::GraniteModel(MicroArch uarch, GraniteConfig config)
    : uarch_(uarch), config_(config) {
  util::Rng rng(config_.seed + (uarch == MicroArch::Skylake ? 1 : 0));
  embedding_ = nn::Mat(x86::kNumOpcodes, config_.embed_dim);
  embedding_.init_xavier(rng);
  feat_w_ = nn::Mat(config_.embed_dim, kNumNodeFeats);
  feat_w_.init_xavier(rng);

  layers_.reserve(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const std::size_t in = l == 0 ? config_.embed_dim : config_.hidden_dim;
    layers_.emplace_back(in, config_.hidden_dim, kNumRelations, rng);
  }

  head_w_ = nn::Mat(1, config_.hidden_dim);
  head_w_.init_xavier(rng);
  head_b_ = nn::Mat(1, 1);
  head_b_.data()[0] = 0.0f;

  std::vector<nn::Mat*> params{&embedding_, &feat_w_, &head_w_, &head_b_};
  for (auto& layer : layers_) {
    for (auto* p : layer.params()) params.push_back(p);
  }
  nn::Adam::Config ac;
  ac.lr = config_.lr;
  adam_ = std::make_unique<nn::Adam>(std::move(params), ac);
}

std::vector<float> GraniteModel::node_features(const x86::Instruction& inst) {
  const x86::InstSemantics sem = x86::semantics(inst);
  float reg_reads = 0.f, reg_writes = 0.f, max_width = 0.f;
  for (const auto& ra : sem.regs) {
    if (ra.read) reg_reads += 1.f;
    if (ra.write) reg_writes += 1.f;
    max_width = std::max(max_width, static_cast<float>(ra.reg.width_bits));
  }
  const bool mem_read =
      (sem.mem && sem.mem->read) || sem.stack_mem_read;
  const bool mem_write =
      (sem.mem && sem.mem->write) || sem.stack_mem_write;
  return {
      static_cast<float>(inst.operands.size()) / 4.f,
      mem_read ? 1.f : 0.f,
      mem_write ? 1.f : 0.f,
      sem.reads_flags ? 1.f : 0.f,
      sem.writes_flags ? 1.f : 0.f,
      reg_reads / 4.f,
      reg_writes / 2.f,
      max_width > 0.f ? std::log2(max_width) / 9.f : 0.f,
  };
}

std::vector<nn::RelEdge> GraniteModel::build_edges(
    const x86::BasicBlock& block) {
  std::vector<nn::RelEdge> edges;
  const graph::DepGraph g = graph::DepGraph::build(block);
  // Collapse multi-edges that differ only in carrying resource: the layer's
  // per-relation mean already normalizes counts, and the relation vocabulary
  // names the hazard kind, not the resource.
  std::set<std::tuple<std::size_t, std::size_t, graph::DepKind>> seen;
  for (const auto& e : g.edges()) {
    if (!seen.insert({e.from, e.to, e.kind}).second) continue;
    edges.push_back({e.from, e.to, relation_of(e.kind, /*forward=*/true)});
    edges.push_back({e.to, e.from, relation_of(e.kind, /*forward=*/false)});
  }
  for (std::size_t i = 0; i + 1 < block.size(); ++i) {
    edges.push_back({i, i + 1, kSeqFwd});
    edges.push_back({i + 1, i, kSeqBwd});
  }
  return edges;
}

struct GraniteModel::Forward {
  std::vector<nn::RelEdge> edges;
  std::vector<std::vector<float>> x0;  ///< initial node states
  std::vector<nn::GraphLayerCache> caches;
  std::vector<std::vector<float>> h_final;
  double raw = 0.0;
  double prediction = 0.0;
};

GraniteModel::Forward GraniteModel::forward(
    const x86::BasicBlock& block) const {
  Forward f;
  f.edges = build_edges(block);
  const std::size_t n = block.size();
  f.x0.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto& inst = block.instructions[v];
    std::vector<float> x(config_.embed_dim, 0.f);
    const float* row =
        embedding_.data() + static_cast<int>(inst.opcode) * config_.embed_dim;
    for (std::size_t d = 0; d < config_.embed_dim; ++d) x[d] = row[d];
    const std::vector<float> feats = node_features(inst);
    for (std::size_t i = 0; i < config_.embed_dim; ++i) {
      const float* frow = feat_w_.data() + i * kNumNodeFeats;
      float acc = 0.f;
      for (std::size_t j = 0; j < kNumNodeFeats; ++j) acc += frow[j] * feats[j];
      x[i] += acc;
    }
    f.x0[v] = std::move(x);
  }

  f.caches.resize(layers_.size());
  std::vector<std::vector<float>> h = f.x0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].forward(h, f.edges, f.caches[l]);
  }
  f.h_final = std::move(h);

  double y = head_b_.data()[0];
  for (const auto& hv : f.h_final) {
    for (std::size_t i = 0; i < config_.hidden_dim; ++i) {
      y += head_w_.data()[i] * hv[i];
    }
  }
  // Sum-pooled readout through softplus: summation makes the block state
  // scale with instruction count (throughput is roughly additive in work),
  // softplus keeps predictions positive while staying asymptotically linear.
  f.raw = std::clamp(y, -30.0, 1e4);
  f.prediction = softplus(f.raw);
  return f;
}

double GraniteModel::predict(const x86::BasicBlock& block) const {
  if (block.empty()) return 0.0;
  return forward(block).prediction;
}

void GraniteModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                 std::span<double> out) const {
  // forward() touches only const weights and locals, so chunks of the
  // batch evaluate independently (and identically to the sequential sweep)
  // on the shared pool when batch threads are enabled.
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = blocks[i].empty() ? 0.0 : forward(blocks[i]).prediction;
    }
  });
}

std::string GraniteModel::name() const {
  return "granite-" + uarch_name(uarch_);
}

void GraniteModel::set_learning_rate(double lr) { adam_->set_lr(lr); }

double GraniteModel::train_step(const x86::BasicBlock& block, double target) {
  if (block.empty() || target <= 0.0) return 0.0;
  Forward f = forward(block);
  const double rel = (f.prediction - target) / target;
  const double dy = 2.0 * rel / target * sigmoid(f.raw);

  const std::size_t n = f.h_final.size();
  std::vector<std::vector<float>> dh(n,
                                     std::vector<float>(config_.hidden_dim));
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < config_.hidden_dim; ++i) {
      head_w_.grad()[i] += static_cast<float>(dy) * f.h_final[v][i];
      dh[v][i] = static_cast<float>(dy) * head_w_.data()[i];
    }
  }
  head_b_.grad()[0] += static_cast<float>(dy);

  for (std::size_t l = layers_.size(); l-- > 0;) {
    dh = layers_[l].backward(f.caches[l], f.edges, std::move(dh));
  }

  // Input backward: embedding rows and the numeric-feature projection.
  for (std::size_t v = 0; v < n; ++v) {
    const auto& inst = block.instructions[v];
    float* grow =
        embedding_.grad() + static_cast<int>(inst.opcode) * config_.embed_dim;
    const std::vector<float> feats = node_features(inst);
    for (std::size_t i = 0; i < config_.embed_dim; ++i) {
      grow[i] += dh[v][i];
      float* fgrow = feat_w_.grad() + i * kNumNodeFeats;
      for (std::size_t j = 0; j < kNumNodeFeats; ++j) {
        fgrow[j] += dh[v][i] * feats[j];
      }
    }
  }
  adam_->step();
  return rel * rel;
}

double GraniteModel::train(const std::vector<x86::BasicBlock>& blocks,
                           const std::vector<double>& targets) {
  if (blocks.size() != targets.size()) {
    throw std::invalid_argument("GraniteModel::train: size mismatch");
  }
  util::Rng rng(config_.seed ^ 0x5eedULL);
  std::vector<std::size_t> order(blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    adam_->set_lr(config_.lr *
                  (1.0 - 0.6 * static_cast<double>(epoch) /
                             std::max<std::size_t>(1, config_.epochs)));
    for (const std::size_t i : order) train_step(blocks[i], targets[i]);
  }

  std::vector<double> preds, acts;
  preds.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    preds.push_back(predict(blocks[i]));
    acts.push_back(targets[i]);
  }
  return util::mape(preds, acts);
}

std::vector<nn::Mat*> GraniteModel::checkpoint_mats() {
  std::vector<nn::Mat*> mats{&embedding_, &feat_w_};
  for (auto& layer : layers_) {
    for (auto* p : layer.params()) mats.push_back(p);
  }
  mats.push_back(&head_w_);
  mats.push_back(&head_b_);
  return mats;
}

std::vector<const nn::Mat*> GraniteModel::checkpoint_mats() const {
  std::vector<const nn::Mat*> mats{&embedding_, &feat_w_};
  for (const auto& layer : layers_) {
    for (const auto* p : layer.params()) mats.push_back(p);
  }
  mats.push_back(&head_w_);
  mats.push_back(&head_b_);
  return mats;
}

void GraniteModel::save(const std::filesystem::path& path) const {
  save_checkpoint(path, kMagic, "GraniteModel::save", checkpoint_mats());
}

bool GraniteModel::load(const std::filesystem::path& path) {
  // load_checkpoint (cost/checkpoint.h) stages, size-gates, and validates:
  // missing file or stale magic is a cache miss (false); a truncated,
  // oversized, dimension-forged, or bit-flipped checkpoint throws
  // util::ContractViolation before any live weight changes. This also
  // closes an older gap: GraniteModel used to stream weights straight into
  // the live matrices, so a truncated file left the model half-overwritten.
  return load_checkpoint(path, kMagic, "GraniteModel::load",
                         checkpoint_mats());
}

double GraniteModel::train_or_load(
    const std::filesystem::path& path,
    const std::vector<x86::BasicBlock>& blocks,
    const std::vector<double>& targets) {
  if (load(path)) return 0.0;
  const double final_mape = train(blocks, targets);
  std::filesystem::create_directories(path.parent_path());
  save(path);
  return final_mape;
}

}  // namespace comet::cost
