// Shared checkpoint (de)serialization for the NN cost models.
//
// Format: uint32 magic, then each matrix as [uint64 rows, uint64 cols,
// float32 payload row-major] in a fixed serialization order.
//
// Threat model of load_checkpoint(): the bytes come from a shared cache or
// a remote peer, not necessarily from our own save_checkpoint(). A missing
// file or a foreign/stale magic is a cache miss (return false, caller
// retrains). Once the magic matches, the file claims to be this exact
// checkpoint — from that point any structural mismatch throws
// util::ContractViolation:
//
//   * the total file size is validated against the expected layout BEFORE
//     any payload is read (truncated and oversized files die here);
//   * each dimension header is validated against sane maxima and the
//     expected shape BEFORE any buffer is sized, so a forged size field can
//     never drive a huge allocation (ContractViolation, not bad_alloc);
//   * every payload float must be finite (a bit-flipped exponent must not
//     silently poison every subsequent prediction);
//   * weights are staged and committed only after the whole file validates,
//     so a throwing load leaves the live model untouched.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "nn/mat.h"

namespace comet::cost {

/// Serialized byte footprint of one matrix record (dims header + payload).
inline std::uint64_t mat_record_bytes(const nn::Mat& m) {
  return 2 * sizeof(std::uint64_t) + sizeof(float) * m.size();
}

/// Largest per-axis dimension a checkpoint header may claim. Far above any
/// real model here (the embedding is the biggest matrix at a few thousand
/// rows) and far below anything that could size a harmful allocation.
inline constexpr std::uint64_t kMaxCheckpointDim = 1u << 20;

/// Write `magic` + `mats` (in order) to `path`. Throws std::runtime_error
/// on open failure or short write; a partial file is removed so it cannot
/// masquerade as a valid cache on the next load.
void save_checkpoint(const std::filesystem::path& path, std::uint32_t magic,
                     const char* what, const std::vector<const nn::Mat*>& mats);

/// Load `path` into `mats` (in order). Returns false when the file is
/// missing or carries a different magic (cache miss / stale format).
/// Throws util::ContractViolation when the file matches the magic but is
/// structurally corrupt (see the threat-model notes above). On success the
/// staged weights are committed into `mats` atomically; on any failure the
/// targets are left untouched.
bool load_checkpoint(const std::filesystem::path& path, std::uint32_t magic,
                     const char* what, const std::vector<nn::Mat*>& mats);

}  // namespace comet::cost
