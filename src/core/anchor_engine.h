// The single, ISA-generic anchor-search engine (paper Sections 5.2 and 7).
//
// COMET's central claim is that the explanation formalism is model-agnostic
// and ISA-portable: the relaxed optimization problem (eq. 7)
//
//   F* = argmax_{F ⊆ P̂} Cov(F)   s.t.   Prec(F) ≥ 1 − δ
//
// and its Anchors-style solution — a bottom-up beam search over feature
// sets whose per-level top-B identification runs the KL-LUCB best-arm
// procedure (Kaufmann & Kalyanakrishnan 2013) — never mention the ISA.
// This header is that claim made executable: AnchorEngine<Traits> contains
// the whole search once, and an ISA plugs in through a traits type
// providing its Block, Feature(Set), Perturber, cost-model type, and
// options. The x86 CometExplainer and the RISC-V RvExplainer are both thin
// instantiations; see core/comet.h and riscv/explain.h.
//
// The engine is batch-first: every model query it issues flows through a
// cost::QueryBroker as part of a batch (arm pulls are whole perturbation
// batches, never per-sample predict() calls), so vectorized predict_batch
// overrides and the broker's memoization pay off across the thousands of
// queries one explanation consumes.
//
// A traits type must provide:
//   Block, Feature, FeatureSet      — ISA feature vocabulary (positional)
//   Perturber, PerturbedBlock      — Γ for a fixed target block
//   Model                           — cost model (predict / predict_batch)
//   Options                         — derived from AnchorSearchOptions
//   Explanation                     — result struct (features, precision,
//                                     coverage, met_threshold,
//                                     model_queries, query_stats)
//   static FeatureSet extract_features(const Block&, const Options&)
//   static Perturber make_perturber(const Block&, const Options&)
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "cost/query_broker.h"
#include "obs/clock.h"
#include "obs/phase_timers.h"
// Deliberate upward dependency: the engine's async_inflight mode pipelines
// its arm pulls through serve::AsyncBroker (a thin futures layer over the
// QueryBroker above; it does not include anything from core/, so the
// include graph stays acyclic even though serve/'s scheduler builds on
// this engine).
#include "serve/async_broker.h"
#include "util/kl_bounds.h"
#include "util/rng.h"

namespace comet::core {

/// The ISA-independent knobs of the anchor search, shared by every
/// instantiation (x86 CometOptions, RISC-V RvExplainOptions).
struct AnchorSearchOptions {
  /// ε-ball radius around M(β) (paper Appendix E: 0.5 cycles for real cost
  /// models, ∆/4 = 0.25 for the crude model C).
  double epsilon = 0.5;
  /// Precision threshold is (1 − delta); the paper uses 0.7.
  double delta = 0.3;

  // -- KL-LUCB / beam-search hyperparameters (Anchors defaults) --
  /// Use the adaptive KL-LUCB best-arm procedure to allocate the per-level
  /// pull budget (design decision 4 in DESIGN.md). When false, the same
  /// budget is spent uniformly round-robin across candidate arms — the
  /// baseline the ablation bench compares against.
  bool use_kl_lucb = true;
  double lucb_confidence_delta = 0.1;  ///< bandit failure probability
  double lucb_epsilon = 0.15;          ///< UB/LB separation tolerance
  std::size_t batch_size = 12;         ///< perturbations per arm pull
  std::size_t beam_width = 4;
  std::size_t max_explanation_size = 3;
  std::size_t max_pulls_per_level = 160;  ///< arm pulls per beam level

  /// Samples drawn from D (=Γ(∅)) for coverage estimation. The paper uses
  /// 10k; benches scale this down and report the value used.
  std::size_t coverage_samples = 2000;
  /// Extra samples to firm up the precision estimate of the final answer.
  std::size_t final_precision_samples = 200;

  /// Memoize model queries in the broker (block-text keyed). Identical
  /// output either way for deterministic models; disabled only by tests
  /// and ablations auditing the raw query volume.
  bool memoize_queries = true;

  /// Engine-level batch widening: fuse the per-level initial arm pulls,
  /// and each KL-LUCB round's two separating-arm pulls (weakest member +
  /// strongest challenger), into single broker batches. Sampling order is
  /// unchanged, so the explanation and its requested/evaluated/cache-hit
  /// accounting are bit-identical to the unfused path — only batch_calls
  /// drops, which is the round-trip count a remote or sharded backend
  /// pays per level.
  bool fuse_arm_pulls = false;

  /// When > 0, route engine queries through a serve::AsyncBroker and
  /// pipeline the per-level initial arm pulls with up to this many batches
  /// in flight: the engine samples arm k+1's perturbation batch while arm
  /// k's batch evaluates on the broker worker. Evaluation stays FIFO on
  /// one worker, so results and query accounting are bit-identical to the
  /// synchronous path. 0 = synchronous (default).
  std::size_t async_inflight = 0;

  /// Opt-in per-level phase timing (obs::PhaseTimings on the explanation):
  /// point at a clock — obs::steady_clock() in production, a ManualClock in
  /// tests — and the engine stamps each level's beam / arm-pull /
  /// precision phases plus the coverage-pool build. Readings are taken
  /// between phases and never feed the search, so the explanation stays
  /// bit-identical to an untimed run; nullptr (default) performs zero
  /// clock reads. The pointee must outlive the engine run.
  const obs::Clock* phase_clock = nullptr;

  std::uint64_t seed = 1;
};

template <typename Traits>
class AnchorEngine {
 public:
  using Block = typename Traits::Block;
  using Feature = typename Traits::Feature;
  using FeatureSet = typename Traits::FeatureSet;
  using Perturber = typename Traits::Perturber;
  using PerturbedBlock = typename Traits::PerturbedBlock;
  using Model = typename Traits::Model;
  using Options = typename Traits::Options;
  using Explanation = typename Traits::Explanation;
  using Broker = cost::QueryBroker<Block, Model>;

  /// `model` and `options` must outlive the engine.
  AnchorEngine(const Model& model, const Options& options)
      : model_(model), options_(options) {}

  Explanation explain(const Block& block) const;

  /// Standalone Monte-Carlo estimate of Prec(F) for a given feature set
  /// (used by the Table 3 evaluation). Consumes `samples` model queries,
  /// batched through a broker.
  double estimate_precision(const Block& block, const FeatureSet& features,
                            std::size_t samples, util::Rng& rng) const;

  /// Standalone estimate of Cov(F) over `samples` unconstrained
  /// perturbations (no model queries).
  double estimate_coverage(const Block& block, const FeatureSet& features,
                           std::size_t samples, util::Rng& rng) const;

 private:
  /// One bandit arm: a candidate feature set with its precision statistics.
  struct Arm {
    FeatureSet features;
    std::size_t pulls = 0;  // samples drawn
    std::size_t hits = 0;   // samples with |M(α) − M(β)| ≤ ε

    double mean() const {
      return pulls ? static_cast<double>(hits) / static_cast<double>(pulls)
                   : 0.0;
    }
  };

  const Model& model_;
  const Options& options_;
};

template <typename Traits>
double AnchorEngine<Traits>::estimate_precision(const Block& block,
                                                const FeatureSet& features,
                                                std::size_t samples,
                                                util::Rng& rng) const {
  const Perturber perturber = Traits::make_perturber(block, options_);
  Broker broker(model_, options_.memoize_queries);
  double base = 0.0;
  broker.predict_batch(std::span<const Block>(&block, 1),
                       std::span<double>(&base, 1));
  std::vector<Block> batch;
  batch.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    auto alpha = perturber.sample(features, rng);
    if (alpha.block.empty()) continue;
    batch.push_back(std::move(alpha.block));
  }
  std::vector<double> preds(batch.size());
  broker.predict_batch(std::span<const Block>(batch),
                       std::span<double>(preds));
  std::size_t hits = 0;
  for (const double p : preds) {
    hits += std::abs(p - base) < options_.epsilon;
  }
  // Precision is estimated over the non-empty perturbations only — the same
  // denominator the search's arm scoring uses (score() counts a pull per
  // evaluated sample). Dividing by the requested sample count instead would
  // bias Prec(F) down on blocks whose perturber emits empties.
  return batch.empty()
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(batch.size());
}

template <typename Traits>
double AnchorEngine<Traits>::estimate_coverage(const Block& block,
                                               const FeatureSet& features,
                                               std::size_t samples,
                                               util::Rng& rng) const {
  const Perturber perturber = Traits::make_perturber(block, options_);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto alpha = perturber.sample(FeatureSet{}, rng);
    hits += perturber.contains(alpha, features);
  }
  return samples ? static_cast<double>(hits) / static_cast<double>(samples)
                 : 0.0;
}

template <typename Traits>
typename AnchorEngine<Traits>::Explanation AnchorEngine<Traits>::explain(
    const Block& block) const {
  // Per-request determinism: the engine owns its RNG, seeded from the
  // caller's options and the block text, and its broker (below) is private
  // to this call — so concurrently served requests are bit-identical to
  // the same requests run sequentially.
  util::Rng rng(options_.seed ^ util::fnv1a64(block.to_string().c_str()));
  const Perturber perturber = Traits::make_perturber(block, options_);
  Broker broker(model_, options_.memoize_queries);

  // In async mode all traffic flows through one AsyncBroker wrapping the
  // same broker (single FIFO evaluation worker: one cache, one ledger,
  // deterministic accounting); the initial per-level arm pulls additionally
  // pipeline sampling against evaluation.
  using Async = serve::AsyncBroker<Block, Model>;
  std::unique_ptr<Async> async;
  if (options_.async_inflight > 0) {
    async = std::make_unique<Async>(broker, /*workers=*/1);
  }
  const auto eval = [&](std::span<const Block> blocks,
                        std::span<double> out) {
    if (async) {
      async->predict_batch(blocks, out);
    } else {
      broker.predict_batch(blocks, out);
    }
  };

  // Opt-in phase timing. Stamps are taken strictly *between* phases and
  // accumulate into the explanation's obs::PhaseTimings; no reading ever
  // feeds a search decision, so the result is bit-identical to an untimed
  // run (tests/test_obs.cpp pins this). Without a clock every stamp is the
  // constant 0 and the additions are dead.
  const obs::Clock* const phase_clock = options_.phase_clock;
  obs::PhaseTimings timings;
  timings.enabled = phase_clock != nullptr;
  const auto stamp = [&]() -> std::uint64_t {
    return phase_clock ? phase_clock->now_ns() : 0;
  };
  const auto phase_end = [&](std::uint64_t& slot, std::uint64_t& t_prev) {
    const std::uint64_t now = stamp();
    slot += now - t_prev;
    t_prev = now;
  };

  double base = 0.0;
  eval(std::span<const Block>(&block, 1), std::span<double>(&base, 1));
  // Requested queries, counted with the historical semantics: every sample
  // drawn from Γ costs one query whether or not it reached the model (empty
  // perturbations are skipped, memo hits are served from cache). The true
  // model traffic is in the broker's QueryStats.
  std::size_t queries = 1;

  // Candidate vocabulary P̂ (instruction features, dependency features, η).
  const FeatureSet vocabulary = Traits::extract_features(block, options_);

  // Shared coverage pool: samples from D = Γ(∅).
  std::uint64_t t_coverage = stamp();
  std::vector<PerturbedBlock> coverage_pool;
  coverage_pool.reserve(options_.coverage_samples);
  for (std::size_t i = 0; i < options_.coverage_samples; ++i) {
    coverage_pool.push_back(perturber.sample(FeatureSet{}, rng));
  }
  phase_end(timings.coverage_ns, t_coverage);
  const auto coverage_of = [&](const FeatureSet& fs) {
    if (coverage_pool.empty()) return 0.0;
    std::size_t hits = 0;
    for (const auto& alpha : coverage_pool) {
      hits += perturber.contains(alpha, fs);
    }
    return static_cast<double>(hits) /
           static_cast<double>(coverage_pool.size());
  };

  // Draw one batch for an arm and update its statistics: sample the whole
  // batch first, then score it with a single broker query. In fused mode
  // (engine-level batch widening) a whole group of arms samples first and
  // is scored by ONE broker query — same sampling order, same results,
  // fewer round-trips.
  std::vector<Block> batch;
  std::vector<double> preds;
  std::vector<std::size_t> cuts;
  const auto sample_into = [&](Arm& arm, std::vector<Block>& dst) {
    for (std::size_t i = 0; i < options_.batch_size; ++i) {
      auto alpha = perturber.sample(arm.features, rng);
      ++queries;
      if (alpha.block.empty()) continue;
      dst.push_back(std::move(alpha.block));
    }
  };
  const auto score = [&](Arm& arm, std::span<const double> arm_preds) {
    for (const double p : arm_preds) {
      arm.hits += std::abs(p - base) < options_.epsilon;
      ++arm.pulls;
    }
  };
  const auto pull_group = [&](std::span<Arm* const> group) {
    if (options_.fuse_arm_pulls) {
      batch.clear();
      cuts.clear();
      cuts.push_back(0);
      for (Arm* arm : group) {
        sample_into(*arm, batch);
        cuts.push_back(batch.size());
      }
      preds.resize(batch.size());
      eval(std::span<const Block>(batch), std::span<double>(preds));
      for (std::size_t g = 0; g < group.size(); ++g) {
        score(*group[g], std::span<const double>(preds).subspan(
                             cuts[g], cuts[g + 1] - cuts[g]));
      }
    } else {
      for (Arm* arm : group) {
        batch.clear();
        sample_into(*arm, batch);
        preds.resize(batch.size());
        eval(std::span<const Block>(batch), std::span<double>(preds));
        score(*arm, preds);
      }
    }
  };
  const auto pull = [&](Arm& arm) {
    Arm* one = &arm;
    pull_group(std::span<Arm* const>(&one, 1));
  };

  const double threshold = 1.0 - options_.delta;
  std::vector<Explanation> anchors_found;
  std::vector<Arm> beam;  // current beam (feature sets of size = level)
  Arm best_effort;        // highest-precision candidate seen anywhere
  double best_effort_mean = -1.0;

  for (std::size_t level = 1; level <= options_.max_explanation_size;
       ++level) {
    obs::PhaseTimings::Level level_timing;
    std::uint64_t t_phase = stamp();

    // --- build candidate arms by extending the beam (or singletons). ---
    std::vector<Arm> arms;
    const auto add_candidate = [&](const FeatureSet& fs) {
      for (const auto& a : arms) {
        if (a.features == fs) return;
      }
      Arm arm;
      arm.features = fs;
      arms.push_back(std::move(arm));
    };
    if (level == 1) {
      for (const Feature& f : vocabulary.items()) {
        add_candidate(FeatureSet{}.with(f));
      }
    } else {
      for (const Arm& parent : beam) {
        for (const Feature& f : vocabulary.items()) {
          if (parent.features.contains(f)) continue;
          add_candidate(parent.features.with(f));
        }
      }
    }
    phase_end(level_timing.beam_ns, t_phase);
    if (arms.empty()) {
      if (phase_clock) timings.levels.push_back(level_timing);
      break;
    }

    // --- KL-LUCB: identify the top-B arms by precision. ---
    // Every candidate gets one initial pull. This fan-out is decision-free
    // (no arm's batch depends on another's result), so it admits both
    // widening (fuse all batches into one) and pipelining (sample arm k+1
    // while arm k evaluates).
    std::vector<Arm*> all_arms(arms.size());
    for (std::size_t i = 0; i < arms.size(); ++i) all_arms[i] = &arms[i];
    if (async && !options_.fuse_arm_pulls) {
      std::deque<std::pair<Arm*, std::future<std::vector<double>>>> inflight;
      const auto collect_one = [&] {
        auto [arm, fut] = std::move(inflight.front());
        inflight.pop_front();
        const std::vector<double> arm_preds = fut.get();
        score(*arm, arm_preds);
      };
      for (Arm* arm : all_arms) {
        std::vector<Block> arm_batch;
        arm_batch.reserve(options_.batch_size);
        sample_into(*arm, arm_batch);
        inflight.emplace_back(arm, async->submit(std::move(arm_batch)));
        while (inflight.size() > options_.async_inflight) collect_one();
      }
      while (!inflight.empty()) collect_one();
    } else {
      pull_group(std::span<Arm* const>(all_arms));
    }
    std::size_t pulls_done = arms.size();
    const std::size_t B = std::min(options_.beam_width, arms.size());
    std::vector<std::size_t> order(arms.size());
    // Uniform-allocation baseline (ablation): spend the same budget
    // round-robin instead of adaptively.
    std::size_t rr = 0;
    while (!options_.use_kl_lucb &&
           pulls_done < options_.max_pulls_per_level) {
      pull(arms[rr++ % arms.size()]);
      ++pulls_done;
    }
    while (options_.use_kl_lucb &&
           pulls_done < options_.max_pulls_per_level) {
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return arms[a].mean() > arms[b].mean();
      });
      const double level_beta = util::kl_lucb_level(
          pulls_done, arms.size(), options_.lucb_confidence_delta);
      // Weakest member of the tentative top set.
      std::size_t weakest = order[0];
      double weakest_lb = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < B; ++i) {
        const Arm& a = arms[order[i]];
        const double lb = util::kl_lower_bound(a.mean(), a.pulls, level_beta);
        if (lb < weakest_lb) {
          weakest_lb = lb;
          weakest = order[i];
        }
      }
      // Strongest challenger outside the top set.
      std::size_t challenger = order[0];
      double challenger_ub = -std::numeric_limits<double>::infinity();
      for (std::size_t i = B; i < order.size(); ++i) {
        const Arm& a = arms[order[i]];
        const double ub = util::kl_upper_bound(a.mean(), a.pulls, level_beta);
        if (ub > challenger_ub) {
          challenger_ub = ub;
          challenger = order[i];
        }
      }
      if (order.size() <= B ||
          challenger_ub - weakest_lb < options_.lucb_epsilon) {
        break;
      }
      // The round's separating arms; one fused batch in widened mode.
      Arm* separating[2] = {&arms[weakest], &arms[challenger]};
      pull_group(std::span<Arm* const>(separating, 2));
      pulls_done += 2;
    }
    phase_end(level_timing.pulls_ns, t_phase);

    // --- collect valid anchors at this level. ---
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return arms[a].mean() > arms[b].mean();
    });
    const double verify_beta =
        std::log(1.0 / options_.lucb_confidence_delta);
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      Arm& arm = arms[order[i]];
      if (arm.mean() > best_effort_mean) {
        best_effort_mean = arm.mean();
        best_effort = arm;
      }
      if (arm.mean() < threshold) continue;
      // Firm up the estimate before accepting the anchor.
      while (arm.pulls < options_.final_precision_samples &&
             util::kl_lower_bound(arm.mean(), arm.pulls, verify_beta) <
                 threshold) {
        pull(arm);
      }
      // Acceptance is a KL-lower-bound gate: the anchor's estimated
      // precision must clear the threshold with high confidence, not
      // merely on its raw mean (kl_lower_bound(mean, ...) <= mean always,
      // so "lb_ok || mean >= threshold" would make the verification dead
      // code). Exhausting the firm-up budget without separation rejects
      // the anchor at this level; a zero final_precision_samples budget
      // disables verification entirely and falls back to the raw-mean
      // rule (RvExplainOptions pins 0: the analytical RV model is exact,
      // so extra pulls add queries without information).
      const bool lb_ok =
          util::kl_lower_bound(arm.mean(), arm.pulls, verify_beta) >=
          threshold;
      if (lb_ok || options_.final_precision_samples == 0) {
        Explanation e;
        e.features = arm.features;
        e.precision = arm.mean();
        e.coverage = coverage_of(arm.features);
        e.met_threshold = true;
        anchors_found.push_back(std::move(e));
      }
    }
    phase_end(level_timing.precision_ns, t_phase);
    if (phase_clock) timings.levels.push_back(level_timing);
    if (!anchors_found.empty()) break;  // smallest size wins (simplicity)

    // --- next beam. ---
    beam.clear();
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      beam.push_back(arms[order[i]]);
    }
  }

  Explanation result;
  if (!anchors_found.empty()) {
    // Maximum coverage among valid anchors (eq. 7).
    const auto best = std::max_element(
        anchors_found.begin(), anchors_found.end(),
        [](const Explanation& a, const Explanation& b) {
          return a.coverage < b.coverage;
        });
    result = *best;
  } else {
    // Best effort: highest-precision candidate seen.
    result.features = best_effort.features;
    result.precision = best_effort.mean();
    result.coverage = coverage_of(best_effort.features);
    result.met_threshold = false;
  }
  result.model_queries = queries;
  result.query_stats = broker.stats();
  // Optional in the Traits contract: an Explanation type without a timings
  // member (minimal stub traits) simply drops the phase observations.
  if constexpr (requires { result.timings = std::move(timings); }) {
    result.timings = std::move(timings);
  }
  return result;
}

}  // namespace comet::core
