// Global cost-model explanations (paper Section 4).
//
// Before specializing to block-specific explanations, the paper formalizes
// the global notion: an explanation for the behavior of model M over a
// prediction set T is "the common features of basic blocks having cost
// prediction in T, that are not present in other basic blocks". Its running
// example is the crude model M1 that predicts 2 cycles iff a block has 8
// instructions — for T = {2} the correct global explanation is "number of
// instructions equal to 8".
//
// The paper argues such explanations may not exist for complex models and
// pivots to block-specific ones; this module implements the global notion
// anyway, as an extension, for the regime where it is meaningful. Because a
// global explanation must transfer across blocks, its vocabulary is
// non-positional: presence of an opcode, of an opcode class, of a hazard
// kind, or an exact instruction count. Given a corpus, the explainer splits
// it into blocks whose prediction lands in T and the rest, then beam-searches
// conjunctions maximizing recall subject to precision ≥ 1 − δ — the global
// analogue of the optimization problem (7).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cost/cost_model.h"
#include "graph/depgraph.h"

namespace comet::core {

/// One non-positional, corpus-transferable feature.
class GlobalFeature {
 public:
  struct HasOpcode {
    x86::Opcode op;
    auto operator<=>(const HasOpcode&) const = default;
  };
  struct HasOpClass {
    x86::OpClass cls;
    auto operator<=>(const HasOpClass&) const = default;
  };
  struct HasDepKind {
    graph::DepKind kind;
    auto operator<=>(const HasDepKind&) const = default;
  };
  struct NumInstsEquals {
    std::size_t count;
    auto operator<=>(const NumInstsEquals&) const = default;
  };

  explicit GlobalFeature(HasOpcode f) : v_(f) {}
  explicit GlobalFeature(HasOpClass f) : v_(f) {}
  explicit GlobalFeature(HasDepKind f) : v_(f) {}
  explicit GlobalFeature(NumInstsEquals f) : v_(f) {}

  /// Does the feature hold for `block`?
  bool present_in(const x86::BasicBlock& block,
                  const graph::DepGraphOptions& options = {}) const;

  /// e.g. "has(div)", "has-class(IntDiv)", "has-dep(RAW)", "eta=8".
  std::string to_string() const;

  auto operator<=>(const GlobalFeature&) const = default;

  using Value =
      std::variant<HasOpcode, HasOpClass, HasDepKind, NumInstsEquals>;
  const Value& value() const { return v_; }

 private:
  Value v_;
};

/// A conjunction of global features with its corpus statistics.
struct GlobalExplanation {
  std::vector<GlobalFeature> features;
  /// P[ M(β) ∈ T | all features hold ] over the corpus.
  double precision = 0.0;
  /// P[ all features hold | M(β) ∈ T ] over the corpus (generalizability).
  double recall = 0.0;
  /// Number of corpus blocks where all features hold.
  std::size_t support = 0;
  bool met_threshold = false;

  std::string to_string() const;
};

struct GlobalExplainerOptions {
  double delta = 0.3;           ///< precision threshold is 1 − δ
  std::size_t max_size = 2;     ///< conjunction size cap (simplicity)
  std::size_t beam_width = 8;
  std::size_t min_support = 3;  ///< ignore features rarer than this in-set
  graph::DepGraphOptions graph_options;
};

/// Explains a model's behavior over prediction ranges, against a fixed
/// corpus of blocks. Construction queries the model once per block.
class GlobalExplainer {
 public:
  GlobalExplainer(const cost::CostModel& model,
                  std::vector<x86::BasicBlock> corpus,
                  GlobalExplainerOptions options = {});

  /// Explain T = [lo, hi]: the feature conjunction with recall maximized
  /// subject to Prec ≥ 1 − δ. Falls back to the highest-precision candidate
  /// (met_threshold = false) when no conjunction clears the threshold.
  GlobalExplanation explain_range(double lo, double hi) const;

  /// Model predictions for the corpus (index-aligned).
  const std::vector<double>& predictions() const { return predictions_; }

  std::size_t corpus_size() const { return corpus_.size(); }

 private:
  /// Per-block descriptor: which global features hold.
  struct BlockProfile {
    std::vector<bool> opcode_present;  // indexed by Opcode
    std::uint32_t classes = 0;         // bit per OpClass
    std::uint8_t dep_kinds = 0;        // bit per DepKind
    std::size_t num_insts = 0;
  };

  bool holds(const BlockProfile& p, const GlobalFeature& f) const;

  const cost::CostModel& model_;
  std::vector<x86::BasicBlock> corpus_;
  GlobalExplainerOptions options_;
  std::vector<BlockProfile> profiles_;
  std::vector<double> predictions_;
};

}  // namespace comet::core
