// Shared model/dataset construction for benches, examples, and tests: one
// canonical synthetic-BHive dataset and one canonical instance of each cost
// model per microarchitecture. The Ithemal surrogate is trained once per
// µarch and cached under the data directory (COMET_DATA_DIR env var, default
// "data/"), so every binary after the first reuses the weights.
#pragma once

#include <memory>
#include <string>

#include "bhive/dataset.h"
#include "cost/cost_model.h"

namespace comet::core {

/// The canonical dataset (3000 blocks, seed 2024, 4-10 instructions,
/// half Clang-profile / half OpenBLAS-profile). Built once per process.
const bhive::Dataset& zoo_dataset();

/// Where model weights are cached (COMET_DATA_DIR or "data").
std::string zoo_data_dir();

enum class ModelKind { Ithemal, Granite, UiCA, Oracle, Mca, Crude };

/// Construct (or load) a cost model. Ithemal is trained on zoo_dataset()
/// labels the first time and cached to disk afterwards; all other models
/// are cheap to construct.
std::shared_ptr<cost::CostModel> make_model(ModelKind kind,
                                            cost::MicroArch uarch);

}  // namespace comet::core
