// The output type of COMET: an explanation of one cost-model prediction.
#pragma once

#include <cstddef>
#include <string>

#include "graph/features.h"

namespace comet::core {

/// A COMET explanation for M(β): the maximum-coverage feature set whose
/// precision clears the (1-δ) threshold, plus the estimates that justified
/// its selection.
struct Explanation {
  graph::FeatureSet features;
  double precision = 0.0;   ///< estimated Prec(F) (eq. 4)
  double coverage = 0.0;    ///< estimated Cov(F) (eq. 6)
  bool met_threshold = false;  ///< precision lower bound cleared 1-δ
  std::size_t model_queries = 0;  ///< cost-model evaluations consumed

  std::string to_string() const {
    return features.to_string() + " (prec=" + std::to_string(precision) +
           ", cov=" + std::to_string(coverage) + ")";
  }
};

}  // namespace comet::core
