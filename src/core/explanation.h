// The output type of COMET: an explanation of one cost-model prediction.
#pragma once

#include <cstddef>
#include <string>

#include "cost/query_stats.h"
#include "graph/features.h"
#include "obs/phase_timers.h"
#include "util/str.h"

namespace comet::core {

/// A COMET explanation for M(β): the maximum-coverage feature set whose
/// precision clears the (1-δ) threshold, plus the estimates that justified
/// its selection.
struct Explanation {
  graph::FeatureSet features;
  double precision = 0.0;   ///< estimated Prec(F) (eq. 4)
  double coverage = 0.0;    ///< estimated Cov(F) (eq. 6)
  bool met_threshold = false;  ///< precision lower bound cleared 1-δ
  std::size_t model_queries = 0;  ///< cost-model evaluations consumed
  /// Broker-side traffic accounting for the queries above (batches issued,
  /// memoization hits, predictions actually evaluated).
  cost::QueryStats query_stats;
  /// Per-level engine phase timings; populated only when the caller set
  /// AnchorSearchOptions::phase_clock (timings.enabled). Pure observation:
  /// every other field is bit-identical with timing on or off.
  obs::PhaseTimings timings;

  std::string to_string() const {
    return features.to_string() +
           " (prec=" + util::format_fixed(precision, 3) +
           ", cov=" + util::format_fixed(coverage, 3) + ")";
  }
};

}  // namespace comet::core
