#include "core/eval.h"

#include "util/stats.h"

namespace comet::core {

bool explanation_accurate(const graph::FeatureSet& explanation,
                          const graph::FeatureSet& ground_truth) {
  if (explanation.empty()) return false;
  bool any = false;
  for (const auto& f : explanation.items()) {
    if (!ground_truth.contains(f)) return false;
    any = true;
  }
  return any;
}

AccuracyResult run_accuracy_experiment(const cost::CrudeModel& model,
                                       const bhive::Dataset& test_set,
                                       const CometOptions& options,
                                       std::uint64_t seed) {
  // Calibrate the baselines on the ground-truth type distribution of the
  // test set (paper Section 6).
  FeatureTypeFrequencies freqs;
  std::vector<graph::FeatureSet> gts;
  gts.reserve(test_set.size());
  for (const auto& lb : test_set.blocks()) {
    gts.push_back(model.ground_truth(lb.block));
    freqs.add(gts.back());
  }

  RandomBaseline random_baseline(freqs, seed ^ 0xAB);
  const FixedBaseline fixed_baseline(freqs);

  CometOptions opt = options;
  opt.seed = seed;
  const CometExplainer comet(model, opt);

  std::size_t random_ok = 0, fixed_ok = 0, comet_ok = 0;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const auto& block = test_set[i].block;
    const auto& gt = gts[i];
    random_ok += explanation_accurate(
        random_baseline.explain(block, options.graph_options), gt);
    fixed_ok += explanation_accurate(
        fixed_baseline.explain(block, options.graph_options), gt);
    comet_ok += explanation_accurate(comet.explain(block).features, gt);
  }
  const double n = static_cast<double>(test_set.size());
  return AccuracyResult{100.0 * random_ok / n, 100.0 * fixed_ok / n,
                        100.0 * comet_ok / n};
}

ModelExplanationStats analyze_model(const cost::CostModel& model,
                                    cost::MicroArch uarch,
                                    const bhive::Dataset& test_set,
                                    const CometOptions& options,
                                    std::size_t precision_samples,
                                    std::size_t coverage_samples,
                                    std::uint64_t seed) {
  CometOptions opt = options;
  opt.seed = seed;
  const CometExplainer explainer(model, opt);
  util::Rng rng(seed ^ 0xF00D);

  ModelExplanationStats stats;
  std::vector<double> precisions, coverages, preds, actuals;
  std::size_t with_eta = 0, with_inst = 0, with_dep = 0;

  for (const auto& lb : test_set.blocks()) {
    const auto expl = explainer.explain(lb.block);
    // Independent precision/coverage estimates (not the search's own
    // optimistic statistics).
    precisions.push_back(explainer.estimate_precision(
        lb.block, expl.features, precision_samples, rng));
    coverages.push_back(explainer.estimate_coverage(
        lb.block, expl.features, coverage_samples, rng));

    bool eta = false, inst = false, dep = false;
    for (const auto& f : expl.features.items()) {
      eta |= f.is_num_insts();
      inst |= f.is_inst();
      dep |= f.is_dep();
    }
    with_eta += eta;
    with_inst += inst;
    with_dep += dep;

    actuals.push_back(lb.measured(uarch));
  }

  // MAPE sweep over the test set, batched through the model.
  std::vector<x86::BasicBlock> eval_blocks;
  eval_blocks.reserve(test_set.size());
  for (const auto& lb : test_set.blocks()) eval_blocks.push_back(lb.block);
  preds.resize(eval_blocks.size());
  model.predict_batch(std::span<const x86::BasicBlock>(eval_blocks),
                      std::span<double>(preds));

  const double n = static_cast<double>(test_set.size());
  stats.blocks = test_set.size();
  stats.avg_precision = util::mean(precisions);
  stats.avg_coverage = util::mean(coverages);
  stats.mape = util::mape(preds, actuals);
  stats.pct_with_num_insts = 100.0 * with_eta / n;
  stats.pct_with_inst = 100.0 * with_inst / n;
  stats.pct_with_dep = 100.0 * with_dep / n;
  return stats;
}

MeanStd summarize(const std::vector<double>& values) {
  return MeanStd{util::mean(values), util::stddev(values)};
}

}  // namespace comet::core
