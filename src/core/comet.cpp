#include "core/comet.h"

namespace comet::core {

CometExplainer::CometExplainer(const cost::CostModel& model,
                               CometOptions options)
    : model_(model), options_(options) {}

double CometExplainer::estimate_precision(const x86::BasicBlock& block,
                                          const graph::FeatureSet& features,
                                          std::size_t samples,
                                          util::Rng& rng) const {
  return engine().estimate_precision(block, features, samples, rng);
}

double CometExplainer::estimate_coverage(const x86::BasicBlock& block,
                                         const graph::FeatureSet& features,
                                         std::size_t samples,
                                         util::Rng& rng) const {
  return engine().estimate_coverage(block, features, samples, rng);
}

Explanation CometExplainer::explain(const x86::BasicBlock& block) const {
  return engine().explain(block);
}

}  // namespace comet::core
