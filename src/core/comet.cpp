#include "core/comet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/kl_bounds.h"

namespace comet::core {

namespace {

using graph::Feature;
using graph::FeatureSet;
using perturb::PerturbedBlock;
using perturb::Perturber;

/// One bandit arm: a candidate feature set with its precision statistics.
struct Arm {
  FeatureSet features;
  std::size_t pulls = 0;   // samples drawn
  std::size_t hits = 0;    // samples with |M(α) − M(β)| ≤ ε
  double coverage = 0.0;

  double mean() const {
    return pulls ? static_cast<double>(hits) / static_cast<double>(pulls)
                 : 0.0;
  }
};

}  // namespace

CometExplainer::CometExplainer(const cost::CostModel& model,
                               CometOptions options)
    : model_(model), options_(options) {}

double CometExplainer::estimate_precision(const x86::BasicBlock& block,
                                          const FeatureSet& features,
                                          std::size_t samples,
                                          util::Rng& rng) const {
  const Perturber perturber(block, options_.graph_options,
                            options_.perturb_config);
  const double base = model_.predict(block);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto alpha = perturber.sample(features, rng);
    if (alpha.block.empty()) continue;
    hits += std::abs(model_.predict(alpha.block) - base) < options_.epsilon;
  }
  return samples ? static_cast<double>(hits) / static_cast<double>(samples)
                 : 0.0;
}

double CometExplainer::estimate_coverage(const x86::BasicBlock& block,
                                         const FeatureSet& features,
                                         std::size_t samples,
                                         util::Rng& rng) const {
  const Perturber perturber(block, options_.graph_options,
                            options_.perturb_config);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto alpha = perturber.sample(FeatureSet{}, rng);
    hits += perturber.contains(alpha, features);
  }
  return samples ? static_cast<double>(hits) / static_cast<double>(samples)
                 : 0.0;
}

Explanation CometExplainer::explain(const x86::BasicBlock& block) const {
  util::Rng rng(options_.seed ^ util::fnv1a64(block.to_string().c_str()));
  const Perturber perturber(block, options_.graph_options,
                            options_.perturb_config);
  const double base = model_.predict(block);
  std::size_t queries = 1;

  // Candidate vocabulary P̂ (instruction features, dependency features, η).
  const FeatureSet vocabulary =
      graph::extract_features(block, options_.graph_options);

  // Shared coverage pool: samples from D = Γ(∅).
  std::vector<PerturbedBlock> coverage_pool;
  coverage_pool.reserve(options_.coverage_samples);
  for (std::size_t i = 0; i < options_.coverage_samples; ++i) {
    coverage_pool.push_back(perturber.sample(FeatureSet{}, rng));
  }
  const auto coverage_of = [&](const FeatureSet& fs) {
    if (coverage_pool.empty()) return 0.0;
    std::size_t hits = 0;
    for (const auto& alpha : coverage_pool) {
      hits += perturber.contains(alpha, fs);
    }
    return static_cast<double>(hits) /
           static_cast<double>(coverage_pool.size());
  };

  // Draw one batch for an arm and update its statistics.
  const auto pull = [&](Arm& arm) {
    for (std::size_t i = 0; i < options_.batch_size; ++i) {
      const auto alpha = perturber.sample(arm.features, rng);
      ++queries;
      if (alpha.block.empty()) continue;
      arm.hits +=
          std::abs(model_.predict(alpha.block) - base) < options_.epsilon;
      ++arm.pulls;
    }
  };

  const double threshold = 1.0 - options_.delta;
  std::vector<Explanation> anchors_found;
  std::vector<Arm> beam;  // current beam (feature sets of size = level)
  Arm best_effort;        // highest-precision candidate seen anywhere
  double best_effort_mean = -1.0;

  for (std::size_t level = 1; level <= options_.max_explanation_size;
       ++level) {
    // --- build candidate arms by extending the beam (or singletons). ---
    std::vector<Arm> arms;
    const auto add_candidate = [&](const FeatureSet& fs) {
      for (const auto& a : arms) {
        if (a.features == fs) return;
      }
      Arm arm;
      arm.features = fs;
      arms.push_back(std::move(arm));
    };
    if (level == 1) {
      for (const Feature& f : vocabulary.items()) {
        add_candidate(FeatureSet{}.with(f));
      }
    } else {
      for (const Arm& parent : beam) {
        for (const Feature& f : vocabulary.items()) {
          if (parent.features.contains(f)) continue;
          add_candidate(parent.features.with(f));
        }
      }
    }
    if (arms.empty()) break;

    // --- KL-LUCB: identify the top-B arms by precision. ---
    for (auto& arm : arms) pull(arm);
    std::size_t pulls_done = arms.size();
    const std::size_t B = std::min(options_.beam_width, arms.size());
    std::vector<std::size_t> order(arms.size());
    // Uniform-allocation baseline (ablation): spend the same budget
    // round-robin instead of adaptively.
    std::size_t rr = 0;
    while (!options_.use_kl_lucb &&
           pulls_done < options_.max_pulls_per_level) {
      pull(arms[rr++ % arms.size()]);
      ++pulls_done;
    }
    while (options_.use_kl_lucb &&
           pulls_done < options_.max_pulls_per_level) {
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return arms[a].mean() > arms[b].mean();
      });
      const double level_beta = util::kl_lucb_level(
          pulls_done, arms.size(), options_.lucb_confidence_delta);
      // Weakest member of the tentative top set.
      std::size_t weakest = order[0];
      double weakest_lb = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < B; ++i) {
        const Arm& a = arms[order[i]];
        const double lb = util::kl_lower_bound(a.mean(), a.pulls, level_beta);
        if (lb < weakest_lb) {
          weakest_lb = lb;
          weakest = order[i];
        }
      }
      // Strongest challenger outside the top set.
      std::size_t challenger = order[0];
      double challenger_ub = -std::numeric_limits<double>::infinity();
      for (std::size_t i = B; i < order.size(); ++i) {
        const Arm& a = arms[order[i]];
        const double ub = util::kl_upper_bound(a.mean(), a.pulls, level_beta);
        if (ub > challenger_ub) {
          challenger_ub = ub;
          challenger = order[i];
        }
      }
      if (order.size() <= B ||
          challenger_ub - weakest_lb < options_.lucb_epsilon) {
        break;
      }
      pull(arms[weakest]);
      pull(arms[challenger]);
      pulls_done += 2;
    }

    // --- collect valid anchors at this level. ---
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return arms[a].mean() > arms[b].mean();
    });
    const double verify_beta =
        std::log(1.0 / options_.lucb_confidence_delta);
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      Arm& arm = arms[order[i]];
      if (arm.mean() > best_effort_mean) {
        best_effort_mean = arm.mean();
        best_effort = arm;
      }
      if (arm.mean() < threshold) continue;
      // Firm up the estimate before accepting the anchor.
      while (arm.pulls < options_.final_precision_samples &&
             util::kl_lower_bound(arm.mean(), arm.pulls, verify_beta) <
                 threshold) {
        pull(arm);
      }
      const bool lb_ok =
          util::kl_lower_bound(arm.mean(), arm.pulls, verify_beta) >=
          threshold;
      if (lb_ok || arm.mean() >= threshold) {
        Explanation e;
        e.features = arm.features;
        e.precision = arm.mean();
        e.coverage = coverage_of(arm.features);
        e.met_threshold = true;
        anchors_found.push_back(std::move(e));
      }
    }
    if (!anchors_found.empty()) break;  // smallest size wins (simplicity)

    // --- next beam. ---
    beam.clear();
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      beam.push_back(arms[order[i]]);
    }
  }

  Explanation result;
  if (!anchors_found.empty()) {
    // Maximum coverage among valid anchors (eq. 7).
    const auto best = std::max_element(
        anchors_found.begin(), anchors_found.end(),
        [](const Explanation& a, const Explanation& b) {
          return a.coverage < b.coverage;
        });
    result = *best;
  } else {
    // Best effort: highest-precision candidate seen.
    result.features = best_effort.features;
    result.precision = best_effort.mean();
    result.coverage = coverage_of(best_effort.features);
    result.met_threshold = false;
  }
  result.model_queries = queries;
  return result;
}

}  // namespace comet::core
