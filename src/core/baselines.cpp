#include "core/baselines.h"

#include <algorithm>
#include <vector>

namespace comet::core {

namespace {

std::vector<graph::Feature> features_of_type(const x86::BasicBlock& block,
                                             graph::FeatureType type,
                                             const graph::DepGraphOptions& g) {
  std::vector<graph::Feature> out;
  const graph::FeatureSet all = graph::extract_features(block, g);
  for (const auto& f : all.items()) {
    if (f.type() == type) out.push_back(f);
  }
  return out;
}

}  // namespace

void FeatureTypeFrequencies::add(const graph::FeatureSet& gt) {
  for (const auto& f : gt.items()) {
    counts[static_cast<std::size_t>(f.type())] += 1.0;
  }
}

double FeatureTypeFrequencies::total() const {
  return counts[0] + counts[1] + counts[2];
}

graph::FeatureType FeatureTypeFrequencies::most_frequent() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<graph::FeatureType>(best);
}

RandomBaseline::RandomBaseline(FeatureTypeFrequencies freqs,
                               std::uint64_t seed)
    : freqs_(freqs), rng_(seed) {}

graph::FeatureSet RandomBaseline::explain(const x86::BasicBlock& block,
                                          const graph::DepGraphOptions& gopt) {
  const double total = freqs_.total();
  graph::FeatureSet out;
  if (total <= 0.0) return out;
  // Draw a type from the ground-truth type distribution; if the block has
  // no feature of that type, retry (bounded).
  for (int attempt = 0; attempt < 16; ++attempt) {
    double roll = rng_.uniform(0.0, total);
    std::size_t type_idx = 0;
    for (; type_idx < 2; ++type_idx) {
      roll -= freqs_.counts[type_idx];
      if (roll <= 0) break;
    }
    const auto candidates = features_of_type(
        block, static_cast<graph::FeatureType>(type_idx), gopt);
    if (candidates.empty()) continue;
    out.insert(rng_.pick(candidates));
    return out;
  }
  // Fallback: uniformly random feature.
  const auto all = graph::extract_features(block, gopt);
  if (!all.empty()) out.insert(rng_.pick(all.items()));
  return out;
}

FixedBaseline::FixedBaseline(FeatureTypeFrequencies freqs)
    : fixed_type_(freqs.most_frequent()) {}

graph::FeatureSet FixedBaseline::explain(
    const x86::BasicBlock& block, const graph::DepGraphOptions& gopt) const {
  graph::FeatureSet out;
  auto candidates = features_of_type(block, fixed_type_, gopt);
  if (candidates.empty()) {
    // Degenerate block: fall back to η, which always exists.
    out.insert(graph::Feature(graph::NumInstsFeature{block.size()}));
    return out;
  }
  std::sort(candidates.begin(), candidates.end());
  out.insert(candidates.front());
  return out;
}

}  // namespace comet::core
