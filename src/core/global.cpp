#include "core/global.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/table.h"

namespace comet::core {

bool GlobalFeature::present_in(const x86::BasicBlock& block,
                               const graph::DepGraphOptions& options) const {
  if (const auto* f = std::get_if<HasOpcode>(&v_)) {
    return std::any_of(block.instructions.begin(), block.instructions.end(),
                       [&](const auto& i) { return i.opcode == f->op; });
  }
  if (const auto* f = std::get_if<HasOpClass>(&v_)) {
    return std::any_of(block.instructions.begin(), block.instructions.end(),
                       [&](const auto& i) {
                         return x86::info(i.opcode).cls == f->cls;
                       });
  }
  if (const auto* f = std::get_if<HasDepKind>(&v_)) {
    const auto g = graph::DepGraph::build(block, options);
    return std::any_of(g.edges().begin(), g.edges().end(),
                       [&](const auto& e) { return e.kind == f->kind; });
  }
  const auto& f = std::get<NumInstsEquals>(v_);
  return block.size() == f.count;
}

std::string GlobalFeature::to_string() const {
  if (const auto* f = std::get_if<HasOpcode>(&v_)) {
    return "has(" + std::string(x86::mnemonic(f->op)) + ")";
  }
  if (const auto* f = std::get_if<HasOpClass>(&v_)) {
    return "has-class(" + std::string(x86::op_class_name(f->cls)) + ")";
  }
  if (const auto* f = std::get_if<HasDepKind>(&v_)) {
    return "has-dep(" + graph::dep_kind_name(f->kind) + ")";
  }
  return "eta=" + std::to_string(std::get<NumInstsEquals>(v_).count);
}

std::string GlobalExplanation::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i > 0) out += ", ";
    out += features[i].to_string();
  }
  out += "} (prec=" + util::Table::fmt(precision, 2) +
         ", recall=" + util::Table::fmt(recall, 2) +
         ", support=" + std::to_string(support) + ")";
  return out;
}

GlobalExplainer::GlobalExplainer(const cost::CostModel& model,
                                 std::vector<x86::BasicBlock> corpus,
                                 GlobalExplainerOptions options)
    : model_(model), corpus_(std::move(corpus)), options_(options) {
  if (corpus_.empty()) {
    throw std::invalid_argument("GlobalExplainer: empty corpus");
  }
  profiles_.reserve(corpus_.size());
  for (const auto& block : corpus_) {
    BlockProfile p;
    p.opcode_present.assign(x86::kNumOpcodes, false);
    for (const auto& inst : block.instructions) {
      p.opcode_present[static_cast<std::size_t>(inst.opcode)] = true;
      p.classes |= 1u << static_cast<unsigned>(x86::info(inst.opcode).cls);
    }
    const auto dep_graph =
        graph::DepGraph::build(block, options_.graph_options);
    for (const auto& e : dep_graph.edges()) {
      p.dep_kinds |= 1u << static_cast<unsigned>(e.kind);
    }
    p.num_insts = block.size();
    profiles_.push_back(std::move(p));
  }
  // The one model sweep of a global explanation, issued as a single batch.
  predictions_.resize(corpus_.size());
  model_.predict_batch(std::span<const x86::BasicBlock>(corpus_),
                       std::span<double>(predictions_));
}

bool GlobalExplainer::holds(const BlockProfile& p,
                            const GlobalFeature& f) const {
  // Evaluated thousands of times per explanation, so it dispatches on the
  // precomputed profile instead of re-walking the block.
  struct Probe {
    const BlockProfile& p;
    bool operator()(const GlobalFeature::HasOpcode& f) const {
      return p.opcode_present[static_cast<std::size_t>(f.op)];
    }
    bool operator()(const GlobalFeature::HasOpClass& f) const {
      return (p.classes >> static_cast<unsigned>(f.cls)) & 1u;
    }
    bool operator()(const GlobalFeature::HasDepKind& f) const {
      return (p.dep_kinds >> static_cast<unsigned>(f.kind)) & 1u;
    }
    bool operator()(const GlobalFeature::NumInstsEquals& f) const {
      return p.num_insts == f.count;
    }
  };
  return std::visit(Probe{p}, f.value());
}

GlobalExplanation GlobalExplainer::explain_range(double lo, double hi) const {
  // In-set membership per corpus block.
  std::vector<bool> in_set(corpus_.size());
  std::size_t n_in = 0;
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    in_set[i] = predictions_[i] >= lo && predictions_[i] <= hi;
    n_in += in_set[i];
  }
  if (n_in == 0) {
    throw std::invalid_argument(
        "GlobalExplainer::explain_range: no corpus block predicts in range");
  }

  // Candidate vocabulary: every feature that holds for at least one in-set
  // block (anything else has zero recall by construction).
  std::set<GlobalFeature> vocabulary;
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    if (!in_set[i]) continue;
    const BlockProfile& p = profiles_[i];
    for (std::size_t op = 0; op < x86::kNumOpcodes; ++op) {
      if (p.opcode_present[op]) {
        vocabulary.insert(GlobalFeature(
            GlobalFeature::HasOpcode{static_cast<x86::Opcode>(op)}));
      }
    }
    for (unsigned c = 0; c < 32; ++c) {
      if ((p.classes >> c) & 1u) {
        vocabulary.insert(GlobalFeature(
            GlobalFeature::HasOpClass{static_cast<x86::OpClass>(c)}));
      }
    }
    for (unsigned k = 0; k < 3; ++k) {
      if ((p.dep_kinds >> k) & 1u) {
        vocabulary.insert(GlobalFeature(
            GlobalFeature::HasDepKind{static_cast<graph::DepKind>(k)}));
      }
    }
    vocabulary.insert(
        GlobalFeature(GlobalFeature::NumInstsEquals{p.num_insts}));
  }

  // Stats of a conjunction over the whole corpus.
  const auto evaluate = [&](const std::vector<GlobalFeature>& conj) {
    GlobalExplanation e;
    e.features = conj;
    std::size_t hold = 0, hold_in = 0;
    for (std::size_t i = 0; i < corpus_.size(); ++i) {
      const bool all = std::all_of(
          conj.begin(), conj.end(),
          [&](const GlobalFeature& f) { return holds(profiles_[i], f); });
      if (!all) continue;
      ++hold;
      if (in_set[i]) ++hold_in;
    }
    e.support = hold;
    e.precision = hold > 0 ? double(hold_in) / double(hold) : 0.0;
    e.recall = double(hold_in) / double(n_in);
    e.met_threshold = e.precision >= 1.0 - options_.delta;
    return e;
  };

  // Beam search over conjunctions: rank by precision (recall as the
  // tie-break) while below the threshold; track the best thresholded
  // candidate by recall (then simplicity).
  const auto better_candidate = [](const GlobalExplanation& a,
                                   const GlobalExplanation& b) {
    if (a.precision != b.precision) return a.precision > b.precision;
    return a.recall > b.recall;
  };
  const auto better_answer = [](const GlobalExplanation& a,
                                const GlobalExplanation& b) {
    if (a.recall != b.recall) return a.recall > b.recall;
    return a.features.size() < b.features.size();
  };

  std::vector<GlobalExplanation> beam;
  GlobalExplanation best;  // highest precision overall (fallback)
  bool have_best = false;
  GlobalExplanation answer;  // best thresholded
  bool have_answer = false;

  for (const auto& f : vocabulary) {
    GlobalExplanation e = evaluate({f});
    if (e.support < options_.min_support && e.support < n_in) continue;
    if (!have_best || better_candidate(e, best)) {
      best = e;
      have_best = true;
    }
    if (e.met_threshold && (!have_answer || better_answer(e, answer))) {
      answer = e;
      have_answer = true;
    }
    beam.push_back(std::move(e));
  }
  std::sort(beam.begin(), beam.end(), better_candidate);
  if (beam.size() > options_.beam_width) beam.resize(options_.beam_width);

  for (std::size_t size = 2;
       size <= options_.max_size && !beam.empty(); ++size) {
    std::vector<GlobalExplanation> next;
    for (const auto& base : beam) {
      for (const auto& f : vocabulary) {
        if (std::find(base.features.begin(), base.features.end(), f) !=
            base.features.end()) {
          continue;
        }
        auto conj = base.features;
        conj.push_back(f);
        std::sort(conj.begin(), conj.end());
        GlobalExplanation e = evaluate(conj);
        // A conjunction must actually sharpen its parent.
        if (e.precision <= base.precision) continue;
        if (e.support < options_.min_support && e.support < n_in) continue;
        if (!have_best || better_candidate(e, best)) {
          best = e;
          have_best = true;
        }
        if (e.met_threshold && (!have_answer || better_answer(e, answer))) {
          answer = e;
          have_answer = true;
        }
        next.push_back(std::move(e));
      }
    }
    std::sort(next.begin(), next.end(), better_candidate);
    next.erase(std::unique(next.begin(), next.end(),
                           [](const auto& a, const auto& b) {
                             return a.features == b.features;
                           }),
               next.end());
    if (next.size() > options_.beam_width) next.resize(options_.beam_width);
    beam = std::move(next);
  }

  if (have_answer) return answer;
  if (have_best) return best;
  throw std::runtime_error(
      "GlobalExplainer::explain_range: no candidate with minimum support");
}

}  // namespace comet::core
