// Evaluation harness shared by the benches: explanation-accuracy scoring
// against the crude model's ground truth (Table 2, Figures 5-8), average
// precision/coverage reporting (Table 3), and the error-vs-explanation-
// granularity analysis (Figures 2-4).
#pragma once

#include <array>
#include <vector>

#include "bhive/dataset.h"
#include "core/baselines.h"
#include "core/comet.h"
#include "cost/crude_model.h"

namespace comet::core {

/// Paper's accuracy criterion: an explanation is accurate for C(β) iff it
/// names at least one ground-truth feature and nothing outside GT(β).
bool explanation_accurate(const graph::FeatureSet& explanation,
                          const graph::FeatureSet& ground_truth);

/// Accuracy (%) of COMET and the two baselines over the crude model on a
/// test set, for one seed.
struct AccuracyResult {
  double random_pct = 0.0;
  double fixed_pct = 0.0;
  double comet_pct = 0.0;
};

AccuracyResult run_accuracy_experiment(const cost::CrudeModel& model,
                                       const bhive::Dataset& test_set,
                                       const CometOptions& options,
                                       std::uint64_t seed);

/// Per-model precision/coverage summary (Table 3) plus explanation
/// feature-type composition and MAPE (Figures 2-4).
struct ModelExplanationStats {
  double avg_precision = 0.0;
  double avg_coverage = 0.0;
  double mape = 0.0;  ///< vs. "measured" (oracle+noise) throughput
  /// % of explanations containing a feature of each type.
  double pct_with_num_insts = 0.0;
  double pct_with_inst = 0.0;
  double pct_with_dep = 0.0;
  std::size_t blocks = 0;
};

ModelExplanationStats analyze_model(const cost::CostModel& model,
                                    cost::MicroArch uarch,
                                    const bhive::Dataset& test_set,
                                    const CometOptions& options,
                                    std::size_t precision_samples,
                                    std::size_t coverage_samples,
                                    std::uint64_t seed);

/// Mean ± sample-std over per-seed values.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd summarize(const std::vector<double>& values);

}  // namespace comet::core
