// The paper's baseline explanation algorithms (Section 6): random and
// fixed. Both are calibrated on the distribution of ground-truth
// explanations over the explanation test set, exactly as described:
//
//  * Random baseline — emits one feature of β, whose *type* is drawn with
//    probability proportional to the frequency of that feature type across
//    all ground-truth explanations of the test set.
//  * Fixed baseline — always emits the first feature (in canonical block
//    order) of the single most frequent ground-truth feature type.
#pragma once

#include <array>

#include "graph/features.h"
#include "util/rng.h"
#include "x86/instruction.h"

namespace comet::core {

/// Frequencies of feature types across a collection of ground-truth
/// explanation sets.
struct FeatureTypeFrequencies {
  std::array<double, 3> counts{};  // indexed by graph::FeatureType

  void add(const graph::FeatureSet& gt);
  double total() const;
  graph::FeatureType most_frequent() const;
};

class RandomBaseline {
 public:
  RandomBaseline(FeatureTypeFrequencies freqs, std::uint64_t seed);

  /// One random single-feature explanation for `block`.
  graph::FeatureSet explain(const x86::BasicBlock& block,
                            const graph::DepGraphOptions& gopt = {});

 private:
  FeatureTypeFrequencies freqs_;
  util::Rng rng_;
};

class FixedBaseline {
 public:
  explicit FixedBaseline(FeatureTypeFrequencies freqs);

  /// The deterministic fixed explanation for `block`.
  graph::FeatureSet explain(const x86::BasicBlock& block,
                            const graph::DepGraphOptions& gopt = {}) const;

 private:
  graph::FeatureType fixed_type_;
};

}  // namespace comet::core
