// COMET: the cost-model explanation engine (paper Section 5.2).
//
// Given query access to a cost model M and a target basic block β, COMET
// solves the relaxed optimization problem (eq. 7):
//
//   F* = argmax_{F ⊆ P̂} Cov(F)   s.t.   Prec(F) ≥ 1 − δ
//
// where Prec(F) = Pr_{α ~ D_F}[ |M(α) − M(β)| ≤ ε ]  and
//       Cov(F)  = Pr_{α ~ D}[ F ⊆ P̂(α) ].
//
// Following Anchors (Ribeiro et al. 2018), the search proceeds bottom-up
// with a beam over feature sets; at each level the top-B candidates by
// precision are identified with the KL-LUCB best-arm procedure (Kaufmann &
// Kalyanakrishnan 2013), which adaptively allocates the model-query budget
// to the arms whose confidence intervals actually matter. Candidates whose
// precision *lower confidence bound* clears 1 − δ are valid anchors; among
// valid anchors the maximum-coverage one is returned. Coverage is estimated
// against a shared pool of unconstrained perturbations of β.
#pragma once

#include <cstdint>
#include <memory>

#include "core/explanation.h"
#include "cost/cost_model.h"
#include "perturb/perturber.h"

namespace comet::core {

struct CometOptions {
  /// ε-ball radius around M(β) (paper Appendix E: 0.5 cycles for real cost
  /// models, ∆/4 = 0.25 for the crude model C).
  double epsilon = 0.5;
  /// Precision threshold is (1 − delta); the paper uses 0.7.
  double delta = 0.3;

  // -- KL-LUCB / beam-search hyperparameters (Anchors defaults) --
  /// Use the adaptive KL-LUCB best-arm procedure to allocate the per-level
  /// pull budget (design decision 4 in DESIGN.md). When false, the same
  /// budget is spent uniformly round-robin across candidate arms — the
  /// baseline the ablation bench compares against.
  bool use_kl_lucb = true;
  double lucb_confidence_delta = 0.1;  ///< bandit failure probability
  double lucb_epsilon = 0.15;          ///< UB/LB separation tolerance
  std::size_t batch_size = 12;         ///< perturbations per arm pull
  std::size_t beam_width = 4;
  std::size_t max_explanation_size = 3;
  std::size_t max_pulls_per_level = 160;  ///< arm pulls per beam level

  /// Samples drawn from D (=Γ(∅)) for coverage estimation. The paper uses
  /// 10k; benches scale this down and report the value used.
  std::size_t coverage_samples = 2000;
  /// Extra samples to firm up the precision estimate of the final answer.
  std::size_t final_precision_samples = 200;

  std::uint64_t seed = 1;
  graph::DepGraphOptions graph_options;
  perturb::PerturbConfig perturb_config;
};

class CometExplainer {
 public:
  /// `model` must outlive the explainer.
  CometExplainer(const cost::CostModel& model, CometOptions options = {});

  /// Explain M(β) for the given block.
  Explanation explain(const x86::BasicBlock& block) const;

  /// Standalone Monte-Carlo estimate of Prec(F) for a given feature set
  /// (used by the Table 3 evaluation). Consumes `samples` model queries.
  double estimate_precision(const x86::BasicBlock& block,
                            const graph::FeatureSet& features,
                            std::size_t samples, util::Rng& rng) const;

  /// Standalone estimate of Cov(F) over `samples` unconstrained
  /// perturbations.
  double estimate_coverage(const x86::BasicBlock& block,
                           const graph::FeatureSet& features,
                           std::size_t samples, util::Rng& rng) const;

  const CometOptions& options() const { return options_; }
  const cost::CostModel& model() const { return model_; }

 private:
  const cost::CostModel& model_;
  CometOptions options_;
};

}  // namespace comet::core
