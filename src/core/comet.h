// COMET: the cost-model explanation engine, x86 instantiation (paper
// Section 5.2).
//
// Given query access to a cost model M and a target basic block β, COMET
// solves the relaxed optimization problem (eq. 7):
//
//   F* = argmax_{F ⊆ P̂} Cov(F)   s.t.   Prec(F) ≥ 1 − δ
//
// where Prec(F) = Pr_{α ~ D_F}[ |M(α) − M(β)| ≤ ε ]  and
//       Cov(F)  = Pr_{α ~ D}[ F ⊆ P̂(α) ].
//
// The search itself — Anchors-style bottom-up beam search with KL-LUCB
// best-arm identification, batched through a query broker — lives in the
// ISA-generic core/anchor_engine.h; CometExplainer is its x86
// instantiation via X86AnchorTraits (the RISC-V port in riscv/explain.h is
// the second one, exactly as the paper's Section 7 portability claim asks).
#pragma once

#include <cstdint>

#include "core/anchor_engine.h"
#include "core/explanation.h"
#include "cost/cost_model.h"
#include "perturb/perturber.h"

namespace comet::core {

/// Anchor-search options plus the x86-specific feature-extraction and
/// perturbation configuration. The scalar search knobs (ε, δ, KL-LUCB
/// budget, coverage samples, seed, ...) are inherited from the shared
/// AnchorSearchOptions.
struct CometOptions : AnchorSearchOptions {
  graph::DepGraphOptions graph_options;
  perturb::PerturbConfig perturb_config;
};

/// ISA-traits binding of the generic anchor engine to x86.
struct X86AnchorTraits {
  using Block = x86::BasicBlock;
  using Feature = graph::Feature;
  using FeatureSet = graph::FeatureSet;
  using Perturber = perturb::Perturber;
  using PerturbedBlock = perturb::PerturbedBlock;
  using Model = cost::CostModel;
  using Options = CometOptions;
  using Explanation = core::Explanation;

  static FeatureSet extract_features(const Block& block,
                                     const Options& options) {
    return graph::extract_features(block, options.graph_options);
  }
  static Perturber make_perturber(const Block& block, const Options& options) {
    return Perturber(block, options.graph_options, options.perturb_config);
  }
};

class CometExplainer {
 public:
  /// The engine traits this explainer instantiates — the hook the serving
  /// layer uses: serve::ExplanationServer<CometExplainer::Traits> schedules
  /// concurrent x86 explanation sessions over the same engine.
  using Traits = X86AnchorTraits;

  /// `model` must outlive the explainer.
  CometExplainer(const cost::CostModel& model, CometOptions options = {});

  /// Explain M(β) for the given block.
  Explanation explain(const x86::BasicBlock& block) const;

  /// Standalone Monte-Carlo estimate of Prec(F) for a given feature set
  /// (used by the Table 3 evaluation). Consumes `samples` model queries.
  double estimate_precision(const x86::BasicBlock& block,
                            const graph::FeatureSet& features,
                            std::size_t samples, util::Rng& rng) const;

  /// Standalone estimate of Cov(F) over `samples` unconstrained
  /// perturbations.
  double estimate_coverage(const x86::BasicBlock& block,
                           const graph::FeatureSet& features,
                           std::size_t samples, util::Rng& rng) const;

  const CometOptions& options() const { return options_; }
  const cost::CostModel& model() const { return model_; }

 private:
  AnchorEngine<X86AnchorTraits> engine() const { return {model_, options_}; }

  const cost::CostModel& model_;
  CometOptions options_;
};

}  // namespace comet::core
