#include "core/model_zoo.h"

#include <cstdio>
#include <cstdlib>

#include "cost/crude_model.h"
#include "cost/granite_model.h"
#include "cost/ithemal_model.h"
#include "sim/models.h"

namespace comet::core {

const bhive::Dataset& zoo_dataset() {
  static const bhive::Dataset kDataset = [] {
    bhive::DatasetOptions opt;
    opt.size = 3000;
    opt.seed = 2024;
    return bhive::generate_dataset(opt);
  }();
  return kDataset;
}

std::string zoo_data_dir() {
  // Read-only env lookup during setup, before any worker thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dir = std::getenv("COMET_DATA_DIR")) return dir;
  return "data";
}

std::shared_ptr<cost::CostModel> make_model(ModelKind kind,
                                            cost::MicroArch uarch) {
  switch (kind) {
    case ModelKind::UiCA:
      return std::make_shared<sim::UiCASimModel>(uarch);
    case ModelKind::Oracle:
      return std::make_shared<sim::HardwareOracle>(uarch);
    case ModelKind::Mca:
      return std::make_shared<sim::McaLikeModel>(uarch);
    case ModelKind::Crude:
      return std::make_shared<cost::CrudeModel>(uarch);
    case ModelKind::Granite: {
      auto model = std::make_shared<cost::GraniteModel>(uarch);
      const auto& ds = zoo_dataset();
      const std::string path =
          zoo_data_dir() + "/granite_" +
          (uarch == cost::MicroArch::Haswell ? "hsw" : "skl") + ".bin";
      const double mape = model->train_or_load(path, ds.block_views(),
                                               ds.label_views(uarch));
      if (mape > 0.0) {
        std::fprintf(stderr,
                     "[model_zoo] trained %s (train MAPE %.1f%%), cached at "
                     "%s\n",
                     model->name().c_str(), mape, path.c_str());
      }
      return model;
    }
    case ModelKind::Ithemal: {
      auto model = std::make_shared<cost::IthemalModel>(uarch);
      const auto& ds = zoo_dataset();
      const std::string path =
          zoo_data_dir() + "/ithemal_" +
          (uarch == cost::MicroArch::Haswell ? "hsw" : "skl") + ".bin";
      const double mape = model->train_or_load(path, ds.block_views(),
                                               ds.label_views(uarch));
      if (mape > 0.0) {
        std::fprintf(stderr,
                     "[model_zoo] trained %s (train MAPE %.1f%%), cached at "
                     "%s\n",
                     model->name().c_str(), mape, path.c_str());
      }
      return model;
    }
  }
  return nullptr;
}

}  // namespace comet::core
