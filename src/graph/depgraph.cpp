#include "graph/depgraph.h"

#include <algorithm>
#include <tuple>

namespace comet::graph {

std::string dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::RAW: return "RAW";
    case DepKind::WAR: return "WAR";
    case DepKind::WAW: return "WAW";
  }
  return "?";
}

namespace {

using x86::InstSemantics;
using x86::Reg;
using x86::RegAccess;

// A single byte-granular register read or write.
struct RegEvent {
  x86::RegFamily family;
  x86::ByteRange range;
};

struct InstEffects {
  std::vector<RegEvent> reg_reads;
  std::vector<RegEvent> reg_writes;
  bool mem_read = false;
  bool mem_write = false;
  std::optional<x86::MemOperand> mem;  // identity of explicit access
  bool stack_read = false;             // implicit stack access (push/pop)
  bool stack_write = false;
  bool flags_read = false;
  bool flags_write = false;
};

InstEffects effects_of(const x86::Instruction& inst) {
  const InstSemantics sem = x86::semantics(inst);
  InstEffects fx;
  for (const RegAccess& a : sem.regs) {
    if (a.read) fx.reg_reads.push_back({a.reg.family, read_range(a.reg)});
    if (a.write) fx.reg_writes.push_back({a.reg.family, write_range(a.reg)});
  }
  if (sem.mem) {
    fx.mem = sem.mem->mem;
    fx.mem_read = sem.mem->read;
    fx.mem_write = sem.mem->write;
  }
  fx.stack_read = sem.stack_mem_read;
  fx.stack_write = sem.stack_mem_write;
  fx.flags_read = sem.reads_flags;
  fx.flags_write = sem.writes_flags;
  return fx;
}

// All families carrying a byte-range conflict between two event sets.
// Returning every family (not just the first) matters for the multigraph:
// two instructions can conflict through several registers at once, and each
// carries its own edge.
std::vector<x86::RegFamily> conflicting_families(
    const std::vector<RegEvent>& earlier, const std::vector<RegEvent>& later) {
  std::vector<x86::RegFamily> out;
  for (const auto& e : earlier) {
    for (const auto& l : later) {
      if (e.family == l.family && e.range.overlaps(l.range)) {
        if (std::find(out.begin(), out.end(), e.family) == out.end()) {
          out.push_back(e.family);
        }
      }
    }
  }
  return out;
}

// Same memory location? Syntactic identity of the address expression
// (ignoring access width), or always-true under conservative aliasing.
bool same_location(const std::optional<x86::MemOperand>& a,
                   const std::optional<x86::MemOperand>& b,
                   bool conservative) {
  if (!a || !b) return false;
  if (conservative) return true;
  return a->base == b->base && a->index == b->index && a->scale == b->scale &&
         a->disp == b->disp;
}

}  // namespace

DepGraph DepGraph::build(const x86::BasicBlock& block,
                         const DepGraphOptions& options) {
  DepGraph g;
  g.num_vertices_ = block.size();

  std::vector<InstEffects> fx;
  fx.reserve(block.size());
  for (const auto& inst : block.instructions) fx.push_back(effects_of(inst));

  // `nearest_only` bookkeeping: once instruction j consumed a hazard of a
  // given (kind, family) from some i, earlier instructions with the same
  // conflict are skipped for j.
  for (std::size_t j = 1; j < block.size(); ++j) {
    std::vector<std::pair<DepKind, x86::RegFamily>> seen;
    const auto already = [&](DepKind k, x86::RegFamily f) {
      return std::find(seen.begin(), seen.end(), std::make_pair(k, f)) !=
             seen.end();
    };
    bool seen_mem[3] = {false, false, false};
    bool seen_flags[3] = {false, false, false};

    for (std::size_t ii = j; ii-- > 0;) {
      const std::size_t i = ii;
      const auto add_reg_edges = [&](DepKind kind,
                                     const std::vector<RegEvent>& earlier,
                                     const std::vector<RegEvent>& later) {
        for (const x86::RegFamily fam :
             conflicting_families(earlier, later)) {
          if (options.nearest_only && already(kind, fam)) continue;
          g.edges_.push_back({i, j, kind, DepResource::Register, fam});
          if (options.nearest_only) seen.emplace_back(kind, fam);
        }
      };
      // RAW: i writes a register that j reads.
      add_reg_edges(DepKind::RAW, fx[i].reg_writes, fx[j].reg_reads);
      // WAR: i reads a register that j writes.
      add_reg_edges(DepKind::WAR, fx[i].reg_reads, fx[j].reg_writes);
      // WAW: both write the same register.
      add_reg_edges(DepKind::WAW, fx[i].reg_writes, fx[j].reg_writes);

      // Memory hazards on the explicit memory operand.
      if (same_location(fx[i].mem, fx[j].mem, options.conservative_memory)) {
        const auto add_mem = [&](DepKind k, bool cond) {
          if (!cond) return;
          const auto ki = static_cast<std::size_t>(k);
          if (options.nearest_only && seen_mem[ki]) return;
          g.edges_.push_back({i, j, k, DepResource::Memory,
                              x86::RegFamily::RAX});
          if (options.nearest_only) seen_mem[ki] = true;
        };
        add_mem(DepKind::RAW, fx[i].mem_write && fx[j].mem_read);
        add_mem(DepKind::WAR, fx[i].mem_read && fx[j].mem_write);
        add_mem(DepKind::WAW, fx[i].mem_write && fx[j].mem_write);
      }

      // Flag hazards (usually excluded; see header).
      if (options.include_flag_deps) {
        const auto add_flags = [&](DepKind k, bool cond) {
          if (!cond) return;
          const auto ki = static_cast<std::size_t>(k);
          if (options.nearest_only && seen_flags[ki]) return;
          g.edges_.push_back({i, j, k, DepResource::Flags,
                              x86::RegFamily::FLAGS});
          if (options.nearest_only) seen_flags[ki] = true;
        };
        add_flags(DepKind::RAW, fx[i].flags_write && fx[j].flags_read);
        add_flags(DepKind::WAR, fx[i].flags_read && fx[j].flags_write);
        add_flags(DepKind::WAW, fx[i].flags_write && fx[j].flags_write);
      }
    }
  }

  // Deterministic order: by (from, to, kind, resource).
  std::sort(g.edges_.begin(), g.edges_.end(), [](const DepEdge& a,
                                                 const DepEdge& b) {
    return std::tie(a.from, a.to, a.kind, a.resource, a.family) <
           std::tie(b.from, b.to, b.kind, b.resource, b.family);
  });
  g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()),
                 g.edges_.end());
  return g;
}

std::vector<DepEdge> DepGraph::edges_of(std::size_t v) const {
  std::vector<DepEdge> out;
  for (const auto& e : edges_) {
    if (e.from == v || e.to == v) out.push_back(e);
  }
  return out;
}

bool DepGraph::has_edge(std::size_t from, std::size_t to, DepKind kind) const {
  for (const auto& e : edges_) {
    if (e.from == from && e.to == to && e.kind == kind) return true;
  }
  return false;
}

std::string DepGraph::to_string() const {
  std::string out;
  for (const auto& e : edges_) {
    out += dep_kind_name(e.kind) + " " + std::to_string(e.from) + " -> " +
           std::to_string(e.to);
    switch (e.resource) {
      case DepResource::Register:
        out += " (reg " + x86::reg_name(x86::Reg{e.family, 64, false}) + ")";
        break;
      case DepResource::Memory: out += " (mem)"; break;
      case DepResource::Flags: out += " (flags)"; break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace comet::graph
