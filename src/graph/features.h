// Block features P̂ (paper Figure 1(iii), Section 5.1) and feature sets.
//
// COMET composes its explanations from three feature types:
//   * an instruction of the block (identified by original position and
//     opcode — "instruction 2: mov"),
//   * a data dependency between two instructions (identified by the
//     positions of its endpoints and the hazard kind),
//   * the number of instructions η of the block.
//
// Features are positional: perturbed blocks carry a mapping from their
// instructions back to original positions (see perturb::PerturbedBlock), so
// "does perturbed block α still contain feature f" — the containment test
// that defines coverage — is well defined even after deletions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "graph/depgraph.h"
#include "x86/instruction.h"

namespace comet::graph {

/// "Instruction at original position `index` has opcode `opcode`."
struct InstFeature {
  std::size_t index = 0;
  x86::Opcode opcode = x86::Opcode::NOP;
  auto operator<=>(const InstFeature&) const = default;
};

/// "A hazard of `kind` exists from original position `from` to `to`."
/// Edges that differ only in carrying resource are collapsed into one
/// feature: the explanation vocabulary names the dependency, not the
/// register that carries it.
struct DepFeature {
  std::size_t from = 0;
  std::size_t to = 0;
  DepKind kind = DepKind::RAW;
  auto operator<=>(const DepFeature&) const = default;
};

/// "The block has exactly `count` instructions."
struct NumInstsFeature {
  std::size_t count = 0;
  auto operator<=>(const NumInstsFeature&) const = default;
};

/// Coarse feature-type tags used in the paper's utility analysis (Figures
/// 2-4): η is coarse-grained; inst and δ are fine-grained.
enum class FeatureType : std::uint8_t { Inst, Dep, NumInsts };

class Feature {
 public:
  Feature() : v_(NumInstsFeature{}) {}
  explicit Feature(InstFeature f) : v_(f) {}
  explicit Feature(DepFeature f) : v_(f) {}
  explicit Feature(NumInstsFeature f) : v_(f) {}

  FeatureType type() const {
    if (std::holds_alternative<InstFeature>(v_)) return FeatureType::Inst;
    if (std::holds_alternative<DepFeature>(v_)) return FeatureType::Dep;
    return FeatureType::NumInsts;
  }
  bool is_inst() const { return type() == FeatureType::Inst; }
  bool is_dep() const { return type() == FeatureType::Dep; }
  bool is_num_insts() const { return type() == FeatureType::NumInsts; }

  const InstFeature& as_inst() const { return std::get<InstFeature>(v_); }
  const DepFeature& as_dep() const { return std::get<DepFeature>(v_); }
  const NumInstsFeature& as_num_insts() const {
    return std::get<NumInstsFeature>(v_);
  }

  /// Short name, e.g. "inst2(mov)", "RAW(1->2)", "eta(3)".
  std::string to_string() const;

  auto operator<=>(const Feature&) const = default;

 private:
  std::variant<InstFeature, DepFeature, NumInstsFeature> v_;
};

/// An ordered, duplicate-free set of features.
class FeatureSet {
 public:
  FeatureSet() = default;
  explicit FeatureSet(std::vector<Feature> features);

  void insert(const Feature& f);
  bool contains(const Feature& f) const;
  bool is_subset_of(const FeatureSet& other) const;
  std::size_t size() const { return features_.size(); }
  bool empty() const { return features_.empty(); }
  const std::vector<Feature>& items() const { return features_; }

  /// Set union.
  FeatureSet with(const Feature& f) const;

  std::string to_string() const;

  bool operator==(const FeatureSet&) const = default;

 private:
  std::vector<Feature> features_;  // kept sorted & unique
};

/// Extract P̂ for a block: one InstFeature per instruction, one DepFeature
/// per distinct (from, to, kind) hazard, and the NumInstsFeature.
FeatureSet extract_features(const x86::BasicBlock& block,
                            const DepGraphOptions& options = {});

}  // namespace comet::graph
