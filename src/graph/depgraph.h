// Dependency multigraph construction (paper Figure 1(a)/(ii), Section 5.1).
//
// A basic block is cast into a multigraph G = (V, E): vertices are the
// block's instructions annotated with their positions, and directed edges
// connect instruction pairs with data-dependency hazards, labeled by hazard
// kind (RAW / WAR / WAW). Multiple edges — including of different kinds —
// may exist between the same pair of vertices (hence multigraph).
//
// Hazards are detected from the catalog access semantics:
//  * register hazards via byte-range overlap within a register family
//    (so `mov rdx, rcx` depends on `add rcx, rax`, and `al`/`ah` do not
//    conflict);
//  * memory hazards between syntactically identical address expressions
//    (the standard basic-block approximation; configurable to treat all
//    memory as may-alias);
//  * flag hazards are modeled but excluded by default — flag-carried edges
//    between nearly every pair of ALU instructions would drown the feature
//    space that explanations are built from (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "x86/instruction.h"

namespace comet::graph {

/// Data-dependency hazard kinds (paper Appendix B).
enum class DepKind : std::uint8_t { RAW, WAR, WAW };

std::string dep_kind_name(DepKind kind);

/// What resource carries the hazard.
enum class DepResource : std::uint8_t { Register, Memory, Flags };

/// One dependency edge: instruction `from` must (partially) order before
/// instruction `to` because of a hazard of kind `kind` on `resource`.
struct DepEdge {
  std::size_t from = 0;  ///< producer/earlier instruction index
  std::size_t to = 0;    ///< consumer/later instruction index
  DepKind kind = DepKind::RAW;
  DepResource resource = DepResource::Register;
  /// For register hazards, the family that carries the dependency.
  x86::RegFamily family = x86::RegFamily::RAX;

  bool operator==(const DepEdge&) const = default;
};

struct DepGraphOptions {
  /// Include flag-carried hazards as edges.
  bool include_flag_deps = false;
  /// Treat any two memory accesses as potentially aliasing (otherwise only
  /// syntactically identical address expressions conflict).
  bool conservative_memory = false;
  /// Only link each consumer to the *nearest* earlier conflicting writer
  /// (classic def-use chains) rather than every earlier conflicting access.
  bool nearest_only = true;
};

/// The dependency multigraph of a basic block.
class DepGraph {
 public:
  DepGraph() = default;

  /// Build the multigraph of `block`. Throws if the block is invalid.
  static DepGraph build(const x86::BasicBlock& block,
                        const DepGraphOptions& options = {});

  std::size_t num_vertices() const { return num_vertices_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  /// Edges incident to vertex `v` (in either direction).
  std::vector<DepEdge> edges_of(std::size_t v) const;

  /// Does an edge from `from` to `to` of `kind` exist (any resource)?
  bool has_edge(std::size_t from, std::size_t to, DepKind kind) const;

  /// Human-readable dump, one edge per line.
  std::string to_string() const;

 private:
  std::size_t num_vertices_ = 0;
  std::vector<DepEdge> edges_;
};

}  // namespace comet::graph
