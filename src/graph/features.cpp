#include "graph/features.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace comet::graph {

std::string Feature::to_string() const {
  switch (type()) {
    case FeatureType::Inst: {
      const auto& f = as_inst();
      return "inst" + std::to_string(f.index + 1) + "(" +
             std::string(x86::mnemonic(f.opcode)) + ")";
    }
    case FeatureType::Dep: {
      const auto& f = as_dep();
      return dep_kind_name(f.kind) + "(" + std::to_string(f.from + 1) +
             "->" + std::to_string(f.to + 1) + ")";
    }
    case FeatureType::NumInsts:
      return "eta(" + std::to_string(as_num_insts().count) + ")";
  }
  return "?";
}

FeatureSet::FeatureSet(std::vector<Feature> features)
    : features_(std::move(features)) {
  std::sort(features_.begin(), features_.end());
  features_.erase(std::unique(features_.begin(), features_.end()),
                  features_.end());
}

void FeatureSet::insert(const Feature& f) {
  const auto it = std::lower_bound(features_.begin(), features_.end(), f);
  if (it != features_.end() && *it == f) return;
  features_.insert(it, f);
}

bool FeatureSet::contains(const Feature& f) const {
  return std::binary_search(features_.begin(), features_.end(), f);
}

bool FeatureSet::is_subset_of(const FeatureSet& other) const {
  return std::includes(other.features_.begin(), other.features_.end(),
                       features_.begin(), features_.end());
}

FeatureSet FeatureSet::with(const Feature& f) const {
  FeatureSet out = *this;
  out.insert(f);
  return out;
}

std::string FeatureSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i) out += ", ";
    out += features_[i].to_string();
  }
  return out + "}";
}

FeatureSet extract_features(const x86::BasicBlock& block,
                            const DepGraphOptions& options) {
  std::vector<Feature> features;
  for (std::size_t i = 0; i < block.size(); ++i) {
    features.push_back(
        Feature(InstFeature{i, block.instructions[i].opcode}));
  }
  const DepGraph g = DepGraph::build(block, options);
  // Hazards of different kinds between the same pair carried by the same
  // resource are perturbation-equivalent: the perturbation algorithm cannot
  // retain one while breaking the other, so as explanation features they are
  // indistinguishable. Collapse each (pair, carrier) group to its strongest
  // kind (RAW > WAW > WAR) to keep the explanation vocabulary identifiable.
  const auto strength = [](DepKind k) {
    switch (k) {
      case DepKind::RAW: return 2;
      case DepKind::WAW: return 1;
      case DepKind::WAR: return 0;
    }
    return 0;
  };
  std::map<std::tuple<std::size_t, std::size_t, DepResource, x86::RegFamily>,
           DepKind>
      strongest;
  for (const auto& e : g.edges()) {
    const auto key = std::make_tuple(e.from, e.to, e.resource, e.family);
    const auto it = strongest.find(key);
    if (it == strongest.end() || strength(e.kind) > strength(it->second)) {
      strongest[key] = e.kind;
    }
  }
  for (const auto& [key, kind] : strongest) {
    features.push_back(
        Feature(DepFeature{std::get<0>(key), std::get<1>(key), kind}));
  }
  features.push_back(Feature(NumInstsFeature{block.size()}));
  return FeatureSet(std::move(features));
}

}  // namespace comet::graph
