// The COMET wire protocol: length-prefixed binary frames for networked
// explanation serving.
//
// Every message on a shard connection is one frame:
//
//   offset  size  field
//   0       4     u32  payload length (little-endian; payload bytes only)
//   4       1     u8   protocol version (kWireVersion)
//   5       1     u8   message type (MessageType)
//   6       2     u16  flags (reserved, must be 0)
//   8       8     u64  request id (client-chosen; echoed by responses)
//   16      4     u32  payload checksum (low 32 bits of FNV-1a 64)
//   20      ...        payload (type-specific, see the codecs below)
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64, so a prediction crosses the wire bit-identically —
// the serving determinism contract (served == sequential, to the last
// bit) survives the network hop.
//
// Threat model: the decode side consumes bytes from remote clients, so it
// is an untrusted-input surface under the PR 8 rules — every bound is
// COMET_CHECK-guarded (a malformed or adversarial frame throws typed
// util::ContractViolation, never crashes, and a forged length field is
// rejected against kMaxPayload *before* any buffer is sized), and
// fuzz/fuzz_wire_protocol.cpp holds a decode→encode→redecode round-trip
// oracle over arbitrary bytes.
//
// FrameAssembler is the streaming half: transports deliver arbitrary byte
// chunks (sockets fragment, SimTransport faults truncate); the assembler
// buffers them and yields complete frames in order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cost/query_stats.h"

namespace comet::net {

/// Current protocol version; bumped on any layout or codec change.
/// v2 added the health-check message pair and the priority/deadline
/// fields on kPredictRequest; v1 frames are rejected at decode with a
/// typed version-mismatch ContractViolation.
inline constexpr std::uint8_t kWireVersion = 2;

/// Fixed frame header size in bytes (the payload follows).
inline constexpr std::size_t kHeaderSize = 20;

/// Hard ceiling on a frame's payload. A length field above this is
/// rejected before any allocation (forged-size defense).
inline constexpr std::size_t kMaxPayload = std::size_t{1} << 24;  // 16 MiB

/// Message types understood by the remote-shard protocol.
enum class MessageType : std::uint8_t {
  kPredictRequest = 1,   ///< client → server: blocks to price
  kPredictResponse = 2,  ///< server → client: predictions, same request id
  kStatsRequest = 3,     ///< client → server: ask for the server ledger
  kStatsResponse = 4,    ///< server → client: cost::QueryStats
  kError = 5,            ///< server → client: typed failure report
  kShutdown = 6,         ///< client → server: close the session gracefully
  kHealthCheck = 7,      ///< client → server: liveness probe (HealthPing)
  kHealthReply = 8,      ///< server → client: probe echo (HealthReply)
};

/// True for every value a conforming peer may put in the type byte.
bool is_valid_message_type(std::uint8_t raw);

/// One decoded frame. Payload bytes are type-specific; use the codecs
/// below to interpret them.
struct Frame {
  std::uint8_t version = kWireVersion;
  MessageType type = MessageType::kError;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serialize `frame` into one contiguous buffer (header + payload).
/// Throws util::ContractViolation if the payload exceeds kMaxPayload.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decode exactly one frame occupying the whole of `bytes`. Bounds,
/// version, type, flags, and checksum are all COMET_CHECK-guarded: any
/// malformed input throws util::ContractViolation.
Frame decode_frame(std::span<const std::uint8_t> bytes);

/// Streaming frame reassembly over a byte-oriented transport. feed()
/// appends whatever chunk the transport produced; poll() yields the next
/// complete frame, nullopt while bytes are missing, and throws
/// util::ContractViolation as soon as the buffered prefix is provably
/// malformed (bad version/type/flags, oversized length, bad checksum).
class FrameAssembler {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  std::optional<Frame> poll();

  /// Bytes buffered but not yet consumed by poll().
  std::size_t buffered() const { return buffer_.size(); }

  /// Discard buffered bytes (call when the underlying connection is
  /// dropped: a partial frame from a dead transport must not prefix the
  /// next connection's stream).
  void reset() { buffer_.clear(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// ------------------------------------------------------------- payloads --
// Each payload codec is a (encode → std::vector<uint8_t>, decode ←
// std::span) pair. Decoders COMET_CHECK every length against the bytes
// actually present and reject trailing garbage.

/// kPredictRequest: the blocks to price, as their canonical text (the
/// same string the memo caches key on, so the server prices exactly what
/// the client would have). v2 prefixes the block list with the traffic
/// class: `priority` selects the serving lane (0 = interactive, 1 =
/// batch; anything else is rejected at decode) and `deadline_ns` is the
/// *remaining* time budget in nanoseconds (relative, because absolute
/// clocks don't agree across hosts; 0 means no deadline). Both fields
/// are advisory scheduling hints — they never change the bits of a
/// completed prediction.
struct PredictRequest {
  static constexpr std::uint8_t kMaxPriority = 1;

  std::uint8_t priority = 0;
  std::uint64_t deadline_ns = 0;
  std::vector<std::string> block_texts;

  friend bool operator==(const PredictRequest&, const PredictRequest&) =
      default;
};

/// kHealthCheck: a liveness probe. The nonce is echoed by the reply so a
/// stale reply from a previous probe can never satisfy the current one.
struct HealthPing {
  std::uint64_t nonce = 0;

  friend bool operator==(const HealthPing&, const HealthPing&) = default;
};

/// kHealthReply: probe echo plus a coarse liveness signal (total predict
/// requests served) so monitors can tell "up and idle" from "up and
/// wedged at zero throughput".
struct HealthReply {
  std::uint64_t nonce = 0;
  std::uint64_t requests_served = 0;

  friend bool operator==(const HealthReply&, const HealthReply&) = default;
};

/// kPredictResponse: one prediction per requested block, in order.
struct PredictResponse {
  std::vector<double> values;

  friend bool operator==(const PredictResponse&, const PredictResponse&) =
      default;
};

/// kError: a server-side failure the client can act on.
struct ErrorBody {
  /// Stable error codes (protocol surface, not an enum so unknown codes
  /// from newer servers stay representable).
  static constexpr std::uint32_t kParseError = 1;    ///< block text rejected
  static constexpr std::uint32_t kBadRequest = 2;    ///< malformed payload
  static constexpr std::uint32_t kInternalError = 3; ///< model failure

  std::uint32_t code = kInternalError;
  std::string message;

  friend bool operator==(const ErrorBody&, const ErrorBody&) = default;
};

std::vector<std::uint8_t> encode_predict_request(const PredictRequest& req);
PredictRequest decode_predict_request(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_predict_response(const PredictResponse& res);
PredictResponse decode_predict_response(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_error(const ErrorBody& error);
ErrorBody decode_error(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_health_ping(const HealthPing& ping);
HealthPing decode_health_ping(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_health_reply(const HealthReply& reply);
HealthReply decode_health_reply(std::span<const std::uint8_t> bytes);

/// kStatsResponse carries a cost::QueryStats ledger (five u64 counters).
std::vector<std::uint8_t> encode_stats(const cost::QueryStats& stats);
cost::QueryStats decode_stats(std::span<const std::uint8_t> bytes);

}  // namespace comet::net
