#include "net/wire.h"

#include <bit>

#include "util/contract.h"
#include "util/rng.h"

namespace comet::net {

namespace {

// Little-endian scalar writers/readers. The reader carries its own cursor
// and COMET_CHECKs every advance, so a truncated or forged payload throws
// before any out-of-range access or oversized allocation.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  COMET_CHECK_MSG(s.size() <= kMaxPayload,
                  "string field too large: " << s.size());
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    require(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(bytes_[pos_]) |
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(bytes_[pos_ + 1])
                                   << 8);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    require(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Decoders reject trailing garbage: a conforming peer never pads.
  void expect_end() const {
    COMET_CHECK_MSG(pos_ == bytes_.size(),
                    "trailing bytes in payload: " << (bytes_.size() - pos_));
  }

 private:
  void require(std::size_t n) const {
    COMET_CHECK_MSG(n <= bytes_.size() - pos_,
                    "payload truncated: need " << n << " bytes, have "
                                               << (bytes_.size() - pos_));
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::uint32_t payload_checksum(std::span<const std::uint8_t> payload) {
  return static_cast<std::uint32_t>(
      util::fnv1a64(payload.data(), payload.size()) & 0xffffffffULL);
}

}  // namespace

bool is_valid_message_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MessageType::kPredictRequest) &&
         raw <= static_cast<std::uint8_t>(MessageType::kHealthReply);
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  COMET_CHECK_MSG(frame.payload.size() <= kMaxPayload,
                  "payload exceeds kMaxPayload: " << frame.payload.size());
  COMET_CHECK(is_valid_message_type(static_cast<std::uint8_t>(frame.type)));
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size());
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u16(out, 0);  // flags, reserved
  put_u64(out, frame.request_id);
  put_u32(out, payload_checksum(frame.payload));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  COMET_CHECK_MSG(bytes.size() >= kHeaderSize,
                  "frame shorter than header: " << bytes.size());
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  COMET_CHECK_MSG(payload_len <= kMaxPayload,
                  "forged payload length: " << payload_len);
  COMET_CHECK_MSG(bytes.size() == kHeaderSize + payload_len,
                  "frame length mismatch: buffer " << bytes.size()
                                                   << ", payload "
                                                   << payload_len);
  Frame frame;
  frame.version = bytes[4];
  const std::uint8_t raw_type = bytes[5];
  COMET_CHECK_MSG(frame.version == kWireVersion,
                  "unsupported wire version: " << int{frame.version});
  COMET_CHECK_MSG(is_valid_message_type(raw_type),
                  "unknown message type: " << int{raw_type});
  frame.type = static_cast<MessageType>(raw_type);
  const std::uint16_t flags = static_cast<std::uint16_t>(
      bytes[6] | (static_cast<std::uint16_t>(bytes[7]) << 8));
  COMET_CHECK_MSG(flags == 0, "reserved flags set: " << flags);
  std::uint64_t request_id = 0;
  for (int i = 0; i < 8; ++i) {
    request_id |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
  }
  frame.request_id = request_id;
  std::uint32_t checksum = 0;
  for (int i = 0; i < 4; ++i) {
    checksum |= static_cast<std::uint32_t>(bytes[16 + i]) << (8 * i);
  }
  const auto payload = bytes.subspan(kHeaderSize);
  COMET_CHECK_MSG(checksum == payload_checksum(payload),
                  "payload checksum mismatch");
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

void FrameAssembler::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameAssembler::poll() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(buffer_[i]) << (8 * i);
  }
  // Fail fast on a provably bad prefix, before waiting for more bytes a
  // malicious length field promises but never sends.
  COMET_CHECK_MSG(payload_len <= kMaxPayload,
                  "forged payload length: " << payload_len);
  if (buffer_.size() >= 6) {
    COMET_CHECK_MSG(buffer_[4] == kWireVersion,
                    "unsupported wire version: " << int{buffer_[4]});
    COMET_CHECK_MSG(is_valid_message_type(buffer_[5]),
                    "unknown message type: " << int{buffer_[5]});
  }
  const std::size_t total = kHeaderSize + payload_len;
  if (buffer_.size() < total) return std::nullopt;
  Frame frame = decode_frame(
      std::span<const std::uint8_t>(buffer_.data(), total));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return frame;
}

// ------------------------------------------------------------- payloads --

std::vector<std::uint8_t> encode_predict_request(const PredictRequest& req) {
  COMET_CHECK_MSG(req.block_texts.size() <= kMaxPayload,
                  "request too large: " << req.block_texts.size());
  COMET_CHECK_MSG(req.priority <= PredictRequest::kMaxPriority,
                  "invalid priority: " << int{req.priority});
  std::vector<std::uint8_t> out;
  put_u8(out, req.priority);
  put_u64(out, req.deadline_ns);
  put_u32(out, static_cast<std::uint32_t>(req.block_texts.size()));
  for (const auto& text : req.block_texts) put_string(out, text);
  return out;
}

PredictRequest decode_predict_request(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  PredictRequest req;
  req.priority = reader.u8();
  COMET_CHECK_MSG(req.priority <= PredictRequest::kMaxPriority,
                  "invalid priority: " << int{req.priority});
  req.deadline_ns = reader.u64();
  const std::uint32_t count = reader.u32();
  // Each block costs at least a 4-byte length; reject forged counts before
  // reserving anything.
  COMET_CHECK_MSG(count <= reader.remaining() / 4,
                  "forged block count: " << count);
  req.block_texts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    req.block_texts.push_back(reader.string());
  }
  reader.expect_end();
  return req;
}

std::vector<std::uint8_t> encode_predict_response(const PredictResponse& res) {
  COMET_CHECK_MSG(res.values.size() <= kMaxPayload / 8,
                  "response too large: " << res.values.size());
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(res.values.size()));
  for (const double v : res.values) put_u64(out, std::bit_cast<std::uint64_t>(v));
  return out;
}

PredictResponse decode_predict_response(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  const std::uint32_t count = reader.u32();
  COMET_CHECK_MSG(count <= reader.remaining() / 8,
                  "forged value count: " << count);
  PredictResponse res;
  res.values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    res.values.push_back(std::bit_cast<double>(reader.u64()));
  }
  reader.expect_end();
  return res;
}

std::vector<std::uint8_t> encode_error(const ErrorBody& error) {
  std::vector<std::uint8_t> out;
  put_u32(out, error.code);
  put_string(out, error.message);
  return out;
}

ErrorBody decode_error(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  ErrorBody error;
  error.code = reader.u32();
  error.message = reader.string();
  reader.expect_end();
  return error;
}

std::vector<std::uint8_t> encode_health_ping(const HealthPing& ping) {
  std::vector<std::uint8_t> out;
  put_u64(out, ping.nonce);
  return out;
}

HealthPing decode_health_ping(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  HealthPing ping;
  ping.nonce = reader.u64();
  reader.expect_end();
  return ping;
}

std::vector<std::uint8_t> encode_health_reply(const HealthReply& reply) {
  std::vector<std::uint8_t> out;
  put_u64(out, reply.nonce);
  put_u64(out, reply.requests_served);
  return out;
}

HealthReply decode_health_reply(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  HealthReply reply;
  reply.nonce = reader.u64();
  reply.requests_served = reader.u64();
  reader.expect_end();
  return reply;
}

std::vector<std::uint8_t> encode_stats(const cost::QueryStats& stats) {
  std::vector<std::uint8_t> out;
  put_u64(out, stats.requested);
  put_u64(out, stats.evaluated);
  put_u64(out, stats.cache_hits);
  put_u64(out, stats.batch_calls);
  put_u64(out, stats.single_calls);
  return out;
}

cost::QueryStats decode_stats(std::span<const std::uint8_t> bytes) {
  Reader reader(bytes);
  cost::QueryStats stats;
  stats.requested = reader.u64();
  stats.evaluated = reader.u64();
  stats.cache_hits = reader.u64();
  stats.batch_calls = reader.u64();
  stats.single_calls = reader.u64();
  reader.expect_end();
  return stats;
}

}  // namespace comet::net
