#include "net/sim_transport.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "obs/clock.h"
#include "util/contract.h"
#include "util/rng.h"
#include "util/sync.h"

namespace comet::net {

namespace {

// One direction of the pair: a byte queue plus the machinery the fault
// kinds need (held chunks for kDelay, a swap slot for kReorder). All
// state is guarded by the channel mutex; senders and receivers may live
// on different threads, and close() may arrive from a third.
struct Channel {
  util::Mutex mutex;
  util::CondVar cv;
  std::deque<std::uint8_t> bytes COMET_GUARDED_BY(mutex);
  bool closed COMET_GUARDED_BY(mutex) = false;
  std::size_t send_index COMET_GUARDED_BY(mutex) = 0;

  struct Held {
    std::vector<std::uint8_t> data;
    std::size_t sends_left;
  };
  std::vector<Held> held COMET_GUARDED_BY(mutex);
  std::optional<std::vector<std::uint8_t>> swap_slot COMET_GUARDED_BY(mutex);

  void enqueue(std::span<const std::uint8_t> chunk) COMET_REQUIRES(mutex) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.end());
  }
};

class SimEndpoint final : public Transport {
 public:
  SimEndpoint(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in,
              FaultSchedule faults)
      : out_(std::move(out)), in_(std::move(in)), faults_(std::move(faults)) {}

  ~SimEndpoint() override { close(); }

  void send(std::span<const std::uint8_t> chunk) override {
    util::MutexLock lock(out_->mutex);
    if (out_->closed) {
      throw DisconnectedError("SimTransport: send on closed connection");
    }
    const Fault fault = faults_.at(out_->send_index++);
    apply(fault, chunk);
    // Release ordering machinery: chunks held by kDelay come due as later
    // sends happen; a kReorder swap slot empties right after the chunk
    // that displaced it.
    if (fault.kind != Fault::Kind::kDelay) {
      for (auto it = out_->held.begin(); it != out_->held.end();) {
        if (--it->sends_left == 0) {
          out_->enqueue(it->data);
          it = out_->held.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (fault.kind != Fault::Kind::kReorder && out_->swap_slot.has_value()) {
      out_->enqueue(*out_->swap_slot);
      out_->swap_slot.reset();
    }
    out_->cv.notify_all();
  }

  std::size_t recv(std::span<std::uint8_t> buf,
                   std::uint64_t timeout_ns) override {
    if (buf.empty()) return 0;
    const obs::Clock& clock = obs::steady_clock();
    const std::uint64_t deadline =
        timeout_ns == kNoTimeout ? 0 : clock.now_ns() + timeout_ns;
    util::MutexLock lock(in_->mutex);
    while (in_->bytes.empty() && !in_->closed) {
      if (timeout_ns == kNoTimeout) {
        // The caller chose kNoTimeout; close() from any thread still
        // wakes this wait.
        // comet-lint: allow(unbounded-wait)
        in_->cv.wait(lock);
        continue;
      }
      const std::uint64_t now = clock.now_ns();
      if (now >= deadline) {
        throw TimeoutError("SimTransport: recv deadline elapsed");
      }
      in_->cv.wait_for_ns(lock, deadline - now);
    }
    if (in_->bytes.empty()) return 0;  // closed and drained: end of stream
    std::size_t n = 0;
    while (n < buf.size() && !in_->bytes.empty()) {
      buf[n++] = in_->bytes.front();
      in_->bytes.pop_front();
    }
    return n;
  }

  void close() override {
    {
      util::MutexLock lock(out_->mutex);
      out_->closed = true;
      out_->cv.notify_all();
    }
    {
      util::MutexLock lock(in_->mutex);
      in_->closed = true;
      in_->cv.notify_all();
    }
  }

 private:
  void apply(const Fault& fault, std::span<const std::uint8_t> chunk)
      COMET_REQUIRES(out_->mutex) {
    switch (fault.kind) {
      case Fault::Kind::kNone:
        out_->enqueue(chunk);
        break;
      case Fault::Kind::kDrop:
        break;
      case Fault::Kind::kTruncate:
        out_->enqueue(chunk.first(std::min(fault.arg, chunk.size())));
        break;
      case Fault::Kind::kDuplicate:
        out_->enqueue(chunk);
        out_->enqueue(chunk);
        break;
      case Fault::Kind::kDelay:
        out_->held.push_back(
            {std::vector<std::uint8_t>(chunk.begin(), chunk.end()),
             std::max<std::size_t>(fault.arg, 1)});
        break;
      case Fault::Kind::kReorder:
        // A second reorder before the first resolved: release the older
        // chunk first so bytes are never silently lost.
        if (out_->swap_slot.has_value()) {
          out_->enqueue(*out_->swap_slot);
        }
        out_->swap_slot =
            std::vector<std::uint8_t>(chunk.begin(), chunk.end());
        break;
      case Fault::Kind::kDisconnectAfter:
        out_->enqueue(chunk.first(std::min(fault.arg, chunk.size())));
        out_->closed = true;
        break;
    }
  }

  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
  FaultSchedule faults_;
};

}  // namespace

FaultSchedule FaultSchedule::seeded(std::uint64_t seed, std::size_t sends,
                                    double fault_rate) {
  COMET_CHECK(fault_rate >= 0.0 && fault_rate <= 1.0);
  util::Rng rng(seed);
  std::vector<Fault> plan(sends);
  for (auto& fault : plan) {
    if (!rng.bernoulli(fault_rate)) continue;
    // kDisconnectAfter is excluded from random sweeps: it kills the
    // direction for good, which would mask the faults planned after it.
    switch (rng.index(5)) {
      case 0: fault = Fault::drop(); break;
      case 1: fault = Fault::truncate(rng.index(24)); break;
      case 2: fault = Fault::duplicate(); break;
      case 3: fault = Fault::delay(1 + rng.index(2)); break;
      default: fault = Fault::reorder(); break;
    }
  }
  return FaultSchedule(std::move(plan));
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_sim_pair(FaultSchedule first_to_second, FaultSchedule second_to_first) {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  auto first = std::make_unique<SimEndpoint>(a_to_b, b_to_a,
                                             std::move(first_to_second));
  auto second = std::make_unique<SimEndpoint>(b_to_a, a_to_b,
                                              std::move(second_to_first));
  return {std::move(first), std::move(second)};
}

}  // namespace comet::net
