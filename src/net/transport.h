// net::Transport: the byte-stream boundary between serving processes.
//
// A Transport is one endpoint of a reliable, ordered, bidirectional byte
// stream — the contract TCP, AF_UNIX sockets, and pipes all provide. The
// wire protocol (net/wire.h) frames messages on top; the serving layer
// (serve::RemoteShardClient / RemoteShardServer) speaks frames only, so
// the same code runs over a real socket (net::SocketTransport) and over
// the deterministic in-process test fabric (net::SimTransport), whose
// fault schedule turns every network failure mode into a reproducible
// unit test.
//
// Error taxonomy — every failure is a typed exception, so callers can
// give each failure mode its documented behavior (timeout → failover,
// disconnect → reconnect, cancel → propagate) instead of string-matching:
//
//   TransportError      base; also: connection setup failures
//   TimeoutError        a deadline elapsed before bytes arrived
//   DisconnectedError   the peer closed / the connection died mid-stream
//   CancelledError      the operation was cancelled locally (see
//                       serve::RemoteShardClient::cancel)
//
// Thread-safety contract: one thread drives send()/recv() at a time (the
// serving layer serializes requests per connection), but close() may be
// called concurrently from any thread — it is the cancellation hook that
// unblocks a pending recv(), and every implementation must support it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace comet::net {

/// Base class for everything that can go wrong on a transport.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A recv (or accept) deadline elapsed before any bytes arrived.
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError(what) {}
};

/// The peer closed or the connection died; no further bytes will flow.
class DisconnectedError : public TransportError {
 public:
  explicit DisconnectedError(const std::string& what)
      : TransportError(what) {}
};

/// The operation was cancelled on this side (never retried or failed
/// over: cancellation is a caller decision, not a fault).
class CancelledError : public TransportError {
 public:
  explicit CancelledError(const std::string& what) : TransportError(what) {}
};

/// recv()/accept() timeout value meaning "block until bytes or EOF".
inline constexpr std::uint64_t kNoTimeout = ~std::uint64_t{0};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Send all of `bytes` (blocking until buffered by the stream). Throws
  /// DisconnectedError if the connection is closed or dies mid-send.
  virtual void send(std::span<const std::uint8_t> bytes) = 0;

  /// Receive up to buf.size() bytes: blocks until at least one byte is
  /// available, returns the count read, or returns 0 on clean end of
  /// stream. Throws TimeoutError when `timeout_ns` elapses first
  /// (kNoTimeout blocks indefinitely), DisconnectedError when the
  /// connection died uncleanly.
  virtual std::size_t recv(std::span<std::uint8_t> buf,
                           std::uint64_t timeout_ns) = 0;

  /// Close both directions. Idempotent; safe to call from any thread — a
  /// concurrent recv() on this endpoint unblocks (EOF or
  /// DisconnectedError) and the peer observes end of stream.
  virtual void close() = 0;
};

}  // namespace comet::net
