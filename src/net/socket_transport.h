// net::SocketTransport: the real-OS-socket implementation of
// net::Transport, for shards and front-ends living in other processes.
//
// Three entry points:
//
//   SocketTransport::make_pair()   a connected AF_UNIX socketpair — the
//                                  in-process/fork IPC shape (each fd can
//                                  be inherited across fork/exec, so one
//                                  end can live in a shard process)
//   UnixListener + connect_unix()  a named AF_UNIX listening socket, the
//                                  same accept/connect topology a TCP
//                                  deployment would use, minus the
//                                  portnumber bookkeeping
//
// Deadlines are implemented with poll(2): recv() and accept() honor
// timeout_ns and throw the same typed errors as every other Transport
// (TimeoutError / DisconnectedError), so the serving layer's failure
// handling is identical over sim and real sockets.
//
// Concurrency: one thread drives send()/recv() at a time, but close() —
// implemented as shutdown(2), with the fd reclaimed only in the
// destructor — may be called from any thread to unblock a pending recv()
// (the cancellation hook serve::RemoteShardClient::cancel relies on).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "net/transport.h"

namespace comet::net {

class SocketTransport final : public Transport {
 public:
  /// Adopts `fd` (a connected stream socket); the destructor closes it.
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  /// A connected AF_UNIX stream socketpair.
  static std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
  make_pair();

  void send(std::span<const std::uint8_t> bytes) override;
  std::size_t recv(std::span<std::uint8_t> buf,
                   std::uint64_t timeout_ns) override;
  void close() override;

 private:
  const int fd_;
  std::atomic<bool> shut_{false};
};

/// A named AF_UNIX listening socket (bound at `path`, unlinked on
/// destruction). accept() blocks up to `timeout_ns` for an inbound
/// connection.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  std::unique_ptr<Transport> accept(std::uint64_t timeout_ns = kNoTimeout);
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_;
};

/// Connect to a UnixListener at `path`. Throws TransportError on failure.
std::unique_ptr<Transport> connect_unix(const std::string& path);

}  // namespace comet::net
