// net::SimTransport: the deterministic in-process network fabric for the
// fault-injection test rig.
//
// make_sim_pair() returns two connected Transport endpoints backed by
// in-memory byte channels. Each direction carries a FaultSchedule — a
// per-send plan of injected failures — so every network pathology the
// remote-shard stack must survive becomes a reproducible unit test
// instead of a flake:
//
//   kDrop               the chunk vanishes (receiver sees nothing → the
//                       waiting peer's deadline fires)
//   kTruncate(n)        only the first n bytes arrive (partial frame →
//                       the assembler stalls, the deadline fires)
//   kDuplicate          the chunk arrives twice (stale-response handling)
//   kDelay(k)           the chunk is held until k further sends occur on
//                       this direction (late responses to dead requests)
//   kReorder            the chunk swaps with the next chunk sent
//   kDisconnectAfter(n) the first n bytes arrive, then the direction dies:
//                       the receiver sees end-of-stream, later sends on
//                       this endpoint throw DisconnectedError
//
// Schedules are either explicit (one Fault per send ordinal — the fault
// matrix tests) or derived deterministically from a seed via util::Rng
// (FaultSchedule::seeded, for randomized sweeps that stay bit-reproducible
// run-to-run: same seed, same faults, same typed outcomes).
//
// Determinism note: SimTransport injects no real latency — kDelay is
// ordering-based (held until later sends), not time-based — so the only
// wall-clock dependence a test has is the recv deadline it chooses, and a
// faulted exchange always resolves to the same typed outcome regardless
// of scheduling jitter (the dropped bytes never arrive, however long the
// wait).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace comet::net {

/// One injected failure, applied to a single send() on a direction.
struct Fault {
  enum class Kind : std::uint8_t {
    kNone,
    kDrop,
    kTruncate,
    kDuplicate,
    kDelay,
    kReorder,
    kDisconnectAfter,
  };

  Kind kind = Kind::kNone;
  /// kTruncate / kDisconnectAfter: bytes delivered before the fault bites.
  /// kDelay: sends to hold the chunk for (at least 1).
  std::size_t arg = 0;

  static Fault none() { return {}; }
  static Fault drop() { return {Kind::kDrop, 0}; }
  static Fault truncate(std::size_t bytes) { return {Kind::kTruncate, bytes}; }
  static Fault duplicate() { return {Kind::kDuplicate, 0}; }
  static Fault delay(std::size_t sends = 1) { return {Kind::kDelay, sends}; }
  static Fault reorder() { return {Kind::kReorder, 0}; }
  static Fault disconnect_after(std::size_t bytes) {
    return {Kind::kDisconnectAfter, bytes};
  }

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// A deterministic per-send fault plan for one direction of a sim pair.
/// Send ordinal i (0-based) suffers per_send[i]; sends past the end of the
/// plan are clean.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<Fault> per_send)
      : per_send_(std::move(per_send)) {}

  /// Pseudo-random schedule over `sends` send ordinals, fully determined
  /// by `seed`: each send independently suffers a fault with probability
  /// `fault_rate`, the kind and argument drawn from the seeded stream.
  /// Same seed → same schedule, every run, every platform.
  static FaultSchedule seeded(std::uint64_t seed, std::size_t sends,
                              double fault_rate = 0.3);

  const Fault& at(std::size_t send_index) const {
    static const Fault kClean{};
    return send_index < per_send_.size() ? per_send_[send_index] : kClean;
  }

  std::size_t planned_sends() const { return per_send_.size(); }

 private:
  std::vector<Fault> per_send_;
};

/// Two connected endpoints: first's sends arrive at second (suffering
/// `first_to_second`), and vice versa. Either endpoint outliving the
/// other is fine — channels are shared and jointly owned.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_sim_pair(FaultSchedule first_to_second = {},
              FaultSchedule second_to_first = {});

}  // namespace comet::net
