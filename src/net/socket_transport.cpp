#include "net/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/contract.h"

namespace comet::net {

namespace {

// timeout_ns → poll(2) milliseconds, rounding up so a 1ns deadline still
// polls (0 would busy-spin through the caller's retry loop).
int poll_timeout_ms(std::uint64_t timeout_ns) {
  if (timeout_ns == kNoTimeout) return -1;
  const std::uint64_t ms = (timeout_ns + 999'999) / 1'000'000;
  constexpr std::uint64_t kMaxPollMs = 1u << 30;
  return static_cast<int>(ms < kMaxPollMs ? ms : kMaxPollMs);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

}  // namespace

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  COMET_CHECK_MSG(fd >= 0, "SocketTransport: invalid fd " << fd);
}

SocketTransport::~SocketTransport() {
  close();
  ::close(fd_);
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
SocketTransport::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {std::make_unique<SocketTransport>(fds[0]),
          std::make_unique<SocketTransport>(fds[1])};
}

void SocketTransport::send(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw DisconnectedError("SocketTransport: peer closed during send");
    }
    throw_errno("SocketTransport: send");
  }
}

std::size_t SocketTransport::recv(std::span<std::uint8_t> buf,
                                  std::uint64_t timeout_ns) {
  if (buf.empty()) return 0;
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, poll_timeout_ms(timeout_ns));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("SocketTransport: poll");
    }
    if (ready == 0) {
      throw TimeoutError("SocketTransport: recv deadline elapsed");
    }
    // poll() above already enforced the deadline; by the time we recv(2),
    // bytes (or EOF) are ready.
    // comet-lint: allow(unbounded-wait)
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // clean end of stream
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      throw DisconnectedError("SocketTransport: connection reset");
    }
    throw_errno("SocketTransport: recv");
  }
}

void SocketTransport::close() {
  // shutdown, not close: the fd stays valid (reclaimed by the destructor),
  // so a concurrent recv() wakes with EOF instead of racing an fd reuse.
  if (!shut_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

UnixListener::UnixListener(const std::string& path) : path_(path), fd_(-1) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  COMET_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("UnixListener: socket");
  ::unlink(path.c_str());  // stale socket file from a dead process
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("UnixListener: bind/listen on " + path);
  }
}

UnixListener::~UnixListener() {
  ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept(std::uint64_t timeout_ns) {
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, poll_timeout_ms(timeout_ns));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("UnixListener: poll");
    }
    if (ready == 0) {
      throw TimeoutError("UnixListener: accept deadline elapsed");
    }
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::make_unique<SocketTransport>(client);
    if (errno == EINTR) continue;
    throw_errno("UnixListener: accept");
  }
}

std::unique_ptr<Transport> connect_unix(const std::string& path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  COMET_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("connect_unix: socket");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect_unix: connect to " + path);
  }
  return std::make_unique<SocketTransport>(fd);
}

}  // namespace comet::net
