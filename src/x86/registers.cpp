#include "x86/registers.h"

#include <stdexcept>
#include <unordered_map>

#include "util/str.h"

namespace comet::x86 {

namespace {

constexpr std::size_t kNumGpr = 16;
constexpr std::size_t kNumVec = 16;

const std::array<std::string_view, kNumGpr> kGpr64 = {
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
const std::array<std::string_view, kNumGpr> kGpr32 = {
    "eax", "ebx", "ecx",  "edx",  "esi",  "edi",  "ebp",  "esp",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"};
const std::array<std::string_view, kNumGpr> kGpr16 = {
    "ax",  "bx",  "cx",   "dx",   "si",   "di",   "bp",   "sp",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"};
const std::array<std::string_view, kNumGpr> kGpr8 = {
    "al",  "bl",  "cl",   "dl",   "sil",  "dil",  "bpl",  "spl",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"};
// High-8 registers exist only for the first four families.
const std::array<std::string_view, 4> kGprHigh8 = {"ah", "bh", "ch", "dh"};

bool is_gpr_family(RegFamily f) {
  return static_cast<int>(f) >= static_cast<int>(RegFamily::RAX) &&
         static_cast<int>(f) <= static_cast<int>(RegFamily::R15);
}

bool is_vec_family(RegFamily f) {
  return static_cast<int>(f) >= static_cast<int>(RegFamily::XMM0) &&
         static_cast<int>(f) <= static_cast<int>(RegFamily::XMM15);
}

std::size_t gpr_index(RegFamily f) {
  return static_cast<std::size_t>(f) - static_cast<std::size_t>(RegFamily::RAX);
}

std::size_t vec_index(RegFamily f) {
  return static_cast<std::size_t>(f) -
         static_cast<std::size_t>(RegFamily::XMM0);
}

}  // namespace

RegClass reg_class(RegFamily family) {
  if (is_gpr_family(family)) return RegClass::Gpr;
  if (is_vec_family(family)) return RegClass::Vec;
  return RegClass::Flags;
}

bool is_stack_family(RegFamily family) {
  return family == RegFamily::RSP || family == RegFamily::RBP;
}

ByteRange read_range(const Reg& r) {
  if (r.high8) return {1, 2};
  return {0, static_cast<std::uint16_t>(r.width_bits / 8)};
}

ByteRange write_range(const Reg& r) {
  if (r.high8) return {1, 2};
  // 32-bit GPR writes zero-extend to 64 bits.
  if (reg_class(r) == RegClass::Gpr && r.width_bits == 32) return {0, 8};
  return {0, static_cast<std::uint16_t>(r.width_bits / 8)};
}

std::string reg_name(const Reg& r) {
  if (r.family == RegFamily::FLAGS) return "flags";
  if (is_vec_family(r.family)) {
    const auto idx = vec_index(r.family);
    const char* prefix = r.width_bits == 256 ? "ymm" : "xmm";
    return std::string(prefix) + std::to_string(idx);
  }
  const auto idx = gpr_index(r.family);
  if (r.high8) {
    if (idx >= kGprHigh8.size()) {
      throw std::invalid_argument("reg_name: no high-8 register in family");
    }
    return std::string(kGprHigh8[idx]);
  }
  switch (r.width_bits) {
    case 64: return std::string(kGpr64[idx]);
    case 32: return std::string(kGpr32[idx]);
    case 16: return std::string(kGpr16[idx]);
    case 8: return std::string(kGpr8[idx]);
    default:
      throw std::invalid_argument("reg_name: invalid GPR width");
  }
}

std::optional<Reg> parse_reg(std::string_view name) {
  static const std::unordered_map<std::string, Reg> kByName = [] {
    std::unordered_map<std::string, Reg> m;
    for (std::size_t i = 0; i < kNumGpr; ++i) {
      const auto fam = static_cast<RegFamily>(i);
      m[std::string(kGpr64[i])] = Reg{fam, 64, false};
      m[std::string(kGpr32[i])] = Reg{fam, 32, false};
      m[std::string(kGpr16[i])] = Reg{fam, 16, false};
      m[std::string(kGpr8[i])] = Reg{fam, 8, false};
    }
    for (std::size_t i = 0; i < kGprHigh8.size(); ++i) {
      m[std::string(kGprHigh8[i])] =
          Reg{static_cast<RegFamily>(i), 8, true};
    }
    for (std::size_t i = 0; i < kNumVec; ++i) {
      const auto fam = static_cast<RegFamily>(
          static_cast<std::size_t>(RegFamily::XMM0) + i);
      m["xmm" + std::to_string(i)] = Reg{fam, 128, false};
      m["ymm" + std::to_string(i)] = Reg{fam, 256, false};
    }
    m["flags"] = flags_reg();
    return m;
  }();
  const auto it = kByName.find(util::to_lower(name));
  if (it == kByName.end()) return std::nullopt;
  return it->second;
}

bool reg_exists(RegFamily family, std::uint16_t width_bits, bool high8) {
  if (family == RegFamily::FLAGS) return width_bits == 64 && !high8;
  if (is_vec_family(family)) {
    return !high8 && (width_bits == 128 || width_bits == 256);
  }
  if (high8) {
    return width_bits == 8 && gpr_index(family) < kGprHigh8.size();
  }
  return width_bits == 8 || width_bits == 16 || width_bits == 32 ||
         width_bits == 64;
}

const std::vector<RegFamily>& gpr_families() {
  static const std::vector<RegFamily> fams = [] {
    std::vector<RegFamily> v;
    for (std::size_t i = 0; i < kNumGpr; ++i) {
      const auto fam = static_cast<RegFamily>(i);
      if (fam != RegFamily::RSP) v.push_back(fam);
    }
    return v;
  }();
  return fams;
}

const std::vector<RegFamily>& substitutable_gpr_families() {
  static const std::vector<RegFamily> fams = [] {
    std::vector<RegFamily> v;
    for (std::size_t i = 0; i < kNumGpr; ++i) {
      const auto fam = static_cast<RegFamily>(i);
      if (!is_stack_family(fam)) v.push_back(fam);
    }
    return v;
  }();
  return fams;
}

const std::vector<RegFamily>& vec_families() {
  static const std::vector<RegFamily> fams = [] {
    std::vector<RegFamily> v;
    for (std::size_t i = 0; i < kNumVec; ++i) {
      v.push_back(static_cast<RegFamily>(
          static_cast<std::size_t>(RegFamily::XMM0) + i));
    }
    return v;
  }();
  return fams;
}

Reg flags_reg() { return Reg{RegFamily::FLAGS, 64, false}; }

}  // namespace comet::x86
