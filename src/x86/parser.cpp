#include "x86/parser.h"

#include <cctype>
#include <charconv>
#include <optional>

#include "util/str.h"

namespace comet::x86 {

namespace {

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = util::trim(s);
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s.front() == '-' || s.front() == '+') {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (util::starts_with(s, "0x") || util::starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
  }
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return neg ? -value : value;
}

// Parse "[base + index*scale + disp]" contents (without the brackets).
MemOperand parse_mem_expr(std::string_view expr) {
  MemOperand mem;
  // Tokenize on +/- while keeping the sign of each term.
  std::vector<std::pair<int, std::string>> terms;  // (sign, term)
  int sign = 1;
  std::string cur;
  for (char c : expr) {
    if (c == '+' || c == '-') {
      if (!util::trim(cur).empty()) {
        terms.emplace_back(sign, std::string(util::trim(cur)));
      }
      sign = c == '-' ? -1 : 1;
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!util::trim(cur).empty()) {
    terms.emplace_back(sign, std::string(util::trim(cur)));
  }
  if (terms.empty()) throw ParseError("empty memory expression");

  for (const auto& [tsign, term] : terms) {
    // index*scale or scale*index
    const auto star = term.find('*');
    if (star != std::string::npos) {
      if (tsign < 0) throw ParseError("negative scaled index: " + term);
      const auto lhs = std::string(util::trim(std::string_view(term).substr(0, star)));
      const auto rhs = std::string(util::trim(std::string_view(term).substr(star + 1)));
      auto reg = parse_reg(lhs);
      auto scale = parse_int(rhs);
      if (!reg) {
        reg = parse_reg(rhs);
        scale = parse_int(lhs);
      }
      if (!reg || !scale) throw ParseError("bad scaled index: " + term);
      if (*scale != 1 && *scale != 2 && *scale != 4 && *scale != 8) {
        throw ParseError("bad scale: " + term);
      }
      if (mem.index) throw ParseError("duplicate index: " + term);
      mem.index = *reg;
      mem.scale = static_cast<std::uint8_t>(*scale);
      continue;
    }
    if (const auto reg = parse_reg(term)) {
      if (tsign < 0) throw ParseError("negative register term: " + term);
      if (!mem.base) {
        mem.base = *reg;
      } else if (!mem.index) {
        mem.index = *reg;
        mem.scale = 1;
      } else {
        throw ParseError("too many registers in memory operand: " + term);
      }
      continue;
    }
    if (const auto value = parse_int(term)) {
      // Checked accumulation: "[rax + 9e18 + 9e18]" must be a ParseError,
      // not signed-overflow UB (found by fuzz_x86_parser under UBSan).
      const std::int64_t signed_term = tsign < 0 ? -*value : *value;
      std::int64_t next_disp = 0;
      if (__builtin_add_overflow(mem.disp, signed_term, &next_disp)) {
        throw ParseError("displacement overflow: " + term);
      }
      mem.disp = next_disp;
      continue;
    }
    throw ParseError("bad memory term: " + term);
  }
  if (mem.base && mem.base->width_bits != 64) {
    throw ParseError("memory base must be a 64-bit register");
  }
  if (mem.index && mem.index->width_bits != 64) {
    throw ParseError("memory index must be a 64-bit register");
  }
  return mem;
}

// Parse one operand; memory size 0 means "infer later".
Operand parse_operand(std::string_view text) {
  text = util::trim(text);
  if (text.empty()) throw ParseError("empty operand");

  // Optional "<size> ptr [ ... ]".
  std::uint16_t mem_size = 0;
  {
    const auto words = util::split_ws(text);
    if (words.size() >= 2 && util::to_lower(words[1]) == "ptr") {
      mem_size = parse_size_keyword(words[0]);
      if (mem_size == 0) throw ParseError("bad size keyword: " + words[0]);
      const auto pos = text.find("ptr");
      text = util::trim(text.substr(pos + 3));
    }
  }
  if (!text.empty() && text.front() == '[') {
    if (text.back() != ']') throw ParseError("unterminated memory operand");
    auto mem = parse_mem_expr(text.substr(1, text.size() - 2));
    mem.size_bits = mem_size;  // possibly 0; fixed up by caller
    return Operand::mem(mem);
  }
  if (mem_size != 0) throw ParseError("size keyword without memory operand");
  if (const auto reg = parse_reg(text)) return Operand::reg(*reg);
  if (const auto value = parse_int(text)) return Operand::imm(*value);
  throw ParseError("unrecognized operand: " + std::string(text));
}

// Infer a missing memory-operand size from sibling register operands or,
// for lea, from the destination register.
void fixup_mem_size(Instruction& inst) {
  for (auto& op : inst.operands) {
    if (!op.is_mem() || op.as_mem().size_bits != 0) continue;
    std::uint16_t inferred = 0;
    if (inst.opcode == Opcode::LEA && !inst.operands.empty() &&
        inst.operands[0].is_reg()) {
      inferred = inst.operands[0].as_reg().width_bits;
    } else {
      for (const auto& other : inst.operands) {
        if (other.is_reg()) {
          inferred = other.as_reg().width_bits;
          break;
        }
      }
      // Scalar FP memory operands take the element width, not 128.
      if (inferred == 128 || inferred == 256) {
        switch (inst.opcode) {
          case Opcode::MOVSS: case Opcode::ADDSS: case Opcode::SUBSS:
          case Opcode::MULSS: case Opcode::DIVSS: case Opcode::SQRTSS:
          case Opcode::MINSS: case Opcode::MAXSS: case Opcode::UCOMISS:
          case Opcode::VMOVSS: case Opcode::VADDSS: case Opcode::VSUBSS:
          case Opcode::VMULSS: case Opcode::VDIVSS: case Opcode::VSQRTSS:
          case Opcode::VFMADD231SS: case Opcode::CVTTSS2SI:
            inferred = 32;
            break;
          case Opcode::MOVSD: case Opcode::ADDSD: case Opcode::SUBSD:
          case Opcode::MULSD: case Opcode::DIVSD: case Opcode::SQRTSD:
          case Opcode::MINSD: case Opcode::MAXSD: case Opcode::UCOMISD:
          case Opcode::VMOVSD: case Opcode::VADDSD: case Opcode::VSUBSD:
          case Opcode::VMULSD: case Opcode::VDIVSD: case Opcode::VSQRTSD:
          case Opcode::VFMADD231SD: case Opcode::CVTTSD2SI:
            inferred = 64;
            break;
          default:
            break;  // packed op: keep the register width
        }
      }
    }
    if (inferred == 0) inferred = 64;
    op.as_mem().size_bits = inferred;
  }
}

}  // namespace

Instruction parse_instruction(std::string_view line) {
  line = util::trim(line);
  if (line.empty()) throw ParseError("empty instruction");

  // Split mnemonic from operand list at the first whitespace.
  std::size_t sp = 0;
  while (sp < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[sp]))) {
    ++sp;
  }
  const auto mn = line.substr(0, sp);
  const auto rest = util::trim(line.substr(sp));

  const auto opcode = parse_opcode(mn);
  if (!opcode) throw ParseError("unknown mnemonic: " + std::string(mn));

  Instruction inst;
  inst.opcode = *opcode;
  if (!rest.empty()) {
    // Split on commas outside brackets.
    std::vector<std::string> parts;
    int depth = 0;
    std::string cur;
    for (char c : rest) {
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == ',' && depth == 0) {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    parts.push_back(cur);
    for (const auto& p : parts) inst.operands.push_back(parse_operand(p));
  }
  fixup_mem_size(inst);
  if (!is_valid(inst)) {
    throw ParseError("instruction does not match any signature: " +
                     inst.to_string());
  }
  return inst;
}

BasicBlock parse_block(std::string_view text) {
  BasicBlock block;
  for (const auto& raw_line : util::split(text, '\n')) {
    std::string_view line = raw_line;
    // Strip comments.
    for (char marker : {';', '#'}) {
      const auto pos = line.find(marker);
      if (pos != std::string_view::npos) line = line.substr(0, pos);
    }
    line = util::trim(line);
    if (line.empty()) continue;
    // Strip a leading "N:"-style listing number.
    {
      std::size_t i = 0;
      while (i < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i > 0 && i < line.size() && line[i] == ':') {
        line = util::trim(line.substr(i + 1));
      }
    }
    if (line.empty()) continue;
    block.instructions.push_back(parse_instruction(line));
  }
  return block;
}

}  // namespace comet::x86
