// Intel-syntax assembly parser for the supported x86-64 subset.
//
// Accepts the syntax used throughout the paper's listings, e.g.
//
//   add rcx, rax
//   mov qword ptr [rdi + 24], rdx
//   lea rax, [rcx + rax - 1]
//   vdivss xmm0, xmm0, xmm6
//
// Memory operands are `[base + index*scale + disp]` with any subset of the
// three terms. A size keyword ("qword ptr") is optional when the width can
// be inferred from a register operand; for `lea` the memory width is taken
// from the destination.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "x86/instruction.h"

namespace comet::x86 {

/// Error thrown on malformed assembly.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse a single instruction line. Throws ParseError.
Instruction parse_instruction(std::string_view line);

/// Parse a multi-line block. Empty lines and ';'/'#'-comments are skipped;
/// leading "N:"-style line numbers (as in the paper's listings) are allowed.
/// Throws ParseError. The result is validated against the catalog.
BasicBlock parse_block(std::string_view text);

}  // namespace comet::x86
