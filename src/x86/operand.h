// Operands of x86 instructions: register, memory reference, or immediate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "x86/registers.h"

namespace comet::x86 {

/// Broad operand kind, used for signature matching during perturbation:
/// an opcode can replace another only if it accepts operands of the same
/// kinds and sizes (Section 5.2 of the paper).
enum class OperandKind : std::uint8_t { Reg, Mem, Imm };

/// Memory reference `[base + index*scale + disp]` with an access size.
struct MemOperand {
  std::optional<Reg> base;   ///< 64-bit GPR if present
  std::optional<Reg> index;  ///< 64-bit GPR if present
  std::uint8_t scale = 1;    ///< 1, 2, 4, or 8
  std::int64_t disp = 0;
  std::uint16_t size_bits = 64;  ///< access width: 8..512

  bool operator==(const MemOperand&) const = default;
};

/// Immediate constant with the width it occupies in the encoding model.
struct ImmOperand {
  std::int64_t value = 0;
  std::uint16_t size_bits = 32;

  bool operator==(const ImmOperand&) const = default;
};

/// An instruction operand.
class Operand {
 public:
  Operand() : v_(ImmOperand{}) {}
  explicit Operand(Reg r) : v_(r) {}
  explicit Operand(MemOperand m) : v_(std::move(m)) {}
  explicit Operand(ImmOperand imm) : v_(imm) {}

  static Operand reg(Reg r) { return Operand(r); }
  static Operand mem(MemOperand m) { return Operand(std::move(m)); }
  static Operand imm(std::int64_t value, std::uint16_t size_bits = 32) {
    return Operand(ImmOperand{value, size_bits});
  }

  OperandKind kind() const {
    if (std::holds_alternative<Reg>(v_)) return OperandKind::Reg;
    if (std::holds_alternative<MemOperand>(v_)) return OperandKind::Mem;
    return OperandKind::Imm;
  }
  bool is_reg() const { return kind() == OperandKind::Reg; }
  bool is_mem() const { return kind() == OperandKind::Mem; }
  bool is_imm() const { return kind() == OperandKind::Imm; }

  const Reg& as_reg() const { return std::get<Reg>(v_); }
  Reg& as_reg() { return std::get<Reg>(v_); }
  const MemOperand& as_mem() const { return std::get<MemOperand>(v_); }
  MemOperand& as_mem() { return std::get<MemOperand>(v_); }
  const ImmOperand& as_imm() const { return std::get<ImmOperand>(v_); }
  ImmOperand& as_imm() { return std::get<ImmOperand>(v_); }

  /// Data width of the operand in bits (register width / memory access
  /// width / immediate width).
  std::uint16_t size_bits() const;

  /// Registers read when this operand is *addressed* (mem base/index).
  std::vector<Reg> address_regs() const;

  /// Intel-syntax rendering ("rax", "qword ptr [rdi + 24]", "80").
  std::string to_string() const;

  bool operator==(const Operand&) const = default;

 private:
  std::variant<Reg, MemOperand, ImmOperand> v_;
};

/// Human-readable size keyword for a memory width ("qword", "dword", ...).
std::string size_keyword(std::uint16_t size_bits);

/// Parse a size keyword; 0 if unknown.
std::uint16_t parse_size_keyword(std::string_view kw);

}  // namespace comet::x86
