// The x86-64 instruction-set catalog.
//
// This is the ISA substrate COMET runs on: for each supported opcode it
// records (a) the operand signatures the opcode accepts — used both to
// validate parsed blocks and to answer the perturbation algorithm's central
// query, "which opcodes could replace this one while keeping the instruction
// valid?" — and (b) the read/write semantics of each operand slot plus any
// implicit register effects, from which the dependency multigraph is built.
//
// The catalog covers a curated 260-opcode subset of x86-64: scalar integer
// ALU/mul/div/shift/bit ops, moves and cmovs, stack push/pop, lea, SSE and
// AVX scalar/packed floating point, packed integer, and FMA. Control-flow
// opcodes (jmp/call/ret) are deliberately absent: COMET operates on basic
// blocks, which contain none by definition.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "x86/operand.h"
#include "x86/registers.h"

namespace comet::x86 {

// X-macro master opcode list. Order defines enum values; keep stable.
#define COMET_X86_OPCODES(X)                                                   \
  /* scalar integer */                                                         \
  X(MOV, mov) X(MOVZX, movzx) X(MOVSX, movsx) X(LEA, lea)                      \
  X(ADD, add) X(SUB, sub) X(ADC, adc) X(SBB, sbb)                              \
  X(AND, and) X(OR, or) X(XOR, xor) X(CMP, cmp) X(TEST, test)                  \
  X(INC, inc) X(DEC, dec) X(NEG, neg) X(NOT, not)                              \
  X(IMUL, imul) X(MUL, mul) X(DIV, div) X(IDIV, idiv)                          \
  X(SHL, shl) X(SHR, shr) X(SAR, sar) X(ROL, rol) X(ROR, ror)                  \
  X(BSWAP, bswap) X(BSF, bsf) X(BSR, bsr)                                      \
  X(POPCNT, popcnt) X(LZCNT, lzcnt) X(TZCNT, tzcnt)                            \
  X(XCHG, xchg) X(PUSH, push) X(POP, pop) X(NOP, nop)                          \
  X(CMOVE, cmove) X(CMOVNE, cmovne) X(CMOVL, cmovl) X(CMOVLE, cmovle)          \
  X(CMOVG, cmovg) X(CMOVGE, cmovge) X(CMOVB, cmovb) X(CMOVA, cmova)            \
  X(CMOVS, cmovs) X(CMOVNS, cmovns)                                            \
  /* SSE scalar floating point */                                              \
  X(MOVSS, movss) X(MOVSD, movsd)                                              \
  X(ADDSS, addss) X(ADDSD, addsd) X(SUBSS, subss) X(SUBSD, subsd)              \
  X(MULSS, mulss) X(MULSD, mulsd) X(DIVSS, divss) X(DIVSD, divsd)              \
  X(SQRTSS, sqrtss) X(SQRTSD, sqrtsd)                                          \
  X(MINSS, minss) X(MAXSS, maxss) X(MINSD, minsd) X(MAXSD, maxsd)              \
  X(UCOMISS, ucomiss) X(UCOMISD, ucomisd)                                      \
  X(CVTSI2SS, cvtsi2ss) X(CVTSI2SD, cvtsi2sd)                                  \
  X(CVTTSS2SI, cvttss2si) X(CVTTSD2SI, cvttsd2si)                              \
  X(RCPSS, rcpss) X(RSQRTSS, rsqrtss)                                          \
  X(CVTSS2SD, cvtss2sd) X(CVTSD2SS, cvtsd2ss)                                  \
  X(COMISS, comiss) X(COMISD, comisd)                                          \
  /* SSE packed */                                                             \
  X(MOVAPS, movaps) X(MOVUPS, movups) X(MOVAPD, movapd) X(MOVUPD, movupd)      \
  X(MOVDQA, movdqa) X(MOVDQU, movdqu)                                          \
  X(ADDPS, addps) X(ADDPD, addpd) X(SUBPS, subps) X(SUBPD, subpd)              \
  X(MULPS, mulps) X(MULPD, mulpd) X(DIVPS, divps) X(DIVPD, divpd)              \
  X(SQRTPS, sqrtps) X(SQRTPD, sqrtpd)                                          \
  X(XORPS, xorps) X(XORPD, xorpd) X(ANDPS, andps) X(ANDPD, andpd)              \
  X(ORPS, orps) X(ORPD, orpd)                                                  \
  X(PXOR, pxor) X(PAND, pand) X(POR, por)                                      \
  X(PADDB, paddb) X(PADDW, paddw) X(PADDD, paddd) X(PADDQ, paddq)              \
  X(PSUBB, psubb) X(PSUBW, psubw) X(PSUBD, psubd) X(PSUBQ, psubq)              \
  X(PMULLW, pmullw) X(PMULLD, pmulld)                                          \
  X(PCMPEQB, pcmpeqb) X(PCMPEQW, pcmpeqw) X(PCMPEQD, pcmpeqd)                  \
  X(PCMPGTB, pcmpgtb) X(PCMPGTW, pcmpgtw) X(PCMPGTD, pcmpgtd)                  \
  X(PMINSD, pminsd) X(PMAXSD, pmaxsd) X(PMINUB, pminub) X(PMAXUB, pmaxub)      \
  X(PAVGB, pavgb) X(PAVGW, pavgw) X(PABSB, pabsb) X(PABSW, pabsw)              \
  X(PABSD, pabsd)                                                              \
  X(MINPS, minps) X(MAXPS, maxps) X(MINPD, minpd) X(MAXPD, maxpd)              \
  X(ANDNPS, andnps) X(ANDNPD, andnpd)                                          \
  X(MOVSLDUP, movsldup) X(MOVSHDUP, movshdup)                                  \
  X(RCPPS, rcpps) X(RSQRTPS, rsqrtps)                                          \
  X(PSHUFD, pshufd) X(SHUFPS, shufps) X(UNPCKLPS, unpcklps)                    \
  /* AVX */                                                                    \
  X(VMOVSS, vmovss) X(VMOVSD, vmovsd)                                          \
  X(VMOVAPS, vmovaps) X(VMOVUPS, vmovups)                                      \
  X(VADDSS, vaddss) X(VADDSD, vaddsd) X(VSUBSS, vsubss) X(VSUBSD, vsubsd)      \
  X(VMULSS, vmulss) X(VMULSD, vmulsd) X(VDIVSS, vdivss) X(VDIVSD, vdivsd)      \
  X(VSQRTSS, vsqrtss) X(VSQRTSD, vsqrtsd)                                      \
  X(VXORPS, vxorps) X(VANDPS, vandps) X(VORPS, vorps)                          \
  X(VADDPS, vaddps) X(VADDPD, vaddpd) X(VSUBPS, vsubps) X(VSUBPD, vsubpd)      \
  X(VMULPS, vmulps) X(VMULPD, vmulpd) X(VDIVPS, vdivps) X(VDIVPD, vdivpd)      \
  X(VRCPSS, vrcpss) X(VRSQRTSS, vrsqrtss)                                      \
  X(VMINSS, vminss) X(VMAXSS, vmaxss) X(VMINSD, vminsd) X(VMAXSD, vmaxsd)      \
  X(VMINPS, vminps) X(VMAXPS, vmaxps) X(VANDNPS, vandnps)                      \
  X(VPADDD, vpaddd) X(VPSUBD, vpsubd) X(VPAND, vpand) X(VPOR, vpor)            \
  X(VPXOR, vpxor) X(VPCMPEQD, vpcmpeqd) X(VPMINSD, vpminsd)                    \
  X(VPMAXSD, vpmaxsd)                                                          \
  X(VFMADD231SS, vfmadd231ss) X(VFMADD231SD, vfmadd231sd)                      \
  X(VFMADD231PS, vfmadd231ps) X(VFMADD231PD, vfmadd231pd)                      \
  /* flag consumers, BMI, misc integer */                                      \
  X(SETE, sete) X(SETNE, setne) X(SETL, setl) X(SETLE, setle)                  \
  X(SETG, setg) X(SETGE, setge) X(SETB, setb) X(SETA, seta)                    \
  X(SETS, sets) X(SETNS, setns)                                                \
  X(CMOVBE, cmovbe) X(CMOVAE, cmovae) X(CMOVO, cmovo) X(CMOVNO, cmovno)        \
  X(CMOVP, cmovp) X(CMOVNP, cmovnp)                                            \
  X(MOVBE, movbe) X(XADD, xadd) X(CDQ, cdq) X(CQO, cqo)                        \
  X(ANDN, andn) X(BLSI, blsi) X(BLSR, blsr) X(BLSMSK, blsmsk)                  \
  X(SHLX, shlx) X(SHRX, shrx) X(SARX, sarx) X(RORX, rorx)                      \
  /* SSE/AVX data movement & conversion */                                     \
  X(MOVD, movd) X(MOVQ, movq)                                                  \
  X(CVTPS2PD, cvtps2pd) X(CVTPD2PS, cvtpd2ps)                                  \
  X(CVTDQ2PS, cvtdq2ps) X(CVTPS2DQ, cvtps2dq)                                  \
  X(PMOVMSKB, pmovmskb) X(PTEST, ptest)                                        \
  /* packed shifts & horizontal ops */                                         \
  X(PSLLW, psllw) X(PSLLD, pslld) X(PSLLQ, psllq)                              \
  X(PSRLW, psrlw) X(PSRLD, psrld) X(PSRLQ, psrlq)                              \
  X(HADDPS, haddps) X(HADDPD, haddpd) X(PHADDW, phaddw) X(PHADDD, phaddd)      \
  /* AVX2 integer, broadcasts, lane ops, more FMA forms */                     \
  X(VMOVDQA, vmovdqa) X(VMOVDQU, vmovdqu)                                      \
  X(VPADDB, vpaddb) X(VPADDW, vpaddw) X(VPADDQ, vpaddq)                        \
  X(VPSUBB, vpsubb) X(VPSUBW, vpsubw) X(VPSUBQ, vpsubq)                        \
  X(VPMULLW, vpmullw) X(VPMULLD, vpmulld)                                      \
  X(VPCMPGTD, vpcmpgtd) X(VPMINUB, vpminub) X(VPMAXUB, vpmaxub)                \
  X(VPABSD, vpabsd) X(VPAVGB, vpavgb)                                          \
  X(VBROADCASTSS, vbroadcastss) X(VPBROADCASTD, vpbroadcastd)                  \
  X(VPSHUFD, vpshufd) X(VSHUFPS, vshufps) X(VUNPCKLPS, vunpcklps)              \
  X(VPERM2F128, vperm2f128) X(VINSERTF128, vinsertf128)                        \
  X(VEXTRACTF128, vextractf128)                                                \
  X(VFMADD132SS, vfmadd132ss) X(VFMADD213SS, vfmadd213ss)                      \
  X(VFMADD132SD, vfmadd132sd) X(VFMADD213SD, vfmadd213sd)                      \
  X(VFNMADD231SS, vfnmadd231ss) X(VFMSUB231SS, vfmsub231ss)                    \
  X(VFMADD132PS, vfmadd132ps) X(VFMADD213PS, vfmadd213ps)

enum class Opcode : std::uint16_t {
#define COMET_X86_ENUM(name, mnemonic) name,
  COMET_X86_OPCODES(COMET_X86_ENUM)
#undef COMET_X86_ENUM
      kCount,
};

constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::kCount);

/// Broad semantic class of an opcode; used by the cost models (per-class
/// default costs), the simulators (port binding), and the block generator.
enum class OpClass : std::uint8_t {
  Mov,        // register/memory data movement (int)
  IntAlu,     // add/sub/logic/inc/dec/cmp/test/neg/not/cmov/bit scans
  IntMul,     // imul/mul
  IntDiv,     // div/idiv
  Lea,        // address computation; memory operand is address-only
  Shift,      // shl/shr/sar/rol/ror
  Stack,      // push/pop
  Nop,
  FpMov,      // movss/movaps/... (scalar & packed moves)
  FpAdd,      // FP add/sub/min/max/compare
  FpMul,      // FP multiply
  FpDiv,      // FP divide / sqrt
  FpFma,      // fused multiply-add
  VecInt,     // packed integer ALU
  VecIntMul,  // packed integer multiply
  Shuffle,    // pshufd/shufps/unpck
  Convert,    // int<->fp conversions
};

/// Human-readable name of an opcode class ("IntDiv", "FpAdd", ...).
std::string_view op_class_name(OpClass cls);

// Operand access bits.
inline constexpr std::uint8_t kRead = 1;
inline constexpr std::uint8_t kWrite = 2;

// Operand-kind bitmask values for signature slots.
inline constexpr std::uint8_t kKindReg = 1;
inline constexpr std::uint8_t kKindMem = 2;
inline constexpr std::uint8_t kKindImm = 4;

/// Bit for a given operand width in a size mask (8->1, 16->2, ..., 256->32).
constexpr std::uint32_t size_bit(std::uint16_t bits) {
  switch (bits) {
    case 8: return 1u << 0;
    case 16: return 1u << 1;
    case 32: return 1u << 2;
    case 64: return 1u << 3;
    case 128: return 1u << 4;
    case 256: return 1u << 5;
    case 512: return 1u << 6;
    default: return 0;
  }
}

/// One operand slot of a signature.
struct OpSpec {
  std::uint8_t kinds = 0;    ///< bitmask of kKind*
  std::uint32_t sizes = 0;   ///< bitmask of size_bit(...)
  std::uint8_t access = 0;   ///< kRead | kWrite
  /// If set, a register operand must belong to this family (e.g. `cl`
  /// shift counts must be RCX).
  std::optional<RegFamily> fixed_family;
  /// Register class a register operand must have.
  RegClass reg_cls = RegClass::Gpr;
};

/// Width rule for an implicit register effect.
struct ImplicitReg {
  RegFamily family;
  std::uint16_t fixed_width;  ///< 0 => use the width of operand 0
  bool read = false;
  bool write = false;
};

/// A full operand signature for one form of an opcode.
struct Signature {
  std::vector<OpSpec> slots;
  /// All reg/mem slots must share the same width (standard 2-op int ALU).
  bool same_width = false;
  /// Source (slot 1) must be strictly narrower than destination (movzx).
  bool src_smaller = false;
  /// Implicit register effects of this form (e.g. 1-operand imul/div).
  std::vector<ImplicitReg> implicit;
};

/// Catalog record for one opcode.
struct OpcodeInfo {
  Opcode op;
  std::string_view mnemonic;
  OpClass cls;
  std::vector<Signature> signatures;
  bool reads_flags = false;
  bool writes_flags = false;
  /// Memory operand is only an address computation (lea): no memory access.
  bool address_only_mem = false;
  /// Implicit stack memory access (push/pop).
  bool stack_mem_read = false;
  bool stack_mem_write = false;
};

/// Catalog access. Info for every opcode is built once at startup.
const OpcodeInfo& info(Opcode op);
std::string_view mnemonic(Opcode op);
std::optional<Opcode> parse_opcode(std::string_view mnemonic);
std::span<const Opcode> all_opcodes();

/// Does `sig` accept the given concrete operands?
bool matches(const Signature& sig, std::span<const Operand> operands);

/// First signature of `op` matching `operands`, or nullptr.
const Signature* find_signature(Opcode op, std::span<const Operand> operands);

/// All opcodes other than `op` that accept `operands` (the perturbation
/// algorithm's opcode-replacement candidate set). Respects the paper's
/// lea special case: an address-only-memory opcode is never interchangeable
/// with a real memory access, so lea has no replacement candidates and is
/// never offered as one when the instruction has a memory operand.
std::vector<Opcode> replacement_opcodes(Opcode op,
                                        std::span<const Operand> operands);

}  // namespace comet::x86
