// x86-64 register model.
//
// A register is a (family, width, high8) triple: `eax` is {RAX, 32, false},
// `ah` is {RAX, 8, true}. This representation makes sub-register aliasing
// (the thing dependency analysis actually needs) a byte-range intersection
// test instead of a 100-entry alias table, and makes "rename this operand to
// another register of the same type and size" (the thing the perturbation
// algorithm Γ needs) a family substitution.
//
// Width semantics follow hardware: a 32-bit GPR write zeroes the upper half
// of the 64-bit register, so for dependency purposes a 32-bit write covers
// bytes [0, 8). 8/16-bit writes are partial (they merge with the old value);
// the dependency graph treats them as covering only their own bytes, which
// is the standard approximation used by basic-block cost models.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace comet::x86 {

/// Register families. A family is the full architectural register; the
/// addressable sub-registers are (family, width) pairs.
enum class RegFamily : std::uint8_t {
  RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP,
  R8, R9, R10, R11, R12, R13, R14, R15,
  XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7,
  XMM8, XMM9, XMM10, XMM11, XMM12, XMM13, XMM14, XMM15,
  FLAGS,
  kCount,
};

/// Broad register class: general-purpose, vector, or the flags pseudo-reg.
enum class RegClass : std::uint8_t { Gpr, Vec, Flags };

/// A concrete architectural register (possibly a sub-register).
struct Reg {
  RegFamily family = RegFamily::RAX;
  std::uint16_t width_bits = 64;  ///< 8, 16, 32, 64 (GPR); 128, 256 (vec)
  bool high8 = false;             ///< true only for ah/bh/ch/dh

  auto operator<=>(const Reg&) const = default;
};

/// Class of a family.
RegClass reg_class(RegFamily family);
inline RegClass reg_class(const Reg& r) { return reg_class(r.family); }

/// True for rsp/rbp families (excluded from random operand pools so
/// perturbations do not fabricate stack corruption semantics).
bool is_stack_family(RegFamily family);

/// Byte range [begin, end) that reading `r` covers within its family.
struct ByteRange {
  std::uint16_t begin = 0;
  std::uint16_t end = 0;
  bool overlaps(const ByteRange& o) const {
    return begin < o.end && o.begin < end;
  }
};
ByteRange read_range(const Reg& r);

/// Byte range a *write* to `r` covers. Differs from read_range only for
/// 32-bit GPR writes, which zero-extend and therefore cover the full 8 bytes.
ByteRange write_range(const Reg& r);

/// Canonical Intel-syntax name ("rax", "eax", "ah", "xmm3", ...).
std::string reg_name(const Reg& r);

/// Parse an Intel-syntax register name; nullopt if not a register.
std::optional<Reg> parse_reg(std::string_view name);

/// Whether (family, width, high8) designates a register that exists.
bool reg_exists(RegFamily family, std::uint16_t width_bits, bool high8);

/// All GPR families usable as general operands (excludes RSP; includes RBP).
const std::vector<RegFamily>& gpr_families();

/// GPR families safe for random substitution (excludes RSP and RBP).
const std::vector<RegFamily>& substitutable_gpr_families();

/// All vector families xmm0..xmm15.
const std::vector<RegFamily>& vec_families();

/// The flags pseudo-register.
Reg flags_reg();

}  // namespace comet::x86
