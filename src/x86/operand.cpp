#include "x86/operand.h"

#include <stdexcept>

#include "util/str.h"

namespace comet::x86 {

std::uint16_t Operand::size_bits() const {
  switch (kind()) {
    case OperandKind::Reg: return as_reg().width_bits;
    case OperandKind::Mem: return as_mem().size_bits;
    case OperandKind::Imm: return as_imm().size_bits;
  }
  return 0;
}

std::vector<Reg> Operand::address_regs() const {
  std::vector<Reg> out;
  if (!is_mem()) return out;
  const auto& m = as_mem();
  if (m.base) out.push_back(*m.base);
  if (m.index) out.push_back(*m.index);
  return out;
}

std::string Operand::to_string() const {
  switch (kind()) {
    case OperandKind::Reg:
      return reg_name(as_reg());
    case OperandKind::Imm:
      return std::to_string(as_imm().value);
    case OperandKind::Mem: {
      const auto& m = as_mem();
      std::string expr;
      if (m.base) expr += reg_name(*m.base);
      if (m.index) {
        if (!expr.empty()) expr += " + ";
        expr += reg_name(*m.index);
        if (m.scale != 1) {
          // Appended in two steps: GCC 12's -Wrestrict false-fires on the
          // temporary from `"*" + std::to_string(...)` (PR105651).
          expr += '*';
          expr += std::to_string(int(m.scale));
        }
      }
      if (m.disp != 0 || expr.empty()) {
        if (expr.empty()) {
          expr += std::to_string(m.disp);
        } else if (m.disp >= 0) {
          expr += " + " + std::to_string(m.disp);
        } else {
          expr += " - " + std::to_string(-m.disp);
        }
      }
      return size_keyword(m.size_bits) + " ptr [" + expr + "]";
    }
  }
  return "";
}

std::string size_keyword(std::uint16_t size_bits) {
  switch (size_bits) {
    case 8: return "byte";
    case 16: return "word";
    case 32: return "dword";
    case 64: return "qword";
    case 128: return "xmmword";
    case 256: return "ymmword";
    case 512: return "zmmword";
    default:
      throw std::invalid_argument("size_keyword: bad size " +
                                  std::to_string(size_bits));
  }
}

std::uint16_t parse_size_keyword(std::string_view kw) {
  const auto s = util::to_lower(kw);
  if (s == "byte") return 8;
  if (s == "word") return 16;
  if (s == "dword") return 32;
  if (s == "qword") return 64;
  if (s == "xmmword" || s == "oword") return 128;
  if (s == "ymmword") return 256;
  if (s == "zmmword") return 512;
  return 0;
}

}  // namespace comet::x86
