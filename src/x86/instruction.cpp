#include "x86/instruction.h"

#include <stdexcept>

namespace comet::x86 {

std::string Instruction::to_string() const {
  std::string out{mnemonic(opcode)};
  for (std::size_t i = 0; i < operands.size(); ++i) {
    out += (i == 0 ? " " : ", ");
    out += operands[i].to_string();
  }
  return out;
}

std::string BasicBlock::to_string() const {
  std::string out;
  for (const auto& inst : instructions) {
    out += inst.to_string();
    out += '\n';
  }
  return out;
}

namespace {

void merge_reg_access(std::vector<RegAccess>& regs, Reg r, bool read,
                      bool write) {
  for (auto& a : regs) {
    if (a.reg == r) {
      a.read |= read;
      a.write |= write;
      return;
    }
  }
  regs.push_back(RegAccess{r, read, write});
}

}  // namespace

InstSemantics semantics(const Instruction& inst) {
  const auto& inf = info(inst.opcode);
  const Signature* sig = find_signature(inst.opcode, inst.operands);
  if (sig == nullptr) {
    throw std::invalid_argument("semantics: invalid instruction: " +
                                inst.to_string());
  }
  InstSemantics out;
  out.reads_flags = inf.reads_flags;
  out.writes_flags = inf.writes_flags;
  out.stack_mem_read = inf.stack_mem_read;
  out.stack_mem_write = inf.stack_mem_write;

  for (std::size_t i = 0; i < inst.operands.size(); ++i) {
    const auto& op = inst.operands[i];
    const auto access = sig->slots[i].access;
    const bool rd = (access & kRead) != 0;
    const bool wr = (access & kWrite) != 0;
    switch (op.kind()) {
      case OperandKind::Reg:
        merge_reg_access(out.regs, op.as_reg(), rd, wr);
        break;
      case OperandKind::Mem: {
        // Address registers are always read, even for stores.
        for (const auto& r : op.address_regs()) {
          merge_reg_access(out.regs, r, true, false);
        }
        if (!inf.address_only_mem && (rd || wr)) {
          out.mem = MemAccess{op.as_mem(), rd, wr};
        }
        break;
      }
      case OperandKind::Imm:
        break;
    }
  }

  const std::uint16_t op0_width =
      inst.operands.empty() ? 64 : inst.operands[0].size_bits();
  for (const auto& imp : sig->implicit) {
    const std::uint16_t w = imp.fixed_width ? imp.fixed_width : op0_width;
    merge_reg_access(out.regs, Reg{imp.family, w, false}, imp.read, imp.write);
  }
  return out;
}

bool is_valid(const Instruction& inst) {
  return find_signature(inst.opcode, inst.operands) != nullptr;
}

bool is_valid(const BasicBlock& block) {
  for (const auto& inst : block.instructions) {
    if (!is_valid(inst)) return false;
  }
  return true;
}

}  // namespace comet::x86
