// Instructions and basic blocks, plus per-instruction access semantics
// (the read/write sets the dependency multigraph is computed from).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "x86/isa.h"
#include "x86/operand.h"

namespace comet::x86 {

/// One assembly instruction: an opcode plus concrete operands.
struct Instruction {
  Opcode opcode = Opcode::NOP;
  std::vector<Operand> operands;

  /// Intel-syntax rendering ("add rcx, rax").
  std::string to_string() const;

  bool operator==(const Instruction&) const = default;
};

/// A basic block: a straight-line instruction sequence (no control flow).
struct BasicBlock {
  std::vector<Instruction> instructions;

  std::size_t size() const { return instructions.size(); }
  bool empty() const { return instructions.empty(); }

  /// Multi-line Intel-syntax rendering, one instruction per line.
  std::string to_string() const;

  bool operator==(const BasicBlock&) const = default;
};

/// One register access performed by an instruction.
struct RegAccess {
  Reg reg;
  bool read = false;
  bool write = false;
};

/// Explicit-memory access performed by an instruction (at most one memory
/// operand exists per instruction in this ISA subset).
struct MemAccess {
  MemOperand mem;
  bool read = false;
  bool write = false;
};

/// Full access semantics of one instruction, derived from the catalog:
/// register reads/writes (explicit operands, memory addressing registers,
/// and implicit registers), the explicit memory access if any, implicit
/// stack memory effects, and flags effects.
struct InstSemantics {
  std::vector<RegAccess> regs;
  std::optional<MemAccess> mem;
  bool stack_mem_read = false;
  bool stack_mem_write = false;
  bool reads_flags = false;
  bool writes_flags = false;
};

/// Compute the access semantics of `inst`. Throws std::invalid_argument if
/// the instruction does not match any catalog signature.
InstSemantics semantics(const Instruction& inst);

/// Is the instruction valid per the catalog (opcode accepts the operands)?
bool is_valid(const Instruction& inst);

/// Are all instructions in the block valid?
bool is_valid(const BasicBlock& block);

}  // namespace comet::x86
