#include "x86/isa.h"

#include <array>
#include <stdexcept>
#include <unordered_map>

#include "util/str.h"

namespace comet::x86 {

namespace {

// ---- size mask shorthands -------------------------------------------------
constexpr std::uint32_t S8 = size_bit(8);
constexpr std::uint32_t S16 = size_bit(16);
constexpr std::uint32_t S32 = size_bit(32);
constexpr std::uint32_t S64 = size_bit(64);
constexpr std::uint32_t S128 = size_bit(128);
constexpr std::uint32_t S256 = size_bit(256);
constexpr std::uint32_t GALL = S8 | S16 | S32 | S64;   // any GPR width
constexpr std::uint32_t GW = S16 | S32 | S64;          // word+ GPR widths

// ---- OpSpec builders --------------------------------------------------------
OpSpec r(std::uint32_t sizes, std::uint8_t access) {
  return OpSpec{kKindReg, sizes, access, std::nullopt, RegClass::Gpr};
}
OpSpec m(std::uint32_t sizes, std::uint8_t access) {
  return OpSpec{kKindMem, sizes, access, std::nullopt, RegClass::Gpr};
}
OpSpec rm(std::uint32_t sizes, std::uint8_t access) {
  return OpSpec{static_cast<std::uint8_t>(kKindReg | kKindMem), sizes, access,
                std::nullopt, RegClass::Gpr};
}
OpSpec im(std::uint32_t sizes) {
  return OpSpec{kKindImm, sizes, kRead, std::nullopt, RegClass::Gpr};
}
OpSpec x(std::uint8_t access) {
  return OpSpec{kKindReg, S128, access, std::nullopt, RegClass::Vec};
}
OpSpec y(std::uint8_t access) {
  return OpSpec{kKindReg, S256, access, std::nullopt, RegClass::Vec};
}
OpSpec cl_count() {
  return OpSpec{kKindReg, S8, kRead, RegFamily::RCX, RegClass::Gpr};
}

Signature sig(std::vector<OpSpec> slots, bool same_width = false) {
  Signature s;
  s.slots = std::move(slots);
  s.same_width = same_width;
  return s;
}

// ---- common signature families ---------------------------------------------

// Two-operand integer ALU: op r/m, r/m/imm (no mem,mem), fixed access on dst.
std::vector<Signature> int2(std::uint8_t dst_access,
                            std::uint8_t src_access = kRead) {
  return {
      sig({r(GALL, dst_access), r(GALL, src_access)}, /*same_width=*/true),
      sig({r(GALL, dst_access), m(GALL, src_access)}, true),
      sig({m(GALL, dst_access), r(GALL, src_access)}, true),
      sig({r(GALL, dst_access), im(S8 | S16 | S32)}),
      sig({m(GALL, dst_access), im(S8 | S16 | S32)}),
  };
}

// One-operand integer read-modify-write (inc/dec/neg/not).
std::vector<Signature> int1rw() { return {sig({rm(GALL, kRead | kWrite)})}; }

// mul/div family: one r/m source, implicit RAX/RDX effects.
std::vector<Signature> muldiv(bool reads_rdx) {
  Signature s = sig({rm(GALL, kRead)});
  s.implicit = {
      ImplicitReg{RegFamily::RAX, 0, true, true},
      ImplicitReg{RegFamily::RDX, 0, reads_rdx, true},
  };
  return {s};
}

// Shifts/rotates: dst r/m RW, count imm8 or cl.
std::vector<Signature> shift() {
  return {
      sig({rm(GALL, kRead | kWrite), im(S8)}),
      sig({rm(GALL, kRead | kWrite), cl_count()}),
  };
}

// Bit scans / counts: r <- r/m, word+ widths.
std::vector<Signature> bitscan() {
  return {sig({r(GW, kWrite), rm(GW, kRead)}, true)};
}

// cmovcc: r <- r/m, word+ widths, dst conditionally written (treated RW).
std::vector<Signature> cmov() {
  return {sig({r(GW, kRead | kWrite), rm(GW, kRead)}, true)};
}

// SSE scalar FP, 2-operand read-modify-write: op xmm, xmm/m<bits>.
std::vector<Signature> sse_scalar_rw(std::uint16_t mem_bits) {
  return {
      sig({x(kRead | kWrite), x(kRead)}),
      sig({x(kRead | kWrite), m(size_bit(mem_bits), kRead)}),
  };
}

// SSE scalar with write-only destination (sqrtss, cvttss2si variants built
// separately).
std::vector<Signature> sse_scalar_w(std::uint16_t mem_bits) {
  return {
      sig({x(kWrite), x(kRead)}),
      sig({x(kWrite), m(size_bit(mem_bits), kRead)}),
  };
}

// SSE scalar move: load/store/reg-reg.
std::vector<Signature> sse_scalar_mov(std::uint16_t mem_bits) {
  return {
      sig({x(kWrite), x(kRead)}),
      sig({x(kWrite), m(size_bit(mem_bits), kRead)}),
      sig({m(size_bit(mem_bits), kWrite), x(kRead)}),
  };
}

// SSE packed move (128-bit).
std::vector<Signature> sse_packed_mov() {
  return {
      sig({x(kWrite), x(kRead)}),
      sig({x(kWrite), m(S128, kRead)}),
      sig({m(S128, kWrite), x(kRead)}),
  };
}

// SSE packed ALU: op xmm, xmm/m128 (read-modify-write destination).
std::vector<Signature> sse_packed_rw() {
  return {
      sig({x(kRead | kWrite), x(kRead)}),
      sig({x(kRead | kWrite), m(S128, kRead)}),
  };
}

// SSE packed with write-only destination (sqrtps).
std::vector<Signature> sse_packed_w() {
  return {
      sig({x(kWrite), x(kRead)}),
      sig({x(kWrite), m(S128, kRead)}),
  };
}

// FP compare: reads both, writes flags.
std::vector<Signature> fp_compare(std::uint16_t mem_bits) {
  return {
      sig({x(kRead), x(kRead)}),
      sig({x(kRead), m(size_bit(mem_bits), kRead)}),
  };
}

// AVX 3-operand scalar: vop xmm, xmm, xmm/m<bits>.
std::vector<Signature> avx3_scalar(std::uint16_t mem_bits,
                                   std::uint8_t dst_access = kWrite) {
  return {
      sig({x(dst_access), x(kRead), x(kRead)}),
      sig({x(dst_access), x(kRead), m(size_bit(mem_bits), kRead)}),
  };
}

// AVX 3-operand packed: xmm and ymm forms.
std::vector<Signature> avx3_packed(std::uint8_t dst_access = kWrite) {
  return {
      sig({x(dst_access), x(kRead), x(kRead)}),
      sig({x(dst_access), x(kRead), m(S128, kRead)}),
      sig({y(dst_access), y(kRead), y(kRead)}),
      sig({y(dst_access), y(kRead), m(S256, kRead)}),
  };
}

// AVX packed move: xmm and ymm forms.
std::vector<Signature> avx_packed_mov() {
  return {
      sig({x(kWrite), x(kRead)}),
      sig({x(kWrite), m(S128, kRead)}),
      sig({m(S128, kWrite), x(kRead)}),
      sig({y(kWrite), y(kRead)}),
      sig({y(kWrite), m(S256, kRead)}),
      sig({m(S256, kWrite), y(kRead)}),
  };
}

// ---- catalog construction ----------------------------------------------------

struct CatalogBuilder {
  std::array<OpcodeInfo, kNumOpcodes> infos;

  OpcodeInfo& at(Opcode op) { return infos[static_cast<std::size_t>(op)]; }

  void set(Opcode op, OpClass cls, std::vector<Signature> sigs) {
    auto& e = at(op);
    e.op = op;
    e.cls = cls;
    e.signatures = std::move(sigs);
  }

  void flags(Opcode op, bool reads, bool writes) {
    at(op).reads_flags = reads;
    at(op).writes_flags = writes;
  }
};

std::array<OpcodeInfo, kNumOpcodes> build_catalog() {
  CatalogBuilder b;

  // Mnemonics first so every entry has one even if set() is missed.
  static constexpr std::array<std::string_view, kNumOpcodes> kMnemonics = {
#define COMET_X86_MNEMONIC(name, mnemonic) #mnemonic,
      COMET_X86_OPCODES(COMET_X86_MNEMONIC)
#undef COMET_X86_MNEMONIC
  };
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    b.infos[i].op = static_cast<Opcode>(i);
    b.infos[i].mnemonic = kMnemonics[i];
  }

  using O = Opcode;

  // --- integer moves ---
  b.set(O::MOV, OpClass::Mov,
        {
            sig({r(GALL, kWrite), r(GALL, kRead)}, true),
            sig({r(GALL, kWrite), m(GALL, kRead)}, true),
            sig({m(GALL, kWrite), r(GALL, kRead)}, true),
            sig({r(GALL, kWrite), im(S8 | S16 | S32 | S64)}),
            sig({m(GALL, kWrite), im(S8 | S16 | S32)}),
        });
  {
    Signature zx = sig({r(GW, kWrite), rm(S8 | S16 | S32, kRead)});
    zx.src_smaller = true;
    b.set(O::MOVZX, OpClass::Mov, {zx});
    b.set(O::MOVSX, OpClass::Mov, {zx});
  }
  {
    // lea: memory operand carries no access size semantics; address only.
    Signature l = sig({r(GW, kWrite), m(GW | S8, kRead)});
    b.set(O::LEA, OpClass::Lea, {l});
    b.at(O::LEA).address_only_mem = true;
  }

  // --- integer ALU ---
  for (O op : {O::ADD, O::SUB, O::AND, O::OR, O::XOR}) {
    b.set(op, OpClass::IntAlu, int2(kRead | kWrite));
    b.flags(op, false, true);
  }
  for (O op : {O::ADC, O::SBB}) {
    b.set(op, OpClass::IntAlu, int2(kRead | kWrite));
    b.flags(op, true, true);
  }
  for (O op : {O::CMP, O::TEST}) {
    b.set(op, OpClass::IntAlu, int2(kRead));
    b.flags(op, false, true);
  }
  for (O op : {O::INC, O::DEC, O::NEG}) {
    b.set(op, OpClass::IntAlu, int1rw());
    b.flags(op, false, true);
  }
  b.set(O::NOT, OpClass::IntAlu, int1rw());  // not does not touch flags

  // --- multiply / divide ---
  {
    std::vector<Signature> imul_sigs = muldiv(/*reads_rdx=*/false);
    imul_sigs.push_back(sig({r(GW, kRead | kWrite), rm(GW, kRead)}, true));
    {
      Signature s3 = sig({r(GW, kWrite), rm(GW, kRead), im(S8 | S16 | S32)},
                         /*same_width=*/true);
      imul_sigs.push_back(s3);
    }
    b.set(O::IMUL, OpClass::IntMul, std::move(imul_sigs));
    b.flags(O::IMUL, false, true);
  }
  b.set(O::MUL, OpClass::IntMul, muldiv(false));
  b.flags(O::MUL, false, true);
  b.set(O::DIV, OpClass::IntDiv, muldiv(true));
  b.flags(O::DIV, false, true);
  b.set(O::IDIV, OpClass::IntDiv, muldiv(true));
  b.flags(O::IDIV, false, true);

  // --- shifts / rotates ---
  for (O op : {O::SHL, O::SHR, O::SAR, O::ROL, O::ROR}) {
    b.set(op, OpClass::Shift, shift());
    b.flags(op, false, true);
  }

  // --- bit ops ---
  b.set(O::BSWAP, OpClass::IntAlu, {sig({r(S32 | S64, kRead | kWrite)})});
  for (O op : {O::BSF, O::BSR, O::POPCNT, O::LZCNT, O::TZCNT}) {
    b.set(op, OpClass::IntAlu, bitscan());
    b.flags(op, false, true);
  }

  // --- exchange ---
  b.set(O::XCHG, OpClass::IntAlu,
        {
            sig({r(GALL, kRead | kWrite), r(GALL, kRead | kWrite)}, true),
            sig({r(GALL, kRead | kWrite), m(GALL, kRead | kWrite)}, true),
            sig({m(GALL, kRead | kWrite), r(GALL, kRead | kWrite)}, true),
        });

  // --- stack ---
  {
    std::vector<Signature> push_sigs = {
        sig({r(S64 | S16, kRead)}),
        sig({m(S64 | S16, kRead)}),
        sig({im(S8 | S16 | S32)}),
    };
    for (auto& s : push_sigs) {
      s.implicit = {ImplicitReg{RegFamily::RSP, 64, true, true}};
    }
    b.set(O::PUSH, OpClass::Stack, std::move(push_sigs));
    b.at(O::PUSH).stack_mem_write = true;

    std::vector<Signature> pop_sigs = {
        sig({r(S64 | S16, kWrite)}),
        sig({m(S64 | S16, kWrite)}),
    };
    for (auto& s : pop_sigs) {
      s.implicit = {ImplicitReg{RegFamily::RSP, 64, true, true}};
    }
    b.set(O::POP, OpClass::Stack, std::move(pop_sigs));
    b.at(O::POP).stack_mem_read = true;
  }

  // --- nop ---
  b.set(O::NOP, OpClass::Nop, {sig({}), sig({rm(GW, 0)})});

  // --- cmovcc ---
  for (O op : {O::CMOVE, O::CMOVNE, O::CMOVL, O::CMOVLE, O::CMOVG, O::CMOVGE,
               O::CMOVB, O::CMOVA, O::CMOVS, O::CMOVNS}) {
    b.set(op, OpClass::IntAlu, cmov());
    b.flags(op, true, false);
  }

  // --- SSE scalar FP ---
  b.set(O::MOVSS, OpClass::FpMov, sse_scalar_mov(32));
  b.set(O::MOVSD, OpClass::FpMov, sse_scalar_mov(64));
  for (auto [op, bits] : std::initializer_list<std::pair<O, int>>{
           {O::ADDSS, 32}, {O::SUBSS, 32}, {O::MINSS, 32}, {O::MAXSS, 32},
           {O::ADDSD, 64}, {O::SUBSD, 64}, {O::MINSD, 64}, {O::MAXSD, 64}}) {
    b.set(op, OpClass::FpAdd, sse_scalar_rw(static_cast<std::uint16_t>(bits)));
  }
  b.set(O::MULSS, OpClass::FpMul, sse_scalar_rw(32));
  b.set(O::MULSD, OpClass::FpMul, sse_scalar_rw(64));
  b.set(O::DIVSS, OpClass::FpDiv, sse_scalar_rw(32));
  b.set(O::DIVSD, OpClass::FpDiv, sse_scalar_rw(64));
  b.set(O::SQRTSS, OpClass::FpDiv, sse_scalar_w(32));
  b.set(O::SQRTSD, OpClass::FpDiv, sse_scalar_w(64));
  b.set(O::UCOMISS, OpClass::FpAdd, fp_compare(32));
  b.flags(O::UCOMISS, false, true);
  b.set(O::UCOMISD, OpClass::FpAdd, fp_compare(64));
  b.flags(O::UCOMISD, false, true);
  b.set(O::CVTSI2SS, OpClass::Convert,
        {sig({x(kRead | kWrite), rm(S32 | S64, kRead)})});
  b.set(O::CVTSI2SD, OpClass::Convert,
        {sig({x(kRead | kWrite), rm(S32 | S64, kRead)})});
  b.set(O::CVTTSS2SI, OpClass::Convert,
        {sig({r(S32 | S64, kWrite), x(kRead)}),
         sig({r(S32 | S64, kWrite), m(S32, kRead)})});
  b.set(O::RCPSS, OpClass::FpMul, sse_scalar_w(32));
  b.set(O::RSQRTSS, OpClass::FpMul, sse_scalar_w(32));
  b.set(O::CVTSS2SD, OpClass::Convert, sse_scalar_rw(32));
  b.set(O::CVTSD2SS, OpClass::Convert, sse_scalar_rw(64));
  b.set(O::COMISS, OpClass::FpAdd, fp_compare(32));
  b.flags(O::COMISS, false, true);
  b.set(O::COMISD, OpClass::FpAdd, fp_compare(64));
  b.flags(O::COMISD, false, true);
  b.set(O::CVTTSD2SI, OpClass::Convert,
        {sig({r(S32 | S64, kWrite), x(kRead)}),
         sig({r(S32 | S64, kWrite), m(S64, kRead)})});

  // --- SSE packed ---
  for (O op : {O::MOVAPS, O::MOVUPS, O::MOVAPD, O::MOVUPD, O::MOVDQA,
               O::MOVDQU}) {
    b.set(op, OpClass::FpMov, sse_packed_mov());
  }
  for (O op : {O::ADDPS, O::ADDPD, O::SUBPS, O::SUBPD}) {
    b.set(op, OpClass::FpAdd, sse_packed_rw());
  }
  for (O op : {O::MULPS, O::MULPD}) b.set(op, OpClass::FpMul, sse_packed_rw());
  for (O op : {O::DIVPS, O::DIVPD}) b.set(op, OpClass::FpDiv, sse_packed_rw());
  b.set(O::SQRTPS, OpClass::FpDiv, sse_packed_w());
  b.set(O::SQRTPD, OpClass::FpDiv, sse_packed_w());
  for (O op : {O::XORPS, O::XORPD, O::ANDPS, O::ANDPD, O::ORPS, O::ORPD}) {
    b.set(op, OpClass::FpAdd, sse_packed_rw());
  }
  for (O op : {O::PXOR, O::PAND, O::POR, O::PADDB, O::PADDW, O::PADDD,
               O::PADDQ, O::PSUBB, O::PSUBW, O::PSUBD, O::PSUBQ}) {
    b.set(op, OpClass::VecInt, sse_packed_rw());
  }
  for (O op : {O::PMULLW, O::PMULLD}) {
    b.set(op, OpClass::VecIntMul, sse_packed_rw());
  }
  for (O op : {O::PCMPEQB, O::PCMPEQW, O::PCMPEQD, O::PCMPGTB, O::PCMPGTW,
               O::PCMPGTD, O::PMINSD, O::PMAXSD, O::PMINUB, O::PMAXUB,
               O::PAVGB, O::PAVGW}) {
    b.set(op, OpClass::VecInt, sse_packed_rw());
  }
  for (O op : {O::PABSB, O::PABSW, O::PABSD}) {
    b.set(op, OpClass::VecInt, sse_packed_w());
  }
  for (O op : {O::MINPS, O::MAXPS, O::MINPD, O::MAXPD, O::ANDNPS,
               O::ANDNPD}) {
    b.set(op, OpClass::FpAdd, sse_packed_rw());
  }
  for (O op : {O::MOVSLDUP, O::MOVSHDUP}) {
    b.set(op, OpClass::FpMov, sse_packed_w());
  }
  for (O op : {O::RCPPS, O::RSQRTPS}) {
    b.set(op, OpClass::FpMul, sse_packed_w());
  }
  b.set(O::PSHUFD, OpClass::Shuffle,
        {sig({x(kWrite), x(kRead), im(S8)}),
         sig({x(kWrite), m(S128, kRead), im(S8)})});
  b.set(O::SHUFPS, OpClass::Shuffle,
        {sig({x(kRead | kWrite), x(kRead), im(S8)}),
         sig({x(kRead | kWrite), m(S128, kRead), im(S8)})});
  b.set(O::UNPCKLPS, OpClass::Shuffle, sse_packed_rw());

  // --- AVX ---
  b.set(O::VMOVSS, OpClass::FpMov, sse_scalar_mov(32));
  b.set(O::VMOVSD, OpClass::FpMov, sse_scalar_mov(64));
  b.set(O::VMOVAPS, OpClass::FpMov, avx_packed_mov());
  b.set(O::VMOVUPS, OpClass::FpMov, avx_packed_mov());
  for (auto [op, bits] : std::initializer_list<std::pair<O, int>>{
           {O::VADDSS, 32}, {O::VSUBSS, 32}, {O::VADDSD, 64},
           {O::VSUBSD, 64}}) {
    b.set(op, OpClass::FpAdd, avx3_scalar(static_cast<std::uint16_t>(bits)));
  }
  b.set(O::VMULSS, OpClass::FpMul, avx3_scalar(32));
  b.set(O::VMULSD, OpClass::FpMul, avx3_scalar(64));
  b.set(O::VDIVSS, OpClass::FpDiv, avx3_scalar(32));
  b.set(O::VDIVSD, OpClass::FpDiv, avx3_scalar(64));
  b.set(O::VSQRTSS, OpClass::FpDiv, avx3_scalar(32));
  b.set(O::VSQRTSD, OpClass::FpDiv, avx3_scalar(64));
  for (O op : {O::VXORPS, O::VANDPS, O::VORPS}) {
    b.set(op, OpClass::FpAdd, avx3_packed());
  }
  for (O op : {O::VADDPS, O::VADDPD, O::VSUBPS, O::VSUBPD}) {
    b.set(op, OpClass::FpAdd, avx3_packed());
  }
  for (O op : {O::VMULPS, O::VMULPD}) b.set(op, OpClass::FpMul, avx3_packed());
  for (O op : {O::VDIVPS, O::VDIVPD}) b.set(op, OpClass::FpDiv, avx3_packed());
  b.set(O::VRCPSS, OpClass::FpMul, avx3_scalar(32));
  b.set(O::VRSQRTSS, OpClass::FpMul, avx3_scalar(32));
  for (auto [op, bits] : std::initializer_list<std::pair<O, int>>{
           {O::VMINSS, 32}, {O::VMAXSS, 32}, {O::VMINSD, 64},
           {O::VMAXSD, 64}}) {
    b.set(op, OpClass::FpAdd, avx3_scalar(static_cast<std::uint16_t>(bits)));
  }
  for (O op : {O::VMINPS, O::VMAXPS, O::VANDNPS}) {
    b.set(op, OpClass::FpAdd, avx3_packed());
  }
  for (O op : {O::VPADDD, O::VPSUBD, O::VPAND, O::VPOR, O::VPXOR,
               O::VPCMPEQD, O::VPMINSD, O::VPMAXSD}) {
    b.set(op, OpClass::VecInt, avx3_packed());
  }
  b.set(O::VFMADD231SS, OpClass::FpFma, avx3_scalar(32, kRead | kWrite));
  b.set(O::VFMADD231SD, OpClass::FpFma, avx3_scalar(64, kRead | kWrite));
  b.set(O::VFMADD231PS, OpClass::FpFma, avx3_packed(kRead | kWrite));
  b.set(O::VFMADD231PD, OpClass::FpFma, avx3_packed(kRead | kWrite));

  // --- setcc: flag consumers writing a byte ---
  for (O op : {O::SETE, O::SETNE, O::SETL, O::SETLE, O::SETG, O::SETGE,
               O::SETB, O::SETA, O::SETS, O::SETNS}) {
    b.set(op, OpClass::IntAlu, {sig({rm(S8, kWrite)})});
    b.flags(op, true, false);
  }

  // --- additional cmovcc forms ---
  for (O op : {O::CMOVBE, O::CMOVAE, O::CMOVO, O::CMOVNO, O::CMOVP,
               O::CMOVNP}) {
    b.set(op, OpClass::IntAlu, cmov());
    b.flags(op, true, false);
  }

  // --- movbe: byte-swapping load/store (no reg-reg form in the ISA) ---
  b.set(O::MOVBE, OpClass::Mov,
        {
            sig({r(GW, kWrite), m(GW, kRead)}, true),
            sig({m(GW, kWrite), r(GW, kRead)}, true),
        });

  // --- xadd: exchange-and-add ---
  b.set(O::XADD, OpClass::IntAlu,
        {
            sig({r(GALL, kRead | kWrite), r(GALL, kRead | kWrite)}, true),
            sig({m(GALL, kRead | kWrite), r(GALL, kRead | kWrite)}, true),
        });
  b.flags(O::XADD, false, true);

  // --- sign extensions into rdx: cdq (32-bit), cqo (64-bit) ---
  {
    Signature cdq = sig({});
    cdq.implicit = {ImplicitReg{RegFamily::RAX, 32, true, false},
                    ImplicitReg{RegFamily::RDX, 32, false, true}};
    b.set(O::CDQ, OpClass::IntAlu, {cdq});
    Signature cqo = sig({});
    cqo.implicit = {ImplicitReg{RegFamily::RAX, 64, true, false},
                    ImplicitReg{RegFamily::RDX, 64, false, true}};
    b.set(O::CQO, OpClass::IntAlu, {cqo});
  }

  // --- BMI1/BMI2 ---
  b.set(O::ANDN, OpClass::IntAlu,
        {sig({r(S32 | S64, kWrite), r(S32 | S64, kRead),
              rm(S32 | S64, kRead)},
             /*same_width=*/true)});
  b.flags(O::ANDN, false, true);
  for (O op : {O::BLSI, O::BLSR, O::BLSMSK}) {
    b.set(op, OpClass::IntAlu,
          {sig({r(S32 | S64, kWrite), rm(S32 | S64, kRead)}, true)});
    b.flags(op, false, true);
  }
  // Flagless shifts: shift count in a third register (shlx) or an
  // immediate rotate count (rorx).
  for (O op : {O::SHLX, O::SHRX, O::SARX}) {
    b.set(op, OpClass::Shift,
          {sig({r(S32 | S64, kWrite), rm(S32 | S64, kRead),
                r(S32 | S64, kRead)},
               true)});
  }
  b.set(O::RORX, OpClass::Shift,
        {sig({r(S32 | S64, kWrite), rm(S32 | S64, kRead), im(S8)}, true)});

  // --- GPR <-> XMM moves ---
  b.set(O::MOVD, OpClass::FpMov,
        {
            sig({x(kWrite), r(S32, kRead)}),
            sig({x(kWrite), m(S32, kRead)}),
            sig({r(S32, kWrite), x(kRead)}),
            sig({m(S32, kWrite), x(kRead)}),
        });
  b.set(O::MOVQ, OpClass::FpMov,
        {
            sig({x(kWrite), r(S64, kRead)}),
            sig({x(kWrite), m(S64, kRead)}),
            sig({r(S64, kWrite), x(kRead)}),
            sig({m(S64, kWrite), x(kRead)}),
            sig({x(kWrite), x(kRead)}),
        });

  // --- packed conversions ---
  b.set(O::CVTPS2PD, OpClass::Convert,
        {sig({x(kWrite), x(kRead)}), sig({x(kWrite), m(S64, kRead)})});
  b.set(O::CVTPD2PS, OpClass::Convert, sse_packed_w());
  b.set(O::CVTDQ2PS, OpClass::Convert, sse_packed_w());
  b.set(O::CVTPS2DQ, OpClass::Convert, sse_packed_w());

  // --- vector predicates ---
  b.set(O::PMOVMSKB, OpClass::VecInt,
        {sig({r(S32 | S64, kWrite), x(kRead)})});
  b.set(O::PTEST, OpClass::VecInt,
        {sig({x(kRead), x(kRead)}), sig({x(kRead), m(S128, kRead)})});
  b.flags(O::PTEST, false, true);

  // --- packed shifts ---
  for (O op : {O::PSLLW, O::PSLLD, O::PSLLQ, O::PSRLW, O::PSRLD, O::PSRLQ}) {
    b.set(op, OpClass::VecInt,
          {
              sig({x(kRead | kWrite), im(S8)}),
              sig({x(kRead | kWrite), x(kRead)}),
              sig({x(kRead | kWrite), m(S128, kRead)}),
          });
  }

  // --- horizontal adds ---
  b.set(O::HADDPS, OpClass::FpAdd, sse_packed_rw());
  b.set(O::HADDPD, OpClass::FpAdd, sse_packed_rw());
  b.set(O::PHADDW, OpClass::VecInt, sse_packed_rw());
  b.set(O::PHADDD, OpClass::VecInt, sse_packed_rw());

  // --- AVX2 data movement and integer ALU ---
  b.set(O::VMOVDQA, OpClass::FpMov, avx_packed_mov());
  b.set(O::VMOVDQU, OpClass::FpMov, avx_packed_mov());
  for (O op : {O::VPADDB, O::VPADDW, O::VPADDQ, O::VPSUBB, O::VPSUBW,
               O::VPSUBQ, O::VPCMPGTD, O::VPMINUB, O::VPMAXUB, O::VPAVGB}) {
    b.set(op, OpClass::VecInt, avx3_packed());
  }
  for (O op : {O::VPMULLW, O::VPMULLD}) {
    b.set(op, OpClass::VecIntMul, avx3_packed());
  }
  b.set(O::VPABSD, OpClass::VecInt,
        {
            sig({x(kWrite), x(kRead)}),
            sig({x(kWrite), m(S128, kRead)}),
            sig({y(kWrite), y(kRead)}),
            sig({y(kWrite), m(S256, kRead)}),
        });

  // --- broadcasts ---
  b.set(O::VBROADCASTSS, OpClass::FpMov,
        {
            sig({x(kWrite), x(kRead)}),
            sig({x(kWrite), m(S32, kRead)}),
            sig({y(kWrite), x(kRead)}),
            sig({y(kWrite), m(S32, kRead)}),
        });
  b.set(O::VPBROADCASTD, OpClass::Shuffle,
        {
            sig({x(kWrite), x(kRead)}),
            sig({x(kWrite), m(S32, kRead)}),
            sig({y(kWrite), x(kRead)}),
            sig({y(kWrite), m(S32, kRead)}),
        });

  // --- AVX shuffles and lane operations ---
  b.set(O::VPSHUFD, OpClass::Shuffle,
        {
            sig({x(kWrite), x(kRead), im(S8)}),
            sig({x(kWrite), m(S128, kRead), im(S8)}),
            sig({y(kWrite), y(kRead), im(S8)}),
            sig({y(kWrite), m(S256, kRead), im(S8)}),
        });
  b.set(O::VSHUFPS, OpClass::Shuffle,
        {
            sig({x(kWrite), x(kRead), x(kRead), im(S8)}),
            sig({x(kWrite), x(kRead), m(S128, kRead), im(S8)}),
            sig({y(kWrite), y(kRead), y(kRead), im(S8)}),
            sig({y(kWrite), y(kRead), m(S256, kRead), im(S8)}),
        });
  b.set(O::VUNPCKLPS, OpClass::Shuffle, avx3_packed());
  b.set(O::VPERM2F128, OpClass::Shuffle,
        {
            sig({y(kWrite), y(kRead), y(kRead), im(S8)}),
            sig({y(kWrite), y(kRead), m(S256, kRead), im(S8)}),
        });
  b.set(O::VINSERTF128, OpClass::Shuffle,
        {
            sig({y(kWrite), y(kRead), x(kRead), im(S8)}),
            sig({y(kWrite), y(kRead), m(S128, kRead), im(S8)}),
        });
  b.set(O::VEXTRACTF128, OpClass::Shuffle,
        {
            sig({x(kWrite), y(kRead), im(S8)}),
            sig({m(S128, kWrite), y(kRead), im(S8)}),
        });

  // --- additional FMA forms (132/213 orderings, negated/subtracted) ---
  for (O op : {O::VFMADD132SS, O::VFMADD213SS, O::VFNMADD231SS,
               O::VFMSUB231SS}) {
    b.set(op, OpClass::FpFma, avx3_scalar(32, kRead | kWrite));
  }
  for (O op : {O::VFMADD132SD, O::VFMADD213SD}) {
    b.set(op, OpClass::FpFma, avx3_scalar(64, kRead | kWrite));
  }
  for (O op : {O::VFMADD132PS, O::VFMADD213PS}) {
    b.set(op, OpClass::FpFma, avx3_packed(kRead | kWrite));
  }

  return b.infos;
}

const std::array<OpcodeInfo, kNumOpcodes>& catalog() {
  static const auto kCatalog = build_catalog();
  return kCatalog;
}

}  // namespace

std::string_view op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::Mov: return "Mov";
    case OpClass::IntAlu: return "IntAlu";
    case OpClass::IntMul: return "IntMul";
    case OpClass::IntDiv: return "IntDiv";
    case OpClass::Lea: return "Lea";
    case OpClass::Shift: return "Shift";
    case OpClass::Stack: return "Stack";
    case OpClass::Nop: return "Nop";
    case OpClass::FpMov: return "FpMov";
    case OpClass::FpAdd: return "FpAdd";
    case OpClass::FpMul: return "FpMul";
    case OpClass::FpDiv: return "FpDiv";
    case OpClass::FpFma: return "FpFma";
    case OpClass::VecInt: return "VecInt";
    case OpClass::VecIntMul: return "VecIntMul";
    case OpClass::Shuffle: return "Shuffle";
    case OpClass::Convert: return "Convert";
  }
  return "?";
}

const OpcodeInfo& info(Opcode op) {
  return catalog()[static_cast<std::size_t>(op)];
}

std::string_view mnemonic(Opcode op) { return info(op).mnemonic; }

std::optional<Opcode> parse_opcode(std::string_view mn) {
  static const std::unordered_map<std::string, Opcode> kByName = [] {
    std::unordered_map<std::string, Opcode> m;
    for (const auto& e : catalog()) m[std::string(e.mnemonic)] = e.op;
    return m;
  }();
  const auto it = kByName.find(util::to_lower(mn));
  if (it == kByName.end()) return std::nullopt;
  return it->second;
}

std::span<const Opcode> all_opcodes() {
  static const std::vector<Opcode> kAll = [] {
    std::vector<Opcode> v;
    v.reserve(kNumOpcodes);
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
      v.push_back(static_cast<Opcode>(i));
    }
    return v;
  }();
  return kAll;
}

bool matches(const Signature& sig, std::span<const Operand> operands) {
  if (sig.slots.size() != operands.size()) return false;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    const auto& spec = sig.slots[i];
    const auto& op = operands[i];
    std::uint8_t kind_bit = 0;
    switch (op.kind()) {
      case OperandKind::Reg: kind_bit = kKindReg; break;
      case OperandKind::Mem: kind_bit = kKindMem; break;
      case OperandKind::Imm: kind_bit = kKindImm; break;
    }
    if (!(spec.kinds & kind_bit)) return false;
    if (op.is_imm()) {
      // Immediates only need to fit one of the accepted widths; accept if
      // any width in the mask can hold the value.
      bool fits = false;
      for (std::uint16_t bits : {8, 16, 32, 64}) {
        if (!(spec.sizes & size_bit(bits))) continue;
        const auto v = op.as_imm().value;
        if (bits == 64) {
          fits = true;
        } else {
          const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
          const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
          if (v >= lo && v <= hi) fits = true;
        }
        if (fits) break;
      }
      if (!fits) return false;
      continue;
    }
    if (!(spec.sizes & size_bit(op.size_bits()))) return false;
    if (op.is_reg()) {
      if (reg_class(op.as_reg()) != spec.reg_cls) return false;
      if (spec.fixed_family && op.as_reg().family != *spec.fixed_family) {
        return false;
      }
    }
  }
  if (sig.same_width) {
    std::uint16_t w = 0;
    for (const auto& op : operands) {
      if (op.is_imm()) continue;
      if (w == 0) {
        w = op.size_bits();
      } else if (op.size_bits() != w) {
        return false;
      }
    }
  }
  if (sig.src_smaller && operands.size() >= 2 && !operands[1].is_imm()) {
    if (operands[1].size_bits() >= operands[0].size_bits()) return false;
  }
  return true;
}

const Signature* find_signature(Opcode op, std::span<const Operand> operands) {
  for (const auto& s : info(op).signatures) {
    if (matches(s, operands)) return &s;
  }
  return nullptr;
}

std::vector<Opcode> replacement_opcodes(Opcode op,
                                        std::span<const Operand> operands) {
  std::vector<Opcode> out;
  const bool orig_addr_only = info(op).address_only_mem;
  bool has_mem = false;
  for (const auto& o : operands) has_mem |= o.is_mem();
  for (Opcode cand : all_opcodes()) {
    if (cand == op) continue;
    const auto& ci = info(cand);
    // An address-only memory operand (lea) is semantically incompatible with
    // a real memory access; do not cross that boundary in either direction.
    if (has_mem && (ci.address_only_mem != orig_addr_only)) continue;
    if (find_signature(cand, operands) != nullptr) out.push_back(cand);
  }
  return out;
}

}  // namespace comet::x86
