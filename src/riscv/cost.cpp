#include "riscv/cost.h"

#include <algorithm>
#include <cmath>

namespace comet::riscv {

namespace {

double class_cost(RvClass cls) {
  switch (cls) {
    case RvClass::IntAlu: return 0.5;   // two ALU pipes
    case RvClass::IntMul: return 3.0;   // pipelined multiplier latency
    case RvClass::IntDiv: return 20.0;  // iterative divider
    case RvClass::Load: return 2.0;     // L1 hit
    case RvClass::Store: return 1.0;    // one store port
  }
  return 1.0;
}

}  // namespace

RvCostModel::RvCostModel(DepGraphOptions graph_options)
    : graph_options_(graph_options) {}

double RvCostModel::cost_num_insts(std::size_t n) const {
  return double(n) / 2.0;
}

double RvCostModel::cost_inst(const Instruction& inst) const {
  return class_cost(info(inst.opcode).cls);
}

double RvCostModel::cost_dep(const BasicBlock& block,
                             const DepEdge& edge) const {
  if (edge.kind != DepKind::RAW) return 0.0;  // false deps rename away
  return cost_inst(block.instructions[edge.from]) +
         cost_inst(block.instructions[edge.to]);
}

double RvCostModel::predict(const BasicBlock& block) const {
  if (block.empty()) return 0.0;
  double best = cost_num_insts(block.size());
  for (const auto& inst : block.instructions) {
    best = std::max(best, cost_inst(inst));
  }
  const DepGraph g = DepGraph::build(block, graph_options_);
  for (const auto& e : g.edges()) {
    best = std::max(best, cost_dep(block, e));
  }
  return best;
}

void RvCostModel::predict_batch(std::span<const BasicBlock> blocks,
                                std::span<double> out) const {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    out[i] = predict(blocks[i]);
  }
}

RvFeatureSet RvCostModel::ground_truth(const BasicBlock& block) const {
  constexpr double kTieTol = 1e-9;
  const double total = predict(block);
  RvFeatureSet gt;
  if (std::abs(cost_num_insts(block.size()) - total) < kTieTol) {
    gt.insert(RvFeature(RvNumInstsFeature{block.size()}));
  }
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (std::abs(cost_inst(block.instructions[i]) - total) < kTieTol) {
      gt.insert(RvFeature(RvInstFeature{i, block.instructions[i].opcode}));
    }
  }
  const DepGraph g = DepGraph::build(block, graph_options_);
  for (const auto& e : g.edges()) {
    if (std::abs(cost_dep(block, e) - total) < kTieTol) {
      gt.insert(RvFeature(RvDepFeature{e.from, e.to, e.kind}));
    }
  }
  return gt;
}

}  // namespace comet::riscv
