// Dependency multigraph and block features for RISC-V blocks — the ISA
// mapping of paper Section 5.1's feature extraction.
//
// Identical structure to the x86 module: vertices are instructions,
// directed edges are RAW/WAR/WAW hazards on registers (x0 carries none)
// and on syntactically identical memory locations (same base register and
// offset); features are positional instructions, hazards, and η.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "riscv/isa.h"

namespace comet::riscv {

enum class DepKind : std::uint8_t { RAW, WAR, WAW };
std::string dep_kind_name(DepKind kind);

struct DepEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  DepKind kind = DepKind::RAW;
  bool memory = false;  ///< carried by a memory location, not a register
  Reg reg{};            ///< carrying register (when !memory)
  bool operator==(const DepEdge&) const = default;
};

struct DepGraphOptions {
  /// Link each consumer only to the nearest conflicting access.
  bool nearest_only = true;
};

class DepGraph {
 public:
  DepGraph() = default;
  static DepGraph build(const BasicBlock& block,
                        const DepGraphOptions& options = {});

  std::size_t num_vertices() const { return num_vertices_; }
  const std::vector<DepEdge>& edges() const { return edges_; }
  bool has_edge(std::size_t from, std::size_t to, DepKind kind) const;
  std::string to_string() const;

 private:
  std::size_t num_vertices_ = 0;
  std::vector<DepEdge> edges_;
};

// ---------------------------------------------------------------------------
// Features P̂ (instruction@position, hazard, η), mirroring graph::Feature.

struct RvInstFeature {
  std::size_t index = 0;
  Opcode opcode = Opcode::ADD;
  auto operator<=>(const RvInstFeature&) const = default;
};
struct RvDepFeature {
  std::size_t from = 0;
  std::size_t to = 0;
  DepKind kind = DepKind::RAW;
  auto operator<=>(const RvDepFeature&) const = default;
};
struct RvNumInstsFeature {
  std::size_t count = 0;
  auto operator<=>(const RvNumInstsFeature&) const = default;
};

class RvFeature {
 public:
  RvFeature() : v_(RvNumInstsFeature{}) {}
  explicit RvFeature(RvInstFeature f) : v_(f) {}
  explicit RvFeature(RvDepFeature f) : v_(f) {}
  explicit RvFeature(RvNumInstsFeature f) : v_(f) {}

  bool is_inst() const { return std::holds_alternative<RvInstFeature>(v_); }
  bool is_dep() const { return std::holds_alternative<RvDepFeature>(v_); }
  bool is_num_insts() const {
    return std::holds_alternative<RvNumInstsFeature>(v_);
  }
  const RvInstFeature& as_inst() const {
    return std::get<RvInstFeature>(v_);
  }
  const RvDepFeature& as_dep() const { return std::get<RvDepFeature>(v_); }
  const RvNumInstsFeature& as_num_insts() const {
    return std::get<RvNumInstsFeature>(v_);
  }

  std::string to_string() const;
  auto operator<=>(const RvFeature&) const = default;

 private:
  std::variant<RvInstFeature, RvDepFeature, RvNumInstsFeature> v_;
};

class RvFeatureSet {
 public:
  RvFeatureSet() = default;

  void insert(const RvFeature& f);
  bool contains(const RvFeature& f) const;
  bool is_subset_of(const RvFeatureSet& other) const;
  std::size_t size() const { return features_.size(); }
  bool empty() const { return features_.empty(); }
  const std::vector<RvFeature>& items() const { return features_; }
  RvFeatureSet with(const RvFeature& f) const;
  std::string to_string() const;
  bool operator==(const RvFeatureSet&) const = default;

 private:
  std::vector<RvFeature> features_;  // sorted, unique
};

/// Extract P̂ for a RISC-V block.
RvFeatureSet extract_features(const BasicBlock& block,
                              const DepGraphOptions& options = {});

}  // namespace comet::riscv
