// Random valid RV64IM basic blocks for the ported framework's evaluation —
// the RISC-V analogue of the synthetic BHive generator: a small register
// pool induces realistic dependency chains, and class weights control the
// mix of ALU, memory, and multiply/divide work.
#pragma once

#include <cstdint>

#include "riscv/isa.h"
#include "util/rng.h"

namespace comet::riscv {

struct RvGenOptions {
  std::size_t min_insts = 4;
  std::size_t max_insts = 10;
  /// Relative class weights: IntAlu, IntMul, IntDiv, Load, Store.
  double w_alu = 6.0;
  double w_mul = 1.0;
  double w_div = 0.5;
  double w_load = 2.0;
  double w_store = 1.5;
  /// Number of distinct registers drawn from (small pool => more hazards).
  std::size_t reg_pool = 6;
};

/// One random valid block.
BasicBlock generate_block(util::Rng& rng, const RvGenOptions& options = {});

/// A corpus of `n` blocks, deterministic in `seed`.
std::vector<BasicBlock> generate_corpus(std::size_t n, std::uint64_t seed,
                                        const RvGenOptions& options = {});

}  // namespace comet::riscv
