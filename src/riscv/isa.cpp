#include "riscv/isa.h"

#include <array>
#include <unordered_map>

#include "util/str.h"

namespace comet::riscv {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kCatalog = {{
#define COMET_RV_INFO(name, mn, fmt, cls) \
  OpcodeInfo{Opcode::name, #mn, Format::fmt, RvClass::cls},
    COMET_RV_OPCODES(COMET_RV_INFO)
#undef COMET_RV_INFO
}};

constexpr std::array<std::string_view, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "t3", "t4", "t5", "t6", "s2", "s3",
    "s4",   "s5", "s6", "s7", "s8", "s9", "s10", "s11", "a6", "a7"};
// Note: index here is a presentation order; the canonical mapping below
// assigns each ABI name its architectural register number.

struct AbiEntry {
  std::string_view name;
  std::uint8_t index;
};
constexpr std::array<AbiEntry, 33> kAbiMap = {{
    {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},
    {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},   {"fp", 8},
    {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12},  {"a3", 13},
    {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17},  {"s2", 18},
    {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22},  {"s7", 23},
    {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
    {"t4", 29},  {"t5", 30}, {"t6", 31},
}};

bool imm_fits(std::int64_t v, int bits) {
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

}  // namespace

const OpcodeInfo& info(Opcode op) {
  return kCatalog[static_cast<std::size_t>(op)];
}

std::string_view mnemonic(Opcode op) { return info(op).mnemonic; }

std::optional<Opcode> parse_opcode(std::string_view mn) {
  static const std::unordered_map<std::string, Opcode> kByName = [] {
    std::unordered_map<std::string, Opcode> m;
    for (const auto& e : kCatalog) m[std::string(e.mnemonic)] = e.op;
    return m;
  }();
  const auto it = kByName.find(util::to_lower(mn));
  if (it == kByName.end()) return std::nullopt;
  return it->second;
}

std::span<const Opcode> all_opcodes() {
  static const std::vector<Opcode> kAll = [] {
    std::vector<Opcode> v;
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
      v.push_back(static_cast<Opcode>(i));
    }
    return v;
  }();
  return kAll;
}

std::span<const Opcode> replacement_opcodes(Opcode op) {
  static const std::array<std::vector<Opcode>, kNumOpcodes> kByOpcode = [] {
    std::array<std::vector<Opcode>, kNumOpcodes> table;
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
      const auto fmt = kCatalog[i].format;
      for (std::size_t j = 0; j < kNumOpcodes; ++j) {
        if (i != j && kCatalog[j].format == fmt) {
          table[i].push_back(static_cast<Opcode>(j));
        }
      }
    }
    return table;
  }();
  return kByOpcode[static_cast<std::size_t>(op)];
}

std::string_view reg_name(Reg r) {
  for (const auto& e : kAbiMap) {
    if (e.index == r.index && e.name != "fp") return e.name;
  }
  return kAbiNames[0];
}

std::optional<Reg> parse_reg(std::string_view name) {
  const std::string lower = util::to_lower(name);
  for (const auto& e : kAbiMap) {
    if (e.name == lower) return Reg{e.index};
  }
  // Also accept architectural names x0..x31.
  if (lower.size() >= 2 && lower[0] == 'x') {
    int idx = 0;
    for (std::size_t i = 1; i < lower.size(); ++i) {
      if (lower[i] < '0' || lower[i] > '9') return std::nullopt;
      idx = idx * 10 + (lower[i] - '0');
    }
    if (idx < 32) return Reg{static_cast<std::uint8_t>(idx)};
  }
  return std::nullopt;
}

std::string Instruction::to_string() const {
  const auto& inf = info(opcode);
  std::string out(inf.mnemonic);
  out += ' ';
  switch (inf.format) {
    case Format::R:
      out += std::string(reg_name(rd)) + ", " + std::string(reg_name(rs1)) +
             ", " + std::string(reg_name(rs2));
      break;
    case Format::I:
      out += std::string(reg_name(rd)) + ", " + std::string(reg_name(rs1)) +
             ", " + std::to_string(imm);
      break;
    case Format::U:
      out += std::string(reg_name(rd)) + ", " + std::to_string(imm);
      break;
    case Format::Load:
      out += std::string(reg_name(rd)) + ", " + std::to_string(imm) + "(" +
             std::string(reg_name(rs1)) + ")";
      break;
    case Format::Store:
      out += std::string(reg_name(rs2)) + ", " + std::to_string(imm) + "(" +
             std::string(reg_name(rs1)) + ")";
      break;
  }
  return out;
}

std::string BasicBlock::to_string() const {
  std::string out;
  for (const auto& inst : instructions) {
    out += inst.to_string();
    out += '\n';
  }
  return out;
}

RvSemantics semantics(const Instruction& inst) {
  RvSemantics s;
  const auto add_read = [&](Reg r) {
    if (r != kZero) s.reads.push_back(r);
  };
  const auto set_write = [&](Reg r) {
    if (r != kZero) s.write = r;  // x0 writes are architecturally discarded
  };
  switch (info(inst.opcode).format) {
    case Format::R:
      add_read(inst.rs1);
      add_read(inst.rs2);
      set_write(inst.rd);
      break;
    case Format::I:
      add_read(inst.rs1);
      set_write(inst.rd);
      break;
    case Format::U:
      set_write(inst.rd);
      break;
    case Format::Load:
      add_read(inst.rs1);
      set_write(inst.rd);
      s.mem_read = true;
      break;
    case Format::Store:
      add_read(inst.rs1);
      add_read(inst.rs2);
      s.mem_write = true;
      break;
  }
  return s;
}

bool is_valid(const Instruction& inst) {
  if (static_cast<std::size_t>(inst.opcode) >= kNumOpcodes) return false;
  switch (info(inst.opcode).format) {
    case Format::R:
      return inst.imm == 0;
    case Format::I: {
      // Shift-immediates use a 6-bit unsigned shamt; the rest a 12-bit
      // signed immediate.
      switch (inst.opcode) {
        case Opcode::SLLI:
        case Opcode::SRLI:
        case Opcode::SRAI:
          return inst.imm >= 0 && inst.imm < 64;
        default:
          return imm_fits(inst.imm, 12);
      }
    }
    case Format::U:
      return inst.imm >= 0 && inst.imm < (std::int64_t{1} << 20);
    case Format::Load:
    case Format::Store:
      return imm_fits(inst.imm, 12);
  }
  return false;
}

bool is_valid(const BasicBlock& block) {
  for (const auto& inst : block.instructions) {
    if (!is_valid(inst)) return false;
  }
  return true;
}

}  // namespace comet::riscv
