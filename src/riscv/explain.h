// COMET's explanation engine mapped onto RISC-V (paper Section 7).
//
// The high-level formalism carries over unchanged, exactly as the paper
// claims: the same relaxed optimization problem (eq. 7) — maximize coverage
// subject to Prec(F) ≥ 1 − δ — solved by the same Anchors-style beam search
// with KL-LUCB confidence bounds (shared verbatim via util/kl_bounds); only
// the ISA-specific pieces (features, Γ) differ. Keeping the RV engine
// separate from the x86 one makes the port's surface area explicit: this
// file plus riscv/{isa,graph,perturb} is everything Section 7 asks for.
#pragma once

#include <cstdint>

#include "riscv/cost.h"
#include "riscv/perturb.h"

namespace comet::riscv {

struct RvExplainOptions {
  double epsilon = 0.25;  ///< quarter-cycle step of the analytical model
  double delta = 0.3;
  double lucb_confidence_delta = 0.1;
  double lucb_epsilon = 0.15;
  std::size_t batch_size = 12;
  std::size_t beam_width = 4;
  std::size_t max_explanation_size = 3;
  std::size_t max_pulls_per_level = 160;
  std::size_t coverage_samples = 800;
  std::uint64_t seed = 1;
  DepGraphOptions graph_options;
  RvPerturbConfig perturb_config;
};

struct RvExplanation {
  RvFeatureSet features;
  double precision = 0.0;
  double coverage = 0.0;
  bool met_threshold = false;
  std::size_t model_queries = 0;
};

class RvExplainer {
 public:
  /// `model` must outlive the explainer.
  RvExplainer(const RvCostModel& model, RvExplainOptions options = {});

  RvExplanation explain(const BasicBlock& block) const;

 private:
  const RvCostModel& model_;
  RvExplainOptions options_;
};

}  // namespace comet::riscv
