// COMET's explanation engine mapped onto RISC-V (paper Section 7).
//
// The high-level formalism carries over unchanged, exactly as the paper
// claims — and after the query-API redesign that is now literally true in
// code: RvExplainer is the second instantiation of the one generic
// core/anchor_engine.h search (beam search over feature sets, KL-LUCB
// best-arm identification, batched model queries through a broker). Only
// the ISA-specific pieces differ, and they enter through RvAnchorTraits:
// the RISC-V features, dependency graph, perturbation algorithm Γ, and
// analytical cost model. This file plus riscv/{isa,graph,perturb,cost} is
// everything Section 7 asks for.
#pragma once

#include <cstdint>

#include "core/anchor_engine.h"
#include "cost/query_stats.h"
#include "obs/phase_timers.h"
#include "riscv/cost.h"
#include "riscv/perturb.h"

namespace comet::riscv {

/// The shared anchor-search options (core::AnchorSearchOptions) with
/// RISC-V defaults — ε = 0.25, the quarter-cycle step of the analytical
/// model, and a lighter coverage pool — plus the RISC-V graph/Γ config.
struct RvExplainOptions : core::AnchorSearchOptions {
  DepGraphOptions graph_options;
  RvPerturbConfig perturb_config;

  RvExplainOptions() {
    epsilon = 0.25;
    coverage_samples = 800;
    // The analytical RV model is exact and deterministic, so the extra
    // firm-up pass before accepting an anchor adds queries without
    // information. A zero budget disables the engine's KL-lower-bound
    // acceptance gate entirely: anchors are accepted on their raw mean
    // against the threshold (the historical RV rule). Any positive budget
    // would instead require kl_lower_bound(mean, pulls, beta) >= threshold
    // before an anchor is accepted — see the acceptance step in
    // core/anchor_engine.h.
    final_precision_samples = 0;
  }
};

struct RvExplanation {
  RvFeatureSet features;
  double precision = 0.0;
  double coverage = 0.0;
  bool met_threshold = false;
  std::size_t model_queries = 0;
  /// Broker-side query-traffic accounting (batches, memo hits).
  cost::QueryStats query_stats;
  /// Opt-in engine phase timings (AnchorSearchOptions::phase_clock).
  obs::PhaseTimings timings;
};

/// ISA-traits binding of the generic anchor engine to RISC-V.
struct RvAnchorTraits {
  using Block = BasicBlock;
  using Feature = RvFeature;
  using FeatureSet = RvFeatureSet;
  using Perturber = RvPerturber;
  using PerturbedBlock = RvPerturbedBlock;
  using Model = RvCostModel;
  using Options = RvExplainOptions;
  using Explanation = RvExplanation;

  static FeatureSet extract_features(const Block& block,
                                     const Options& options) {
    return riscv::extract_features(block, options.graph_options);
  }
  static Perturber make_perturber(const Block& block, const Options& options) {
    return Perturber(block, options.graph_options, options.perturb_config);
  }
};

class RvExplainer {
 public:
  /// The engine traits this explainer instantiates — the hook the serving
  /// layer uses: serve::ExplanationServer<RvExplainer::Traits> schedules
  /// concurrent RISC-V explanation sessions over the same engine.
  using Traits = RvAnchorTraits;

  /// `model` must outlive the explainer.
  RvExplainer(const RvCostModel& model, RvExplainOptions options = {});

  RvExplanation explain(const BasicBlock& block) const;

  /// Standalone Monte-Carlo estimates (RISC-V analogues of the x86 Table 3
  /// evaluation entry points).
  double estimate_precision(const BasicBlock& block,
                            const RvFeatureSet& features, std::size_t samples,
                            util::Rng& rng) const;
  double estimate_coverage(const BasicBlock& block,
                           const RvFeatureSet& features, std::size_t samples,
                           util::Rng& rng) const;

  const RvExplainOptions& options() const { return options_; }
  const RvCostModel& model() const { return model_; }

 private:
  core::AnchorEngine<RvAnchorTraits> engine() const {
    return {model_, options_};
  }

  const RvCostModel& model_;
  RvExplainOptions options_;
};

}  // namespace comet::riscv
