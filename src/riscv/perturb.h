// The perturbation algorithm Γ mapped onto RISC-V (paper Section 7).
//
// Same independence structure as the x86 Γ (Algorithm 1): vertices perturb
// opcodes only (replacement within the encoding format, or deletion when η
// need not be preserved), edges perturb registers only (a hazard is broken
// by renaming its carrying occurrence to a register unused in the block),
// and the opcodes plus carrying registers of every preserved dependency are
// pinned.
//
// Instance-specific challenges, as the paper predicts, and how they land
// here:
//   * x0 is hardwired zero: it never carries a dependency, is never chosen
//     as a rename target for a destination, and writing to it is legal but
//     dead — the dependency graph (not the syntax) is what Γ must respect.
//   * sp-relative loads/stores share a base register by convention, so
//     memory hazards are broken by shifting the 12-bit offset rather than
//     renaming the base (renaming sp would perturb every other stack access
//     — a dependence between edge perturbations Γ must avoid).
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/graph.h"
#include "util/rng.h"

namespace comet::riscv {

struct RvPerturbConfig {
  double p_inst_retain = 0.5;
  double p_dep_retain = 0.5;
  double p_delete = 0.33;
};

struct RvPerturbedBlock {
  BasicBlock block;
  std::vector<std::size_t> orig_index;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t position_of(std::size_t orig) const;
};

class RvPerturber {
 public:
  explicit RvPerturber(BasicBlock block, DepGraphOptions graph_options = {},
                       RvPerturbConfig config = {});

  const BasicBlock& block() const { return block_; }
  const DepGraph& dep_graph() const { return graph_; }

  /// Sample β' ~ D_F retaining every feature in `preserve`.
  RvPerturbedBlock sample(const RvFeatureSet& preserve, util::Rng& rng) const;

  /// Does the perturbed block still contain every feature in `fs`?
  bool contains(const RvPerturbedBlock& pb, const RvFeatureSet& fs) const;

  /// log10 estimate of |Π̂(F)| (Appendix F analogue).
  double log10_space_size(const RvFeatureSet& preserve) const;

 private:
  BasicBlock block_;
  DepGraphOptions graph_options_;
  RvPerturbConfig config_;
  DepGraph graph_;
};

}  // namespace comet::riscv
