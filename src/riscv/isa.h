// RISC-V RV64IM substrate: the paper's Section 7 extension path.
//
// "COMET can be extended to other open-source ISAs ... by mapping the
// current perturbation algorithm to the new ISA. We need to define the
// opcodes (operands) that could replace each opcode (operand) to generate
// a valid perturbation. While the high-level formalism can be carried
// over, instance-specific challenges can arise."
//
// This module carries the formalism over to RV64IM and meets exactly those
// requirements: a catalog of ~45 opcodes grouped by encoding format (which
// defines the opcode-replacement sets), register semantics including the
// hardwired-zero x0 (the promised instance-specific challenge: writes to
// x0 are discarded, so they carry no dependency), a parser for standard
// assembly, and read/write semantics for dependency extraction.
//
// RISC-V's regularity makes the mapping crisp: every opcode of a format
// accepts exactly the operands of that format, so the replacement relation
// is format-equality — contrast x86, where replacement requires per-opcode
// signature matching.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace comet::riscv {

// X-macro: name, mnemonic, format, class.
#define COMET_RV_OPCODES(X)                                          \
  /* R-type integer ALU */                                           \
  X(ADD, add, R, IntAlu) X(SUB, sub, R, IntAlu)                      \
  X(AND, and, R, IntAlu) X(OR, or, R, IntAlu) X(XOR, xor, R, IntAlu) \
  X(SLL, sll, R, IntAlu) X(SRL, srl, R, IntAlu) X(SRA, sra, R, IntAlu) \
  X(SLT, slt, R, IntAlu) X(SLTU, sltu, R, IntAlu)                    \
  X(ADDW, addw, R, IntAlu) X(SUBW, subw, R, IntAlu)                  \
  X(SLLW, sllw, R, IntAlu) X(SRLW, srlw, R, IntAlu)                  \
  X(SRAW, sraw, R, IntAlu)                                           \
  /* R-type multiply / divide (M extension) */                       \
  X(MUL, mul, R, IntMul) X(MULH, mulh, R, IntMul)                    \
  X(MULHU, mulhu, R, IntMul) X(MULW, mulw, R, IntMul)                \
  X(DIV, div, R, IntDiv) X(DIVU, divu, R, IntDiv)                    \
  X(REM, rem, R, IntDiv) X(REMU, remu, R, IntDiv)                    \
  X(DIVW, divw, R, IntDiv) X(REMW, remw, R, IntDiv)                  \
  /* I-type ALU-with-immediate */                                    \
  X(ADDI, addi, I, IntAlu) X(ANDI, andi, I, IntAlu)                  \
  X(ORI, ori, I, IntAlu) X(XORI, xori, I, IntAlu)                    \
  X(SLTI, slti, I, IntAlu) X(SLTIU, sltiu, I, IntAlu)                \
  X(SLLI, slli, I, IntAlu) X(SRLI, srli, I, IntAlu)                  \
  X(SRAI, srai, I, IntAlu) X(ADDIW, addiw, I, IntAlu)                \
  /* U-type */                                                       \
  X(LUI, lui, U, IntAlu)                                             \
  /* loads */                                                        \
  X(LD, ld, Load, Load) X(LW, lw, Load, Load) X(LWU, lwu, Load, Load) \
  X(LH, lh, Load, Load) X(LHU, lhu, Load, Load)                      \
  X(LB, lb, Load, Load) X(LBU, lbu, Load, Load)                      \
  /* stores */                                                       \
  X(SD, sd, Store, Store) X(SW, sw, Store, Store)                    \
  X(SH, sh, Store, Store) X(SB, sb, Store, Store)

enum class Opcode : std::uint8_t {
#define COMET_RV_ENUM(name, mn, fmt, cls) name,
  COMET_RV_OPCODES(COMET_RV_ENUM)
#undef COMET_RV_ENUM
      kCount,
};
constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::kCount);

/// Encoding format — determines the operand shape and therefore the
/// opcode-replacement sets of the perturbation algorithm.
enum class Format : std::uint8_t {
  R,      ///< op rd, rs1, rs2
  I,      ///< op rd, rs1, imm
  U,      ///< op rd, imm
  Load,   ///< op rd, imm(rs1)
  Store,  ///< op rs2, imm(rs1)
};

/// Cost class, used by the analytical RV cost model.
enum class RvClass : std::uint8_t { IntAlu, IntMul, IntDiv, Load, Store };

struct OpcodeInfo {
  Opcode op;
  std::string_view mnemonic;
  Format format;
  RvClass cls;
};

const OpcodeInfo& info(Opcode op);
std::string_view mnemonic(Opcode op);
std::optional<Opcode> parse_opcode(std::string_view mnemonic);
std::span<const Opcode> all_opcodes();

/// All opcodes of the same format other than `op` — the replacement
/// candidate set (the Section 7 requirement, answered by format equality).
std::span<const Opcode> replacement_opcodes(Opcode op);

// ---------------------------------------------------------------------------
// Registers: x0..x31 with ABI names. x0 is hardwired to zero.

struct Reg {
  std::uint8_t index = 0;  // 0..31
  auto operator<=>(const Reg&) const = default;
};

inline constexpr Reg kZero{0};

/// ABI name ("a0", "sp", "t3", ...).
std::string_view reg_name(Reg r);
std::optional<Reg> parse_reg(std::string_view name);

// ---------------------------------------------------------------------------
// Instructions and blocks. The operand shape is fixed by the format, so an
// instruction is a flat record rather than an operand vector.

struct Instruction {
  Opcode opcode = Opcode::ADD;
  Reg rd{};         // R, I, U, Load
  Reg rs1{};        // R, I, Load (address base), Store (address base)
  Reg rs2{};        // R, Store (data source)
  std::int64_t imm = 0;  // I, U, Load/Store offset

  std::string to_string() const;
  bool operator==(const Instruction&) const = default;
};

struct BasicBlock {
  std::vector<Instruction> instructions;
  std::size_t size() const { return instructions.size(); }
  bool empty() const { return instructions.empty(); }
  std::string to_string() const;
  bool operator==(const BasicBlock&) const = default;
};

/// Registers read / written by `inst`. Writes to x0 are discarded by the
/// hardware and therefore reported as no write at all; reads of x0 carry
/// no dependency and are likewise omitted.
struct RvSemantics {
  std::vector<Reg> reads;
  std::optional<Reg> write;
  bool mem_read = false;
  bool mem_write = false;
};
RvSemantics semantics(const Instruction& inst);

/// Immediate-range and operand validity for the instruction's format.
bool is_valid(const Instruction& inst);
bool is_valid(const BasicBlock& block);

}  // namespace comet::riscv
