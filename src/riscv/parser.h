// RISC-V assembly parser for the RV64IM subset.
//
//   add a0, a1, a2      (R)
//   addi t0, t1, -4     (I)
//   lui  a0, 4096       (U)
//   ld   a0, 8(sp)      (Load)
//   sd   a1, 0(a0)      (Store)
//
// Accepts ABI and architectural (x0..x31) register names, '#'/';' comments,
// and blank lines.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "riscv/isa.h"

namespace comet::riscv {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse one instruction line. Throws ParseError.
Instruction parse_instruction(std::string_view line);

/// Parse a multi-line block; validates every instruction. Throws ParseError.
BasicBlock parse_block(std::string_view text);

}  // namespace comet::riscv
