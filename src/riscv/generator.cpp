#include "riscv/generator.h"

#include <array>
#include <vector>

namespace comet::riscv {

namespace {

const std::vector<Opcode>& opcodes_of_class(RvClass cls) {
  static const std::array<std::vector<Opcode>, 5> kByClass = [] {
    std::array<std::vector<Opcode>, 5> table;
    for (const Opcode op : all_opcodes()) {
      table[static_cast<std::size_t>(info(op).cls)].push_back(op);
    }
    return table;
  }();
  return kByClass[static_cast<std::size_t>(cls)];
}

}  // namespace

BasicBlock generate_block(util::Rng& rng, const RvGenOptions& options) {
  // Register pool: a0-a5-style working set (skip x0).
  std::vector<Reg> pool;
  for (std::size_t i = 0; i < options.reg_pool; ++i) {
    pool.push_back(Reg{static_cast<std::uint8_t>(10 + i)});  // a0, a1, ...
  }
  const Reg sp{2};

  const std::array<std::pair<RvClass, double>, 5> weights = {{
      {RvClass::IntAlu, options.w_alu},
      {RvClass::IntMul, options.w_mul},
      {RvClass::IntDiv, options.w_div},
      {RvClass::Load, options.w_load},
      {RvClass::Store, options.w_store},
  }};
  double total = 0;
  for (const auto& [cls, w] : weights) total += w;

  const std::size_t n =
      options.min_insts + rng.index(options.max_insts - options.min_insts + 1);
  BasicBlock block;
  for (std::size_t i = 0; i < n; ++i) {
    double pick = rng.uniform(0, total);
    RvClass cls = RvClass::IntAlu;
    for (const auto& [c, w] : weights) {
      if (pick < w) {
        cls = c;
        break;
      }
      pick -= w;
    }
    const auto& ops = opcodes_of_class(cls);
    Instruction inst;
    inst.opcode = ops[rng.index(ops.size())];
    switch (info(inst.opcode).format) {
      case Format::R:
        inst.rd = rng.pick(pool);
        inst.rs1 = rng.pick(pool);
        inst.rs2 = rng.pick(pool);
        break;
      case Format::I:
        inst.rd = rng.pick(pool);
        inst.rs1 = rng.pick(pool);
        inst.imm = (inst.opcode == Opcode::SLLI ||
                    inst.opcode == Opcode::SRLI ||
                    inst.opcode == Opcode::SRAI)
                       ? std::int64_t(rng.index(64))
                       : std::int64_t(rng.index(256)) - 128;
        break;
      case Format::U:
        inst.rd = rng.pick(pool);
        inst.imm = std::int64_t(rng.index(1 << 20));
        break;
      case Format::Load:
        inst.rd = rng.pick(pool);
        inst.rs1 = rng.uniform() < 0.5 ? sp : rng.pick(pool);
        inst.imm = std::int64_t(rng.index(32)) * 8;
        break;
      case Format::Store:
        inst.rs2 = rng.pick(pool);
        inst.rs1 = rng.uniform() < 0.5 ? sp : rng.pick(pool);
        inst.imm = std::int64_t(rng.index(32)) * 8;
        break;
    }
    block.instructions.push_back(inst);
  }
  return block;
}

std::vector<BasicBlock> generate_corpus(std::size_t n, std::uint64_t seed,
                                        const RvGenOptions& options) {
  util::Rng rng(seed);
  std::vector<BasicBlock> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(generate_block(rng, options));
  }
  return out;
}

}  // namespace comet::riscv
