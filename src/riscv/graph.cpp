#include "riscv/graph.h"

#include <algorithm>
#include <map>

namespace comet::riscv {

std::string dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::RAW: return "RAW";
    case DepKind::WAR: return "WAR";
    case DepKind::WAW: return "WAW";
  }
  return "?";
}

DepGraph DepGraph::build(const BasicBlock& block,
                         const DepGraphOptions& options) {
  DepGraph g;
  g.num_vertices_ = block.size();

  std::vector<RvSemantics> sems;
  sems.reserve(block.size());
  for (const auto& inst : block.instructions) {
    sems.push_back(semantics(inst));
  }

  // Memory identity: (base register, offset).
  const auto mem_key = [&](const Instruction& inst) {
    return std::pair<std::uint8_t, std::int64_t>(inst.rs1.index, inst.imm);
  };

  for (std::size_t j = 0; j < block.size(); ++j) {
    const auto& sj = sems[j];
    // Register hazards: scan backwards; nearest_only stops at the first
    // conflicting access per (register, kind).
    std::map<std::pair<std::uint8_t, int>, bool> linked;
    for (std::size_t bi = j; bi-- > 0;) {
      const auto& si = sems[bi];
      const auto add = [&](DepKind kind, Reg r) {
        const auto key = std::pair<std::uint8_t, int>(r.index, int(kind));
        if (options.nearest_only && linked[key]) return;
        linked[key] = true;
        DepEdge e;
        e.from = bi;
        e.to = j;
        e.kind = kind;
        e.reg = r;
        g.edges_.push_back(e);
      };
      // RAW: j reads something i writes.
      if (si.write) {
        for (const Reg r : sj.reads) {
          if (r == *si.write) add(DepKind::RAW, r);
        }
      }
      // WAR: j writes something i reads.
      if (sj.write) {
        for (const Reg r : si.reads) {
          if (r == *sj.write) add(DepKind::WAR, r);
        }
      }
      // WAW: both write the same register.
      if (si.write && sj.write && *si.write == *sj.write) {
        add(DepKind::WAW, *sj.write);
      }
    }
    // Memory hazards between syntactically identical locations.
    if (sj.mem_read || sj.mem_write) {
      for (std::size_t bi = j; bi-- > 0;) {
        const auto& si = sems[bi];
        if (!si.mem_read && !si.mem_write) continue;
        if (mem_key(block.instructions[bi]) !=
            mem_key(block.instructions[j])) {
          continue;
        }
        DepEdge e;
        e.from = bi;
        e.to = j;
        e.memory = true;
        if (si.mem_write && sj.mem_read) {
          e.kind = DepKind::RAW;
        } else if (si.mem_read && sj.mem_write) {
          e.kind = DepKind::WAR;
        } else if (si.mem_write && sj.mem_write) {
          e.kind = DepKind::WAW;
        } else {
          continue;  // read-read is no hazard
        }
        g.edges_.push_back(e);
        if (options.nearest_only) break;
      }
    }
  }
  return g;
}

bool DepGraph::has_edge(std::size_t from, std::size_t to,
                        DepKind kind) const {
  return std::any_of(edges_.begin(), edges_.end(), [&](const DepEdge& e) {
    return e.from == from && e.to == to && e.kind == kind;
  });
}

std::string DepGraph::to_string() const {
  std::string out;
  for (const auto& e : edges_) {
    out += dep_kind_name(e.kind) + "(" + std::to_string(e.from + 1) + "->" +
           std::to_string(e.to + 1) + ") via " +
           (e.memory ? "memory" : std::string(reg_name(e.reg))) + "\n";
  }
  return out;
}

std::string RvFeature::to_string() const {
  if (is_inst()) {
    return "inst" + std::to_string(as_inst().index + 1) + "(" +
           std::string(mnemonic(as_inst().opcode)) + ")";
  }
  if (is_dep()) {
    return dep_kind_name(as_dep().kind) + "(" +
           std::to_string(as_dep().from + 1) + "->" +
           std::to_string(as_dep().to + 1) + ")";
  }
  return "eta(" + std::to_string(as_num_insts().count) + ")";
}

void RvFeatureSet::insert(const RvFeature& f) {
  const auto it = std::lower_bound(features_.begin(), features_.end(), f);
  if (it == features_.end() || *it != f) features_.insert(it, f);
}

bool RvFeatureSet::contains(const RvFeature& f) const {
  return std::binary_search(features_.begin(), features_.end(), f);
}

bool RvFeatureSet::is_subset_of(const RvFeatureSet& other) const {
  return std::includes(other.features_.begin(), other.features_.end(),
                       features_.begin(), features_.end());
}

RvFeatureSet RvFeatureSet::with(const RvFeature& f) const {
  RvFeatureSet out = *this;
  out.insert(f);
  return out;
}

std::string RvFeatureSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) out += ", ";
    out += features_[i].to_string();
  }
  return out + "}";
}

RvFeatureSet extract_features(const BasicBlock& block,
                              const DepGraphOptions& options) {
  RvFeatureSet fs;
  for (std::size_t i = 0; i < block.size(); ++i) {
    fs.insert(RvFeature(RvInstFeature{i, block.instructions[i].opcode}));
  }
  const DepGraph g = DepGraph::build(block, options);
  for (const auto& e : g.edges()) {
    fs.insert(RvFeature(RvDepFeature{e.from, e.to, e.kind}));
  }
  fs.insert(RvFeature(RvNumInstsFeature{block.size()}));
  return fs;
}

}  // namespace comet::riscv
