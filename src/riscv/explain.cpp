#include "riscv/explain.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/kl_bounds.h"

namespace comet::riscv {

namespace {

struct Arm {
  RvFeatureSet features;
  std::size_t pulls = 0;
  std::size_t hits = 0;
  double mean() const {
    return pulls ? double(hits) / double(pulls) : 0.0;
  }
};

}  // namespace

RvExplainer::RvExplainer(const RvCostModel& model, RvExplainOptions options)
    : model_(model), options_(options) {}

RvExplanation RvExplainer::explain(const BasicBlock& block) const {
  util::Rng rng(options_.seed ^ util::fnv1a64(block.to_string().c_str()));
  const RvPerturber perturber(block, options_.graph_options,
                              options_.perturb_config);
  const double base = model_.predict(block);
  std::size_t queries = 1;

  const RvFeatureSet vocabulary =
      extract_features(block, options_.graph_options);

  std::vector<RvPerturbedBlock> coverage_pool;
  coverage_pool.reserve(options_.coverage_samples);
  for (std::size_t i = 0; i < options_.coverage_samples; ++i) {
    coverage_pool.push_back(perturber.sample(RvFeatureSet{}, rng));
  }
  const auto coverage_of = [&](const RvFeatureSet& fs) {
    if (coverage_pool.empty()) return 0.0;
    std::size_t hits = 0;
    for (const auto& alpha : coverage_pool) {
      hits += perturber.contains(alpha, fs);
    }
    return double(hits) / double(coverage_pool.size());
  };

  const auto pull = [&](Arm& arm) {
    for (std::size_t i = 0; i < options_.batch_size; ++i) {
      const auto alpha = perturber.sample(arm.features, rng);
      ++queries;
      if (alpha.block.empty()) continue;
      arm.hits +=
          std::abs(model_.predict(alpha.block) - base) < options_.epsilon;
      ++arm.pulls;
    }
  };

  const double threshold = 1.0 - options_.delta;
  std::vector<RvExplanation> anchors;
  std::vector<Arm> beam;
  Arm best_effort;
  double best_effort_mean = -1.0;

  for (std::size_t level = 1; level <= options_.max_explanation_size;
       ++level) {
    std::vector<Arm> arms;
    const auto add_candidate = [&](const RvFeatureSet& fs) {
      for (const auto& a : arms) {
        if (a.features == fs) return;
      }
      Arm arm;
      arm.features = fs;
      arms.push_back(std::move(arm));
    };
    if (level == 1) {
      for (const auto& f : vocabulary.items()) {
        add_candidate(RvFeatureSet{}.with(f));
      }
    } else {
      for (const Arm& parent : beam) {
        for (const auto& f : vocabulary.items()) {
          if (parent.features.contains(f)) continue;
          add_candidate(parent.features.with(f));
        }
      }
    }
    if (arms.empty()) break;

    for (auto& arm : arms) pull(arm);
    std::size_t pulls_done = arms.size();
    const std::size_t B = std::min(options_.beam_width, arms.size());
    std::vector<std::size_t> order(arms.size());
    while (pulls_done < options_.max_pulls_per_level) {
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return arms[a].mean() > arms[b].mean();
                });
      const double level_beta = util::kl_lucb_level(
          pulls_done, arms.size(), options_.lucb_confidence_delta);
      std::size_t weakest = order[0];
      double weakest_lb = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < B; ++i) {
        const Arm& a = arms[order[i]];
        const double lb = util::kl_lower_bound(a.mean(), a.pulls, level_beta);
        if (lb < weakest_lb) {
          weakest_lb = lb;
          weakest = order[i];
        }
      }
      std::size_t challenger = order[0];
      double challenger_ub = -std::numeric_limits<double>::infinity();
      for (std::size_t i = B; i < order.size(); ++i) {
        const Arm& a = arms[order[i]];
        const double ub = util::kl_upper_bound(a.mean(), a.pulls, level_beta);
        if (ub > challenger_ub) {
          challenger_ub = ub;
          challenger = order[i];
        }
      }
      if (order.size() <= B ||
          challenger_ub - weakest_lb < options_.lucb_epsilon) {
        break;
      }
      pull(arms[weakest]);
      pull(arms[challenger]);
      pulls_done += 2;
    }

    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return arms[a].mean() > arms[b].mean();
    });
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      Arm& arm = arms[order[i]];
      if (arm.mean() > best_effort_mean) {
        best_effort_mean = arm.mean();
        best_effort = arm;
      }
      if (arm.mean() < threshold) continue;
      RvExplanation e;
      e.features = arm.features;
      e.precision = arm.mean();
      e.coverage = coverage_of(arm.features);
      e.met_threshold = true;
      anchors.push_back(std::move(e));
    }
    if (!anchors.empty()) break;

    beam.clear();
    for (std::size_t i = 0; i < std::min(B, order.size()); ++i) {
      beam.push_back(arms[order[i]]);
    }
  }

  RvExplanation result;
  if (!anchors.empty()) {
    result = *std::max_element(anchors.begin(), anchors.end(),
                               [](const RvExplanation& a,
                                  const RvExplanation& b) {
                                 return a.coverage < b.coverage;
                               });
  } else {
    result.features = best_effort.features;
    result.precision = best_effort.mean();
    result.coverage = coverage_of(best_effort.features);
    result.met_threshold = false;
  }
  result.model_queries = queries;
  return result;
}

}  // namespace comet::riscv
