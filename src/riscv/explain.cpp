// RvExplainer is a pure instantiation of the generic anchor engine; there
// is deliberately no search logic in this file (the pre-redesign duplicate
// of the beam-search/KL-LUCB loop lived here).
#include "riscv/explain.h"

namespace comet::riscv {

RvExplainer::RvExplainer(const RvCostModel& model, RvExplainOptions options)
    : model_(model), options_(options) {}

RvExplanation RvExplainer::explain(const BasicBlock& block) const {
  return engine().explain(block);
}

double RvExplainer::estimate_precision(const BasicBlock& block,
                                       const RvFeatureSet& features,
                                       std::size_t samples,
                                       util::Rng& rng) const {
  return engine().estimate_precision(block, features, samples, rng);
}

double RvExplainer::estimate_coverage(const BasicBlock& block,
                                      const RvFeatureSet& features,
                                      std::size_t samples,
                                      util::Rng& rng) const {
  return engine().estimate_coverage(block, features, samples, rng);
}

}  // namespace comet::riscv
