#include "riscv/parser.h"

#include <charconv>

#include "util/str.h"

namespace comet::riscv {

namespace {

[[noreturn]] void fail(std::string_view line, const std::string& why) {
  throw ParseError("riscv parse error in '" + std::string(line) +
                   "': " + why);
}

Reg expect_reg(std::string_view line, std::string_view tok) {
  const auto r = parse_reg(util::trim(tok));
  if (!r) fail(line, "bad register '" + std::string(tok) + "'");
  return *r;
}

std::int64_t expect_imm(std::string_view line, std::string_view tok) {
  // from_chars instead of strtoll: strtoll reports overflow only through
  // errno, so "99999999999999999999999" silently became LLONG_MAX and an
  // absurd immediate sailed through the parse boundary (found by
  // fuzz_riscv_parser). from_chars makes out-of-range a parse error.
  std::string_view s = util::trim(tok);
  if (s.empty()) fail(line, "missing immediate");
  const std::string original(s);
  bool neg = false;
  if (s.front() == '-' || s.front() == '+') {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  int base = 10;
  if (util::starts_with(s, "0x") || util::starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
  }
  if (s.empty()) fail(line, "bad immediate '" + original + "'");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(line, "bad immediate '" + original + "'");
  }
  return neg ? -value : value;
}

/// Split "imm(reg)" into its parts.
void parse_mem(std::string_view line, std::string_view tok,
               std::int64_t& imm, Reg& base) {
  const auto open = tok.find('(');
  const auto close = tok.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    fail(line, "bad memory operand '" + std::string(tok) + "'");
  }
  const auto off = util::trim(tok.substr(0, open));
  imm = off.empty() ? 0 : expect_imm(line, off);
  base = expect_reg(line, tok.substr(open + 1, close - open - 1));
}

}  // namespace

Instruction parse_instruction(std::string_view line) {
  const auto trimmed = util::trim(line);
  const auto sp = trimmed.find_first_of(" \t");
  const auto mn = sp == std::string_view::npos ? trimmed : trimmed.substr(0, sp);
  const auto op = parse_opcode(mn);
  if (!op) fail(line, "unknown mnemonic '" + std::string(mn) + "'");

  const auto rest =
      sp == std::string_view::npos ? std::string_view{} : trimmed.substr(sp);
  const auto parts = util::split(rest, ',');

  Instruction inst;
  inst.opcode = *op;
  switch (info(*op).format) {
    case Format::R:
      if (parts.size() != 3) fail(line, "R-type needs rd, rs1, rs2");
      inst.rd = expect_reg(line, parts[0]);
      inst.rs1 = expect_reg(line, parts[1]);
      inst.rs2 = expect_reg(line, parts[2]);
      break;
    case Format::I:
      if (parts.size() != 3) fail(line, "I-type needs rd, rs1, imm");
      inst.rd = expect_reg(line, parts[0]);
      inst.rs1 = expect_reg(line, parts[1]);
      inst.imm = expect_imm(line, parts[2]);
      break;
    case Format::U:
      if (parts.size() != 2) fail(line, "U-type needs rd, imm");
      inst.rd = expect_reg(line, parts[0]);
      inst.imm = expect_imm(line, parts[1]);
      break;
    case Format::Load:
      if (parts.size() != 2) fail(line, "load needs rd, imm(rs1)");
      inst.rd = expect_reg(line, parts[0]);
      parse_mem(line, parts[1], inst.imm, inst.rs1);
      break;
    case Format::Store:
      if (parts.size() != 2) fail(line, "store needs rs2, imm(rs1)");
      inst.rs2 = expect_reg(line, parts[0]);
      parse_mem(line, parts[1], inst.imm, inst.rs1);
      break;
  }
  if (!is_valid(inst)) fail(line, "operands out of range");
  return inst;
}

BasicBlock parse_block(std::string_view text) {
  BasicBlock block;
  for (const auto& raw : util::split(text, '\n')) {
    auto line = std::string_view(raw);
    for (const char c : {'#', ';'}) {
      const auto pos = line.find(c);
      if (pos != std::string_view::npos) line = line.substr(0, pos);
    }
    line = util::trim(line);
    if (line.empty()) continue;
    block.instructions.push_back(parse_instruction(line));
  }
  return block;
}

}  // namespace comet::riscv
