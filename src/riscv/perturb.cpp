#include "riscv/perturb.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

namespace comet::riscv {

std::size_t RvPerturbedBlock::position_of(std::size_t orig) const {
  for (std::size_t i = 0; i < orig_index.size(); ++i) {
    if (orig_index[i] == orig) return i;
  }
  return npos;
}

RvPerturber::RvPerturber(BasicBlock block, DepGraphOptions graph_options,
                         RvPerturbConfig config)
    : block_(std::move(block)),
      graph_options_(graph_options),
      config_(config),
      graph_(DepGraph::build(block_, graph_options)) {}

RvPerturbedBlock RvPerturber::sample(const RvFeatureSet& preserve,
                                     util::Rng& rng) const {
  const std::size_t n = block_.size();

  bool preserve_eta = false;
  std::vector<bool> opcode_pinned(n, false);
  std::vector<bool> vertex_pinned(n, false);  // may not be deleted
  // Pinned register occurrences, keyed by (instruction, register, role):
  // role distinguishes the read and write occurrences of the same register
  // within one instruction (e.g. `add a3, a3, a4`), so preserving a WAW
  // hazard pins only the write slots and leaves a coincident RAW's read
  // slot free to rename — otherwise every same-pair hazard would become an
  // inseparable proxy for the others.
  enum : std::uint8_t { kRoleRead = 0, kRoleWrite = 1 };
  std::set<std::tuple<std::size_t, std::uint8_t, std::uint8_t>> reg_pinned;
  // Preserved hazards, by (from, to, kind): only same-kind edges of a pair
  // are off-limits to the edge-perturbation pass.
  std::set<std::tuple<std::size_t, std::size_t, DepKind>> preserved_deps;

  for (const auto& f : preserve.items()) {
    if (f.is_num_insts()) {
      preserve_eta = true;
    } else if (f.is_inst()) {
      opcode_pinned[f.as_inst().index] = true;
      vertex_pinned[f.as_inst().index] = true;
    } else {
      const auto& d = f.as_dep();
      // Pin the endpoints' opcodes and the hazard-carrying occurrences —
      // mirroring the x86 Γ.
      opcode_pinned[d.from] = opcode_pinned[d.to] = true;
      vertex_pinned[d.from] = vertex_pinned[d.to] = true;
      preserved_deps.insert(std::make_tuple(d.from, d.to, d.kind));
      for (const auto& e : graph_.edges()) {
        if (e.from != d.from || e.to != d.to || e.kind != d.kind ||
            e.memory) {
          continue;
        }
        switch (e.kind) {
          case DepKind::RAW:
            reg_pinned.insert(std::make_tuple(e.from, e.reg.index, kRoleWrite));
            reg_pinned.insert(std::make_tuple(e.to, e.reg.index, kRoleRead));
            break;
          case DepKind::WAR:
            reg_pinned.insert(std::make_tuple(e.from, e.reg.index, kRoleRead));
            reg_pinned.insert(std::make_tuple(e.to, e.reg.index, kRoleWrite));
            break;
          case DepKind::WAW:
            reg_pinned.insert(std::make_tuple(e.from, e.reg.index, kRoleWrite));
            reg_pinned.insert(std::make_tuple(e.to, e.reg.index, kRoleWrite));
            break;
        }
      }
    }
  }

  BasicBlock out = block_;
  std::vector<bool> deleted(n, false);

  // --- vertex perturbation: opcode replacement or deletion ---
  for (std::size_t i = 0; i < n; ++i) {
    if (opcode_pinned[i]) continue;
    if (rng.uniform() < config_.p_inst_retain) continue;
    const bool can_delete = !preserve_eta && !vertex_pinned[i];
    if (can_delete && rng.uniform() < config_.p_delete) {
      deleted[i] = true;
      continue;
    }
    // Format equality is necessary but not sufficient: shift-immediates
    // (slli/srli/srai) take a 6-bit shamt while the other I-type opcodes
    // take a signed 12-bit immediate, so a candidate must also keep the
    // concrete instruction valid — one of the "instance-specific
    // challenges" Section 7 anticipates for new ISAs.
    std::vector<Opcode> valid;
    for (const Opcode cand :
         replacement_opcodes(block_.instructions[i].opcode)) {
      Instruction probe = out.instructions[i];
      probe.opcode = cand;
      if (is_valid(probe)) valid.push_back(cand);
    }
    if (valid.empty()) continue;  // retained (Appendix D)
    out.instructions[i].opcode = valid[rng.index(valid.size())];
  }

  // --- edge perturbation: break unpreserved register hazards by renaming,
  //     memory hazards by shifting the offset ---
  // Registers already used anywhere in the block (fresh-rename pool is the
  // complement, excluding x0).
  std::set<std::uint8_t> used;
  for (const auto& inst : block_.instructions) {
    used.insert(inst.rd.index);
    used.insert(inst.rs1.index);
    used.insert(inst.rs2.index);
  }
  const auto fresh_reg = [&]() -> Reg {
    std::vector<std::uint8_t> pool;
    for (std::uint8_t r = 1; r < 32; ++r) {
      if (!used.count(r)) pool.push_back(r);
    }
    if (pool.empty()) return Reg{5};  // t0 fallback: pathological blocks
    return Reg{pool[rng.index(pool.size())]};
  };

  std::set<std::tuple<std::size_t, std::size_t, DepKind>> broken;
  for (const auto& e : graph_.edges()) {
    if (preserved_deps.count(std::make_tuple(e.from, e.to, e.kind))) continue;
    if (deleted[e.from] || deleted[e.to]) continue;  // edge already gone
    if (broken.count(std::make_tuple(e.from, e.to, e.kind))) continue;
    if (rng.uniform() < config_.p_dep_retain) continue;

    if (e.memory) {
      // Shift the consumer's offset; keeps the 12-bit range by wrapping.
      auto& inst = out.instructions[e.to];
      const std::int64_t shifted = inst.imm + 8;
      inst.imm = shifted <= 2047 ? shifted : inst.imm - 8;
      broken.insert(std::make_tuple(e.from, e.to, e.kind));
      continue;
    }

    // Register hazard: rename the consumer-side occurrence to a fresh
    // register (RAW renames the read; WAR/WAW rename the write).
    auto& inst = out.instructions[e.to];
    const std::uint8_t r = e.reg.index;
    const std::uint8_t role = e.kind == DepKind::RAW ? 0 : 1;
    if (reg_pinned.count(std::make_tuple(e.to, r, std::uint8_t{role}))) continue;  // retained (App. D)
    const Reg fresh = fresh_reg();
    used.insert(fresh.index);
    switch (e.kind) {
      case DepKind::RAW:
        if (inst.rs1.index == r) inst.rs1 = fresh;
        if (inst.rs2.index == r) inst.rs2 = fresh;
        break;
      case DepKind::WAR:
      case DepKind::WAW:
        if (inst.rd.index == r) inst.rd = fresh;
        break;
    }
    broken.insert(std::make_tuple(e.from, e.to, e.kind));
  }

  RvPerturbedBlock pb;
  for (std::size_t i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    pb.block.instructions.push_back(out.instructions[i]);
    pb.orig_index.push_back(i);
  }
  return pb;
}

bool RvPerturber::contains(const RvPerturbedBlock& pb,
                           const RvFeatureSet& fs) const {
  if (fs.empty()) return true;
  const DepGraph g = DepGraph::build(pb.block, graph_options_);
  for (const auto& f : fs.items()) {
    if (f.is_num_insts()) {
      if (pb.block.size() != f.as_num_insts().count) return false;
    } else if (f.is_inst()) {
      const std::size_t pos = pb.position_of(f.as_inst().index);
      if (pos == RvPerturbedBlock::npos ||
          pb.block.instructions[pos].opcode != f.as_inst().opcode) {
        return false;
      }
    } else {
      const auto& d = f.as_dep();
      const std::size_t from = pb.position_of(d.from);
      const std::size_t to = pb.position_of(d.to);
      if (from == RvPerturbedBlock::npos || to == RvPerturbedBlock::npos ||
          !g.has_edge(from, to, d.kind)) {
        return false;
      }
    }
  }
  return true;
}

double RvPerturber::log10_space_size(const RvFeatureSet& preserve) const {
  bool preserve_eta = false;
  std::vector<bool> pinned(block_.size(), false);
  for (const auto& f : preserve.items()) {
    if (f.is_num_insts()) preserve_eta = true;
    if (f.is_inst()) pinned[f.as_inst().index] = true;
    if (f.is_dep()) {
      pinned[f.as_dep().from] = true;
      pinned[f.as_dep().to] = true;
    }
  }
  double log10 = 0.0;
  for (std::size_t i = 0; i < block_.size(); ++i) {
    if (pinned[i]) continue;
    const double choices =
        1.0 + double(replacement_opcodes(block_.instructions[i].opcode).size()) +
        (preserve_eta ? 0.0 : 1.0);
    log10 += std::log10(choices);
  }
  // Each breakable hazard contributes the rename-target pool.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& e : graph_.edges()) {
    if (pinned[e.from] && pinned[e.to]) continue;
    if (pairs.insert({e.from, e.to}).second) log10 += std::log10(20.0);
  }
  return log10;
}

}  // namespace comet::riscv
