// Analytical RISC-V cost model with exact ground-truth explanations — the
// RV64 analogue of the paper's crude interpretable model C (Section 6,
// eq. 8-9), enabling the same objective accuracy evaluation of the ported
// framework.
//
//   C_rv(β) = max{ cost_η(n), max_i cost_inst(inst_i),
//                  max_{δij} cost_dep(δij) }
//
// Costs model a dual-issue in-order RV64 core (a Rocket/SiFive-U74-class
// machine): cost_η = n/2 (issue bound), per-class instruction costs
// (divides dominate, loads carry L1 latency), RAW dependencies serialize
// their endpoints, WAR/WAW are free after renaming.
#pragma once

#include <span>
#include <string>

#include "riscv/graph.h"

namespace comet::riscv {

class RvCostModel {
 public:
  explicit RvCostModel(DepGraphOptions graph_options = {});

  double predict(const BasicBlock& block) const;
  /// Batched prediction (element-wise equal to predict); the batch entry
  /// point the query broker drives.
  void predict_batch(std::span<const BasicBlock> blocks,
                     std::span<double> out) const;
  std::string name() const { return "crude-rv64"; }

  double cost_num_insts(std::size_t n) const;
  double cost_inst(const Instruction& inst) const;
  double cost_dep(const BasicBlock& block, const DepEdge& edge) const;

  /// GT(β): every feature whose cost attains C_rv(β) (eq. 9 analogue).
  RvFeatureSet ground_truth(const BasicBlock& block) const;

 private:
  DepGraphOptions graph_options_;
};

}  // namespace comet::riscv
