// Out-of-order steady-state pipeline simulator.
//
// This is the simulation substrate standing in for (a) real Haswell/Skylake
// hardware (the "HardwareOracle" — the reference against which model error
// is measured and from which the synthetic BHive labels are produced) and
// (b) the uiCA simulation-based cost model (same simulator family with
// deliberately coarsened parameters; see models.h).
//
// The model captures the bottleneck structure that drives basic-block
// throughput on modern Intel cores:
//   * front-end issue width (uops/cycle, in order);
//   * execution-port contention: each uop binds greedily to the earliest
//     free port among its allowed set; non-pipelined operations (divides)
//     occupy their port for multiple cycles;
//   * data dependencies: a uop starts only after the producers of the
//     registers/memory it reads complete, including loop-carried
//     dependencies across iterations of the steadily looped block;
//   * zeroing idioms (xor r,r / pxor x,x / ...): executed at rename,
//     zero latency, no port, dependency-breaking (optional);
//   * load latency on dependency chains and load/store port limits.
//
// Throughput is the steady-state slope: the block is looped for a number of
// iterations and the cycles per iteration are measured over the second half.
#pragma once

#include <cstdint>

#include "cost/cost_model.h"
#include "x86/instruction.h"

namespace comet::sim {

/// Simulator knobs. The oracle uses the defaults; the uiCA-like model
/// coarsens some of them (see models.cpp).
struct SimOptions {
  int issue_width = 4;
  int iterations = 64;          ///< loop iterations simulated
  bool zero_idiom = true;       ///< recognize dependency-breaking idioms
  double latency_scale = 1.0;   ///< multiplies all instruction latencies
  bool round_latencies = false; ///< round scaled latencies up to integers
  double div_occupancy_extra = 0.0;  ///< extra cycles on the divide port
  bool model_loop_carried = true;    ///< track deps across iterations
  /// Skip execution-port contention entirely (used by the bottleneck
  /// analysis to isolate the pure dependency-chain bound).
  bool ignore_ports = false;
};

/// Number of execution ports modeled (Intel convention: 0/1/5/6 integer
/// ALU, 0/1 FP, 2/3 load, 4 store-data, 7 store-address).
inline constexpr int kSimPorts = 8;

/// What gated the start of an instruction occurrence in the steady-state
/// window (the uiCA-style stall attribution; see bottleneck.h).
enum class StallCause : std::uint8_t { FrontEnd, Dependency, Port };

/// Instrumentation of the measured (second-half) simulation window,
/// filled by simulate_throughput when a trace pointer is supplied.
struct SimTrace {
  /// Busy cycles per execution port over the window.
  double port_busy[kSimPorts] = {};
  /// Iterations in the measured window.
  int window_iterations = 0;
  /// Fused-domain uops per block iteration.
  int uops_per_iteration = 0;
  /// Per original instruction index: occurrences gated by each cause.
  std::vector<int> frontend_stalls;
  std::vector<int> dependency_stalls;
  std::vector<int> port_stalls;
};

/// Steady-state throughput (cycles per iteration) of `block` looped on
/// `uarch` under `options`. Deterministic. When `trace` is non-null it is
/// filled with steady-state window instrumentation.
double simulate_throughput(const x86::BasicBlock& block,
                           cost::MicroArch uarch,
                           const SimOptions& options = {},
                           SimTrace* trace = nullptr);

/// Is `inst` a recognized zeroing idiom (xor/sub/pxor/xorps of a register
/// with itself)?
bool is_zero_idiom(const x86::Instruction& inst);

/// Number of fused-domain uops `inst` decodes into (compute + load +
/// store-address/data uops).
int uop_count(const x86::Instruction& inst);

}  // namespace comet::sim
