// uiCA-style bottleneck analysis (paper Appendix H.3).
//
// The paper contrasts uiCA with neural models partly on insight: uiCA "can
// output detailed insights into its process of computing its throughput
// prediction, such as where in the CPU's pipeline its simulator identified
// a bottleneck". This module provides that capability for the simulation
// substrate: given a block, it reports the three classical throughput
// bounds —
//
//   * front-end:   uops per iteration / issue width,
//   * ports:       busiest execution-port occupancy per iteration,
//   * dependency:  cycles per iteration with port contention disabled
//                  (the pure loop-carried latency-chain bound),
//
// classifies which bound binds the measured steady-state throughput, and
// attributes per-instruction stalls (what gated each occurrence's start in
// the measured window). Examples and the differential-analysis tool use the
// report to cross-check COMET's explanations against the simulator's own
// account of the block.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "sim/pipeline.h"
#include "x86/instruction.h"

namespace comet::sim {

/// Which classical bound binds the block's throughput.
enum class BottleneckKind : std::uint8_t {
  FrontEnd,    ///< issue width saturated
  Ports,       ///< one execution port saturated
  Dependency,  ///< a loop-carried latency chain dominates
};

std::string bottleneck_kind_name(BottleneckKind kind);

/// Per-instruction stall attribution over the measured window.
struct InstStallProfile {
  std::size_t index = 0;      ///< instruction position in the block
  std::string text;           ///< rendered instruction
  double frontend_frac = 0;   ///< fraction of occurrences gated by issue
  double dependency_frac = 0; ///< ... by operand readiness
  double port_frac = 0;       ///< ... by port availability
};

struct BottleneckReport {
  double throughput = 0.0;        ///< measured cycles/iteration
  double frontend_bound = 0.0;    ///< uops / issue width
  double port_bound = 0.0;        ///< busiest port's cycles/iteration
  double dependency_bound = 0.0;  ///< cycles/iteration, ports disabled
  int busiest_port = -1;
  std::array<double, kSimPorts> port_pressure{};  ///< cycles/iter per port
  BottleneckKind kind = BottleneckKind::FrontEnd;
  std::vector<InstStallProfile> stalls;
  /// Instructions whose occurrences were predominantly gated by the
  /// binding resource (the simulator's own "explanation" of the block).
  std::vector<std::size_t> critical_instructions;

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// Analyze `block` looped on `uarch`. Deterministic.
BottleneckReport analyze_bottleneck(const x86::BasicBlock& block,
                                    cost::MicroArch uarch,
                                    const SimOptions& options = {});

}  // namespace comet::sim
