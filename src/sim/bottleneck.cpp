#include "sim/bottleneck.h"

#include <algorithm>
#include <cmath>

#include "util/table.h"

namespace comet::sim {

std::string bottleneck_kind_name(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::FrontEnd: return "front-end";
    case BottleneckKind::Ports: return "ports";
    case BottleneckKind::Dependency: return "dependency";
  }
  return "?";
}

BottleneckReport analyze_bottleneck(const x86::BasicBlock& block,
                                    cost::MicroArch uarch,
                                    const SimOptions& options) {
  BottleneckReport r;
  if (block.empty()) return r;

  SimTrace trace;
  r.throughput = simulate_throughput(block, uarch, options, &trace);

  r.frontend_bound = static_cast<double>(trace.uops_per_iteration) /
                     options.issue_width;

  const double iters = std::max(1, trace.window_iterations);
  for (int p = 0; p < kSimPorts; ++p) {
    r.port_pressure[p] = trace.port_busy[p] / iters;
    if (r.busiest_port < 0 || r.port_pressure[p] > r.port_bound) {
      r.port_bound = r.port_pressure[p];
      r.busiest_port = p;
    }
  }

  SimOptions dep_only = options;
  dep_only.ignore_ports = true;
  dep_only.issue_width = 1000000;  // effectively unbounded front-end
  r.dependency_bound = simulate_throughput(block, uarch, dep_only);

  // The binding bound is the one closest to (and explaining most of) the
  // measured throughput. Ties break toward the finer-grained account:
  // dependency > ports > front-end.
  const double d_dep = std::abs(r.throughput - r.dependency_bound);
  const double d_port = std::abs(r.throughput - r.port_bound);
  const double d_fe = std::abs(r.throughput - r.frontend_bound);
  if (d_dep <= d_port && d_dep <= d_fe) {
    r.kind = BottleneckKind::Dependency;
  } else if (d_port <= d_fe) {
    r.kind = BottleneckKind::Ports;
  } else {
    r.kind = BottleneckKind::FrontEnd;
  }

  r.stalls.reserve(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    InstStallProfile s;
    s.index = i;
    s.text = block.instructions[i].to_string();
    const double total = trace.frontend_stalls[i] +
                         trace.dependency_stalls[i] + trace.port_stalls[i];
    if (total > 0) {
      s.frontend_frac = trace.frontend_stalls[i] / total;
      s.dependency_frac = trace.dependency_stalls[i] / total;
      s.port_frac = trace.port_stalls[i] / total;
    }
    r.stalls.push_back(std::move(s));
  }

  // Critical instructions: gated by the binding resource in the majority
  // of their occurrences. Under a front-end bottleneck every instruction
  // issues back-to-back, so the set would be the whole block; report the
  // multi-uop instructions instead (they consume the issue slots).
  for (const auto& s : r.stalls) {
    switch (r.kind) {
      case BottleneckKind::Dependency:
        if (s.dependency_frac > 0.5) r.critical_instructions.push_back(s.index);
        break;
      case BottleneckKind::Ports:
        if (s.port_frac > 0.5) r.critical_instructions.push_back(s.index);
        break;
      case BottleneckKind::FrontEnd:
        if (uop_count(block.instructions[s.index]) > 1) {
          r.critical_instructions.push_back(s.index);
        }
        break;
    }
  }

  return r;
}

std::string BottleneckReport::to_string() const {
  std::string out;
  out += "throughput: " + util::Table::fmt(throughput, 2) +
         " cycles/iter  [bottleneck: " + bottleneck_kind_name(kind) + "]\n";
  out += "bounds: front-end " + util::Table::fmt(frontend_bound, 2) +
         ", ports " + util::Table::fmt(port_bound, 2) + " (p" +
         std::to_string(busiest_port) + "), dependency " +
         util::Table::fmt(dependency_bound, 2) + "\n";
  out += "port pressure (cycles/iter):";
  for (int p = 0; p < kSimPorts; ++p) {
    out += " p" + std::to_string(p) + "=" +
           util::Table::fmt(port_pressure[p], 2);
  }
  out += "\n";
  for (const auto& s : stalls) {
    const bool critical =
        std::find(critical_instructions.begin(), critical_instructions.end(),
                  s.index) != critical_instructions.end();
    out += (critical ? "  * " : "    ") + std::to_string(s.index + 1) + ": " +
           s.text + "  [fe " + util::Table::fmt(100 * s.frontend_frac, 0) +
           "% dep " + util::Table::fmt(100 * s.dependency_frac, 0) +
           "% port " + util::Table::fmt(100 * s.port_frac, 0) + "%]\n";
  }
  return out;
}

}  // namespace comet::sim
