// Simulation-based cost models and the hardware-measurement stand-in.
//
//  * HardwareOracle — the detailed simulator configuration that plays the
//    role of real Haswell/Skylake silicon in this reproduction: it defines
//    the "actual" throughput of a block. measured_throughput() adds small
//    deterministic per-block measurement noise on top, mimicking the BHive
//    measurement pipeline that labels the dataset.
//  * UiCASimModel — the uiCA stand-in: the same simulator family with
//    deliberately coarsened parameters (rounded latencies, slightly
//    pessimistic divider occupancy). It tracks the oracle closely but not
//    exactly, reproducing uiCA's role as the lowest-error comparator.
//  * McaLikeModel — an LLVM-MCA-style static bound: no loop-carried
//    dependency tracking, so latency-bound blocks are underestimated.
//    Used in discussion/extension benches only.
#pragma once

#include "cost/cost_model.h"
#include "sim/pipeline.h"

namespace comet::sim {

class HardwareOracle final : public cost::CostModel {
 public:
  explicit HardwareOracle(cost::MicroArch uarch);
  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  std::string name() const override;
  cost::MicroArch uarch() const { return uarch_; }

 private:
  cost::MicroArch uarch_;
  SimOptions options_;
};

class UiCASimModel final : public cost::CostModel {
 public:
  explicit UiCASimModel(cost::MicroArch uarch);
  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  std::string name() const override;
  cost::MicroArch uarch() const { return uarch_; }

 private:
  cost::MicroArch uarch_;
  SimOptions options_;
};

class McaLikeModel final : public cost::CostModel {
 public:
  explicit McaLikeModel(cost::MicroArch uarch);
  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  std::string name() const override;

 private:
  cost::MicroArch uarch_;
  SimOptions options_;
};

/// The "measured on actual hardware" throughput of a block: oracle
/// prediction with +-2% deterministic, block-hash-seeded measurement noise.
/// This is what the synthetic BHive dataset is labeled with and what MAPE
/// is computed against.
double measured_throughput(const x86::BasicBlock& block,
                           cost::MicroArch uarch);

}  // namespace comet::sim
