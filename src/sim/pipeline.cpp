#include "sim/pipeline.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "cost/throughput_table.h"

namespace comet::sim {

namespace {

using cost::MicroArch;
using x86::OpClass;
using x86::Opcode;

constexpr int kNumPorts = 8;

// Execution-port mask (bit i = port i) for the compute uop of an opcode
// class, per microarchitecture. Port numbering follows Intel convention:
// 0/1/5/6 integer ALU, 0/1 FP, 2/3 load, 4 store-data, 7 store-address.
std::uint16_t compute_ports(OpClass cls, MicroArch u) {
  const bool skl = u == MicroArch::Skylake;
  switch (cls) {
    case OpClass::Mov:
    case OpClass::IntAlu:
    case OpClass::Stack:
      return 0b01100011;  // p0 p1 p5 p6
    case OpClass::Shift:
      return 0b01000001;  // p0 p6
    case OpClass::Lea:
      return 0b00100010;  // p1 p5
    case OpClass::IntMul:
      return 0b00000010;  // p1
    case OpClass::IntDiv:
      return 0b00000001;  // p0 (divider)
    case OpClass::Nop:
      return 0b01100011;
    case OpClass::FpMov:
      return 0b00100011;  // p0 p1 p5
    case OpClass::FpAdd:
      return skl ? 0b00000011   // SKL: p0 p1
                 : 0b00000010;  // HSW: p1 only
    case OpClass::FpMul:
    case OpClass::FpFma:
      return 0b00000011;  // p0 p1
    case OpClass::FpDiv:
      return 0b00000001;  // p0 (divider)
    case OpClass::VecInt:
      return 0b00100011;  // p0 p1 p5
    case OpClass::VecIntMul:
      return skl ? 0b00000011 : 0b00000001;
    case OpClass::Shuffle:
      return 0b00100000;  // p5
    case OpClass::Convert:
      return 0b00000011;
  }
  return 0b01100011;
}

constexpr std::uint16_t kLoadPorts = 0b00001100;       // p2 p3
constexpr std::uint16_t kStoreDataPorts = 0b00010000;  // p4
constexpr std::uint16_t kStoreAddrPorts = 0b10001100;  // p2 p3 p7

struct PortFile {
  std::array<double, kNumPorts> free_at{};  // next free cycle per port
  int last_port = -1;  ///< port chosen by the most recent dispatch

  /// Dispatch a uop with earliest start `ready` on any port in `mask`,
  /// occupying the chosen port for `occupancy` cycles. Returns start time.
  /// Ties on start time go to the least-loaded (earliest-free) port, so
  /// un-contended uops spread across their port set instead of queueing
  /// behind an arbitrary fixed pick — this is what makes the per-port
  /// pressure numbers in SimTrace meaningful.
  double dispatch(double ready, std::uint16_t mask, double occupancy) {
    int best = -1;
    double best_start = 0.0;
    for (int p = 0; p < kNumPorts; ++p) {
      if (!(mask & (1u << p))) continue;
      const double start = std::max(ready, free_at[p]);
      if (best < 0 || start < best_start ||
          (start == best_start && free_at[p] < free_at[best])) {
        best = p;
        best_start = start;
      }
    }
    last_port = best;
    if (best < 0) return ready;  // no port constraint
    free_at[best] = best_start + occupancy;
    return best_start;
  }
};

// Memory location key: syntactic identity of the address expression.
std::string mem_key(const x86::MemOperand& m) {
  std::string k;
  if (m.base) k += x86::reg_name(*m.base);
  k += '|';
  if (m.index) {
    k += x86::reg_name(*m.index);
    k += '*';
    k += std::to_string(int(m.scale));
  }
  k += '|';
  k += std::to_string(m.disp);
  return k;
}

struct DecodedInst {
  x86::InstSemantics sem;
  std::uint16_t ports;
  double latency;
  double occupancy;
  bool zero_idiom;
  bool load;
  bool store;
  int uops;
};

DecodedInst decode(const x86::Instruction& inst, MicroArch u,
                   const SimOptions& opt) {
  DecodedInst d;
  d.sem = x86::semantics(inst);
  const auto& inf = x86::info(inst.opcode);
  d.ports = compute_ports(inf.cls, u);
  d.load = (d.sem.mem && d.sem.mem->read) || d.sem.stack_mem_read;
  d.store = (d.sem.mem && d.sem.mem->write) || d.sem.stack_mem_write;

  double lat = cost::inst_latency(inst, u) * opt.latency_scale;
  if (opt.round_latencies) lat = std::max(1.0, std::round(lat));
  d.latency = lat;

  // Non-pipelined units (dividers) occupy their port for the reciprocal
  // throughput; pipelined ops occupy one cycle.
  const double rt = cost::inst_throughput(inst, u);
  const bool divider =
      inf.cls == OpClass::IntDiv || inf.cls == OpClass::FpDiv;
  d.occupancy = divider ? rt + opt.div_occupancy_extra
                        : std::min(1.0, std::max(0.25, rt));

  d.zero_idiom = opt.zero_idiom && is_zero_idiom(inst);
  d.uops = uop_count(inst);
  return d;
}

}  // namespace

bool is_zero_idiom(const x86::Instruction& inst) {
  switch (inst.opcode) {
    case Opcode::XOR:
    case Opcode::SUB:
    case Opcode::PXOR:
    case Opcode::XORPS:
    case Opcode::XORPD:
      break;
    case Opcode::VXORPS: {
      // vxorps dst, a, a with a == a.
      if (inst.operands.size() == 3 && inst.operands[1].is_reg() &&
          inst.operands[2].is_reg() &&
          inst.operands[1].as_reg() == inst.operands[2].as_reg()) {
        return true;
      }
      return false;
    }
    default:
      return false;
  }
  return inst.operands.size() == 2 && inst.operands[0].is_reg() &&
         inst.operands[1].is_reg() &&
         inst.operands[0].as_reg() == inst.operands[1].as_reg();
}

int uop_count(const x86::Instruction& inst) {
  const auto sem = x86::semantics(inst);
  int uops = 1;
  if ((sem.mem && sem.mem->read) || sem.stack_mem_read) uops += 1;
  if ((sem.mem && sem.mem->write) || sem.stack_mem_write) uops += 2;
  return uops;
}

double simulate_throughput(const x86::BasicBlock& block,
                           cost::MicroArch uarch, const SimOptions& opt,
                           SimTrace* trace) {
  if (block.empty()) return 0.0;

  std::vector<DecodedInst> dec;
  dec.reserve(block.size());
  int uops_per_iter = 0;
  for (const auto& inst : block.instructions) {
    dec.push_back(decode(inst, uarch, opt));
    uops_per_iter += dec.back().uops;
  }

  PortFile ports;
  std::map<x86::RegFamily, double> reg_ready;
  std::map<std::string, double> mem_ready;
  long uops_issued = 0;
  double iter_mark_mid = 0.0;
  double iter_mark_end = 0.0;
  const int n_iter = std::max(8, opt.iterations);
  const int mid = n_iter / 2;
  double max_finish = 0.0;

  if (trace != nullptr) {
    *trace = SimTrace{};
    trace->window_iterations = n_iter - mid;
    trace->uops_per_iteration = uops_per_iter;
    trace->frontend_stalls.assign(block.size(), 0);
    trace->dependency_stalls.assign(block.size(), 0);
    trace->port_stalls.assign(block.size(), 0);
  }

  // Record one dispatched uop into the trace's port-busy accounting.
  const auto note_busy = [&](bool in_window, double occupancy) {
    if (trace == nullptr || !in_window || ports.last_port < 0) return;
    trace->port_busy[ports.last_port] += occupancy;
  };

  for (int it = 0; it < n_iter; ++it) {
    const bool in_window = it >= mid;
    for (std::size_t i = 0; i < block.size(); ++i) {
      const auto& d = dec[i];
      const auto& inst = block.instructions[i];

      // Front-end: in-order issue of fused-domain uops, W per cycle.
      const double frontend =
          static_cast<double>(uops_issued) / opt.issue_width;
      uops_issued += d.uops;

      double ready = frontend;
      if (!d.zero_idiom && opt.model_loop_carried) {
        for (const auto& a : d.sem.regs) {
          if (!a.read) continue;
          const auto it2 = reg_ready.find(a.reg.family);
          if (it2 != reg_ready.end()) ready = std::max(ready, it2->second);
        }
        if (d.sem.mem && d.sem.mem->read) {
          const auto it2 = mem_ready.find(mem_key(d.sem.mem->mem));
          if (it2 != mem_ready.end()) ready = std::max(ready, it2->second);
        }
      } else if (!d.zero_idiom) {
        // Intra-iteration dependencies only (MCA-like configurations).
        for (const auto& a : d.sem.regs) {
          if (!a.read) continue;
          const auto it2 = reg_ready.find(a.reg.family);
          if (it2 != reg_ready.end()) ready = std::max(ready, it2->second);
        }
      }
      const double dep_ready = ready;  // before port availability

      double finish;
      double start = ready;
      if (d.zero_idiom) {
        finish = frontend;  // handled at rename: no port, no latency
      } else if (opt.ignore_ports) {
        finish = ready + d.latency;
      } else {
        // Auxiliary memory uops contend on the load/store ports. The load
        // result gates the compute uop; store uops only occupy ports.
        if (d.load) {
          const double lstart = ports.dispatch(ready, kLoadPorts, 1.0);
          note_busy(in_window, 1.0);
          ready = std::max(ready, lstart);
          max_finish = std::max(max_finish, lstart + 1.0);
        }
        if (d.store) {
          const double sa = ports.dispatch(ready, kStoreAddrPorts, 1.0);
          note_busy(in_window, 1.0);
          const double sd = ports.dispatch(ready, kStoreDataPorts, 1.0);
          note_busy(in_window, 1.0);
          max_finish = std::max(max_finish, std::max(sa, sd) + 1.0);
        }
        start = ports.dispatch(ready, d.ports, d.occupancy);
        note_busy(in_window, d.occupancy);
        finish = start + d.latency;
      }

      // Stall attribution: what actually set this occurrence's start time?
      if (trace != nullptr && in_window && !d.zero_idiom) {
        constexpr double kTol = 1e-9;
        if (start > dep_ready + kTol) {
          ++trace->port_stalls[i];
        } else if (dep_ready > frontend + kTol) {
          ++trace->dependency_stalls[i];
        } else {
          ++trace->frontend_stalls[i];
        }
      }

      // The stack engine renames rsp at issue: push/pop do not put the
      // stack-pointer update on the latency-critical path.
      const bool stack_engine = x86::info(inst.opcode).cls == OpClass::Stack;
      for (const auto& a : d.sem.regs) {
        if (!a.write) continue;
        if (stack_engine && a.reg.family == x86::RegFamily::RSP) {
          reg_ready[a.reg.family] = frontend + 1.0;
        } else {
          reg_ready[a.reg.family] = finish;
        }
      }
      if (d.sem.mem && d.sem.mem->write) {
        mem_ready[mem_key(d.sem.mem->mem)] = finish;
      }
      if (!opt.model_loop_carried && i + 1 == block.size()) {
        reg_ready.clear();
        mem_ready.clear();
      }
      max_finish = std::max(max_finish, finish);
    }
    if (it == mid - 1) iter_mark_mid = max_finish;
    if (it == n_iter - 1) iter_mark_end = max_finish;
  }

  const double cycles = iter_mark_end - iter_mark_mid;
  const double iters = static_cast<double>(n_iter - mid);
  return std::max(cycles / iters, 0.05);
}

}  // namespace comet::sim
