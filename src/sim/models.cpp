#include "sim/models.h"

#include "util/rng.h"

namespace comet::sim {

namespace {

// Shared batch sweep for the three simulator-backed models: one chunk of
// the batch driven by one simulator configuration without per-element
// virtual dispatch. The simulator is a pure function of (block, options),
// so the owning model chunks batches across the shared pool freely.
void simulate_range(std::span<const x86::BasicBlock> blocks,
                    std::span<double> out, cost::MicroArch uarch,
                    const SimOptions& options, std::size_t begin,
                    std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    out[i] = simulate_throughput(blocks[i], uarch, options);
  }
}

}  // namespace

HardwareOracle::HardwareOracle(cost::MicroArch uarch) : uarch_(uarch) {
  options_ = SimOptions{};  // full-detail configuration
}

double HardwareOracle::predict(const x86::BasicBlock& block) const {
  return simulate_throughput(block, uarch_, options_);
}

void HardwareOracle::predict_batch(std::span<const x86::BasicBlock> blocks,
                                   std::span<double> out) const {
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    simulate_range(blocks, out, uarch_, options_, begin, end);
  });
}

std::string HardwareOracle::name() const {
  return "oracle-" + cost::uarch_name(uarch_);
}

UiCASimModel::UiCASimModel(cost::MicroArch uarch) : uarch_(uarch) {
  // Coarsened parameters: integer-rounded latencies biased slightly high
  // and a pessimistic divider. Keeps uiCA's error small but nonzero.
  options_ = SimOptions{};
  options_.latency_scale = 1.05;
  options_.round_latencies = true;
  options_.div_occupancy_extra = 1.0;
}

double UiCASimModel::predict(const x86::BasicBlock& block) const {
  return simulate_throughput(block, uarch_, options_);
}

void UiCASimModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                 std::span<double> out) const {
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    simulate_range(blocks, out, uarch_, options_, begin, end);
  });
}

std::string UiCASimModel::name() const {
  return "uica-" + cost::uarch_name(uarch_);
}

McaLikeModel::McaLikeModel(cost::MicroArch uarch) : uarch_(uarch) {
  // Static-analysis style: no loop-carried dependencies, no zero idioms.
  options_ = SimOptions{};
  options_.model_loop_carried = false;
  options_.zero_idiom = false;
  options_.round_latencies = true;
}

double McaLikeModel::predict(const x86::BasicBlock& block) const {
  return simulate_throughput(block, uarch_, options_);
}

void McaLikeModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                 std::span<double> out) const {
  for_batch_chunks(blocks.size(), [&](std::size_t begin, std::size_t end) {
    simulate_range(blocks, out, uarch_, options_, begin, end);
  });
}

std::string McaLikeModel::name() const {
  return "mca-" + cost::uarch_name(uarch_);
}

double measured_throughput(const x86::BasicBlock& block,
                           cost::MicroArch uarch) {
  const HardwareOracle oracle(uarch);
  const double base = oracle.predict(block);
  // Deterministic per-block measurement noise in [-2%, +2%].
  const std::string text =
      block.to_string() + cost::uarch_name(uarch);
  util::Rng rng(util::fnv1a64(text.data(), text.size()));
  return base * (1.0 + 0.02 * (2.0 * rng.uniform() - 1.0));
}

}  // namespace comet::sim
