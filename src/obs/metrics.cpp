#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/str.h"

namespace comet::obs {

namespace {

// Escapes a string for use inside a JSON string literal (metric names carry
// label quotes: serve_run_ns{model_key="crude-hsw"}).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Doubles in exports: fixed 6 decimals covers sub-microsecond latencies in
// ns units without scientific notation (which Prometheus parses but humans
// scan poorly).
std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::string s = util::format_fixed(v, 6);
  // Trim trailing zeros but keep at least one decimal ("3.0" not "3.").
  while (s.size() > 1 && s.back() == '0' &&
         s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

// Splits `name{label="x"}` into base and label body ("" when unlabeled).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

// Re-joins a label body with one extra label appended.
std::string with_label(const std::string& body, const std::string& extra) {
  return body.empty() ? extra : body + "," + extra;
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramSnapshot

std::size_t HistogramSnapshot::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return std::min<std::size_t>(width, kBuckets - 1);
}

double HistogramSnapshot::bucket_lower(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

double HistogramSnapshot::bucket_upper(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void HistogramSnapshot::record(std::uint64_t value) {
  ++buckets[bucket_of(value)];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    if (static_cast<double>(cum) + in_bucket >= rank) {
      const double pos =
          std::clamp((rank - static_cast<double>(cum)) / in_bucket, 0.0, 1.0);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double v = lo + (hi - lo) * pos;
      // Clamp to the observed range: a constant series reports its exact
      // value at every percentile, and the overflow bucket's nominal upper
      // bound (2^64) never leaks into an estimate.
      return std::clamp(v, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cum += buckets[i];
  }
  return static_cast<double>(max);
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  if (other.count == 0) return *this;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  return *this;
}

std::string HistogramSnapshot::to_string() const {
  return "count=" + std::to_string(count) + " p50=" + fmt_double(p50()) +
         " p95=" + fmt_double(p95()) + " p99=" + fmt_double(p99()) +
         " max=" + std::to_string(max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::labeled(const std::string& base,
                                     const std::string& key,
                                     const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Copy the instrument pointers under the registry lock, then read each
  // instrument through its own lock (instruments are never removed, so the
  // pointers stay valid without holding mutex_).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    util::MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  Snapshot out;
  for (const auto& [name, c] : counters) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const Snapshot snap = snapshot();
  std::string out;
  std::string last_typed;  // one # TYPE line per base name
  const auto type_line = [&](const std::string& base,
                             const std::string& kind) {
    if (base == last_typed) return;
    out += "# TYPE " + base + " " + kind + "\n";
    last_typed = base;
  };
  for (const auto& [name, value] : snap.counters) {
    const auto [base, labels] = split_labels(name);
    type_line(base, "counter");
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const auto [base, labels] = split_labels(name);
    type_line(base, "gauge");
    out += name + " " + fmt_double(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const auto [base, labels] = split_labels(name);
    type_line(base, "histogram");
    // Cumulative le-buckets; empty buckets are elided (their cumulative
    // count is carried by the next populated bound and by +Inf).
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cum += h.buckets[i];
      const std::string le =
          "le=\"" + fmt_double(HistogramSnapshot::bucket_upper(i)) + "\"";
      out += base + "_bucket{" + with_label(labels, le) + "} " +
             std::to_string(cum) + "\n";
    }
    out += base + "_bucket{" + with_label(labels, "le=\"+Inf\"") + "} " +
           std::to_string(h.count) + "\n";
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + std::to_string(h.sum) + "\n";
    out += base + "_count" + suffix + " " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + fmt_double(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.count ? h.min : 0) +
           ", \"max\": " + std::to_string(h.count ? h.max : 0) +
           ", \"mean\": " + fmt_double(h.mean()) +
           ", \"p50\": " + fmt_double(h.p50()) +
           ", \"p95\": " + fmt_double(h.p95()) +
           ", \"p99\": " + fmt_double(h.p99()) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

}  // namespace comet::obs
