// The observability clock seam: every latency measurement in the library
// goes through obs::Clock, never through a raw std::chrono call (enforced
// by scripts/comet_lint.py rule `raw-clock`).
//
// Two reasons this is a seam and not a convenience:
//
//   * Determinism. Served explanations are bit-identical to sequential
//     runs; wall-clock readings therefore live strictly in the obs layer
//     (timestamps, histograms, traces) and never feed the search. Funneling
//     every clock read through one type makes that reviewable: a clock in a
//     decision path would have to name obs::Clock to get there.
//   * Testability. Timing assertions against a real clock are flaky by
//     construction. ManualClock gives tests a clock they advance by hand,
//     so "queue wait was 5ms" is a deterministic expectation, not a race
//     against the scheduler.
//
// The default instance (obs::steady_clock()) wraps std::chrono::steady_clock
// — monotonic, immune to NTP steps, the only correct base for latency
// deltas. system_clock is banned outside this file: it jumps backwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace comet::obs {

/// Monotonic time source, in nanoseconds since an arbitrary epoch. Only
/// differences between readings are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() const = 0;
};

/// The production clock: std::chrono::steady_clock, monotonic by contract.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Process-wide default instance (stateless, safe to share across threads).
inline const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

/// Test clock: starts at 0 and moves only when advanced. Thread-safe (the
/// instrumented serving layer reads it from worker threads while the test
/// thread advances it).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  std::uint64_t now_ns() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void set_ns(std::uint64_t value_ns) {
    now_ns_.store(value_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_ns_;
};

}  // namespace comet::obs
