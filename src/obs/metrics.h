// obs::MetricsRegistry: the serving stack's always-on instrumentation
// surface — named counters, gauges, and log-bucketed latency histograms,
// with two exporters (Prometheus-style text exposition and a JSON
// snapshot).
//
// Design rules, in the order they were decided:
//
//   * Observation never perturbs results. Metrics record wall-clock and
//     traffic facts about a computation whose outputs are pinned
//     bit-identical to the sequential path (tests/test_obs.cpp asserts
//     metrics-on == metrics-off explanations). Clock readings enter through
//     obs::Clock only and never feed the search.
//   * Handles are stable. counter()/gauge()/histogram() return references
//     that live as long as the registry, so hot paths resolve a name once
//     and then increment through the handle — no map lookup per event.
//   * Everything merges. HistogramSnapshot is plain data with operator+=,
//     exactly like cost::QueryStats, so per-worker / per-shard / per-server
//     observations aggregate into one ledger.
//   * Locking is the PR 6 contract: every mutable member is
//     COMET_GUARDED_BY an util::Mutex and checked by the Clang
//     thread-safety analysis. One mutex per instrument (not per registry)
//     keeps concurrent workers off each other's cache lines and off the
//     registry map.
//
// Histogram shape: 64 fixed log2 buckets (bucket 0 holds exact zeros;
// bucket i holds [2^(i-1), 2^i) for 1 <= i <= 62; bucket 63 is the
// overflow). Quantiles are estimated by linear interpolation inside the
// bucket containing the rank and clamped to the observed [min, max], so a
// constant series reports its exact value at every percentile. With
// nanosecond samples the relative error bound is the bucket width: a
// factor-of-two band, ample for p50/p95/p99 latency reporting.
//
// Label convention: a fully-qualified metric name may carry Prometheus
// labels inline — `serve_run_ns{model_key="crude-hsw"}` — built with
// MetricsRegistry::labeled(). The exporters split the base name from the
// label body so text exposition stays well-formed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace comet::obs {

/// Monotonic event counter.
class Counter {
 public:
  void increment(std::uint64_t n = 1) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    value_ += n;
  }
  std::uint64_t value() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable util::Mutex mutex_;
  std::uint64_t value_ COMET_GUARDED_BY(mutex_) = 0;
};

/// Point-in-time level (queue depth, outstanding jobs, hit rates).
class Gauge {
 public:
  void set(double v) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    value_ = v;
  }
  void add(double delta) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    value_ += delta;
  }
  double value() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable util::Mutex mutex_;
  double value_ COMET_GUARDED_BY(mutex_) = 0.0;
};

/// Plain-data histogram state: fixed log2 buckets + count/sum/min/max.
/// Mergeable with operator+= (per-shard and per-server ledgers aggregate
/// the same way QueryStats does).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;  ///< meaningful only when count > 0

  /// Index of the bucket `value` falls into.
  static std::size_t bucket_of(std::uint64_t value);
  /// Inclusive lower / exclusive upper value bound of bucket `i`.
  static double bucket_lower(std::size_t i);
  static double bucket_upper(std::size_t i);

  void record(std::uint64_t value);

  /// Quantile estimate in [min, max]; q in [0, 1] (0.5 = median). Linear
  /// interpolation within the rank's bucket; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;

  /// One-line summary: "count=12 p50=3.0us p95=8.1us p99=9.9us".
  std::string to_string() const;
};

/// Thread-safe histogram instrument over HistogramSnapshot.
class Histogram {
 public:
  void record(std::uint64_t value) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    state_.record(value);
  }
  HistogramSnapshot snapshot() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return state_;
  }

 private:
  mutable util::Mutex mutex_;
  HistogramSnapshot state_ COMET_GUARDED_BY(mutex_);
};

/// Named instruments, stable handles, mergeable/exportable snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by fully-qualified name. The returned reference is
  /// valid for the registry's lifetime; resolve once, record many times.
  Counter& counter(const std::string& name) COMET_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) COMET_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) COMET_EXCLUDES(mutex_);

  /// `base{key="value"}` — the inline-label naming convention.
  static std::string labeled(const std::string& base, const std::string& key,
                             const std::string& value);

  /// Point-in-time copy of every instrument, sorted by name (deterministic
  /// export order).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot snapshot() const COMET_EXCLUDES(mutex_);

  /// Prometheus text exposition (scrape body): `# TYPE` lines, cumulative
  /// `_bucket{le=...}` series, `_sum`/`_count` per histogram.
  std::string to_prometheus() const COMET_EXCLUDES(mutex_);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99}}}.
  std::string to_json() const COMET_EXCLUDES(mutex_);

 private:
  // Instruments are heap-allocated so handles stay stable across rehashes;
  // the maps only grow (no instrument is ever removed).
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      COMET_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      COMET_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      COMET_GUARDED_BY(mutex_);
};

}  // namespace comet::obs
