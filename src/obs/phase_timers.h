// Per-level phase timings of one anchor-engine run, surfaced on the
// explanation when the caller opts in (AnchorSearchOptions::phase_clock).
//
// The engine's wall-clock is spent in three distinct phases per beam level
// — candidate construction / beam bookkeeping, KL-LUCB arm pulls (where
// the model queries live), and final-precision firm-up — plus the one-off
// coverage-pool build. Knowing the split is what lets a deployment decide
// whether to buy batching (pulls-bound), a cheaper perturber (beam-bound),
// or a smaller verification budget (precision-bound).
//
// Determinism contract: the clock readings behind these numbers are taken
// *between* search phases and never feed a search decision, so an
// explanation computed with timing enabled is bit-identical (features,
// precision, coverage, query ledger) to one computed without. Disabled
// (the default, phase_clock == nullptr) the engine performs zero clock
// reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace comet::obs {

struct PhaseTimings {
  /// Wall-clock split of one beam level.
  struct Level {
    std::uint64_t beam_ns = 0;       ///< candidate build + beam selection
    std::uint64_t pulls_ns = 0;      ///< KL-LUCB arm pulls (model queries)
    std::uint64_t precision_ns = 0;  ///< anchor firm-up + acceptance
  };

  bool enabled = false;          ///< true iff a phase clock was supplied
  std::uint64_t coverage_ns = 0; ///< shared coverage-pool construction
  std::vector<Level> levels;     ///< one entry per beam level searched

  std::uint64_t beam_ns() const {
    std::uint64_t total = 0;
    for (const auto& l : levels) total += l.beam_ns;
    return total;
  }
  std::uint64_t pulls_ns() const {
    std::uint64_t total = 0;
    for (const auto& l : levels) total += l.pulls_ns;
    return total;
  }
  std::uint64_t precision_ns() const {
    std::uint64_t total = 0;
    for (const auto& l : levels) total += l.precision_ns;
    return total;
  }
  std::uint64_t total_ns() const {
    return coverage_ns + beam_ns() + pulls_ns() + precision_ns();
  }

  /// "levels=2 coverage=1.2ms beam=0.3ms pulls=8.9ms precision=0.7ms".
  std::string to_string() const {
    const auto ms = [](std::uint64_t ns) {
      const std::uint64_t tenths = ns / 100000;  // 0.1ms units
      return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
             "ms";
    };
    return "levels=" + std::to_string(levels.size()) +
           " coverage=" + ms(coverage_ns) + " beam=" + ms(beam_ns()) +
           " pulls=" + ms(pulls_ns()) + " precision=" + ms(precision_ns());
  }
};

}  // namespace comet::obs
