// COMET's basic-block perturbation algorithm Γ (paper Section 5.2,
// Algorithm 1, Appendices C-D).
//
// Given a basic block β and a set of features F ⊆ P̂ to preserve, Γ samples
// a perturbed block β' from the distribution D_F: every feature of β that is
// not (explicitly or voluntarily) retained is independently perturbed to a
// value valid under the ISA.
//
//  * Vertex (instruction) perturbation changes only the opcode: the opcode
//    is replaced by another that accepts the original operands, or — when
//    the instruction count η need not be preserved and the vertex is not
//    pinned — the instruction is deleted outright. Retention probability is
//    p_inst_retain; deletion is chosen over replacement with probability
//    p_delete.
//  * Edge (data-dependency) perturbation changes only operands: the hazard
//    is broken by renaming the carrying register occurrences on one endpoint
//    to a fresh register of the same class and width, or — for memory-carried
//    hazards — by shifting the displacement. Retention probability is
//    p_dep_retain, with an additional explicit-retention lottery
//    (p_explicit_dep_retain, Appendix E.3) that pins a dependency outright.
//  * Opcodes of both endpoints of every preserved dependency are pinned, as
//    are the register occurrences that carry it.
//
// Perturbation probabilities are block-specific in practice (Appendix D):
// instructions with no valid replacement (e.g. lea) and hazards carried by
// implicit operands (e.g. div's rax) fail to perturb and are retained, so
// the effective retention probability exceeds the configured one.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/depgraph.h"
#include "graph/features.h"
#include "util/rng.h"
#include "x86/instruction.h"

namespace comet::perturb {

/// Tunable probabilities of Γ (paper Section 6 experimental setup and
/// Appendix E ablations).
struct PerturbConfig {
  double p_inst_retain = 0.5;          ///< p_I,ret
  double p_dep_retain = 0.5;           ///< p_D,ret
  double p_delete = 0.33;              ///< p_del (Appendix E.2)
  double p_explicit_dep_retain = 0.1;  ///< explicit retention (App. E.3)
  /// Appendix E.4 ablation: when replacing an instruction, also re-randomize
  /// its unpinned register operands (default: opcode-only replacement).
  bool whole_instruction_replacement = false;
  /// Prefer rename targets not used anywhere in the block when breaking a
  /// dependency, so a break does not accidentally create a new dependency.
  /// Disabled only by the design-ablation bench.
  bool prefer_fresh_rename = true;
};

/// A perturbed block plus the mapping from each of its instructions back to
/// the original position in β (deleted instructions simply have no entry).
/// The mapping makes positional feature containment well defined.
struct PerturbedBlock {
  x86::BasicBlock block;
  std::vector<std::size_t> orig_index;

  /// Position of original instruction `orig` in the perturbed block, or
  /// npos if it was deleted.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t position_of(std::size_t orig) const;
};

/// Γ for a fixed target block. Construction precomputes the dependency
/// multigraph and per-instruction replacement candidate sets, so sampling
/// is cheap (thousands of samples per explanation).
class Perturber {
 public:
  explicit Perturber(x86::BasicBlock block,
                     graph::DepGraphOptions graph_options = {},
                     PerturbConfig config = {});

  const x86::BasicBlock& block() const { return block_; }
  const graph::DepGraph& dep_graph() const { return graph_; }
  const PerturbConfig& config() const { return config_; }
  const graph::DepGraphOptions& graph_options() const {
    return graph_options_;
  }

  /// Sample β' ~ D_F: a random perturbation retaining all features in
  /// `preserve`. With an empty set this samples from D = D_∅.
  PerturbedBlock sample(const graph::FeatureSet& preserve,
                        util::Rng& rng) const;

  /// Does the perturbed block still contain every feature in `fs`?
  /// (The containment predicate that defines coverage, eq. 6.)
  bool contains(const PerturbedBlock& pb, const graph::FeatureSet& fs) const;

  /// log10 of the estimated cardinality of the perturbation space Π̂(F)
  /// (Appendix F): the product over perturbable elements of their choice
  /// counts.
  double log10_space_size(const graph::FeatureSet& preserve) const;

 private:
  x86::BasicBlock block_;
  graph::DepGraphOptions graph_options_;
  PerturbConfig config_;
  graph::DepGraph graph_;
  /// Per-instruction opcode replacement candidates.
  std::vector<std::vector<x86::Opcode>> replacements_;
};

}  // namespace comet::perturb
